package tsg

import (
	"io"
	"os"

	"tsg/internal/circuit"
	"tsg/internal/extract"
	"tsg/internal/netlist"
)

// Circuit is an immutable gate-level netlist with an initial state
// (§VIII of the paper).
type Circuit = circuit.Circuit

// CircuitBuilder accumulates inputs and gates and validates on Build.
type CircuitBuilder = circuit.Builder

// SignalID identifies a signal within a Circuit.
type SignalID = circuit.SignalID

// Level is a binary signal level.
type Level = circuit.Level

// Signal levels.
const (
	Low  = circuit.Low
	High = circuit.High
)

// GateType enumerates the gate library.
type GateType = circuit.GateType

// The gate library (C-element, NOR, NAND, AND, OR, INV, BUF, XOR, MAJ).
const (
	CElement = circuit.CElement
	Nor      = circuit.Nor
	Nand     = circuit.Nand
	And      = circuit.And
	Or       = circuit.Or
	Inv      = circuit.Inv
	Buf      = circuit.Buf
	Xor      = circuit.Xor
	Majority = circuit.Majority
)

// InputEvent is a scripted transition on a primary input.
type InputEvent = circuit.InputEvent

// CircuitSimOptions bounds a timed circuit simulation.
type CircuitSimOptions = circuit.SimOptions

// CircuitSimResult is the outcome of a timed circuit simulation.
type CircuitSimResult = circuit.SimResult

// NewCircuit returns a builder for a gate-level circuit.
func NewCircuit(name string) *CircuitBuilder { return circuit.NewBuilder(name) }

// SimulateCircuit runs the timed event-driven simulation of §VIII with
// per-pin pure delays and hazard detection.
func SimulateCircuit(c *Circuit, opts CircuitSimOptions) (*CircuitSimResult, error) {
	return circuit.Simulate(c, opts)
}

// ExtractOptions tunes Signal Graph extraction.
type ExtractOptions = extract.Options

// ExtractGraph derives the Timed Signal Graph of a circuit from its
// initial state and input script — the TRASPEC step of the paper's flow
// (§VIII.B, [9]). The inputs script the environment's one-shot actions.
func ExtractGraph(c *Circuit, inputs []InputEvent) (*Graph, error) {
	return extract.Extract(c, extract.Options{Inputs: inputs})
}

// ExtractGraphOpts is ExtractGraph with explicit options.
func ExtractGraphOpts(c *Circuit, opts ExtractOptions) (*Graph, error) {
	return extract.Extract(c, opts)
}

// VerifyOptions bounds the exhaustive semi-modularity check.
type VerifyOptions = extract.VerifyOptions

// VerifyCircuit exhaustively checks semi-modularity (speed-independence)
// of a small circuit over all interleavings, returning the number of
// explored states. Analysis results are only meaningful for circuits
// that pass (§VIII.A: distributive circuits).
func VerifyCircuit(c *Circuit, opts VerifyOptions) (int, error) {
	return extract.Verify(c, opts)
}

// AnalyzeCircuit is the end-to-end flow of §VIII: extract the Timed
// Signal Graph of the circuit and run the cycle-time analysis on it.
// It returns both the result and the extracted graph.
func AnalyzeCircuit(c *Circuit, inputs []InputEvent) (*Result, *Graph, error) {
	g, err := ExtractGraph(c, inputs)
	if err != nil {
		return nil, nil, err
	}
	res, err := Analyze(g)
	if err != nil {
		return nil, nil, err
	}
	return res, g, nil
}

// Netlist bundles a parsed circuit with its scripted input transitions.
type Netlist = netlist.Netlist

// ReadCircuit parses a .ckt netlist file.
func ReadCircuit(r io.Reader) (*Netlist, error) { return netlist.ReadCKT(r) }

// WriteCircuit serialises a netlist in .ckt format.
func WriteCircuit(w io.Writer, n *Netlist) error { return netlist.WriteCKT(w, n) }

// LoadCircuit reads a .ckt file from disk.
func LoadCircuit(path string) (*Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCircuit(f)
}
