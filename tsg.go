// Package tsg is a performance analyzer for concurrent systems modelled
// as Timed Signal Graphs, reproducing Nielsen and Kishinevsky,
// "Performance Analysis Based on Timing Simulation" (DAC 1994).
//
// The package computes the cycle time λ — the average time separation
// between equivalent events in steady state — and a critical cycle of a
// Timed Signal Graph in O(b²·m) time, where b is the number of events
// with initially marked in-arcs (the border events) and m the number of
// arcs. It also contains everything around the core algorithm that the
// paper's evaluation relies on: gate-level circuit modelling and timed
// simulation, Signal Graph extraction from circuits (the TRASPEC step of
// §VIII.B), classical maximum-cycle-ratio baselines (Karp, Lawler,
// Howard) and a simple-cycle enumeration oracle, file formats, workload
// generators, and the experiment harness regenerating every table and
// figure of the paper (see cmd/tsgbench and EXPERIMENTS.md).
//
// # Quick start
//
//	g, err := tsg.NewGraph("ring").
//		Events("x+", "y+", "z+").
//		Arc("x+", "y+", 1).
//		Arc("y+", "z+", 1).
//		Arc("z+", "x+", 1, tsg.Marked()).
//		Build()
//	res, err := tsg.Analyze(g)
//	fmt.Println(res.CycleTime) // 3
//
// Analyze is the one-shot form. Sessions issuing repeated queries —
// slack reports, what-if sensitivities, full-arc sweeps, interval
// bounds — should hold an Engine (see engine.go), which compiles the
// graph once and serves every query against the compiled form.
//
// See examples/ for end-to-end programs, including circuit-level flows
// and the examples/whatif bottleneck-hunting loop.
package tsg

import (
	"io"
	"os"

	"tsg/internal/cycletime"
	"tsg/internal/netlist"
	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/timesim"
)

// Graph is an immutable Timed Signal Graph (§III of the paper).
type Graph = sg.Graph

// GraphBuilder accumulates events and arcs and validates on Build.
type GraphBuilder = sg.Builder

// EventID identifies an event within a Graph.
type EventID = sg.EventID

// Event is a vertex of a Signal Graph: a signal transition.
type Event = sg.Event

// Arc is a delay-labelled edge with initial marking.
type Arc = sg.Arc

// EventOption configures an event added through the builder.
type EventOption = sg.EventOption

// ArcOption configures an arc added through the builder.
type ArcOption = sg.ArcOption

// Ratio is an exact rational cycle time (length over occurrence period).
type Ratio = stat.Ratio

// NewGraph returns a builder for a Timed Signal Graph.
func NewGraph(name string) *GraphBuilder { return sg.NewBuilder(name) }

// Event/arc options, re-exported from the model package.
var (
	// NonRepetitive marks an event as occurring exactly once.
	NonRepetitive = sg.NonRepetitive
	// Marked places the initial token on an arc.
	Marked = sg.Marked
	// Once marks an arc as disengageable (active once only).
	Once = sg.Once
)

// Result is the outcome of a cycle-time analysis: the exact cycle time,
// the critical cycle(s) and the per-border-event distance series.
type Result = cycletime.Result

// CriticalCycle is a simple cycle attaining the cycle time.
type CriticalCycle = cycletime.CriticalCycle

// BorderSeries records the average occurrence distances collected from
// one border event (Prop. 7/8).
type BorderSeries = cycletime.BorderSeries

// AnalysisOptions tunes Analyze (period override, custom cut set).
type AnalysisOptions = cycletime.Options

// Analyze computes the cycle time and critical cycle of a Timed Signal
// Graph with the paper's O(b²m) timing-simulation algorithm (§VII).
func Analyze(g *Graph) (*Result, error) { return cycletime.Analyze(g) }

// AnalyzeOpts is Analyze with explicit options.
func AnalyzeOpts(g *Graph, opts AnalysisOptions) (*Result, error) {
	return cycletime.AnalyzeOpts(g, opts)
}

// Trace holds the occurrence times of a timing simulation (§IV).
type Trace = timesim.Trace

// SimOptions bounds a timing simulation.
type SimOptions = timesim.Options

// Simulate runs the plain timing simulation of §IV.A over the given
// number of unfolding periods.
func Simulate(g *Graph, periods int) (*Trace, error) {
	return timesim.Run(g, timesim.Options{Periods: periods})
}

// SimulateFrom runs the event-initiated timing simulation of §IV.B from
// instantiation 0 of the origin event.
func SimulateFrom(g *Graph, origin EventID, periods int) (*Trace, error) {
	return timesim.RunFrom(g, origin, timesim.Options{Periods: periods})
}

// Fingerprint returns the canonical content hash of a graph: a
// hex-encoded SHA-256 over its events and arcs (names, delays,
// markings, once flags) that is invariant under event/arc declaration
// order and ignores the graph's display name. Structurally identical
// graphs — however they were built or parsed — share a fingerprint,
// which is the key the serving layer's engine cache (internal/serve,
// cmd/tsgserved) uses to share one compiled engine across clients.
func Fingerprint(g *Graph) string { return sg.Fingerprint(g) }

// CanonicalArcOrder returns the permutation placing the graph's arcs
// in the canonical (fingerprint) order: order[k] is the declaration
// index of the arc at canonical rank k. Canonical ranks are the arc
// index space of the serving protocol — portable between parties
// holding structurally identical graphs in different declaration
// orders. See client.ArcMap for the ready-made translation.
func CanonicalArcOrder(g *Graph) []int { return sg.CanonicalArcOrder(g) }

// ReadGraph parses a .tsg file (see internal/netlist for the format).
func ReadGraph(r io.Reader) (*Graph, error) { return netlist.ReadTSG(r) }

// WriteGraph serialises a graph in .tsg format.
func WriteGraph(w io.Writer, g *Graph) error { return netlist.WriteTSG(w, g) }

// LoadGraph reads a .tsg file from disk.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f)
}

// SaveGraph writes a .tsg file to disk.
func SaveGraph(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
