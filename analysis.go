package tsg

import (
	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/maxplus"
	"tsg/internal/mcr"
	"tsg/internal/timesim"
)

// This file exposes the secondary analyses around the core algorithm:
// timing slacks and what-if sensitivity, the classical baselines, the
// enumeration oracle, and PERT analysis of acyclic graphs. Every
// function here is a one-shot wrapper that recompiles the graph per
// call; sessions issuing repeated queries should hold a tsg.Engine
// (see engine.go), which compiles once and serves slacks,
// sensitivities and sweeps against the compiled form.

// ArcSlack is the timing slack of one arc at the cycle time.
type ArcSlack = cycletime.ArcSlack

// Slacks computes per-arc timing slacks at the given cycle time: tight
// (zero-slack) arcs include every critical cycle; positive slack is the
// delay increase the arc can absorb before the cycle time moves.
// Engine.Slacks is the session form, certified by the engine's own
// simulation times.
func Slacks(g *Graph, lambda Ratio) ([]ArcSlack, error) {
	return cycletime.Slacks(g, lambda)
}

// Sensitivity re-analyses the graph with one arc's delay replaced,
// reporting the resulting cycle time. The input graph is not modified.
// This form recompiles per call; use Engine.Sensitivity or
// Engine.SensitivitySweep for repeated what-if queries.
func Sensitivity(g *Graph, arc int, newDelay float64) (Ratio, error) {
	return cycletime.Sensitivity(g, arc, newDelay)
}

// CriticalPath performs PERT analysis of an acyclic project network
// (a graph whose events are all non-repetitive): the makespan and one
// critical chain of events (§II of the paper).
func CriticalPath(g *Graph) (makespan float64, path []EventID, err error) {
	return timesim.CriticalPath(g)
}

// Cycle is a simple cycle with its effective length (§V).
type Cycle = cycles.Cycle

// EnumerateCycles lists every simple cycle of the repetitive core
// (Johnson's algorithm). The count can be exponential; limit caps it
// (0 = a large default). This is the reference oracle the paper's
// algorithm is validated against.
func EnumerateCycles(g *Graph, limit int) ([]Cycle, error) {
	return cycles.Enumerate(g, limit)
}

// CycleTimeKarp computes the cycle time with Karp's algorithm on the
// token-graph reduction — one of the classical baselines of §I.
func CycleTimeKarp(g *Graph) (Ratio, error) { return mcr.Karp(g) }

// CycleTimeHoward computes the cycle time with Howard's policy
// iteration (max-plus spectral theory, Baccelli et al.).
func CycleTimeHoward(g *Graph) (Ratio, error) { return mcr.Howard(g) }

// CycleTimeLawler computes the cycle time by Lawler's binary search —
// the decision form of the Burns linear program — to within eps
// (0 selects a small default).
func CycleTimeLawler(g *Graph, eps float64) (float64, error) {
	return mcr.Lawler(g, eps)
}

// BoundsResult carries cycle-time bounds under interval delays.
type BoundsResult = cycletime.Bounds

// AnalyzeBounds brackets the cycle time when every arc delay may vary
// inside [lo(a), hi(a)]; λ is monotone in each delay, so the two
// extreme assignments are exact bounds.
func AnalyzeBounds(g *Graph, lo, hi func(arc int, nominal float64) float64) (*BoundsResult, error) {
	return cycletime.AnalyzeBounds(g, lo, hi)
}

// Jitter builds ±fraction interval functions for AnalyzeBounds.
func Jitter(f float64) (lo, hi func(int, float64) float64) {
	return cycletime.Jitter(f)
}

// CycleTimeMaxPlus computes the cycle time as the max-plus eigenvalue
// of the graph's token matrix (the "eventually periodic max-functions"
// view of Gunawardena cited in §I of the paper).
func CycleTimeMaxPlus(g *Graph) (Ratio, error) {
	m, _, err := maxplus.FromGraph(g)
	if err != nil {
		return Ratio{}, err
	}
	return m.Eigenvalue()
}
