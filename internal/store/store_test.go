package store

import (
	"os"
	"path/filepath"
	"testing"
)

func open(t *testing.T, dir string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(dir, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := open(t, dir)
	if rec.Records != 0 || len(rec.Graphs) != 0 || len(rec.Edits) != 0 {
		t.Fatalf("fresh log recovered state: %+v", rec)
	}
	if err := s.AppendGraph("fpA", []byte("graph A body")); err != nil {
		t.Fatalf("AppendGraph: %v", err)
	}
	if err := s.AppendGraph("fpB", []byte("graph B body")); err != nil {
		t.Fatalf("AppendGraph: %v", err)
	}
	if !s.HasGraph("fpA") || !s.HasGraph("fpB") || s.HasGraph("fpC") {
		t.Fatal("HasGraph mismatch")
	}
	edits := []Edit{
		{Fingerprint: "fpA", Client: "c1", Seq: 1, Edits: []EditDelta{{Arc: 0, Delay: 9.5}, {Arc: 3, Delay: 2}}},
		{Fingerprint: "fpA", Reset: true, Client: "c1", Seq: 2},
		{Fingerprint: "fpB", Client: "c2", Seq: 7, Edits: []EditDelta{{Arc: 1, Delay: 0.25}}},
	}
	for _, e := range edits {
		if err := s.AppendEdit(e); err != nil {
			t.Fatalf("AppendEdit: %v", err)
		}
	}
	s.Close()

	s2, rec2 := open(t, dir)
	defer s2.Close()
	if rec2.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", rec2.TruncatedBytes)
	}
	if rec2.Records != 5 {
		t.Fatalf("Records = %d, want 5", rec2.Records)
	}
	if len(rec2.Graphs) != 2 || rec2.Graphs[0].Fingerprint != "fpA" || rec2.Graphs[1].Fingerprint != "fpB" {
		t.Fatalf("Graphs = %+v", rec2.Graphs)
	}
	if string(rec2.Graphs[0].Body) != "graph A body" {
		t.Fatalf("body round trip: %q", rec2.Graphs[0].Body)
	}
	if len(rec2.Edits) != 3 {
		t.Fatalf("Edits = %+v", rec2.Edits)
	}
	e := rec2.Edits[0]
	if e.Fingerprint != "fpA" || e.Client != "c1" || e.Seq != 1 || len(e.Edits) != 2 ||
		e.Edits[0] != (EditDelta{Arc: 0, Delay: 9.5}) || e.Edits[1] != (EditDelta{Arc: 3, Delay: 2}) {
		t.Fatalf("edit 0 round trip: %+v", e)
	}
	if !rec2.Edits[1].Reset || rec2.Edits[1].Seq != 2 {
		t.Fatalf("edit 1 round trip: %+v", rec2.Edits[1])
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	if err := s.AppendGraph("fpA", []byte("intact body")); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEdit(Edit{Fingerprint: "fpA", Edits: []EditDelta{{Arc: 2, Delay: 5}}}); err != nil {
		t.Fatal(err)
	}
	good := s.Size()
	s.Close()

	// Simulate a crash that tore the last append: a garbage tail of
	// varying lengths, including one long enough to parse as a header.
	// Each iteration appends one more (intact) edit after recovery.
	for i, tail := range [][]byte{{0x17}, {1, 2, 3, 4, 5, 6, 7}, make([]byte, 64)} {
		path := filepath.Join(dir, "wal.log")
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.Write(tail)
		f.Close()

		s2, rec := open(t, dir)
		if rec.TruncatedBytes != int64(len(tail)) {
			t.Fatalf("tail %d: TruncatedBytes = %d", len(tail), rec.TruncatedBytes)
		}
		if rec.Records != 2+i || len(rec.Graphs) != 1 || len(rec.Edits) != 1+i {
			t.Fatalf("tail %d: recovery lost records: %+v", len(tail), rec)
		}
		if s2.Size() != good {
			t.Fatalf("tail %d: size %d after truncation, want %d", len(tail), s2.Size(), good)
		}
		// The truncated log must accept further appends.
		if err := s2.AppendEdit(Edit{Fingerprint: "fpA", Edits: []EditDelta{{Arc: 0, Delay: 1}}}); err != nil {
			t.Fatalf("tail %d: append after truncation: %v", len(tail), err)
		}
		good = s2.Size()
		s2.Close()
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	s.AppendGraph("fpA", []byte("first"))
	mid := s.Size()
	s.AppendGraph("fpB", []byte("second"))
	s.Close()

	// Flip a payload byte of the second record: its checksum fails, so
	// replay must stop after the first record and drop the rest.
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mid+20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	s2, rec := open(t, dir)
	defer s2.Close()
	if rec.Records != 1 || len(rec.Graphs) != 1 || rec.Graphs[0].Fingerprint != "fpA" {
		t.Fatalf("recovery past corruption: %+v", rec)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("corrupt record not reported as truncated")
	}
	if s2.HasGraph("fpB") {
		t.Fatal("corrupt record replayed as data")
	}
}

func TestCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	s.AppendGraph("fpA", []byte("graph A"))
	s.AppendGraph("fpB", []byte("graph B"))
	// A churny edit history whose live state is small: repeated
	// assignments to the same arcs, a reset, a re-edit.
	for i := 0; i < 50; i++ {
		s.AppendEdit(Edit{Fingerprint: "fpA", Client: "c1", Seq: uint64(i + 1),
			Edits: []EditDelta{{Arc: 0, Delay: float64(i)}, {Arc: 1, Delay: float64(2 * i)}}})
	}
	s.AppendEdit(Edit{Fingerprint: "fpA", Reset: true, Client: "c1", Seq: 51})
	s.AppendEdit(Edit{Fingerprint: "fpA", Client: "c1", Seq: 52, Edits: []EditDelta{{Arc: 4, Delay: 7.5}}})
	s.AppendEdit(Edit{Fingerprint: "fpB", Client: "c2", Seq: 3, Edits: []EditDelta{{Arc: 2, Delay: 1.5}}})
	before := s.Size()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.Size() >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, s.Size())
	}
	if s.Compactions() != 1 {
		t.Fatalf("Compactions = %d", s.Compactions())
	}
	// Appends after compaction must land in the compacted log.
	if err := s.AppendEdit(Edit{Fingerprint: "fpB", Client: "c2", Seq: 4, Edits: []EditDelta{{Arc: 0, Delay: 9}}}); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	s.Close()

	s2, rec := open(t, dir)
	defer s2.Close()
	if rec.TruncatedBytes != 0 {
		t.Fatalf("compacted log torn: %d bytes", rec.TruncatedBytes)
	}
	if len(rec.Graphs) != 2 || rec.Graphs[0].Fingerprint != "fpA" || rec.Graphs[1].Fingerprint != "fpB" {
		t.Fatalf("graphs after compaction: %+v", rec.Graphs)
	}
	// Replaying the compacted log must yield the same final per-arc
	// delays: fpA reset + arc4=7.5; fpB arc2=1.5 then arc0=9.
	delays := map[string]map[int]float64{}
	resets := map[string]bool{}
	seqs := map[string]map[string]uint64{}
	for _, e := range rec.Edits {
		if e.Reset {
			delays[e.Fingerprint] = nil
			resets[e.Fingerprint] = true
		}
		for _, d := range e.Edits {
			if delays[e.Fingerprint] == nil {
				delays[e.Fingerprint] = map[int]float64{}
			}
			delays[e.Fingerprint][d.Arc] = d.Delay
		}
		if e.Client != "" {
			if seqs[e.Fingerprint] == nil {
				seqs[e.Fingerprint] = map[string]uint64{}
			}
			if e.Seq > seqs[e.Fingerprint][e.Client] {
				seqs[e.Fingerprint][e.Client] = e.Seq
			}
		}
	}
	if !resets["fpA"] {
		t.Fatal("fpA reset lost in compaction")
	}
	if got := delays["fpA"]; len(got) != 1 || got[4] != 7.5 {
		t.Fatalf("fpA delays after compaction: %v", got)
	}
	if got := delays["fpB"]; len(got) != 2 || got[2] != 1.5 || got[0] != 9 {
		t.Fatalf("fpB delays after compaction: %v", got)
	}
	// The dedupe table must survive: highest seq per (fp, client).
	if seqs["fpA"]["c1"] != 52 || seqs["fpB"]["c2"] != 4 {
		t.Fatalf("seqs after compaction: %v", seqs)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{CompactFloor: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.AppendGraph("fpA", []byte("tiny"))
	for i := 0; i < 400; i++ {
		if err := s.AppendEdit(Edit{Fingerprint: "fpA", Edits: []EditDelta{{Arc: 0, Delay: float64(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Compactions() == 0 {
		t.Fatal("auto-compaction never triggered")
	}
	if s.Size() > 4096 {
		t.Fatalf("log grew unbounded under churn: %d bytes", s.Size())
	}
}

func TestCrashPoints(t *testing.T) {
	for _, tc := range []struct {
		name     string
		point    FailPoint
		mayMiss  bool // the crashed append's record may be absent on replay
		mustMiss bool // ...must be absent
	}{
		{"before-write", FailBeforeWrite, true, true},
		{"partial-write", FailPartialWrite, true, true},
		{"before-sync", FailBeforeSync, true, false}, // bytes written, not synced: present on this FS
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _ := open(t, dir)
			if err := s.AppendGraph("fpA", []byte("survivor")); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendEdit(Edit{Fingerprint: "fpA", Client: "c", Seq: 1, Edits: []EditDelta{{Arc: 0, Delay: 3}}}); err != nil {
				t.Fatal(err)
			}
			s.Arm(tc.point)
			err := s.AppendEdit(Edit{Fingerprint: "fpA", Client: "c", Seq: 2, Edits: []EditDelta{{Arc: 1, Delay: 4}}})
			if err != ErrCrashed {
				t.Fatalf("armed append: %v, want ErrCrashed", err)
			}
			// Dead process emulation: every later operation fails too.
			if err := s.AppendGraph("fpB", nil); err != ErrCrashed {
				t.Fatalf("append after crash: %v, want ErrCrashed", err)
			}
			if err := s.Compact(); err != ErrCrashed {
				t.Fatalf("compact after crash: %v, want ErrCrashed", err)
			}

			// Restart: acknowledged records always recover; the crashed
			// append never replays as garbage.
			s2, rec := open(t, dir)
			defer s2.Close()
			if len(rec.Graphs) != 1 || string(rec.Graphs[0].Body) != "survivor" {
				t.Fatalf("acknowledged graph lost: %+v", rec)
			}
			if len(rec.Edits) < 1 || rec.Edits[0].Seq != 1 {
				t.Fatalf("acknowledged edit lost: %+v", rec.Edits)
			}
			crashed := len(rec.Edits) == 2
			if crashed && tc.mustMiss {
				t.Fatalf("%s: unacknowledged record replayed", tc.name)
			}
			if !crashed && !tc.mayMiss {
				t.Fatalf("%s: fully-written record lost", tc.name)
			}
			if crashed && rec.Edits[1].Seq != 2 {
				t.Fatalf("surviving record corrupt: %+v", rec.Edits[1])
			}
			if tc.point == FailPartialWrite && rec.TruncatedBytes == 0 {
				t.Fatal("torn write left no truncated tail")
			}
		})
	}
}

func TestCrashBeforeCompactRename(t *testing.T) {
	dir := t.TempDir()
	s, _ := open(t, dir)
	s.AppendGraph("fpA", []byte("graph A"))
	for i := 0; i < 10; i++ {
		s.AppendEdit(Edit{Fingerprint: "fpA", Client: "c", Seq: uint64(i + 1),
			Edits: []EditDelta{{Arc: 0, Delay: float64(i)}}})
	}
	s.Arm(FailBeforeCompactRename)
	if err := s.Compact(); err != ErrCrashed {
		t.Fatalf("armed compact: %v, want ErrCrashed", err)
	}

	// The old log is untouched; the orphan temp file is ignored.
	s2, rec := open(t, dir)
	defer s2.Close()
	if len(rec.Graphs) != 1 || len(rec.Edits) != 10 {
		t.Fatalf("state lost to crashed compaction: %d graphs, %d edits", len(rec.Graphs), len(rec.Edits))
	}
	if _, err := os.Stat(filepath.Join(dir, "wal.compact")); !os.IsNotExist(err) {
		t.Fatalf("orphan compaction file not cleaned: %v", err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatalf("compaction after recovery: %v", err)
	}
}

func TestEmptyAndMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	s, rec := open(t, dir)
	if rec.Records != 0 {
		t.Fatalf("missing dir recovered records: %+v", rec)
	}
	if err := s.AppendGraph("fp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.AppendGraph("fp2", nil); err != ErrCrashed {
		t.Fatalf("append after close: %v", err)
	}
}
