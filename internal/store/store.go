// Package store is the durability substrate of the analysis service:
// an append-only, checksummed, fsync'd log of uploaded graph bodies
// and committed delay edits, keyed by content fingerprint. A serving
// node appends every durable mutation before applying it (write-ahead
// discipline) and replays the log on boot, so a node killed mid-traffic
// recovers its whole working set — every resident graph and every
// committed edit — and re-applies the edits to bit-identical λ.
//
// Log format. One file, dir/wal.log, holding framed records:
//
//	[crc32c uint32][length uint32][payload: type byte + fields]
//
// The checksum (Castagnoli, the storage-standard polynomial) covers
// the length and payload, so a frame whose header or body was torn by
// a crash never replays as data. Fields inside the payload are
// length-prefixed (strings, byte bodies) or fixed-width little-endian
// (counts, sequence numbers, float64 delay bits), making the encoding
// unambiguous for arbitrary fingerprints and graph text.
//
// Durability. Append returns only after the record bytes are written
// AND fsynced; the directory itself is synced when the log is created
// and after every compaction rename, so the file's existence and its
// replacement are durable too. A record the caller saw acknowledged is
// therefore on stable storage — the crash/restart experiment (exp
// CHAOS) SIGKILLs a node mid-traffic and asserts exactly that.
//
// Recovery is torn-tail tolerant: replay stops at the first frame that
// is incomplete or fails its checksum, the tail past the last good
// frame is truncated, and the store reopens for appending at that
// offset. A crash can therefore lose at most the single record whose
// Append never returned — never a previously acknowledged one, and it
// can never make the log unreadable.
//
// Compaction. The live state of a log — latest body per fingerprint,
// cumulative delay edits, highest applied sequence number per client —
// is typically far smaller than the append history. When the log grows
// past a multiple of its live size (or on explicit Compact), the store
// rewrites the live state into dir/wal.compact, fsyncs it, and renames
// it over the log: crash-atomic (rename is atomic; a crash before the
// rename leaves the old log intact, the orphaned temp file is ignored
// and removed on the next Open), and replay of the compacted log
// reconstructs the exact same state — same delays, same dedupe table.
//
// Fault injection. The writer exposes named crash points (Arm): the
// next matching operation stops exactly there — after a torn prefix of
// a frame, before the fsync, before the compaction rename — and the
// store marks itself dead, emulating the process being killed at that
// instant. The CHAOS experiment drives recovery through each of them.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record types. On-disk values; never renumber.
const (
	recGraph byte = 1 // fingerprint + graph body (.tsg text, dist annotations included)
	recEdit  byte = 2 // fingerprint + reset flag + client/seq + canonical-arc delay edits
)

// FailPoint names a crash site inside the writer for fault injection.
type FailPoint int

const (
	// FailNone disarms fault injection.
	FailNone FailPoint = iota
	// FailBeforeWrite crashes before any byte of the next record lands.
	FailBeforeWrite
	// FailPartialWrite crashes after writing a strict prefix of the next
	// record's frame — the torn write a real crash can leave.
	FailPartialWrite
	// FailBeforeSync crashes after the next record's frame is fully
	// written but before it is fsynced (the record may or may not
	// survive a real crash; replay must cope either way).
	FailBeforeSync
	// FailBeforeCompactRename crashes after the compacted log is written
	// and synced but before it is renamed over the live log.
	FailBeforeCompactRename
)

// ErrCrashed is returned by operations cut short by an armed FailPoint,
// and by every operation after one fired: the store emulates a killed
// process and must be re-Opened (a "restart") to be used again.
var ErrCrashed = errors.New("store: crashed at armed fail point")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EditDelta is one committed delay assignment of an edit record. Arc is
// a canonical rank (sg.CanonicalArcOrder) — invariant under the
// declaration order of the graph body, so replay applies it to the
// same physical arc whatever order the body parses in.
type EditDelta struct {
	Arc   int
	Delay float64
}

// Edit is one committed edit record: the graph it applies to, the
// optional reset-to-nominal preceding the deltas, and the client
// sequence stamp the serving layer dedupes retries with (empty Client
// means unstamped). Replaying a log applies its edits in order.
type Edit struct {
	Fingerprint string
	Reset       bool
	Client      string
	Seq         uint64
	Edits       []EditDelta
}

// GraphBody is one persisted graph upload.
type GraphBody struct {
	Fingerprint string
	Body        []byte
}

// Recovery reports what Open replayed from an existing log.
type Recovery struct {
	// Graphs holds the latest persisted body per fingerprint, in first-
	// appearance order.
	Graphs []GraphBody
	// Edits holds every committed edit record, in append order.
	Edits []Edit
	// Records is the number of intact records replayed.
	Records int
	// TruncatedBytes is the size of the torn tail dropped past the last
	// intact record (0 for a clean log).
	TruncatedBytes int64
}

// graphState is the store's live mirror of one fingerprint: the data
// compaction rewrites.
type graphState struct {
	body    []byte
	deltas  map[int]float64   // canonical arc -> current delay (diverged from body)
	reset   bool              // a reset not yet overridden by deltas covering it
	seqs    map[string]uint64 // client -> highest appended seq
	arrival int               // first-appearance order for deterministic compaction
}

// Store is an open write-ahead log.
type Store struct {
	mu   sync.Mutex
	dir  string
	f    *os.File
	size int64
	dead bool

	graphs      map[string]*graphState
	nextArrival int

	// compactFloor is the minimum log size before auto-compaction is
	// considered; compactFactor the growth multiple of the live size
	// that triggers it.
	compactFloor int64
	liveSize     int64 // estimated size of a freshly compacted log

	armed       FailPoint
	compactions int64

	syncObs func(bytes int, seconds float64)
}

// Options tunes Open.
type Options struct {
	// CompactFloor is the minimum log size (bytes) before automatic
	// compaction is considered (default 1 MiB). Compaction triggers when
	// the log exceeds both the floor and 4× the live-state estimate.
	CompactFloor int64
	// NoAutoCompact disables size-triggered compaction; Compact can
	// still be called explicitly (the fault harness uses this to keep
	// every record on disk).
	NoAutoCompact bool
}

// Open opens (creating if absent) the write-ahead log in dir and
// replays it: the returned Recovery holds every intact graph body and
// edit record; a torn tail is truncated and reported. The directory is
// created if needed.
func Open(dir string, opts Options) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	// A temp file from a compaction that crashed before its rename is
	// dead weight: the live log is still authoritative.
	_ = os.Remove(filepath.Join(dir, "wal.compact"))
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening %s: %w", path, err)
	}
	s := &Store{
		dir:          dir,
		f:            f,
		graphs:       map[string]*graphState{},
		compactFloor: opts.CompactFloor,
	}
	if s.compactFloor <= 0 {
		s.compactFloor = 1 << 20
	}
	if opts.NoAutoCompact {
		s.compactFloor = math.MaxInt64
	}
	rec, err := s.replay()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	return s, rec, nil
}

// replay reads the log from the start, folding records into the live
// mirror and the Recovery report, truncating any torn tail.
func (s *Store) replay() (*Recovery, error) {
	rec := &Recovery{}
	var off int64
	var header [8]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(s.f, header[:]); err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("store: reading log header at %d: %w", off, err)
			}
			break // clean end, or torn header
		}
		wantCRC := binary.LittleEndian.Uint32(header[0:4])
		length := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > 1<<30 {
			break // garbage length: torn tail
		}
		if int(length) > len(buf) {
			buf = make([]byte, length)
		}
		payload := buf[:length]
		if _, err := io.ReadFull(s.f, payload); err != nil {
			if err != io.EOF && err != io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("store: reading log payload at %d: %w", off, err)
			}
			break // torn payload
		}
		crc := crc32.Update(0, crcTable, header[4:8])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != wantCRC {
			break // corrupt record: treat as tail, stop replay
		}
		if err := s.fold(payload, rec); err != nil {
			return nil, err
		}
		off += 8 + int64(length)
		rec.Records++
	}
	end, err := s.f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("store: seeking log end: %w", err)
	}
	if end > off {
		rec.TruncatedBytes = end - off
		if err := s.f.Truncate(off); err != nil {
			return nil, fmt.Errorf("store: truncating torn tail at %d: %w", off, err)
		}
		if err := s.f.Sync(); err != nil {
			return nil, fmt.Errorf("store: syncing truncated log: %w", err)
		}
	}
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("store: seeking append offset: %w", err)
	}
	s.size = off
	// Recovery reports graph bodies in first-appearance order.
	ordered := make([]*graphState, 0, len(s.graphs))
	byState := map[*graphState]string{}
	for fp, gs := range s.graphs {
		ordered = append(ordered, gs)
		byState[gs] = fp
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].arrival < ordered[j].arrival })
	for _, gs := range ordered {
		rec.Graphs = append(rec.Graphs, GraphBody{Fingerprint: byState[gs], Body: gs.body})
	}
	return rec, nil
}

// fold applies one decoded record payload to the live mirror and the
// Recovery report.
func (s *Store) fold(payload []byte, rec *Recovery) error {
	d := decoder{b: payload}
	switch typ := d.byte_(); typ {
	case recGraph:
		fp := d.str()
		body := d.bytes()
		if d.err != nil {
			return fmt.Errorf("store: decoding graph record: %w", d.err)
		}
		gs := s.state(fp)
		gs.body = body
	case recEdit:
		e := Edit{Fingerprint: d.str()}
		e.Reset = d.byte_() != 0
		e.Client = d.str()
		e.Seq = d.u64()
		n := int(d.u32())
		if d.err == nil && n > len(d.b)/12 {
			d.err = fmt.Errorf("edit count %d exceeds payload", n)
		}
		for i := 0; i < n && d.err == nil; i++ {
			e.Edits = append(e.Edits, EditDelta{Arc: int(d.u32()), Delay: d.f64()})
		}
		if d.err != nil {
			return fmt.Errorf("store: decoding edit record: %w", d.err)
		}
		s.foldEdit(e)
		if rec != nil {
			rec.Edits = append(rec.Edits, e)
		}
	default:
		return fmt.Errorf("store: unknown record type %d", typ)
	}
	return nil
}

// foldEdit merges one edit into the live mirror (the state compaction
// rewrites).
func (s *Store) foldEdit(e Edit) {
	gs := s.state(e.Fingerprint)
	if e.Reset {
		gs.deltas = nil
		gs.reset = true
	}
	for _, ed := range e.Edits {
		if gs.deltas == nil {
			gs.deltas = map[int]float64{}
		}
		gs.deltas[ed.Arc] = ed.Delay
	}
	if e.Client != "" && e.Seq > gs.seqs[e.Client] {
		if gs.seqs == nil {
			gs.seqs = map[string]uint64{}
		}
		gs.seqs[e.Client] = e.Seq
	}
}

// state returns (creating) the mirror entry for a fingerprint.
func (s *Store) state(fp string) *graphState {
	gs := s.graphs[fp]
	if gs == nil {
		gs = &graphState{arrival: s.nextArrival}
		s.nextArrival++
		s.graphs[fp] = gs
	}
	return gs
}

// HasGraph reports whether a body for the fingerprint is persisted.
func (s *Store) HasGraph(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	gs := s.graphs[fp]
	return gs != nil && gs.body != nil
}

// AppendGraph persists a graph body under its fingerprint. Returns
// after the record is on stable storage.
func (s *Store) AppendGraph(fp string, body []byte) error {
	var e encoder
	e.byte_(recGraph)
	e.str(fp)
	e.bytes(body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(e.b); err != nil {
		return err
	}
	s.state(fp).body = append([]byte(nil), body...)
	return s.maybeCompact()
}

// AppendEdit persists a committed edit record. Returns after the
// record is on stable storage — callers append BEFORE applying the
// edit to their engine (write-ahead), so an acknowledged edit is never
// lost and a lost edit was never acknowledged.
func (s *Store) AppendEdit(ed Edit) error {
	var e encoder
	e.byte_(recEdit)
	e.str(ed.Fingerprint)
	if ed.Reset {
		e.byte_(1)
	} else {
		e.byte_(0)
	}
	e.str(ed.Client)
	e.u64(ed.Seq)
	e.u32(uint32(len(ed.Edits)))
	for _, d := range ed.Edits {
		e.u32(uint32(d.Arc))
		e.f64(d.Delay)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(e.b); err != nil {
		return err
	}
	s.foldEdit(ed)
	return s.maybeCompact()
}

// SetSyncObserver installs a hook invoked after every durable append
// with the frame size and the wall time the write+fsync took — the
// serving layer feeds it into the WAL latency histogram. Pass nil to
// remove. Safe to call while the store is in use.
func (s *Store) SetSyncObserver(fn func(bytes int, seconds float64)) {
	s.mu.Lock()
	s.syncObs = fn
	s.mu.Unlock()
}

// append frames, writes and fsyncs one record. Callers hold s.mu.
func (s *Store) append(payload []byte) error {
	if s.dead {
		return ErrCrashed
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
	copy(frame[8:], payload)
	crc := crc32.Update(0, crcTable, frame[4:8])
	crc = crc32.Update(crc, crcTable, payload)
	binary.LittleEndian.PutUint32(frame[0:4], crc)

	switch s.armed {
	case FailBeforeWrite:
		return s.crash()
	case FailPartialWrite:
		// A real torn write: a strict prefix of the frame lands (cutting
		// through the payload so the checksum cannot hold), then the
		// process dies.
		if _, err := s.f.Write(frame[:len(frame)/2+1]); err != nil {
			return fmt.Errorf("store: torn write: %w", err)
		}
		_ = s.f.Sync()
		return s.crash()
	}
	start := time.Now()
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	if s.armed == FailBeforeSync {
		return s.crash()
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing log: %w", err)
	}
	s.size += int64(len(frame))
	if s.syncObs != nil {
		s.syncObs(len(frame), time.Since(start).Seconds())
	}
	return nil
}

// crash marks the store dead (armed fail point fired). Callers hold s.mu.
func (s *Store) crash() error {
	s.dead = true
	s.armed = FailNone
	return ErrCrashed
}

// Arm sets the fail point the next matching operation crashes at.
func (s *Store) Arm(p FailPoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.armed = p
}

// maybeCompact triggers compaction when the log has grown past the
// floor and past 4× the live-state estimate. Callers hold s.mu.
func (s *Store) maybeCompact() error {
	if s.size < s.compactFloor || s.size < 4*s.estimateLive() {
		return nil
	}
	return s.compactLocked()
}

// estimateLive approximates the size of a freshly compacted log.
func (s *Store) estimateLive() int64 {
	var sz int64
	for fp, gs := range s.graphs {
		if gs.body != nil {
			sz += int64(len(fp) + len(gs.body) + 32)
		}
		sz += int64(len(gs.deltas))*12 + 64
		for c := range gs.seqs {
			sz += int64(len(c)) + 32
		}
	}
	return sz
}

// Compact rewrites the log to its live state: one graph record per
// persisted body, one merged edit record carrying the cumulative
// deltas, and one stamp record per client preserving the dedupe table.
// Replaying the compacted log reconstructs exactly the same engine
// state (edits set absolute delays, so merged order is immaterial) and
// the same highest-seq-per-client map. Crash-atomic via rename.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// Compactions returns the number of compactions this Store has run.
func (s *Store) Compactions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

// Size returns the current log size in bytes.
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

func (s *Store) compactLocked() error {
	if s.dead {
		return ErrCrashed
	}
	tmpPath := filepath.Join(s.dir, "wal.compact")
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("store: creating compaction file: %w", err)
	}
	defer tmp.Close()

	var size int64
	write := func(payload []byte) error {
		frame := make([]byte, 8+len(payload))
		binary.LittleEndian.PutUint32(frame[4:8], uint32(len(payload)))
		copy(frame[8:], payload)
		crc := crc32.Update(0, crcTable, frame[4:8])
		crc = crc32.Update(crc, crcTable, payload)
		binary.LittleEndian.PutUint32(frame[0:4], crc)
		_, err := tmp.Write(frame)
		size += int64(len(frame))
		return err
	}

	// Deterministic order: fingerprints by first appearance, clients and
	// arcs sorted.
	type fpState struct {
		fp string
		gs *graphState
	}
	ordered := make([]fpState, 0, len(s.graphs))
	for fp, gs := range s.graphs {
		ordered = append(ordered, fpState{fp, gs})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].gs.arrival < ordered[j].gs.arrival })
	for _, st := range ordered {
		fp, gs := st.fp, st.gs
		if gs.body != nil {
			var e encoder
			e.byte_(recGraph)
			e.str(fp)
			e.bytes(gs.body)
			if err := write(e.b); err != nil {
				return fmt.Errorf("store: writing compacted graph: %w", err)
			}
		}
		if gs.reset || len(gs.deltas) > 0 {
			var e encoder
			e.byte_(recEdit)
			e.str(fp)
			if gs.reset {
				e.byte_(1)
			} else {
				e.byte_(0)
			}
			e.str("")
			e.u64(0)
			arcs := make([]int, 0, len(gs.deltas))
			for a := range gs.deltas {
				arcs = append(arcs, a)
			}
			sort.Ints(arcs)
			e.u32(uint32(len(arcs)))
			for _, a := range arcs {
				e.u32(uint32(a))
				e.f64(gs.deltas[a])
			}
			if err := write(e.b); err != nil {
				return fmt.Errorf("store: writing compacted edits: %w", err)
			}
		}
		clients := make([]string, 0, len(gs.seqs))
		for c := range gs.seqs {
			clients = append(clients, c)
		}
		sort.Strings(clients)
		for _, c := range clients {
			var e encoder
			e.byte_(recEdit)
			e.str(fp)
			e.byte_(0)
			e.str(c)
			e.u64(gs.seqs[c])
			e.u32(0)
			if err := write(e.b); err != nil {
				return fmt.Errorf("store: writing compacted seq stamp: %w", err)
			}
		}
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: syncing compaction file: %w", err)
	}
	if s.armed == FailBeforeCompactRename {
		return s.crash()
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, "wal.log")); err != nil {
		return fmt.Errorf("store: installing compacted log: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	// The renamed temp handle stays valid for the now-live log; reopen a
	// fresh handle on it anyway (the deferred Close above closes tmp) and
	// retire the pre-compaction handle.
	f, err := os.OpenFile(filepath.Join(s.dir, "wal.log"), os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("store: reopening compacted log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking compacted log end: %w", err)
	}
	s.f.Close()
	s.f = f
	s.size = size
	s.liveSize = size
	s.compactions++
	return nil
}

// Close syncs and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return nil
	}
	s.dead = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("store: syncing on close: %w", err)
	}
	return s.f.Close()
}

// syncDir fsyncs a directory so entry creation/rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", dir, err)
	}
	return nil
}

// --- payload encoding ---------------------------------------------------

type encoder struct{ b []byte }

func (e *encoder) byte_(v byte) { e.b = append(e.b, v) }
func (e *encoder) u32(v uint32) {
	var s [4]byte
	binary.LittleEndian.PutUint32(s[:], v)
	e.b = append(e.b, s[:]...)
}
func (e *encoder) u64(v uint64) {
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], v)
	e.b = append(e.b, s[:]...)
}
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *encoder) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *encoder) str(v string) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}

type decoder struct {
	b   []byte
	err error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b) < n {
		d.err = fmt.Errorf("record truncated: need %d bytes, have %d", n, len(d.b))
		return false
	}
	return true
}
func (d *decoder) byte_() byte {
	if !d.need(1) {
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}
func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}
func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}
func (d *decoder) str() string { return string(d.bytes()) }
