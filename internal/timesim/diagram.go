package timesim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"tsg/internal/sg"
)

// Transition is one signal edge in a timing diagram.
type Transition struct {
	Time float64
	Dir  sg.Direction
}

// Waveform is the transition history of one signal.
type Waveform struct {
	Signal       string
	InitialLevel int // 0 or 1
	Transitions  []Transition
}

// Diagram is a reconstructed timing diagram (Fig. 1c/1d of the paper):
// per-signal waveforms derived from the occurrence times of a trace.
type Diagram struct {
	Waves []Waveform
	End   float64 // latest transition time
}

// Diagram assembles a timing diagram from the trace. Only events that
// are signal transitions ('a+'/'a-') contribute; for event-initiated
// traces only reached instantiations are plotted, matching Fig. 1d where
// everything concurrent with and before the initiating event is assumed
// to have happened in the past. The initial level of each signal is
// inferred from its first transition's direction.
func (tr *Trace) Diagram() *Diagram {
	bySignal := map[string][]Transition{}
	var names []string
	end := 0.0
	for e := 0; e < tr.g.NumEvents(); e++ {
		ev := tr.g.Event(sg.EventID(e))
		if ev.Dir == sg.DirNone {
			continue
		}
		for p := 0; p < tr.periods; p++ {
			v, ok := tr.Time(sg.EventID(e), p)
			if !ok || !tr.Reached(sg.EventID(e), p) {
				continue
			}
			if _, seen := bySignal[ev.Signal]; !seen {
				names = append(names, ev.Signal)
			}
			bySignal[ev.Signal] = append(bySignal[ev.Signal], Transition{Time: v, Dir: ev.Dir})
			if v > end {
				end = v
			}
		}
	}
	sort.Strings(names)
	d := &Diagram{End: end}
	for _, name := range names {
		ts := bySignal[name]
		sort.Slice(ts, func(i, j int) bool { return ts[i].Time < ts[j].Time })
		level := 0
		if len(ts) > 0 && ts[0].Dir == sg.DirFall {
			level = 1
		}
		d.Waves = append(d.Waves, Waveform{Signal: name, InitialLevel: level, Transitions: ts})
	}
	return d
}

// Render writes an ASCII waveform view, one line per signal, with the
// given time units per character column (e.g. 1.0). A transition is drawn
// as '/' or '\', high phases as '‾' and low phases as '_'.
func (d *Diagram) Render(w io.Writer, unitsPerChar float64) error {
	if unitsPerChar <= 0 {
		return fmt.Errorf("timesim: unitsPerChar must be positive, got %g", unitsPerChar)
	}
	cols := int(math.Ceil(d.End/unitsPerChar)) + 2
	nameWidth := 4
	for _, wf := range d.Waves {
		if len(wf.Signal)+1 > nameWidth {
			nameWidth = len(wf.Signal) + 1
		}
	}
	// Time ruler every 5 columns.
	var ruler strings.Builder
	ruler.WriteString(strings.Repeat(" ", nameWidth))
	for c := 0; c < cols; c += 5 {
		label := fmt.Sprintf("%-5g", float64(c)*unitsPerChar)
		if len(label) > 5 {
			label = label[:5]
		}
		ruler.WriteString(label)
	}
	if _, err := fmt.Fprintln(w, strings.TrimRight(ruler.String(), " ")); err != nil {
		return err
	}
	for _, wf := range d.Waves {
		line := make([]rune, cols)
		level := wf.InitialLevel
		ti := 0
		for c := 0; c < cols; c++ {
			t := float64(c) * unitsPerChar
			fired := false
			for ti < len(wf.Transitions) && wf.Transitions[ti].Time <= t {
				level = levelAfter(wf.Transitions[ti].Dir)
				ti++
				fired = true
			}
			switch {
			case fired && level == 1:
				line[c] = '/'
			case fired && level == 0:
				line[c] = '\\'
			case level == 1:
				line[c] = '‾'
			default:
				line[c] = '_'
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s%s\n", nameWidth, wf.Signal, string(line)); err != nil {
			return err
		}
	}
	return nil
}

func levelAfter(d sg.Direction) int {
	if d == sg.DirRise {
		return 1
	}
	return 0
}
