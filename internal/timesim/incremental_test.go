package timesim_test

import (
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// patchRound edits 1..3 random arcs through the overlay, drains the
// dirty set into the schedule, and returns the dirty arc list.
func patchRound(t *testing.T, rng *rand.Rand, ov *sg.Overlay, sched *timesim.Schedule) []int {
	t.Helper()
	for k := 0; k < 1+rng.Intn(3); k++ {
		arc := rng.Intn(ov.NumArcs())
		var d float64
		switch rng.Intn(3) {
		case 0:
			d = float64(rng.Intn(10)) // integral jump, often 0
		case 1:
			d = ov.Delay(arc) * (0.5 + rng.Float64()) // scale around current
		default:
			d = ov.Delay(arc) // no-op edit: the cone must stop immediately
		}
		if err := ov.SetDelay(arc, d); err != nil {
			t.Fatalf("SetDelay: %v", err)
		}
	}
	var dirty []int
	ov.DrainDirty(func(arc int, delay float64) {
		sched.RefreshArcDelay(arc, delay)
		dirty = append(dirty, arc)
	})
	return dirty
}

// TestPatchMatchesFreshRun: a committed trace patched through the
// dirty cone is bit-identical to a fresh simulation of a schedule
// compiled over the edited graph — plain and event-initiated, with and
// without parent tracking, across several successive edit rounds.
func TestPatchMatchesFreshRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(12)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		ov := sg.NewOverlay(g)
		sched, err := timesim.Compile(ov.Graph())
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		periods := b + 2
		parents := trial%2 == 0
		opts := timesim.Options{Periods: periods, TrackParents: parents}

		// The committed traces: one plain, one initiated per border event.
		plain, err := sched.Run(opts)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		borders := ov.Graph().BorderEvents()
		initiated := make([]*timesim.Trace, len(borders))
		for i, ev := range borders {
			if initiated[i], err = sched.RunFrom(ev, opts); err != nil {
				t.Fatalf("RunFrom: %v", err)
			}
		}

		for round := 0; round < 4; round++ {
			dirty := patchRound(t, rng, ov, sched)
			if _, err := sched.Patch(plain, dirty); err != nil {
				t.Fatalf("Patch plain: %v", err)
			}
			for _, tr := range initiated {
				if _, err := sched.Patch(tr, dirty); err != nil {
					t.Fatalf("Patch initiated: %v", err)
				}
			}
			fresh, err := g.WithDelays(func(i int, _ float64) float64 { return ov.Delay(i) })
			if err != nil {
				t.Fatalf("WithDelays: %v", err)
			}
			freshSched, err := timesim.Compile(fresh)
			if err != nil {
				t.Fatalf("Compile fresh: %v", err)
			}
			want, err := freshSched.Run(opts)
			if err != nil {
				t.Fatalf("fresh Run: %v", err)
			}
			sameTrace(t, g, plain, want, periods, "patched plain")
			want.Release()
			for i, ev := range borders {
				want, err := freshSched.RunFrom(ev, opts)
				if err != nil {
					t.Fatalf("fresh RunFrom: %v", err)
				}
				sameTrace(t, g, initiated[i], want, periods, "patched initiated")
				want.Release()
			}
		}
	}
}

// TestPatchMarkedAndMultiArc pins the dirty-cone seeding on the record
// classes a plain refresh test cannot reach together: a marked
// (initial-token) arc, parallel multi-arcs between one event pair, and
// a marked self-loop, each edited in turn and patched.
func TestPatchMarkedAndMultiArc(t *testing.T) {
	g, err := sg.NewBuilder("patch-classes").
		Events("a", "b", "c").
		Arc("a", "b", 2).
		Arc("a", "b", 5). // parallel unmarked multi-arc, same pair
		Arc("b", "c", 1).
		Arc("c", "a", 3, sg.Marked()).
		Arc("b", "b", 4, sg.Marked()). // marked self-loop
		Arc("c", "a", 7, sg.Marked()). // parallel marked multi-arc
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const periods = 5
	opts := timesim.Options{Periods: periods, TrackParents: true}
	tr, err := sched.Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for arc := 0; arc < g.NumArcs(); arc++ {
		for _, d := range []float64{0, 1.5, 10} {
			if err := ov.SetDelay(arc, d); err != nil {
				t.Fatalf("SetDelay: %v", err)
			}
			var dirty []int
			ov.DrainDirty(func(a int, delay float64) {
				sched.RefreshArcDelay(a, delay)
				dirty = append(dirty, a)
			})
			if _, err := sched.Patch(tr, dirty); err != nil {
				t.Fatalf("Patch: %v", err)
			}
			fresh, err := g.WithDelays(func(i int, _ float64) float64 { return ov.Delay(i) })
			if err != nil {
				t.Fatalf("WithDelays: %v", err)
			}
			freshSched, err := timesim.Compile(fresh)
			if err != nil {
				t.Fatalf("Compile fresh: %v", err)
			}
			want, err := freshSched.Run(opts)
			if err != nil {
				t.Fatalf("fresh Run: %v", err)
			}
			sameTrace(t, g, tr, want, periods, "patched")
			want.Release()
		}
	}
}

// TestPatchErrors: misuse is rejected without corrupting anything.
func TestPatchErrors(t *testing.T) {
	g := gen.Oscillator()
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	other, err := timesim.Compile(g)
	if err != nil {
		t.Fatalf("Compile other: %v", err)
	}
	tr, err := sched.Run(timesim.Options{Periods: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := other.Patch(tr, nil); err == nil {
		t.Error("Patch accepted a trace from a different schedule")
	}
	if _, err := sched.Patch(tr, []int{-1}); err == nil {
		t.Error("Patch accepted a negative dirty arc")
	}
	if _, err := sched.Patch(tr, []int{g.NumArcs()}); err == nil {
		t.Error("Patch accepted an out-of-range dirty arc")
	}
	if _, err := sched.Patch(tr, nil); err != nil {
		t.Errorf("empty Patch failed: %v", err)
	}
	tr.Release()
	if _, err := sched.Patch(tr, nil); err == nil {
		t.Error("Patch accepted a released trace")
	}
}
