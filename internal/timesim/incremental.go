package timesim

import (
	"fmt"
	"math"
	"math/bits"

	"tsg/internal/sg"
)

// Patch is the incremental re-simulation kernel: it updates a finished
// trace in place so that it becomes bit-identical to a fresh Run (or
// RunFrom, for event-initiated traces) of the schedule at its CURRENT
// delay columns, given that the trace was produced at delay columns
// that differ only on the listed dirty arcs.
//
// The algorithm re-propagates only the forward cone of the dirty arc
// heads. The worklist is one bitset per period over topological
// positions, swept in ascending bit order — exactly the (period, topo)
// evaluation order of the full kernel; every set position is
// recomputed with the same per-class record scan as Run — same record
// order, same comparison association, same first-max-wins parent
// selection — against rows whose already-final entries are either
// untouched (outside the cone) or previously recomputed (inside it, at
// a smaller position). An instantiation whose recomputed time equals
// its old value bitwise stops the expansion: its successors read only
// the time, so nothing downstream can change. Parent pointers, when
// the trace tracks them, are rewritten on every recomputation but
// never propagate on their own — a changed parent with an unchanged
// time is a local repair. Same-period propagation only ever targets
// positions after the sweep cursor (unmarked arcs respect the topo
// order), and marked arcs target later periods, so the sweep never
// misses a queued position.
//
// Reachedness is structural: which instantiations exist and which are
// preceded by the origin depends only on the graph and the origin,
// never on delays, so the trace's reached bitset (and its NaN holes)
// are read but never written.
//
// Cost: O(periods · n/64) to sweep the bitset words plus the record
// scans of the cone members — for a localized edit a small fraction of
// the O(periods·m) full run. An edit whose cone floods the unfolding
// would cost MORE than a full run patched node by node (each changed
// node pays an out-arc scan and worklist bookkeeping on top of the
// in-record scan), so the patch watches its own cone: past
// patchBailFraction of the instantiations it abandons the worklist and
// simply re-evaluates every row in place with the straight kernel —
// bit-identical either way, and the worst case is capped at one plain
// simulation.
//
// The trace must have been produced by this schedule and not yet
// released; callers must serialise Patch with Run/RunFrom/refreshes on
// the same trace, but patches of DIFFERENT traces may run concurrently
// (each Patch draws private scratch from a pool).
//
// The returned PatchStats report the dirty-cone size actually swept
// and whether the flood bail-out fired — the engine surfaces both
// through spans and Stats().
func (s *Schedule) Patch(tr *Trace, dirty []int) (PatchStats, error) {
	if tr.sched != s {
		return PatchStats{}, fmt.Errorf("timesim: Patch on a trace from a different schedule")
	}
	if tr.slab == nil {
		return PatchStats{}, fmt.Errorf("timesim: Patch on a released trace")
	}
	n := s.n
	P := tr.periods
	ps := s.acquirePatch(P, n)
	defer s.patchPool.Put(ps)

	// Validate before seeding any bits, so an error return cannot pool
	// the scratch with pending bits set (its contract is empty bitsets
	// between patches).
	for _, ai := range dirty {
		if ai < 0 || ai >= len(s.rec0) {
			return PatchStats{}, fmt.Errorf("timesim: dirty arc %d out of range [0,%d)", ai, len(s.rec0))
		}
	}
	// Seed the worklist: every instantiation whose in-record delay
	// column changed, in every period class the arc has a record in.
	for _, ai := range dirty {
		to := s.arcTo[ai]
		if s.rec0[ai] >= 0 {
			ps.set(0, int(s.pos0[to]))
		}
		if P > 1 && s.rec1[ai] >= 0 {
			ps.set(1, int(s.posR[to]))
		}
		if s.recS[ai] >= 0 {
			for p := 2; p < P; p++ {
				ps.set(p, int(s.posR[to]))
			}
		}
	}

	initiated := tr.origin != sg.None
	parents := tr.parentEvent != nil
	// The flood budget: beyond this many recomputations, re-evaluating
	// the remaining rows outright is cheaper than worklist propagation.
	budget := (len(s.order) + (P-1)*len(s.orderR)) / patchBailFraction
	recomputed := 0
	for p := 0; p < P; p++ {
		pend := ps.pend[p*ps.words : (p+1)*ps.words]
		for w := 0; w < ps.words; w++ {
			for pend[w] != 0 {
				if budget--; budget < 0 {
					ps.clear()
					s.reevaluate(tr, p, initiated, parents)
					return PatchStats{Recomputed: recomputed, Flooded: true}, nil
				}
				recomputed++
				b := pend[w] & (-pend[w])
				pend[w] &^= b
				pos := w<<6 + bits.TrailingZeros64(b)
				var changed bool
				var f sg.EventID
				if p == 0 {
					f = s.order[pos]
					changed = s.repatch0(tr, pos, initiated, parents)
				} else {
					f = s.orderR[pos]
					changed = s.repatch(tr, p, pos, initiated, parents)
				}
				if !changed {
					continue
				}
				// Forward the change to every successor instantiation
				// that exists within the simulated horizon. The
				// record-class inverse columns double as the existence
				// test of §IV.A: an arc has a class record exactly when
				// it constrains the target period.
				for _, ai := range s.g.OutArcs(f) {
					t := p + int(s.arcMark[ai])
					if t >= P {
						continue
					}
					switch {
					case t == 0:
						if s.rec0[ai] >= 0 {
							ps.set(0, int(s.pos0[s.arcTo[ai]]))
						}
					case t == 1:
						if s.rec1[ai] >= 0 {
							ps.set(1, int(s.posR[s.arcTo[ai]]))
						}
					default:
						if s.recS[ai] >= 0 {
							ps.set(t, int(s.posR[s.arcTo[ai]]))
						}
					}
				}
			}
		}
	}
	return PatchStats{Recomputed: recomputed}, nil
}

// PatchStats reports what one Patch call did.
type PatchStats struct {
	// Recomputed counts the instantiations the worklist sweep actually
	// re-evaluated (the realized dirty-cone size) before finishing or
	// bailing out.
	Recomputed int
	// Flooded is true when the cone exceeded the flood budget and the
	// patch fell back to straight in-place re-evaluation of the
	// remaining rows.
	Flooded bool
}

// patchBailFraction tunes the flood bail-out: a patch abandons its
// worklist once it has recomputed more than 1/patchBailFraction of the
// trace's instantiations. Worklist propagation costs roughly two to
// three times the straight kernel's per-node work (out-arc scan +
// bitset bookkeeping on top of the in-record scan), so a flood that
// bails after 1/8 of the instantiations has wasted about a third of
// one plain evaluation before switching to it — while cones an order
// of magnitude smaller than the unfolding (the localized-edit case the
// kernel exists for) never hit the budget.
const patchBailFraction = 8

// reevaluate abandons an in-flight patch: every row from period p on
// is re-evaluated in place with the straight kernel loops. Rows before
// p are already final (the worklist sweep finishes a period before
// entering the next). Reached bits are structural and already set, and
// the kernel rewrites every row cell and every tracked parent entry,
// so the trace is bit-identical to a fresh run.
func (s *Schedule) reevaluate(tr *Trace, p int, initiated, parents bool) {
	if p == 0 {
		s.runPeriod0(tr, initiated, parents)
		p = 1
	}
	if p == 1 && tr.periods > 1 {
		s.runPeriod(tr, 1, s.off1, s.src1, s.del1, s.mark1, s.arc1, initiated, parents)
		p = 2
	}
	for ; p < tr.periods; p++ {
		s.runPeriod(tr, p, s.offS, s.srcS, s.delS, s.markS, s.arcS, initiated, parents)
	}
}

// repatch0 recomputes one period-0 instantiation — the single-event
// body of runPeriod0 — and reports whether its time changed.
func (s *Schedule) repatch0(tr *Trace, pos int, initiated, parents bool) bool {
	f := s.order[pos]
	times := tr.times
	best := math.Inf(-1)
	bestE := sg.None
	var bestArc int32 = -1
	any := false
	for r := s.off0[pos]; r < s.off0[pos+1]; r++ {
		src := int(s.src0[r])
		if initiated && !bitGet(tr.reached, src) {
			continue
		}
		any = true
		if v := times[src] + s.del0[r]; v > best {
			best = v
			bestE = s.src0[r]
			bestArc = s.arc0[r]
		}
	}
	if (initiated && f == tr.origin) || !any {
		// Pinned to 0 by definition or structure — delay-independent.
		return false
	}
	fi := int(f)
	changed := times[fi] != best
	times[fi] = best
	if parents {
		tr.parentEvent[fi] = bestE
		tr.parentPeriod[fi] = 0
		tr.parentArc[fi] = bestArc
	}
	return changed
}

// repatch recomputes one instantiation of a period >= 1 — the
// single-event body of runPeriod — and reports whether its time
// changed.
func (s *Schedule) repatch(tr *Trace, p, pos int, initiated, parents bool) bool {
	off, src, del, mark, arc := s.offS, s.srcS, s.delS, s.markS, s.arcS
	if p == 1 {
		off, src, del, mark, arc = s.off1, s.src1, s.del1, s.mark1, s.arc1
	}
	n := s.n
	base := p * n
	times := tr.times
	f := s.orderR[pos]
	best := math.Inf(-1)
	bestE := sg.None
	var bestP, bestArc int32 = -1, -1
	any := false
	for r := off[pos]; r < off[pos+1]; r++ {
		sb := base - int(mark[r])*n + int(src[r])
		if initiated && !bitGet(tr.reached, sb) {
			continue
		}
		any = true
		if v := times[sb] + del[r]; v > best {
			best = v
			bestE = src[r]
			bestP = int32(p) - mark[r]
			bestArc = arc[r]
		}
	}
	if !any {
		return false
	}
	fi := base + int(f)
	changed := times[fi] != best
	times[fi] = best
	if parents {
		tr.parentEvent[fi] = bestE
		tr.parentPeriod[fi] = bestP
		tr.parentArc[fi] = bestArc
	}
	return changed
}

// patchScratch is the private working memory of one Patch: one pending
// bitset per period over topological positions. Setting a bit queues
// an instantiation (idempotently); the sweep clears each bit before
// recomputing, so a finished patch leaves the bitsets empty for the
// next acquisition.
type patchScratch struct {
	pend  []uint64 // periods × words, all zero between patches
	words int      // words per period
}

// set queues position pos of period p.
func (ps *patchScratch) set(p, pos int) {
	ps.pend[p*ps.words+pos>>6] |= 1 << (uint(pos) & 63)
}

// clear resets every pending bit (the bail-out path; a completed sweep
// leaves the bitsets empty on its own).
func (ps *patchScratch) clear() {
	clear(ps.pend)
}

// acquirePatch prepares pooled patch scratch for periods × n keys.
func (s *Schedule) acquirePatch(periods, n int) *patchScratch {
	ps, _ := s.patchPool.Get().(*patchScratch)
	words := (n + 63) >> 6
	need := periods * words
	if ps == nil || ps.words != words || len(ps.pend) < need {
		ps = &patchScratch{pend: make([]uint64, need), words: words}
	}
	return ps
}

// MemEstimate returns the approximate heap bytes of the trace's
// retained slabs: the times rows plus, when present, the reached
// bitset and the three parent arrays. Session layers retaining
// committed traces for incremental re-simulation account them with
// this (see cycletime.Engine.SizeHint).
func (tr *Trace) MemEstimate() int64 {
	sz := int64(len(tr.times)) * 8
	sz += int64(len(tr.reached)) * 8
	sz += int64(len(tr.parentEvent)) * 16 // EventID + period + arc columns
	return sz
}
