package timesim

import (
	"fmt"
	"math"
	"sync"

	"tsg/internal/sg"
)

// Schedule is a Timed Signal Graph compiled for repeated simulation. The
// existence logic of §IV.A — which in-arcs constrain an instantiation in
// which unfolding period, and from which source period — depends only on
// the period class, never on the concrete period:
//
//   - period 0: exactly the unmarked in-arcs (marked arcs start
//     satisfied by their token; arcs from non-repetitive sources exist
//     iff p equals their marking);
//   - period 1: arcs from repetitive sources, plus marked arcs from
//     non-repetitive sources (their single occurrence feeds f_1);
//   - periods >= 2: arcs from repetitive sources only.
//
// Compile therefore specialises the graph's in-arc records into three
// flat struct-of-arrays tables, one per class, in topological order. In
// every class the source period is p - markingOffset, so the inner loop
// of a period is a single linear scan with no branching on event or
// source kinds. All records within one event keep ascending arc-index
// order, making parent selection (first max wins) bit-identical to the
// reference kernel.
//
// A Schedule is immutable after Compile — except for its delay columns,
// which RefreshArcDelay and RefreshDelays rewrite in place so one
// compiled schedule can track the delay edits of an sg.Overlay session
// (the compile-once/query-many engine of the cycletime package) —
// and safe for concurrent use between refreshes; the b event-initiated
// simulations of one cycle-time analysis share one Schedule and draw
// their working slabs from its pool. Refreshes must not run
// concurrently with Run/RunFrom; the session layer serialises them.
type Schedule struct {
	g      *sg.Graph
	n      int
	order  []sg.EventID // full period order (evaluated in period 0)
	orderR []sg.EventID // repetitive events in period order (periods >= 1)

	// Period-0 records, CSR over order positions.
	off0 []int32
	src0 []sg.EventID
	del0 []float64
	arc0 []int32

	// Period-1 records, CSR over orderR positions.
	off1  []int32
	src1  []sg.EventID
	del1  []float64
	mark1 []int32
	arc1  []int32

	// Steady-state (period >= 2) records, CSR over orderR positions.
	offS  []int32
	srcS  []sg.EventID
	delS  []float64
	markS []int32
	arcS  []int32

	// rec0/rec1/recS invert the arc columns: graph arc index -> record
	// position within each class, -1 where the arc has no record of that
	// class. They make a single-arc delay refresh O(1).
	rec0, rec1, recS []int32

	// pos0/posR invert the order views: event -> position in order
	// (period 0) and in orderR (periods >= 1; -1 for non-repetitive
	// events). The incremental kernel (Patch) uses them to address the
	// per-class record ranges of a single event. arcTo/arcMark are the
	// flat head-event and marking columns of the graph's arcs, so the
	// kernel's propagation loop never copies Arc structs.
	pos0, posR []int32
	arcTo      []sg.EventID
	arcMark    []int32

	patchPool sync.Pool // *patchScratch

	// rowInit is the times-row template for periods >= 1: NaN at
	// non-repetitive slots (no instantiation), 0 elsewhere (overwritten
	// during evaluation).
	rowInit []float64

	pool    sync.Pool // *slab
	winPool sync.Pool // *window (the two-row memory-bounded kernel)
}

// slab bundles the working memory of one simulation so traces can return
// it to the schedule's pool in a single Put.
type slab struct {
	times []float64
	reach []uint64
	pe    []sg.EventID
	pp    []int32
	pa    []int32
}

// Compile builds the simulation schedule of a graph. The graph must have
// a period order (guaranteed for validated graphs).
func Compile(g *sg.Graph) (*Schedule, error) {
	order, err := g.PeriodOrder()
	if err != nil {
		return nil, err
	}
	csr := g.InCSR()
	n := g.NumEvents()
	s := &Schedule{g: g, n: n, order: order}

	// Exact record counts per class, so the column arrays are allocated
	// once instead of growing by appends.
	var n0, n1, nS, nR int
	for _, f := range order {
		rep := g.Event(f).Repetitive
		if rep {
			nR++
		}
		for r := csr.Off[f]; r < csr.Off[f+1]; r++ {
			if csr.Mark[r] == 0 {
				n0++
			}
			if !rep {
				continue
			}
			if g.Event(csr.Src[r]).Repetitive {
				n1++
				nS++
			} else if csr.Mark[r] == 1 {
				n1++
			}
		}
	}
	s.src0 = make([]sg.EventID, 0, n0)
	s.del0 = make([]float64, 0, n0)
	s.arc0 = make([]int32, 0, n0)
	s.src1 = make([]sg.EventID, 0, n1)
	s.del1 = make([]float64, 0, n1)
	s.mark1 = make([]int32, 0, n1)
	s.arc1 = make([]int32, 0, n1)
	s.srcS = make([]sg.EventID, 0, nS)
	s.delS = make([]float64, 0, nS)
	s.markS = make([]int32, 0, nS)
	s.arcS = make([]int32, 0, nS)
	s.orderR = make([]sg.EventID, 0, nR)

	m := g.NumArcs()
	s.rec0 = make([]int32, m)
	s.rec1 = make([]int32, m)
	s.recS = make([]int32, m)
	for i := 0; i < m; i++ {
		s.rec0[i], s.rec1[i], s.recS[i] = -1, -1, -1
	}

	s.off0 = make([]int32, 1, n+1)
	for _, f := range order {
		for r := csr.Off[f]; r < csr.Off[f+1]; r++ {
			if csr.Mark[r] == 0 {
				s.rec0[csr.Arc[r]] = int32(len(s.src0))
				s.src0 = append(s.src0, csr.Src[r])
				s.del0 = append(s.del0, csr.Delay[r])
				s.arc0 = append(s.arc0, int32(csr.Arc[r]))
			}
		}
		s.off0 = append(s.off0, int32(len(s.src0)))
	}

	s.pos0 = make([]int32, n)
	s.posR = make([]int32, n)
	for i := range s.posR {
		s.posR[i] = -1
	}
	for idx, f := range order {
		s.pos0[f] = int32(idx)
	}
	s.arcTo = make([]sg.EventID, m)
	s.arcMark = make([]int32, m)
	for i := 0; i < m; i++ {
		a := g.Arc(i)
		s.arcTo[i] = a.To
		if a.Marked {
			s.arcMark[i] = 1
		}
	}

	s.rowInit = make([]float64, n)
	for i := range s.rowInit {
		s.rowInit[i] = math.NaN()
	}
	s.off1 = make([]int32, 1, n+1)
	s.offS = make([]int32, 1, n+1)
	for _, f := range order {
		if !g.Event(f).Repetitive {
			continue
		}
		s.posR[f] = int32(len(s.orderR))
		s.orderR = append(s.orderR, f)
		s.rowInit[f] = 0
		for r := csr.Off[f]; r < csr.Off[f+1]; r++ {
			srcRep := g.Event(csr.Src[r]).Repetitive
			if srcRep || csr.Mark[r] == 1 {
				s.rec1[csr.Arc[r]] = int32(len(s.src1))
				s.src1 = append(s.src1, csr.Src[r])
				s.del1 = append(s.del1, csr.Delay[r])
				s.mark1 = append(s.mark1, csr.Mark[r])
				s.arc1 = append(s.arc1, int32(csr.Arc[r]))
			}
			if srcRep {
				s.recS[csr.Arc[r]] = int32(len(s.srcS))
				s.srcS = append(s.srcS, csr.Src[r])
				s.delS = append(s.delS, csr.Delay[r])
				s.markS = append(s.markS, csr.Mark[r])
				s.arcS = append(s.arcS, int32(csr.Arc[r]))
			}
		}
		s.off1 = append(s.off1, int32(len(s.src1)))
		s.offS = append(s.offS, int32(len(s.srcS)))
	}
	return s, nil
}

// Graph returns the compiled graph.
func (s *Schedule) Graph() *sg.Graph { return s.g }

// MemEstimate returns the approximate heap bytes of the compiled
// schedule's own arrays — the three per-class record tables, their
// offset and inverse columns, the order views and the row template —
// excluding the graph, which the schedule shares with its compiler,
// and excluding pooled working memory, whose size depends on the
// simulation shape — full slabs scale with the period count
// (SlabBytes), two-row windows with n alone (WindowBytes). The session
// layer accounts for whichever layout it runs; see
// cycletime.Engine.SizeHint.
func (s *Schedule) MemEstimate() int64 {
	recs := int64(len(s.src0)+len(s.src1)+len(s.srcS)) * 24 // src+del+arc columns
	recs += int64(len(s.mark1)+len(s.markS)) * 4
	offs := int64(len(s.off0)+len(s.off1)+len(s.offS)) * 4
	inv := int64(len(s.rec0)+len(s.rec1)+len(s.recS)+len(s.pos0)+len(s.posR)+len(s.arcMark))*4 + int64(len(s.arcTo))*8
	views := int64(len(s.order)+len(s.orderR)+len(s.rowInit)) * 8
	return recs + offs + inv + views
}

// RefreshArcDelay rewrites the compiled delay columns for one arc. It
// is the O(1) hook an sg.Overlay session drains its dirty set into
// (Overlay.DrainDirty), keeping the schedule consistent with in-place
// delay edits without recompiling. Must not run concurrently with
// Run/RunFrom.
func (s *Schedule) RefreshArcDelay(arc int, delay float64) {
	if r := s.rec0[arc]; r >= 0 {
		s.del0[r] = delay
	}
	if r := s.rec1[arc]; r >= 0 {
		s.del1[r] = delay
	}
	if r := s.recS[arc]; r >= 0 {
		s.delS[r] = delay
	}
}

// RefreshDelays re-reads every arc delay from the compiled graph (an
// overlay view whose delays may have changed wholesale) into the delay
// columns: the O(m) full-refresh counterpart of RefreshArcDelay. Must
// not run concurrently with Run/RunFrom.
func (s *Schedule) RefreshDelays() {
	for r, a := range s.arc0 {
		s.del0[r] = s.g.Arc(int(a)).Delay
	}
	for r, a := range s.arc1 {
		s.del1[r] = s.g.Arc(int(a)).Delay
	}
	for r, a := range s.arcS {
		s.delS[r] = s.g.Arc(int(a)).Delay
	}
}

// Run executes the plain timing simulation t of §IV.A.
func (s *Schedule) Run(opts Options) (*Trace, error) {
	return s.run(sg.None, opts)
}

// RunFrom executes the event-initiated simulation t_origin of §IV.B.
// The returned trace may be handed back to the schedule's slab pool with
// Trace.Release once its values have been consumed.
func (s *Schedule) RunFrom(origin sg.EventID, opts Options) (*Trace, error) {
	if origin < 0 || int(origin) >= s.n {
		return nil, fmt.Errorf("timesim: origin event %d out of range", origin)
	}
	return s.run(origin, opts)
}

// acquire prepares a slab for a run of the given shape, reusing pooled
// memory where the capacity suffices.
func (s *Schedule) acquire(periods int, initiated, parents bool) *slab {
	need := periods * s.n
	sl, _ := s.pool.Get().(*slab)
	if sl == nil {
		sl = &slab{}
	}
	if cap(sl.times) < need {
		sl.times = make([]float64, need)
	} else {
		sl.times = sl.times[:need]
	}
	if initiated {
		words := (need + 63) >> 6
		if cap(sl.reach) < words {
			sl.reach = make([]uint64, words)
		} else {
			sl.reach = sl.reach[:words]
			clear(sl.reach)
		}
	}
	if parents {
		if cap(sl.pe) < need {
			sl.pe = make([]sg.EventID, need)
			sl.pp = make([]int32, need)
			sl.pa = make([]int32, need)
		} else {
			sl.pe = sl.pe[:need]
			sl.pp = sl.pp[:need]
			sl.pa = sl.pa[:need]
		}
		for i := range sl.pe {
			sl.pe[i] = sg.None
			sl.pp[i] = -1
			sl.pa[i] = -1
		}
	}
	return sl
}

func (s *Schedule) run(origin sg.EventID, opts Options) (*Trace, error) {
	if opts.Periods < 1 {
		return nil, fmt.Errorf("timesim: periods must be >= 1, got %d", opts.Periods)
	}
	initiated := origin != sg.None
	sl := s.acquire(opts.Periods, initiated, opts.TrackParents)
	tr := &Trace{
		g: s.g, origin: origin, periods: opts.Periods, n: s.n, order: s.order,
		times: sl.times, sched: s, slab: sl,
	}
	if initiated {
		tr.reached = sl.reach
	}
	if opts.TrackParents {
		tr.parentEvent, tr.parentPeriod, tr.parentArc = sl.pe, sl.pp, sl.pa
	}
	s.runPeriod0(tr, initiated, opts.TrackParents)
	if opts.Periods > 1 {
		s.runPeriod(tr, 1, s.off1, s.src1, s.del1, s.mark1, s.arc1, initiated, opts.TrackParents)
	}
	for p := 2; p < opts.Periods; p++ {
		s.runPeriod(tr, p, s.offS, s.srcS, s.delS, s.markS, s.arcS, initiated, opts.TrackParents)
	}
	return tr, nil
}

// runPeriod0 evaluates period 0, where every event has an instantiation
// and every live in-arc has source period 0.
func (s *Schedule) runPeriod0(tr *Trace, initiated, parents bool) {
	times := tr.times
	for idx, f := range s.order {
		best := math.Inf(-1)
		bestE := sg.None
		var bestArc int32 = -1
		any := false
		for r := s.off0[idx]; r < s.off0[idx+1]; r++ {
			src := int(s.src0[r])
			if initiated && !bitGet(tr.reached, src) {
				continue
			}
			any = true
			if v := times[src] + s.del0[r]; v > best {
				best = v
				bestE = s.src0[r]
				bestArc = s.arc0[r]
			}
		}
		fi := int(f)
		switch {
		case initiated && f == tr.origin:
			// t_g(g_0) = 0 by definition, regardless of in-arcs.
			times[fi] = 0
			bitSet(tr.reached, fi)
		case !any:
			// Member of I_u, or (initiated) not preceded by the origin:
			// pinned to 0; reached stays false so successors skip it.
			times[fi] = 0
		default:
			times[fi] = best
			if initiated {
				bitSet(tr.reached, fi)
			}
			if parents {
				tr.parentEvent[fi] = bestE
				tr.parentPeriod[fi] = 0
				tr.parentArc[fi] = bestArc
			}
		}
	}
}

// runPeriod evaluates one period >= 1 against a record class. Source
// periods are p minus the record's marking offset.
func (s *Schedule) runPeriod(tr *Trace, p int, off []int32, src []sg.EventID, del []float64, mark []int32, arc []int32, initiated, parents bool) {
	n := s.n
	base := p * n
	times := tr.times
	copy(times[base:base+n], s.rowInit)
	for idx, f := range s.orderR {
		best := math.Inf(-1)
		bestE := sg.None
		var bestP, bestArc int32 = -1, -1
		any := false
		for r := off[idx]; r < off[idx+1]; r++ {
			sb := base - int(mark[r])*n + int(src[r])
			if initiated && !bitGet(tr.reached, sb) {
				continue
			}
			any = true
			if v := times[sb] + del[r]; v > best {
				best = v
				bestE = src[r]
				bestP = int32(p) - mark[r]
				bestArc = arc[r]
			}
		}
		fi := base + int(f)
		if !any {
			times[fi] = 0
			continue
		}
		times[fi] = best
		if initiated {
			bitSet(tr.reached, fi)
		}
		if parents {
			tr.parentEvent[fi] = bestE
			tr.parentPeriod[fi] = bestP
			tr.parentArc[fi] = bestArc
		}
	}
}
