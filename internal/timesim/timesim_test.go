package timesim_test

import (
	"math"
	"strings"
	"testing"

	"tsg/internal/sg"
	"tsg/internal/timesim"
	"tsg/internal/unfold"
)

// oscillator builds the Fig. 1b / Fig. 2c Timed Signal Graph.
func oscillator(t testing.TB) *sg.Graph {
	t.Helper()
	g, err := sg.NewBuilder("oscillator").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Events("a+", "a-", "b+", "b-", "c+", "c-").
		Arc("e-", "a+", 2, sg.Once()).
		Arc("e-", "f-", 3).
		Arc("f-", "b+", 1, sg.Once()).
		Arc("a+", "c+", 3).
		Arc("b+", "c+", 2).
		Arc("c+", "a-", 2).
		Arc("c+", "b-", 1).
		Arc("a-", "c-", 3).
		Arc("b-", "c-", 2).
		Arc("c-", "a+", 2, sg.Marked()).
		Arc("c-", "b+", 1, sg.Marked()).
		Build()
	if err != nil {
		t.Fatalf("oscillator: %v", err)
	}
	return g
}

func timeOf(t *testing.T, tr *timesim.Trace, name string, p int) float64 {
	t.Helper()
	v, ok := tr.Time(tr.Graph().MustEvent(name), p)
	if !ok {
		t.Fatalf("no instantiation %s_%d", name, p)
	}
	return v
}

// TestExample3 checks the plain timing simulation against the table of
// Example 3: t(e-0 f-0 a+0 b+0 c+0 a-0 b-0 c-0 a+1 b+1 c+1) =
// 0 3 2 4 6 8 7 11 13 12 16.
func TestExample3(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.Run(g, timesim.Options{Periods: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []struct {
		name string
		p    int
		t    float64
	}{
		{"e-", 0, 0}, {"f-", 0, 3}, {"a+", 0, 2}, {"b+", 0, 4}, {"c+", 0, 6},
		{"a-", 0, 8}, {"b-", 0, 7}, {"c-", 0, 11},
		{"a+", 1, 13}, {"b+", 1, 12}, {"c+", 1, 16},
	}
	for _, w := range want {
		if got := timeOf(t, tr, w.name, w.p); got != w.t {
			t.Errorf("t(%s_%d) = %g, want %g (Example 3)", w.name, w.p, got, w.t)
		}
	}
}

// TestExample4 checks the b+0-initiated simulation against Example 4:
// t_{b+0}(b+0 c+0 a-0 b-0 c-0 a+1 b+1 c+1) = 0 2 4 3 7 9 8 12, with
// e-0, f-0, a+0 pinned to 0 and unreached.
func TestExample4(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.RunFrom(g, g.MustEvent("b+"), timesim.Options{Periods: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []struct {
		name string
		p    int
		t    float64
	}{
		{"b+", 0, 0}, {"c+", 0, 2}, {"a-", 0, 4}, {"b-", 0, 3}, {"c-", 0, 7},
		{"a+", 1, 9}, {"b+", 1, 8}, {"c+", 1, 12},
	}
	for _, w := range want {
		if got := timeOf(t, tr, w.name, w.p); got != w.t {
			t.Errorf("t_b+0(%s_%d) = %g, want %g (Example 4)", w.name, w.p, got, w.t)
		}
	}
	for _, name := range []string{"e-", "f-", "a+"} {
		if got := timeOf(t, tr, name, 0); got != 0 {
			t.Errorf("t_b+0(%s_0) = %g, want 0 (not preceded)", name, got)
		}
		if tr.Reached(g.MustEvent(name), 0) {
			t.Errorf("%s_0 reported reached from b+0", name)
		}
	}
	if !tr.Reached(g.MustEvent("b+"), 0) {
		t.Error("origin b+_0 not reached")
	}
}

// TestTableVIIIC checks the a+0-initiated simulation of §VIII.C:
// t_{a+0}(a+0 b+0 c+0 a-0 b-0 c-0 a+1 b+1 ... c-1 a+2 b+2) =
// 0 0 3 5 4 8 10 9 ... 18 20 19, and the δ values 10, 10.
func TestTableVIIIC(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.RunFrom(g, g.MustEvent("a+"), timesim.Options{Periods: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []struct {
		name string
		p    int
		t    float64
	}{
		{"a+", 0, 0}, {"b+", 0, 0}, {"c+", 0, 3}, {"a-", 0, 5}, {"b-", 0, 4},
		{"c-", 0, 8}, {"a+", 1, 10}, {"b+", 1, 9}, {"c-", 1, 18},
		{"a+", 2, 20}, {"b+", 2, 19},
	}
	for _, w := range want {
		if got := timeOf(t, tr, w.name, w.p); got != w.t {
			t.Errorf("t_a+0(%s_%d) = %g, want %g (§VIII.C)", w.name, w.p, got, w.t)
		}
	}
	for j, wantD := range map[int]float64{1: 10, 2: 10} {
		d, err := tr.Distance(j)
		if err != nil {
			t.Fatalf("Distance(%d): %v", j, err)
		}
		if d != wantD {
			t.Errorf("δ_a+0(a+%d) = %g, want %g", j, d, wantD)
		}
	}

	// And the b+-initiated distances of §VIII.C: 8 and 9.
	trb, err := timesim.RunFrom(g, g.MustEvent("b+"), timesim.Options{Periods: 3})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for j, wantD := range map[int]float64{1: 8, 2: 9} {
		d, err := trb.Distance(j)
		if err != nil {
			t.Fatalf("Distance(%d): %v", j, err)
		}
		if d != wantD {
			t.Errorf("δ_b+0(b+%d) = %g, want %g", j, d, wantD)
		}
	}
}

// TestFig1cOccurrenceDistances checks §II: the occurrence distance
// between a+0 and a+1 is 11, and 10 between later instantiations; the
// average-distance series is 2, 13/2, 23/3, 33/4, 43/5, 53/6 → 10.
func TestFig1cOccurrenceDistances(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.Run(g, timesim.Options{Periods: 30})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a := g.MustEvent("a+")
	d0, err := tr.OccurrenceDistance(a, 0)
	if err != nil {
		t.Fatalf("OccurrenceDistance: %v", err)
	}
	if d0 != 11 {
		t.Errorf("occurrence distance a+0..a+1 = %g, want 11 (§II)", d0)
	}
	for i := 1; i < 29; i++ {
		d, err := tr.OccurrenceDistance(a, i)
		if err != nil {
			t.Fatalf("OccurrenceDistance(%d): %v", i, err)
		}
		if d != 10 {
			t.Errorf("occurrence distance a+%d..a+%d = %g, want 10", i, i+1, d)
		}
	}
	s := tr.AvgDistances(a)
	wantSeries := []float64{2, 13.0 / 2, 23.0 / 3, 33.0 / 4, 43.0 / 5, 53.0 / 6}
	for i, w := range wantSeries {
		if got := s.At(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("δ(a+%d) = %g, want %g (§II)", i, got, w)
		}
	}
	if !s.ConvergedTo(10, 0.3, 2) {
		t.Errorf("average distance series %v does not approach 10", s)
	}
}

// TestFig1dInitiatedDistances checks Fig. 1d: the a+-initiated
// simulation yields occurrence distances 10, 10, 10, ... immediately.
func TestFig1dInitiatedDistances(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.RunFrom(g, g.MustEvent("a+"), timesim.Options{Periods: 6})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s, err := tr.InitiatedDistances()
	if err != nil {
		t.Fatalf("InitiatedDistances: %v", err)
	}
	for i := 0; i < s.Len(); i++ {
		if s.At(i) != 10 {
			t.Errorf("δ_a+0(a+%d) = %g, want 10 (Fig. 1d)", i+1, s.At(i))
		}
	}
}

// TestInfiniteBSeries checks §VIII.C's asymptotic example: the
// b+-initiated distances are 8, 9, 9⅓, 9½, 9⅗, … approaching but never
// reaching the cycle time 10 (Prop. 8, Fig. 4 off-critical behaviour).
func TestInfiniteBSeries(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.RunFrom(g, g.MustEvent("b+"), timesim.Options{Periods: 40})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	s, err := tr.InitiatedDistances()
	if err != nil {
		t.Fatalf("InitiatedDistances: %v", err)
	}
	want := []float64{8, 9, 28.0 / 3, 38.0 / 4, 48.0 / 5}
	for i, w := range want {
		if got := s.At(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("δ_b+0(b+%d) = %g, want %g (§VIII.C)", i+1, got, w)
		}
	}
	for i := 0; i < s.Len(); i++ {
		if s.At(i) >= 10 {
			t.Errorf("off-critical δ_b+0(b+%d) = %g >= cycle time 10 (violates Prop. 8)",
				i+1, s.At(i))
		}
	}
	if !s.ConvergedTo(10, 0.3, 3) {
		t.Errorf("series %v does not approach cycle time 10", s)
	}
}

// TestAgainstUnfoldingLongestPath cross-checks the streaming simulation
// against explicit longest paths over the materialised unfolding
// (Prop. 1 duality), for the plain and two initiated simulations.
func TestAgainstUnfoldingLongestPath(t *testing.T) {
	g := oscillator(t)
	const periods = 6
	u, err := unfold.Build(g, periods)
	if err != nil {
		t.Fatalf("unfold.Build: %v", err)
	}
	for _, originName := range []string{"", "a+", "b+", "c-"} {
		origin := sg.None
		if originName != "" {
			origin = g.MustEvent(originName)
		}
		var tr *timesim.Trace
		if origin == sg.None {
			tr, err = timesim.Run(g, timesim.Options{Periods: periods})
		} else {
			tr, err = timesim.RunFrom(g, origin, timesim.Options{Periods: periods})
		}
		if err != nil {
			t.Fatalf("Run(origin=%q): %v", originName, err)
		}
		if origin == sg.None {
			continue // plain simulation covered by Example 3 test
		}
		dist, _, err := u.LongestPathFrom(unfold.Inst{Event: origin, Index: 0})
		if err != nil {
			t.Fatalf("LongestPathFrom: %v", err)
		}
		for p := 0; p < u.NumNodes(); p++ {
			node := u.Node(p)
			got, ok := tr.Time(node.Event, node.Index)
			if !ok {
				t.Fatalf("missing time for %s", u.Name(node))
			}
			if math.IsInf(dist[p], -1) {
				// Not reachable from the origin: simulation pins it to 0.
				if tr.Reached(node.Event, node.Index) && !(node.Event == origin && node.Index == 0) {
					t.Errorf("origin=%s: %s reached by simulation but not by paths",
						originName, u.Name(node))
				}
				continue
			}
			if got != dist[p] {
				t.Errorf("origin=%s: t(%s) = %g, want longest path %g",
					originName, u.Name(node), got, dist[p])
			}
		}
	}
}

func TestParents(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.RunFrom(g, g.MustEvent("a+"), timesim.Options{Periods: 3, TrackParents: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// a+_1's max predecessor is c-_0 (t=8, delay 2 -> 10).
	pe, pp, arc, ok := tr.Parent(g.MustEvent("a+"), 1)
	if !ok {
		t.Fatal("Parent(a+,1) not tracked")
	}
	if g.Event(pe).Name != "c-" || pp != 0 {
		t.Errorf("Parent(a+,1) = %s_%d, want c-_0", g.Event(pe).Name, pp)
	}
	if a := g.Arc(arc); g.Event(a.From).Name != "c-" || g.Event(a.To).Name != "a+" {
		t.Errorf("Parent arc = %s->%s, want c- -> a+", g.Event(a.From).Name, g.Event(a.To).Name)
	}
	// The origin has no parent.
	if _, _, _, ok := tr.Parent(g.MustEvent("a+"), 0); ok {
		t.Error("origin a+_0 has a parent")
	}
	// Untracked trace returns ok=false.
	tr2, err := timesim.Run(g, timesim.Options{Periods: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, _, _, ok := tr2.Parent(g.MustEvent("a+"), 1); ok {
		t.Error("Parent reported on untracked trace")
	}
}

func TestRunErrors(t *testing.T) {
	g := oscillator(t)
	if _, err := timesim.Run(g, timesim.Options{Periods: 0}); err == nil {
		t.Error("Run with 0 periods succeeded")
	}
	if _, err := timesim.RunFrom(g, sg.EventID(99), timesim.Options{Periods: 1}); err == nil {
		t.Error("RunFrom with out-of-range origin succeeded")
	}
	tr, err := timesim.Run(g, timesim.Options{Periods: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := tr.InitiatedDistances(); err == nil {
		t.Error("InitiatedDistances on plain trace succeeded")
	}
	if _, err := tr.Distance(1); err == nil {
		t.Error("Distance on plain trace succeeded")
	}
	if _, ok := tr.Time(g.MustEvent("e-"), 1); ok {
		t.Error("Time for e-_1 reported ok; non-repetitive events have one instantiation")
	}
	if _, err := tr.OccurrenceDistance(g.MustEvent("e-"), 0); err == nil {
		t.Error("OccurrenceDistance past end succeeded")
	}
}

func TestDiagramRender(t *testing.T) {
	g := oscillator(t)
	tr, err := timesim.Run(g, timesim.Options{Periods: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d := tr.Diagram()
	// Six signals: a b c e f (e- and f- are transitions of e and f).
	if got := len(d.Waves); got != 5 {
		names := make([]string, len(d.Waves))
		for i, w := range d.Waves {
			names[i] = w.Signal
		}
		t.Fatalf("diagram has %d waves (%v), want 5", got, names)
	}
	// Signal e starts high (its first transition is a fall).
	for _, w := range d.Waves {
		if w.Signal == "e" && w.InitialLevel != 1 {
			t.Errorf("signal e initial level = %d, want 1", w.InitialLevel)
		}
		if w.Signal == "a" && w.InitialLevel != 0 {
			t.Errorf("signal a initial level = %d, want 0", w.InitialLevel)
		}
	}
	var sb strings.Builder
	if err := d.Render(&sb, 1); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "/") || !strings.Contains(out, "\\") {
		t.Errorf("diagram output lacks expected glyphs:\n%s", out)
	}
	if err := d.Render(&sb, 0); err == nil {
		t.Error("Render with unitsPerChar=0 succeeded")
	}
}
