package timesim_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// diffWindow checks that RunFromWindow reproduces, bit for bit, the
// origin row of a full RunFrom trace: out[p-1] equals Time(origin, p)
// whenever origin_p is instantiated and reached, NaN otherwise.
func diffWindow(t *testing.T, s *timesim.Schedule, origin sg.EventID, periods int) {
	t.Helper()
	tr, err := s.RunFrom(origin, timesim.Options{Periods: periods + 1})
	if err != nil {
		t.Fatalf("RunFrom(%d): %v", origin, err)
	}
	defer tr.Release()
	out := make([]float64, periods)
	if err := s.RunFromWindow(origin, periods, out); err != nil {
		t.Fatalf("RunFromWindow(%d): %v", origin, err)
	}
	for p := 1; p <= periods; p++ {
		tm, ok := tr.Time(origin, p)
		want := math.NaN()
		if ok && tr.Reached(origin, p) {
			want = tm
		}
		got := out[p-1]
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("origin %d period %d: window %v, trace %v", origin, p, got, want)
		}
	}
}

// TestRunFromWindowMatchesTrace differentially tests the two-row
// memory-bounded kernel against the slab kernel on every generator
// fixture, from every event, across several period counts.
func TestRunFromWindowMatchesTrace(t *testing.T) {
	for name, g := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			s, err := timesim.Compile(g)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for _, periods := range []int{1, 3, 2*len(g.BorderEvents()) + 1} {
				for ev := 0; ev < g.NumEvents(); ev++ {
					diffWindow(t, s, sg.EventID(ev), periods)
				}
			}
		})
	}
}

// TestRunFromWindowMatchesTraceRandom repeats the differential check on
// seeded random live graphs, border events only (the engine's use).
func TestRunFromWindowMatchesTraceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for seed := 0; seed < 6; seed++ {
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: 120 + 30*seed, Border: 3 + seed, ExtraArcs: 200, MaxDelay: 16,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		s, err := timesim.Compile(g)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		b := len(g.BorderEvents())
		for _, ev := range g.BorderEvents() {
			diffWindow(t, s, ev, 2*b+3)
		}
	}
}

// TestRunFromWindowHugeFamilies spot-checks the families the scale
// experiment sweeps.
func TestRunFromWindowHugeFamilies(t *testing.T) {
	pg, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 5, Depth: 7, Width: 3, Seed: 11})
	if err != nil {
		t.Fatalf("PipeGrid: %v", err)
	}
	mesh, err := gen.Mesh(gen.MeshOptions{W: 9, H: 4, Seed: 12})
	if err != nil {
		t.Fatalf("Mesh: %v", err)
	}
	tor, err := gen.TreeOfRings(gen.TreeRingOptions{Sites: 4, Levels: 3, Fanout: 2, Seed: 13})
	if err != nil {
		t.Fatalf("TreeOfRings: %v", err)
	}
	for name, g := range map[string]*sg.Graph{"pipegrid": pg, "mesh": mesh, "treering": tor} {
		t.Run(name, func(t *testing.T) {
			s, err := timesim.Compile(g)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for _, ev := range g.BorderEvents() {
				diffWindow(t, s, ev, 2*len(g.BorderEvents())+1)
			}
		})
	}
}

// TestRunFromWindowArgs pins the argument validation.
func TestRunFromWindowArgs(t *testing.T) {
	g := gen.Oscillator()
	s, err := timesim.Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	out := make([]float64, 4)
	if err := s.RunFromWindow(-1, 4, out); err == nil {
		t.Fatal("negative origin accepted")
	}
	if err := s.RunFromWindow(sg.EventID(g.NumEvents()), 4, out); err == nil {
		t.Fatal("out-of-range origin accepted")
	}
	if err := s.RunFromWindow(0, 0, out); err == nil {
		t.Fatal("zero periods accepted")
	}
	if err := s.RunFromWindow(0, 5, out); err == nil {
		t.Fatal("short output accepted")
	}
}

// TestWindowBytesBounded pins the memory contract the windowed kernel
// exists for: the working set is O(n), independent of the period count.
func TestWindowBytesBounded(t *testing.T) {
	g, err := gen.MullerRing(7)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	s, err := timesim.Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	n := int64(g.NumEvents())
	if got, want := s.WindowBytes(), n*(2*8+2); got != want {
		t.Fatalf("WindowBytes = %d, want %d", got, want)
	}
	if s.SlabBytes(1000) <= 100*s.WindowBytes() {
		t.Fatalf("SlabBytes(1000) = %d not >> WindowBytes = %d", s.SlabBytes(1000), s.WindowBytes())
	}
	// The pooled window is reused: steady-state allocations of a
	// windowed run stay tiny (no slab, no per-period growth).
	out := make([]float64, 600)
	if err := s.RunFromWindow(0, 600, out); err != nil {
		t.Fatalf("warmup: %v", err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := s.RunFromWindow(0, 600, out); err != nil {
			t.Fatalf("RunFromWindow: %v", err)
		}
	})
	if allocs > 2 {
		t.Fatalf("windowed run allocates %.1f objects/run, want <= 2", allocs)
	}
}

// BenchmarkRunFromWindow compares the two pass-1 kernels at a size
// where the slab is the dominant cost.
func BenchmarkRunFromWindow(b *testing.B) {
	g, err := gen.PipeGridSized(20000, 8, 4, 99)
	if err != nil {
		b.Fatalf("PipeGridSized: %v", err)
	}
	s, err := timesim.Compile(g)
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	periods := 2*len(g.BorderEvents()) + 1
	origin := g.BorderEvents()[0]
	b.Run("window", func(b *testing.B) {
		out := make([]float64, periods)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.RunFromWindow(origin, periods, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("slab", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := s.RunFrom(origin, timesim.Options{Periods: periods + 1})
			if err != nil {
				b.Fatal(err)
			}
			tr.Release()
		}
	})
}
