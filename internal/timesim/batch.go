package timesim

import (
	"fmt"
	"math"

	"tsg/internal/sg"
)

// Batch simulation: the Monte-Carlo kernel. An event-initiated timing
// simulation decomposes into a structural part — which instantiations
// exist, which in-arcs constrain them, whether the origin precedes them
// (reachedness) — and an arithmetic part, the max-plus evaluation of
// occurrence times. The structural part depends only on the graph and
// the origin, never on the delays; so S delay samples can share one
// structural pass, paying per sample only the inner add/max over a
// delay column. That amortises the record traversal, the reachedness
// bookkeeping and the loop overhead over the whole batch, which is
// where the Monte-Carlo subsystem's throughput comes from (see
// cycletime.AnalyzeMC).
//
// The batch kernel keeps a rolling two-row window of occurrence times:
// the §IV.A existence rules reference only the current period (unmarked
// in-arcs) and the previous one (marked in-arcs), so full (periods×n)
// trace slabs are never materialised — memory is O(n·S), independent of
// the period count. Only the origin's occurrence times are exposed:
// they are exactly what the cycle-time analysis's distance series needs
// (Prop. 7).
//
// Per-sample results are bit-identical to RunFrom with the same delays:
// the record order, and hence every float add and max, is the same.

// BatchDelays holds the per-sample delay columns of a batch, laid out
// record-major ([record*S + sample]) so the kernel's inner loop over
// samples is contiguous. Build one per worker with NewBatchDelays and
// refill it with Set; it is tied to the schedule that created it.
type BatchDelays struct {
	s          int
	d0, d1, dS []float64
	// Working memory, reused across RunFromBatch calls (a BatchDelays
	// belongs to one worker, like the schedule clone it feeds).
	cur, prev   []float64
	rCur, rPrev []bool
	acc         []float64
}

// NewBatchDelays allocates delay columns for batches of s samples.
func (sch *Schedule) NewBatchDelays(s int) *BatchDelays {
	return &BatchDelays{
		s:  s,
		d0: make([]float64, len(sch.del0)*s),
		d1: make([]float64, len(sch.del1)*s),
		dS: make([]float64, len(sch.delS)*s),
	}
}

// Samples returns the batch width.
func (b *BatchDelays) Samples() int { return b.s }

// Set fills sample column `sample` from a per-arc delay vector.
func (b *BatchDelays) Set(sch *Schedule, sample int, delays []float64) {
	for r, a := range sch.arc0 {
		b.d0[r*b.s+sample] = delays[a]
	}
	for r, a := range sch.arc1 {
		b.d1[r*b.s+sample] = delays[a]
	}
	for r, a := range sch.arcS {
		b.dS[r*b.s+sample] = delays[a]
	}
}

// RunFromBatch executes the event-initiated simulation t_origin of
// §IV.B for every delay sample of the batch in one structural pass,
// evaluating unfolding periods 0..periods. For sample s and period
// j in 1..periods, out[s][j-1] receives the origin's occurrence time
// t_origin(origin_j), or NaN when the unfolding has no origin-preceded
// instantiation origin_j (matching Trace.Time/Reached semantics — the
// inputs of the distance series δ). out must hold at least bd.Samples()
// rows of at least `periods` entries.
func (sch *Schedule) RunFromBatch(origin sg.EventID, bd *BatchDelays, periods int, out [][]float64) error {
	if origin < 0 || int(origin) >= sch.n {
		return fmt.Errorf("timesim: origin event %d out of range", origin)
	}
	if periods < 1 {
		return fmt.Errorf("timesim: periods must be >= 1, got %d", periods)
	}
	S := bd.s
	if len(out) < S {
		return fmt.Errorf("timesim: batch output has %d rows, need %d", len(out), S)
	}
	n := sch.n
	if len(bd.cur) < n*S {
		bd.cur = make([]float64, n*S)
		bd.prev = make([]float64, n*S)
		bd.rCur = make([]bool, n)
		bd.rPrev = make([]bool, n)
		bd.acc = make([]float64, S)
	}
	cur, prev, rCur, rPrev, acc := bd.cur, bd.prev, bd.rCur, bd.rPrev, bd.acc
	for i := range rCur {
		rCur[i] = false
	}

	// Period 0: every event has an instantiation; all live in-arc
	// sources sit in the same period (earlier in topological order).
	for idx, f := range sch.order {
		any := false
		for r := sch.off0[idx]; r < sch.off0[idx+1]; r++ {
			src := int(sch.src0[r])
			if !rCur[src] {
				continue
			}
			srcRow := cur[src*S : src*S+S]
			del := bd.d0[int(r)*S : int(r)*S+S]
			if !any {
				any = true
				addSet(acc, srcRow, del, S)
				continue
			}
			addMax(acc, srcRow, del, S)
		}
		fi := int(f) * S
		switch {
		case f == origin:
			// t_origin(origin_0) = 0 by definition, regardless of in-arcs.
			for s := 0; s < S; s++ {
				cur[fi+s] = 0
			}
			rCur[f] = true
		case !any:
			// Member of I_u, or not preceded by the origin: pinned to 0,
			// not reached.
			for s := 0; s < S; s++ {
				cur[fi+s] = 0
			}
		default:
			copy(cur[fi:fi+S], acc)
			rCur[f] = true
		}
	}

	for p := 1; p <= periods; p++ {
		cur, prev = prev, cur
		rCur, rPrev = rPrev, rCur
		off, src, mark := sch.off1, sch.src1, sch.mark1
		del := bd.d1
		if p >= 2 {
			off, src, mark = sch.offS, sch.srcS, sch.markS
			del = bd.dS
		}
		for i := range rCur {
			rCur[i] = false
		}
		for idx, f := range sch.orderR {
			any := false
			for r := off[idx]; r < off[idx+1]; r++ {
				sp := int(src[r])
				row := cur
				reachedRow := rCur
				if mark[r] == 1 {
					row = prev
					reachedRow = rPrev
				}
				if !reachedRow[sp] {
					continue
				}
				srcRow := row[sp*S : sp*S+S]
				d := del[int(r)*S : int(r)*S+S]
				if !any {
					any = true
					addSet(acc, srcRow, d, S)
					continue
				}
				addMax(acc, srcRow, d, S)
			}
			fi := int(f) * S
			if !any {
				for s := 0; s < S; s++ {
					cur[fi+s] = 0
				}
				continue
			}
			copy(cur[fi:fi+S], acc)
			rCur[f] = true
		}
		oi := int(origin) * S
		if rCur[origin] {
			for s := 0; s < S; s++ {
				out[s][p-1] = cur[oi+s]
			}
		} else {
			for s := 0; s < S; s++ {
				out[s][p-1] = math.NaN()
			}
		}
	}
	// Hand the (possibly swapped) buffers back for reuse.
	bd.cur, bd.prev, bd.rCur, bd.rPrev = cur, prev, rCur, rPrev
	return nil
}

// batchWidth is the batch width the inner loops are specialised for —
// the Monte-Carlo layer's block size. Other widths take the generic
// loop; the constant-bound version lets the compiler drop bounds checks
// and unroll.
const batchWidth = 16

// addSet writes acc[s] = src[s] + del[s].
func addSet(acc, src, del []float64, S int) {
	if S == batchWidth && len(acc) >= batchWidth && len(src) >= batchWidth && len(del) >= batchWidth {
		a := (*[batchWidth]float64)(acc)
		b := (*[batchWidth]float64)(src)
		c := (*[batchWidth]float64)(del)
		for s := 0; s < batchWidth; s++ {
			a[s] = b[s] + c[s]
		}
		return
	}
	for s := 0; s < S; s++ {
		acc[s] = src[s] + del[s]
	}
}

// addMax folds acc[s] = max(acc[s], src[s] + del[s]).
func addMax(acc, src, del []float64, S int) {
	if S == batchWidth && len(acc) >= batchWidth && len(src) >= batchWidth && len(del) >= batchWidth {
		a := (*[batchWidth]float64)(acc)
		b := (*[batchWidth]float64)(src)
		c := (*[batchWidth]float64)(del)
		for s := 0; s < batchWidth; s++ {
			if v := b[s] + c[s]; v > a[s] {
				a[s] = v
			}
		}
		return
	}
	for s := 0; s < S; s++ {
		if v := src[s] + del[s]; v > acc[s] {
			acc[s] = v
		}
	}
}
