package timesim_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// randomGraph derives a random live graph from quick-generated seeds.
func randomGraph(t *testing.T, seed int64) *sg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(12)
	b := 1 + rng.Intn(n)
	g, err := gen.RandomLive(rng, gen.RandomOptions{
		Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
	})
	if err != nil {
		t.Fatalf("RandomLive(seed=%d): %v", seed, err)
	}
	return g
}

// TestProp3TriangularInequality checks Prop. 3 on random graphs: for an
// e0-initiated simulation, t(e_k) >= t(e_j) + t(e_{k-j}) for 0 < j < k.
func TestProp3TriangularInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		const K = 8
		for _, e := range g.BorderEvents() {
			tr, err := timesim.RunFrom(g, e, timesim.Options{Periods: K + 1})
			if err != nil {
				t.Fatalf("RunFrom: %v", err)
			}
			for k := 2; k <= K; k++ {
				tk, ok := tr.Time(e, k)
				if !ok || !tr.Reached(e, k) {
					continue
				}
				for j := 1; j < k; j++ {
					tj, ok1 := tr.Time(e, j)
					tkj, ok2 := tr.Time(e, k-j)
					if !ok1 || !ok2 || !tr.Reached(e, j) || !tr.Reached(e, k-j) {
						continue
					}
					if tk < tj+tkj-1e-9 {
						t.Logf("seed %d event %s: t(e_%d)=%g < t(e_%d)+t(e_%d)=%g",
							seed, g.Event(e).Name, k, tk, j, k-j, tj+tkj)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestProp2CommonCycleTime checks Prop. 2 on random graphs: the average
// occurrence distance of every repetitive event converges to the same
// cycle time (within the O(1/P) transient allowance).
func TestProp2CommonCycleTime(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		lambda := res.CycleTime.Float()
		const P = 60
		tr, err := timesim.Run(g, timesim.Options{Periods: P})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		// t(e_P) = λ·P + O(1); the O(1) offset is bounded by the total
		// delay plus λ times the periods an event can lead or lag by
		// (at most one per token, i.e. at most n).
		slack := g.TotalDelay() + lambda*float64(g.NumEvents()) + 1
		for _, e := range g.RepetitiveEvents() {
			v, ok := tr.Time(e, P-1)
			if !ok {
				t.Fatalf("missing instantiation %s_%d", g.Event(e).Name, P-1)
			}
			delta := v / float64(P)
			if math.Abs(delta-lambda) > slack/float64(P) {
				t.Logf("seed %d: event %s δ(e_%d) = %g, λ = %g (allowance %g)",
					seed, g.Event(e).Name, P-1, delta, lambda, slack/float64(P))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestProp4DistancesNeverExceedLambda checks the Prop. 4 inequality on
// random graphs: every initiated average occurrence distance is at most
// the cycle time (the maximum over all of them attains it).
func TestProp4DistancesNeverExceedLambda(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(t, seed)
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		lambda := res.CycleTime.Float()
		attained := false
		// A critical cycle's occurrence period is at most the minimum
		// cut set size <= n, so n periods suffice for attainment.
		periods := g.NumEvents() + 1
		for _, e := range g.RepetitiveEvents() {
			tr, err := timesim.RunFrom(g, e, timesim.Options{Periods: periods})
			if err != nil {
				t.Fatalf("RunFrom: %v", err)
			}
			s, err := tr.InitiatedDistances()
			if err != nil {
				t.Fatalf("InitiatedDistances: %v", err)
			}
			for i := 0; i < s.Len(); i++ {
				if v := s.At(i); !math.IsNaN(v) {
					if v > lambda+1e-9 {
						t.Logf("seed %d: δ_%s0(%d) = %g > λ = %g",
							seed, g.Event(e).Name, i+1, v, lambda)
						return false
					}
					if math.Abs(v-lambda) < 1e-9 {
						attained = true
					}
				}
			}
		}
		if !attained {
			t.Logf("seed %d: no initiated distance attained λ = %g", seed, lambda)
		}
		return attained
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
