package timesim

import (
	"fmt"
	"math"

	"tsg/internal/sg"
)

// CriticalPath performs the PERT-style analysis the paper relates the
// timing simulation to (§II: "for the acyclic graphs timing simulation
// is analogous to the PERT-analysis"): for a Signal Graph whose events
// are all non-repetitive (a project network), it returns the makespan —
// the latest completion time over all events — and one chain of events
// realising it, in execution order.
//
// Graphs with repetitive events have no finite makespan; analyse them
// with package cycletime instead.
func CriticalPath(g *sg.Graph) (makespan float64, path []sg.EventID, err error) {
	if len(g.RepetitiveEvents()) > 0 {
		return 0, nil, fmt.Errorf("timesim: graph %q has repetitive events; PERT analysis needs an acyclic project network", g.Name())
	}
	tr, err := Run(g, Options{Periods: 1, TrackParents: true})
	if err != nil {
		return 0, nil, err
	}
	last := sg.None
	makespan = math.Inf(-1)
	for e := 0; e < g.NumEvents(); e++ {
		if v, ok := tr.Time(sg.EventID(e), 0); ok && v > makespan {
			makespan = v
			last = sg.EventID(e)
		}
	}
	if last == sg.None {
		return 0, nil, fmt.Errorf("timesim: graph %q has no events", g.Name())
	}
	// Walk the max-predecessor chain back to a source.
	for e := last; ; {
		path = append(path, e)
		pe, _, _, ok := tr.Parent(e, 0)
		if !ok {
			break
		}
		e = pe
	}
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return makespan, path, nil
}
