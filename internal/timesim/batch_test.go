package timesim_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// TestRunFromBatchMatchesScalar: for every origin and a batch of random
// delay assignments, the batch kernel's origin occurrence times must be
// bit-identical to per-sample RunFrom runs on a refreshed schedule —
// including the NaN (unreached) pattern.
func TestRunFromBatchMatchesScalar(t *testing.T) {
	fixtures := map[string]*sg.Graph{"oscillator": gen.Oscillator()}
	if ring, err := gen.MullerRing(4); err == nil {
		fixtures["ring4"] = ring
	} else {
		t.Fatalf("MullerRing: %v", err)
	}
	if stack, err := gen.Stack(7); err == nil {
		fixtures["stack7"] = stack
	} else {
		t.Fatalf("Stack: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	if g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 60, Border: 5, ExtraArcs: 60, MaxDelay: 9}); err == nil {
		fixtures["random60"] = g
	} else {
		t.Fatalf("RandomLive: %v", err)
	}
	const S = 7
	const periods = 5
	for name, g := range fixtures {
		t.Run(name, func(t *testing.T) {
			ov := sg.NewOverlay(g)
			sched, err := timesim.Compile(ov.Graph())
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			// Random delay batch, including zero delays.
			batch := make([][]float64, S)
			for s := range batch {
				batch[s] = make([]float64, g.NumArcs())
				for a := range batch[s] {
					batch[s][a] = float64(rng.Intn(8))
					if rng.Intn(5) == 0 {
						batch[s][a] += rng.Float64()
					}
				}
			}
			bd := sched.NewBatchDelays(S)
			for s := range batch {
				bd.Set(sched, s, batch[s])
			}
			out := make([][]float64, S)
			for s := range out {
				out[s] = make([]float64, periods)
			}
			for ev := 0; ev < g.NumEvents(); ev++ {
				origin := sg.EventID(ev)
				if !g.Event(origin).Repetitive {
					continue
				}
				if err := sched.RunFromBatch(origin, bd, periods, out); err != nil {
					t.Fatalf("RunFromBatch(%s): %v", g.Event(origin).Name, err)
				}
				for s := range batch {
					for a, d := range batch[s] {
						if err := ov.SetDelay(a, d); err != nil {
							t.Fatalf("SetDelay: %v", err)
						}
					}
					sched.RefreshDelays()
					tr, err := sched.RunFrom(origin, timesim.Options{Periods: periods + 1})
					if err != nil {
						t.Fatalf("RunFrom: %v", err)
					}
					for j := 1; j <= periods; j++ {
						want, ok := tr.Time(origin, j)
						reached := ok && tr.Reached(origin, j)
						got := out[s][j-1]
						switch {
						case !reached:
							if !math.IsNaN(got) {
								t.Fatalf("%s: sample %d period %d: batch %v, scalar unreached",
									g.Event(origin).Name, s, j, got)
							}
						case got != want:
							t.Fatalf("%s: sample %d period %d: batch %v != scalar %v",
								g.Event(origin).Name, s, j, got, want)
						}
					}
					tr.Release()
				}
			}
		})
	}
}

// TestRunFromBatchValidation: shape errors are rejected.
func TestRunFromBatchValidation(t *testing.T) {
	g := gen.Oscillator()
	sched, err := timesim.Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bd := sched.NewBatchDelays(2)
	out := make([][]float64, 2)
	for s := range out {
		out[s] = make([]float64, 3)
	}
	if err := sched.RunFromBatch(-1, bd, 3, out); err == nil {
		t.Fatalf("negative origin accepted")
	}
	if err := sched.RunFromBatch(0, bd, 0, out); err == nil {
		t.Fatalf("zero periods accepted")
	}
	if err := sched.RunFromBatch(0, bd, 3, out[:1]); err == nil {
		t.Fatalf("short output accepted")
	}
	if bd.Samples() != 2 {
		t.Fatalf("Samples() = %d", bd.Samples())
	}
}
