package timesim_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// fixtures returns every generator-family graph the kernels are
// differentially tested on.
func fixtures(t testing.TB) map[string]*sg.Graph {
	t.Helper()
	fx := map[string]*sg.Graph{
		"oscillator": gen.Oscillator(),
	}
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	fx["ring5"] = ring
	for _, cells := range []int{3, 13} {
		st, err := gen.Stack(cells)
		if err != nil {
			t.Fatalf("Stack(%d): %v", cells, err)
		}
		fx[fmt.Sprintf("stack%d", cells)] = st
	}
	pipe, err := gen.MullerPipeline(6, 2, 1, 1)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	fx["pipeline6"] = pipe
	return fx
}

// diffTraces fails the test unless the two traces agree bit-for-bit on
// every instantiation: existence, occurrence time, reachedness and (when
// tracked) the parent that realised the max.
func diffTraces(t *testing.T, g *sg.Graph, got, want *timesim.Trace) {
	t.Helper()
	if got.Periods() != want.Periods() {
		t.Fatalf("periods: got %d, want %d", got.Periods(), want.Periods())
	}
	for p := 0; p < want.Periods(); p++ {
		for e := 0; e < g.NumEvents(); e++ {
			id := sg.EventID(e)
			gv, gok := got.Time(id, p)
			wv, wok := want.Time(id, p)
			if gok != wok || (gok && math.Float64bits(gv) != math.Float64bits(wv)) {
				t.Fatalf("t(%s_%d): got %v,%v want %v,%v",
					g.Event(id).Name, p, gv, gok, wv, wok)
			}
			if gr, wr := got.Reached(id, p), want.Reached(id, p); gr != wr {
				t.Fatalf("reached(%s_%d): got %v, want %v", g.Event(id).Name, p, gr, wr)
			}
			gpe, gpp, gpa, gok := got.Parent(id, p)
			wpe, wpp, wpa, wok := want.Parent(id, p)
			if gpe != wpe || gpp != wpp || gpa != wpa || gok != wok {
				t.Fatalf("parent(%s_%d): got (%d,%d,%d,%v), want (%d,%d,%d,%v)",
					g.Event(id).Name, p, gpe, gpp, gpa, gok, wpe, wpp, wpa, wok)
			}
		}
	}
}

// checkKernelEquivalence compares the compiled kernel against the
// reference on the plain simulation and on the event-initiated
// simulation from every repetitive event, with and without parents.
func checkKernelEquivalence(t *testing.T, g *sg.Graph, periods int) {
	t.Helper()
	sched, err := timesim.Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for _, parents := range []bool{false, true} {
		opts := timesim.Options{Periods: periods, TrackParents: parents}
		got, err := sched.Run(opts)
		if err != nil {
			t.Fatalf("Schedule.Run: %v", err)
		}
		want, err := timesim.ReferenceRun(g, opts)
		if err != nil {
			t.Fatalf("ReferenceRun: %v", err)
		}
		diffTraces(t, g, got, want)
		got.Release()
		for _, origin := range g.RepetitiveEvents() {
			got, err := sched.RunFrom(origin, opts)
			if err != nil {
				t.Fatalf("Schedule.RunFrom(%s): %v", g.Event(origin).Name, err)
			}
			want, err := timesim.ReferenceRunFrom(g, origin, opts)
			if err != nil {
				t.Fatalf("ReferenceRunFrom(%s): %v", g.Event(origin).Name, err)
			}
			diffTraces(t, g, got, want)
			got.Release()
		}
	}
}

// TestCompiledKernelEquivalence is the golden equivalence test of the
// compiled simulation kernel: traces must be bit-identical to the
// reference implementation on every generator fixture. Traces are
// released between runs, so the slab pool's reuse path is exercised at
// the same time — a stale slab shows up as a diff.
func TestCompiledKernelEquivalence(t *testing.T) {
	for name, g := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			b := len(g.BorderEvents())
			checkKernelEquivalence(t, g, b+1)
		})
	}
}

// TestCompiledKernelEquivalenceRandom extends the differential test to
// seeded random live graphs across a range of shapes.
func TestCompiledKernelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	cases := []gen.RandomOptions{
		{Events: 20, Border: 2, ExtraArcs: 10, MaxDelay: 8},
		{Events: 50, Border: 5, ExtraArcs: 100, MaxDelay: 16},
		{Events: 120, Border: 12, ExtraArcs: 240, MaxDelay: 16},
		{Events: 200, Border: 3, ExtraArcs: 400, MaxDelay: 4},
	}
	for ci, opts := range cases {
		for rep := 0; rep < 3; rep++ {
			g, err := gen.RandomLive(rng, opts)
			if err != nil {
				t.Fatalf("RandomLive(%+v): %v", opts, err)
			}
			t.Run(fmt.Sprintf("case%d_rep%d", ci, rep), func(t *testing.T) {
				periods := opts.Border + 1
				sched, err := timesim.Compile(g)
				if err != nil {
					t.Fatalf("Compile: %v", err)
				}
				simOpts := timesim.Options{Periods: periods, TrackParents: rep%2 == 0}
				for _, origin := range g.BorderEvents() {
					got, err := sched.RunFrom(origin, simOpts)
					if err != nil {
						t.Fatalf("Schedule.RunFrom: %v", err)
					}
					want, err := timesim.ReferenceRunFrom(g, origin, simOpts)
					if err != nil {
						t.Fatalf("ReferenceRunFrom: %v", err)
					}
					diffTraces(t, g, got, want)
					got.Release()
				}
			})
		}
	}
}

// TestScheduleSlabReuse checks that a released slab reused for a
// differently-shaped run (different origin, periods, parent tracking)
// leaks nothing between simulations.
func TestScheduleSlabReuse(t *testing.T) {
	g := gen.Oscillator()
	sched, err := timesim.Compile(g)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	borders := g.BorderEvents()
	if len(borders) < 2 {
		t.Fatal("oscillator needs >= 2 border events")
	}
	// Seed the pool with a large parent-tracked run.
	tr, err := sched.RunFrom(borders[0], timesim.Options{Periods: 6, TrackParents: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Release()
	// A smaller run without parents must match the reference exactly.
	opts := timesim.Options{Periods: 3}
	got, err := sched.RunFrom(borders[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := timesim.ReferenceRunFrom(g, borders[1], opts)
	if err != nil {
		t.Fatal(err)
	}
	diffTraces(t, g, got, want)
	// Parents must not be visible on an untracked run.
	if _, _, _, ok := got.Parent(borders[1], 1); ok {
		t.Error("untracked run exposes parents from a recycled slab")
	}
	got.Release()
}
