package timesim

import (
	"fmt"
	"math"

	"tsg/internal/sg"
)

// Windowed scalar kernel: the memory-bounded variant of the pass-1
// simulation. A λ-only analysis needs nothing from an event-initiated
// trace but the origin's occurrence time per period (the distance
// series of Prop. 7) — yet RunFrom materialises the full
// (periods+1)×n slab. Like the Monte-Carlo batch kernel (batch.go),
// the existence rules of §IV.A only ever reference the current period
// (unmarked in-arcs) and the previous one (marked in-arcs), so the
// scalar kernel too can roll a two-row window: O(n) working state
// regardless of the period count, emitting just the origin series.
//
// Results are bit-identical to RunFrom + Trace.Time/Reached: the
// record order, and hence every float add, max and tie-break, is the
// same. The engine's pass 1 switches to this kernel when the full slab
// would exceed its window budget (cycletime.Options.WindowBytes);
// pass 2 — which needs parent pointers for backtracking — re-simulates
// only the handful of λ-winning origins with full traces, which is the
// spill-on-demand path.

// window is the pooled working set of one windowed simulation.
type window struct {
	cur, prev   []float64
	rCur, rPrev []bool
}

// acquireWindow draws a two-row window from the schedule's pool.
func (s *Schedule) acquireWindow() *window {
	w, _ := s.winPool.Get().(*window)
	if w == nil {
		w = &window{}
	}
	if cap(w.cur) < s.n {
		w.cur = make([]float64, s.n)
		w.prev = make([]float64, s.n)
		w.rCur = make([]bool, s.n)
		w.rPrev = make([]bool, s.n)
	} else {
		w.cur = w.cur[:s.n]
		w.prev = w.prev[:s.n]
		w.rCur = w.rCur[:s.n]
		w.rPrev = w.rPrev[:s.n]
	}
	return w
}

// WindowBytes returns the approximate heap bytes of one pooled
// two-row window: the per-simulation working set of the windowed
// kernel (two float64 rows plus two reachedness rows).
func (s *Schedule) WindowBytes() int64 { return int64(s.n) * (2*8 + 2) }

// SlabBytes returns the approximate heap bytes of one pooled full
// trace slab for the given period count (times plus reached bitset;
// parent columns, used only by pass-2 backtracking, excluded). This is
// the quantity the windowed kernel avoids.
func (s *Schedule) SlabBytes(periods int) int64 {
	return int64(periods)*int64(s.n)*8 + int64(periods)*int64(s.n)/8
}

// RunFromWindow executes the event-initiated simulation t_origin of
// §IV.B over periods 0..periods with the two-row window, writing
// out[j-1] = t_origin(origin_j) for j = 1..periods — NaN when the
// unfolding has no origin-preceded instantiation origin_j. The values
// (and NaN pattern) are bit-identical to a RunFrom trace with
// Periods: periods+1 read back through Time/Reached at the origin.
func (s *Schedule) RunFromWindow(origin sg.EventID, periods int, out []float64) error {
	if origin < 0 || int(origin) >= s.n {
		return fmt.Errorf("timesim: origin event %d out of range", origin)
	}
	if periods < 1 {
		return fmt.Errorf("timesim: periods must be >= 1, got %d", periods)
	}
	if len(out) < periods {
		return fmt.Errorf("timesim: window output has %d entries, need %d", len(out), periods)
	}
	w := s.acquireWindow()
	cur, prev, rCur, rPrev := w.cur, w.prev, w.rCur, w.rPrev
	for i := range rCur {
		rCur[i] = false
	}

	// Period 0: all live in-arc sources sit in the same period.
	for idx, f := range s.order {
		best := math.Inf(-1)
		any := false
		for r := s.off0[idx]; r < s.off0[idx+1]; r++ {
			src := int(s.src0[r])
			if !rCur[src] {
				continue
			}
			any = true
			if v := cur[src] + s.del0[r]; v > best {
				best = v
			}
		}
		fi := int(f)
		switch {
		case f == origin:
			cur[fi] = 0
			rCur[fi] = true
		case !any:
			cur[fi] = 0 // pinned; rCur stays false so successors skip it
		default:
			cur[fi] = best
			rCur[fi] = true
		}
	}

	for p := 1; p <= periods; p++ {
		cur, prev = prev, cur
		rCur, rPrev = rPrev, rCur
		off, src, del, mark := s.off1, s.src1, s.del1, s.mark1
		if p >= 2 {
			off, src, del, mark = s.offS, s.srcS, s.delS, s.markS
		}
		for i := range rCur {
			rCur[i] = false
		}
		for idx, f := range s.orderR {
			best := math.Inf(-1)
			any := false
			for r := off[idx]; r < off[idx+1]; r++ {
				sp := int(src[r])
				row, reachedRow := cur, rCur
				if mark[r] == 1 {
					row, reachedRow = prev, rPrev
				}
				if !reachedRow[sp] {
					continue
				}
				any = true
				if v := row[sp] + del[r]; v > best {
					best = v
				}
			}
			fi := int(f)
			if !any {
				cur[fi] = 0
				continue
			}
			cur[fi] = best
			rCur[fi] = true
		}
		if rCur[origin] {
			out[p-1] = cur[int(origin)]
		} else {
			out[p-1] = math.NaN()
		}
	}
	w.cur, w.prev, w.rCur, w.rPrev = cur, prev, rCur, rPrev
	s.winPool.Put(w)
	return nil
}
