package timesim_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// sameTrace fails unless the two traces agree bitwise on times,
// reachedness and parents over the given periods.
func sameTrace(t *testing.T, g *sg.Graph, got, want *timesim.Trace, periods int, label string) {
	t.Helper()
	for p := 0; p < periods; p++ {
		for e := 0; e < g.NumEvents(); e++ {
			ev := sg.EventID(e)
			gv, gok := got.Time(ev, p)
			wv, wok := want.Time(ev, p)
			if gok != wok || (gok && gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv))) {
				t.Errorf("%s: t(%s_%d) = %v/%v, want %v/%v", label, g.Event(ev).Name, p, gv, gok, wv, wok)
			}
			if got.Reached(ev, p) != want.Reached(ev, p) {
				t.Errorf("%s: reached(%s_%d) differs", label, g.Event(ev).Name, p)
			}
			ge, gp, ga, gok2 := got.Parent(ev, p)
			we, wp, wa, wok2 := want.Parent(ev, p)
			if gok2 != wok2 || ge != we || gp != wp || ga != wa {
				t.Errorf("%s: parent(%s_%d) = (%v,%d,%d,%v), want (%v,%d,%d,%v)",
					label, g.Event(ev).Name, p, ge, gp, ga, gok2, we, wp, wa, wok2)
			}
		}
	}
}

// TestScheduleRefreshArcDelay: a compiled schedule whose delay columns
// are refreshed in place produces traces bit-identical to a schedule
// freshly compiled over the modified graph.
func TestScheduleRefreshArcDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		ov := sg.NewOverlay(g)
		sched, err := timesim.Compile(ov.Graph())
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		// Edit a few arcs through the overlay, drain into the schedule.
		for k := 0; k < 1+rng.Intn(3); k++ {
			if err := ov.SetDelay(rng.Intn(g.NumArcs()), float64(rng.Intn(10))); err != nil {
				t.Fatalf("SetDelay: %v", err)
			}
		}
		ov.DrainDirty(sched.RefreshArcDelay)

		fresh, err := g.WithDelays(func(i int, _ float64) float64 { return ov.Delay(i) })
		if err != nil {
			t.Fatalf("WithDelays: %v", err)
		}
		freshSched, err := timesim.Compile(fresh)
		if err != nil {
			t.Fatalf("Compile fresh: %v", err)
		}
		periods := b + 1
		opts := timesim.Options{Periods: periods, TrackParents: true}
		got, err := sched.Run(opts)
		if err != nil {
			t.Fatalf("refreshed Run: %v", err)
		}
		want, err := freshSched.Run(opts)
		if err != nil {
			t.Fatalf("fresh Run: %v", err)
		}
		sameTrace(t, g, got, want, periods, "plain")
		got.Release()
		want.Release()
		for _, origin := range ov.Graph().BorderEvents() {
			g2, err := sched.RunFrom(origin, opts)
			if err != nil {
				t.Fatalf("refreshed RunFrom: %v", err)
			}
			w2, err := freshSched.RunFrom(origin, opts)
			if err != nil {
				t.Fatalf("fresh RunFrom: %v", err)
			}
			sameTrace(t, g, g2, w2, periods, "initiated")
			g2.Release()
			w2.Release()
		}
	}
}

// TestScheduleRefreshDelays: the O(m) full refresh re-reads every delay
// from the (overlay) graph, equivalent to per-arc refreshes.
func TestScheduleRefreshDelays(t *testing.T) {
	g, err := gen.Stack(7)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := ov.SetDelays(func(i int, nom float64) float64 { return nom + float64(i%3) }); err != nil {
		t.Fatalf("SetDelays: %v", err)
	}
	sched.RefreshDelays()
	ov.DrainDirty(func(int, float64) {}) // discard: full refresh already applied

	fresh, err := g.WithDelays(func(i int, nom float64) float64 { return nom + float64(i%3) })
	if err != nil {
		t.Fatalf("WithDelays: %v", err)
	}
	freshSched, err := timesim.Compile(fresh)
	if err != nil {
		t.Fatalf("Compile fresh: %v", err)
	}
	periods := len(g.BorderEvents()) + 1
	opts := timesim.Options{Periods: periods, TrackParents: true}
	got, err := sched.Run(opts)
	if err != nil {
		t.Fatalf("refreshed Run: %v", err)
	}
	want, err := freshSched.Run(opts)
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	sameTrace(t, g, got, want, periods, "full-refresh")
}
