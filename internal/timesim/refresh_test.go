package timesim_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// sameTrace fails unless the two traces agree bitwise on times,
// reachedness and parents over the given periods.
func sameTrace(t *testing.T, g *sg.Graph, got, want *timesim.Trace, periods int, label string) {
	t.Helper()
	for p := 0; p < periods; p++ {
		for e := 0; e < g.NumEvents(); e++ {
			ev := sg.EventID(e)
			gv, gok := got.Time(ev, p)
			wv, wok := want.Time(ev, p)
			if gok != wok || (gok && gv != wv && !(math.IsNaN(gv) && math.IsNaN(wv))) {
				t.Errorf("%s: t(%s_%d) = %v/%v, want %v/%v", label, g.Event(ev).Name, p, gv, gok, wv, wok)
			}
			if got.Reached(ev, p) != want.Reached(ev, p) {
				t.Errorf("%s: reached(%s_%d) differs", label, g.Event(ev).Name, p)
			}
			ge, gp, ga, gok2 := got.Parent(ev, p)
			we, wp, wa, wok2 := want.Parent(ev, p)
			if gok2 != wok2 || ge != we || gp != wp || ga != wa {
				t.Errorf("%s: parent(%s_%d) = (%v,%d,%d,%v), want (%v,%d,%d,%v)",
					label, g.Event(ev).Name, p, ge, gp, ga, gok2, we, wp, wa, wok2)
			}
		}
	}
}

// TestScheduleRefreshArcDelay: a compiled schedule whose delay columns
// are refreshed in place produces traces bit-identical to a schedule
// freshly compiled over the modified graph.
func TestScheduleRefreshArcDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		ov := sg.NewOverlay(g)
		sched, err := timesim.Compile(ov.Graph())
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		// Edit a few arcs through the overlay, drain into the schedule.
		for k := 0; k < 1+rng.Intn(3); k++ {
			if err := ov.SetDelay(rng.Intn(g.NumArcs()), float64(rng.Intn(10))); err != nil {
				t.Fatalf("SetDelay: %v", err)
			}
		}
		ov.DrainDirty(sched.RefreshArcDelay)

		fresh, err := g.WithDelays(func(i int, _ float64) float64 { return ov.Delay(i) })
		if err != nil {
			t.Fatalf("WithDelays: %v", err)
		}
		freshSched, err := timesim.Compile(fresh)
		if err != nil {
			t.Fatalf("Compile fresh: %v", err)
		}
		periods := b + 1
		opts := timesim.Options{Periods: periods, TrackParents: true}
		got, err := sched.Run(opts)
		if err != nil {
			t.Fatalf("refreshed Run: %v", err)
		}
		want, err := freshSched.Run(opts)
		if err != nil {
			t.Fatalf("fresh Run: %v", err)
		}
		sameTrace(t, g, got, want, periods, "plain")
		got.Release()
		want.Release()
		for _, origin := range ov.Graph().BorderEvents() {
			g2, err := sched.RunFrom(origin, opts)
			if err != nil {
				t.Fatalf("refreshed RunFrom: %v", err)
			}
			w2, err := freshSched.RunFrom(origin, opts)
			if err != nil {
				t.Fatalf("fresh RunFrom: %v", err)
			}
			sameTrace(t, g, g2, w2, periods, "initiated")
			g2.Release()
			w2.Release()
		}
	}
}

// refreshVsFresh edits the given arcs to the given delays through the
// overlay, drains into the schedule, and asserts both the plain and
// every border-initiated trace against a schedule freshly compiled
// over the edited graph.
func refreshVsFresh(t *testing.T, g *sg.Graph, ov *sg.Overlay, sched *timesim.Schedule, edits map[int]float64, label string) {
	t.Helper()
	for arc, d := range edits {
		if err := ov.SetDelay(arc, d); err != nil {
			t.Fatalf("%s: SetDelay(%d, %g): %v", label, arc, d, err)
		}
	}
	ov.DrainDirty(sched.RefreshArcDelay)
	fresh, err := g.WithDelays(func(i int, _ float64) float64 { return ov.Delay(i) })
	if err != nil {
		t.Fatalf("%s: WithDelays: %v", label, err)
	}
	freshSched, err := timesim.Compile(fresh)
	if err != nil {
		t.Fatalf("%s: Compile fresh: %v", label, err)
	}
	periods := len(g.BorderEvents()) + 2
	opts := timesim.Options{Periods: periods, TrackParents: true}
	got, err := sched.Run(opts)
	if err != nil {
		t.Fatalf("%s: refreshed Run: %v", label, err)
	}
	want, err := freshSched.Run(opts)
	if err != nil {
		t.Fatalf("%s: fresh Run: %v", label, err)
	}
	sameTrace(t, g, got, want, periods, label+"/plain")
	got.Release()
	want.Release()
	for _, origin := range ov.Graph().BorderEvents() {
		g2, err := sched.RunFrom(origin, opts)
		if err != nil {
			t.Fatalf("%s: refreshed RunFrom: %v", label, err)
		}
		w2, err := freshSched.RunFrom(origin, opts)
		if err != nil {
			t.Fatalf("%s: fresh RunFrom: %v", label, err)
		}
		sameTrace(t, g, g2, w2, periods, label+"/initiated")
		g2.Release()
		w2.Release()
	}
}

// markedMultiArcGraph exercises every record class at once: unmarked
// parallel arcs between one event pair, marked (initial-token) arcs —
// including a parallel marked pair — and a marked self-loop.
func markedMultiArcGraph(t *testing.T) *sg.Graph {
	t.Helper()
	g, err := sg.NewBuilder("refresh-classes").
		Events("a", "b", "c").
		Arc("a", "b", 2).
		Arc("a", "b", 5). // parallel unmarked multi-arc
		Arc("b", "c", 1).
		Arc("c", "a", 3, sg.Marked()).
		Arc("c", "a", 7, sg.Marked()). // parallel marked multi-arc
		Arc("b", "b", 4, sg.Marked()). // marked self-loop
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestScheduleRefreshMarkedArc: refreshing a marked (initial-token)
// arc must rewrite its period-1 and steady-state record columns — a
// marked arc has no period-0 record at all, so a refresh that only
// handled the unmarked layout would silently keep the old delay.
func TestScheduleRefreshMarkedArc(t *testing.T) {
	g := markedMultiArcGraph(t)
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	for arc := 0; arc < g.NumArcs(); arc++ {
		if !g.Arc(arc).Marked {
			continue
		}
		refreshVsFresh(t, g, ov, sched, map[int]float64{arc: g.Arc(arc).Delay + 2.5},
			fmt.Sprintf("marked arc %d", arc))
	}
}

// TestScheduleRefreshMultiArc: parallel arcs between the same event
// pair have distinct records; refreshing one must not disturb the
// other, and refreshing both to swapped delays must swap the winner.
func TestScheduleRefreshMultiArc(t *testing.T) {
	g := markedMultiArcGraph(t)
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Arcs 0 and 1 are the unmarked a->b pair; 3 and 4 the marked c->a
	// pair. Raise only one of each pair above its sibling…
	refreshVsFresh(t, g, ov, sched, map[int]float64{0: 9}, "unmarked pair, first arc")
	refreshVsFresh(t, g, ov, sched, map[int]float64{3: 11}, "marked pair, first arc")
	// …then swap the delays inside each pair in one drain.
	refreshVsFresh(t, g, ov, sched, map[int]float64{0: 5, 1: 9, 3: 7, 4: 11}, "swapped pairs")
}

// TestScheduleRefreshRepeated: refresh-after-refresh of the same arc —
// including a refresh back to the original delay — always leaves the
// columns at the last written value.
func TestScheduleRefreshRepeated(t *testing.T) {
	g := markedMultiArcGraph(t)
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const arc = 2 // b->c, unmarked
	for _, d := range []float64{6, 0, 3.25, g.Arc(arc).Delay, 8} {
		refreshVsFresh(t, g, ov, sched, map[int]float64{arc: d},
			fmt.Sprintf("re-refresh to %g", d))
	}
}

// TestScheduleRefreshDelays: the O(m) full refresh re-reads every delay
// from the (overlay) graph, equivalent to per-arc refreshes.
func TestScheduleRefreshDelays(t *testing.T) {
	g, err := gen.Stack(7)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if err := ov.SetDelays(func(i int, nom float64) float64 { return nom + float64(i%3) }); err != nil {
		t.Fatalf("SetDelays: %v", err)
	}
	sched.RefreshDelays()
	ov.DrainDirty(func(int, float64) {}) // discard: full refresh already applied

	fresh, err := g.WithDelays(func(i int, nom float64) float64 { return nom + float64(i%3) })
	if err != nil {
		t.Fatalf("WithDelays: %v", err)
	}
	freshSched, err := timesim.Compile(fresh)
	if err != nil {
		t.Fatalf("Compile fresh: %v", err)
	}
	periods := len(g.BorderEvents()) + 1
	opts := timesim.Options{Periods: periods, TrackParents: true}
	got, err := sched.Run(opts)
	if err != nil {
		t.Fatalf("refreshed Run: %v", err)
	}
	want, err := freshSched.Run(opts)
	if err != nil {
		t.Fatalf("fresh Run: %v", err)
	}
	sameTrace(t, g, got, want, periods, "full-refresh")
}
