// Package timesim implements the timing simulation of §IV of the paper:
// the evaluation of event occurrence times over the unfolding of a Timed
// Signal Graph under the MAX rule,
//
//	t(f) = 0                                if f ∈ I_u
//	t(f) = max{ t(e) + τ | e →τ f }         otherwise,
//
// and the event-initiated variant t_g (§IV.B), in which every
// instantiation not strictly preceded by the initiating instantiation g_0
// is pinned to time 0 and its out-arcs are ignored.
//
// The simulation streams period by period in a topological order of the
// unmarked-arc subgraph, so it needs O(n) working state and O(m) time per
// period and never materialises the unfolding. Occurrence times for all
// simulated periods are retained for table and diagram generation, and
// optional parent pointers support the critical-cycle backtracking of
// §VI.B (Prop. 1).
//
// Two kernels produce traces. Run and RunFrom go through a compiled
// Schedule (see Compile): the graph's in-arcs are specialised per
// unfolding period into flat record arrays, so the inner loop is a
// linear scan with no existence tests, and the b simulations of one
// cycle-time analysis share the compiled form and a slab pool.
// ReferenceRun and ReferenceRunFrom walk the graph's adjacency lists
// directly; they are retained as the executable specification the
// compiled kernel is differentially tested against.
package timesim

import (
	"fmt"
	"math"

	"tsg/internal/sg"
	"tsg/internal/stat"
)

// Options configures a simulation run.
type Options struct {
	// Periods is the number of unfolding periods to simulate (>= 1).
	Periods int
	// TrackParents records, per instantiation, the predecessor that
	// realised the max, enabling critical-cycle backtracking.
	TrackParents bool
}

// Trace holds the occurrence times of a finished simulation. Rows are
// stored as flat slabs with stride n = NumEvents: the value of
// instantiation e_p lives at index p*n+e.
type Trace struct {
	g       *sg.Graph
	origin  sg.EventID
	periods int
	n       int
	order   []sg.EventID

	// times[p*n+e] is t(e_p); NaN where the instantiation does not exist
	// (non-repetitive events beyond period 0).
	times []float64
	// reached is a bitset over p*n+e reporting origin ⇒ e_p (or
	// e_p == origin_0); nil for plain simulations.
	reached []uint64

	parentEvent  []sg.EventID // sg.None where no parent
	parentPeriod []int32
	parentArc    []int32

	// Set for traces whose slabs come from a Schedule's pool; Release
	// returns them.
	sched *Schedule
	slab  *slab
}

func bitGet(b []uint64, i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func bitSet(b []uint64, i int)      { b[i>>6] |= 1 << (uint(i) & 63) }

// Run executes the plain timing simulation t of §IV.A on the compiled
// kernel and returns its trace. Callers running many simulations of the
// same graph should Compile once and use Schedule.Run.
func Run(g *sg.Graph, opts Options) (*Trace, error) {
	s, err := Compile(g)
	if err != nil {
		return nil, err
	}
	return s.Run(opts)
}

// RunFrom executes the event-initiated timing simulation t_origin of
// §IV.B, initiated at instantiation 0 of the given event, on the
// compiled kernel.
func RunFrom(g *sg.Graph, origin sg.EventID, opts Options) (*Trace, error) {
	s, err := Compile(g)
	if err != nil {
		return nil, err
	}
	return s.RunFrom(origin, opts)
}

// ReferenceRun executes the plain simulation on the uncompiled reference
// kernel, which walks the graph adjacency directly. It exists for
// differential testing of the compiled kernel; results are bit-identical
// to Run.
func ReferenceRun(g *sg.Graph, opts Options) (*Trace, error) {
	return referenceRun(g, sg.None, opts)
}

// ReferenceRunFrom is the event-initiated counterpart of ReferenceRun;
// results are bit-identical to RunFrom.
func ReferenceRunFrom(g *sg.Graph, origin sg.EventID, opts Options) (*Trace, error) {
	if origin < 0 || int(origin) >= g.NumEvents() {
		return nil, fmt.Errorf("timesim: origin event %d out of range", origin)
	}
	return referenceRun(g, origin, opts)
}

func referenceRun(g *sg.Graph, origin sg.EventID, opts Options) (*Trace, error) {
	if opts.Periods < 1 {
		return nil, fmt.Errorf("timesim: periods must be >= 1, got %d", opts.Periods)
	}
	order, err := g.PeriodOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumEvents()
	tr := &Trace{g: g, origin: origin, periods: opts.Periods, n: n, order: order}
	need := opts.Periods * n
	tr.times = make([]float64, need)
	for i := range tr.times {
		tr.times[i] = math.NaN()
	}
	initiated := origin != sg.None
	if initiated {
		tr.reached = make([]uint64, (need+63)>>6)
	}
	if opts.TrackParents {
		tr.parentEvent = make([]sg.EventID, need)
		tr.parentPeriod = make([]int32, need)
		tr.parentArc = make([]int32, need)
		for i := range tr.parentEvent {
			tr.parentEvent[i] = sg.None
			tr.parentPeriod[i] = -1
			tr.parentArc[i] = -1
		}
	}
	for p := 0; p < opts.Periods; p++ {
		tr.referencePeriod(p, initiated, opts.TrackParents)
	}
	return tr, nil
}

// referencePeriod evaluates all instantiations of period p in topological
// order, resolving each in-arc's existence and source period from first
// principles (§IV.A/§IV.B).
func (tr *Trace) referencePeriod(p int, initiated, parents bool) {
	g := tr.g
	n := tr.n
	base := p * n
	for _, f := range tr.order {
		ev := g.Event(f)
		if p > 0 && !ev.Repetitive {
			continue // no instantiation
		}
		best := math.Inf(-1)
		bestE, bestP, bestArc := sg.None, -1, -1
		anyPred := false
		for _, ai := range g.InArcs(f) {
			a := g.Arc(ai)
			m := 0
			if a.Marked {
				m = 1
			}
			var (
				srcPeriod int
				exists    bool
			)
			if g.Event(a.From).Repetitive {
				srcPeriod = p - m
				exists = srcPeriod >= 0
			} else {
				srcPeriod = 0
				exists = p == m
			}
			if !exists {
				continue
			}
			if initiated && !bitGet(tr.reached, srcPeriod*n+int(a.From)) {
				continue // arc from an event not preceded by the origin
			}
			anyPred = true
			if v := tr.times[srcPeriod*n+int(a.From)] + a.Delay; v > best {
				best = v
				bestE, bestP, bestArc = a.From, srcPeriod, ai
			}
		}
		fi := base + int(f)
		switch {
		case initiated && f == tr.origin && p == 0:
			// t_g(g) = 0 by definition, regardless of in-arcs.
			tr.times[fi] = 0
			bitSet(tr.reached, fi)
		case initiated && !anyPred:
			// g does not precede f_p: pinned to 0, out-arcs ignored
			// (reached stays false so successors skip it).
			tr.times[fi] = 0
		case !anyPred:
			tr.times[fi] = 0 // member of I_u: all in-arcs initially active
		default:
			tr.times[fi] = best
			if initiated {
				bitSet(tr.reached, fi)
			}
			if parents {
				tr.parentEvent[fi] = bestE
				tr.parentPeriod[fi] = int32(bestP)
				tr.parentArc[fi] = int32(bestArc)
			}
		}
	}
}

// Release returns the trace's slabs to the pool of the Schedule that ran
// it. The trace must not be used afterwards. Traces from the reference
// kernel (or already released) are left untouched.
func (tr *Trace) Release() {
	if tr.sched == nil || tr.slab == nil {
		return
	}
	sl := tr.slab
	tr.slab = nil
	tr.times = nil
	tr.reached = nil
	tr.parentEvent = nil
	tr.parentPeriod = nil
	tr.parentArc = nil
	tr.sched.pool.Put(sl)
}

// Graph returns the simulated graph.
func (tr *Trace) Graph() *sg.Graph { return tr.g }

// Periods returns the number of simulated periods.
func (tr *Trace) Periods() int { return tr.periods }

// Origin returns the initiating event, or sg.None for plain simulations.
func (tr *Trace) Origin() sg.EventID { return tr.origin }

// Time returns t(e_period) and whether that instantiation exists.
func (tr *Trace) Time(e sg.EventID, period int) (float64, bool) {
	if period < 0 || period >= tr.periods {
		return 0, false
	}
	v := tr.times[period*tr.n+int(e)]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// Reached reports whether the origin precedes e_period (always true for
// existing instantiations of plain simulations; the origin itself counts
// as reached).
func (tr *Trace) Reached(e sg.EventID, period int) bool {
	if period < 0 || period >= tr.periods {
		return false
	}
	i := period*tr.n + int(e)
	if math.IsNaN(tr.times[i]) {
		return false
	}
	if tr.reached == nil {
		return true
	}
	return bitGet(tr.reached, i)
}

// Parent returns the predecessor instantiation and graph-arc index that
// realised the max for e_period. ok is false when the instantiation has
// no parent (initial, unreached, or parents were not tracked).
func (tr *Trace) Parent(e sg.EventID, period int) (pe sg.EventID, pp int, arc int, ok bool) {
	if tr.parentEvent == nil || period < 0 || period >= tr.periods {
		return sg.None, -1, -1, false
	}
	i := period*tr.n + int(e)
	pe = tr.parentEvent[i]
	if pe == sg.None {
		return sg.None, -1, -1, false
	}
	return pe, int(tr.parentPeriod[i]), int(tr.parentArc[i]), true
}

// AvgDistances returns the average occurrence distance series of §IV.C
// for a plain simulation: δ(e_i) = t(e_i)/(i+1) for i = 0..periods-1.
func (tr *Trace) AvgDistances(e sg.EventID) *stat.Series {
	s := stat.NewSeries(tr.periods)
	for p := 0; p < tr.periods; p++ {
		if v, ok := tr.Time(e, p); ok {
			s.Append(v / float64(p+1))
		}
	}
	return s
}

// InitiatedDistances returns the series δ_{g_0}(g_j) = t_{g_0}(g_j)/j for
// j = 1..periods-1, where g is the initiating event. These are the
// quantities maximised in Prop. 7 to obtain the cycle time.
func (tr *Trace) InitiatedDistances() (*stat.Series, error) {
	if tr.origin == sg.None {
		return nil, fmt.Errorf("timesim: InitiatedDistances on a plain simulation")
	}
	s := stat.NewSeries(tr.periods - 1)
	for j := 1; j < tr.periods; j++ {
		if v, ok := tr.Time(tr.origin, j); ok {
			s.Append(v / float64(j))
		}
	}
	return s, nil
}

// Distance returns δ_{g_0}(g_j) = t_{g_0}(g_j)/j for the initiating event.
func (tr *Trace) Distance(j int) (float64, error) {
	if tr.origin == sg.None {
		return 0, fmt.Errorf("timesim: Distance on a plain simulation")
	}
	if j < 1 || j >= tr.periods {
		return 0, fmt.Errorf("timesim: Distance index %d out of range [1,%d)", j, tr.periods)
	}
	v, ok := tr.Time(tr.origin, j)
	if !ok {
		return 0, fmt.Errorf("timesim: origin %s has no instantiation %d",
			tr.g.Event(tr.origin).Name, j)
	}
	return v / float64(j), nil
}

// OccurrenceDistance returns t(e_{i+1}) - t(e_i): the occurrence distance
// between successive instantiations (§II), used by the timing-diagram
// experiments of Fig. 1c/1d.
func (tr *Trace) OccurrenceDistance(e sg.EventID, i int) (float64, error) {
	a, ok := tr.Time(e, i)
	if !ok {
		return 0, fmt.Errorf("timesim: no instantiation %s_%d", tr.g.Event(e).Name, i)
	}
	b, ok := tr.Time(e, i+1)
	if !ok {
		return 0, fmt.Errorf("timesim: no instantiation %s_%d", tr.g.Event(e).Name, i+1)
	}
	return b - a, nil
}
