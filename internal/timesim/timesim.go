// Package timesim implements the timing simulation of §IV of the paper:
// the evaluation of event occurrence times over the unfolding of a Timed
// Signal Graph under the MAX rule,
//
//	t(f) = 0                                if f ∈ I_u
//	t(f) = max{ t(e) + τ | e →τ f }         otherwise,
//
// and the event-initiated variant t_g (§IV.B), in which every
// instantiation not strictly preceded by the initiating instantiation g_0
// is pinned to time 0 and its out-arcs are ignored.
//
// The simulation streams period by period in a topological order of the
// unmarked-arc subgraph, so it needs O(n) working state and O(m) time per
// period and never materialises the unfolding. Occurrence times for all
// simulated periods are retained for table and diagram generation, and
// optional parent pointers support the critical-cycle backtracking of
// §VI.B (Prop. 1).
package timesim

import (
	"fmt"
	"math"

	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/unfold"
)

// Options configures a simulation run.
type Options struct {
	// Periods is the number of unfolding periods to simulate (>= 1).
	Periods int
	// TrackParents records, per instantiation, the predecessor that
	// realised the max, enabling critical-cycle backtracking.
	TrackParents bool
}

// Trace holds the occurrence times of a finished simulation.
type Trace struct {
	g       *sg.Graph
	origin  sg.EventID
	periods int
	order   []sg.EventID

	// times[p][e] is t(e_p); NaN where the instantiation does not exist
	// (non-repetitive events beyond period 0).
	times [][]float64
	// reached[p][e] reports origin ⇒ e_p (or e_p == origin_0); nil for
	// plain simulations.
	reached [][]bool

	parentEvent  [][]sg.EventID // sg.None where no parent
	parentPeriod [][]int32
	parentArc    [][]int32
}

// Run executes the plain timing simulation t of §IV.A and returns its
// trace.
func Run(g *sg.Graph, opts Options) (*Trace, error) {
	return run(g, sg.None, opts)
}

// RunFrom executes the event-initiated timing simulation t_origin of
// §IV.B, initiated at instantiation 0 of the given event.
func RunFrom(g *sg.Graph, origin sg.EventID, opts Options) (*Trace, error) {
	if origin < 0 || int(origin) >= g.NumEvents() {
		return nil, fmt.Errorf("timesim: origin event %d out of range", origin)
	}
	return run(g, origin, opts)
}

func run(g *sg.Graph, origin sg.EventID, opts Options) (*Trace, error) {
	if opts.Periods < 1 {
		return nil, fmt.Errorf("timesim: periods must be >= 1, got %d", opts.Periods)
	}
	order, err := unfold.PeriodOrder(g)
	if err != nil {
		return nil, err
	}
	tr := &Trace{g: g, origin: origin, periods: opts.Periods, order: order}
	tr.times = make([][]float64, opts.Periods)
	initiated := origin != sg.None
	if initiated {
		tr.reached = make([][]bool, opts.Periods)
	}
	if opts.TrackParents {
		tr.parentEvent = make([][]sg.EventID, opts.Periods)
		tr.parentPeriod = make([][]int32, opts.Periods)
		tr.parentArc = make([][]int32, opts.Periods)
	}
	// Slab-allocate the per-period rows: the analysis runs b of these
	// traces over b+1 periods each, so row-by-row allocation dominates
	// the profile otherwise.
	n := g.NumEvents()
	timeSlab := make([]float64, opts.Periods*n)
	var (
		reachSlab []bool
		peSlab    []sg.EventID
		ppSlab    []int32
		paSlab    []int32
	)
	if initiated {
		reachSlab = make([]bool, opts.Periods*n)
	}
	if opts.TrackParents {
		peSlab = make([]sg.EventID, opts.Periods*n)
		ppSlab = make([]int32, opts.Periods*n)
		paSlab = make([]int32, opts.Periods*n)
	}
	for p := 0; p < opts.Periods; p++ {
		tr.times[p] = timeSlab[p*n : (p+1)*n]
		for i := range tr.times[p] {
			tr.times[p][i] = math.NaN()
		}
		if initiated {
			tr.reached[p] = reachSlab[p*n : (p+1)*n]
		}
		if opts.TrackParents {
			tr.parentEvent[p] = peSlab[p*n : (p+1)*n]
			tr.parentPeriod[p] = ppSlab[p*n : (p+1)*n]
			tr.parentArc[p] = paSlab[p*n : (p+1)*n]
			for i := range tr.parentEvent[p] {
				tr.parentEvent[p][i] = sg.None
				tr.parentPeriod[p][i] = -1
				tr.parentArc[p][i] = -1
			}
		}
		tr.runPeriod(p, initiated, opts.TrackParents)
	}
	return tr, nil
}

// runPeriod evaluates all instantiations of period p in topological order.
func (tr *Trace) runPeriod(p int, initiated, parents bool) {
	g := tr.g
	for _, f := range tr.order {
		ev := g.Event(f)
		if p > 0 && !ev.Repetitive {
			continue // no instantiation
		}
		best := math.Inf(-1)
		bestE, bestP, bestArc := sg.None, -1, -1
		anyPred := false
		for _, ai := range g.InArcs(f) {
			a := g.Arc(ai)
			m := 0
			if a.Marked {
				m = 1
			}
			var (
				srcPeriod int
				exists    bool
			)
			if g.Event(a.From).Repetitive {
				srcPeriod = p - m
				exists = srcPeriod >= 0
			} else {
				srcPeriod = 0
				exists = p == m
			}
			if !exists {
				continue
			}
			if initiated && !tr.reached[srcPeriod][a.From] {
				continue // arc from an event not preceded by the origin
			}
			anyPred = true
			if v := tr.times[srcPeriod][a.From] + a.Delay; v > best {
				best = v
				bestE, bestP, bestArc = a.From, srcPeriod, ai
			}
		}
		switch {
		case initiated && f == tr.origin && p == 0:
			// t_g(g) = 0 by definition, regardless of in-arcs.
			tr.times[p][f] = 0
			tr.reached[p][f] = true
		case initiated && !anyPred:
			// g does not precede f_p: pinned to 0, out-arcs ignored
			// (reached stays false so successors skip it).
			tr.times[p][f] = 0
		case !anyPred:
			tr.times[p][f] = 0 // member of I_u: all in-arcs initially active
		default:
			tr.times[p][f] = best
			if initiated {
				tr.reached[p][f] = true
			}
			if parents {
				tr.parentEvent[p][f] = bestE
				tr.parentPeriod[p][f] = int32(bestP)
				tr.parentArc[p][f] = int32(bestArc)
			}
		}
	}
}

// Graph returns the simulated graph.
func (tr *Trace) Graph() *sg.Graph { return tr.g }

// Periods returns the number of simulated periods.
func (tr *Trace) Periods() int { return tr.periods }

// Origin returns the initiating event, or sg.None for plain simulations.
func (tr *Trace) Origin() sg.EventID { return tr.origin }

// Time returns t(e_period) and whether that instantiation exists.
func (tr *Trace) Time(e sg.EventID, period int) (float64, bool) {
	if period < 0 || period >= tr.periods {
		return 0, false
	}
	v := tr.times[period][e]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// Reached reports whether the origin precedes e_period (always true for
// existing instantiations of plain simulations; the origin itself counts
// as reached).
func (tr *Trace) Reached(e sg.EventID, period int) bool {
	if period < 0 || period >= tr.periods || math.IsNaN(tr.times[period][e]) {
		return false
	}
	if tr.reached == nil {
		return true
	}
	return tr.reached[period][e]
}

// Parent returns the predecessor instantiation and graph-arc index that
// realised the max for e_period. ok is false when the instantiation has
// no parent (initial, unreached, or parents were not tracked).
func (tr *Trace) Parent(e sg.EventID, period int) (pe sg.EventID, pp int, arc int, ok bool) {
	if tr.parentEvent == nil || period < 0 || period >= tr.periods {
		return sg.None, -1, -1, false
	}
	pe = tr.parentEvent[period][e]
	if pe == sg.None {
		return sg.None, -1, -1, false
	}
	return pe, int(tr.parentPeriod[period][e]), int(tr.parentArc[period][e]), true
}

// AvgDistances returns the average occurrence distance series of §IV.C
// for a plain simulation: δ(e_i) = t(e_i)/(i+1) for i = 0..periods-1.
func (tr *Trace) AvgDistances(e sg.EventID) *stat.Series {
	s := stat.NewSeries(tr.periods)
	for p := 0; p < tr.periods; p++ {
		if v, ok := tr.Time(e, p); ok {
			s.Append(v / float64(p+1))
		}
	}
	return s
}

// InitiatedDistances returns the series δ_{g_0}(g_j) = t_{g_0}(g_j)/j for
// j = 1..periods-1, where g is the initiating event. These are the
// quantities maximised in Prop. 7 to obtain the cycle time.
func (tr *Trace) InitiatedDistances() (*stat.Series, error) {
	if tr.origin == sg.None {
		return nil, fmt.Errorf("timesim: InitiatedDistances on a plain simulation")
	}
	s := stat.NewSeries(tr.periods - 1)
	for j := 1; j < tr.periods; j++ {
		if v, ok := tr.Time(tr.origin, j); ok {
			s.Append(v / float64(j))
		}
	}
	return s, nil
}

// Distance returns δ_{g_0}(g_j) = t_{g_0}(g_j)/j for the initiating event.
func (tr *Trace) Distance(j int) (float64, error) {
	if tr.origin == sg.None {
		return 0, fmt.Errorf("timesim: Distance on a plain simulation")
	}
	if j < 1 || j >= tr.periods {
		return 0, fmt.Errorf("timesim: Distance index %d out of range [1,%d)", j, tr.periods)
	}
	v, ok := tr.Time(tr.origin, j)
	if !ok {
		return 0, fmt.Errorf("timesim: origin %s has no instantiation %d",
			tr.g.Event(tr.origin).Name, j)
	}
	return v / float64(j), nil
}

// OccurrenceDistance returns t(e_{i+1}) - t(e_i): the occurrence distance
// between successive instantiations (§II), used by the timing-diagram
// experiments of Fig. 1c/1d.
func (tr *Trace) OccurrenceDistance(e sg.EventID, i int) (float64, error) {
	a, ok := tr.Time(e, i)
	if !ok {
		return 0, fmt.Errorf("timesim: no instantiation %s_%d", tr.g.Event(e).Name, i)
	}
	b, ok := tr.Time(e, i+1)
	if !ok {
		return 0, fmt.Errorf("timesim: no instantiation %s_%d", tr.g.Event(e).Name, i+1)
	}
	return b - a, nil
}
