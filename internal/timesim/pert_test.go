package timesim_test

import (
	"strings"
	"testing"

	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// TestCriticalPathPERT: a small project network (§II relates the timing
// simulation of acyclic graphs to PERT analysis). Tasks:
//
//	start -> dig(3) -> pour(2) -> build(5) -> done
//	start -> permits(4) ----------^
//	start -> lumber(1) -----------^
//
// build starts after max(3+2, 4, 1) = 5; makespan = 10 via dig/pour.
func TestCriticalPathPERT(t *testing.T) {
	g, err := sg.NewBuilder("project").
		Event("start", sg.NonRepetitive()).
		Event("dig", sg.NonRepetitive()).
		Event("pour", sg.NonRepetitive()).
		Event("permits", sg.NonRepetitive()).
		Event("lumber", sg.NonRepetitive()).
		Event("build", sg.NonRepetitive()).
		Arc("start", "dig", 3).
		Arc("dig", "pour", 2).
		Arc("start", "permits", 4).
		Arc("start", "lumber", 1).
		Arc("pour", "build", 5).
		Arc("permits", "build", 5).
		Arc("lumber", "build", 5).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	makespan, path, err := timesim.CriticalPath(g)
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if makespan != 10 {
		t.Errorf("makespan = %g, want 10", makespan)
	}
	got := strings.Join(g.EventNames(path), " ")
	if got != "start dig pour build" {
		t.Errorf("critical path = %q, want \"start dig pour build\"", got)
	}
}

func TestCriticalPathErrors(t *testing.T) {
	// Repetitive graphs are rejected.
	cyc, err := sg.NewBuilder("loop").Events("a+").
		Arc("a+", "a+", 1, sg.Marked()).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, _, err := timesim.CriticalPath(cyc); err == nil {
		t.Error("CriticalPath on cyclic graph succeeded")
	}
}

// TestCriticalPathSingleEvent: the degenerate one-task project.
func TestCriticalPathSingleEvent(t *testing.T) {
	g, err := sg.NewBuilder("one").
		Event("only", sg.NonRepetitive()).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	makespan, path, err := timesim.CriticalPath(g)
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	if makespan != 0 || len(path) != 1 {
		t.Errorf("makespan = %g, path = %v; want 0 and the single event", makespan, path)
	}
}
