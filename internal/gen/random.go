package gen

import (
	"fmt"
	"math/rand"

	"tsg/internal/sg"
)

// RandomOptions parameterises RandomLive.
type RandomOptions struct {
	// Events is the number of (repetitive) events n (>= 2).
	Events int
	// Border is the exact number of border events b (1 <= b <= n).
	Border int
	// ExtraArcs is the number of chord arcs added on top of the
	// backbone cycle, so m = Events + ExtraArcs.
	ExtraArcs int
	// MaxDelay bounds the integer arc delays: delays are drawn
	// uniformly from {0, 1, ..., MaxDelay}. Default 16.
	MaxDelay int
}

// RandomLive generates a random live, strongly connected Timed Signal
// Graph with exactly the requested number of events, border events and
// arcs. It is the workload for the O(b²m) complexity experiments: m can
// be scaled at fixed b, and b at fixed m.
//
// Construction: the events form a Hamiltonian backbone cycle with
// exactly Border marked arcs; chords are added only in the forward
// direction of the unmarked backbone segments, so the unmarked subgraph
// stays acyclic (liveness) while strong connectivity comes from the
// backbone. Chords are unmarked, keeping the border size exact. Integer
// delays keep cycle times exactly representable.
func RandomLive(rng *rand.Rand, opts RandomOptions) (*sg.Graph, error) {
	n, b := opts.Events, opts.Border
	if n < 2 {
		return nil, fmt.Errorf("gen: random graph needs >= 2 events, got %d", n)
	}
	if b < 1 || b > n {
		return nil, fmt.Errorf("gen: border size %d out of range 1..%d", b, n)
	}
	maxDelay := opts.MaxDelay
	if maxDelay == 0 {
		maxDelay = 16
	}
	if maxDelay < 0 {
		return nil, fmt.Errorf("gen: negative MaxDelay %d", maxDelay)
	}
	delay := func() float64 { return float64(rng.Intn(maxDelay + 1)) }

	// Choose which backbone arcs v_k -> v_{k+1 mod n} are marked: b
	// distinct positions.
	markedPos := make(map[int]bool, b)
	for len(markedPos) < b {
		markedPos[rng.Intn(n)] = true
	}

	bld := sg.NewBuilder(fmt.Sprintf("random-n%d-b%d-m%d", n, b, n+opts.ExtraArcs))
	name := func(k int) string { return fmt.Sprintf("v%d", k) }
	for k := 0; k < n; k++ {
		bld.Event(name(k))
	}
	for k := 0; k < n; k++ {
		if markedPos[k] {
			bld.Arc(name(k), name((k+1)%n), delay(), sg.Marked())
		} else {
			bld.Arc(name(k), name((k+1)%n), delay())
		}
	}

	// Topological position of each event in the unmarked backbone
	// forest: walk each segment starting right after a marked arc.
	pos := make([]int, n)
	next := 0
	for k := 0; k < n; k++ {
		if !markedPos[(k-1+n)%n] {
			continue // not a segment head
		}
		for v := k; ; v = (v + 1) % n {
			pos[v] = next
			next++
			if markedPos[v] {
				break // segment ends after its trailing marked arc
			}
		}
	}

	// Forward chords (unmarked, so they cannot close an unmarked cycle
	// and do not enlarge the border set).
	added := 0
	attempts := 0
	maxAttempts := 100 * (opts.ExtraArcs + 1)
	for added < opts.ExtraArcs && attempts < maxAttempts {
		attempts++
		u, v := rng.Intn(n), rng.Intn(n)
		if pos[u] >= pos[v] {
			continue
		}
		bld.Arc(name(u), name(v), delay())
		added++
	}
	if added < opts.ExtraArcs {
		return nil, fmt.Errorf("gen: could only place %d of %d chord arcs (try more events or fewer borders)",
			added, opts.ExtraArcs)
	}
	g, err := bld.Build()
	if err != nil {
		return nil, fmt.Errorf("gen: random graph invalid: %w", err)
	}
	if got := len(g.BorderEvents()); got != b {
		return nil, fmt.Errorf("gen: random graph has %d border events, expected %d", got, b)
	}
	return g, nil
}
