package gen_test

import (
	"bytes"
	"fmt"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/mcr"
	"tsg/internal/netlist"
	"tsg/internal/sg"
	"tsg/internal/stat"
)

func TestPipeGridLambdaExact(t *testing.T) {
	const S, D, W = 4, 7, 3
	g, err := gen.PipeGrid(gen.PipeGridOptions{Sites: S, Depth: D, Width: W, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumEvents(), S*(1+D*W); got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	if got, want := g.NumArcs(), S*W*(D+1); got != want {
		t.Fatalf("arcs = %d, want %d", got, want)
	}
	if got := len(g.BorderEvents()); got != S {
		t.Fatalf("border = %d, want %d", got, S)
	}

	// First-principles λ: per segment, the max lane delay; lanes are
	// disjoint chains so summing arc delays per lane is direct. Cell
	// names are "p<site>_<lane>_<stage>"; every arc touches exactly one
	// cell, which identifies its lane.
	parseCell := func(name string) (site, lane int) {
		var stage int
		if _, err := fmt.Sscanf(name, "p%d_%d_%d", &site, &lane, &stage); err != nil {
			t.Fatalf("parse %q: %v", name, err)
		}
		return site, lane
	}
	laneSum := make(map[[2]int]float64)
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		from, to := g.Event(a.From).Name, g.Event(a.To).Name
		var site, lane int
		if from[0] == 's' { // site -> first cell
			site, lane = parseCell(to)
		} else {
			site, lane = parseCell(from)
		}
		laneSum[[2]int{site, lane}] += a.Delay
	}
	total := 0.0
	for i := 0; i < S; i++ {
		seg := 0.0
		for l := 0; l < W; l++ {
			if v := laneSum[[2]int{i, l}]; v > seg {
				seg = v
			}
		}
		total += seg
	}
	want := stat.NewRatio(total, S).Normalize()

	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleTime.Equal(want) {
		t.Fatalf("λ = %v, first principles say %v", res.CycleTime, want)
	}
	how, err := mcr.Howard(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleTime.Equal(how) {
		t.Fatalf("λ = %v, Howard says %v", res.CycleTime, how)
	}
}

func TestMeshFamily(t *testing.T) {
	const W, H = 12, 5
	g, err := gen.Mesh(gen.MeshOptions{W: W, H: H, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumEvents(), W*H; got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	if got, want := g.NumArcs(), 2*H*(W-1)+H; got != want {
		t.Fatalf("arcs = %d, want %d", got, want)
	}
	if got := len(g.BorderEvents()); got != H {
		t.Fatalf("border = %d, want %d", got, H)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	how, err := mcr.Howard(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleTime.Equal(how) {
		t.Fatalf("λ = %v, Howard says %v", res.CycleTime, how)
	}
	if _, err := gen.Mesh(gen.MeshOptions{W: 4, H: 6}); err == nil {
		t.Fatal("W < H must be rejected (wrap would disconnect)")
	}
}

func TestTreeOfRingsFamily(t *testing.T) {
	const S, L, F = 3, 3, 2
	g, err := gen.TreeOfRings(gen.TreeRingOptions{Sites: S, Levels: L, Fanout: F, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	treeSz := F + F*F + F*F*F
	joinSz := 1 + F + F*F
	if got, want := g.NumEvents(), S*(1+treeSz+joinSz); got != want {
		t.Fatalf("events = %d, want %d", got, want)
	}
	if got, want := g.NumArcs(), S*(2*treeSz+1); got != want {
		t.Fatalf("arcs = %d, want %d", got, want)
	}
	if got := len(g.BorderEvents()); got != S {
		t.Fatalf("border = %d, want %d", got, S)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	how, err := mcr.Howard(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleTime.Equal(how) {
		t.Fatalf("λ = %v, Howard says %v", res.CycleTime, how)
	}
}

// TestHugeRoundTrip streams each family through the .tsg writer and
// reader and demands an identical fingerprint.
func TestHugeRoundTrip(t *testing.T) {
	graphs := []*sg.Graph{}
	g, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 3, Depth: 4, Width: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g)
	if g, err = gen.Mesh(gen.MeshOptions{W: 6, H: 4, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g)
	if g, err = gen.TreeOfRings(gen.TreeRingOptions{Sites: 2, Levels: 2, Fanout: 3, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	graphs = append(graphs, g)
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := netlist.WriteTSG(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name(), err)
		}
		back, err := netlist.ReadTSG(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name(), err)
		}
		if sg.Fingerprint(back) != sg.Fingerprint(g) {
			t.Fatalf("%s: fingerprint changed across .tsg round trip", g.Name())
		}
	}
}

// TestHugeDeterminism: same options, same graph; different seed,
// different delays.
func TestHugeDeterminism(t *testing.T) {
	a, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 3, Depth: 5, Width: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 3, Depth: 5, Width: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if sg.Fingerprint(a) != sg.Fingerprint(b) {
		t.Fatal("same seed produced different graphs")
	}
	c, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 3, Depth: 5, Width: 2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sg.Fingerprint(a) == sg.Fingerprint(c) {
		t.Fatal("different seeds produced identical graphs")
	}
}

// TestPipeGridSizedStreams builds a mid-size instance to exercise the
// streamed construction path end to end.
func TestPipeGridSizedStreams(t *testing.T) {
	g, err := gen.PipeGridSized(100_000, 8, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n := g.NumEvents(); n < 90_000 || n > 110_000 {
		t.Fatalf("PipeGridSized(100k) built %d events", n)
	}
	if got := len(g.BorderEvents()); got != 8 {
		t.Fatalf("border = %d, want 8", got)
	}
}
