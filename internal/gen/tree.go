package gen

import (
	"fmt"

	"tsg/internal/circuit"
)

// CompletionTreeCircuit builds a completion-tree oscillator: 2^depth
// leaf inverters watch the root, a binary tree of C-elements merges the
// leaves' acknowledgements, and the root of the tree drives the leaves
// back — the classic completion-detection structure of asynchronous
// datapaths, closed into an autonomous oscillator. With C-element delay
// cd and inverter delay id the cycle time is 2·(depth·cd + id).
//
// All signals start low except the leaf inverters, which see the low
// root and are therefore the initially excited gates.
func CompletionTreeCircuit(depth int, cd, id float64) (*circuit.Circuit, error) {
	if depth < 1 {
		return nil, fmt.Errorf("gen: completion tree needs depth >= 1, got %d", depth)
	}
	if depth > 10 {
		return nil, fmt.Errorf("gen: completion tree depth %d too large (max 10)", depth)
	}
	if cd == 0 {
		cd = 1
	}
	if id == 0 {
		id = 1
	}
	if cd < 0 || id < 0 {
		return nil, fmt.Errorf("gen: negative delays (C=%g, INV=%g)", cd, id)
	}
	b := circuit.NewBuilder(fmt.Sprintf("ctree-%d", depth))
	// node(level, i): level 0 = leaves (2^depth of them), level depth = root.
	node := func(level, i int) string {
		if level == depth {
			return "root"
		}
		return fmt.Sprintf("n%d_%d", level, i)
	}
	leaves := 1 << depth
	for i := 0; i < leaves; i++ {
		b.Gate(circuit.Inv, node(0, i), []string{node(depth, 0)}, id)
		b.Init(node(0, i), circuit.Low) // low; excited because root is low
	}
	for level := 1; level <= depth; level++ {
		for i := 0; i < leaves>>level; i++ {
			b.Gate(circuit.CElement, node(level, i),
				[]string{node(level-1, 2*i), node(level-1, 2*i+1)}, cd)
		}
	}
	return b.Build()
}
