package gen

import (
	"fmt"

	"tsg/internal/circuit"
	"tsg/internal/sg"
)

// OscillatorCircuit reconstructs the gate-level circuit of Fig. 1a: a
// C-element, two NOR gates and a buffer driven by the one-shot input e.
// The structure and per-pin delays are recovered from the Timed Signal
// Graph of Fig. 1b (every arc delay is the pin delay of the
// corresponding gate input):
//
//	a = NOR(e, c)   pins e:2 c:2
//	b = NOR(f, c)   pins f:1 c:1
//	c = C(a, b)     pins a:3 b:2
//	f = BUF(e)      pin  e:3
//
// Initial state {a,b,c,f,e} = {0,0,0,1,1}; the environment lowers e at
// time 0 (the initial event e- of the Signal Graph). The returned input
// script carries that single transition.
func OscillatorCircuit() (*circuit.Circuit, []circuit.InputEvent) {
	c, err := circuit.NewBuilder("oscillator").
		Input("e", circuit.High).
		Gate(circuit.Buf, "f", []string{"e"}, 3).
		Gate(circuit.Nor, "a", []string{"e", "c"}, 2, 2).
		Gate(circuit.Nor, "b", []string{"f", "c"}, 1, 1).
		Gate(circuit.CElement, "c", []string{"a", "b"}, 3, 2).
		Init("f", circuit.High).
		Build()
	if err != nil {
		panic(fmt.Sprintf("gen: oscillator circuit fixture invalid: %v", err)) // unreachable
	}
	return c, []circuit.InputEvent{{Signal: "e", Time: 0, Level: circuit.Low}}
}

// MullerRingCircuit builds the gate-level Muller ring of Fig. 5: stage k
// is a C-element o_k = C(o_{k-1}, i_k) with inverter i_k = INV(o_{k+1}),
// indices mod n. The options mirror MullerRingOpts; the paper's ring has
// five stages, stage 5 initially high, and unit delays everywhere.
func MullerRingCircuit(opts RingOptions) (*circuit.Circuit, error) {
	n := opts.Stages
	if n < 3 {
		return nil, fmt.Errorf("gen: Muller ring needs >= 3 stages, got %d", n)
	}
	cd, id := opts.CDelay, opts.InvDelay
	if cd == 0 {
		cd = 1
	}
	if id == 0 {
		id = 1
	}
	high := make([]bool, n+1)
	for _, s := range opts.InitialHigh {
		if s < 1 || s > n {
			return nil, fmt.Errorf("gen: initial-high stage %d out of range 1..%d", s, n)
		}
		high[s] = true
	}
	b := circuit.NewBuilder(fmt.Sprintf("muller-ring-%d", n))
	for k := 1; k <= n; k++ {
		prev, next := mod1(k-1, n), mod1(k+1, n)
		b.Gate(circuit.CElement, o(k), []string{o(prev), i(k)}, cd)
		b.Gate(circuit.Inv, i(k), []string{o(next)}, id)
	}
	for k := 1; k <= n; k++ {
		if high[k] {
			b.Init(o(k), circuit.High)
		}
		if !high[mod1(k+1, n)] {
			b.Init(i(k), circuit.High)
		}
	}
	return b.Build()
}

// MullerPipelineCircuit builds an open n-stage Muller pipeline with the
// environment folded in: a producer feeding stage 1 and a consumer
// draining stage n, both modelled as extra ring stages, which closes the
// structure into an (n+1)-stage ring carrying the given number of
// initial data tokens (spread from the producer end). This is the
// standard autonomous closure used for throughput analysis.
func MullerPipelineCircuit(stages, tokens int, cd, id float64) (*circuit.Circuit, error) {
	if stages < 2 {
		return nil, fmt.Errorf("gen: pipeline needs >= 2 stages, got %d", stages)
	}
	n := stages + 1
	if tokens < 1 || tokens >= n {
		return nil, fmt.Errorf("gen: pipeline of %d stages holds 1..%d tokens, got %d", stages, n-1, tokens)
	}
	return MullerRingCircuit(RingOptions{Stages: n, InitialHigh: spreadTokens(n, tokens), CDelay: cd, InvDelay: id})
}

// MullerPipeline is the Signal Graph twin of MullerPipelineCircuit: the
// same autonomous ring closure, expressed directly as a Timed Signal
// Graph.
func MullerPipeline(stages, tokens int, cd, id float64) (*sg.Graph, error) {
	if stages < 2 {
		return nil, fmt.Errorf("gen: pipeline needs >= 2 stages, got %d", stages)
	}
	n := stages + 1
	if tokens < 1 || tokens >= n {
		return nil, fmt.Errorf("gen: pipeline of %d stages holds 1..%d tokens, got %d", stages, n-1, tokens)
	}
	return MullerRingOpts(RingOptions{Stages: n, InitialHigh: spreadTokens(n, tokens), CDelay: cd, InvDelay: id})
}

// spreadTokens places data tokens at maximal spacing around an n-stage
// ring: adjacent initially-high stages would merge into a single token
// (the rings use NRZ encoding, one token per high/low boundary).
func spreadTokens(n, tokens int) []int {
	var high []int
	for t := 0; t < tokens; t++ {
		high = append(high, n-(t*n)/tokens)
	}
	return high
}
