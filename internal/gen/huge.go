package gen

import (
	"fmt"
	"strconv"

	"tsg/internal/sg"
)

// Huge structured workloads for the scalability experiments (SCALE).
//
// The analysis cost of the paper's algorithm is O(b · periods · m) with
// periods defaulting to b — quadratic in the border size. The Muller
// fixtures pin b to Θ(n) (every C-element stage holds a token), so no
// amount of kernel tuning reaches 10⁶ events on them. The families
// below instead follow the shape hierarchical compression exploits:
// a small ring of S token "sites" carries every initial marking, and
// the fabric between consecutive sites is a huge token-free DAG.
// The border is exactly the S sites, every cycle threads all of them,
// and macro-compression collapses each fabric segment into a handful
// of site-to-site delay arcs.
//
// All delays are small positive integers derived deterministically from
// the seed (splitmix64 over the element coordinates), so float64 sums
// along any path are exact and flat-versus-hierarchical comparisons can
// demand bit equality.

// delayHash maps (seed, coordinates) to an integer delay in [1, max].
func delayHash(seed uint64, a, b, c, d int, max int) float64 {
	x := seed ^ 0x9e3779b97f4a7c15
	for _, v := range [4]int{a, b, c, d} {
		x += uint64(v) + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	return float64(1 + x%uint64(max))
}

// PipeGridOptions sizes a pipelines-of-pipelines workload: a ring of
// Sites token sites, each segment filled with Width parallel lanes of
// Depth-stage unmarked pipelines. n = Sites·(1 + Depth·Width).
type PipeGridOptions struct {
	Sites    int // token sites on the ring (the border size), >= 2
	Depth    int // stages per lane, >= 1
	Width    int // parallel lanes per segment, >= 1
	MaxDelay int // delays drawn from [1, MaxDelay]; default 8
	Seed     uint64
}

// PipeGrid builds the pipelines-of-pipelines family. Every cycle passes
// all Sites token arcs, so the cycle time is the site-ring mean
// Σᵢ maxₗ laneDelay(i,l) / Sites.
func PipeGrid(o PipeGridOptions) (*sg.Graph, error) {
	if o.Sites < 2 || o.Depth < 1 || o.Width < 1 {
		return nil, fmt.Errorf("gen: PipeGrid needs Sites >= 2, Depth >= 1, Width >= 1, got %+v", o)
	}
	maxd := o.MaxDelay
	if maxd <= 0 {
		maxd = 8
	}
	n := o.Sites * (1 + o.Depth*o.Width)
	m := o.Sites * o.Width * (o.Depth + 1)
	b := sg.NewDenseBuilder(fmt.Sprintf("pipegrid-s%d-d%d-w%d", o.Sites, o.Depth, o.Width), n, m)
	sites := make([]sg.EventID, o.Sites)
	for i := range sites {
		sites[i] = b.AddEvent("s" + strconv.Itoa(i))
	}
	for i := 0; i < o.Sites; i++ {
		next := sites[(i+1)%o.Sites]
		for l := 0; l < o.Width; l++ {
			prev := sites[i]
			for k := 0; k < o.Depth; k++ {
				cell := b.AddEvent("p" + strconv.Itoa(i) + "_" + strconv.Itoa(l) + "_" + strconv.Itoa(k))
				b.AddArc(prev, cell, delayHash(o.Seed, i, l, k, 0, maxd), false)
				prev = cell
			}
			// The lane tail hands the segment's token to the next site.
			b.AddArc(prev, next, delayHash(o.Seed, i, l, o.Depth, 1, maxd), true)
		}
	}
	return b.Build()
}

// PipeGridSized picks a Depth so the graph has roughly n events at the
// given ring shape (used by the SCALE sweep).
func PipeGridSized(n, sites, width int, seed uint64) (*sg.Graph, error) {
	depth := (n/sites - 1) / width
	if depth < 1 {
		depth = 1
	}
	return PipeGrid(PipeGridOptions{Sites: sites, Depth: depth, Width: width, Seed: seed})
}

// MeshOptions sizes a 2-D mesh workload: a W×H grid streamed left to
// right with straight and diagonal (row+1 mod H) coupling arcs, and an
// initially marked wrap column feeding the last column back into the
// first. n = W·H; the border is the H events of column 0.
type MeshOptions struct {
	W, H     int // W >= H >= 2: fewer columns than rows would disconnect the wrap
	MaxDelay int // default 8
	Seed     uint64
}

// Mesh builds the 2-D mesh family. Cycles wrap the mesh k times (until
// their diagonal displacement cancels mod H), so the analysis sees
// genuinely long cycles with up to H tokens.
func Mesh(o MeshOptions) (*sg.Graph, error) {
	if o.H < 2 || o.W < o.H {
		return nil, fmt.Errorf("gen: Mesh needs W >= H >= 2 (strong connectivity of the wrap), got %+v", o)
	}
	maxd := o.MaxDelay
	if maxd <= 0 {
		maxd = 8
	}
	n := o.W * o.H
	m := 2*o.H*(o.W-1) + o.H
	b := sg.NewDenseBuilder(fmt.Sprintf("mesh-%dx%d", o.W, o.H), n, m)
	id := func(w, h int) sg.EventID { return sg.EventID(w*o.H + h) }
	for w := 0; w < o.W; w++ {
		for h := 0; h < o.H; h++ {
			b.AddEvent("m" + strconv.Itoa(w) + "_" + strconv.Itoa(h))
		}
	}
	for w := 0; w < o.W-1; w++ {
		for h := 0; h < o.H; h++ {
			b.AddArc(id(w, h), id(w+1, h), delayHash(o.Seed, w, h, 0, 0, maxd), false)
			b.AddArc(id(w, h), id(w+1, (h+1)%o.H), delayHash(o.Seed, w, h, 1, 0, maxd), false)
		}
	}
	for h := 0; h < o.H; h++ {
		b.AddArc(id(o.W-1, h), id(0, h), delayHash(o.Seed, o.W-1, h, 2, 0, maxd), true)
	}
	return b.Build()
}

// TreeRingOptions sizes a trees-of-rings workload: a ring of Sites
// token sites whose segments are diamonds — a Fanout-ary tree fanning
// out for Levels levels and a mirrored tree joining back before the
// next site.
type TreeRingOptions struct {
	Sites    int // >= 2
	Levels   int // >= 1
	Fanout   int // >= 2
	MaxDelay int // default 8
	Seed     uint64
}

// TreeOfRings builds the trees-of-rings family.
func TreeOfRings(o TreeRingOptions) (*sg.Graph, error) {
	if o.Sites < 2 || o.Levels < 1 || o.Fanout < 2 {
		return nil, fmt.Errorf("gen: TreeOfRings needs Sites >= 2, Levels >= 1, Fanout >= 2, got %+v", o)
	}
	maxd := o.MaxDelay
	if maxd <= 0 {
		maxd = 8
	}
	// Per segment: out-tree nodes at depths 1..L plus in-tree nodes at
	// depths L-1..0 (the out-tree leaves double as the in-tree's deepest
	// level). treeSz = Σ_{d=1..L} F^d.
	treeSz, width := 0, 1
	for d := 1; d <= o.Levels; d++ {
		width *= o.Fanout
		treeSz += width
	}
	joinSz := (treeSz - width) + 1 // Σ_{d=0..L-1} F^d
	n := o.Sites * (1 + treeSz + joinSz)
	m := o.Sites * (2*treeSz + 1)
	b := sg.NewDenseBuilder(fmt.Sprintf("treering-s%d-l%d-f%d", o.Sites, o.Levels, o.Fanout), n, m)
	sites := make([]sg.EventID, o.Sites)
	for i := range sites {
		sites[i] = b.AddEvent("s" + strconv.Itoa(i))
	}
	for i := 0; i < o.Sites; i++ {
		// Fan out: level d holds F^d nodes, node j's parent is j/F.
		prev := []sg.EventID{sites[i]}
		for d := 1; d <= o.Levels; d++ {
			lvl := make([]sg.EventID, len(prev)*o.Fanout)
			for j := range lvl {
				lvl[j] = b.AddEvent("t" + strconv.Itoa(i) + "o" + strconv.Itoa(d) + "_" + strconv.Itoa(j))
				b.AddArc(prev[j/o.Fanout], lvl[j], delayHash(o.Seed, i, d, j, 0, maxd), false)
			}
			prev = lvl
		}
		// Join back: level d holds F^d nodes, each collecting its F children.
		for d := o.Levels - 1; d >= 0; d-- {
			lvl := make([]sg.EventID, len(prev)/o.Fanout)
			for j := range lvl {
				lvl[j] = b.AddEvent("t" + strconv.Itoa(i) + "j" + strconv.Itoa(d) + "_" + strconv.Itoa(j))
				for k := 0; k < o.Fanout; k++ {
					b.AddArc(prev[j*o.Fanout+k], lvl[j], delayHash(o.Seed, i, d, j*o.Fanout+k, 1, maxd), false)
				}
			}
			prev = lvl
		}
		b.AddArc(prev[0], sites[(i+1)%o.Sites], delayHash(o.Seed, i, 0, 0, 2, maxd), true)
	}
	return b.Build()
}
