package gen_test

import (
	"math/rand"
	"strings"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
)

func TestOscillatorFixture(t *testing.T) {
	g := gen.Oscillator()
	if g.NumEvents() != 8 || g.NumArcs() != 11 {
		t.Errorf("oscillator = %d events / %d arcs, want 8/11", g.NumEvents(), g.NumArcs())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMullerRingSizes(t *testing.T) {
	for _, n := range []int{3, 4, 5, 8, 16, 33} {
		g, err := gen.MullerRing(n)
		if err != nil {
			t.Fatalf("MullerRing(%d): %v", n, err)
		}
		if g.NumEvents() != 4*n {
			t.Errorf("ring-%d has %d events, want %d", n, g.NumEvents(), 4*n)
		}
		if g.NumArcs() != 6*n {
			t.Errorf("ring-%d has %d arcs, want %d", n, g.NumArcs(), 6*n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("ring-%d invalid: %v", n, err)
		}
	}
}

func TestMullerRingErrors(t *testing.T) {
	if _, err := gen.MullerRing(2); err == nil {
		t.Error("MullerRing(2) succeeded, want error")
	}
	if _, err := gen.MullerRingOpts(gen.RingOptions{Stages: 5}); err == nil {
		t.Error("ring without tokens succeeded, want error")
	}
	if _, err := gen.MullerRingOpts(gen.RingOptions{Stages: 5, InitialHigh: []int{1, 2, 3, 4, 5}}); err == nil {
		t.Error("ring without bubbles succeeded, want error")
	}
	if _, err := gen.MullerRingOpts(gen.RingOptions{Stages: 5, InitialHigh: []int{9}}); err == nil {
		t.Error("out-of-range stage succeeded, want error")
	}
	if _, err := gen.MullerRingOpts(gen.RingOptions{Stages: 5, InitialHigh: []int{5}, CDelay: -1}); err == nil {
		t.Error("negative delay succeeded, want error")
	}
}

func TestStackSizes(t *testing.T) {
	for _, n := range []int{1, 4, 31} {
		g, err := gen.Stack(n)
		if err != nil {
			t.Fatalf("Stack(%d): %v", n, err)
		}
		if got, want := g.NumEvents(), 2*n+4; got != want {
			t.Errorf("stack-%d events = %d, want %d", n, got, want)
		}
		if got, want := g.NumArcs(), 4*n+4; got != want {
			t.Errorf("stack-%d arcs = %d, want %d", n, got, want)
		}
	}
	if _, err := gen.Stack(0); err == nil {
		t.Error("Stack(0) succeeded, want error")
	}
	if _, err := gen.StackOpts(gen.StackOptions{Cells: 3, ShiftDelay: -1}); err == nil {
		t.Error("negative shift delay succeeded, want error")
	}
}

func TestMullerPipeline(t *testing.T) {
	g, err := gen.MullerPipeline(4, 2, 1, 1)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("pipeline invalid: %v", err)
	}
	if _, err := gen.MullerPipeline(1, 1, 1, 1); err == nil {
		t.Error("1-stage pipeline succeeded, want error")
	}
	if _, err := gen.MullerPipeline(4, 9, 1, 1); err == nil {
		t.Error("over-tokened pipeline succeeded, want error")
	}
}

func TestRandomLiveProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(40)
		b := 1 + rng.Intn(n)
		extra := rng.Intn(3 * n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{Events: n, Border: b, ExtraArcs: extra})
		if err != nil {
			// Chord placement can fail for extreme parameters; that is
			// a documented, explicit error, not a bug.
			if !strings.Contains(err.Error(), "chord") {
				t.Fatalf("trial %d: %v", trial, err)
			}
			continue
		}
		if g.NumEvents() != n {
			t.Errorf("trial %d: events = %d, want %d", trial, g.NumEvents(), n)
		}
		if g.NumArcs() != n+extra {
			t.Errorf("trial %d: arcs = %d, want %d", trial, g.NumArcs(), n+extra)
		}
		if got := len(g.BorderEvents()); got != b {
			t.Errorf("trial %d: border = %d, want %d", trial, got, b)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("trial %d: invalid graph: %v", trial, err)
		}
		// The token game must progress (live graph).
		m := sg.NewMarking(g)
		if _, ok := m.RunPeriods(2, 100*n); !ok {
			t.Errorf("trial %d: token game stalled on a supposedly live graph", trial)
		}
	}
}

func TestRandomLiveErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := gen.RandomLive(rng, gen.RandomOptions{Events: 1, Border: 1}); err == nil {
		t.Error("Events=1 succeeded, want error")
	}
	if _, err := gen.RandomLive(rng, gen.RandomOptions{Events: 5, Border: 9}); err == nil {
		t.Error("Border>Events succeeded, want error")
	}
	if _, err := gen.RandomLive(rng, gen.RandomOptions{Events: 5, Border: 0}); err == nil {
		t.Error("Border=0 succeeded, want error")
	}
	if _, err := gen.RandomLive(rng, gen.RandomOptions{Events: 5, Border: 1, MaxDelay: -2}); err == nil {
		t.Error("negative MaxDelay succeeded, want error")
	}
}

func TestOscillatorCircuitFixture(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	if c.NumGates() != 4 {
		t.Errorf("gates = %d, want 4", c.NumGates())
	}
	if len(script) != 1 {
		t.Errorf("script = %v, want one event", script)
	}
}

func TestMullerPipelineCircuit(t *testing.T) {
	c, err := gen.MullerPipelineCircuit(4, 2, 1, 1)
	if err != nil {
		t.Fatalf("MullerPipelineCircuit: %v", err)
	}
	if c.NumGates() != 10 { // 5 stages x (C + INV)
		t.Errorf("gates = %d, want 10", c.NumGates())
	}
	if _, err := gen.MullerPipelineCircuit(1, 1, 1, 1); err == nil {
		t.Error("1-stage pipeline circuit succeeded, want error")
	}
	if _, err := gen.MullerPipelineCircuit(4, 0, 1, 1); err == nil {
		t.Error("0-token pipeline circuit succeeded, want error")
	}
}
