// Package gen constructs the workloads of the paper's evaluation section
// and parameterised families around them: the C-element oscillator of
// Fig. 1, Muller rings and pipelines (Fig. 5, §VIII.D), an asynchronous
// stack control graph with constant response time (§VIII.B), and random
// live Timed Signal Graphs with controlled size and border-set size for
// the complexity experiments (§VII).
package gen

import (
	"fmt"

	"tsg/internal/sg"
)

// Oscillator returns the Timed Signal Graph of Fig. 1b / Fig. 2c: the
// C-element oscillator with gate delays as printed in the paper. Its
// cycle time is 10 with the critical cycle a+ → c+ → a- → c- (§II,
// Example 6), border set {a+, b+} (Example 7) and minimum cut sets {c+}
// and {c-}.
func Oscillator() *sg.Graph {
	g, err := sg.NewBuilder("oscillator").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Events("a+", "a-", "b+", "b-", "c+", "c-").
		Arc("e-", "a+", 2, sg.Once()).
		Arc("e-", "f-", 3).
		Arc("f-", "b+", 1, sg.Once()).
		Arc("a+", "c+", 3).
		Arc("b+", "c+", 2).
		Arc("c+", "a-", 2).
		Arc("c+", "b-", 1).
		Arc("a-", "c-", 3).
		Arc("b-", "c-", 2).
		Arc("c-", "a+", 2, sg.Marked()).
		Arc("c-", "b+", 1, sg.Marked()).
		Build()
	if err != nil {
		panic(fmt.Sprintf("gen: oscillator fixture invalid: %v", err)) // unreachable: fixed fixture
	}
	return g
}
