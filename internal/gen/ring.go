package gen

import (
	"fmt"

	"tsg/internal/sg"
)

// RingOptions parameterises a Muller ring (§VIII.D, Fig. 5): n C-elements
// o_1..o_n closed into a ring, where stage k computes
//
//	o_k = C(o_{k-1}, i_k),   i_k = INV(o_{k+1})   (indices mod n).
//
// A stage whose output is initially high holds a "data token".
type RingOptions struct {
	// Stages is the number of C-elements (>= 3).
	Stages int
	// InitialHigh lists the 1-based stages whose outputs start at 1.
	// The paper's five-element ring initialises stage 5 high.
	InitialHigh []int
	// CDelay and InvDelay are the C-element and inverter delays; the
	// paper uses 1 for both. Zero values default to 1.
	CDelay, InvDelay float64
}

// MullerRing builds the Signal Graph of the Muller ring of §VIII.D with
// the paper's initialisation (one data token in the last stage) and unit
// delays. For five stages the paper reports the border set
// {o1+, o2+, o3+, o5-} (a↑ b↑ c↑ e↓) and cycle time 20/3.
func MullerRing(stages int) (*sg.Graph, error) {
	return MullerRingOpts(RingOptions{Stages: stages, InitialHigh: []int{stages}})
}

// MullerRingOpts builds a Muller ring Signal Graph with full control over
// initialisation and delays.
//
// The graph is derived from the circuit structure: each gate input
// contributes the two causal arcs for the output's rising and falling
// transitions, and an arc u→v is initially marked iff the source signal's
// initial value already equals the value u establishes AND v is the
// target signal's first transition — i.e. v's first occurrence consumes
// the initial state rather than a fresh transition of u. This is the
// same marking the state-space extractor derives from the execution.
func MullerRingOpts(opts RingOptions) (*sg.Graph, error) {
	n := opts.Stages
	if n < 3 {
		return nil, fmt.Errorf("gen: Muller ring needs >= 3 stages, got %d", n)
	}
	cd, id := opts.CDelay, opts.InvDelay
	if cd == 0 {
		cd = 1
	}
	if id == 0 {
		id = 1
	}
	if cd < 0 || id < 0 {
		return nil, fmt.Errorf("gen: negative delays (C=%g, INV=%g)", cd, id)
	}
	high := make([]bool, n+1) // 1-based stages
	for _, s := range opts.InitialHigh {
		if s < 1 || s > n {
			return nil, fmt.Errorf("gen: initial-high stage %d out of range 1..%d", s, n)
		}
		high[s] = true
	}
	anyHigh, anyLow := false, false
	for s := 1; s <= n; s++ {
		if high[s] {
			anyHigh = true
		} else {
			anyLow = true
		}
	}
	if !anyHigh || !anyLow {
		return nil, fmt.Errorf("gen: ring needs at least one token and one bubble (got all-%v)", anyHigh)
	}

	// Signal names: o1..on and i1..in; initial values.
	init := map[string]bool{}
	for k := 1; k <= n; k++ {
		init[o(k)] = high[k]
		init[i(k)] = !high[mod1(k+1, n)] // i_k = INV(o_{k+1})
	}

	b := sg.NewBuilder(fmt.Sprintf("muller-ring-%d", n))
	for k := 1; k <= n; k++ {
		b.Events(o(k)+"+", o(k)+"-", i(k)+"+", i(k)+"-")
	}
	// arc adds u -> v with the marking rule from the doc comment.
	arc := func(u, v string, delay float64) {
		ux, upost := splitTrans(u)
		vx, vdir := splitTrans(v)
		firstDir := "+"
		if init[vx] {
			firstDir = "-"
		}
		if init[ux] == (upost == "+") && vdir == firstDir {
			b.Arc(u, v, delay, sg.Marked())
		} else {
			b.Arc(u, v, delay)
		}
	}
	for k := 1; k <= n; k++ {
		prev := mod1(k-1, n)
		next := mod1(k+1, n)
		// C-element o_k inputs: o_{prev}, i_k.
		arc(o(prev)+"+", o(k)+"+", cd)
		arc(i(k)+"+", o(k)+"+", cd)
		arc(o(prev)+"-", o(k)+"-", cd)
		arc(i(k)+"-", o(k)+"-", cd)
		// Inverter i_k input: o_{next}.
		arc(o(next)+"+", i(k)+"-", id)
		arc(o(next)+"-", i(k)+"+", id)
	}
	return b.Build()
}

func o(k int) string { return fmt.Sprintf("o%d", k) }
func i(k int) string { return fmt.Sprintf("i%d", k) }

func mod1(k, n int) int { return (k-1+n)%n + 1 }

func splitTrans(name string) (signal, dir string) {
	return name[:len(name)-1], name[len(name)-1:]
}
