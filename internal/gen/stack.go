package gen

import (
	"fmt"

	"tsg/internal/sg"
)

// StackOptions parameterises the asynchronous-stack control graph.
type StackOptions struct {
	// Cells is the stack depth (>= 1). 31 cells give a graph with 66
	// events, matching the size the paper reports for its stack
	// benchmark (§VIII.B).
	Cells int
	// HandshakeDelay is the delay of the four top-interface transitions
	// (default 1).
	HandshakeDelay float64
	// ShiftDelay is the per-cell shift delay (default 1).
	ShiftDelay float64
}

// Stack models the control behaviour of an asynchronous stack with
// constant response time (the structure analysed in §VIII.B; the original
// gate-level design from Kishinevsky et al. [9] is not publicly
// available, so this is a synthetic control graph with the same defining
// property — see DESIGN.md).
//
// The top interface runs a four-phase handshake r+ → a+ → r- → a-; each
// push ripples a shift down the cells concurrently with the
// acknowledgement. Cell k starts its shift (sk+) after the previous cell
// and finishes (sk-) once the cell below has accepted; completion
// dependencies carry a token so that depth adds concurrency, not latency:
// the cycle time stays at the local handshake period regardless of the
// number of cells.
//
// With 31 cells (66 events) the paper's stack had 112 arcs; this model
// has 4·cells+4 = 128. The shape matches: events scale as 2·cells+4.
func Stack(cells int) (*sg.Graph, error) {
	return StackOpts(StackOptions{Cells: cells})
}

// StackOpts builds the stack control graph with explicit delays.
func StackOpts(opts StackOptions) (*sg.Graph, error) {
	n := opts.Cells
	if n < 1 {
		return nil, fmt.Errorf("gen: stack needs >= 1 cell, got %d", n)
	}
	hd, sd := opts.HandshakeDelay, opts.ShiftDelay
	if hd == 0 {
		hd = 1
	}
	if sd == 0 {
		sd = 1
	}
	if hd < 0 || sd < 0 {
		return nil, fmt.Errorf("gen: negative delays (handshake=%g, shift=%g)", hd, sd)
	}
	b := sg.NewBuilder(fmt.Sprintf("stack-%d", n))
	b.Events("r+", "a+", "r-", "a-")
	for k := 1; k <= n; k++ {
		b.Events(s(k)+"+", s(k)+"-")
	}
	// Top handshake: the environment raises the next request once the
	// previous acknowledgement has fallen (marked: a request is pending
	// initially).
	b.Arc("r+", "a+", hd).
		Arc("a+", "r-", hd).
		Arc("r-", "a-", hd).
		Arc("a-", "r+", hd, sg.Marked())
	// The acknowledgement also waits for the top cell having finished
	// its previous shift (marked: cell 1 starts empty and ready).
	b.Arc(s(1)+"-", "a+", sd, sg.Marked())
	// A push starts the shift ripple.
	b.Arc("a+", s(1)+"+", sd)
	for k := 1; k <= n; k++ {
		// Cell k is ready for the next shift once the current one is
		// done (marked: all cells idle initially).
		b.Arc(s(k)+"-", s(k)+"+", sd, sg.Marked())
		if k < n {
			// The shift ripples downward ...
			b.Arc(s(k)+"+", s(k+1)+"+", sd)
			// ... and cell k completes once cell k+1 has accepted the
			// previous item (marked: the cell below starts empty).
			b.Arc(s(k+1)+"-", s(k)+"-", sd, sg.Marked())
		}
		// Local shift work.
		b.Arc(s(k)+"+", s(k)+"-", sd)
	}
	return b.Build()
}

func s(k int) string { return fmt.Sprintf("s%d", k) }
