package gen

import (
	"fmt"

	"tsg/internal/dist"
	"tsg/internal/sg"
)

// Jittered variants of the workloads: every generator in this package
// produces fixed-delay graphs; the helpers below lift them into the
// statistical subsystem by attaching a delay model (internal/dist) with
// controlled uncertainty. They are the workload side of the Monte-Carlo
// experiments (exp MCSTAT, BenchmarkMC*): the graphs stay identical, so
// deterministic and distributional results are directly comparable.

// nominalDelays extracts the per-arc delay vector of a graph.
func nominalDelays(g *sg.Graph) []float64 {
	out := make([]float64, g.NumArcs())
	for i := range out {
		out[i] = g.Arc(i).Delay
	}
	return out
}

// PointModel returns the deterministic model of the graph: Monte-Carlo
// over it reproduces the fixed-delay analysis exactly (the differential
// pin of the statistical subsystem).
func PointModel(g *sg.Graph) (*dist.Model, error) {
	return dist.NewModel(nominalDelays(g))
}

// UniformJitter returns the graph's delays jittered uniformly by ±frac:
// arc i ~ uniform((1−frac)·d_i, (1+frac)·d_i); zero-delay arcs stay
// points. The supports match cycletime.Jitter(frac), so AnalyzeBounds
// brackets every sampled λ.
func UniformJitter(g *sg.Graph, frac float64) (*dist.Model, error) {
	return dist.JitterUniform(nominalDelays(g), frac)
}

// NormalJitter is UniformJitter with truncated-normal mass concentrated
// at the nominal delays, on the same ±frac supports.
func NormalJitter(g *sg.Graph, frac float64) (*dist.Model, error) {
	return dist.JitterNormal(nominalDelays(g), frac)
}

// CorrelatedJitter returns UniformJitter with the jittered arcs tied
// into the given number of correlation groups round-robin by arc index,
// modelling common process variation across arc families (groups <= 1
// puts every jittered arc into one group: fully correlated delays).
func CorrelatedJitter(g *sg.Graph, frac float64, groups int) (*dist.Model, error) {
	m, err := UniformJitter(g, frac)
	if err != nil {
		return nil, err
	}
	if groups < 1 {
		groups = 1
	}
	k := 0
	for i := 0; i < m.NumArcs(); i++ {
		if m.Dist(i).IsPoint() {
			continue
		}
		if err := m.SetGroup(i, k%groups); err != nil {
			return nil, fmt.Errorf("gen: correlated jitter: %w", err)
		}
		k++
	}
	return m, nil
}
