package extract_test

import (
	"fmt"
	"testing"

	"tsg/internal/circuit"
	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/extract"
	"tsg/internal/gen"
)

// buildInverterRing builds the classic three-inverter ring oscillator:
// x1 = INV(x3), x2 = INV(x1), x3 = INV(x2), initial {0, 1, 0} so that
// only x1 is excited. It exercises the simulator's immediate
// re-excitation path (every gate fires forever) and extraction from a
// purely combinational (non-C-element) circuit.
func buildInverterRing(t testing.TB) *circuit.Circuit {
	t.Helper()
	c, err := circuit.NewBuilder("inv-ring-3").
		Gate(circuit.Inv, "x1", []string{"x3"}, 1).
		Gate(circuit.Inv, "x2", []string{"x1"}, 1).
		Gate(circuit.Inv, "x3", []string{"x2"}, 1).
		Init("x2", circuit.High).
		Build()
	if err != nil {
		t.Fatalf("inverter ring: %v", err)
	}
	return c
}

func TestInverterRingTimedSim(t *testing.T) {
	c := buildInverterRing(t)
	res, err := circuit.Simulate(c, circuit.SimOptions{MaxTransitions: 30})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Hazards) != 0 {
		t.Fatalf("hazards: %v", res.Hazards)
	}
	// x1 toggles at 0, 3, 6, 9, ... (ring latency 3, period 6).
	times := res.Times(c.MustSignal("x1"))
	for i, tm := range times {
		if want := float64(3 * i); tm != want {
			t.Errorf("x1 transition %d at t=%g, want %g", i, tm, want)
		}
	}
	if len(times) < 8 {
		t.Fatalf("x1 only transitioned %d times", len(times))
	}
}

func TestInverterRingExtraction(t *testing.T) {
	c := buildInverterRing(t)
	g, err := extract.Extract(c, extract.Options{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	// Six events (both transitions of three signals) in a single cycle
	// with one token: λ = 6.
	if g.NumEvents() != 6 || g.NumArcs() != 6 {
		t.Fatalf("extracted %d events / %d arcs, want 6/6: %v", g.NumEvents(), g.NumArcs(), g)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.CycleTime.Float() != 6 {
		t.Errorf("λ = %v, want 6 (three-inverter ring period)", res.CycleTime)
	}
	oracle, _, err := cycles.MaxRatio(g, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if !res.CycleTime.Equal(oracle) {
		t.Errorf("algorithm λ = %v, oracle λ = %v", res.CycleTime, oracle)
	}
	// Semi-modularity over all interleavings (8 level states).
	if _, err := extract.Verify(c, extract.VerifyOptions{}); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

// TestCompletionTree checks the completion-tree oscillator family:
// λ = 2·(depth·cd + id), validated against extraction + analysis and
// the enumeration oracle.
func TestCompletionTree(t *testing.T) {
	for _, tc := range []struct {
		depth  int
		cd, id float64
		want   float64
	}{
		{1, 1, 1, 4},
		{2, 1, 1, 6},
		{3, 1, 1, 8},
		{2, 3, 2, 16}, // 2*(2*3 + 2)
	} {
		name := fmt.Sprintf("depth=%d cd=%g id=%g", tc.depth, tc.cd, tc.id)
		c, err := gen.CompletionTreeCircuit(tc.depth, tc.cd, tc.id)
		if err != nil {
			t.Fatalf("%s: CompletionTreeCircuit: %v", name, err)
		}
		g, err := extract.Extract(c, extract.Options{})
		if err != nil {
			t.Fatalf("%s: Extract: %v", name, err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("%s: Analyze: %v", name, err)
		}
		if got := res.CycleTime.Float(); got != tc.want {
			t.Errorf("%s: λ = %v, want %g", name, res.CycleTime, tc.want)
		}
		if tc.depth <= 2 {
			oracle, _, err := cycles.MaxRatio(g, 0)
			if err != nil {
				t.Fatalf("%s: oracle: %v", name, err)
			}
			if !res.CycleTime.Equal(oracle) {
				t.Errorf("%s: algorithm λ = %v, oracle λ = %v", name, res.CycleTime, oracle)
			}
		}
		// The timed circuit simulation must agree with the graph.
		sim, err := circuit.Simulate(c, circuit.SimOptions{MaxTransitions: 200})
		if err != nil {
			t.Fatalf("%s: Simulate: %v", name, err)
		}
		if len(sim.Hazards) != 0 {
			t.Fatalf("%s: hazards: %v", name, sim.Hazards)
		}
		root := sim.Times(c.MustSignal("root"))
		if len(root) < 4 {
			t.Fatalf("%s: root transitioned %d times", name, len(root))
		}
		for i := 2; i < len(root); i++ {
			if d := root[i] - root[i-2]; d != tc.want {
				t.Errorf("%s: root period = %g, want %g", name, d, tc.want)
			}
		}
	}
}

func TestCompletionTreeErrors(t *testing.T) {
	if _, err := gen.CompletionTreeCircuit(0, 1, 1); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := gen.CompletionTreeCircuit(11, 1, 1); err == nil {
		t.Error("depth 11 accepted")
	}
	if _, err := gen.CompletionTreeCircuit(2, -1, 1); err == nil {
		t.Error("negative delay accepted")
	}
}
