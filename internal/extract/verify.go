package extract

import (
	"fmt"

	"tsg/internal/circuit"
)

// VerifyOptions bounds the exhaustive semi-modularity check.
type VerifyOptions struct {
	// MaxStates caps the explored state count (default 1 << 16). The
	// state space is bounded by 2^signals × script positions.
	MaxStates int
	// Inputs scripts the primary-input transitions, as in Extract.
	Inputs []circuit.InputEvent
}

// Verify exhaustively explores the circuit's reachable state space under
// interleaving semantics and checks semi-modularity: an excited gate must
// stay excited under any other transition. This is the verification half
// of TRASPEC's job ([9]: "verifies that the circuit is distributive...
// otherwise it finds the states where a violation occurs"); unlike the
// canonical-trace check in Extract it covers every execution, at
// exponential cost, so it is intended for small circuits and for tests.
//
// It returns the number of distinct states explored, and an error of
// type *SemimodularityError describing the first violation, if any.
func Verify(c *circuit.Circuit, opts VerifyOptions) (states int, err error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 1 << 16
	}
	if c.NumSignals() > 62 {
		return 0, fmt.Errorf("extract: Verify supports at most 62 signals, got %d", c.NumSignals())
	}
	script := map[circuit.SignalID][]circuit.Level{}
	for _, ev := range opts.Inputs {
		id, ok := c.SignalByName(ev.Signal)
		if !ok {
			return 0, fmt.Errorf("extract: scripted input %q not found", ev.Signal)
		}
		if !c.Signal(id).IsInput {
			return 0, fmt.Errorf("extract: scripted signal %q is not a primary input", ev.Signal)
		}
		script[id] = append(script[id], ev.Level)
	}

	type state struct {
		levels uint64
		// progress through each input's script, packed 4 bits per input
		inputPos uint64
	}
	encode := func(levels []circuit.Level, pos map[circuit.SignalID]int) state {
		var st state
		for i, l := range levels {
			if l == circuit.High {
				st.levels |= 1 << uint(i)
			}
		}
		shift := 0
		for _, id := range c.Inputs() {
			st.inputPos |= uint64(pos[id]) << uint(shift)
			shift += 4
		}
		return st
	}

	levels0 := c.InitialLevels()
	pos0 := map[circuit.SignalID]int{}
	type node struct {
		levels []circuit.Level
		pos    map[circuit.SignalID]int
	}
	start := node{levels: levels0, pos: pos0}
	seen := map[state]bool{encode(levels0, pos0): true}
	queue := []node{start}

	enabled := func(n node) []circuit.SignalID {
		var out []circuit.SignalID
		for _, id := range c.Inputs() {
			if n.pos[id] < len(script[id]) && script[id][n.pos[id]] != n.levels[id] {
				out = append(out, id)
			}
		}
		for gi := 0; gi < c.NumGates(); gi++ {
			if c.Excited(gi, n.levels) {
				out = append(out, c.Gate(gi).Out)
			}
		}
		return out
	}
	fire := func(n node, s circuit.SignalID) node {
		nl := append([]circuit.Level(nil), n.levels...)
		np := map[circuit.SignalID]int{}
		for k, v := range n.pos {
			np[k] = v
		}
		if c.Signal(s).IsInput {
			nl[s] = script[s][np[s]]
			np[s]++
		} else {
			nl[s] = nl[s].Toggle()
		}
		return node{levels: nl, pos: np}
	}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		en := enabled(n)
		for _, s := range en {
			next := fire(n, s)
			// Semi-modularity: every other enabled gate stays excited.
			for _, other := range en {
				if other == s || c.Signal(other).IsInput {
					continue
				}
				gi := c.Signal(other).Driver
				if !c.Excited(gi, next.levels) {
					return len(seen), &SemimodularityError{
						Circuit: c.Name(),
						Gate:    c.Gate(gi).Name,
						By:      c.Signal(s).Name,
						Step:    len(seen),
					}
				}
			}
			st := encode(next.levels, next.pos)
			if !seen[st] {
				if len(seen) >= maxStates {
					return len(seen), fmt.Errorf("extract: Verify exceeded %d states on circuit %q", maxStates, c.Name())
				}
				seen[st] = true
				queue = append(queue, next)
			}
		}
	}
	return len(seen), nil
}
