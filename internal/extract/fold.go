package extract

import (
	"fmt"
	"sort"

	"tsg/internal/circuit"
	"tsg/internal/sg"
)

// FoldError reports that the canonical trace does not fold into a
// well-formed, initially-safe Timed Signal Graph: the causal pattern is
// aperiodic, an OR-cause is ambiguous (a distributivity violation), or a
// marking beyond one token would be required.
type FoldError struct {
	Circuit string
	Event   string
	Reason  string
}

func (e *FoldError) Error() string {
	return fmt.Sprintf("extract: circuit %q: event %s: %s", e.Circuit, e.Event, e.Reason)
}

// folder turns a canonical trace into a Timed Signal Graph.
type folder struct {
	c       *circuit.Circuit
	insts   []instance
	perSig  [][]instance // instances grouped by signal, in index order
	live    []bool
	liveMin int // instances required to classify a signal as repetitive
}

func newFolder(c *circuit.Circuit, insts []instance, liveMin int) (*folder, error) {
	f := &folder{c: c, insts: insts, liveMin: liveMin}
	f.perSig = make([][]instance, c.NumSignals())
	for _, in := range insts {
		f.perSig[in.signal] = append(f.perSig[in.signal], in)
	}
	f.live = make([]bool, c.NumSignals())
	for s := 0; s < c.NumSignals(); s++ {
		n := len(f.perSig[s])
		switch {
		case n >= liveMin:
			f.live[s] = true
		case n <= 2:
			// quiesced: at most one rise and one fall -> prefix events
		default:
			return nil, &FoldError{
				Circuit: c.Name(),
				Event:   c.Signal(circuit.SignalID(s)).Name,
				Reason: fmt.Sprintf("ambiguous liveness: %d transitions (quiesced signals have <= 2, repetitive ones >= %d); increase the transition budget",
					n, liveMin),
			}
		}
	}
	return f, nil
}

// eventName names the folded event of a transition.
func (f *folder) eventName(s circuit.SignalID, level circuit.Level) string {
	suffix := "-"
	if level == circuit.High {
		suffix = "+"
	}
	return f.c.Signal(s).Name + suffix
}

// foldedArc is an arc of the folded graph.
type foldedArc struct {
	from    string
	marking int
	delay   float64
	once    bool
}

// eventInfo accumulates a folded event and its arc set.
type eventInfo struct {
	name  string
	first int // position of first occurrence in the trace (ordering)
	live  bool
	arcs  map[string]foldedArc // keyed by from+marking
}

// fold assembles the Timed Signal Graph.
func (f *folder) fold() (*sg.Graph, error) {
	events := map[string]*eventInfo{}
	var order []string
	record := func(name string, pos int, live bool) *eventInfo {
		ev, ok := events[name]
		if !ok {
			ev = &eventInfo{name: name, first: pos, live: live, arcs: map[string]foldedArc{}}
			events[name] = ev
			order = append(order, name)
		}
		return ev
	}

	// Freshness bookkeeping: latest instance of each input consumed by
	// each signal's transitions.
	lastConsumed := make([][]int, f.c.NumSignals())
	for s := range lastConsumed {
		lastConsumed[s] = make([]int, f.c.NumSignals())
		for x := range lastConsumed[s] {
			lastConsumed[s][x] = -1
		}
	}

	// Walk the trace in order, attributing real (fresh) predecessors.
	pos := map[circuit.SignalID]int{} // trace position per signal for "first"
	for ti, in := range f.insts {
		if _, seen := pos[in.signal]; !seen {
			pos[in.signal] = ti
		}
		name := f.eventName(in.signal, in.level)
		if !f.live[in.signal] {
			if ev, dup := events[name]; dup && !ev.live {
				return nil, &FoldError{Circuit: f.c.Name(), Event: name,
					Reason: "quiesced signal transitions twice in the same direction; cannot name distinct prefix events"}
			}
		}
		ev := record(name, ti, f.live[in.signal])

		var real []pred
		for _, p := range in.preds {
			if p.instance < 0 {
				continue // initial level, no causal arc
			}
			if p.instance > lastConsumed[in.signal][p.signal] {
				real = append(real, p)
				lastConsumed[in.signal][p.signal] = p.instance
			}
		}
		if in.kind == circuit.SupportOr && len(real) > 1 {
			return nil, &FoldError{Circuit: f.c.Name(), Event: name,
				Reason: "ambiguous OR-causality (two fresh forcing inputs); the circuit is not distributive here"}
		}

		period := in.index / 2
		for _, p := range real {
			src := f.perSig[p.signal][p.instance]
			srcName := f.eventName(p.signal, src.level)
			var m int
			once := false
			if f.live[p.signal] {
				m = period - src.index/2
			} else {
				// Prefix cause from a quiesced signal: a disengageable
				// arc, valid only when it binds the first instantiation.
				once = f.live[in.signal]
				if f.live[in.signal] && period != 0 {
					return nil, &FoldError{Circuit: f.c.Name(), Event: name,
						Reason: fmt.Sprintf("prefix cause %s binds instantiation of period %d; would need a marked disengageable arc", srcName, period)}
				}
			}
			if m < 0 || m > 1 {
				return nil, &FoldError{Circuit: f.c.Name(), Event: name,
					Reason: fmt.Sprintf("arc from %s needs marking %d; only initially-safe graphs (marking 0/1) are supported", srcName, m)}
			}
			if f.live[in.signal] && !f.live[p.signal] && !once {
				once = true
			}
			key := fmt.Sprintf("%s/%d", srcName, m)
			arc := foldedArc{from: srcName, marking: m, delay: p.delay, once: once}
			if prev, dup := ev.arcs[key]; dup {
				if prev != arc {
					return nil, &FoldError{Circuit: f.c.Name(), Event: name,
						Reason: fmt.Sprintf("inconsistent folded arc from %s (delay %g vs %g)", srcName, prev.delay, arc.delay)}
				}
			} else {
				ev.arcs[key] = arc
			}
		}
	}

	// Consistency: re-walk the trace and check every instantiation's
	// real predecessors match the folded arc set (the quasi-periodicity
	// requirement of §III.B — aperiodic causality cannot be folded).
	if err := f.checkPeriodicity(events); err != nil {
		return nil, err
	}

	// Assemble the Signal Graph in first-occurrence order.
	sort.Slice(order, func(i, j int) bool { return events[order[i]].first < events[order[j]].first })
	b := sg.NewBuilder(f.c.Name())
	for _, name := range order {
		if events[name].live {
			b.Event(name)
		} else {
			b.Event(name, sg.NonRepetitive())
		}
	}
	for _, name := range order {
		ev := events[name]
		keys := make([]string, 0, len(ev.arcs))
		for k := range ev.arcs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := ev.arcs[k]
			var opts []sg.ArcOption
			if a.marking == 1 {
				opts = append(opts, sg.Marked())
			}
			if a.once {
				opts = append(opts, sg.Once())
			}
			b.Arc(a.from, name, a.delay, opts...)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("extract: folded graph of circuit %q invalid: %w", f.c.Name(), err)
	}
	return g, nil
}

// checkPeriodicity verifies that every instantiation's fresh predecessor
// set equals the folded arc set filtered by marking vacuity: an arc with
// marking m binds instantiations of period >= m, a disengageable arc
// binds period 0 only.
func (f *folder) checkPeriodicity(events map[string]*eventInfo) error {
	lastConsumed := make([][]int, f.c.NumSignals())
	for s := range lastConsumed {
		lastConsumed[s] = make([]int, f.c.NumSignals())
		for x := range lastConsumed[s] {
			lastConsumed[s][x] = -1
		}
	}
	for _, in := range f.insts {
		name := f.eventName(in.signal, in.level)
		ev := events[name]
		got := map[string]bool{}
		for _, p := range in.preds {
			if p.instance < 0 || p.instance <= lastConsumed[in.signal][p.signal] {
				continue
			}
			lastConsumed[in.signal][p.signal] = p.instance
			src := f.perSig[p.signal][p.instance]
			srcName := f.eventName(p.signal, src.level)
			m := 0
			if f.live[p.signal] {
				m = in.index/2 - src.index/2
			}
			got[fmt.Sprintf("%s/%d", srcName, m)] = true
		}
		period := in.index / 2
		for key, arc := range ev.arcs {
			expected := false
			switch {
			case arc.once:
				expected = period == 0 || !ev.live
			default:
				expected = period >= arc.marking
			}
			if expected != got[key] {
				return &FoldError{Circuit: f.c.Name(), Event: name,
					Reason: fmt.Sprintf("aperiodic causality at instantiation %d: arc %s expected=%v observed=%v",
						in.index, key, expected, got[key])}
			}
			delete(got, key)
		}
		for key := range got {
			return &FoldError{Circuit: f.c.Name(), Event: name,
				Reason: fmt.Sprintf("aperiodic causality at instantiation %d: unexpected predecessor %s", in.index, key)}
		}
	}
	return nil
}
