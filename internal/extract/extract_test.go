package extract_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"tsg/internal/circuit"
	"tsg/internal/cycletime"
	"tsg/internal/extract"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/timesim"
)

// graphSignature renders a Signal Graph as a canonical multiset of event
// and arc descriptions, for structural comparison.
func graphSignature(g *sg.Graph) string {
	var lines []string
	for i := 0; i < g.NumEvents(); i++ {
		ev := g.Event(sg.EventID(i))
		lines = append(lines, fmt.Sprintf("event %s rep=%v", ev.Name, ev.Repetitive))
	}
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		lines = append(lines, fmt.Sprintf("arc %s->%s δ=%g m=%v once=%v",
			g.Event(a.From).Name, g.Event(a.To).Name, a.Delay, a.Marked, a.Once))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestExtractOscillator is the headline extraction test: the Fig. 1a
// circuit must extract to exactly the Fig. 1b Timed Signal Graph.
func TestExtractOscillator(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	got, err := extract.Extract(c, extract.Options{Inputs: script})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	want := gen.Oscillator()
	if gs, ws := graphSignature(got), graphSignature(want); gs != ws {
		t.Errorf("extracted graph differs from Fig. 1b:\n--- extracted ---\n%s\n--- paper ---\n%s", gs, ws)
	}
	res, err := cycletime.Analyze(got)
	if err != nil {
		t.Fatalf("Analyze(extracted): %v", err)
	}
	if res.CycleTime.Float() != 10 {
		t.Errorf("extracted oscillator cycle time = %v, want 10", res.CycleTime)
	}
}

// TestExtractMullerRing checks that the gate-level ring extracts to the
// same Signal Graph as the direct generator (Fig. 5), for several sizes
// and initialisations.
func TestExtractMullerRing(t *testing.T) {
	cases := []gen.RingOptions{
		{Stages: 3, InitialHigh: []int{3}},
		{Stages: 5, InitialHigh: []int{5}},
		{Stages: 7, InitialHigh: []int{7}},
		{Stages: 8, InitialHigh: []int{8, 4}},
	}
	for _, opts := range cases {
		name := fmt.Sprintf("stages=%d high=%v", opts.Stages, opts.InitialHigh)
		c, err := gen.MullerRingCircuit(opts)
		if err != nil {
			t.Fatalf("%s: MullerRingCircuit: %v", name, err)
		}
		got, err := extract.Extract(c, extract.Options{})
		if err != nil {
			t.Fatalf("%s: Extract: %v", name, err)
		}
		want, err := gen.MullerRingOpts(opts)
		if err != nil {
			t.Fatalf("%s: MullerRingOpts: %v", name, err)
		}
		if gs, ws := graphSignature(got), graphSignature(want); gs != ws {
			t.Errorf("%s: extracted ring differs from generator:\n--- extracted ---\n%s\n--- generator ---\n%s",
				name, gs, ws)
		}
	}
}

// TestExtractedRingCycleTime runs the paper's §VIII.D analysis on the
// extracted (not generated) graph: λ = 20/3.
func TestExtractedRingCycleTime(t *testing.T) {
	c, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		t.Fatalf("MullerRingCircuit: %v", err)
	}
	g, err := extract.Extract(c, extract.Options{})
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	r := res.CycleTime.Normalize()
	if r.Num != 20 || r.Den != 3 {
		t.Errorf("cycle time = %v, want 20/3 (§VIII.D)", res.CycleTime)
	}
}

// TestExtractionMatchesTimedSim cross-checks model against reality: the
// timing simulation of the extracted Signal Graph must reproduce the
// transition times of the timed circuit simulation, signal by signal.
func TestExtractionMatchesTimedSim(t *testing.T) {
	type workload struct {
		name   string
		c      *circuit.Circuit
		script []circuit.InputEvent
	}
	var loads []workload
	oc, os := gen.OscillatorCircuit()
	loads = append(loads, workload{"oscillator", oc, os})
	for _, opts := range []gen.RingOptions{
		{Stages: 5, InitialHigh: []int{5}},
		{Stages: 4, InitialHigh: []int{4}, CDelay: 3, InvDelay: 2},
	} {
		rc, err := gen.MullerRingCircuit(opts)
		if err != nil {
			t.Fatalf("MullerRingCircuit: %v", err)
		}
		loads = append(loads, workload{rc.Name(), rc, nil})
	}
	pc, err := gen.MullerPipelineCircuit(4, 2, 1, 1)
	if err != nil {
		t.Fatalf("MullerPipelineCircuit: %v", err)
	}
	loads = append(loads, workload{"pipeline-4-2", pc, nil})

	for _, w := range loads {
		t.Run(w.name, func(t *testing.T) {
			g, err := extract.Extract(w.c, extract.Options{Inputs: w.script})
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			const periods = 5
			tr, err := timesim.Run(g, timesim.Options{Periods: periods})
			if err != nil {
				t.Fatalf("timesim.Run: %v", err)
			}
			sim, err := circuit.Simulate(w.c, circuit.SimOptions{
				Inputs:         w.script,
				MaxTransitions: 4 * periods * w.c.NumSignals(),
			})
			if err != nil {
				t.Fatalf("Simulate: %v", err)
			}
			if len(sim.Hazards) > 0 {
				t.Fatalf("hazards: %v", sim.Hazards)
			}
			for sid := 0; sid < w.c.NumSignals(); sid++ {
				sigName := w.c.Signal(circuit.SignalID(sid)).Name
				times := sim.Times(circuit.SignalID(sid))
				// Transition k of the signal = instantiation k/2 of the
				// folded event for that direction.
				for k, tc := range times {
					var evName string
					if lvl := levelAfter(w.c, circuit.SignalID(sid), k); lvl == circuit.High {
						evName = sigName + "+"
					} else {
						evName = sigName + "-"
					}
					id, ok := g.EventByName(evName)
					if !ok {
						t.Fatalf("extracted graph lacks event %s", evName)
					}
					tg, ok := tr.Time(id, k/2)
					if !ok {
						continue // beyond the simulated periods
					}
					if tg != tc {
						t.Errorf("signal %s transition %d: circuit t=%g, graph t=%g",
							sigName, k, tc, tg)
					}
				}
			}
		})
	}
}

func levelAfter(c *circuit.Circuit, s circuit.SignalID, k int) circuit.Level {
	lvl := c.Signal(s).Initial
	for i := 0; i <= k; i++ {
		lvl = lvl.Toggle()
	}
	return lvl
}

// TestSemimodularityViolation: an environment that withdraws an input
// while a gate is excited must be rejected by both the canonical trace
// and the exhaustive verifier.
func TestSemimodularityViolation(t *testing.T) {
	c, err := circuit.NewBuilder("glitchy").
		Input("p", circuit.Low).
		Gate(circuit.Buf, "y", []string{"p"}, 1).
		Gate(circuit.Inv, "z", []string{"y"}, 1).
		Init("z", circuit.High).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	script := []circuit.InputEvent{
		{Signal: "p", Time: 0, Level: circuit.High},
		{Signal: "p", Time: 1, Level: circuit.Low},
	}
	var smErr *extract.SemimodularityError
	if _, err := extract.Extract(c, extract.Options{Inputs: script}); !errors.As(err, &smErr) {
		t.Errorf("Extract error = %v, want *SemimodularityError", err)
	} else if smErr.Gate != "y" || smErr.By != "p" {
		t.Errorf("violation = %+v, want gate y disabled by p", smErr)
	}
	if _, err := extract.Verify(c, extract.VerifyOptions{Inputs: script}); !errors.As(err, &smErr) {
		t.Errorf("Verify error = %v, want *SemimodularityError", err)
	}
}

// TestVerifyCleanCircuits: the paper's circuits are distributive, so the
// exhaustive check must pass and visit a modest state count.
func TestVerifyCleanCircuits(t *testing.T) {
	oc, script := gen.OscillatorCircuit()
	states, err := extract.Verify(oc, extract.VerifyOptions{Inputs: script})
	if err != nil {
		t.Errorf("Verify(oscillator): %v", err)
	}
	if states < 4 || states > 64 {
		t.Errorf("oscillator explored %d states, expected a handful (5 signals)", states)
	}
	rc, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		t.Fatalf("MullerRingCircuit: %v", err)
	}
	if _, err := extract.Verify(rc, extract.VerifyOptions{}); err != nil {
		t.Errorf("Verify(ring5): %v", err)
	}
}

func TestVerifyStateCap(t *testing.T) {
	rc, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		t.Fatalf("MullerRingCircuit: %v", err)
	}
	if _, err := extract.Verify(rc, extract.VerifyOptions{MaxStates: 3}); err == nil {
		t.Error("Verify with MaxStates=3 succeeded, want cap error")
	}
}

func TestExtractOptionErrors(t *testing.T) {
	c, script := gen.OscillatorCircuit()
	if _, err := extract.Extract(c, extract.Options{MaxTransitionsPerSignal: 4}); err == nil {
		t.Error("MaxTransitionsPerSignal=4 accepted")
	}
	if _, err := extract.Extract(c, extract.Options{LiveThreshold: 1, Inputs: script}); err == nil {
		t.Error("LiveThreshold=1 accepted")
	}
	if _, err := extract.Extract(c, extract.Options{
		Inputs: []circuit.InputEvent{{Signal: "zz", Level: circuit.Low}},
	}); err == nil {
		t.Error("unknown scripted input accepted")
	}
	// Quiescent circuit without input script: nothing to extract.
	if _, err := extract.Extract(c, extract.Options{}); err == nil {
		t.Error("quiescent circuit extraction succeeded")
	}
}
