// Package extract derives a Timed Signal Graph from a gate-level circuit
// and an initial state: the front-end step of §VIII.B, performed in the
// paper by the TRASPEC tool of the FORCAGE CAD system [9]. TRASPEC is not
// publicly available; this package substitutes a trace-based extractor
// (this file and fold.go) plus an exhaustive semi-modularity verifier for
// small circuits (verify.go). See DESIGN.md for the substitution
// argument; the tests validate the extractor by reproducing the paper's
// oscillator and Muller-ring graphs exactly and by cross-checking the
// extracted graph's timing simulation against timed circuit simulation.
package extract

import (
	"fmt"

	"tsg/internal/circuit"
)

// pred is a causal predecessor of an event instance: the transition
// instance of an input signal whose level change established part of the
// excitation, plus the pin delay of that input.
type pred struct {
	signal   circuit.SignalID
	instance int // transition index on signal, -1 when the initial level suffices
	delay    float64
}

// instance is one transition occurrence in the canonical trace.
type instance struct {
	signal circuit.SignalID
	index  int // occurrence count on the signal
	level  circuit.Level
	kind   circuit.SupportKind
	preds  []pred
}

// SemimodularityError reports a speed-independence violation: an excited
// gate was disabled by another transition before it could fire (§VIII.A:
// distributive circuits, a subclass of semi-modular ones, never do this).
type SemimodularityError struct {
	Circuit string
	Gate    string // gate whose excitation was withdrawn
	By      string // signal whose transition withdrew it
	Step    int    // position in the canonical trace
}

func (e *SemimodularityError) Error() string {
	return fmt.Sprintf("extract: circuit %q is not semi-modular: gate %q disabled by transition of %q at trace step %d",
		e.Circuit, e.Gate, e.By, e.Step)
}

// trace runs the canonical one-transition-per-step execution of the
// circuit, recording causal predecessors at excitation onset and
// checking semi-modularity along the trace. It stops once every signal
// either quiesced or reached maxPerSignal transitions.
func trace(c *circuit.Circuit, inputs []circuit.InputEvent, maxPerSignal int) ([]instance, error) {
	levels := c.InitialLevels()
	counts := make([]int, c.NumSignals())

	// Validate and order the scripted input transitions.
	script := map[circuit.SignalID][]circuit.Level{}
	for _, ev := range inputs {
		id, ok := c.SignalByName(ev.Signal)
		if !ok {
			return nil, fmt.Errorf("extract: scripted input %q not found", ev.Signal)
		}
		if !c.Signal(id).IsInput {
			return nil, fmt.Errorf("extract: scripted signal %q is not a primary input", ev.Signal)
		}
		script[id] = append(script[id], ev.Level)
	}
	scriptPos := map[circuit.SignalID]int{}

	excited := make([]bool, c.NumGates())
	onset := make([][]pred, c.NumGates())
	kinds := make([]circuit.SupportKind, c.NumGates())

	// recordOnset captures the supporting input instances of gate gi's
	// fresh excitation.
	recordOnset := func(gi int) {
		g := c.Gate(gi)
		in := make([]circuit.Level, len(g.Ins))
		for i, s := range g.Ins {
			in[i] = levels[s]
		}
		target, _ := g.Type.Eval(in, levels[g.Out])
		kind, support := g.Type.Support(in, target)
		var ps []pred
		for _, pi := range support {
			s := g.Ins[pi]
			inst := counts[s] - 1 // -1 when the initial level suffices
			ps = append(ps, pred{signal: s, instance: inst, delay: g.Delays[pi]})
		}
		kinds[gi] = kind
		onset[gi] = ps
	}

	for gi := 0; gi < c.NumGates(); gi++ {
		if c.Excited(gi, levels) {
			excited[gi] = true
			recordOnset(gi)
		}
	}

	var out []instance
	maxSteps := maxPerSignal*c.NumSignals() + len(inputs) + 16
	for step := 0; step < maxSteps; step++ {
		// Pick the next transition: scripted inputs first (the
		// environment acts at once), then the lowest excited gate whose
		// output has headroom.
		fired := circuit.SignalID(-1)
		var firedGate = -1
		for _, id := range c.Inputs() {
			if scriptPos[id] < len(script[id]) {
				fired = id
				break
			}
		}
		if fired == -1 {
			for gi := 0; gi < c.NumGates(); gi++ {
				if excited[gi] && counts[c.Gate(gi).Out] < maxPerSignal {
					fired = c.Gate(gi).Out
					firedGate = gi
					break
				}
			}
		}
		if fired == -1 {
			break // quiescent or every live signal at the cap
		}

		inst := instance{signal: fired, index: counts[fired]}
		if firedGate >= 0 {
			inst.level = levels[fired].Toggle()
			inst.kind = kinds[firedGate]
			inst.preds = onset[firedGate]
		} else {
			lvl := script[fired][scriptPos[fired]]
			if lvl == levels[fired] {
				return nil, fmt.Errorf("extract: scripted input %s does not change level (already %v)",
					c.Signal(fired).Name, lvl)
			}
			inst.level = lvl
			scriptPos[fired]++
		}
		levels[fired] = inst.level
		counts[fired]++
		out = append(out, inst)

		// Update excitation; detect disabling (semi-modularity check
		// along the canonical trace — verify.go checks all traces for
		// small circuits).
		recheck := append([]int(nil), c.Fanout(fired)...)
		if firedGate >= 0 {
			recheck = append(recheck, firedGate)
		}
		for _, gi := range recheck {
			now := c.Excited(gi, levels)
			was := excited[gi]
			switch {
			case now && (!was || gi == firedGate):
				excited[gi] = true
				recordOnset(gi)
			case !now && was && gi != firedGate:
				return nil, &SemimodularityError{
					Circuit: c.Name(),
					Gate:    c.Gate(gi).Name,
					By:      c.Signal(fired).Name,
					Step:    len(out),
				}
			case !now:
				excited[gi] = false
			}
		}
	}
	return out, nil
}
