package extract

import (
	"fmt"

	"tsg/internal/circuit"
	"tsg/internal/sg"
)

// Options tunes the extraction.
type Options struct {
	// MaxTransitionsPerSignal bounds the canonical trace; repetitive
	// signals are sampled for this many transitions (default 12, i.e.
	// six periods — enough to separate the prefix and verify
	// periodicity).
	MaxTransitionsPerSignal int
	// LiveThreshold is the transition count from which a signal counts
	// as repetitive (default MaxTransitionsPerSignal/2). Signals with
	// at most 2 transitions are prefix (non-repetitive) events; counts
	// in between are reported as errors.
	LiveThreshold int
	// Inputs scripts the primary-input transitions (the environment's
	// one-shot actions, like e falling in Fig. 1).
	Inputs []circuit.InputEvent
}

// Extract derives the Timed Signal Graph of a circuit from its initial
// state, following the role of TRASPEC [9] in the paper's flow:
//
//  1. execute the circuit's speed-independent behaviour canonically,
//     one transition at a time, recording at each excitation onset which
//     input transition instances support it, and checking
//     semi-modularity along the trace (trace.go);
//  2. keep only fresh predecessors (those not consumed by the previous
//     instantiation of the same signal), which under distributivity
//     yields the unique AND-cause of every instantiation;
//  3. fold the instances into events (x+ / x-), derive each arc's
//     marking from the period offset between the instances it connects,
//     emit quiesced signals as non-repetitive prefix events with
//     disengageable arcs, and verify the pattern is quasi-periodic
//     (fold.go).
//
// Arc delays are the pin delays of the corresponding gate inputs
// (§VIII.A). The derived graph's timing simulation coincides with the
// timed circuit simulation, which the tests assert.
func Extract(c *circuit.Circuit, opts Options) (*sg.Graph, error) {
	maxPer := opts.MaxTransitionsPerSignal
	if maxPer == 0 {
		maxPer = 12
	}
	if maxPer < 6 {
		return nil, fmt.Errorf("extract: MaxTransitionsPerSignal must be >= 6 (three periods), got %d", maxPer)
	}
	liveMin := opts.LiveThreshold
	if liveMin == 0 {
		liveMin = maxPer / 2
	}
	if liveMin <= 2 {
		return nil, fmt.Errorf("extract: LiveThreshold must be > 2, got %d", liveMin)
	}
	insts, err := trace(c, opts.Inputs, maxPer)
	if err != nil {
		return nil, err
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("extract: circuit %q is quiescent; nothing to extract", c.Name())
	}
	f, err := newFolder(c, insts, liveMin)
	if err != nil {
		return nil, err
	}
	return f.fold()
}
