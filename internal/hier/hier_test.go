package hier_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/hier"
	"tsg/internal/netlist"
	"tsg/internal/sg"
)

// fixtures returns every graph the hierarchical analysis is tested on:
// the generator families, the .tsg testdata corpus, seeded random live
// graphs, and the huge-graph families at mid size.
func fixtures(t testing.TB) map[string]*sg.Graph {
	t.Helper()
	fx := map[string]*sg.Graph{"oscillator": gen.Oscillator()}
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	fx["ring5"] = ring
	for _, cells := range []int{3, 13} {
		st, err := gen.Stack(cells)
		if err != nil {
			t.Fatalf("Stack(%d): %v", cells, err)
		}
		fx[fmt.Sprintf("stack%d", cells)] = st
	}
	pipe, err := gen.MullerPipeline(8, 3, 2, 3)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	fx["pipeline8"] = pipe
	for _, name := range []string{"oscillator.tsg", "ring5.tsg", "stack31.tsg"} {
		f, err := os.Open(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		g, err := netlist.ReadTSG(f)
		f.Close()
		if err != nil {
			t.Fatalf("ReadTSG(%s): %v", name, err)
		}
		fx["tsg:"+name] = g
	}
	rng := rand.New(rand.NewSource(4242))
	for seed := 0; seed < 6; seed++ {
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: 80 + 50*seed, Border: 3 + seed, ExtraArcs: 150 + 20*seed, MaxDelay: 16,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		fx[fmt.Sprintf("random%d", seed)] = g
	}
	pg, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 6, Depth: 11, Width: 4, Seed: 31})
	if err != nil {
		t.Fatalf("PipeGrid: %v", err)
	}
	fx["pipegrid"] = pg
	mesh, err := gen.Mesh(gen.MeshOptions{W: 12, H: 5, Seed: 32})
	if err != nil {
		t.Fatalf("Mesh: %v", err)
	}
	fx["mesh"] = mesh
	tor, err := gen.TreeOfRings(gen.TreeRingOptions{Sites: 5, Levels: 4, Fanout: 2, Seed: 33})
	if err != nil {
		t.Fatalf("TreeOfRings: %v", err)
	}
	fx["treering"] = tor
	return fx
}

// TestHierMatchesFlat is the central differential test: hierarchical
// λ, border series, expanded critical cycles, and slack validity
// against the flat engine, on every fixture.
func TestHierMatchesFlat(t *testing.T) {
	for name, g := range fixtures(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			flat, err := cycletime.Analyze(g)
			if err != nil {
				t.Fatalf("flat Analyze: %v", err)
			}
			hres, err := hier.Analyze(g)
			if err != nil {
				t.Fatalf("hier Analyze: %v", err)
			}

			// λ: exact rationals, and for these integral-delay graphs the
			// float components must agree bit for bit.
			if !hres.CycleTime.Equal(flat.CycleTime) {
				t.Fatalf("λ: hier %v, flat %v", hres.CycleTime, flat.CycleTime)
			}
			hn, fn := hres.CycleTime.Normalize(), flat.CycleTime.Normalize()
			if hn.Num != fn.Num || hn.Den != fn.Den {
				t.Fatalf("λ bits: hier %v/%d, flat %v/%d", hn.Num, hn.Den, fn.Num, fn.Den)
			}

			// Border series: same events in the same order, identical
			// winners. (Fallback results are flat results verbatim.)
			if len(hres.Series) != len(flat.Series) {
				t.Fatalf("series count: hier %d, flat %d", len(hres.Series), len(flat.Series))
			}
			for i := range flat.Series {
				hs, fs := hres.Series[i], flat.Series[i]
				if hs.Event != fs.Event {
					t.Fatalf("series[%d] event: hier %d (%s), flat %d (%s)", i,
						hs.Event, g.Event(hs.Event).Name, fs.Event, g.Event(fs.Event).Name)
				}
				if !hs.Best.Equal(fs.Best) || hs.BestIndex != fs.BestIndex {
					t.Fatalf("series[%d] best: hier %v@%d, flat %v@%d", i,
						hs.Best, hs.BestIndex, fs.Best, fs.BestIndex)
				}
				if hs.OnCritical != fs.OnCritical {
					t.Fatalf("series[%d] OnCritical: hier %v, flat %v", i, hs.OnCritical, fs.OnCritical)
				}
			}

			// Expanded critical cycles: real simple flat cycles attaining λ.
			if len(hres.Critical) == 0 {
				t.Fatal("hier returned no critical cycle")
			}
			for ci := range hres.Critical {
				c := &hres.Critical[ci]
				if len(c.Arcs) != len(c.Events) {
					t.Fatalf("critical[%d]: %d arcs vs %d events", ci, len(c.Arcs), len(c.Events))
				}
				seen := make(map[sg.EventID]bool)
				length, period := 0.0, 0
				for k, ai := range c.Arcs {
					a := g.Arc(ai)
					from, to := c.Events[k], c.Events[(k+1)%len(c.Events)]
					if a.From != from || a.To != to {
						t.Fatalf("critical[%d] arc %d: flat arc %d is %d->%d, cycle says %d->%d",
							ci, k, ai, a.From, a.To, from, to)
					}
					if seen[from] {
						t.Fatalf("critical[%d]: event %s repeats — not simple", ci, g.Event(from).Name)
					}
					seen[from] = true
					length += a.Delay
					if a.Marked {
						period++
					}
				}
				if length != c.Length || period != c.Period {
					t.Fatalf("critical[%d]: recomputed %g/%d, stored %g/%d", ci, length, period, c.Length, c.Period)
				}
				if !c.Ratio().Equal(flat.CycleTime) {
					t.Fatalf("critical[%d] ratio %v != λ %v", ci, c.Ratio(), flat.CycleTime)
				}
			}
		})
	}
}

// TestHierSlacks checks the extended potential: every flat arc's slack
// is non-negative (the certificate is feasible) and every arc of every
// expanded critical cycle is tight.
func TestHierSlacks(t *testing.T) {
	for name, g := range fixtures(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			c, err := hier.Compress(g)
			if err != nil {
				t.Skipf("no compression gain: %v", err)
			}
			res, err := c.Analyze(hier.Options{})
			if err != nil {
				t.Fatalf("hier Analyze: %v", err)
			}
			slacks, err := c.Slacks(res.CycleTime)
			if err != nil {
				t.Fatalf("Slacks: %v", err)
			}
			byArc := make(map[int]float64, len(slacks))
			for _, s := range slacks {
				if s.Slack < -1e-6 {
					t.Fatalf("arc %d has negative slack %g — potential infeasible", s.Arc, s.Slack)
				}
				byArc[s.Arc] = s.Slack
			}
			for ci := range res.Critical {
				for _, ai := range res.Critical[ci].Arcs {
					s, ok := byArc[ai]
					if !ok {
						t.Fatalf("critical arc %d missing from slack report", ai)
					}
					if s != 0 {
						t.Fatalf("critical arc %d has slack %g, want tight", ai, s)
					}
				}
			}
		})
	}
}

// TestHierCompressionShape pins the structural contract of Compress:
// the compressed graph validates, its border matches the flat border
// under the event mapping, and the stats add up.
func TestHierCompressionShape(t *testing.T) {
	for name, g := range fixtures(t) {
		g := g
		t.Run(name, func(t *testing.T) {
			c, err := hier.Compress(g)
			if err != nil {
				t.Skipf("no compression gain: %v", err)
			}
			comp := c.Graph()
			st := c.Stats()
			if st.FlatEvents != g.NumEvents() || st.FlatArcs != g.NumArcs() {
				t.Fatalf("flat stats %d/%d, graph %d/%d", st.FlatEvents, st.FlatArcs, g.NumEvents(), g.NumArcs())
			}
			if st.CompressedEvents != comp.NumEvents() || st.CompressedArcs != comp.NumArcs() {
				t.Fatalf("compressed stats %d/%d, graph %d/%d",
					st.CompressedEvents, st.CompressedArcs, comp.NumEvents(), comp.NumArcs())
			}
			if st.Boundary+st.Interior != st.FlatEvents {
				t.Fatalf("boundary %d + interior %d != flat %d", st.Boundary, st.Interior, st.FlatEvents)
			}
			if st.CompressedEvents >= st.FlatEvents {
				t.Fatalf("no event compression: %d >= %d", st.CompressedEvents, st.FlatEvents)
			}
			// The compressed border must be the flat border, in order.
			fb := g.BorderEvents()
			cb := comp.BorderEvents()
			if len(fb) != len(cb) {
				t.Fatalf("border size: flat %d, compressed %d", len(fb), len(cb))
			}
			for i := range cb {
				if c.ToFlat(cb[i]) != fb[i] {
					t.Fatalf("border[%d]: compressed maps to %d, flat has %d", i, c.ToFlat(cb[i]), fb[i])
				}
			}
			// Event names survive the mapping.
			for ci := 0; ci < comp.NumEvents(); ci++ {
				if comp.Event(sg.EventID(ci)).Name != g.Event(c.ToFlat(sg.EventID(ci))).Name {
					t.Fatalf("event %d renamed: %s vs %s", ci,
						comp.Event(sg.EventID(ci)).Name, g.Event(c.ToFlat(sg.EventID(ci))).Name)
				}
			}
		})
	}
}

// TestHierFallback pins the ErrNoGain path: a graph with no interior
// (every event on the border) analyses flat, transparently, with the
// Fallback stat set.
func TestHierFallback(t *testing.T) {
	// A 2-ring where both events head marked arcs: no interior at all.
	g, err := sg.NewBuilder("allborder").
		Events("a", "b").
		Arc("a", "b", 3, sg.Marked()).
		Arc("b", "a", 4, sg.Marked()).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := hier.Compress(g); err == nil {
		t.Fatal("Compress succeeded on an incompressible graph")
	}
	res, err := hier.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Stats.Fallback {
		t.Fatal("Fallback stat not set")
	}
	flat, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("flat Analyze: %v", err)
	}
	if !res.CycleTime.Equal(flat.CycleTime) {
		t.Fatalf("fallback λ %v != flat λ %v", res.CycleTime, flat.CycleTime)
	}
}

// TestHierDeterminism pins that compression and analysis are
// deterministic: two runs produce identical compressed fingerprints
// and identical results.
func TestHierDeterminism(t *testing.T) {
	g, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 5, Depth: 9, Width: 3, Seed: 55})
	if err != nil {
		t.Fatalf("PipeGrid: %v", err)
	}
	c1, err := hier.Compress(g)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	c2, err := hier.Compress(g)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	if sg.Fingerprint(c1.Graph()) != sg.Fingerprint(c2.Graph()) {
		t.Fatal("compressed fingerprints differ between runs")
	}
	r1, err := c1.Analyze(hier.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	r2, err := c2.Analyze(hier.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !r1.CycleTime.Equal(r2.CycleTime) || len(r1.Critical) != len(r2.Critical) {
		t.Fatal("hier results differ between runs")
	}
}

// TestHierCompressionRatioHuge pins that the huge families actually
// compress hard — the property the scale experiment banks on.
func TestHierCompressionRatioHuge(t *testing.T) {
	g, err := gen.PipeGridSized(50000, 8, 4, 66)
	if err != nil {
		t.Fatalf("PipeGridSized: %v", err)
	}
	c, err := hier.Compress(g)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	st := c.Stats()
	if ratio := st.EventRatio(); ratio > 0.01 {
		t.Fatalf("compressed/flat event ratio %.4f, want <= 0.01 on a 50k pipegrid", ratio)
	}
	res, err := c.Analyze(hier.Options{})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	flat, err := cycletime.AnalyzeOpts(g, cycletime.Options{WindowBytes: 1})
	if err != nil {
		t.Fatalf("flat Analyze: %v", err)
	}
	if !res.CycleTime.Equal(flat.CycleTime) {
		t.Fatalf("λ: hier %v, flat %v", res.CycleTime, flat.CycleTime)
	}
}
