// Package hier implements hierarchical macro-compression of Timed
// Signal Graphs: the scalability pass that folds huge token-free
// regions into boundary-delay macro arcs, so the paper's O(b·periods·m)
// analysis kernel only ever sweeps the compressed graph.
//
// # The partition
//
// The boundary of a graph is the set of events the period structure or
// the once-only semantics can observe directly:
//
//   - heads of initially marked arcs (the border machinery of §VI.A
//     initiates simulations there and reads distances back there),
//   - heads of disengageable arcs, and all non-repetitive events
//     (disengageable arcs only leave non-repetitive events, §III.A),
//
// Everything else is interior: repetitive events whose in- and
// out-arcs are all plain — unmarked and engageable. The validation
// rules make the interior an unmarked DAG whose every event is
// reachable from the boundary.
//
// # The compression
//
// The compressed graph keeps exactly the boundary events. Arcs with
// both endpoints on the boundary are copied verbatim. Every maximal
// family of boundary-to-boundary paths through the interior collapses
// to macro arcs carrying the exact MAX-rule delay:
//
//   - an unmarked macro arc u → w with delay max over interior paths
//     u ⇒ w (the MAX firing rule makes the max over parallel paths
//     exact, not approximate);
//   - a marked macro arc u → w with delay max over u ⇒ v plus the
//     initially marked arc v → w it absorbs (tails of marked arcs may
//     be interior; their token moves onto the macro arc).
//
// Under this partition the event-initiated simulation times of every
// boundary event — and hence the distance series of Prop. 7, the cycle
// time, and the border set itself — are identical on the compressed
// and the flat graph: in exact arithmetic always, bit-for-bit whenever
// the arc delays are integers (path sums are then exact in float64).
// λ-winning cycles of the compressed graph expand back to concrete
// flat critical cycles on demand (expand.go).
//
// The interior delays are computed by multi-source DAG sweeps
// batched macroWidth entries wide: distance columns are record-major,
// so one linear pass over the interior CSR serves macroWidth entry
// events from contiguous cache lines — the same blocking trick as the
// Monte-Carlo batch kernel.
package hier

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"tsg/internal/sg"
)

// ErrNoGain reports that compression was aborted because the compressed
// graph would not be smaller than the flat one (tiny interiors can make
// all-pairs macro arcs outnumber the paths they summarise). Analyze
// falls back to flat analysis; callers of Compress can do the same.
var ErrNoGain = errors.New("hier: compression would not shrink the graph")

// macroWidth is the batching width of the interior sweeps: distance
// columns per interior event, laid out record-major. 8 columns × 8
// bytes = one 64-byte cache line per interior event, and a macroWidth
// block of the distance slab stays far below L2 alongside the CSR
// stream it is swept with.
const macroWidth = 8

// Stats summarises one compression.
type Stats struct {
	FlatEvents, FlatArcs             int
	CompressedEvents, CompressedArcs int
	Boundary, Interior               int
	MacroArcs                        int
	// Fallback is set on Analyze results when compression was skipped
	// (ErrNoGain) and the flat graph was analysed directly.
	Fallback bool
}

// EventRatio returns compressed/flat event count.
func (s Stats) EventRatio() float64 {
	return float64(s.CompressedEvents) / float64(s.FlatEvents)
}

// ArcRatio returns compressed/flat arc count.
func (s Stats) ArcRatio() float64 {
	return float64(s.CompressedArcs) / float64(s.FlatArcs)
}

// arc origin classes of the compressed graph.
const (
	kindDirect      int8 = iota // verbatim copy of a flat arc
	kindMacro                   // unmarked interior macro
	kindMarkedMacro             // macro absorbing an initially marked arc
)

// Compressed is a compressed graph together with the mappings and the
// retained interior structure needed to expand winners back to flat
// terms. It is immutable after Compress and safe for concurrent use.
type Compressed struct {
	flat *sg.Graph
	comp *sg.Graph

	toFlat []sg.EventID // compressed ID -> flat ID (ascending)
	toComp []sg.EventID // flat ID -> compressed ID, sg.None for interior

	kind    []int8       // per compressed arc
	flatArc []int32      // kindDirect: flat arc index; else -1
	entry   []sg.EventID // macro kinds: the flat entry event u; else None

	// Interior structure, in unmarked-topological order. In-records of
	// interior events: iSrcPos >= 0 is the topo position of an interior
	// source; iSrcPos < 0 encodes a boundary source with flat event
	// ^iSrcPos. iArc is the flat arc index (for path expansion).
	interior []sg.EventID // topo position -> flat event
	iPos     []int32      // flat ID -> topo position, -1 for boundary
	iOff     []int32
	iSrcPos  []int32
	iDel     []float64
	iArc     []int32

	// Out-records of interior events that leave the interior: the
	// emission points of macro arcs. Grouped by interior topo position.
	eOff    []int32
	eHead   []sg.EventID // flat head (a boundary event)
	eDel    []float64
	eMarked []bool
	eArc    []int32 // flat arc index

	// sweepPool recycles the dist/pred scratch of expansion sweeps —
	// a winner cycle expands one macro at a time, and without reuse the
	// O(interior) scratch dominates the allocation profile on big
	// fabrics.
	sweepPool sync.Pool // *sweepScratch
}

// sweepScratch is the pooled working set of one expansion sweep.
type sweepScratch struct {
	dist []float64
	pred []int32
}

// Flat returns the original graph.
func (c *Compressed) Flat() *sg.Graph { return c.flat }

// Graph returns the compressed graph.
func (c *Compressed) Graph() *sg.Graph { return c.comp }

// ToFlat maps a compressed event ID to its flat event ID.
func (c *Compressed) ToFlat(e sg.EventID) sg.EventID { return c.toFlat[e] }

// Stats returns the compression summary.
func (c *Compressed) Stats() Stats {
	macro := 0
	for _, k := range c.kind {
		if k != kindDirect {
			macro++
		}
	}
	return Stats{
		FlatEvents: c.flat.NumEvents(), FlatArcs: c.flat.NumArcs(),
		CompressedEvents: c.comp.NumEvents(), CompressedArcs: c.comp.NumArcs(),
		Boundary: c.comp.NumEvents(), Interior: len(c.interior),
		MacroArcs: macro,
	}
}

// Compress partitions a validated graph and folds its interior into
// macro arcs. It returns ErrNoGain when the compressed graph would not
// be smaller than the flat one.
func Compress(g *sg.Graph) (*Compressed, error) {
	n := g.NumEvents()
	m := g.NumArcs()
	if n == 0 {
		return nil, fmt.Errorf("hier: empty graph")
	}

	// 1. Boundary: non-repetitive events, heads of marked arcs, heads of
	// disengageable arcs.
	isBoundary := make([]bool, n)
	for i := 0; i < n; i++ {
		if !g.Event(sg.EventID(i)).Repetitive {
			isBoundary[i] = true
		}
	}
	for i := 0; i < m; i++ {
		a := g.Arc(i)
		if a.Marked || a.Once {
			isBoundary[a.To] = true
		}
	}

	c := &Compressed{flat: g}
	c.toComp = make([]sg.EventID, n)
	nb := 0
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			c.toComp[i] = sg.EventID(nb)
			nb++
		} else {
			c.toComp[i] = sg.None
		}
	}
	c.toFlat = make([]sg.EventID, 0, nb)
	for i := 0; i < n; i++ {
		if isBoundary[i] {
			c.toFlat = append(c.toFlat, sg.EventID(i))
		}
	}

	// 2. Interior topological order (restriction of the period order).
	order, err := g.PeriodOrder()
	if err != nil {
		return nil, err
	}
	c.iPos = make([]int32, n)
	for i := range c.iPos {
		c.iPos[i] = -1
	}
	c.interior = make([]sg.EventID, 0, n-nb)
	for _, e := range order {
		if !isBoundary[e] {
			c.iPos[e] = int32(len(c.interior))
			c.interior = append(c.interior, e)
		}
	}
	ni := len(c.interior)

	// 3. Interior in-record CSR (sweep input) and escape-record CSR
	// (macro emission points), both in topo-position order.
	csr := g.InCSR()
	c.iOff = make([]int32, ni+1)
	c.eOff = make([]int32, ni+1)
	for q, e := range c.interior {
		c.iOff[q+1] = c.iOff[q] + csr.Off[int(e)+1] - csr.Off[e]
		cnt := int32(0)
		for _, ai := range g.OutArcs(e) {
			if c.iPos[g.Arc(ai).To] < 0 {
				cnt++
			}
		}
		c.eOff[q+1] = c.eOff[q] + cnt
	}
	c.iSrcPos = make([]int32, c.iOff[ni])
	c.iDel = make([]float64, c.iOff[ni])
	c.iArc = make([]int32, c.iOff[ni])
	c.eHead = make([]sg.EventID, c.eOff[ni])
	c.eDel = make([]float64, c.eOff[ni])
	c.eMarked = make([]bool, c.eOff[ni])
	c.eArc = make([]int32, c.eOff[ni])
	for q, e := range c.interior {
		p := c.iOff[q]
		for r := csr.Off[e]; r < csr.Off[int(e)+1]; r++ {
			src := csr.Src[r]
			if sp := c.iPos[src]; sp >= 0 {
				c.iSrcPos[p] = sp
			} else {
				c.iSrcPos[p] = ^int32(src)
			}
			c.iDel[p] = csr.Delay[r]
			c.iArc[p] = int32(csr.Arc[r])
			p++
		}
		p = c.eOff[q]
		for _, ai := range g.OutArcs(e) {
			a := g.Arc(ai)
			if c.iPos[a.To] >= 0 {
				continue
			}
			c.eHead[p] = a.To
			c.eDel[p] = a.Delay
			c.eMarked[p] = a.Marked
			c.eArc[p] = int32(ai)
			p++
		}
	}

	// 4. Entries: boundary events with a plain out-arc into the interior.
	var entries []sg.EventID
	for _, u := range c.toFlat {
		for _, ai := range g.OutArcs(u) {
			if c.iPos[g.Arc(ai).To] >= 0 {
				entries = append(entries, u)
				break
			}
		}
	}

	// 5. Batched interior sweeps: macroWidth entries share one pass over
	// the interior CSR. Emissions accumulate per entry, max-collapsed per
	// (head, marked) pair.
	type macro struct {
		entry  sg.EventID
		head   sg.EventID
		delay  float64
		marked bool
	}
	var macros []macro
	directArcs := 0
	for i := 0; i < m; i++ {
		a := g.Arc(i)
		if c.iPos[a.From] < 0 && c.iPos[a.To] < 0 {
			directArcs++
		}
	}
	// Abort when macro arcs would stop compression from shrinking the
	// graph (pathological partitions: near-empty interiors with rich
	// boundary fan-in/fan-out).
	macroCap := m - directArcs + m/2 + 64

	neg := math.Inf(-1)
	dist := make([]float64, ni*macroWidth)
	colOf := make(map[sg.EventID]int, macroWidth)
	type emitKey struct {
		head   sg.EventID
		marked bool
	}
	acc := make([]map[emitKey]float64, macroWidth)
	for bStart := 0; bStart < len(entries); bStart += macroWidth {
		K := len(entries) - bStart
		if K > macroWidth {
			K = macroWidth
		}
		for i := range dist {
			dist[i] = neg
		}
		clear(colOf)
		for k := 0; k < K; k++ {
			colOf[entries[bStart+k]] = k
			acc[k] = make(map[emitKey]float64)
		}
		for q := 0; q < ni; q++ {
			row := dist[q*macroWidth : q*macroWidth+macroWidth]
			for r := c.iOff[q]; r < c.iOff[q+1]; r++ {
				sp := c.iSrcPos[r]
				d := c.iDel[r]
				if sp >= 0 {
					src := dist[int(sp)*macroWidth : int(sp)*macroWidth+macroWidth]
					for k := 0; k < macroWidth; k++ {
						if v := src[k] + d; v > row[k] {
							row[k] = v
						}
					}
					continue
				}
				if k, ok := colOf[sg.EventID(^sp)]; ok && d > row[k] {
					row[k] = d
				}
			}
			for r := c.eOff[q]; r < c.eOff[q+1]; r++ {
				key := emitKey{head: c.eHead[r], marked: c.eMarked[r]}
				d := c.eDel[r]
				for k := 0; k < K; k++ {
					if row[k] == neg {
						continue
					}
					v := row[k] + d
					if best, ok := acc[k][key]; !ok || v > best {
						acc[k][key] = v
					}
				}
			}
		}
		for k := 0; k < K; k++ {
			u := entries[bStart+k]
			keys := make([]emitKey, 0, len(acc[k]))
			for key := range acc[k] {
				keys = append(keys, key)
			}
			sort.Slice(keys, func(i, j int) bool {
				if keys[i].head != keys[j].head {
					return keys[i].head < keys[j].head
				}
				return !keys[i].marked && keys[j].marked
			})
			for _, key := range keys {
				macros = append(macros, macro{entry: u, head: key.head, delay: acc[k][key], marked: key.marked})
			}
			acc[k] = nil
		}
		if len(macros) > macroCap {
			return nil, ErrNoGain
		}
	}
	if ni == 0 || directArcs+len(macros) >= m {
		return nil, ErrNoGain
	}

	// 6. Assemble the compressed graph: boundary events in flat-ID order
	// (so the compressed border set lists the same events in the same
	// order), direct arcs in flat order, then the macro arcs.
	b := sg.NewDenseBuilder(g.Name()+"/compressed", nb, directArcs+len(macros))
	for _, fe := range c.toFlat {
		ev := g.Event(fe)
		if ev.Repetitive {
			b.AddEvent(ev.Name)
		} else {
			b.AddNonRepetitiveEvent(ev.Name)
		}
	}
	c.kind = make([]int8, 0, directArcs+len(macros))
	c.flatArc = make([]int32, 0, directArcs+len(macros))
	c.entry = make([]sg.EventID, 0, directArcs+len(macros))
	for i := 0; i < m; i++ {
		a := g.Arc(i)
		cf, ct := c.toComp[a.From], c.toComp[a.To]
		if cf < 0 || ct < 0 {
			continue
		}
		if a.Once {
			b.AddOnceArc(cf, ct, a.Delay)
		} else {
			b.AddArc(cf, ct, a.Delay, a.Marked)
		}
		c.kind = append(c.kind, kindDirect)
		c.flatArc = append(c.flatArc, int32(i))
		c.entry = append(c.entry, sg.None)
	}
	for _, ma := range macros {
		b.AddArc(c.toComp[ma.entry], c.toComp[ma.head], ma.delay, ma.marked)
		if ma.marked {
			c.kind = append(c.kind, kindMarkedMacro)
		} else {
			c.kind = append(c.kind, kindMacro)
		}
		c.flatArc = append(c.flatArc, -1)
		c.entry = append(c.entry, ma.entry)
	}
	comp, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("hier: compressed graph invalid: %w", err)
	}
	c.comp = comp
	return c, nil
}
