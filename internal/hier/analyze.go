package hier

import (
	"errors"

	"tsg/internal/cycletime"
	"tsg/internal/sg"
	"tsg/internal/stat"
)

// Options tunes a hierarchical analysis.
type Options struct {
	// Periods overrides the unfolding periods simulated on the
	// compressed graph; 0 means its border-set size, which equals the
	// flat border-set size (compression preserves the border).
	Periods int
	// WindowBytes is passed through to the cycle-time engine (it mostly
	// matters for the flat fallback; compressed graphs are small).
	WindowBytes int64
}

// Result is the outcome of a hierarchical analysis, in flat-graph terms.
type Result struct {
	// CycleTime is λ. Identical to flat analysis: in exact arithmetic
	// always, bit-for-bit for integral delays.
	CycleTime stat.Ratio
	// Critical holds the expanded flat critical cycles (deduplicated).
	Critical []cycletime.CriticalCycle
	// Series holds the per-border-event distance series with Event
	// remapped to flat IDs. The distances are the compressed engine's —
	// which are the flat engine's, see the package comment.
	Series []cycletime.BorderSeries
	// Periods is the number of unfolding periods simulated.
	Periods int
	// Stats summarises the compression (Fallback set when the graph was
	// analysed flat).
	Stats Stats
}

// Analyze compresses the graph and runs the paper's algorithm on the
// compressed form, expanding the winners back to flat terms. Graphs
// that do not compress (ErrNoGain) are analysed flat.
func Analyze(g *sg.Graph) (*Result, error) { return AnalyzeOpts(g, Options{}) }

// AnalyzeOpts is Analyze with explicit options.
func AnalyzeOpts(g *sg.Graph, opts Options) (*Result, error) {
	c, err := Compress(g)
	if errors.Is(err, ErrNoGain) {
		flat, ferr := cycletime.AnalyzeOpts(g, cycletime.Options{Periods: opts.Periods, WindowBytes: opts.WindowBytes})
		if ferr != nil {
			return nil, ferr
		}
		return &Result{
			CycleTime: flat.CycleTime,
			Critical:  flat.Critical,
			Series:    flat.Series,
			Periods:   flat.Periods,
			Stats: Stats{FlatEvents: g.NumEvents(), FlatArcs: g.NumArcs(),
				CompressedEvents: g.NumEvents(), CompressedArcs: g.NumArcs(), Fallback: true},
		}, nil
	}
	if err != nil {
		return nil, err
	}
	return c.Analyze(opts)
}

// Analyze runs the compressed analysis and expands the winners.
func (c *Compressed) Analyze(opts Options) (*Result, error) {
	res, err := cycletime.AnalyzeOpts(c.comp, cycletime.Options{Periods: opts.Periods, WindowBytes: opts.WindowBytes})
	if err != nil {
		return nil, err
	}
	out := &Result{CycleTime: res.CycleTime, Periods: res.Periods, Stats: c.Stats()}
	out.Series = make([]cycletime.BorderSeries, len(res.Series))
	for i, s := range res.Series {
		s.Event = c.toFlat[s.Event]
		out.Series[i] = s
	}
	for i := range res.Critical {
		exp, err := c.ExpandCycle(&res.Critical[i])
		if err != nil {
			return nil, err
		}
		if !containsCycle(out.Critical, exp) {
			out.Critical = append(out.Critical, *exp)
		}
	}
	return out, nil
}

// containsCycle reports whether the list already holds the same simple
// cycle up to rotation. Distinct compressed cycles can fold onto the
// same flat cycle, so expansion deduplicates again.
func containsCycle(list []cycletime.CriticalCycle, c *cycletime.CriticalCycle) bool {
	cs := rotationStart(c.Arcs)
	for i := range list {
		o := &list[i]
		if len(o.Arcs) != len(c.Arcs) || o.Period != c.Period {
			continue
		}
		os := rotationStart(o.Arcs)
		same := true
		n := len(c.Arcs)
		for k := 0; k < n; k++ {
			if o.Arcs[(os+k)%n] != c.Arcs[(cs+k)%n] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// rotationStart returns the index of the minimum element — arc indices
// around a simple cycle are distinct, so anchoring at the minimum
// canonicalises the rotation.
func rotationStart(s []int) int {
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i] < s[best] {
			best = i
		}
	}
	return best
}
