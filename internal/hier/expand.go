package hier

import (
	"fmt"
	"math"

	"tsg/internal/cycletime"
	"tsg/internal/mcr"
	"tsg/internal/sg"
	"tsg/internal/stat"
)

// sweepFrom runs one scalar interior longest-path sweep from the flat
// entry event u, recording the in-record realising each maximum so
// paths can be reconstructed. dist and pred must have len(interior);
// dist is -Inf where u does not reach.
func (c *Compressed) sweepFrom(u sg.EventID, dist []float64, pred []int32) {
	neg := math.Inf(-1)
	for q := range dist {
		dist[q] = neg
		pred[q] = -1
	}
	ni := len(c.interior)
	for q := 0; q < ni; q++ {
		best := neg
		bestR := int32(-1)
		for r := c.iOff[q]; r < c.iOff[q+1]; r++ {
			sp := c.iSrcPos[r]
			d := c.iDel[r]
			var v float64
			if sp >= 0 {
				if dist[sp] == neg {
					continue
				}
				v = dist[sp] + d
			} else {
				if sg.EventID(^sp) != u {
					continue
				}
				v = d
			}
			if v > best {
				best = v
				bestR = r
			}
		}
		dist[q] = best
		pred[q] = bestR
	}
}

// expandMacro reconstructs a concrete flat path realising the macro arc
// `ca` of the compressed graph: the events strictly between the macro's
// endpoints and the flat arcs connecting them (len(arcs) = len(events)+1).
// The path's delay sum equals the macro delay exactly for integral
// delays (both are the same MAX-rule longest path, summed over the same
// arcs).
func (c *Compressed) expandMacro(ca int) (events []sg.EventID, arcs []int, err error) {
	kind := c.kind[ca]
	if kind == kindDirect {
		return nil, []int{int(c.flatArc[ca])}, nil
	}
	u := c.entry[ca]
	a := c.comp.Arc(ca)
	w := c.toFlat[a.To]
	want := a.Delay

	ni := len(c.interior)
	sc, _ := c.sweepPool.Get().(*sweepScratch)
	if sc == nil {
		sc = &sweepScratch{dist: make([]float64, ni), pred: make([]int32, ni)}
	}
	defer c.sweepPool.Put(sc)
	dist, pred := sc.dist, sc.pred
	c.sweepFrom(u, dist, pred)

	// Find the escape record realising the macro: an out-arc of an
	// interior event v to head w with the macro's marking class and
	// dist(v) + d == delay.
	neg := math.Inf(-1)
	bestQ, bestArc := -1, -1
	bestV := neg
	for q := 0; q < ni; q++ {
		if dist[q] == neg {
			continue
		}
		for r := c.eOff[q]; r < c.eOff[q+1]; r++ {
			if c.eHead[r] != w || c.eMarked[r] != (kind == kindMarkedMacro) {
				continue
			}
			if v := dist[q] + c.eDel[r]; v > bestV {
				bestV = v
				bestQ, bestArc = q, int(c.eArc[r])
			}
		}
	}
	if bestQ < 0 {
		return nil, nil, fmt.Errorf("hier: macro arc %d (%s -> %s) has no realising path", ca,
			c.flat.Event(u).Name, c.flat.Event(w).Name)
	}
	if !closeEnough(bestV, want) {
		return nil, nil, fmt.Errorf("hier: macro arc %d re-sweep found delay %g, compressed says %g",
			ca, bestV, want)
	}
	// Walk predecessors from the escape point back to the entry.
	var revEvents []sg.EventID
	var revArcs []int
	revArcs = append(revArcs, bestArc)
	q := bestQ
	for {
		revEvents = append(revEvents, c.interior[q])
		r := pred[q]
		if r < 0 {
			return nil, nil, fmt.Errorf("hier: macro expansion stranded at %s",
				c.flat.Event(c.interior[q]).Name)
		}
		revArcs = append(revArcs, int(c.iArc[r]))
		sp := c.iSrcPos[r]
		if sp < 0 {
			if sg.EventID(^sp) != u {
				return nil, nil, fmt.Errorf("hier: macro expansion escaped to wrong entry")
			}
			break
		}
		q = int(sp)
	}
	// Reverse into forward order.
	for l, r := 0, len(revEvents)-1; l < r; l, r = l+1, r-1 {
		revEvents[l], revEvents[r] = revEvents[r], revEvents[l]
	}
	for l, r := 0, len(revArcs)-1; l < r; l, r = l+1, r-1 {
		revArcs[l], revArcs[r] = revArcs[r], revArcs[l]
	}
	return revEvents, revArcs, nil
}

// closeEnough tolerates last-ulp float noise between two path sums over
// the same arcs accumulated in different orders (exact for integers).
func closeEnough(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// ExpandCycle maps a critical cycle of the compressed graph back to a
// simple critical cycle of the flat graph: each macro arc is replaced
// by a concrete realising path, and the resulting closed walk — which
// attains λ but may revisit events — is folded at the first repeated
// event into a simple sub-cycle, which then attains λ exactly (the
// standard decomposition: every simple cycle of a λ-attaining closed
// walk is itself λ-attaining).
func (c *Compressed) ExpandCycle(cc *cycletime.CriticalCycle) (*cycletime.CriticalCycle, error) {
	if len(cc.Events) == 0 {
		return nil, fmt.Errorf("hier: empty compressed cycle")
	}
	var nodes []sg.EventID
	var arcs []int
	for i, ce := range cc.Events {
		nodes = append(nodes, c.toFlat[ce])
		evs, as, err := c.expandMacro(cc.Arcs[i])
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, evs...)
		arcs = append(arcs, as...)
	}
	// nodes[i] --arcs[i]--> nodes[i+1 mod len]: a closed flat walk.
	// Fold at the first repeated event.
	first := make(map[sg.EventID]int, len(nodes))
	start, end := -1, len(nodes)
	for i, ev := range nodes {
		if p, dup := first[ev]; dup {
			start, end = p, i
			break
		}
		first[ev] = i
	}
	if start < 0 {
		start = 0 // the walk is already simple; close it as a whole
	}
	out := &cycletime.CriticalCycle{
		Events: append([]sg.EventID(nil), nodes[start:end]...),
		Arcs:   append([]int(nil), arcs[start:end]...),
	}
	for _, ai := range out.Arcs {
		a := c.flat.Arc(ai)
		out.Length += a.Delay
		if a.Marked {
			out.Period++
		}
	}
	if out.Period == 0 {
		return nil, fmt.Errorf("hier: expanded cycle carries no token (unmarked flat cycle?)")
	}
	want := cc.Ratio()
	got := out.Ratio()
	if !got.Equal(want) {
		x := got.Num * float64(want.Den)
		y := want.Num * float64(got.Den)
		if math.Abs(x-y) > 1e-9*math.Max(math.Abs(x), math.Abs(y)) {
			return nil, fmt.Errorf("hier: expanded cycle ratio %v != compressed ratio %v", got, want)
		}
	}
	return out, nil
}

// Potential extends a feasible potential of the compressed graph at λ
// to the whole flat graph: boundary events take the compressed
// potential, interior events the forward max-plus closure
// pot(v) = max over in-arcs (pot(src) + τ). The result certifies λ on
// every flat arc — the macro delays dominate every interior path, so
// feasibility transfers — and can be fed to slack evaluation.
func (c *Compressed) Potential(lambda stat.Ratio) ([]float64, error) {
	lam := lambda.Float()
	uc, err := mcr.FeasiblePotential(c.comp, lam)
	if err != nil {
		return nil, fmt.Errorf("hier: potential at λ=%v: %w", lambda, err)
	}
	pot := make([]float64, c.flat.NumEvents())
	for ci, fe := range c.toFlat {
		pot[fe] = uc[ci]
	}
	neg := math.Inf(-1)
	for q, fe := range c.interior {
		best := neg
		for r := c.iOff[q]; r < c.iOff[q+1]; r++ {
			sp := c.iSrcPos[r]
			var base float64
			if sp >= 0 {
				base = pot[c.interior[sp]]
			} else {
				base = pot[sg.EventID(^sp)]
			}
			if v := base + c.iDel[r]; v > best {
				best = v
			}
		}
		pot[fe] = best
	}
	return pot, nil
}

// Slacks evaluates per-arc timing slacks of the FLAT graph at λ using
// the extended potential. Slack values depend on the certificate, which
// is not unique (see cycletime.Slacks), so they need not equal the flat
// engine's values number-for-number — but validity (slack >= 0) and
// tightness of every arc on every critical cycle hold for both.
func (c *Compressed) Slacks(lambda stat.Ratio) ([]cycletime.ArcSlack, error) {
	pot, err := c.Potential(lambda)
	if err != nil {
		return nil, err
	}
	lam := lambda.Float()
	g := c.flat
	var out []cycletime.ArcSlack
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if a.Once || !g.Event(a.From).Repetitive || !g.Event(a.To).Repetitive {
			continue
		}
		w := a.Delay
		if a.Marked {
			w -= lam
		}
		s := pot[a.To] - pot[a.From] - w
		if math.Abs(s) < 1e-9 {
			s = 0
		}
		out = append(out, cycletime.ArcSlack{Arc: i, Slack: s, Tight: s == 0})
	}
	return out, nil
}
