package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/obs"
)

// Breaker states. Closed is normal service; Open means the node takes
// no traffic (it left every placement and its epoch bumped, voiding
// sync marks); HalfOpen means the probes look good again and the node
// is routable on trial — it re-entered placement, its first reads are
// preceded by a journal sync, and one more failure re-opens it while a
// few successes close it.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

func breakerName(s int32) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerTuning bundles the thresholds the state machine runs under
// (resolved from Config once per call, so tests can tweak cfg live).
type breakerTuning struct {
	failThreshold    int           // mixed probe+request streak that trips
	reqThreshold     int           // request-only streak that trips (faster)
	readmitThreshold int           // consecutive probe OKs to go half-open
	cooldown         time.Duration // minimum open dwell before half-open
	closeAfter       int           // successes in half-open to close
}

func (r *Router) tuning() breakerTuning {
	return breakerTuning{
		failThreshold:    r.cfg.FailThreshold,
		reqThreshold:     r.cfg.BreakerThreshold,
		readmitThreshold: r.cfg.ReadmitThreshold,
		cooldown:         r.cfg.BreakerCooldown,
		closeAfter:       r.cfg.BreakerCloseAfter,
	}
}

// node is one backend in the pool: its transport client, its breaker
// state machine, and the counters the router's balancing and telemetry
// read.
type node struct {
	id  int    // monotonic pool identity (survives across membership reloads)
	url string // the configured base URL, also the rendezvous hash key
	cl  *client.Client
	// probeClient is a separate tight-budget client for health probes:
	// no retries (the breaker IS the retry policy) and a short timeout,
	// so a hung node is detected within a few probe periods instead of a
	// request timeout.
	probeClient *client.Client

	// healthy is the routing eligibility flag: placement only considers
	// nodes that are healthy right now. It tracks the breaker — true in
	// Closed and HalfOpen, false in Open. Nodes boot healthy (optimistic:
	// a router must be routable before its first probe round completes).
	healthy atomic.Bool

	// state is the breaker state, readable lock-free on the hot path;
	// transitions happen under mu.
	state atomic.Int32

	// epoch counts breaker trips. Every per-graph sync mark records the
	// epoch it was taken under; a trip bumps the epoch, which atomically
	// invalidates every mark on this node — the router assumes a tripped
	// node may have lost or missed anything, and re-syncs from the
	// journal before trusting it again.
	epoch atomic.Uint64

	// removed marks a node dropped by a membership reload: it is out of
	// the pool snapshot (so placement already re-hashed its shard), its
	// probe loop exits at the next tick, and in-flight requests drain
	// naturally.
	removed atomic.Bool

	// inflight is the power-of-two-choices signal: requests currently
	// forwarded to this node.
	inflight atomic.Int64

	// hopDur is this node's forwarded-request latency histogram,
	// attached when the node joins the pool (nil with obs disabled).
	hopDur *obs.Histogram

	// Telemetry counters.
	requests       atomic.Uint64
	failures       atomic.Uint64
	ejections      atomic.Uint64
	trips          atomic.Uint64
	lastTransition atomic.Int64 // unix nanos of the last breaker transition

	// Breaker internals, guarded by mu (probe goroutine and request path
	// both report outcomes).
	mu             sync.Mutex
	consecFails    int // mixed probe+request failure streak
	consecReqFails int // request-path-only streak — probe OKs cannot clear it
	consecOKs      int // consecutive probe OKs while open
	closeProgress  int // successes accumulated while half-open
	trialBusy      bool
	openedAt       time.Time
}

// tripLocked opens the breaker: the node leaves every placement, its
// epoch bumps (invalidating sync marks), and only the prober can bring
// it back. Caller holds mu.
func (n *node) tripLocked() {
	n.state.Store(breakerOpen)
	n.healthy.Store(false)
	n.epoch.Add(1)
	n.ejections.Add(1)
	n.trips.Add(1)
	n.consecFails, n.consecReqFails, n.consecOKs, n.closeProgress = 0, 0, 0, 0
	n.openedAt = time.Now()
	n.lastTransition.Store(n.openedAt.UnixNano())
}

// closeLocked completes recovery: HalfOpen → Closed. Caller holds mu.
func (n *node) closeLocked() {
	n.state.Store(breakerClosed)
	n.healthy.Store(true)
	n.consecFails, n.consecReqFails, n.consecOKs, n.closeProgress = 0, 0, 0, 0
	n.lastTransition.Store(time.Now().UnixNano())
}

// noteFailure records a failed forwarded request. The breaker trips on
// reqThreshold consecutive request failures — deliberately tighter than
// failThreshold, and tracked in a streak probe successes CANNOT clear:
// under an asymmetric partition the probe path may stay perfect while
// every real request dies, and a health model that lets probes absolve
// request failures never ejects such a node. Any failure while
// half-open re-opens immediately (the trial failed).
func (n *node) noteFailure(t breakerTuning, onTrip func(*node)) {
	n.failures.Add(1)
	n.mu.Lock()
	n.consecFails++
	n.consecReqFails++
	n.consecOKs = 0
	n.closeProgress = 0
	trip := false
	switch n.state.Load() {
	case breakerHalfOpen:
		trip = true
	case breakerClosed:
		trip = n.consecReqFails >= t.reqThreshold || n.consecFails >= t.failThreshold
	}
	if trip {
		n.tripLocked()
	}
	n.mu.Unlock()
	if trip && onTrip != nil {
		onTrip(n)
	}
}

// probeFailed records a failed health probe: it feeds the mixed streak
// only (a probe failure is not a request failure), trips a closed
// breaker at failThreshold, and re-opens a half-open one.
func (n *node) probeFailed(t breakerTuning, onTrip func(*node)) {
	n.failures.Add(1)
	n.mu.Lock()
	n.consecFails++
	n.consecOKs = 0
	n.closeProgress = 0
	trip := false
	switch n.state.Load() {
	case breakerHalfOpen:
		trip = true
	case breakerClosed:
		trip = n.consecFails >= t.failThreshold
	}
	if trip {
		n.tripLocked()
	}
	n.mu.Unlock()
	if trip && onTrip != nil {
		onTrip(n)
	}
}

// noteSuccess records a successful forwarded request: it clears the
// request streak, and while half-open it counts toward closing (trial
// traffic is the recovery evidence). It never re-admits an open node —
// requests are not routed there, so a success cannot certify recovery.
func (n *node) noteSuccess(t breakerTuning, onClose func(*node)) {
	n.requests.Add(1)
	n.mu.Lock()
	n.consecReqFails = 0
	closed := false
	switch n.state.Load() {
	case breakerClosed:
		n.consecFails = 0
	case breakerHalfOpen:
		n.closeProgress++
		if n.closeProgress >= t.closeAfter {
			n.closeLocked()
			closed = true
		}
	}
	n.mu.Unlock()
	if closed && onClose != nil {
		onClose(n)
	}
}

// noteProbe feeds one health-probe outcome into the breaker.
// readmitThreshold consecutive OKs — after the cooldown dwell — move an
// open breaker to half-open: the node is routable again, the sync marks
// it lost at the trip stay lost (first traffic replays the journal),
// and onReadmit warm-syncs it in the background. A probe OK on a closed
// breaker clears only the mixed streak, never the request streak.
func (n *node) noteProbe(ok bool, t breakerTuning, onTrip, onReadmit, onClose func(*node)) {
	if !ok {
		n.probeFailed(t, onTrip)
		return
	}
	n.mu.Lock()
	readmit, closed := false, false
	switch n.state.Load() {
	case breakerClosed:
		n.consecFails = 0
	case breakerOpen:
		n.consecOKs++
		if n.consecOKs >= t.readmitThreshold && time.Since(n.openedAt) >= t.cooldown {
			n.state.Store(breakerHalfOpen)
			n.healthy.Store(true)
			n.consecFails, n.consecReqFails, n.consecOKs, n.closeProgress = 0, 0, 0, 0
			n.lastTransition.Store(time.Now().UnixNano())
			readmit = true
		}
	case breakerHalfOpen:
		n.closeProgress++
		if n.closeProgress >= t.closeAfter {
			n.closeLocked()
			closed = true
		}
	}
	n.mu.Unlock()
	if readmit && onReadmit != nil {
		onReadmit(n)
	}
	if closed && onClose != nil {
		onClose(n)
	}
}

// admitTrial gates half-open traffic to one request at a time: the
// point of half-open is to learn from a single trial, not to dogpile a
// barely-recovered node. Closed (and open — the caller routed there
// deliberately as a last resort) nodes admit freely. The returned
// release must be called when the attempt finishes.
func (n *node) admitTrial() (release func(), ok bool) {
	if n.state.Load() != breakerHalfOpen {
		return func() {}, true
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state.Load() != breakerHalfOpen {
		return func() {}, true
	}
	if n.trialBusy {
		return nil, false
	}
	n.trialBusy = true
	return func() {
		n.mu.Lock()
		n.trialBusy = false
		n.mu.Unlock()
	}, true
}

// Router-side wrappers: the request path reports through these so the
// tuning and transition callbacks stay in one place.
func (r *Router) noteFailure(n *node) { n.noteFailure(r.tuning(), r.onEject) }
func (r *Router) noteSuccess(n *node) { n.noteSuccess(r.tuning(), r.onClose) }

// probeLoop drives the node's health probe until ctx ends or the node
// is removed from the pool: GET /healthz through a tight-budget client
// (no retries — the breaker is the retry policy), outcomes fed to
// noteProbe.
func (r *Router) probeLoop(ctx context.Context, n *node) {
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if n.removed.Load() {
			return
		}
		probeCtx, cancel := context.WithTimeout(ctx, r.cfg.ProbeInterval*4)
		_, err := n.probeClient.Health(probeCtx)
		cancel()
		if ctx.Err() != nil {
			return // shutdown, not a node failure
		}
		n.noteProbe(err == nil, r.tuning(), r.onEject, r.onReadmit, r.onClose)
	}
}

// liveNodes returns the URLs of currently routable nodes, in the stable
// pool order (the placement input).
func (r *Router) liveNodes() []string {
	p := r.pool.Load()
	out := make([]string, 0, len(p.nodes))
	for _, n := range p.nodes {
		if n.healthy.Load() {
			out = append(out, n.url)
		}
	}
	return out
}

// nodeByURL resolves a placement entry back to its node.
func (r *Router) nodeByURL(url string) *node { return r.pool.Load().byURL[url] }
