package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"tsg/client"
)

// node is one backend in the pool: its transport client, its health
// state machine, and the counters the router's balancing and telemetry
// read.
type node struct {
	id  int    // index in Config.Nodes — the stable identity
	url string // the configured base URL, also the rendezvous hash key
	cl  *client.Client
	// probeClient is a separate tight-budget client for health probes:
	// no retries (the health state machine IS the retry policy) and a
	// short timeout, so a hung node is detected within a few probe
	// periods instead of a request timeout.
	probeClient *client.Client

	// healthy is the routing eligibility flag: placement only considers
	// nodes that are healthy right now. Nodes boot healthy (optimistic:
	// a router must be routable before its first probe round completes);
	// the prober and the request path demote them on consecutive
	// failures, only probes promote them back.
	healthy atomic.Bool

	// epoch counts ejections. Every per-graph sync mark records the
	// epoch it was taken under; an ejection bumps the epoch, which
	// atomically invalidates every mark on this node — the router
	// assumes an ejected node may have lost or missed anything, and
	// re-syncs from the journal before trusting it again.
	epoch atomic.Uint64

	// inflight is the power-of-two-choices signal: requests currently
	// forwarded to this node.
	inflight atomic.Int64

	// Telemetry counters.
	requests  atomic.Uint64
	failures  atomic.Uint64
	ejections atomic.Uint64

	// Health state machine, guarded by mu (probe goroutine and request
	// path both report outcomes).
	mu          sync.Mutex
	consecFails int
	consecOKs   int
}

// noteFailure records a failed interaction (probe or forwarded
// request). FailThreshold consecutive failures eject the node: it
// leaves every placement, its epoch bumps (invalidating sync marks),
// and only the prober can bring it back.
func (n *node) noteFailure(failThreshold int, onEject func(*node)) {
	n.failures.Add(1)
	n.mu.Lock()
	n.consecFails++
	n.consecOKs = 0
	eject := n.healthy.Load() && n.consecFails >= failThreshold
	if eject {
		n.healthy.Store(false)
		n.epoch.Add(1)
		n.ejections.Add(1)
		n.consecFails = 0
	}
	n.mu.Unlock()
	if eject && onEject != nil {
		onEject(n)
	}
}

// noteSuccess records a successful forwarded request: it clears the
// failure streak on a healthy node but never re-admits an ejected one
// (requests are not routed to ejected nodes, so a success here cannot
// certify recovery — that is the prober's job).
func (n *node) noteSuccess() {
	n.requests.Add(1)
	n.mu.Lock()
	if n.healthy.Load() {
		n.consecFails = 0
	}
	n.mu.Unlock()
}

// noteProbe feeds one health-probe outcome into the state machine.
// ReadmitThreshold consecutive probe successes re-admit an ejected
// node; the sync marks it lost at ejection stay lost, so the first
// traffic it sees is preceded by a journal replay.
func (n *node) noteProbe(ok bool, failThreshold, readmitThreshold int, onEject, onReadmit func(*node)) {
	if !ok {
		n.noteFailure(failThreshold, onEject)
		return
	}
	n.mu.Lock()
	readmit := false
	if n.healthy.Load() {
		n.consecFails = 0
	} else {
		n.consecOKs++
		if n.consecOKs >= readmitThreshold {
			n.healthy.Store(true)
			n.consecOKs = 0
			n.consecFails = 0
			readmit = true
		}
	}
	n.mu.Unlock()
	if readmit && onReadmit != nil {
		onReadmit(n)
	}
}

// probeLoop drives the node's health probe until ctx ends: GET
// /healthz through a tight-budget client (no retries — the state
// machine is the retry policy), outcomes fed to noteProbe.
func (r *Router) probeLoop(ctx context.Context, n *node) {
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		probeCtx, cancel := context.WithTimeout(ctx, r.cfg.ProbeInterval*4)
		_, err := n.probeClient.Health(probeCtx)
		cancel()
		if ctx.Err() != nil {
			return // shutdown, not a node failure
		}
		n.noteProbe(err == nil, r.cfg.FailThreshold, r.cfg.ReadmitThreshold, r.onEject, r.onReadmit)
	}
}

// liveNodes returns the URLs of currently healthy nodes, in the stable
// configured order (the placement input).
func (r *Router) liveNodes() []string {
	out := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n.healthy.Load() {
			out = append(out, n.url)
		}
	}
	return out
}

// nodeByURL resolves a placement entry back to its node.
func (r *Router) nodeByURL(url string) *node { return r.byURL[url] }
