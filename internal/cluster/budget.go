package cluster

import "sync/atomic"

// tokenBucket is the router's spend-control primitive for retries and
// hedges, in the Finagle retry-budget style: every incoming request
// credits a small fraction of a token, every extra attempt (failover
// retry, hedge launch) spends a whole one. In steady state that caps
// extra attempts at the credit fraction of traffic; the burst capacity
// absorbs a short incident without letting a sustained partial outage
// turn every request into N requests (a retry storm is the one failure
// mode that makes an overloaded cluster worse).
//
// Tokens are stored in milli-token units in a single atomic, so the hot
// path is one CAS and the fractional per-request credit needs no float
// math or locks.
type tokenBucket struct {
	milli atomic.Int64
	cap   int64 // burst capacity, milli-tokens
	rate  int64 // credit per request, milli-tokens
}

// newTokenBucket builds a bucket holding at most burst tokens, credited
// perRequest tokens (typically fractional) per incoming request. It
// starts full: a fresh router must be able to absorb an incident
// immediately.
func newTokenBucket(burst, perRequest float64) *tokenBucket {
	b := &tokenBucket{cap: int64(burst * 1000), rate: int64(perRequest * 1000)}
	b.milli.Store(b.cap)
	return b
}

// credit adds one request's worth of budget, saturating at the cap.
func (b *tokenBucket) credit() {
	for {
		cur := b.milli.Load()
		if cur >= b.cap {
			return
		}
		next := cur + b.rate
		if next > b.cap {
			next = b.cap
		}
		if b.milli.CompareAndSwap(cur, next) {
			return
		}
	}
}

// take spends one whole token; false means the budget is exhausted and
// the caller must not launch the extra attempt.
func (b *tokenBucket) take() bool {
	for {
		cur := b.milli.Load()
		if cur < 1000 {
			return false
		}
		if b.milli.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// tokens reports the current balance (for /metrics).
func (b *tokenBucket) tokens() float64 { return float64(b.milli.Load()) / 1000 }
