package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:7436", i+1)
	}
	return out
}

func testFingerprints(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tsg1-%08x-deadbeef", i*2654435761)
	}
	return out
}

// TestPlacementDeterministic pins the stateless-router property: every
// router instance must compute the identical placement from the same
// node list, or a multi-router deployment would split each graph's
// primary.
func TestPlacementDeterministic(t *testing.T) {
	nodes := testNodes(5)
	for _, fp := range testFingerprints(200) {
		a := Placement(fp, nodes, 2)
		b := Placement(fp, nodes, 2)
		if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("placement of %s not deterministic: %v vs %v", fp, a, b)
		}
	}
}

// TestPlacementDistinctReplicas pins that a replica set never lists a
// node twice (writing both copies to one node is no replication), and
// that a pool smaller than the replica count returns the whole pool.
func TestPlacementDistinctReplicas(t *testing.T) {
	nodes := testNodes(4)
	for _, fp := range testFingerprints(500) {
		for r := 1; r <= 6; r++ {
			p := Placement(fp, nodes, r)
			wantLen := r
			if wantLen > len(nodes) {
				wantLen = len(nodes)
			}
			if len(p) != wantLen {
				t.Fatalf("Placement(%s, 4 nodes, %d replicas): %d entries, want %d", fp, r, len(p), wantLen)
			}
			seen := map[string]bool{}
			for _, n := range p {
				if seen[n] {
					t.Fatalf("Placement(%s, r=%d) lists %s twice: %v", fp, r, n, p)
				}
				seen[n] = true
			}
		}
	}
}

// TestPlacementStabilityOnNodeLoss pins the rendezvous property the
// whole design leans on: removing one node only moves the fingerprints
// that had it in their replica set — every other placement is
// bit-identical — and the moved ones re-hash to surviving nodes.
func TestPlacementStabilityOnNodeLoss(t *testing.T) {
	nodes := testNodes(5)
	fps := testFingerprints(2000)
	const replicas = 2
	dead := nodes[2]
	survivors := append(append([]string{}, nodes[:2]...), nodes[3:]...)

	moved := 0
	for _, fp := range fps {
		before := Placement(fp, nodes, replicas)
		after := Placement(fp, survivors, replicas)
		hadDead := before[0] == dead || before[1] == dead
		if !hadDead {
			if before[0] != after[0] || before[1] != after[1] {
				t.Fatalf("fingerprint %s moved without containing the dead node: %v -> %v", fp, before, after)
			}
			continue
		}
		moved++
		for _, n := range after {
			if n == dead {
				t.Fatalf("fingerprint %s still placed on dead node: %v", fp, after)
			}
		}
		// The surviving member keeps its slot order relative to the
		// replacement: rendezvous only promotes the next-highest weight.
		var kept string
		for _, n := range before {
			if n != dead {
				kept = n
			}
		}
		if after[0] != kept && after[1] != kept {
			t.Fatalf("fingerprint %s: surviving replica %s evicted by re-hash: %v -> %v", fp, kept, before, after)
		}
	}
	// E[moved] = fraction of placements containing the dead node
	// ≈ replicas/len(nodes) = 40%. Accept a generous band.
	frac := float64(moved) / float64(len(fps))
	if frac < 0.30 || frac > 0.50 {
		t.Fatalf("%.1f%% of placements moved on one node loss, want ≈40%%", 100*frac)
	}
}

// TestPlacementMovementOnNodeAdd pins the other direction: adding a
// node steals ≈ replicas/(N+1) of the placements, and every placement
// that changes at all now contains the new node (nothing shuffles
// between old nodes).
func TestPlacementMovementOnNodeAdd(t *testing.T) {
	nodes := testNodes(5)
	grown := append(append([]string{}, nodes...), "http://10.0.0.99:7436")
	fps := testFingerprints(2000)
	const replicas = 2

	changed := 0
	for _, fp := range fps {
		before := Placement(fp, nodes, replicas)
		after := Placement(fp, grown, replicas)
		same := before[0] == after[0] && before[1] == after[1]
		if same {
			continue
		}
		changed++
		hasNew := after[0] == grown[5] || after[1] == grown[5]
		if !hasNew {
			t.Fatalf("fingerprint %s changed placement without adopting the new node: %v -> %v", fp, before, after)
		}
	}
	frac := float64(changed) / float64(len(fps))
	// E[changed] ≈ replicas/(N+1) = 2/6 ≈ 33%.
	if frac < 0.23 || frac > 0.43 {
		t.Fatalf("%.1f%% of placements changed on one node add, want ≈33%%", 100*frac)
	}
}

// TestPlacementBalance sanity-checks the load spread: over many
// fingerprints every node should hold a primary share within 2x of
// fair (FNV-1a rendezvous is not perfect, but it must not starve or
// hotspot a node).
func TestPlacementBalance(t *testing.T) {
	nodes := testNodes(4)
	fps := testFingerprints(4000)
	primaries := map[string]int{}
	for _, fp := range fps {
		primaries[Placement(fp, nodes, 2)[0]]++
	}
	fair := len(fps) / len(nodes)
	for _, n := range nodes {
		if c := primaries[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d primaries, fair share is %d: %v", n, c, fair, primaries)
		}
	}
}
