package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// nodePool is the router's copy-on-write membership snapshot. Every
// reader (placement, balancing, telemetry, debug) loads it once and
// works on an immutable view; ReloadNodes builds a fresh pool and swaps
// the pointer, so membership changes never race the request path and
// need no lock on it.
type nodePool struct {
	nodes []*node
	byURL map[string]*node
}

// poolNodes is the nil-safe pool accessor for telemetry closures, which
// are registered before New stores the first snapshot.
func (r *Router) poolNodes() []*node {
	if p := r.pool.Load(); p != nil {
		return p.nodes
	}
	return nil
}

// Nodes returns the current pool's base URLs in pool order.
func (r *Router) Nodes() []string {
	p := r.pool.Load()
	out := make([]string, 0, len(p.nodes))
	for _, n := range p.nodes {
		out = append(out, n.url)
	}
	return out
}

// ReloadNodes swaps the backend pool to exactly urls (same validation
// as Config.Nodes). Surviving nodes keep their identity — breaker
// state, epoch, sync marks, counters all carry over. Added nodes join
// OPEN when probing is live: they earn admission through the normal
// probe → half-open path, which warm-syncs them before they take reads
// (a cold joiner must not serve stale answers). Removed nodes drain
// gracefully: they leave the pool snapshot immediately — the next
// placement re-hashes their shard to survivors via rendezvous hashing —
// while requests already in flight to them complete.
//
// cmd/tsgrouter calls this from its -nodes-file watcher and on SIGHUP.
func (r *Router) ReloadNodes(urls []string) error {
	norm := make([]string, 0, len(urls))
	seen := make(map[string]bool, len(urls))
	for i, raw := range urls {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			return fmt.Errorf("cluster: reload node %d: empty URL", i)
		}
		if seen[u] {
			return fmt.Errorf("cluster: reload lists node %q twice", u)
		}
		seen[u] = true
		norm = append(norm, u)
	}
	if len(norm) == 0 {
		return errors.New("cluster: reload would empty the node pool")
	}

	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	old := r.pool.Load()
	next := &nodePool{byURL: make(map[string]*node, len(norm))}
	var added, removed []*node
	for _, u := range norm {
		if n := old.byURL[u]; n != nil {
			next.nodes = append(next.nodes, n)
			next.byURL[u] = n
			continue
		}
		n := r.newNode(r.nextNodeID, u)
		r.nextNodeID++
		if r.probeCancel != nil {
			// Probing is live: the joiner starts open and is admitted by
			// the prober like a recovered node — readmitThreshold clean
			// probes, then half-open with a background warm-sync. Backdate
			// openedAt so the cooldown dwell doesn't delay a healthy joiner.
			n.healthy.Store(false)
			n.state.Store(breakerOpen)
			n.mu.Lock()
			n.openedAt = time.Now().Add(-r.cfg.BreakerCooldown)
			n.mu.Unlock()
		}
		next.nodes = append(next.nodes, n)
		next.byURL[u] = n
		added = append(added, n)
	}
	for _, n := range old.nodes {
		if next.byURL[n.url] == nil {
			removed = append(removed, n)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		return nil // same membership (e.g. the nodes file was rewritten unchanged)
	}
	for _, n := range removed {
		n.removed.Store(true)
		n.healthy.Store(false)
		r.logf("cluster: node %d (%s) removed from pool — draining, shard re-hashes to survivors", n.id, n.url)
	}
	r.pool.Store(next)
	r.membershipReloads.Add(1)
	for _, n := range added {
		r.logf("cluster: node %d (%s) joined the pool", n.id, n.url)
		if r.probeCancel != nil {
			n := n
			r.probeWG.Add(1)
			go func() {
				defer r.probeWG.Done()
				r.probeLoop(r.probeCtx, n)
			}()
		}
	}
	return nil
}
