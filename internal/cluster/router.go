package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/obs"
	"tsg/internal/serve"
)

// Router endpoint indices, for counters and histogram labels.
const (
	rAnalyze = iota
	rSlacks
	rWhatIf
	rMC
	rUpload
	rEdit
	rFingerprint
	rEndpoints
)

var rEndpointNames = [rEndpoints]string{"analyze", "slacks", "whatif", "mc", "upload", "edit", "fingerprint"}

// Config tunes a Router. Nodes is the only required field.
type Config struct {
	// Nodes is the static backend pool: base URLs of tsgserved instances
	// (e.g. "http://127.0.0.1:7436"). Order is the stable node identity;
	// at least one is required, duplicates are rejected.
	Nodes []string

	// Replicas is each graph's replica-set size (default 2, clamped to
	// the pool size): writes pin to the first live member, reads balance
	// across all of them.
	Replicas int

	// ProbeInterval is the health-probe period per node (default 250ms).
	ProbeInterval time.Duration

	// FailThreshold ejects a node after this many consecutive failures,
	// probe or forwarded (default 3).
	FailThreshold int

	// ReadmitThreshold re-admits an ejected node after this many
	// consecutive successful probes (default 2).
	ReadmitThreshold int

	// HopTimeout bounds one forwarded backend attempt (default 15s —
	// generous because MC and cold compiles are real work; the caller's
	// request context still cuts hops short when it expires).
	HopTimeout time.Duration

	// HopRetries is the per-hop transport retry budget (default 0: the
	// router's failover across replicas IS its retry policy, and an
	// in-hop retry against a dead node only delays it).
	HopRetries int

	// MaxBodyBytes caps request bodies at the router edge (default 8 MiB,
	// matching the serve layer).
	MaxBodyBytes int64

	// JournalCompactAt bounds the per-graph edit journal: past this many
	// entries it compacts to the last writer per arc (default 65536).
	JournalCompactAt int

	// DisableObs turns off tracing and metrics (the counters behind
	// /debug/cluster stay on — they are plain atomics).
	DisableObs bool

	// TraceBuffer is the span ring size (default 4096).
	TraceBuffer int

	// Version is reported in tsgrouter_build_info.
	Version string

	// Logf, when set, receives one line per topology event (ejections,
	// re-admissions, failovers). Nil silences them.
	Logf func(format string, args ...any)

	// HTTPClient, when set, is the shared transport for all backend
	// clients (tests inject httptest transports here).
	HTTPClient *http.Client
}

func (c *Config) fillDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.HopTimeout <= 0 {
		c.HopTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JournalCompactAt <= 0 {
		c.JournalCompactAt = defaultJournalCompactAt
	}
}

// Router is the stateless distributed front end: it speaks the same
// /v1 protocol as one tsgserved, shards graphs across the backend pool
// by rendezvous-hashed fingerprint, fans reads out across each graph's
// replica set, pins writes to the primary, and keeps replicas
// convergent through its write journal. "Stateless" means: everything
// the router holds (journals, marks, health) is reconstructible from
// traffic plus the backends' own WALs — losing the router loses no
// committed state.
type Router struct {
	cfg   Config
	nodes []*node
	byURL map[string]*node
	mux   *http.ServeMux
	tel   *telemetry
	start time.Time

	// Router-stamped writes: unstamped client edits get an idempotency
	// stamp here so replication and dedupe work end to end for them too.
	clientID string
	seq      atomic.Uint64

	mu     sync.Mutex
	graphs map[string]*graphState

	queries     [rEndpoints]atomic.Uint64
	failures    atomic.Uint64
	failovers   atomic.Uint64
	syncReplays atomic.Uint64
	replOK      atomic.Uint64
	replFail    atomic.Uint64
	dedupes     atomic.Uint64
	warmSyncs   atomic.Uint64

	// lifecycleMu guards probeCancel across Start/Stop (either may be
	// called from any goroutine; Stop holds it through the drain so a
	// concurrent Start cannot Add to probeWG mid-Wait).
	lifecycleMu sync.Mutex
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
}

// New builds a Router over the configured pool. Probing starts with
// Start; until then health state is the optimistic boot value (all
// nodes routable).
func New(cfg Config) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: Config.Nodes must list at least one backend")
	}
	r := &Router{
		cfg:    cfg,
		byURL:  make(map[string]*node, len(cfg.Nodes)),
		graphs: make(map[string]*graphState),
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	var id [6]byte
	if _, err := crand.Read(id[:]); err == nil {
		r.clientID = "router-" + hex.EncodeToString(id[:])
	} else {
		r.clientID = fmt.Sprintf("router-%d", time.Now().UnixNano())
	}
	for i, raw := range cfg.Nodes {
		url := strings.TrimRight(raw, "/")
		if url == "" {
			return nil, fmt.Errorf("cluster: node %d: empty URL", i)
		}
		if _, dup := r.byURL[url]; dup {
			return nil, fmt.Errorf("cluster: node %q listed twice", url)
		}
		opts := []client.Option{client.WithRetryPolicy(client.RetryPolicy{MaxRetries: cfg.HopRetries})}
		probeOpts := []client.Option{client.WithRetryPolicy(client.RetryPolicy{})}
		if cfg.HTTPClient != nil {
			opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
			probeOpts = append(probeOpts, client.WithHTTPClient(cfg.HTTPClient))
		}
		opts = append(opts, client.WithTimeout(cfg.HopTimeout))
		probeOpts = append(probeOpts, client.WithTimeout(cfg.ProbeInterval*4))
		n := &node{
			id:          i,
			url:         url,
			cl:          client.New(url, opts...),
			probeClient: client.New(url, probeOpts...),
		}
		n.healthy.Store(true)
		r.nodes = append(r.nodes, n)
		r.byURL[url] = n
	}
	if !cfg.DisableObs {
		r.tel = newTelemetry(r, cfg.TraceBuffer, cfg.Version)
	}

	r.mux.HandleFunc("POST /v1/graphs", r.instrument(rUpload, r.handleUpload))
	r.mux.HandleFunc("POST /v1/fingerprint", r.instrument(rFingerprint, r.handleFingerprint))
	r.mux.HandleFunc("POST /v1/analyze", r.instrument(rAnalyze, r.handleRead))
	r.mux.HandleFunc("POST /v1/slacks", r.instrument(rSlacks, r.handleRead))
	r.mux.HandleFunc("POST /v1/whatif", r.instrument(rWhatIf, r.handleRead))
	r.mux.HandleFunc("POST /v1/mc", r.instrument(rMC, r.handleRead))
	r.mux.HandleFunc("POST /v1/edit", r.instrument(rEdit, r.handleEdit))
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /debug/cluster", r.handleDebugCluster)
	r.mux.HandleFunc("GET /debug/trace", r.handleDebugTrace)
	return r, nil
}

// Start launches the per-node health probe loops. Stop reverses it.
func (r *Router) Start() {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.probeCancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.probeCancel = cancel
	for _, n := range r.nodes {
		n := n
		r.probeWG.Add(1)
		go func() {
			defer r.probeWG.Done()
			r.probeLoop(ctx, n)
		}()
	}
}

// Stop halts probing and waits for the loops to exit. In-flight
// requests are not interrupted.
func (r *Router) Stop() {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.probeCancel == nil {
		return
	}
	r.probeCancel()
	r.probeCancel = nil
	r.probeWG.Wait()
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// onEject runs when a node leaves the pool: its fingerprints re-hash
// to the survivors on the next placement; nothing else to do here but
// say so.
func (r *Router) onEject(n *node) {
	r.logf("cluster: node %d (%s) ejected, epoch %d — its shard re-hashes to survivors", n.id, n.url, n.epoch.Load())
}

// onReadmit runs when the prober certifies a node healthy again: it
// rejoins placements immediately (syncs happen lazily on first
// traffic), and a background warm pass replays the journal of every
// graph now placed on it so the first real request doesn't pay the
// replay.
func (r *Router) onReadmit(n *node) {
	r.logf("cluster: node %d (%s) re-admitted — warming its shard from the journal", n.id, n.url)
	go r.warmNode(n)
}

// warmNode eagerly re-syncs every journaled graph whose current
// placement includes the node.
func (r *Router) warmNode(n *node) {
	r.mu.Lock()
	fps := make([]string, 0, len(r.graphs))
	states := make([]*graphState, 0, len(r.graphs))
	for fp, gs := range r.graphs {
		fps = append(fps, fp)
		states = append(states, gs)
	}
	r.mu.Unlock()
	live := r.liveNodes()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, fp := range fps {
		placed := false
		for _, url := range Placement(fp, live, r.cfg.Replicas) {
			if url == n.url {
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		gs := states[i]
		if err := r.sync(ctx, n, gs); err != nil {
			r.logf("cluster: warming %s on node %d: %v", fp[:minInt(12, len(fp))], n.id, err)
			return // the node is misbehaving again; the prober will notice
		}
		r.warmSyncs.Add(1)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ServeHTTP dispatches the router protocol.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// instrument wraps a /v1 handler with the edge bookkeeping every
// endpoint shares: body cap, request counter, root span.
func (r *Router) instrument(ep int, fn func(ctx context.Context, w http.ResponseWriter, req *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		r.queries[ep].Add(1)
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		ctx := req.Context()
		if r.tel != nil {
			var sp *obs.Span
			ctx, sp = r.tel.tracer.StartRoot(ctx, r.tel.rootNames[ep])
			defer sp.End()
		}
		fn(ctx, w, req)
	}
}

// --- response plumbing ---------------------------------------------------

const retryAfterSeconds = "1"

func (r *Router) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (r *Router) writeErrorStatus(w http.ResponseWriter, status int, msg string) {
	if status/100 != 2 {
		r.failures.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: msg})
}

// writeBackendError maps a forwarding failure to the edge status: a
// backend's own HTTP answer passes through verbatim (with its
// Retry-After hint), an exhausted-overload becomes 503, a transport
// failure becomes 502.
func (r *Router) writeBackendError(w http.ResponseWriter, err error) {
	var api *client.APIError
	if errors.As(err, &api) {
		if api.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(api.RetryAfter/time.Second)))
		}
		r.writeErrorStatus(w, api.Status, api.Msg)
		return
	}
	var un *client.UnreachableError
	if errors.As(err, &un) {
		r.writeErrorStatus(w, http.StatusBadGateway, "backend unreachable: "+un.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		r.writeErrorStatus(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	r.writeErrorStatus(w, http.StatusBadGateway, err.Error())
}

// decodeJSON mirrors the serve layer's decode contract: bad syntax,
// wrong shape, trailing garbage, and oversized bodies all answer the
// right 4xx instead of leaking a 500.
func (r *Router) decodeJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(req.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.writeErrorStatus(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		r.writeErrorStatus(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	if dec.More() {
		r.writeErrorStatus(w, http.StatusBadRequest, "decoding request: trailing data after JSON value")
		return false
	}
	return true
}

// readGraphText extracts .tsg text from an upload/fingerprint body:
// raw text by default, {"graph": "..."} when the Content-Type says
// JSON (the serve layer accepts both; the router must too).
func (r *Router) readGraphText(w http.ResponseWriter, req *http.Request) (string, bool) {
	if ct := req.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var body struct {
			Graph string `json:"graph"`
		}
		if !r.decodeJSON(w, req, &body) {
			return "", false
		}
		if body.Graph == "" {
			r.writeErrorStatus(w, http.StatusBadRequest, `JSON upload body must carry a non-empty "graph" field`)
			return "", false
		}
		return body.Graph, true
	}
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.writeErrorStatus(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return "", false
		}
		r.writeErrorStatus(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return "", false
	}
	if len(raw) == 0 {
		r.writeErrorStatus(w, http.StatusBadRequest, "empty graph body")
		return "", false
	}
	return string(raw), true
}

// --- placement and forwarding --------------------------------------------

// errNoReplicas is the all-backends-down answer.
var errNoReplicas = errors.New("no live replica for this graph")

// replicaSet resolves the fingerprint's current replica nodes: the
// rendezvous placement over the LIVE pool, so a dead node's
// fingerprints are already re-hashed to survivors by construction.
func (r *Router) replicaSet(ctx context.Context, fp string) []*node {
	live := r.liveNodes()
	if len(live) == 0 {
		return nil
	}
	sp := obs.LeafN(ctx, nameRoute)
	placed := Placement(fp, live, r.cfg.Replicas)
	out := make([]*node, 0, len(placed))
	for _, url := range placed {
		if n := r.nodeByURL(url); n != nil {
			out = append(out, n)
		}
	}
	sp.AnnotateN(keyReplicas, uint64(len(out)))
	sp.End()
	return out
}

// orderForRead returns the replica set in read-preference order:
// power-of-two-choices on in-flight counts picks the first target, the
// rest queue as failover candidates in placement order.
func orderForRead(replicas []*node) []*node {
	if len(replicas) <= 1 {
		return replicas
	}
	i := mrand.Intn(len(replicas))
	j := mrand.Intn(len(replicas) - 1)
	if j >= i {
		j++
	}
	if replicas[j].inflight.Load() < replicas[i].inflight.Load() {
		i = j
	}
	out := make([]*node, 0, len(replicas))
	out = append(out, replicas[i])
	for k, n := range replicas {
		if k != i {
			out = append(out, n)
		}
	}
	return out
}

// forwardRead runs one read against the replica set with failover:
// sync the target if the journal says it is behind, forward, and on a
// backend failure demote it and move to the next replica. A 4xx from a
// backend is a genuine answer and passes through — except a 404 for a
// graph the router holds journaled text for, which means the node
// silently lost state: its mark is voided, it is re-synced once, and
// the request retried on it before falling over.
func (r *Router) forwardRead(ctx context.Context, gs *graphState, replicas []*node, call func(context.Context, *node) (any, error)) (any, error) {
	var lastErr error
	for attempt, n := range orderForRead(replicas) {
		if attempt > 0 {
			r.failovers.Add(1)
		}
		if gs != nil {
			if syncErr := r.sync(ctx, n, gs); syncErr != nil {
				lastErr = syncErr
				n.noteFailure(r.cfg.FailThreshold, r.onEject)
				continue
			}
		}
		res, err := r.hop(ctx, n, attempt > 0, call)
		if err == nil {
			return res, nil
		}
		lastErr = err
		var api *client.APIError
		if errors.As(err, &api) && api.Status/100 == 4 {
			if api.Status == http.StatusNotFound && gs != nil && gs.hasText() {
				// The node answered "unknown graph" for a graph the router
				// gave it: it lost state without an ejection (e.g. restarted
				// non-durable). Re-push and retry it once.
				gs.mu.Lock()
				gs.invalidateMarkLocked(n)
				gs.mu.Unlock()
				if syncErr := r.sync(ctx, n, gs); syncErr == nil {
					if res, err := r.hop(ctx, n, true, call); err == nil {
						return res, nil
					} else {
						lastErr = err
					}
				}
				n.noteFailure(r.cfg.FailThreshold, r.onEject)
				continue
			}
			return nil, err // a genuine 4xx answer: pass through
		}
		n.noteFailure(r.cfg.FailThreshold, r.onEject)
	}
	if lastErr == nil {
		lastErr = errNoReplicas
	}
	return nil, lastErr
}

// hop forwards one call to one node, with the inflight/latency
// bookkeeping the balancer and telemetry feed on.
func (r *Router) hop(ctx context.Context, n *node, failover bool, call func(context.Context, *node) (any, error)) (any, error) {
	sp := obs.LeafN(ctx, nameHop)
	sp.AnnotateN(keyNode, uint64(n.id))
	if failover {
		sp.SetTierN(tierFailover)
	}
	n.inflight.Add(1)
	t0 := time.Now()
	res, err := call(ctx, n)
	dt := time.Since(t0)
	n.inflight.Add(-1)
	sp.End()
	if r.tel != nil {
		r.tel.hopDurNd[n.id].Observe(dt.Seconds())
	}
	if err == nil {
		n.noteSuccess()
	}
	return res, err
}

func (gs *graphState) hasText() bool {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.text != ""
}

// resolveRef turns a request's GraphRef into (fingerprint, forwardRef,
// graphState): inline text is fingerprinted locally, journaled (first
// sight becomes the replication baseline), and rewritten to a
// by-fingerprint reference so every backend hop is cheap and the
// replica set is well defined.
//
// Fingerprint-only references allocate state only when create is set
// (the write path needs the journal lock); the read path passes false
// and gets nil for a fingerprint the router never journaled, so bogus
// or unknown fingerprints cannot grow r.graphs.
func (r *Router) resolveRef(w http.ResponseWriter, ref serve.GraphRef, create bool) (string, serve.GraphRef, *graphState, bool) {
	if ref.Graph != "" {
		fp, events, arcs, border, err := serve.FingerprintText(ref.Graph)
		if err != nil {
			r.writeErrorStatus(w, http.StatusBadRequest, err.Error())
			return "", serve.GraphRef{}, nil, false
		}
		gs := r.lockGraph(fp)
		if gs.text == "" {
			gs.text = ref.Graph
			gs.events, gs.arcs, gs.border = events, arcs, border
		}
		gs.mu.Unlock()
		gs.requests.Add(1)
		return fp, serve.GraphRef{Fingerprint: fp}, gs, true
	}
	if ref.Fingerprint == "" {
		r.writeErrorStatus(w, http.StatusBadRequest, "request must reference a graph by inline text or fingerprint")
		return "", serve.GraphRef{}, nil, false
	}
	var gs *graphState
	if create {
		gs = r.graph(ref.Fingerprint)
	} else {
		gs = r.lookupGraph(ref.Fingerprint)
	}
	if gs != nil {
		gs.requests.Add(1)
	}
	return ref.Fingerprint, ref, gs, true
}

// --- handlers -------------------------------------------------------------

// handleUpload fans a graph upload out to every replica: each backend
// compiles (or finds cached) the engine and appends the graph to its
// own WAL, so each replica warm-restarts from local state alone. The
// upload succeeds if the primary-side quorum is at least one node; the
// journal re-pushes it to any replica that missed it.
func (r *Router) handleUpload(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	text, ok := r.readGraphText(w, req)
	if !ok {
		return
	}
	fp, events, arcs, border, err := serve.FingerprintText(text)
	if err != nil {
		r.writeErrorStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	gs := r.lockGraph(fp)
	if gs.text == "" {
		gs.text = text
		gs.events, gs.arcs, gs.border = events, arcs, border
	}
	gs.mu.Unlock()
	gs.requests.Add(1)
	// Fan the body out to every replica OUTSIDE the journal lock: a
	// slow compile on one replica must not stall this graph's readers.
	replicas := r.replicaSet(ctx, fp)
	sp := obs.LeafN(ctx, nameFanout)
	sp.AnnotateN(keyReplicas, uint64(len(replicas)))
	okCount := 0
	var lastErr error
	for _, n := range replicas {
		if err := r.sync(ctx, n, gs); err != nil {
			lastErr = err
			n.noteFailure(r.cfg.FailThreshold, r.onEject)
			continue
		}
		n.noteSuccess()
		okCount++
	}
	sp.End()
	if okCount == 0 {
		if lastErr == nil {
			lastErr = errNoReplicas
		}
		r.writeBackendErrorUnavailable(w, lastErr)
		return
	}
	r.writeJSON(w, serve.UploadResponse{Fingerprint: fp, Events: events, Arcs: arcs, Border: border})
}

// writeBackendErrorUnavailable is writeBackendError, except that
// transport-level failures surface as 503 + Retry-After (the
// cluster-level "all replicas down, try again shortly" answer) rather
// than 502.
func (r *Router) writeBackendErrorUnavailable(w http.ResponseWriter, err error) {
	var api *client.APIError
	if errors.As(err, &api) && api.Status/100 == 4 {
		r.writeBackendError(w, err)
		return
	}
	r.writeErrorStatus(w, http.StatusServiceUnavailable, "no replica could serve the request: "+err.Error())
}

// handleFingerprint answers the placement primitive locally: the
// router can fingerprint without any backend (same parse-only path as
// the serve layer's /v1/fingerprint).
func (r *Router) handleFingerprint(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	text, ok := r.readGraphText(w, req)
	if !ok {
		return
	}
	fp, events, arcs, border, err := serve.FingerprintText(text)
	if err != nil {
		r.writeErrorStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	r.writeJSON(w, serve.FingerprintResponse{Fingerprint: fp, Events: events, Arcs: arcs, Border: border})
}

// handleRead serves analyze/slacks/whatif/mc: resolve the replica set
// from the fingerprint, balance by power-of-two-choices, fail over on
// backend failure.
func (r *Router) handleRead(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	var (
		call func(ref serve.GraphRef) func(context.Context, *node) (any, error)
		ref  serve.GraphRef
	)
	switch req.URL.Path {
	case "/v1/analyze":
		var body serve.AnalyzeRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.Analyze(ctx, ref) }
		}
	case "/v1/slacks":
		var body serve.SlacksRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.Slacks(ctx, ref) }
		}
	case "/v1/whatif":
		var body serve.WhatIfRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		queries := body.Queries
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.WhatIf(ctx, ref, queries) }
		}
	case "/v1/mc":
		var body serve.MCRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		mcReq := body
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.MC(ctx, ref, mcReq) }
		}
	default:
		r.writeErrorStatus(w, http.StatusNotFound, "unknown read endpoint")
		return
	}

	fp, fwdRef, gs, ok := r.resolveRef(w, ref, false)
	if !ok {
		return
	}
	replicas := r.replicaSet(ctx, fp)
	if len(replicas) == 0 {
		r.writeErrorStatus(w, http.StatusServiceUnavailable, "no live backend nodes")
		return
	}
	res, err := r.forwardRead(ctx, gs, replicas, call(fwdRef))
	if err != nil {
		r.writeBackendErrorUnavailable(w, err)
		return
	}
	r.writeJSON(w, res)
}

// handleEdit is the write path: stamp if the client didn't, dedupe
// against the router's exactly-once table, commit on the graph's
// primary (first live replica — falling over to the secondary after a
// journal replay brings it current), journal the accepted write, then
// replicate it to the rest of the replica set. Writes to one graph are
// serialized under its journal lock; that order IS the replication
// order, so replicas converge to bit-identical state.
func (r *Router) handleEdit(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	var body serve.EditRequest
	if !r.decodeJSON(w, req, &body) {
		return
	}
	fp, fwdRef, _, ok := r.resolveRef(w, body.GraphRef, true)
	if !ok {
		return
	}
	body.GraphRef = fwdRef

	replicas := r.replicaSet(ctx, fp)
	if len(replicas) == 0 {
		r.writeErrorStatus(w, http.StatusServiceUnavailable, "no live backend nodes")
		return
	}

	// The journal lock serializes this graph's writes end to end:
	// stamp, dedupe, primary commit, and journal append all happen
	// under one hold, so journal order IS primary commit order.
	gs := r.lockGraph(fp)
	if body.Client == "" {
		// Unstamped edit: stamp it so journal replay stays idempotent on
		// the backends for this write too. The stamp MUST be taken under
		// the journal lock — two concurrent unstamped edits otherwise
		// race their seq assignment against commit order, and the
		// lower-seq edit committing second would be falsely deduped by
		// the high-water check below (silently never applied).
		body.Client = r.clientID
		body.Seq = r.seq.Add(1)
	} else if body.Seq <= gs.maxSeq[body.Client] {
		gs.mu.Unlock()
		r.dedupeAnswer(ctx, w, gs, replicas, fp)
		return
	}

	// Commit on the primary; a dead primary fails over down the replica
	// set. syncLocked first, so the node the edit lands on holds the
	// full session state the edit composes with (WAL-backed replay).
	var (
		resp           *client.EditResponse
		commitErr      error
		committed      *node
		committedEpoch uint64
	)
	for attempt, n := range replicas {
		if attempt > 0 {
			r.failovers.Add(1)
		}
		// Capture the epoch before the hop: if the node is ejected while
		// the edit is in flight, a mark recorded under the pre-hop epoch
		// is void by construction, rather than wrongly certifying a
		// possibly state-lost node under its post-ejection epoch.
		ep := n.epoch.Load()
		if gs.text != "" {
			if err := r.syncLocked(ctx, n, gs); err != nil {
				commitErr = err
				n.noteFailure(r.cfg.FailThreshold, r.onEject)
				continue
			}
		}
		res, err := r.hop(ctx, n, attempt > 0, func(ctx context.Context, n *node) (any, error) {
			return n.cl.EditStamped(ctx, body)
		})
		if err == nil {
			resp = res.(*client.EditResponse)
			committed = n
			committedEpoch = ep
			break
		}
		commitErr = err
		var api *client.APIError
		if errors.As(err, &api) && api.Status/100 == 4 {
			gs.mu.Unlock()
			r.dropIfPristine(fp, gs)
			r.writeBackendError(w, err) // genuine answer: the edit is invalid
			return
		}
		n.noteFailure(r.cfg.FailThreshold, r.onEject)
	}
	if resp == nil {
		gs.mu.Unlock()
		r.dropIfPristine(fp, gs)
		r.writeBackendErrorUnavailable(w, commitErr)
		return
	}

	// The write is committed: journal it and advance the committing
	// node's mark under the same hold that ordered the commit.
	version := gs.appendWriteLocked(&body, r.cfg.JournalCompactAt)
	gs.marks[committed.id] = syncMark{epoch: committedEpoch, version: version}
	gs.mu.Unlock()

	// Push it to the remaining replicas OUTSIDE the lock: sync replays
	// the journal from each node's watermark in journal order, so a
	// slow replica stalls neither this graph's readers nor its next
	// writer.
	sp := obs.LeafN(ctx, nameFanout)
	sp.AnnotateN(keyReplicas, uint64(len(replicas)))
	for _, n := range replicas {
		if n == committed {
			continue
		}
		if err := r.sync(ctx, n, gs); err != nil {
			r.replFail.Add(1)
			n.noteFailure(r.cfg.FailThreshold, r.onEject)
			continue
		}
		r.replOK.Add(1)
	}
	sp.End()
	r.writeJSON(w, resp)
}

// dedupeAnswer acknowledges a write the router already committed (the
// stamp is at or below the client's high-water mark): the backends may
// have compacted the original journal record away, so the answer is
// synthesized — current λ from a replica, Deduped set, nothing
// re-applied. This is exactly the answer a backend's own dedupe table
// gives for an in-journal duplicate.
func (r *Router) dedupeAnswer(ctx context.Context, w http.ResponseWriter, gs *graphState, replicas []*node, fp string) {
	r.dedupes.Add(1)
	if sp := obs.FromContext(ctx); sp != nil {
		sp.SetTierN(tierDeduped)
	}
	ref := serve.GraphRef{Fingerprint: fp}
	res, err := r.forwardRead(ctx, gs, replicas, func(ctx context.Context, n *node) (any, error) {
		return n.cl.Analyze(ctx, ref)
	})
	if err != nil {
		r.writeBackendErrorUnavailable(w, err)
		return
	}
	an := res.(*client.AnalyzeResponse)
	r.writeJSON(w, serve.EditResponse{Fingerprint: fp, Applied: 0, Deduped: true, Lambda: an.Lambda})
}

// handleHealthz reports router liveness: OK while at least one backend
// is routable (a router with zero live nodes answers 503 so load
// balancers above it can fail over too).
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	live := len(r.liveNodes())
	r.mu.Lock()
	graphs := len(r.graphs)
	r.mu.Unlock()
	resp := serve.HealthResponse{OK: live > 0, Graphs: graphs, UptimeSec: time.Since(r.start).Seconds()}
	if !resp.OK {
		w.Header().Set("Retry-After", retryAfterSeconds)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	r.writeJSON(w, resp)
}

// ClusterNodeStatus is one backend's row in /debug/cluster.
type ClusterNodeStatus struct {
	ID        int    `json:"id"`
	URL       string `json:"url"`
	Healthy   bool   `json:"healthy"`
	Epoch     uint64 `json:"epoch"`
	Inflight  int64  `json:"inflight"`
	Requests  uint64 `json:"requests"`
	Failures  uint64 `json:"failures"`
	Ejections uint64 `json:"ejections"`
}

// ClusterGraphStatus is one journaled graph's row in /debug/cluster.
type ClusterGraphStatus struct {
	Fingerprint string   `json:"fingerprint"`
	Version     uint64   `json:"version"`
	JournalLen  int      `json:"journal_len"`
	Compactions int      `json:"compactions"`
	Requests    uint64   `json:"requests"`
	Replicas    []string `json:"replicas"`
	Synced      []string `json:"synced"`
}

// ClusterStatus is the /debug/cluster body.
type ClusterStatus struct {
	Nodes     []ClusterNodeStatus  `json:"nodes"`
	Graphs    []ClusterGraphStatus `json:"graphs"`
	Failovers uint64               `json:"failovers"`
	Dedupes   uint64               `json:"dedupe_hits"`
	WarmSyncs uint64               `json:"warm_syncs"`
	Replicas  int                  `json:"replicas"`
}

// handleDebugCluster snapshots the router's live topology view:
// node health, per-graph placement and sync watermarks.
func (r *Router) handleDebugCluster(w http.ResponseWriter, req *http.Request) {
	st := ClusterStatus{
		Failovers: r.failovers.Load(),
		Dedupes:   r.dedupes.Load(),
		WarmSyncs: r.warmSyncs.Load(),
		Replicas:  r.cfg.Replicas,
	}
	for _, n := range r.nodes {
		st.Nodes = append(st.Nodes, ClusterNodeStatus{
			ID: n.id, URL: n.url, Healthy: n.healthy.Load(), Epoch: n.epoch.Load(),
			Inflight: n.inflight.Load(), Requests: n.requests.Load(),
			Failures: n.failures.Load(), Ejections: n.ejections.Load(),
		})
	}
	live := r.liveNodes()
	r.mu.Lock()
	fps := make([]string, 0, len(r.graphs))
	states := make([]*graphState, 0, len(r.graphs))
	for fp, gs := range r.graphs {
		fps = append(fps, fp)
		states = append(states, gs)
	}
	r.mu.Unlock()
	for i, fp := range fps {
		gs := states[i]
		gs.mu.Lock()
		row := ClusterGraphStatus{
			Fingerprint: fp,
			Version:     gs.version,
			JournalLen:  len(gs.edits),
			Compactions: gs.compactions,
			Requests:    gs.requests.Load(),
			Replicas:    Placement(fp, live, r.cfg.Replicas),
		}
		for _, n := range r.nodes {
			if gs.syncedLocked(n) {
				row.Synced = append(row.Synced, n.url)
			}
		}
		gs.mu.Unlock()
		st.Graphs = append(st.Graphs, row)
	}
	r.writeJSON(w, st)
}
