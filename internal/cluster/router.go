package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/obs"
	"tsg/internal/serve"
)

// Router endpoint indices, for counters and histogram labels.
const (
	rAnalyze = iota
	rSlacks
	rWhatIf
	rMC
	rUpload
	rEdit
	rFingerprint
	rEndpoints
)

var rEndpointNames = [rEndpoints]string{"analyze", "slacks", "whatif", "mc", "upload", "edit", "fingerprint"}

// Config tunes a Router. Nodes is the only required field.
type Config struct {
	// Nodes is the static backend pool: base URLs of tsgserved instances
	// (e.g. "http://127.0.0.1:7436"). Order is the stable node identity;
	// at least one is required, duplicates are rejected.
	Nodes []string

	// Replicas is each graph's replica-set size (default 2, clamped to
	// the pool size): writes pin to the first live member, reads balance
	// across all of them.
	Replicas int

	// ProbeInterval is the health-probe period per node (default 250ms).
	ProbeInterval time.Duration

	// FailThreshold ejects a node after this many consecutive failures,
	// probe or forwarded (default 3).
	FailThreshold int

	// ReadmitThreshold re-admits an ejected node after this many
	// consecutive successful probes (default 2). Re-admission lands the
	// breaker in half-open, not closed: BreakerCloseAfter further
	// successes finish recovery, one failure re-opens it.
	ReadmitThreshold int

	// BreakerThreshold trips a node's circuit breaker after this many
	// consecutive FORWARDED-REQUEST failures (default FailThreshold-1,
	// min 1 — deliberately tighter than the mixed probe threshold).
	// Probe successes never clear this streak: under an asymmetric
	// partition the probe path can stay perfect while every request
	// dies, and probes must not absolve request failures.
	BreakerThreshold int

	// BreakerCooldown is the minimum time a tripped breaker stays open
	// before clean probes can move it to half-open (default
	// 2×ProbeInterval): a flapping node pays a dwell between trips
	// instead of oscillating every probe round.
	BreakerCooldown time.Duration

	// BreakerCloseAfter closes a half-open breaker after this many
	// consecutive successes, probe or trial request (default 2).
	BreakerCloseAfter int

	// DisableHedge turns off hedged reads (reads fall back to pure
	// sequential failover; useful as an ablation and in experiments).
	DisableHedge bool

	// HedgeFrac is the hedge budget's per-read credit (default 0.05:
	// hedged attempts are bounded at ~5% of read traffic).
	HedgeFrac float64

	// RetryBudgetFrac is the retry budget's per-request credit (default
	// 0.1: failover/retry attempts beyond the first are bounded at ~10%
	// of traffic, so a partial outage cannot snowball into a retry
	// storm).
	RetryBudgetFrac float64

	// HopTimeout bounds one forwarded backend attempt (default 15s —
	// generous because MC and cold compiles are real work; the caller's
	// request context still cuts hops short when it expires).
	HopTimeout time.Duration

	// HopRetries is the per-hop transport retry budget (default 0: the
	// router's failover across replicas IS its retry policy, and an
	// in-hop retry against a dead node only delays it).
	HopRetries int

	// MaxBodyBytes caps request bodies at the router edge (default 8 MiB,
	// matching the serve layer).
	MaxBodyBytes int64

	// JournalCompactAt bounds the per-graph edit journal: past this many
	// entries it compacts to the last writer per arc (default 65536).
	JournalCompactAt int

	// DisableObs turns off tracing and metrics (the counters behind
	// /debug/cluster stay on — they are plain atomics).
	DisableObs bool

	// TraceBuffer is the span ring size (default 4096).
	TraceBuffer int

	// Version is reported in tsgrouter_build_info.
	Version string

	// Logf, when set, receives one line per topology event (ejections,
	// re-admissions, failovers). Nil silences them.
	Logf func(format string, args ...any)

	// HTTPClient, when set, is the shared transport for all backend
	// clients (tests inject httptest transports here).
	HTTPClient *http.Client
}

func (c *Config) fillDefaults() {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.ReadmitThreshold <= 0 {
		c.ReadmitThreshold = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = c.FailThreshold - 1
		if c.BreakerThreshold < 1 {
			c.BreakerThreshold = 1
		}
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * c.ProbeInterval
	}
	if c.BreakerCloseAfter <= 0 {
		c.BreakerCloseAfter = 2
	}
	if c.HedgeFrac <= 0 || c.HedgeFrac > 1 {
		c.HedgeFrac = 0.05
	}
	if c.RetryBudgetFrac <= 0 || c.RetryBudgetFrac > 1 {
		c.RetryBudgetFrac = 0.1
	}
	if c.HopTimeout <= 0 {
		c.HopTimeout = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JournalCompactAt <= 0 {
		c.JournalCompactAt = defaultJournalCompactAt
	}
}

// Router is the stateless distributed front end: it speaks the same
// /v1 protocol as one tsgserved, shards graphs across the backend pool
// by rendezvous-hashed fingerprint, fans reads out across each graph's
// replica set, pins writes to the primary, and keeps replicas
// convergent through its write journal. "Stateless" means: everything
// the router holds (journals, marks, health) is reconstructible from
// traffic plus the backends' own WALs — losing the router loses no
// committed state.
type Router struct {
	cfg   Config
	pool  atomic.Pointer[nodePool] // copy-on-write membership snapshot
	mux   *http.ServeMux
	tel   *telemetry
	start time.Time

	// lat is the router-wide successful-hop latency digest the adaptive
	// hedge delay derives from.
	lat latencyDigest

	// retryBudget bounds attempts beyond the first (failover, resync
	// retries); hedgeBudget bounds hedge launches. See budget.go.
	retryBudget *tokenBucket
	hedgeBudget *tokenBucket

	// Router-stamped writes: unstamped client edits get an idempotency
	// stamp here so replication and dedupe work end to end for them too.
	clientID string
	seq      atomic.Uint64

	mu     sync.Mutex
	graphs map[string]*graphState

	queries           [rEndpoints]atomic.Uint64
	failures          atomic.Uint64
	failovers         atomic.Uint64
	syncReplays       atomic.Uint64
	replOK            atomic.Uint64
	replFail          atomic.Uint64
	dedupes           atomic.Uint64
	warmSyncs         atomic.Uint64
	hedgeAttempts     atomic.Uint64
	hedgeWins         atomic.Uint64
	hedgeDenied       atomic.Uint64
	retryDenied       atomic.Uint64
	membershipReloads atomic.Uint64

	// lifecycleMu guards probeCancel/probeCtx/nextNodeID across
	// Start/Stop/ReloadNodes (any may be called from any goroutine; Stop
	// holds it through the drain so a concurrent Start cannot Add to
	// probeWG mid-Wait).
	lifecycleMu sync.Mutex
	probeCancel context.CancelFunc
	probeCtx    context.Context
	probeWG     sync.WaitGroup
	nextNodeID  int
}

// New builds a Router over the configured pool. Probing starts with
// Start; until then health state is the optimistic boot value (all
// nodes routable).
func New(cfg Config) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("cluster: Config.Nodes must list at least one backend")
	}
	r := &Router{
		cfg:         cfg,
		graphs:      make(map[string]*graphState),
		mux:         http.NewServeMux(),
		start:       time.Now(),
		retryBudget: newTokenBucket(20, cfg.RetryBudgetFrac),
		hedgeBudget: newTokenBucket(8, cfg.HedgeFrac),
	}
	var id [6]byte
	if _, err := crand.Read(id[:]); err == nil {
		r.clientID = "router-" + hex.EncodeToString(id[:])
	} else {
		r.clientID = fmt.Sprintf("router-%d", time.Now().UnixNano())
	}
	if !cfg.DisableObs {
		// Telemetry first: newNode attaches each node's hop histogram.
		// The registry closures read r.pool lazily at scrape time.
		r.tel = newTelemetry(r, cfg.TraceBuffer, cfg.Version)
	}
	p := &nodePool{byURL: make(map[string]*node, len(cfg.Nodes))}
	for i, raw := range cfg.Nodes {
		url := strings.TrimRight(raw, "/")
		if url == "" {
			return nil, fmt.Errorf("cluster: node %d: empty URL", i)
		}
		if _, dup := p.byURL[url]; dup {
			return nil, fmt.Errorf("cluster: node %q listed twice", url)
		}
		n := r.newNode(r.nextNodeID, url)
		r.nextNodeID++
		p.nodes = append(p.nodes, n)
		p.byURL[url] = n
	}
	r.pool.Store(p)

	r.mux.HandleFunc("POST /v1/graphs", r.instrument(rUpload, r.handleUpload))
	r.mux.HandleFunc("POST /v1/fingerprint", r.instrument(rFingerprint, r.handleFingerprint))
	r.mux.HandleFunc("POST /v1/analyze", r.instrument(rAnalyze, r.handleRead))
	r.mux.HandleFunc("POST /v1/slacks", r.instrument(rSlacks, r.handleRead))
	r.mux.HandleFunc("POST /v1/whatif", r.instrument(rWhatIf, r.handleRead))
	r.mux.HandleFunc("POST /v1/mc", r.instrument(rMC, r.handleRead))
	r.mux.HandleFunc("POST /v1/edit", r.instrument(rEdit, r.handleEdit))
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	r.mux.HandleFunc("GET /debug/cluster", r.handleDebugCluster)
	r.mux.HandleFunc("GET /debug/trace", r.handleDebugTrace)
	return r, nil
}

// newNode builds one pool member (boot state: closed breaker, healthy —
// a router must be routable before its first probe round completes).
// Callers hand out monotonically increasing ids so a node removed and
// later re-added never aliases stale sync marks.
func (r *Router) newNode(id int, url string) *node {
	opts := []client.Option{client.WithRetryPolicy(client.RetryPolicy{MaxRetries: r.cfg.HopRetries})}
	probeOpts := []client.Option{client.WithRetryPolicy(client.RetryPolicy{})}
	if r.cfg.HTTPClient != nil {
		opts = append(opts, client.WithHTTPClient(r.cfg.HTTPClient))
		probeOpts = append(probeOpts, client.WithHTTPClient(r.cfg.HTTPClient))
	}
	opts = append(opts, client.WithTimeout(r.cfg.HopTimeout))
	probeOpts = append(probeOpts, client.WithTimeout(r.cfg.ProbeInterval*4))
	n := &node{
		id:          id,
		url:         url,
		cl:          client.New(url, opts...),
		probeClient: client.New(url, probeOpts...),
	}
	n.healthy.Store(true)
	n.lastTransition.Store(time.Now().UnixNano())
	if r.tel != nil {
		n.hopDur = r.tel.hopDur.With(strconv.Itoa(id))
	}
	return n
}

// Start launches the per-node health probe loops. Stop reverses it.
func (r *Router) Start() {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.probeCancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.probeCancel = cancel
	r.probeCtx = ctx
	for _, n := range r.pool.Load().nodes {
		n := n
		r.probeWG.Add(1)
		go func() {
			defer r.probeWG.Done()
			r.probeLoop(ctx, n)
		}()
	}
}

// Stop halts probing and waits for the loops to exit. In-flight
// requests are not interrupted.
func (r *Router) Stop() {
	r.lifecycleMu.Lock()
	defer r.lifecycleMu.Unlock()
	if r.probeCancel == nil {
		return
	}
	r.probeCancel()
	r.probeCancel = nil
	r.probeCtx = nil
	r.probeWG.Wait()
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// onEject runs when a node's breaker trips open: it leaves every
// placement (fingerprints re-hash to the survivors on the next
// request); nothing else to do here but say so.
func (r *Router) onEject(n *node) {
	r.logf("cluster: node %d (%s) breaker OPEN, epoch %d — its shard re-hashes to survivors", n.id, n.url, n.epoch.Load())
}

// onReadmit runs when the prober moves an open breaker to half-open:
// the node rejoins placements immediately (per-read syncs keep
// correctness regardless), and a background warm pass replays the
// journal of every graph now placed on it so the first real request
// doesn't pay the replay.
func (r *Router) onReadmit(n *node) {
	r.logf("cluster: node %d (%s) breaker HALF-OPEN — warming its shard from the journal", n.id, n.url)
	go r.warmNode(n)
}

// onClose runs when a half-open breaker accumulates enough successes.
func (r *Router) onClose(n *node) {
	r.logf("cluster: node %d (%s) breaker CLOSED — fully recovered", n.id, n.url)
}

// warmNode eagerly re-syncs every journaled graph whose current
// placement includes the node.
func (r *Router) warmNode(n *node) {
	r.mu.Lock()
	fps := make([]string, 0, len(r.graphs))
	states := make([]*graphState, 0, len(r.graphs))
	for fp, gs := range r.graphs {
		fps = append(fps, fp)
		states = append(states, gs)
	}
	r.mu.Unlock()
	live := r.liveNodes()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i, fp := range fps {
		placed := false
		for _, url := range Placement(fp, live, r.cfg.Replicas) {
			if url == n.url {
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		gs := states[i]
		if err := r.sync(ctx, n, gs); err != nil {
			r.logf("cluster: warming %s on node %d: %v", fp[:minInt(12, len(fp))], n.id, err)
			return // the node is misbehaving again; the prober will notice
		}
		r.warmSyncs.Add(1)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ServeHTTP dispatches the router protocol.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// instrument wraps a /v1 handler with the edge bookkeeping every
// endpoint shares: body cap, request counter, root span.
func (r *Router) instrument(ep int, fn func(ctx context.Context, w http.ResponseWriter, req *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		r.queries[ep].Add(1)
		r.retryBudget.credit() // every request earns back a slice of retry budget
		req.Body = http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes)
		ctx := req.Context()
		if r.tel != nil {
			var sp *obs.Span
			ctx, sp = r.tel.tracer.StartRoot(ctx, r.tel.rootNames[ep])
			defer sp.End()
		}
		fn(ctx, w, req)
	}
}

// --- response plumbing ---------------------------------------------------

const retryAfterSeconds = "1"

func (r *Router) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (r *Router) writeErrorStatus(w http.ResponseWriter, status int, msg string) {
	if status/100 != 2 {
		r.failures.Add(1)
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: msg})
}

// writeBackendError maps a forwarding failure to the edge status: a
// backend's own HTTP answer passes through verbatim (with its
// Retry-After hint), an exhausted-overload becomes 503, a transport
// failure becomes 502.
func (r *Router) writeBackendError(w http.ResponseWriter, err error) {
	var api *client.APIError
	if errors.As(err, &api) {
		if api.RetryAfter > 0 {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(api.RetryAfter/time.Second)))
		}
		r.writeErrorStatus(w, api.Status, api.Msg)
		return
	}
	var un *client.UnreachableError
	if errors.As(err, &un) {
		r.writeErrorStatus(w, http.StatusBadGateway, "backend unreachable: "+un.Error())
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		r.writeErrorStatus(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	r.writeErrorStatus(w, http.StatusBadGateway, err.Error())
}

// decodeJSON mirrors the serve layer's decode contract: bad syntax,
// wrong shape, trailing garbage, and oversized bodies all answer the
// right 4xx instead of leaking a 500.
func (r *Router) decodeJSON(w http.ResponseWriter, req *http.Request, v any) bool {
	dec := json.NewDecoder(req.Body)
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.writeErrorStatus(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		r.writeErrorStatus(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	if dec.More() {
		r.writeErrorStatus(w, http.StatusBadRequest, "decoding request: trailing data after JSON value")
		return false
	}
	return true
}

// readGraphText extracts .tsg text from an upload/fingerprint body:
// raw text by default, {"graph": "..."} when the Content-Type says
// JSON (the serve layer accepts both; the router must too).
func (r *Router) readGraphText(w http.ResponseWriter, req *http.Request) (string, bool) {
	if ct := req.Header.Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		var body struct {
			Graph string `json:"graph"`
		}
		if !r.decodeJSON(w, req, &body) {
			return "", false
		}
		if body.Graph == "" {
			r.writeErrorStatus(w, http.StatusBadRequest, `JSON upload body must carry a non-empty "graph" field`)
			return "", false
		}
		return body.Graph, true
	}
	raw, err := io.ReadAll(req.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			r.writeErrorStatus(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return "", false
		}
		r.writeErrorStatus(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return "", false
	}
	if len(raw) == 0 {
		r.writeErrorStatus(w, http.StatusBadRequest, "empty graph body")
		return "", false
	}
	return string(raw), true
}

// --- placement and forwarding --------------------------------------------

// errNoReplicas is the all-backends-down answer.
var errNoReplicas = errors.New("no live replica for this graph")

// errBreakerBusy reports a half-open replica already running its one
// allowed trial request.
var errBreakerBusy = errors.New("replica breaker half-open with a trial in flight")

// replicaSet resolves the fingerprint's current replica nodes: the
// rendezvous placement over the LIVE pool, so a dead node's
// fingerprints are already re-hashed to survivors by construction.
func (r *Router) replicaSet(ctx context.Context, fp string) []*node {
	live := r.liveNodes()
	if len(live) == 0 {
		return nil
	}
	sp := obs.LeafN(ctx, nameRoute)
	placed := Placement(fp, live, r.cfg.Replicas)
	out := make([]*node, 0, len(placed))
	for _, url := range placed {
		if n := r.nodeByURL(url); n != nil {
			out = append(out, n)
		}
	}
	sp.AnnotateN(keyReplicas, uint64(len(out)))
	sp.End()
	return out
}

// orderForRead returns the replica set in read-preference order:
// closed-breaker nodes first (half-open nodes take trial traffic, not
// primary traffic), power-of-two-choices on in-flight counts picks the
// first target within that class, the rest queue as failover candidates
// in placement order.
func orderForRead(replicas []*node) []*node {
	if len(replicas) <= 1 {
		return replicas
	}
	pick := replicas
	if closed := closedOnly(replicas); len(closed) > 0 {
		pick = closed
	}
	i := 0
	if len(pick) > 1 {
		i = mrand.Intn(len(pick))
		j := mrand.Intn(len(pick) - 1)
		if j >= i {
			j++
		}
		if pick[j].inflight.Load() < pick[i].inflight.Load() {
			i = j
		}
	}
	out := make([]*node, 0, len(replicas))
	out = append(out, pick[i])
	for _, n := range replicas {
		if n != pick[i] {
			out = append(out, n)
		}
	}
	return out
}

// closedOnly filters replicas to those with a closed breaker; nil when
// every replica is half-open (the caller then balances over all).
func closedOnly(replicas []*node) []*node {
	out := make([]*node, 0, len(replicas))
	for _, n := range replicas {
		if n.state.Load() == breakerClosed {
			out = append(out, n)
		}
	}
	if len(out) == len(replicas) {
		return replicas
	}
	return out
}

// takeRetry spends one retry-budget token; a denial is counted and the
// caller must answer with what it already has instead of launching the
// extra attempt (bounded retries are what keep a partial outage from
// amplifying into a storm).
func (r *Router) takeRetry() bool {
	if r.retryBudget.take() {
		return true
	}
	r.retryDenied.Add(1)
	return false
}

// Hedge delay clamps: floor (a hedge below this races itself for
// nothing), and the static default used until the latency digest has
// enough samples. The ceiling is HopTimeout/2 — a hedge that fires
// later than that cannot beat the timeout it exists to avoid.
const (
	minHedgeDelay     = time.Millisecond
	defaultHedgeDelay = 25 * time.Millisecond
)

// hedgeDelay derives the adaptive hedge delay from the router's own
// successful-hop latency digest: p95, so ~5% of requests outlive it —
// matching the hedge budget by construction.
func (r *Router) hedgeDelay() time.Duration {
	d := r.lat.p95()
	if d == 0 {
		d = defaultHedgeDelay
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if ceil := r.cfg.HopTimeout / 2; d > ceil {
		d = ceil
	}
	return d
}

// attemptRead runs one full read attempt against one node: journal sync
// if the node is behind, the hop, and the 404-lost-state resync-retry.
// passThrough reports a genuine 4xx answer that must return to the
// client verbatim instead of failing over. Failures are charged to the
// node's breaker — unless the attempt's context is already dead (the
// caller gave up, or this was a hedge loser cancelled after the winner
// answered), which is not the node's fault.
func (r *Router) attemptRead(ctx context.Context, gs *graphState, n *node, failover bool, call func(context.Context, *node) (any, error)) (res any, err error, passThrough bool) {
	if gs != nil {
		// The sync runs detached from the attempt's cancellation (bounded
		// by the hop timeout instead): a journal replay is shared
		// convergence work, and aborting it midway because THIS attempt
		// lost the hedge race — or the caller hung up — would park the
		// replica on a stale version until some future read resumes the
		// replay. Completing it keeps replicas converging promptly; the
		// hop below still honors the attempt's context.
		syncCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), r.cfg.HopTimeout)
		syncErr := r.sync(syncCtx, n, gs)
		cancel()
		if syncErr != nil {
			if ctx.Err() == nil {
				r.noteFailure(n)
			}
			return nil, syncErr, false
		}
		if ctx.Err() != nil {
			return nil, ctx.Err(), false
		}
	}
	res, err = r.hop(ctx, n, failover, call)
	if err == nil {
		return res, nil, false
	}
	if ctx.Err() != nil {
		return nil, err, false
	}
	var api *client.APIError
	if errors.As(err, &api) && api.Status/100 == 4 {
		if api.Status == http.StatusNotFound && gs != nil && gs.hasText() {
			// The node answered "unknown graph" for a graph the router
			// gave it: it lost state without a trip (e.g. restarted
			// non-durable). Re-push and retry it once, on the retry budget.
			gs.mu.Lock()
			gs.invalidateMarkLocked(n)
			gs.mu.Unlock()
			if !r.takeRetry() {
				r.noteFailure(n)
				return nil, err, false
			}
			if syncErr := r.sync(ctx, n, gs); syncErr == nil {
				res, err2 := r.hop(ctx, n, true, call)
				if err2 == nil {
					return res, nil, false
				}
				err = err2
			}
			r.noteFailure(n)
			return nil, err, false
		}
		return nil, err, true // a genuine 4xx answer: pass through
	}
	r.noteFailure(n)
	return nil, err, false
}

// forwardRead runs one read against the replica set: a hedged attempt
// over the two preferred replicas first (unless disabled), then
// sequential budgeted failover over the rest. A 4xx from a backend is a
// genuine answer and passes through; everything else demotes the node
// and moves on.
func (r *Router) forwardRead(ctx context.Context, gs *graphState, replicas []*node, call func(context.Context, *node) (any, error)) (any, error) {
	r.hedgeBudget.credit()
	ordered := orderForRead(replicas)
	var lastErr error
	next := 0
	if !r.cfg.DisableHedge && len(ordered) > 1 {
		res, err, passThrough, tried := r.hedgedRead(ctx, gs, ordered, call)
		if err == nil {
			return res, nil
		}
		if passThrough {
			return nil, err
		}
		lastErr = err
		next = tried
	}
	for i := next; i < len(ordered); i++ {
		n := ordered[i]
		if i > 0 {
			if !r.takeRetry() {
				break
			}
			r.failovers.Add(1)
		}
		release, ok := n.admitTrial()
		if !ok {
			continue // half-open with a trial in flight: not a failure, just skip
		}
		res, err, passThrough := r.attemptRead(ctx, gs, n, i > 0, call)
		release()
		if err == nil {
			return res, nil
		}
		if passThrough {
			return nil, err
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errNoReplicas
	}
	return nil, lastErr
}

// hedgedRead races the preferred replica against a delayed backup: the
// primary attempt starts immediately; if it hasn't answered within the
// adaptive hedge delay and the hedge budget grants a token, the same
// call fires at the second replica. The first success wins and the
// loser is cancelled through its context; both failing hands the last
// error back to forwardRead's sequential pass. tried reports how many
// of ordered's prefix this consumed (1 or 2), so the caller resumes
// failover at the right replica.
func (r *Router) hedgedRead(ctx context.Context, gs *graphState, ordered []*node, call func(context.Context, *node) (any, error)) (res any, err error, passThrough bool, tried int) {
	type outcome struct {
		res   any
		err   error
		pt    bool
		hedge bool
	}
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	ch := make(chan outcome, 2) // buffered: the loser's late result must not leak its goroutine
	launch := func(n *node, hedge bool) bool {
		release, ok := n.admitTrial()
		if !ok {
			return false
		}
		go func() {
			defer release()
			res, err, pt := r.attemptRead(hctx, gs, n, hedge, call)
			ch <- outcome{res, err, pt, hedge}
		}()
		return true
	}
	if !launch(ordered[0], false) {
		// Primary is half-open with a trial in flight: skip it entirely.
		return nil, errBreakerBusy, false, 1
	}
	pending, launched := 1, 1
	timer := time.NewTimer(r.hedgeDelay())
	defer timer.Stop()
	timerC := timer.C
	for {
		select {
		case out := <-ch:
			if out.err == nil {
				if out.hedge {
					r.hedgeWins.Add(1)
				}
				hcancel() // the loser stops burning backend time
				return out.res, nil, false, launched
			}
			if out.pt {
				hcancel()
				return nil, out.err, true, launched
			}
			pending--
			err = out.err
			if pending == 0 {
				return nil, err, false, launched
			}
		case <-timerC:
			timerC = nil
			if launched > 1 {
				continue
			}
			if !r.hedgeBudget.take() {
				r.hedgeDenied.Add(1)
				continue
			}
			if launch(ordered[1], true) {
				r.hedgeAttempts.Add(1)
				pending++
				launched = 2
			}
		}
	}
}

// hop forwards one call to one node, with the inflight/latency
// bookkeeping the balancer, telemetry, and hedge delay feed on.
func (r *Router) hop(ctx context.Context, n *node, failover bool, call func(context.Context, *node) (any, error)) (any, error) {
	sp := obs.LeafN(ctx, nameHop)
	sp.AnnotateN(keyNode, uint64(n.id))
	if failover {
		sp.SetTierN(tierFailover)
	}
	n.inflight.Add(1)
	t0 := time.Now()
	res, err := call(ctx, n)
	dt := time.Since(t0)
	n.inflight.Add(-1)
	sp.End()
	if n.hopDur != nil {
		n.hopDur.Observe(dt.Seconds())
	}
	if err == nil {
		r.noteSuccess(n)
		r.lat.observe(dt) // successes only: the hedge delay must not chase failures
	}
	return res, err
}

func (gs *graphState) hasText() bool {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	return gs.text != ""
}

// resolveRef turns a request's GraphRef into (fingerprint, forwardRef,
// graphState): inline text is fingerprinted locally, journaled (first
// sight becomes the replication baseline), and rewritten to a
// by-fingerprint reference so every backend hop is cheap and the
// replica set is well defined.
//
// Fingerprint-only references allocate state only when create is set
// (the write path needs the journal lock); the read path passes false
// and gets nil for a fingerprint the router never journaled, so bogus
// or unknown fingerprints cannot grow r.graphs.
func (r *Router) resolveRef(w http.ResponseWriter, ref serve.GraphRef, create bool) (string, serve.GraphRef, *graphState, bool) {
	if ref.Graph != "" {
		fp, events, arcs, border, err := serve.FingerprintText(ref.Graph)
		if err != nil {
			r.writeErrorStatus(w, http.StatusBadRequest, err.Error())
			return "", serve.GraphRef{}, nil, false
		}
		gs := r.lockGraph(fp)
		if gs.text == "" {
			gs.text = ref.Graph
			gs.events, gs.arcs, gs.border = events, arcs, border
		}
		gs.mu.Unlock()
		gs.requests.Add(1)
		return fp, serve.GraphRef{Fingerprint: fp}, gs, true
	}
	if ref.Fingerprint == "" {
		r.writeErrorStatus(w, http.StatusBadRequest, "request must reference a graph by inline text or fingerprint")
		return "", serve.GraphRef{}, nil, false
	}
	var gs *graphState
	if create {
		gs = r.graph(ref.Fingerprint)
	} else {
		gs = r.lookupGraph(ref.Fingerprint)
	}
	if gs != nil {
		gs.requests.Add(1)
	}
	return ref.Fingerprint, ref, gs, true
}

// --- handlers -------------------------------------------------------------

// handleUpload fans a graph upload out to every replica: each backend
// compiles (or finds cached) the engine and appends the graph to its
// own WAL, so each replica warm-restarts from local state alone. The
// upload succeeds if the primary-side quorum is at least one node; the
// journal re-pushes it to any replica that missed it.
func (r *Router) handleUpload(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	text, ok := r.readGraphText(w, req)
	if !ok {
		return
	}
	fp, events, arcs, border, err := serve.FingerprintText(text)
	if err != nil {
		r.writeErrorStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	gs := r.lockGraph(fp)
	if gs.text == "" {
		gs.text = text
		gs.events, gs.arcs, gs.border = events, arcs, border
	}
	gs.mu.Unlock()
	gs.requests.Add(1)
	// Fan the body out to every replica OUTSIDE the journal lock: a
	// slow compile on one replica must not stall this graph's readers.
	replicas := r.replicaSet(ctx, fp)
	sp := obs.LeafN(ctx, nameFanout)
	sp.AnnotateN(keyReplicas, uint64(len(replicas)))
	okCount := 0
	var lastErr error
	for _, n := range replicas {
		if err := r.sync(ctx, n, gs); err != nil {
			lastErr = err
			r.noteFailure(n)
			continue
		}
		r.noteSuccess(n)
		okCount++
	}
	sp.End()
	if okCount == 0 {
		if lastErr == nil {
			lastErr = errNoReplicas
		}
		r.writeBackendErrorUnavailable(w, lastErr)
		return
	}
	r.writeJSON(w, serve.UploadResponse{Fingerprint: fp, Events: events, Arcs: arcs, Border: border})
}

// writeBackendErrorUnavailable is writeBackendError, except that
// transport-level failures surface as 503 + Retry-After (the
// cluster-level "all replicas down, try again shortly" answer) rather
// than 502.
func (r *Router) writeBackendErrorUnavailable(w http.ResponseWriter, err error) {
	var api *client.APIError
	if errors.As(err, &api) && api.Status/100 == 4 {
		r.writeBackendError(w, err)
		return
	}
	r.writeErrorStatus(w, http.StatusServiceUnavailable, "no replica could serve the request: "+err.Error())
}

// handleFingerprint answers the placement primitive locally: the
// router can fingerprint without any backend (same parse-only path as
// the serve layer's /v1/fingerprint).
func (r *Router) handleFingerprint(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	text, ok := r.readGraphText(w, req)
	if !ok {
		return
	}
	fp, events, arcs, border, err := serve.FingerprintText(text)
	if err != nil {
		r.writeErrorStatus(w, http.StatusBadRequest, err.Error())
		return
	}
	r.writeJSON(w, serve.FingerprintResponse{Fingerprint: fp, Events: events, Arcs: arcs, Border: border})
}

// handleRead serves analyze/slacks/whatif/mc: resolve the replica set
// from the fingerprint, balance by power-of-two-choices, fail over on
// backend failure.
func (r *Router) handleRead(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	var (
		call func(ref serve.GraphRef) func(context.Context, *node) (any, error)
		ref  serve.GraphRef
	)
	switch req.URL.Path {
	case "/v1/analyze":
		var body serve.AnalyzeRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.Analyze(ctx, ref) }
		}
	case "/v1/slacks":
		var body serve.SlacksRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.Slacks(ctx, ref) }
		}
	case "/v1/whatif":
		var body serve.WhatIfRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		queries := body.Queries
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.WhatIf(ctx, ref, queries) }
		}
	case "/v1/mc":
		var body serve.MCRequest
		if !r.decodeJSON(w, req, &body) {
			return
		}
		ref = body.GraphRef
		mcReq := body
		call = func(ref serve.GraphRef) func(context.Context, *node) (any, error) {
			return func(ctx context.Context, n *node) (any, error) { return n.cl.MC(ctx, ref, mcReq) }
		}
	default:
		r.writeErrorStatus(w, http.StatusNotFound, "unknown read endpoint")
		return
	}

	fp, fwdRef, gs, ok := r.resolveRef(w, ref, false)
	if !ok {
		return
	}
	replicas := r.replicaSet(ctx, fp)
	if len(replicas) == 0 {
		r.writeErrorStatus(w, http.StatusServiceUnavailable, "no live backend nodes")
		return
	}
	res, err := r.forwardRead(ctx, gs, replicas, call(fwdRef))
	if err != nil {
		r.writeBackendErrorUnavailable(w, err)
		return
	}
	r.writeJSON(w, res)
}

// handleEdit is the write path: stamp if the client didn't, dedupe
// against the router's exactly-once table, commit on the graph's
// primary (first live replica — falling over to the secondary after a
// journal replay brings it current), journal the accepted write, then
// replicate it to the rest of the replica set. Writes to one graph are
// serialized under its journal lock; that order IS the replication
// order, so replicas converge to bit-identical state.
func (r *Router) handleEdit(ctx context.Context, w http.ResponseWriter, req *http.Request) {
	var body serve.EditRequest
	if !r.decodeJSON(w, req, &body) {
		return
	}
	fp, fwdRef, _, ok := r.resolveRef(w, body.GraphRef, true)
	if !ok {
		return
	}
	body.GraphRef = fwdRef

	replicas := r.replicaSet(ctx, fp)
	if len(replicas) == 0 {
		r.writeErrorStatus(w, http.StatusServiceUnavailable, "no live backend nodes")
		return
	}

	// The journal lock serializes this graph's writes end to end:
	// stamp, dedupe, primary commit, and journal append all happen
	// under one hold, so journal order IS primary commit order.
	gs := r.lockGraph(fp)
	if body.Client == "" {
		// Unstamped edit: stamp it so journal replay stays idempotent on
		// the backends for this write too. The stamp MUST be taken under
		// the journal lock — two concurrent unstamped edits otherwise
		// race their seq assignment against commit order, and the
		// lower-seq edit committing second would be falsely deduped by
		// the high-water check below (silently never applied).
		body.Client = r.clientID
		body.Seq = r.seq.Add(1)
	} else if body.Seq <= gs.maxSeq[body.Client] {
		gs.mu.Unlock()
		r.dedupeAnswer(ctx, w, gs, replicas, fp)
		return
	}

	// Commit on the primary; a dead primary fails over down the replica
	// set. syncLocked first, so the node the edit lands on holds the
	// full session state the edit composes with (WAL-backed replay).
	var (
		resp           *client.EditResponse
		commitErr      error
		committed      *node
		committedEpoch uint64
	)
	for attempt, n := range replicas {
		if attempt > 0 {
			// Failover attempts spend retry budget like any other retry; an
			// exhausted budget answers 503 with what we know rather than
			// piling more attempts onto a struggling pool.
			if !r.takeRetry() {
				break
			}
			r.failovers.Add(1)
		}
		// Capture the epoch before the hop: if the node's breaker trips
		// while the edit is in flight, a mark recorded under the pre-hop
		// epoch is void by construction, rather than wrongly certifying a
		// possibly state-lost node under its post-trip epoch.
		ep := n.epoch.Load()
		if gs.text != "" {
			if err := r.syncLocked(ctx, n, gs); err != nil {
				commitErr = err
				r.noteFailure(n)
				continue
			}
		}
		res, err := r.hop(ctx, n, attempt > 0, func(ctx context.Context, n *node) (any, error) {
			return n.cl.EditStamped(ctx, body)
		})
		if err == nil {
			resp = res.(*client.EditResponse)
			committed = n
			committedEpoch = ep
			break
		}
		commitErr = err
		var api *client.APIError
		if errors.As(err, &api) && api.Status/100 == 4 {
			gs.mu.Unlock()
			r.dropIfPristine(fp, gs)
			r.writeBackendError(w, err) // genuine answer: the edit is invalid
			return
		}
		if ctx.Err() == nil {
			r.noteFailure(n)
		}
	}
	if resp == nil {
		gs.mu.Unlock()
		r.dropIfPristine(fp, gs)
		r.writeBackendErrorUnavailable(w, commitErr)
		return
	}

	// The write is committed: journal it and advance the committing
	// node's mark under the same hold that ordered the commit.
	version := gs.appendWriteLocked(&body, r.cfg.JournalCompactAt)
	gs.marks[committed.id] = syncMark{epoch: committedEpoch, version: version}
	gs.mu.Unlock()

	// Push it to the remaining replicas OUTSIDE the lock: sync replays
	// the journal from each node's watermark in journal order, so a
	// slow replica stalls neither this graph's readers nor its next
	// writer.
	sp := obs.LeafN(ctx, nameFanout)
	sp.AnnotateN(keyReplicas, uint64(len(replicas)))
	for _, n := range replicas {
		if n == committed {
			continue
		}
		if err := r.sync(ctx, n, gs); err != nil {
			r.replFail.Add(1)
			r.noteFailure(n)
			continue
		}
		r.replOK.Add(1)
	}
	sp.End()
	r.writeJSON(w, resp)
}

// dedupeAnswer acknowledges a write the router already committed (the
// stamp is at or below the client's high-water mark): the backends may
// have compacted the original journal record away, so the answer is
// synthesized — current λ from a replica, Deduped set, nothing
// re-applied. This is exactly the answer a backend's own dedupe table
// gives for an in-journal duplicate.
func (r *Router) dedupeAnswer(ctx context.Context, w http.ResponseWriter, gs *graphState, replicas []*node, fp string) {
	r.dedupes.Add(1)
	if sp := obs.FromContext(ctx); sp != nil {
		sp.SetTierN(tierDeduped)
	}
	ref := serve.GraphRef{Fingerprint: fp}
	res, err := r.forwardRead(ctx, gs, replicas, func(ctx context.Context, n *node) (any, error) {
		return n.cl.Analyze(ctx, ref)
	})
	if err != nil {
		r.writeBackendErrorUnavailable(w, err)
		return
	}
	an := res.(*client.AnalyzeResponse)
	r.writeJSON(w, serve.EditResponse{Fingerprint: fp, Applied: 0, Deduped: true, Lambda: an.Lambda})
}

// handleHealthz reports router liveness: OK while at least one backend
// is routable (a router with zero live nodes answers 503 so load
// balancers above it can fail over too).
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	live := len(r.liveNodes())
	r.mu.Lock()
	graphs := len(r.graphs)
	r.mu.Unlock()
	resp := serve.HealthResponse{OK: live > 0, Graphs: graphs, UptimeSec: time.Since(r.start).Seconds()}
	if !resp.OK {
		w.Header().Set("Retry-After", retryAfterSeconds)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	r.writeJSON(w, resp)
}

// ClusterNodeStatus is one backend's row in /debug/cluster. The breaker
// columns answer the operator question "why isn't this node taking
// traffic": its state, the failure streaks feeding it (request-only and
// mixed), how often it has tripped, and when it last changed state.
type ClusterNodeStatus struct {
	ID             int       `json:"id"`
	URL            string    `json:"url"`
	Healthy        bool      `json:"healthy"`
	Breaker        string    `json:"breaker"` // closed | open | half-open
	Epoch          uint64    `json:"epoch"`
	ConsecFails    int       `json:"consec_fails"`
	ConsecReqFails int       `json:"consec_req_fails"`
	Trips          uint64    `json:"breaker_trips"`
	LastTransition time.Time `json:"last_transition"`
	Inflight       int64     `json:"inflight"`
	Requests       uint64    `json:"requests"`
	Failures       uint64    `json:"failures"`
	Ejections      uint64    `json:"ejections"`
}

// ClusterGraphStatus is one journaled graph's row in /debug/cluster.
type ClusterGraphStatus struct {
	Fingerprint string   `json:"fingerprint"`
	Version     uint64   `json:"version"`
	JournalLen  int      `json:"journal_len"`
	Compactions int      `json:"compactions"`
	Requests    uint64   `json:"requests"`
	Replicas    []string `json:"replicas"`
	Synced      []string `json:"synced"`
}

// ClusterStatus is the /debug/cluster body.
type ClusterStatus struct {
	Nodes             []ClusterNodeStatus  `json:"nodes"`
	Graphs            []ClusterGraphStatus `json:"graphs"`
	Failovers         uint64               `json:"failovers"`
	Dedupes           uint64               `json:"dedupe_hits"`
	WarmSyncs         uint64               `json:"warm_syncs"`
	Replicas          int                  `json:"replicas"`
	HedgeAttempts     uint64               `json:"hedge_attempts"`
	HedgeWins         uint64               `json:"hedge_wins"`
	HedgeDenied       uint64               `json:"hedge_denied"`
	RetryDenied       uint64               `json:"retry_denied"`
	RetryBudgetTokens float64              `json:"retry_budget_tokens"`
	HedgeDelayMs      float64              `json:"hedge_delay_ms"`
	MembershipReloads uint64               `json:"membership_reloads"`
}

// handleDebugCluster snapshots the router's live topology view:
// node health, per-graph placement and sync watermarks.
func (r *Router) handleDebugCluster(w http.ResponseWriter, req *http.Request) {
	st := ClusterStatus{
		Failovers:         r.failovers.Load(),
		Dedupes:           r.dedupes.Load(),
		WarmSyncs:         r.warmSyncs.Load(),
		Replicas:          r.cfg.Replicas,
		HedgeAttempts:     r.hedgeAttempts.Load(),
		HedgeWins:         r.hedgeWins.Load(),
		HedgeDenied:       r.hedgeDenied.Load(),
		RetryDenied:       r.retryDenied.Load(),
		RetryBudgetTokens: r.retryBudget.tokens(),
		HedgeDelayMs:      float64(r.hedgeDelay()) / float64(time.Millisecond),
		MembershipReloads: r.membershipReloads.Load(),
	}
	p := r.pool.Load()
	for _, n := range p.nodes {
		n.mu.Lock()
		consecFails, consecReqFails := n.consecFails, n.consecReqFails
		n.mu.Unlock()
		st.Nodes = append(st.Nodes, ClusterNodeStatus{
			ID: n.id, URL: n.url, Healthy: n.healthy.Load(),
			Breaker:        breakerName(n.state.Load()),
			Epoch:          n.epoch.Load(),
			ConsecFails:    consecFails,
			ConsecReqFails: consecReqFails,
			Trips:          n.trips.Load(),
			LastTransition: time.Unix(0, n.lastTransition.Load()),
			Inflight:       n.inflight.Load(), Requests: n.requests.Load(),
			Failures: n.failures.Load(), Ejections: n.ejections.Load(),
		})
	}
	live := r.liveNodes()
	r.mu.Lock()
	fps := make([]string, 0, len(r.graphs))
	states := make([]*graphState, 0, len(r.graphs))
	for fp, gs := range r.graphs {
		fps = append(fps, fp)
		states = append(states, gs)
	}
	r.mu.Unlock()
	for i, fp := range fps {
		gs := states[i]
		gs.mu.Lock()
		row := ClusterGraphStatus{
			Fingerprint: fp,
			Version:     gs.version,
			JournalLen:  len(gs.edits),
			Compactions: gs.compactions,
			Requests:    gs.requests.Load(),
			Replicas:    Placement(fp, live, r.cfg.Replicas),
		}
		for _, n := range p.nodes {
			if gs.syncedLocked(n) {
				row.Synced = append(row.Synced, n.url)
			}
		}
		gs.mu.Unlock()
		st.Graphs = append(st.Graphs, row)
	}
	r.writeJSON(w, st)
}
