package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tsg"
	"tsg/client"
	"tsg/internal/gen"
	"tsg/internal/serve"
)

// gate wraps a backend handler with a kill switch: while down, every
// request (probes included) answers 500, which the router classifies
// as a node failure. Swapping the inner handler models a non-durable
// restart — the process is back but its state is gone.
type gate struct {
	down atomic.Bool
	h    atomic.Pointer[http.Handler]
}

func newGate(h http.Handler) *gate {
	g := &gate{}
	g.h.Store(&h)
	return g
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"node down"}`))
		return
	}
	(*g.h.Load()).ServeHTTP(w, r)
}

func pipelineText(t testing.TB, stages int) string {
	t.Helper()
	g, err := gen.MullerPipeline(stages, 1, 2.0, 1.0)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	var b bytes.Buffer
	if err := tsg.WriteGraph(&b, g); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	return b.String()
}

// testCluster is 3 gated backends plus a started router, all torn down
// with the test.
type testCluster struct {
	gates    [3]*gate
	backends [3]*httptest.Server
	urls     []string
	router   *Router
	front    *httptest.Server
	cl       *client.Client
}

func newTestCluster(t *testing.T) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := range tc.gates {
		tc.gates[i] = newGate(serve.New(serve.Config{}))
		tc.backends[i] = httptest.NewServer(tc.gates[i])
		t.Cleanup(tc.backends[i].Close)
		tc.urls = append(tc.urls, tc.backends[i].URL)
	}
	r, err := New(Config{
		Nodes:            tc.urls,
		Replicas:         2,
		ProbeInterval:    10 * time.Millisecond,
		FailThreshold:    2,
		ReadmitThreshold: 2,
		HopTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	r.Start()
	t.Cleanup(r.Stop)
	tc.router = r
	tc.front = httptest.NewServer(r)
	t.Cleanup(tc.front.Close)
	tc.cl = client.New(tc.front.URL, client.WithRetryPolicy(client.RetryPolicy{}))
	return tc
}

func (tc *testCluster) gateOf(url string) *gate {
	for i, u := range tc.urls {
		if u == url {
			return tc.gates[i]
		}
	}
	return nil
}

func (tc *testCluster) waitHealthy(t *testing.T, url string, want bool) {
	t.Helper()
	n := tc.router.nodeByURL(url)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if n.healthy.Load() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s never reached healthy=%v", url, want)
}

// TestRouterServesProtocolAndPlacement pins the basic contract: the
// router answers the whole read protocol with the same results as a
// direct backend, and the upload fan-out leaves every replica able to
// answer by fingerprint on its own.
func TestRouterServesProtocolAndPlacement(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	text := pipelineText(t, 4)

	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload through router: %v", err)
	}
	res, err := tc.cl.Analyze(ctx, client.ByFingerprint(up.Fingerprint))
	if err != nil {
		t.Fatalf("analyze through router: %v", err)
	}

	// Oracle: a direct single backend.
	direct := httptest.NewServer(serve.New(serve.Config{}))
	defer direct.Close()
	dcl := client.New(direct.URL)
	dup, err := dcl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("direct upload: %v", err)
	}
	if dup.Fingerprint != up.Fingerprint {
		t.Fatalf("router fingerprint %s != direct %s", up.Fingerprint, dup.Fingerprint)
	}
	dres, err := dcl.Analyze(ctx, client.ByFingerprint(dup.Fingerprint))
	if err != nil {
		t.Fatalf("direct analyze: %v", err)
	}
	if res.Lambda.Text != dres.Lambda.Text {
		t.Fatalf("router λ %s != direct λ %s", res.Lambda.Text, dres.Lambda.Text)
	}

	// Slacks and what-if answer through the router too.
	if _, err := tc.cl.Slacks(ctx, client.ByFingerprint(up.Fingerprint)); err != nil {
		t.Fatalf("slacks through router: %v", err)
	}
	if _, err := tc.cl.WhatIf(ctx, client.ByFingerprint(up.Fingerprint), []client.WhatIfQuery{{Arc: 0, Delay: 3}}); err != nil {
		t.Fatalf("whatif through router: %v", err)
	}

	// Fingerprint endpoint answers locally at the router.
	fpr, err := tc.cl.Fingerprint(ctx, text)
	if err != nil {
		t.Fatalf("fingerprint through router: %v", err)
	}
	if fpr.Fingerprint != up.Fingerprint {
		t.Fatalf("fingerprint endpoint %s != upload %s", fpr.Fingerprint, up.Fingerprint)
	}

	// The upload fanned out: each REPLICA answers directly, and no
	// non-replica was touched (placement actually shards).
	placed := Placement(up.Fingerprint, tc.urls, 2)
	for _, url := range placed {
		ncl := client.New(url, client.WithRetryPolicy(client.RetryPolicy{}))
		nres, err := ncl.Analyze(ctx, client.ByFingerprint(up.Fingerprint))
		if err != nil {
			t.Fatalf("replica %s cannot answer by fingerprint after fan-out: %v", url, err)
		}
		if nres.Lambda.Text != dres.Lambda.Text {
			t.Fatalf("replica %s λ %s != direct %s", url, nres.Lambda.Text, dres.Lambda.Text)
		}
	}
	for _, url := range tc.urls {
		inSet := false
		for _, p := range placed {
			inSet = inSet || p == url
		}
		if inSet {
			continue
		}
		ncl := client.New(url, client.WithRetryPolicy(client.RetryPolicy{}))
		if _, err := ncl.Analyze(ctx, client.ByFingerprint(up.Fingerprint)); err == nil {
			t.Fatalf("non-replica %s holds the graph — placement did not shard", url)
		}
	}
}

// TestRouterWriteReplicationAndDedupe pins the write path: edits
// through the router land on every replica bit-identically, client
// idempotency stamps survive the hop (a retry answers Deduped without
// re-applying), and a router-level duplicate of a compacted-away stamp
// is synthesized rather than re-applied.
func TestRouterWriteReplicationAndDedupe(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	text := pipelineText(t, 4)

	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)

	// A run of edits through the router (the client stamps them).
	var last *client.EditResponse
	for i := 0; i < 8; i++ {
		last, err = tc.cl.Edit(ctx, ref, []client.DelayEdit{{Arc: i % 4, Delay: 2.0 + float64(i)}})
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}

	// Every replica answers the edited baseline identically, directly.
	placed := Placement(up.Fingerprint, tc.urls, 2)
	for _, url := range placed {
		ncl := client.New(url, client.WithRetryPolicy(client.RetryPolicy{}))
		nres, err := ncl.Analyze(ctx, ref)
		if err != nil {
			t.Fatalf("replica %s: %v", url, err)
		}
		if nres.Lambda.Text != last.Lambda.Text {
			t.Fatalf("replica %s diverged: λ %s, want %s", url, nres.Lambda.Text, last.Lambda.Text)
		}
	}

	// A duplicate stamp through the router dedupes end to end.
	dup, err := tc.cl.EditStamped(ctx, client.EditRequest{
		GraphRef: ref,
		Edits:    []client.DelayEdit{{Arc: 0, Delay: 99}},
		Client:   tc.cl.ClientID(),
		Seq:      1, // already applied above
	})
	if err != nil {
		t.Fatalf("duplicate edit: %v", err)
	}
	if !dup.Deduped {
		t.Fatalf("duplicate stamped edit not deduped: %+v", dup)
	}
	if dup.Lambda.Text != last.Lambda.Text {
		t.Fatalf("deduped answer λ %s, want current baseline %s", dup.Lambda.Text, last.Lambda.Text)
	}
}

// TestRouterConcurrentUnstampedEdits pins the router-stamp commit
// order: unstamped edits get their (client, seq) stamp from the
// router, and the stamp must be taken under the journal lock — stamped
// outside it, two concurrent edits can commit in the opposite order of
// their seq assignment, and the lower-seq edit is falsely answered
// Deduped without ever being applied.
func TestRouterConcurrentUnstampedEdits(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	text := pipelineText(t, 4)
	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}

	// Many rounds of barrier-released writers: the original defect
	// needed two goroutines to interleave between seq assignment and
	// journal-lock acquisition, which one round rarely provokes.
	const rounds, writers = 25, 8
	for round := 0; round < rounds; round++ {
		var wg, start sync.WaitGroup
		start.Add(1)
		errs := make([]string, writers)
		for i := 0; i < writers; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				start.Wait()
				body, _ := json.Marshal(serve.EditRequest{
					GraphRef: serve.GraphRef{Fingerprint: up.Fingerprint},
					Edits:    []serve.DelayEdit{{Arc: i % 4, Delay: 1.0 + float64(round*writers+i)/8}},
				})
				resp, err := http.Post(tc.front.URL+"/v1/edit", "application/json", bytes.NewReader(body))
				if err != nil {
					errs[i] = err.Error()
					return
				}
				defer resp.Body.Close()
				var er serve.EditResponse
				if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
					errs[i] = "decode: " + err.Error()
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[i] = resp.Status
					return
				}
				if er.Deduped || er.Applied != 1 {
					errs[i] = "falsely deduped: applied=0"
				}
			}()
		}
		start.Done()
		wg.Wait()
		for i, e := range errs {
			if e != "" {
				t.Fatalf("round %d, unstamped edit %d: %s", round, i, e)
			}
		}
	}

	// And the replicas converged on one baseline despite the contention.
	placed := Placement(up.Fingerprint, tc.urls, 2)
	var want string
	for _, url := range placed {
		ncl := client.New(url, client.WithRetryPolicy(client.RetryPolicy{}))
		nres, err := ncl.Analyze(ctx, client.ByFingerprint(up.Fingerprint))
		if err != nil {
			t.Fatalf("replica %s: %v", url, err)
		}
		if want == "" {
			want = nres.Lambda.Text
		} else if nres.Lambda.Text != want {
			t.Fatalf("replicas diverged after concurrent edits: λ %s vs %s", nres.Lambda.Text, want)
		}
	}
}

// TestRouterUnknownFingerprintsDontGrowState pins the memory bound on
// r.graphs: reads referencing fingerprints the router never journaled
// must not allocate state, and a write to a bogus fingerprint must not
// leave a pristine record behind after the backends reject it.
func TestRouterUnknownFingerprintsDontGrowState(t *testing.T) {
	tc := newTestCluster(t)
	for i := 0; i < 8; i++ {
		body, _ := json.Marshal(serve.AnalyzeRequest{
			GraphRef: serve.GraphRef{Fingerprint: strings.Repeat("ab", 20) + string(rune('a'+i))},
		})
		resp, err := http.Post(tc.front.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST analyze: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("bogus-fingerprint analyze: status %d, want 404", resp.StatusCode)
		}
	}
	body, _ := json.Marshal(serve.EditRequest{
		GraphRef: serve.GraphRef{Fingerprint: strings.Repeat("cd", 20)},
		Edits:    []serve.DelayEdit{{Arc: 0, Delay: 1}},
	})
	resp, err := http.Post(tc.front.URL+"/v1/edit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST edit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus-fingerprint edit: status %d, want 404", resp.StatusCode)
	}
	tc.router.mu.Lock()
	n := len(tc.router.graphs)
	tc.router.mu.Unlock()
	if n != 0 {
		t.Fatalf("router retains %d graph states after bogus-fingerprint traffic, want 0", n)
	}
}

// TestRouterStartStopConcurrent pins the lifecycle against races:
// Start/Stop from many goroutines must neither tear the probeCancel
// field nor leak probe loops (the race detector is the assertion).
func TestRouterStartStopConcurrent(t *testing.T) {
	r, err := New(Config{Nodes: []string{"http://127.0.0.1:1"}, ProbeInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Start()
			r.Stop()
		}()
	}
	wg.Wait()
	r.Stop()
}

// TestRouterEjectionFailoverReadmission is the full lifecycle: kill a
// graph's primary → requests fail over to the secondary and the node
// is ejected; restart it with empty state → probes re-admit it, the
// journal re-warms it, and it serves the edited baseline again.
func TestRouterEjectionFailoverReadmission(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	text := pipelineText(t, 4)

	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)
	if _, err := tc.cl.Edit(ctx, ref, []client.DelayEdit{{Arc: 1, Delay: 7}}); err != nil {
		t.Fatalf("edit: %v", err)
	}

	placed := Placement(up.Fingerprint, tc.urls, 2)
	primary := placed[0]

	// Kill the primary. Reads and writes must keep succeeding (failover
	// to the secondary), and the probes must eject the node.
	tc.gateOf(primary).down.Store(true)
	tc.waitHealthy(t, primary, false)

	res, err := tc.cl.Analyze(ctx, ref)
	if err != nil {
		t.Fatalf("analyze after primary death: %v", err)
	}
	edited, err := tc.cl.Edit(ctx, ref, []client.DelayEdit{{Arc: 2, Delay: 9}})
	if err != nil {
		t.Fatalf("edit after primary death (failover): %v", err)
	}
	_ = res

	// The dead node's fingerprints re-hash to survivors: placement over
	// the live set no longer contains it.
	live := tc.router.liveNodes()
	for _, u := range Placement(up.Fingerprint, live, 2) {
		if u == primary {
			t.Fatalf("dead primary still in live placement")
		}
	}

	// "Restart" the node with a FRESH backend — all state lost, like a
	// non-durable process replaced. Re-admission must re-warm it from
	// the router's journal before it serves.
	var fresh http.Handler = serve.New(serve.Config{})
	tc.gateOf(primary).h.Store(&fresh)
	tc.gateOf(primary).down.Store(false)
	tc.waitHealthy(t, primary, true)

	// Give the background warm pass a moment, then the restarted node
	// must answer the CURRENT edited baseline directly.
	ncl := client.New(primary, client.WithRetryPolicy(client.RetryPolicy{}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		nres, err := ncl.Analyze(ctx, ref)
		if err == nil && nres.Lambda.Text == edited.Lambda.Text {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted node never re-warmed: err=%v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And a read routed through the router may land on it again without
	// a stale answer.
	for i := 0; i < 10; i++ {
		rres, err := tc.cl.Analyze(ctx, ref)
		if err != nil {
			t.Fatalf("analyze after re-admission: %v", err)
		}
		if rres.Lambda.Text != edited.Lambda.Text {
			t.Fatalf("stale λ %s after re-admission, want %s", rres.Lambda.Text, edited.Lambda.Text)
		}
	}
}

// TestRouterAllReplicasDown pins the degraded edge: when every node of
// a graph's replica set is dead, the router answers 503 with a
// Retry-After hint — the cluster-level shed contract — rather than
// hanging or answering 500.
func TestRouterAllReplicasDown(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	text := pipelineText(t, 3)
	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	for _, g := range tc.gates {
		g.down.Store(true)
	}
	for _, u := range tc.urls {
		tc.waitHealthy(t, u, false)
	}
	body, _ := json.Marshal(serve.AnalyzeRequest{GraphRef: serve.GraphRef{Fingerprint: up.Fingerprint}})
	resp, err := http.Post(tc.front.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST analyze: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-replicas-down analyze: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("all-replicas-down 503 missing Retry-After")
	}
}

// TestRouterJournalCompaction pins that sustained edit load keeps the
// journal bounded (last-writer-per-arc) while replay still rebuilds
// the exact baseline on a fresh replica.
func TestRouterJournalCompaction(t *testing.T) {
	tc := newTestCluster(t)
	tc.router.cfg.JournalCompactAt = 8
	ctx := context.Background()
	text := pipelineText(t, 4)
	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)
	var last *client.EditResponse
	for i := 0; i < 40; i++ {
		last, err = tc.cl.Edit(ctx, ref, []client.DelayEdit{{Arc: i % 3, Delay: 1.0 + float64(i)/7}})
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}
	gs := tc.router.graph(up.Fingerprint)
	gs.mu.Lock()
	jlen, compactions := len(gs.edits), gs.compactions
	gs.mu.Unlock()
	if compactions == 0 {
		t.Fatalf("40 edits with compact-at-8 never compacted")
	}
	if jlen > 8+1 {
		t.Fatalf("journal holds %d edits after compaction, want ≤ 9", jlen)
	}

	// A node that lost everything (fresh backend) still converges to
	// the exact edited baseline from the compacted journal.
	placed := Placement(up.Fingerprint, tc.urls, 2)
	victim := placed[len(placed)-1]
	var fresh http.Handler = serve.New(serve.Config{})
	tc.gateOf(victim).h.Store(&fresh)
	gs.mu.Lock()
	gs.invalidateMarkLocked(tc.router.nodeByURL(victim))
	gs.mu.Unlock()

	// Route reads until the victim answers with the edited baseline:
	// the 404-resync path must rebuild it. Direct backend reads may
	// transiently observe a mid-replay prefix (a hedged routed read can
	// return on the fast replica while the repair replay to the victim
	// is still in flight), so a λ mismatch means "not converged yet",
	// not divergence — only failing to converge by the deadline does.
	ncl := client.New(victim, client.WithRetryPolicy(client.RetryPolicy{}))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tc.cl.Analyze(ctx, ref); err != nil {
			t.Fatalf("routed analyze during victim rebuild: %v", err)
		}
		nres, err := ncl.Analyze(ctx, ref)
		if err == nil && nres.Lambda.Text == last.Lambda.Text {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				t.Fatalf("victim never rebuilt from compacted journal: %v", err)
			}
			t.Fatalf("rebuilt replica λ %s, want %s", nres.Lambda.Text, last.Lambda.Text)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterErrorPasses pins 4xx pass-through: a genuinely bad request
// is answered by the backend's (or router's) 4xx, not retried or
// converted to a 5xx.
func TestRouterErrorPasses(t *testing.T) {
	tc := newTestCluster(t)
	resp, err := http.Post(tc.front.URL+"/v1/analyze", "application/json", strings.NewReader(`{"graph": "not a tsg file"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad graph through router: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(tc.front.URL+"/v1/analyze", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-ref analyze through router: status %d, want 400", resp.StatusCode)
	}
}
