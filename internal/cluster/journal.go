package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tsg/internal/obs"
	"tsg/internal/serve"
)

// graphState is the router's per-fingerprint record: the write journal
// that lets any replica be (re)built to the current baseline, the sync
// marks saying which node is caught up to which version, and the
// router-level exactly-once table.
//
// The journal is the replication mechanism, not just bookkeeping.
// Writes commit to the primary, append here, then replay to the other
// replicas; a node that was dead, restarted, or newly pulled into the
// replica set by a re-hash is brought up to date by replaying the
// journal against it — upload the body, re-send the reset record and
// every edit it missed, each under its ORIGINAL (client, seq) stamp so
// a durable node that already holds a prefix in its own WAL dedupes
// that prefix and applies exactly the suffix it missed. Replay is
// therefore idempotent against every node state the cluster can reach.
type graphState struct {
	mu sync.Mutex

	fp   string
	text string // journaled .tsg body ("" if the router never saw it)
	// Structural summary from the parse, for upload responses.
	events, arcs, border int

	// version numbers accepted writes 1..n; resetAt is the version of
	// the retained reset record (0 = baseline is compile-time delays).
	// Edits before the last reset are dropped — the reset record plus
	// the edits after it fully determine the session state.
	version  uint64
	resetAt  uint64
	resetReq *serve.EditRequest
	edits    []journalEdit

	// compactions counts last-writer-per-arc journal compactions (the
	// journal stays bounded by the arc count under sustained edit load).
	compactions int

	// maxSeq is the router's own exactly-once table: client id → highest
	// seq accepted through this router. It guards the one hole node
	// tables can't cover — a retry arriving after compaction dropped the
	// original record from the journal, which a freshly synced replica
	// would otherwise re-apply out of order.
	maxSeq map[string]uint64

	// marks: node id → how far that node is known to be synced. A mark
	// taken under an older node epoch is void (the node was ejected
	// since; it may have lost anything).
	marks map[int]syncMark

	requests atomic.Uint64
}

// journalEdit is one accepted write, replayable verbatim.
type journalEdit struct {
	version uint64
	req     serve.EditRequest
}

// syncMark records a node's replication watermark for one graph.
type syncMark struct {
	epoch   uint64 // node epoch the mark is valid under
	version uint64 // journal version applied through
}

// graph returns (creating if needed) the state for a fingerprint.
func (r *Router) graph(fp string) *graphState {
	r.mu.Lock()
	defer r.mu.Unlock()
	gs := r.graphs[fp]
	if gs == nil {
		gs = &graphState{
			fp:     fp,
			maxSeq: map[string]uint64{},
			marks:  map[int]syncMark{},
		}
		r.graphs[fp] = gs
	}
	return gs
}

// journalCompactAt bounds the edit journal: past this many entries it
// is compacted to the last write per arc. Compaction preserves the
// final state replay reconstructs (an overwritten write is
// unobservable) and keeps commit order among survivors; the router's
// maxSeq table keeps dropped (client, seq) stamps deduplicable.
const defaultJournalCompactAt = 65536

// appendWriteLocked journals an accepted write and returns its version.
// Caller holds gs.mu.
func (gs *graphState) appendWriteLocked(req *serve.EditRequest, compactAt int) uint64 {
	gs.version++
	if req.Reset {
		// The reset supersedes everything before it: the retained record
		// plus subsequent edits fully rebuild the session.
		gs.resetAt = gs.version
		gs.resetReq = req
		gs.edits = gs.edits[:0]
	} else {
		gs.edits = append(gs.edits, journalEdit{version: gs.version, req: *req})
		if compactAt > 0 && len(gs.edits) > compactAt {
			gs.compactLocked()
		}
	}
	if req.Client != "" && req.Seq > gs.maxSeq[req.Client] {
		gs.maxSeq[req.Client] = req.Seq
	}
	return gs.version
}

// compactLocked rewrites the journal to the last write per arc, in
// commit order. A multi-arc edit request survives if ANY of its arcs
// has no later writer (re-applying its other arcs on replay is then
// superseded by the later entries that overwrote them, which replay
// after it).
func (gs *graphState) compactLocked() {
	last := map[int]uint64{} // arc -> version of its last writer
	for _, je := range gs.edits {
		for _, ed := range je.req.Edits {
			last[ed.Arc] = je.version
		}
	}
	kept := gs.edits[:0]
	for _, je := range gs.edits {
		for _, ed := range je.req.Edits {
			if last[ed.Arc] == je.version {
				kept = append(kept, je)
				break
			}
		}
	}
	gs.edits = kept
	gs.compactions++
}

// syncLocked brings one node up to the journal's current version:
// upload the body if the node's mark predates its current epoch (it
// may have lost everything), then replay the reset record and every
// edit past its watermark, original stamps intact. On success the mark
// is current; on failure the mark keeps whatever progress was made, so
// the next attempt resumes instead of restarting. Caller holds gs.mu.
func (r *Router) syncLocked(ctx context.Context, n *node, gs *graphState) error {
	mark, ok := gs.marks[n.id]
	ep := n.epoch.Load()
	if ok && mark.epoch == ep && mark.version >= gs.version {
		return nil
	}
	sp := obs.LeafN(ctx, nameSync)
	sp.AnnotateN(keyNode, uint64(n.id))
	defer sp.End()
	replayed := 0
	if !ok || mark.epoch != ep {
		// Unknown or post-ejection node: start from nothing. The upload
		// is idempotent by content (a durable node that kept the graph
		// answers from cache and skips its own WAL append).
		if gs.text != "" {
			if _, err := n.cl.UploadText(ctx, gs.text); err != nil {
				return fmt.Errorf("sync upload to %s: %w", n.url, err)
			}
		}
		mark = syncMark{epoch: ep, version: 0}
		gs.marks[n.id] = mark
	}
	if gs.resetReq != nil && mark.version < gs.resetAt {
		if _, err := n.cl.EditStamped(ctx, *gs.resetReq); err != nil {
			return fmt.Errorf("sync reset to %s: %w", n.url, err)
		}
		mark.version = gs.resetAt
		gs.marks[n.id] = mark
		replayed++
	}
	for _, je := range gs.edits {
		if je.version <= mark.version {
			continue
		}
		if _, err := n.cl.EditStamped(ctx, je.req); err != nil {
			r.telSyncReplays(replayed)
			return fmt.Errorf("sync edit v%d to %s: %w", je.version, n.url, err)
		}
		mark.version = je.version
		gs.marks[n.id] = mark
		replayed++
	}
	// Everything replayable is applied: the node is current even when
	// compaction left version gaps in the journal.
	mark.version = gs.version
	gs.marks[n.id] = mark
	r.telSyncReplays(replayed)
	return nil
}

// invalidateMarkLocked voids a node's watermark for this graph (used
// when a node 404s a fingerprint the router knows it was given: the
// node lost state without a detected ejection). Caller holds gs.mu.
func (gs *graphState) invalidateMarkLocked(n *node) {
	delete(gs.marks, n.id)
}

// syncedLocked reports whether the node's mark is current. Caller
// holds gs.mu.
func (gs *graphState) syncedLocked(n *node) bool {
	mark, ok := gs.marks[n.id]
	return ok && mark.epoch == n.epoch.Load() && mark.version >= gs.version
}
