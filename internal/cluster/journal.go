package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"tsg/internal/obs"
	"tsg/internal/serve"
)

// graphState is the router's per-fingerprint record: the write journal
// that lets any replica be (re)built to the current baseline, the sync
// marks saying which node is caught up to which version, and the
// router-level exactly-once table.
//
// The journal is the replication mechanism, not just bookkeeping.
// Writes commit to the primary, append here, then replay to the other
// replicas; a node that was dead, restarted, or newly pulled into the
// replica set by a re-hash is brought up to date by replaying the
// journal against it — upload the body, re-send the reset record and
// every edit it missed, each under its ORIGINAL (client, seq) stamp so
// a durable node that already holds a prefix in its own WAL dedupes
// that prefix and applies exactly the suffix it missed. Replay is
// therefore idempotent against every node state the cluster can reach.
type graphState struct {
	mu sync.Mutex

	fp   string
	text string // journaled .tsg body ("" if the router never saw it)
	// Structural summary from the parse, for upload responses.
	events, arcs, border int

	// version numbers accepted writes 1..n; resetAt is the version of
	// the retained reset record (0 = baseline is compile-time delays).
	// Edits before the last reset are dropped — the reset record plus
	// the edits after it fully determine the session state.
	version  uint64
	resetAt  uint64
	resetReq *serve.EditRequest
	edits    []journalEdit

	// compactions counts last-writer-per-arc journal compactions (the
	// journal stays bounded by the arc count under sustained edit load).
	compactions int

	// maxSeq is the router's own exactly-once table: client id → highest
	// seq accepted through this router. It guards the one hole node
	// tables can't cover — a retry arriving after compaction dropped the
	// original record from the journal, which a freshly synced replica
	// would otherwise re-apply out of order.
	maxSeq map[string]uint64

	// marks: node id → how far that node is known to be synced. A mark
	// taken under an older node epoch is void (the node was ejected
	// since; it may have lost anything).
	marks map[int]syncMark

	// syncGates: node id → the gate serializing journal replays to that
	// node. Replays run outside mu (they are network calls); the gate
	// keeps one replayer per (graph, node) so records land in journal
	// order while the graph's readers — and replays to other nodes —
	// proceed under mu.
	syncGates map[int]*sync.Mutex

	// dropped marks an instance evicted from r.graphs (a pristine
	// fingerprint-only reference the backends rejected). Writers that
	// held a stale pointer must re-resolve instead of journaling into
	// an orphan.
	dropped bool

	requests atomic.Uint64
}

// journalEdit is one accepted write, replayable verbatim.
type journalEdit struct {
	version uint64
	req     serve.EditRequest
}

// syncMark records a node's replication watermark for one graph.
type syncMark struct {
	epoch   uint64 // node epoch the mark is valid under
	version uint64 // journal version applied through
}

// graph returns (creating if needed) the state for a fingerprint.
func (r *Router) graph(fp string) *graphState {
	r.mu.Lock()
	defer r.mu.Unlock()
	gs := r.graphs[fp]
	if gs == nil {
		gs = &graphState{
			fp:     fp,
			maxSeq: map[string]uint64{},
			marks:  map[int]syncMark{},
		}
		r.graphs[fp] = gs
	}
	return gs
}

// lookupGraph returns the state for a fingerprint, or nil. The read
// path resolves through here: a fingerprint no backend ever confirmed
// must not allocate router state, or r.graphs grows without bound
// under bogus (or merely unknown) fingerprint references.
func (r *Router) lookupGraph(fp string) *graphState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.graphs[fp]
}

// lockGraph returns the fingerprint's state with gs.mu held,
// re-resolving when a concurrent dropIfPristine evicted the instance
// between lookup and lock (journaling into a dropped orphan would
// silently lose the record for future replication).
func (r *Router) lockGraph(fp string) *graphState {
	for {
		gs := r.graph(fp)
		gs.mu.Lock()
		if !gs.dropped {
			return gs
		}
		gs.mu.Unlock()
	}
}

// dropIfPristine evicts the graph's state if it never accumulated text
// or journal — the trail of a fingerprint-only write the backends
// rejected. Lock order is r.mu then gs.mu (the only place both are
// held); callers must hold neither.
func (r *Router) dropIfPristine(fp string, gs *graphState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.graphs[fp] != gs {
		return
	}
	gs.mu.Lock()
	if gs.text == "" && gs.version == 0 {
		gs.dropped = true
		delete(r.graphs, fp)
	}
	gs.mu.Unlock()
}

// gateLocked returns the node's replay gate, creating it on first use.
// Caller holds gs.mu.
func (gs *graphState) gateLocked(id int) *sync.Mutex {
	if gs.syncGates == nil {
		gs.syncGates = map[int]*sync.Mutex{}
	}
	g := gs.syncGates[id]
	if g == nil {
		g = &sync.Mutex{}
		gs.syncGates[id] = g
	}
	return g
}

// journalCompactAt bounds the edit journal: past this many entries it
// is compacted to the last write per arc. Compaction preserves the
// final state replay reconstructs (an overwritten write is
// unobservable) and keeps commit order among survivors; the router's
// maxSeq table keeps dropped (client, seq) stamps deduplicable.
const defaultJournalCompactAt = 65536

// appendWriteLocked journals an accepted write and returns its version.
// Caller holds gs.mu.
func (gs *graphState) appendWriteLocked(req *serve.EditRequest, compactAt int) uint64 {
	gs.version++
	if req.Reset {
		// The reset supersedes everything before it: the retained record
		// plus subsequent edits fully rebuild the session.
		gs.resetAt = gs.version
		gs.resetReq = req
		gs.edits = gs.edits[:0]
	} else {
		gs.edits = append(gs.edits, journalEdit{version: gs.version, req: *req})
		if compactAt > 0 && len(gs.edits) > compactAt {
			gs.compactLocked()
		}
	}
	if req.Client != "" && req.Seq > gs.maxSeq[req.Client] {
		gs.maxSeq[req.Client] = req.Seq
	}
	return gs.version
}

// compactLocked rewrites the journal to the last write per arc, in
// commit order. A multi-arc edit request survives if ANY of its arcs
// has no later writer (re-applying its other arcs on replay is then
// superseded by the later entries that overwrote them, which replay
// after it).
func (gs *graphState) compactLocked() {
	last := map[int]uint64{} // arc -> version of its last writer
	for _, je := range gs.edits {
		for _, ed := range je.req.Edits {
			last[ed.Arc] = je.version
		}
	}
	kept := gs.edits[:0]
	for _, je := range gs.edits {
		for _, ed := range je.req.Edits {
			if last[ed.Arc] == je.version {
				kept = append(kept, je)
				break
			}
		}
	}
	gs.edits = kept
	gs.compactions++
}

// sync brings one node up to the graph's current journal version
// WITHOUT holding gs.mu across the network: the suffix the node is
// missing is snapshotted under the lock and replayed outside it, so a
// slow or dead-but-not-yet-ejected replica stalls neither this graph's
// readers nor replays to its other replicas. The per-(graph, node)
// gate keeps replays to one node serial, so records land in journal
// order; the write path (syncLocked, under gs.mu) may still replay the
// same records concurrently with a gated replay's network phase — the
// backends' per-(client, seq) high-water dedupe makes every such
// duplicate a no-op, because both streams send consecutive journal
// records from a confirmed watermark, so the lagging stream only ever
// re-sends records the leading one already applied. Marks only advance
// (epoch-validated, never regressing), so a late completion cannot
// certify past a fresher watermark.
func (r *Router) sync(ctx context.Context, n *node, gs *graphState) error {
	gs.mu.Lock()
	if gs.syncedLocked(n) || (gs.text == "" && gs.version == 0) {
		gs.mu.Unlock()
		return nil
	}
	gate := gs.gateLocked(n.id)
	gs.mu.Unlock()

	gate.Lock()
	defer gate.Unlock()

	// Snapshot the suffix this node is missing. The journal entries are
	// copied out: compaction rewrites gs.edits' backing array in place,
	// so a borrowed sub-slice could mutate mid-replay.
	gs.mu.Lock()
	ep := n.epoch.Load()
	mark, ok := gs.marks[n.id]
	fresh := !ok || mark.epoch != ep
	if fresh {
		mark = syncMark{epoch: ep}
	} else if mark.version >= gs.version {
		gs.mu.Unlock()
		return nil
	}
	text := ""
	if fresh {
		text = gs.text
	}
	target := gs.version
	resetAt := gs.resetAt
	var resetReq *serve.EditRequest
	if gs.resetReq != nil && mark.version < gs.resetAt {
		cp := *gs.resetReq
		resetReq = &cp
	}
	var suffix []journalEdit
	for _, je := range gs.edits {
		if je.version > mark.version {
			suffix = append(suffix, je)
		}
	}
	gs.mu.Unlock()

	sp := obs.LeafN(ctx, nameSync)
	sp.AnnotateN(keyNode, uint64(n.id))
	defer sp.End()
	replayed := 0
	if fresh && text != "" {
		// Unknown or post-ejection node: start from nothing. The upload
		// is idempotent by content (a durable node that kept the graph
		// answers from cache and skips its own WAL append).
		if _, err := n.cl.UploadText(ctx, text); err != nil {
			return fmt.Errorf("sync upload to %s: %w", n.url, err)
		}
		gs.advanceMark(n, ep, 0)
	}
	if resetReq != nil {
		if _, err := n.cl.EditStamped(ctx, *resetReq); err != nil {
			r.telSyncReplays(replayed)
			return fmt.Errorf("sync reset to %s: %w", n.url, err)
		}
		gs.advanceMark(n, ep, resetAt)
		replayed++
	}
	for _, je := range suffix {
		if _, err := n.cl.EditStamped(ctx, je.req); err != nil {
			r.telSyncReplays(replayed)
			return fmt.Errorf("sync edit v%d to %s: %w", je.version, n.url, err)
		}
		gs.advanceMark(n, ep, je.version)
		replayed++
	}
	// The snapshot is fully applied: the node is current through the
	// snapshot version even where compaction left gaps. Anything
	// journaled since is a later replay's (or the write path's) job.
	gs.advanceMark(n, ep, target)
	r.telSyncReplays(replayed)
	return nil
}

// advanceMark raises the node's watermark to version, taken under
// epoch ep. It is a no-op if the node was ejected since ep (everything
// pushed under the old epoch is suspect) or if a concurrent replay
// already certified a higher version under this epoch.
func (gs *graphState) advanceMark(n *node, ep, version uint64) {
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if n.epoch.Load() != ep {
		return
	}
	if m, ok := gs.marks[n.id]; ok && m.epoch == ep && m.version >= version {
		return
	}
	gs.marks[n.id] = syncMark{epoch: ep, version: version}
}

// syncLocked is the write path's variant of sync: the edit commit
// holds gs.mu across dedupe, primary sync, commit, and journal append
// so journal order is commit order, and the primary's pre-commit
// replay must happen under that same hold. It brings one node up to
// the journal's current version: upload the body if the node's mark
// predates its current epoch (it may have lost everything), then
// replay the reset record and every edit past its watermark, original
// stamps intact. On success the mark is current; on failure the mark
// keeps whatever progress was made, so the next attempt resumes
// instead of restarting. Caller holds gs.mu.
func (r *Router) syncLocked(ctx context.Context, n *node, gs *graphState) error {
	mark, ok := gs.marks[n.id]
	ep := n.epoch.Load()
	if ok && mark.epoch == ep && mark.version >= gs.version {
		return nil
	}
	sp := obs.LeafN(ctx, nameSync)
	sp.AnnotateN(keyNode, uint64(n.id))
	defer sp.End()
	replayed := 0
	if !ok || mark.epoch != ep {
		// Unknown or post-ejection node: start from nothing. The upload
		// is idempotent by content (a durable node that kept the graph
		// answers from cache and skips its own WAL append).
		if gs.text != "" {
			if _, err := n.cl.UploadText(ctx, gs.text); err != nil {
				return fmt.Errorf("sync upload to %s: %w", n.url, err)
			}
		}
		mark = syncMark{epoch: ep, version: 0}
		gs.marks[n.id] = mark
	}
	if gs.resetReq != nil && mark.version < gs.resetAt {
		if _, err := n.cl.EditStamped(ctx, *gs.resetReq); err != nil {
			return fmt.Errorf("sync reset to %s: %w", n.url, err)
		}
		mark.version = gs.resetAt
		gs.marks[n.id] = mark
		replayed++
	}
	for _, je := range gs.edits {
		if je.version <= mark.version {
			continue
		}
		if _, err := n.cl.EditStamped(ctx, je.req); err != nil {
			r.telSyncReplays(replayed)
			return fmt.Errorf("sync edit v%d to %s: %w", je.version, n.url, err)
		}
		mark.version = je.version
		gs.marks[n.id] = mark
		replayed++
	}
	// Everything replayable is applied: the node is current even when
	// compaction left version gaps in the journal.
	mark.version = gs.version
	gs.marks[n.id] = mark
	r.telSyncReplays(replayed)
	return nil
}

// invalidateMarkLocked voids a node's watermark for this graph (used
// when a node 404s a fingerprint the router knows it was given: the
// node lost state without a detected ejection). Caller holds gs.mu.
func (gs *graphState) invalidateMarkLocked(n *node) {
	delete(gs.marks, n.id)
}

// syncedLocked reports whether the node's mark is current. Caller
// holds gs.mu.
func (gs *graphState) syncedLocked(n *node) bool {
	mark, ok := gs.marks[n.id]
	return ok && mark.epoch == n.epoch.Load() && mark.version >= gs.version
}
