package cluster

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyDigest tracks recent successful hop latencies in a small ring
// and keeps a cached p95 — the adaptive hedge delay ("The Tail at
// Scale": a backup request fired after the 95th percentile hedges ~5%
// of traffic by construction). Two properties matter:
//
//   - Only SUCCESSFUL hops feed it. Cancelled hedge losers and failed
//     attempts would otherwise pollute the quantile the hedge delay
//     derives from, and in the hedged steady state winners are fast, so
//     the digest self-stabilizes instead of chasing a slow node's tail.
//   - The ring overwrites oldest-first, so a slow spell decays out
//     after ~latWindow observations rather than anchoring the delay
//     forever.
const (
	latWindow      = 256
	latRecalcEvery = 32 // re-sort cadence: amortizes the O(n log n) cost
	latMinSamples  = 32 // below this the caller uses its static default
)

type latencyDigest struct {
	mu  sync.Mutex
	buf [latWindow]float64
	n   int           // filled entries
	i   int           // next write slot
	q95 atomic.Uint64 // Float64bits of the cached p95 seconds; 0 = under-sampled
}

func (d *latencyDigest) observe(dt time.Duration) {
	d.mu.Lock()
	d.buf[d.i] = dt.Seconds()
	d.i = (d.i + 1) % latWindow
	if d.n < latWindow {
		d.n++
	}
	if d.n >= latMinSamples && d.i%latRecalcEvery == 0 {
		tmp := make([]float64, d.n)
		copy(tmp, d.buf[:d.n])
		sort.Float64s(tmp)
		d.q95.Store(math.Float64bits(tmp[(len(tmp)*95)/100]))
	}
	d.mu.Unlock()
}

// p95 returns the cached quantile, or 0 while under-sampled.
func (d *latencyDigest) p95() time.Duration {
	return time.Duration(math.Float64frombits(d.q95.Load()) * float64(time.Second))
}
