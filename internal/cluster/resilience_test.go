package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tsg/client"
	"tsg/internal/serve"
)

// slowV1 delays every /v1 request by pause, leaving /healthz untouched
// — it stretches a journal replay out so a test can flap the breaker
// while the replay is demonstrably in flight.
type slowV1 struct {
	pause time.Duration
	h     http.Handler
}

func (s *slowV1) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		time.Sleep(s.pause)
	}
	s.h.ServeHTTP(w, r)
}

// TestWarmSyncRacesProbeFlap pins the epoch discipline under the
// nastiest interleaving the prober can produce: a journal replay is in
// flight to a state-lost node while the node is ejected, re-admitted,
// and ejected AGAIN. Every mark the stale replay certifies was taken
// under a dead epoch and must be void — if the router nonetheless
// believes the node is synced, the node must actually hold the current
// baseline; and once the flapping stops, the replica must converge
// bit-identically through the normal re-sync machinery.
func TestWarmSyncRacesProbeFlap(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	text := pipelineText(t, 4)
	up, err := tc.cl.UploadText(ctx, text)
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)
	var last *client.EditResponse
	for i := 0; i < 12; i++ {
		last, err = tc.cl.Edit(ctx, ref, []client.DelayEdit{{Arc: i % 3, Delay: 1.0 + float64(i)/3}})
		if err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}

	// The victim loses its state (fresh backend) and every /v1 call to
	// it now takes 25ms, so the 13-record replay stays in flight for
	// hundreds of milliseconds — a wide-open window to flap in.
	placed := Placement(up.Fingerprint, tc.urls, 2)
	victim := placed[len(placed)-1]
	n := tc.router.nodeByURL(victim)
	var fresh http.Handler = &slowV1{pause: 25 * time.Millisecond, h: serve.New(serve.Config{})}
	tc.gateOf(victim).h.Store(&fresh)
	gs := tc.router.graph(up.Fingerprint)
	gs.mu.Lock()
	gs.invalidateMarkLocked(n)
	gs.mu.Unlock()

	syncDone := make(chan error, 1)
	go func() { syncDone <- tc.router.sync(ctx, n, gs) }()

	// Flap while the replay runs: eject (trip #1), wait for the prober
	// to re-admit, eject again (trip #2). Each trip bumps the epoch.
	time.Sleep(40 * time.Millisecond)
	ep0 := n.epoch.Load()
	tc.router.noteFailure(n) // BreakerThreshold defaults to 1 here: trips
	tc.waitHealthy(t, victim, false)
	tc.waitHealthy(t, victim, true) // prober re-admits (half-open)
	tc.router.noteFailure(n)        // half-open: one failure re-trips
	tc.waitHealthy(t, victim, false)
	if got := n.epoch.Load(); got < ep0+2 {
		t.Fatalf("epoch advanced %d -> %d across two trips, want +2", ep0, got)
	}
	if err := <-syncDone; err != nil {
		t.Logf("in-flight sync ended: %v (acceptable — its epoch died under it)", err)
	}

	// The certification invariant: IF the router believes the victim is
	// synced right now, the victim must actually answer the current
	// baseline. A stale-epoch replay that certified a fresh-epoch mark
	// would break exactly this.
	gs.mu.Lock()
	certified := gs.syncedLocked(n)
	mark, hasMark := gs.marks[n.id]
	gs.mu.Unlock()
	if hasMark && mark.epoch > n.epoch.Load() {
		t.Fatalf("mark epoch %d is ahead of the node epoch %d", mark.epoch, n.epoch.Load())
	}
	vcl := client.New(victim, client.WithRetryPolicy(client.RetryPolicy{}))
	if certified {
		got, err := vcl.Analyze(ctx, ref)
		if err != nil || got.Lambda.Text != last.Lambda.Text {
			t.Fatalf("router certified the flapped node as synced, but it answers err=%v λ=%v (want %s) — a stale-epoch mark was trusted",
				err, got, last.Lambda.Text)
		}
	}

	// Flapping over: the normal machinery (probe re-admission, warm
	// sync, read-path re-sync) must converge the replica bit-identically.
	tc.waitHealthy(t, victim, true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tc.cl.Analyze(ctx, ref); err != nil {
			t.Fatalf("routed analyze during recovery: %v", err)
		}
		got, err := vcl.Analyze(ctx, ref)
		if err == nil && got.Lambda.Text == last.Lambda.Text {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flapped replica never converged (err=%v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// failV1 wraps a backend so every /v1 request answers 500 while
// /healthz stays healthy — the asymmetric partition shape: the probe
// path is perfect, the request path is dead.
type failV1 struct{ h http.Handler }

func (f *failV1) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"asymmetric partition"}`))
		return
	}
	f.h.ServeHTTP(w, r)
}

// TestBreakerTripsOnRequestsDespiteGreenProbes pins the reason the
// breaker keeps a request-only failure streak: probe successes must
// not absolve request failures, or an asymmetric partition (requests
// dead, probes perfect) would never eject the node.
func TestBreakerTripsOnRequestsDespiteGreenProbes(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	up, err := tc.cl.UploadText(ctx, pipelineText(t, 4))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)

	victim := Placement(up.Fingerprint, tc.urls, 2)[0]
	var cut http.Handler = &failV1{h: serve.New(serve.Config{})}
	tc.gateOf(victim).h.Store(&cut)

	// Reads keep succeeding (failover to the healthy replica) while the
	// request streak trips the victim's breaker — even though every
	// probe in between reports the node healthy.
	deadline := time.Now().Add(5 * time.Second)
	n := tc.router.nodeByURL(victim)
	for n.trips.Load() == 0 {
		if _, err := tc.cl.Analyze(ctx, ref); err != nil {
			t.Fatalf("read during partition failed: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never tripped on request-path failures (probes green)")
		}
	}
	if n.state.Load() != breakerOpen && n.healthy.Load() {
		t.Fatalf("victim tripped but still routable: state=%s healthy=%v", breakerName(n.state.Load()), n.healthy.Load())
	}
}

// TestRetryBudgetBounds pins the token-bucket arithmetic: starts full,
// spends whole tokens, refuses past empty, credits fractionally up to
// the cap.
func TestRetryBudgetBounds(t *testing.T) {
	b := newTokenBucket(2, 0.5)
	if got := b.tokens(); got != 2 {
		t.Fatalf("fresh bucket holds %v tokens, want 2 (starts full)", got)
	}
	if !b.take() || !b.take() {
		t.Fatalf("bucket refused a take while holding tokens")
	}
	if b.take() {
		t.Fatalf("bucket granted a take while empty")
	}
	b.credit() // +0.5
	if b.take() {
		t.Fatalf("bucket granted a whole token on half a token of credit")
	}
	b.credit() // 1.0 total
	if !b.take() {
		t.Fatalf("bucket refused a take after a full token of credit")
	}
	for i := 0; i < 100; i++ {
		b.credit()
	}
	if got := b.tokens(); got != 2 {
		t.Fatalf("bucket credited past its cap: %v tokens, want 2", got)
	}
}

// TestReloadNodesLifecycle pins dynamic membership end to end: a
// joiner earns admission (probe → half-open → warm-sync) before
// serving bit-identical answers, a removed node leaves placement, and
// invalid or no-op reloads never disturb the pool.
func TestReloadNodesLifecycle(t *testing.T) {
	tc := newTestCluster(t)
	ctx := context.Background()
	up, err := tc.cl.UploadText(ctx, pipelineText(t, 4))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)
	var last *client.EditResponse
	for i := 0; i < 6; i++ {
		if last, err = tc.cl.Edit(ctx, ref, []client.DelayEdit{{Arc: i % 3, Delay: 2.0 + float64(i)}}); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}

	// Rejected reloads: duplicates, empty URL, empty pool.
	for _, bad := range [][]string{
		{tc.urls[0], tc.urls[0], tc.urls[1]},
		{tc.urls[0], " "},
		{},
	} {
		if err := tc.router.ReloadNodes(bad); err == nil {
			t.Fatalf("ReloadNodes(%q) accepted an invalid pool", bad)
		}
	}
	// A no-op reload (same membership) must not count as a change.
	before := tc.router.membershipReloads.Load()
	if err := tc.router.ReloadNodes(tc.urls); err != nil {
		t.Fatalf("no-op reload: %v", err)
	}
	if got := tc.router.membershipReloads.Load(); got != before {
		t.Fatalf("no-op reload counted as a membership change (%d -> %d)", before, got)
	}

	// Join: the new backend starts cold and OPEN — it must not serve
	// until probes admit it and the warm sync runs.
	joiner := httptest.NewServer(serve.New(serve.Config{}))
	t.Cleanup(joiner.Close)
	if err := tc.router.ReloadNodes(append(append([]string{}, tc.urls...), joiner.URL)); err != nil {
		t.Fatalf("adding joiner: %v", err)
	}
	jn := tc.router.nodeByURL(joiner.URL)
	if jn == nil {
		t.Fatalf("joiner missing from pool after reload")
	}
	tc.waitHealthy(t, joiner.URL, true)

	// The joiner serves bit-identical state for every graph re-hashed
	// onto it (routed reads trigger the sync).
	newPool := tc.router.Nodes()
	if len(newPool) != 4 {
		t.Fatalf("pool size %d after join, want 4", len(newPool))
	}
	onJoiner := false
	for _, u := range Placement(up.Fingerprint, newPool, 2) {
		onJoiner = onJoiner || u == joiner.URL
	}
	if onJoiner {
		jcl := client.New(joiner.URL, client.WithRetryPolicy(client.RetryPolicy{}))
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := tc.cl.Analyze(ctx, ref); err != nil {
				t.Fatalf("routed analyze after join: %v", err)
			}
			got, err := jcl.Analyze(ctx, ref)
			if err == nil && got.Lambda.Text == last.Lambda.Text {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("joiner never served the current baseline (err=%v)", err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Leave: drop one original node; placement must re-hash to the
	// remaining pool and reads keep answering.
	if err := tc.router.ReloadNodes([]string{tc.urls[1], tc.urls[2], joiner.URL}); err != nil {
		t.Fatalf("removing %s: %v", tc.urls[0], err)
	}
	removed := tc.router.nodeByURL(tc.urls[0])
	if removed != nil {
		t.Fatalf("removed node still resolvable in the pool")
	}
	for i := 0; i < 10; i++ {
		if _, err := tc.cl.Analyze(ctx, ref); err != nil {
			t.Fatalf("read %d after removal: %v", i, err)
		}
	}
}
