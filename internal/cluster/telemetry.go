package cluster

import (
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tsg/internal/obs"
)

// Pre-interned span names and annotation keys for the router's request
// trees. The root is router.<endpoint>; router.route is the placement
// decision, router.hop one forwarded backend call, router.fanout the
// write-replication / upload fan-out stage, router.sync a journal
// replay bringing a replica up to date.
var (
	nameRoute  = obs.N("router.route")
	nameHop    = obs.N("router.hop")
	nameFanout = obs.N("router.fanout")
	nameSync   = obs.N("router.sync")

	keyNode     = obs.N("node")
	keyReplicas = obs.N("replicas")

	tierFailover = obs.N("failover")
	tierDeduped  = obs.N("deduped")
	tierNoNode   = obs.N("no_replica")
)

// telemetry is the router's observability surface, mirroring the
// serve layer's: a span ring for /debug/trace, a registry for
// /metrics, per-endpoint request histograms fed by root-span ends, and
// per-node hop histograms observed directly on the forwarding path.
type telemetry struct {
	tracer *obs.Tracer
	reg    *obs.Registry

	reqDur *obs.HistogramVec // request latency by endpoint
	hopDur *obs.HistogramVec // backend hop latency by node

	rootNames [rEndpoints]obs.Name
	reqDurEp  [rEndpoints]*obs.Histogram
}

func newTelemetry(r *Router, traceBuffer int, version string) *telemetry {
	if traceBuffer <= 0 {
		traceBuffer = 4096
	}
	t := &telemetry{
		tracer: obs.NewTracer(traceBuffer),
		reg:    obs.NewRegistry(),
		reqDur: obs.NewHistogramVec("tsgrouter_http_request_duration_seconds", "Request latency through the router, edge to edge, by endpoint.", obs.LatencyBuckets, "endpoint"),
		hopDur: obs.NewHistogramVec("tsgrouter_node_request_duration_seconds", "Latency of forwarded backend requests, by node.", obs.LatencyBuckets, "node"),
	}
	durHist := make(map[uint32]*obs.Histogram, rEndpoints)
	for ep, name := range rEndpointNames {
		t.rootNames[ep] = obs.N("router." + name)
		t.reqDurEp[ep] = t.reqDur.With(name)
		durHist[uint32(t.rootNames[ep])] = t.reqDurEp[ep]
	}
	// Per-node hop histograms live on the nodes themselves (attached in
	// newNode), so dynamically added pool members get one too.
	t.tracer.OnEnd(func(name uint32, seconds float64) {
		if h := durHist[name]; h != nil {
			h.Observe(seconds)
		}
	})

	if version == "" {
		version = "dev"
	}
	gauge := func(name, help string, labels []string, fn func(emit func([]string, float64))) obs.Func {
		return obs.Func{D: obs.Desc{Name: name, Help: help, Type: "gauge", Labels: labels}, Fn: fn}
	}
	counter := func(name, help string, labels []string, fn func(emit func([]string, float64))) obs.Func {
		return obs.Func{D: obs.Desc{Name: name, Help: help, Type: "counter", Labels: labels}, Fn: fn}
	}
	t.reg.MustRegister(
		counter("tsgrouter_http_requests_total", "Requests received at the router, by endpoint.", []string{"endpoint"}, func(emit func([]string, float64)) {
			for ep, name := range rEndpointNames {
				emit([]string{name}, float64(r.queries[ep].Load()))
			}
		}),
		counter("tsgrouter_http_request_failures_total", "Router requests answered with a non-2xx status.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.failures.Load()))
		}),
		t.reqDur,
		gauge("tsgrouter_node_healthy", "Health of each backend node: 1 routable, 0 ejected.", []string{"node", "url"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				v := 0.0
				if n.healthy.Load() {
					v = 1
				}
				emit([]string{strconv.Itoa(n.id), n.url}, v)
			}
		}),
		counter("tsgrouter_node_ejections_total", "Times each node was ejected after consecutive failures.", []string{"node"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				emit([]string{strconv.Itoa(n.id)}, float64(n.ejections.Load()))
			}
		}),
		counter("tsgrouter_node_requests_total", "Requests forwarded to each node that returned an answer.", []string{"node"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				emit([]string{strconv.Itoa(n.id)}, float64(n.requests.Load()))
			}
		}),
		counter("tsgrouter_node_failures_total", "Forwarded requests and probes that failed, by node.", []string{"node"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				emit([]string{strconv.Itoa(n.id)}, float64(n.failures.Load()))
			}
		}),
		gauge("tsgrouter_node_inflight_requests", "Requests currently forwarded to each node (the power-of-two-choices balancing signal).", []string{"node"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				emit([]string{strconv.Itoa(n.id)}, float64(n.inflight.Load()))
			}
		}),
		t.hopDur,
		counter("tsgrouter_failovers_total", "Requests answered by a non-first-choice replica after the preferred one failed.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.failovers.Load()))
		}),
		counter("tsgrouter_sync_replays_total", "Journal records (uploads excluded) replayed to bring replicas up to date.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.syncReplays.Load()))
		}),
		counter("tsgrouter_write_replications_total", "Secondary-replica write applications, by outcome.", []string{"outcome"}, func(emit func([]string, float64)) {
			emit([]string{"ok"}, float64(r.replOK.Load()))
			emit([]string{"failed"}, float64(r.replFail.Load()))
		}),
		counter("tsgrouter_dedupe_hits_total", "Writes acknowledged from the router's own exactly-once table without touching a backend.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.dedupes.Load()))
		}),
		counter("tsgrouter_warm_syncs_total", "Background replica-warming syncs run after a node re-admission.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.warmSyncs.Load()))
		}),
		gauge("tsgrouter_breaker_state", "Each node's circuit-breaker state: 0 closed, 1 open, 2 half-open.", []string{"node", "url"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				emit([]string{strconv.Itoa(n.id), n.url}, float64(n.state.Load()))
			}
		}),
		counter("tsgrouter_breaker_trips_total", "Times each node's circuit breaker tripped open.", []string{"node"}, func(emit func([]string, float64)) {
			for _, n := range r.poolNodes() {
				emit([]string{strconv.Itoa(n.id)}, float64(n.trips.Load()))
			}
		}),
		counter("tsgrouter_hedge_attempts_total", "Hedged (backup) read attempts launched after the adaptive delay.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.hedgeAttempts.Load()))
		}),
		counter("tsgrouter_hedge_wins_total", "Hedged reads where the backup replica answered first.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.hedgeWins.Load()))
		}),
		counter("tsgrouter_hedge_suppressed_total", "Hedge launches suppressed by an exhausted hedge budget.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.hedgeDenied.Load()))
		}),
		gauge("tsgrouter_hedge_delay_seconds", "Current adaptive hedge delay (p95 of recent successful hops, clamped).", nil, func(emit func([]string, float64)) {
			emit(nil, r.hedgeDelay().Seconds())
		}),
		counter("tsgrouter_retry_budget_denials_total", "Failover or retry attempts suppressed by an exhausted retry budget.", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.retryDenied.Load()))
		}),
		gauge("tsgrouter_retry_budget_tokens", "Tokens currently in the retry budget.", nil, func(emit func([]string, float64)) {
			emit(nil, r.retryBudget.tokens())
		}),
		counter("tsgrouter_membership_reloads_total", "Node-pool membership reloads applied (nodes-file change or SIGHUP).", nil, func(emit func([]string, float64)) {
			emit(nil, float64(r.membershipReloads.Load()))
		}),
		gauge("tsgrouter_pool_nodes", "Backend nodes currently in the pool (live or not).", nil, func(emit func([]string, float64)) {
			emit(nil, float64(len(r.poolNodes())))
		}),
		gauge("tsgrouter_graphs", "Fingerprints the router holds journal state for.", nil, func(emit func([]string, float64)) {
			r.mu.Lock()
			n := len(r.graphs)
			r.mu.Unlock()
			emit(nil, float64(n))
		}),
		gauge("tsgrouter_journal_edits", "Edit records currently journaled across all graphs.", nil, func(emit func([]string, float64)) {
			r.mu.Lock()
			states := make([]*graphState, 0, len(r.graphs))
			for _, gs := range r.graphs {
				states = append(states, gs)
			}
			r.mu.Unlock()
			total := 0
			for _, gs := range states {
				gs.mu.Lock()
				total += len(gs.edits)
				gs.mu.Unlock()
			}
			emit(nil, float64(total))
		}),
		gauge("tsgrouter_build_info", "Build metadata; the value is always 1.", []string{"version", "goversion"}, func(emit func([]string, float64)) {
			emit([]string{version, runtime.Version()}, 1)
		}),
		gauge("tsgrouter_uptime_seconds", "Seconds since the router started.", nil, func(emit func([]string, float64)) {
			emit(nil, time.Since(r.start).Seconds())
		}),
	)
	return t
}

// telSyncReplays adds replayed journal records to the counter (no-op
// tally kept on the Router so it works with telemetry disabled too).
func (r *Router) telSyncReplays(n int) {
	if n > 0 {
		r.syncReplays.Add(uint64(n))
	}
}

// handleMetrics renders the router's registry in Prometheus text
// exposition format (same conformance contract as the serve layer:
// promlint parses this back in CI).
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if r.tel == nil {
		r.writeErrorStatus(w, http.StatusNotFound, "metrics disabled on this router (Config.DisableObs)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var b strings.Builder
	if err := r.tel.reg.WritePrometheus(&b); err != nil {
		r.writeErrorStatus(w, http.StatusInternalServerError, err.Error())
		return
	}
	_, _ = w.Write([]byte(b.String()))
}

// handleDebugTrace serves the router's span ring, like the serve
// layer's /debug/trace (?format=tree renders the indented text form).
func (r *Router) handleDebugTrace(w http.ResponseWriter, req *http.Request) {
	if r.tel == nil {
		r.writeErrorStatus(w, http.StatusNotFound, "tracing disabled on this router (Config.DisableObs)")
		return
	}
	spans := r.tel.tracer.Snapshot()
	if req.URL.Query().Get("format") == "tree" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		obs.WriteTree(w, spans)
		return
	}
	r.writeJSON(w, struct {
		Recorded uint64           `json:"recorded_total"`
		Spans    []obs.SpanRecord `json:"spans"`
	}{Recorded: r.tel.tracer.Recorded(), Spans: spans})
}
