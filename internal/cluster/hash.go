// Package cluster is the distributed serving tier: a stateless routing
// front end that spreads graph fingerprints across a pool of tsgserved
// backends and keeps each graph's replica set consistent through node
// failures and restarts.
//
// Placement is rendezvous (highest-random-weight) hashing of the
// canonical content fingerprint (sg.Fingerprint via serve.ContentKey —
// already the engine-cache key, so the shard key and the cache key are
// one and the same) over the configured node list. Each graph gets an
// ordered replica set: the top-R nodes by hash weight. The first live
// member is the graph's primary (all writes pin there), the rest are
// read replicas. Rendezvous hashing gives the property consistent-hash
// schemes want without a ring: when a node dies, only the fingerprints
// that had it in their replica set move, and they re-hash to the
// next-highest survivor — everything else stays put.
//
// The Router (router.go) serves the same /v1 protocol as a single
// node, so clients cannot tell a cluster from one tsgserved — except
// that it survives losing a backend.
package cluster

import (
	"hash/fnv"
	"sort"
)

// weight is the rendezvous score of (node, fingerprint): a 64-bit FNV-1a
// over the node identity and the fingerprint, separated so neither can
// forge a prefix of the other. Pure function — every router instance
// computes identical placements from the same node list, which is what
// makes the routing tier stateless and horizontally replicable.
func weight(node, fp string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(fp))
	return h.Sum64()
}

// Placement returns the fingerprint's ordered replica set: the
// `replicas` highest-weight nodes, primary first. Nodes are distinct by
// construction (each node scores once). With fewer nodes than replicas
// the whole pool is returned. The node slice is not modified.
func Placement(fp string, nodes []string, replicas int) []string {
	if replicas <= 0 {
		replicas = 1
	}
	type scored struct {
		node string
		w    uint64
	}
	sc := make([]scored, len(nodes))
	for i, n := range nodes {
		sc[i] = scored{node: n, w: weight(n, fp)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].w != sc[j].w {
			return sc[i].w > sc[j].w
		}
		return sc[i].node < sc[j].node // total order even on hash ties
	})
	if replicas > len(sc) {
		replicas = len(sc)
	}
	out := make([]string, replicas)
	for i := range out {
		out[i] = sc[i].node
	}
	return out
}
