package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/cluster"
	"tsg/internal/fault"
	"tsg/internal/serve"
)

func init() {
	register(Experiment{
		ID:    "CHAOS2",
		Title: "network-fault drills through the deterministic fault harness: straggler node vs hedged reads, flaky node vs circuit breaker, asymmetric partition vs request-path ejection, membership churn under load — zero failed client requests everywhere",
		Run:   runCHAOS2,
	})
}

// runCHAOS2 drives the router's resilience stack through four scripted
// network-fault scenarios, each injected by internal/fault's
// deterministic transport on the router's own backend hops (the same
// -fault-plan machinery tsgrouter exposes). The common hard gate is the
// distributed tier's contract: not one client-visible request may fail
// in any scenario, and replicas must be bit-identical after the fault
// heals.
//
// Scenario 1 (straggler node vs hedged reads): one backend serves a
// slice of its responses 120ms late — the classic tail-latency
// straggler, too slow to tolerate, too healthy for health checks or
// breakers (every hop still succeeds). Unhedged, those stragglers land
// in the p99 untouched; with hedged reads the router fires a backup
// attempt at its adaptive delay (p95 of recent hop latency) and takes
// whichever replica answers first. Full-run gate: hedged p99 ≤ 3× the
// healthy baseline p99 (floored at 2× the minimum hedge delay — below
// that the comparison measures scheduler noise, not hedging), against
// an unhedged contrast run whose worst read absorbs the full injected
// latency (p2c steering dodges most straggles, but the read that
// triggers one has no rescue without a hedge).
//
// Scenario 2 (flaky node vs circuit breaker): one backend's
// connections reset with probability 0.45 — declared through the
// fault-plan DSL, exactly as a shell drill would write it. The
// breaker's request-failure streak must trip at least once; failover
// plus the retry budget keep every client request whole; after the
// plan moves to its healed phase the replicas must converge
// bit-identically.
//
// Scenario 3 (asymmetric partition vs request-path ejection): the
// router's /v1 responses from one backend are dropped while its
// /healthz probe path stays perfect — the router-sees-failure,
// prober-sees-health split that pure probe counting can never eject.
// Only the breaker's probe-unclearable request-failure streak takes
// the node out (the gate asserts the trip); dropped-response writes
// that committed on the backend before the response vanished are
// re-sent on failover and absorbed by the (client, seq) dedupe. After
// heal, replicas must again be bit-identical.
//
// Scenario 4 (membership churn under load): with sustained edit+read
// traffic flowing, a fourth backend joins via ReloadNodes (it must
// earn admission through probe → half-open → warm-sync before taking
// reads) and then an original member is removed (its shard re-hashes
// to survivors while in-flight requests drain). Zero failed requests
// across both transitions; every graph's current replica set answers
// bit-identically afterwards.
func runCHAOS2(w io.Writer) error {
	if err := chaosStragglerHedge(w); err != nil {
		return fmt.Errorf("straggler/hedge: %w", err)
	}
	if err := chaosFlakyBreaker(w); err != nil {
		return fmt.Errorf("flaky/breaker: %w", err)
	}
	if err := chaosAsymmetricPartition(w); err != nil {
		return fmt.Errorf("asymmetric partition: %w", err)
	}
	if err := chaosMembershipChurn(w); err != nil {
		return fmt.Errorf("membership churn: %w", err)
	}
	return nil
}

// --- topology + accounting helpers ----------------------------------------

// chaosBackends boots n plain in-memory backends.
func chaosBackends(n int) (urls []string, cleanup func()) {
	backends := make([]*httptest.Server, n)
	urls = make([]string, n)
	for i := range backends {
		backends[i] = httptest.NewServer(serve.New(serve.Config{DisableObs: true}))
		urls[i] = backends[i].URL
	}
	return urls, func() {
		for _, b := range backends {
			b.Close()
		}
	}
}

// chaosRouter stands up a started router over urls whose backend
// clients all go through a fault.Transport armed with plan. The plan
// must be fully built first: the transport reads its rule table
// locklessly, so rules cannot be added once probes are flowing.
func chaosRouter(urls []string, plan *fault.Plan, mut func(*cluster.Config)) (*cluster.Router, *httptest.Server, func(), error) {
	cfg := cluster.Config{
		Nodes:            urls,
		Replicas:         2,
		ProbeInterval:    25 * time.Millisecond,
		FailThreshold:    3,
		ReadmitThreshold: 2,
		HopTimeout:       2 * time.Second,
		DisableObs:       true,
		HTTPClient:       &http.Client{Transport: fault.NewTransport(nil, plan)},
	}
	if mut != nil {
		mut(&cfg)
	}
	router, err := cluster.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	router.Start()
	front := httptest.NewServer(router)
	return router, front, func() {
		front.Close()
		router.Stop()
	}, nil
}

// routerStatus reads the router's full /debug/cluster document.
func routerStatus(r *cluster.Router) cluster.ClusterStatus {
	rec := httptest.NewRecorder()
	req, _ := http.NewRequest(http.MethodGet, "/debug/cluster", nil)
	r.ServeHTTP(rec, req)
	var st cluster.ClusterStatus
	_ = json.NewDecoder(rec.Body).Decode(&st)
	return st
}

func nodeStatus(r *cluster.Router, url string) (cluster.ClusterNodeStatus, bool) {
	for _, ns := range routerStatus(r).Nodes {
		if ns.URL == url {
			return ns, true
		}
	}
	return cluster.ClusterNodeStatus{}, false
}

// uploadGraphs pushes the working set through the router.
func uploadGraphs(cl *client.Client, graphs []clusterGraph) error {
	ctx := context.Background()
	for _, g := range graphs {
		if _, err := cl.UploadText(ctx, g.text); err != nil {
			return fmt.Errorf("upload %s: %w", g.name, err)
		}
	}
	return nil
}

// tally is the zero-failed-requests scoreboard shared by a scenario's
// traffic goroutines.
type tally struct {
	requests atomic.Int64
	failures atomic.Int64
	mu       sync.Mutex
	first    error
}

func (t *tally) note(err error) {
	t.requests.Add(1)
	if err != nil {
		t.failures.Add(1)
		t.mu.Lock()
		if t.first == nil {
			t.first = err
		}
		t.mu.Unlock()
	}
}

func (t *tally) check(what string) error {
	if f := t.failures.Load(); f > 0 {
		t.mu.Lock()
		first := t.first
		t.mu.Unlock()
		return fmt.Errorf("%d of %d client requests failed %s (first: %v)", f, t.requests.Load(), what, first)
	}
	return nil
}

// driveReadsTimed hammers analyze-by-fingerprint from workers
// concurrent clients — pause apart per worker, so the pick-time
// in-flight signal stays realistic instead of saturating — and returns
// every request's latency. Any failed request fails the scenario.
func driveReadsTimed(front string, graphs []clusterGraph, workers, total int, pause time.Duration) ([]time.Duration, error) {
	ctx := context.Background()
	var wg sync.WaitGroup
	var tl tally
	per := total / workers
	lat := make([][]time.Duration, workers)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			cl := client.New(front)
			lat[wkr] = make([]time.Duration, 0, per)
			for i := 0; i < per; i++ {
				g := graphs[(wkr+i)%len(graphs)]
				t0 := time.Now()
				_, err := cl.Analyze(ctx, client.ByFingerprint(g.fp))
				tl.note(err)
				if err != nil {
					return
				}
				lat[wkr] = append(lat[wkr], time.Since(t0))
				if pause > 0 {
					time.Sleep(pause)
				}
			}
		}(wkr)
	}
	wg.Wait()
	if err := tl.check("in the timed read drive"); err != nil {
		return nil, err
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	return all, nil
}

func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)*99)/100]
}

// mixedLoad starts edit walkers (one serial walker per graph, so
// stamps stay ordered per client) and read workers against the front,
// all scored on tl; the returned stop function ends the traffic and
// waits it out.
func mixedLoad(front string, graphs []clusterGraph, readWorkers int, tl *tally) (stopAll func()) {
	ctx := context.Background()
	var wg sync.WaitGroup
	var stop atomic.Bool
	for gi := range graphs {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ecl := client.New(front)
			ref := client.ByFingerprint(graphs[gi].fp)
			for e := 0; !stop.Load(); e++ {
				_, err := ecl.Edit(ctx, ref, []client.DelayEdit{{Arc: (gi + e) % graphs[gi].arcs, Delay: 1.0 + float64(e%7)}})
				tl.note(err)
				time.Sleep(8 * time.Millisecond)
			}
		}(gi)
	}
	for wkr := 0; wkr < readWorkers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rcl := client.New(front)
			for i := 0; !stop.Load(); i++ {
				g := graphs[(wkr+i)%len(graphs)]
				_, err := rcl.Analyze(ctx, client.ByFingerprint(g.fp))
				tl.note(err)
				time.Sleep(4 * time.Millisecond)
			}
		}(wkr)
	}
	return func() {
		stop.Store(true)
		wg.Wait()
	}
}

// convergedReplicas polls until every replica of every graph answers a
// λ bit-identical to the routed answer (routed reads drive the resync
// of laggards), failing at the deadline.
func convergedReplicas(r *cluster.Router, front string, graphs []clusterGraph, within time.Duration) error {
	ctx := context.Background()
	cl := client.New(front)
	urls := r.Nodes()
	deadline := time.Now().Add(within)
	for _, g := range graphs {
		ref := client.ByFingerprint(g.fp)
		placed := cluster.Placement(g.fp, urls, 2)
		for {
			want, err := cl.Analyze(ctx, ref)
			if err != nil {
				return fmt.Errorf("routed analyze of %s: %w", g.name, err)
			}
			ok := true
			var mismatch error
			for _, u := range placed {
				got, err := directClient(u).Analyze(ctx, ref)
				if err != nil || got.Lambda.Text != want.Lambda.Text || got.Lambda.Num != want.Lambda.Num || got.Lambda.Den != want.Lambda.Den {
					ok = false
					mismatch = fmt.Errorf("replica %s of %s: err=%v, λ mismatch", u, g.name, err)
					break
				}
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replicas never converged: %w", mismatch)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// --- scenario 1: straggler node vs hedged reads ---------------------------

func chaosStragglerHedge(w io.Writer) error {
	const (
		straggle = 120 * time.Millisecond
		pause    = 2 * time.Millisecond
	)
	graphCount, workers, warmReads, measuredReads := 5, 6, 600, 2400
	if Quick {
		graphCount, workers, warmReads, measuredReads = 3, 4, 120, 400
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}

	measure := func(disableHedge bool) (base, slow, slowMax time.Duration, st cluster.ClusterStatus, err error) {
		urls, closeBackends := chaosBackends(3)
		defer closeBackends()
		// The straggler: graph 0's primary — hot on both read and write
		// paths — answers 8% of its /v1 responses 120ms late. Every hop
		// still SUCCEEDS: probes stay green, the breaker stays closed,
		// only the latency distribution degrades.
		victim := cluster.Placement(graphs[0].fp, urls, 2)[0]
		plan := fault.NewPlan(1071).Phases("baseline", "slow").Add(fault.Rule{
			Name: "straggle", Node: victim, Route: "/v1/*",
			Phase: "slow", Prob: 0.08, Kind: fault.KindLatency, Latency: straggle,
		})
		router, front, closeRouter, err := chaosRouter(urls, plan, func(c *cluster.Config) {
			c.DisableHedge = disableHedge
		})
		if err != nil {
			return 0, 0, 0, st, err
		}
		defer closeRouter()
		if err := uploadGraphs(client.New(front.URL), graphs); err != nil {
			return 0, 0, 0, st, err
		}

		baseLat, err := driveReadsTimed(front.URL, graphs, workers, warmReads, pause)
		if err != nil {
			return 0, 0, 0, st, fmt.Errorf("baseline: %w", err)
		}
		plan.AdvancePhase()
		slowLat, err := driveReadsTimed(front.URL, graphs, workers, measuredReads, pause)
		if err != nil {
			return 0, 0, 0, st, fmt.Errorf("slow phase: %w", err)
		}
		var worst time.Duration
		for _, d := range slowLat {
			worst = max(worst, d)
		}
		return p99(baseLat), p99(slowLat), worst, routerStatus(router), nil
	}

	base, hedged, _, st, err := measure(false)
	if err != nil {
		return err
	}
	_, unhedged, unhedgedMax, _, err := measure(true)
	if err != nil {
		return fmt.Errorf("unhedged contrast: %w", err)
	}

	// Below 2× the minimum hedge delay the comparison measures
	// scheduler noise, not hedging; the floor keeps the gate meaningful
	// on in-memory backends whose healthy p99 is sub-millisecond.
	floor := 2 * time.Millisecond
	bar := 3 * max(base, floor)
	fmt.Fprintf(w, "CHAOS2 scenario 1: straggler node (8%% of hops +%v) vs hedged reads (%d reads, %d workers)\n",
		straggle, measuredReads, workers)
	fmt.Fprintf(w, "  healthy baseline p99 %v; straggler p99: hedged %v (gate <= %v), unhedged %v (max %v)\n", base, hedged, bar, unhedged, unhedgedMax)
	fmt.Fprintf(w, "  hedges launched %d, won %d, suppressed by budget %d, adaptive delay %.2fms\n",
		st.HedgeAttempts, st.HedgeWins, st.HedgeDenied, st.HedgeDelayMs)
	if st.HedgeAttempts == 0 {
		return fmt.Errorf("no hedge was ever launched against the straggler")
	}
	if !Quick {
		if hedged > bar {
			return fmt.Errorf("hedged straggler p99 %v, want <= 3x healthy baseline (%v)", hedged, bar)
		}
		// Gate the contrast on the worst read, not its p99: p2c inflight
		// steering legitimately dodges most straggles (a stalled hop parks
		// inflight on the victim, steering followers to the other replica),
		// but the read that TRIGGERS a straggle always eats the full delay
		// — and without hedging nothing rescues it.
		if unhedgedMax < straggle {
			return fmt.Errorf("unhedged contrast worst read %v never saw the straggler (want >= %v) — the scenario is not exercising the tail", unhedgedMax, straggle)
		}
	}
	fmt.Fprintf(w, "  zero failed requests, hedging holds the tail: PASS\n")
	return nil
}

// --- scenario 2: flaky node vs circuit breaker ----------------------------

func chaosFlakyBreaker(w io.Writer) error {
	graphCount, stormFor := 4, 1200*time.Millisecond
	if Quick {
		graphCount, stormFor = 3, 500*time.Millisecond
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}
	urls, closeBackends := chaosBackends(3)
	defer closeBackends()
	victim := cluster.Placement(graphs[0].fp, urls, 2)[0]
	// The drill is declared through the DSL — the same text a shell
	// chaos script would hand tsgrouter -fault-plan.
	plan, err := fault.ParsePlan(fmt.Sprintf(
		"seed 1094\nphases calm storm healed\nfault reset route=/v1/* prob=0.45 phase=storm node=%s\n", victim))
	if err != nil {
		return fmt.Errorf("parsing DSL plan: %w", err)
	}
	router, front, closeRouter, err := chaosRouter(urls, plan, nil)
	if err != nil {
		return err
	}
	defer closeRouter()
	if err := uploadGraphs(client.New(front.URL), graphs); err != nil {
		return err
	}
	if err := plan.SetPhase("storm"); err != nil {
		return err
	}

	var tl tally
	stopAll := mixedLoad(front.URL, graphs, 3, &tl)
	time.Sleep(stormFor)
	ns, ok := nodeStatus(router, victim)
	if err := plan.SetPhase("healed"); err != nil {
		stopAll()
		return err
	}
	time.Sleep(stormFor / 4) // cover the heal transition under load too
	stopAll()

	if !ok {
		return fmt.Errorf("victim %s missing from /debug/cluster", victim)
	}
	fmt.Fprintf(w, "CHAOS2 scenario 2: flaky node (45%% connection resets, DSL plan) under %d requests of mixed load\n", tl.requests.Load())
	fmt.Fprintf(w, "  breaker trips on %s: %d (state at peak: %s); failed client requests: %d\n", victim, ns.Trips, ns.Breaker, tl.failures.Load())
	if err := tl.check("in the storm"); err != nil {
		return err
	}
	if ns.Trips == 0 {
		return fmt.Errorf("breaker never tripped on the flaky node")
	}
	if err := convergedReplicas(router, front.URL, graphs, 10*time.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "  replicas bit-identical after heal: PASS\n")
	return nil
}

// --- scenario 3: asymmetric partition vs request-path ejection ------------

func chaosAsymmetricPartition(w io.Writer) error {
	graphCount, cutFor := 4, 1200*time.Millisecond
	if Quick {
		graphCount, cutFor = 3, 500*time.Millisecond
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}
	urls, closeBackends := chaosBackends(3)
	defer closeBackends()
	// The partition: every /v1 response FROM the victim is dropped on
	// the router side (the backend processed the request — writes
	// commit there) while its /healthz probe path stays untouched.
	// Pure probe counting would never eject this node.
	victim := cluster.Placement(graphs[0].fp, urls, 2)[0]
	plan := fault.NewPlan(2203).Phases("calm", "cut", "healed").Add(fault.Rule{
		Name: "partition", Node: victim, Route: "/v1/*",
		Phase: "cut", Prob: 1, Kind: fault.KindDropResponse,
	})
	router, front, closeRouter, err := chaosRouter(urls, plan, nil)
	if err != nil {
		return err
	}
	defer closeRouter()
	if err := uploadGraphs(client.New(front.URL), graphs); err != nil {
		return err
	}
	if err := plan.SetPhase("cut"); err != nil {
		return err
	}

	var tl tally
	stopAll := mixedLoad(front.URL, graphs, 3, &tl)
	// Watch the victim through the cut: the breaker must OPEN (request
	// failures) even though the probe path never fails.
	sawOpen := false
	var trips uint64
	cutEnd := time.Now().Add(cutFor)
	for time.Now().Before(cutEnd) {
		if ns, ok := nodeStatus(router, victim); ok {
			trips = ns.Trips
			if ns.Breaker == "open" {
				sawOpen = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := plan.SetPhase("healed"); err != nil {
		stopAll()
		return err
	}
	time.Sleep(cutFor / 4)
	stopAll()

	st := routerStatus(router)
	fmt.Fprintf(w, "CHAOS2 scenario 3: asymmetric partition (every /v1 response from %s dropped, probes untouched) for %v\n", victim, cutFor)
	fmt.Fprintf(w, "  %d requests, %d failed; breaker trips %d, open observed during cut: %v; router dedupe hits %d\n",
		tl.requests.Load(), tl.failures.Load(), trips, sawOpen, st.Dedupes)
	if err := tl.check("across the partition"); err != nil {
		return err
	}
	if trips == 0 || !sawOpen {
		return fmt.Errorf("breaker never ejected the partitioned node (trips=%d, sawOpen=%v) — probe counting cannot, the request streak must", trips, sawOpen)
	}
	if err := convergedReplicas(router, front.URL, graphs, 10*time.Second); err != nil {
		return err
	}
	fmt.Fprintf(w, "  replicas bit-identical after heal: PASS\n")
	return nil
}

// --- scenario 4: membership churn under sustained load --------------------

func chaosMembershipChurn(w io.Writer) error {
	graphCount := 5
	if Quick {
		graphCount = 3
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}
	urls, closeBackends := chaosBackends(3)
	defer closeBackends()
	plan := fault.NewPlan(0) // no faults: the churn itself is the disturbance
	router, front, closeRouter, err := chaosRouter(urls, plan, nil)
	if err != nil {
		return err
	}
	defer closeRouter()
	joiner := httptest.NewServer(serve.New(serve.Config{DisableObs: true}))
	defer joiner.Close()
	if err := uploadGraphs(client.New(front.URL), graphs); err != nil {
		return err
	}

	var tl tally
	stopAll := mixedLoad(front.URL, graphs, 3, &tl)
	fail := func(err error) error {
		stopAll()
		return err
	}
	time.Sleep(150 * time.Millisecond)
	// Join: the new node must earn admission (probe → half-open →
	// warm-sync) before it serves.
	if err := router.ReloadNodes(append(append([]string{}, urls...), joiner.URL)); err != nil {
		return fail(fmt.Errorf("adding joiner: %w", err))
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if ns, ok := nodeStatus(router, joiner.URL); ok && ns.Healthy {
			break
		}
		if time.Now().After(deadline) {
			return fail(fmt.Errorf("joiner never admitted"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(150 * time.Millisecond)
	// Leave: drop an original member; its shard re-hashes to survivors.
	if err := router.ReloadNodes([]string{urls[1], urls[2], joiner.URL}); err != nil {
		return fail(fmt.Errorf("removing %s: %w", urls[0], err))
	}
	time.Sleep(300 * time.Millisecond)
	stopAll()

	if err := tl.check("across the churn"); err != nil {
		return err
	}
	if err := convergedReplicas(router, front.URL, graphs, 10*time.Second); err != nil {
		return err
	}
	st := routerStatus(router)
	fmt.Fprintf(w, "CHAOS2 scenario 4: membership churn (join %s, then remove %s) under %d requests of sustained load\n",
		joiner.URL, urls[0], tl.requests.Load())
	fmt.Fprintf(w, "  0 failed; membership reloads %d, warm syncs %d; current replica sets bit-identical: PASS\n",
		st.MembershipReloads, st.WarmSyncs)
	if st.MembershipReloads != 2 {
		return fmt.Errorf("membership reloads = %d, want 2", st.MembershipReloads)
	}
	return nil
}
