package exp

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{
		ID:    "INCR",
		Title: "incremental re-simulation: dirty-cone patching vs full re-analysis on the edit→analyze loop",
		Run:   runINCR,
	})
}

// incrWorkload is one edit-walk configuration.
type incrWorkload struct {
	name  string
	g     *sg.Graph
	edits int
	// hotArcs bounds the working set the walk's edits rotate over (the
	// edit loop of §I probes a bottleneck region, not uniformly random
	// arcs); 0 means every arc.
	hotArcs int
}

// runINCR measures the tentpole of the edit→analyze loop: a random
// walk of localized single-arc delay commits, each followed by a λ
// re-analysis, on two engines over the same graph — one answering
// incrementally (dirty-cone patching of the retained simulation
// traces, the default) and one with NoIncremental set (every
// re-analysis re-simulates all b event-initiated runs from scratch,
// the pre-PR baseline). λ must agree exactly after every single edit —
// that differential gate is the experiment's hard acceptance and what
// the CI smoke run (-quick) checks; the timing gate is enforced only
// in full runs, and the recorded ≥10× acceptance number lives in
// BENCH_pr5.json from a quiet machine.
func runINCR(w io.Writer) error {
	stack, err := gen.Stack(31)
	if err != nil {
		return err
	}
	random2000, err := gen.RandomLive(rand.New(rand.NewSource(31)),
		gen.RandomOptions{Events: 2000, Border: 8, ExtraArcs: 2000, MaxDelay: 16})
	if err != nil {
		return err
	}
	edits := 200
	if Quick {
		edits = 30
	}
	workloads := []incrWorkload{
		{name: "stack-66", g: stack, edits: edits, hotArcs: 64},
		{name: "random-2000", g: random2000, edits: edits, hotArcs: 64},
	}

	tab := textio.New("edit→analyze loop: one committed single-arc edit + λ re-analysis per step (medians over the walk)",
		"workload", "n/m/b", "edits", "incremental", "full re-sim", "speedup")
	var speedupRandom2000 float64
	for _, wl := range workloads {
		medIncr, medFull, err := runIncrWalk(wl)
		if err != nil {
			return fmt.Errorf("exp: %s: %w", wl.name, err)
		}
		speedup := medFull.Seconds() / medIncr.Seconds()
		if wl.name == "random-2000" {
			speedupRandom2000 = speedup
		}
		tab.AddRow(wl.name,
			fmt.Sprintf("%d/%d/%d", wl.g.NumEvents(), wl.g.NumArcs(), len(wl.g.BorderEvents())),
			wl.edits,
			fmt.Sprintf("%.3gus", float64(medIncr.Nanoseconds())/1e3),
			fmt.Sprintf("%.3gms", float64(medFull.Nanoseconds())/1e6),
			fmt.Sprintf("%.1fx", speedup))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "random-2000 incremental/full speedup: %.1fx (acceptance in BENCH_pr5.json: >= 10x median)\n", speedupRandom2000)
	if Quick {
		fmt.Fprintf(w, "quick mode: timing gate skipped; λ equality held on every one of the %d edits per workload\n", edits)
		return nil
	}
	// The hard 10x acceptance number is recorded in BENCH_pr5.json from
	// a quiet machine; in-harness we gate at 3x so a loaded CI runner
	// cannot flake the experiment while still catching a patch path
	// that silently degraded to re-simulation.
	if speedupRandom2000 < 3 {
		return fmt.Errorf("exp: incremental re-analysis is only %.1fx over full re-simulation on random-2000; the dirty-cone patch is not engaging", speedupRandom2000)
	}
	return nil
}

// runIncrWalk drives one edit walk over both engines and returns the
// median per-edit commit+analyze durations (incremental, full).
func runIncrWalk(wl incrWorkload) (medIncr, medFull time.Duration, err error) {
	inc, err := cycletime.NewEngine(wl.g)
	if err != nil {
		return 0, 0, err
	}
	full, err := cycletime.NewEngineOpts(wl.g, cycletime.Options{NoIncremental: true})
	if err != nil {
		return 0, 0, err
	}
	// Steady state: both sessions warm before the clock starts.
	if _, err := inc.Analyze(); err != nil {
		return 0, 0, err
	}
	if _, err := full.Analyze(); err != nil {
		return 0, 0, err
	}
	rng := rand.New(rand.NewSource(7))
	m := wl.g.NumArcs()
	hot := make([]int, wl.hotArcs)
	if wl.hotArcs == 0 || wl.hotArcs >= m {
		hot = hot[:0]
		for i := 0; i < m; i++ {
			hot = append(hot, i)
		}
	} else {
		for i := range hot {
			hot[i] = rng.Intn(m)
		}
	}
	dIncr := make([]time.Duration, wl.edits)
	dFull := make([]time.Duration, wl.edits)
	for step := 0; step < wl.edits; step++ {
		arc := hot[rng.Intn(len(hot))]
		// A localized edit: nudge the arc's CURRENT delay by up to ±10%
		// — the designer's "what if this gate were slightly slower"
		// step, composing into a random walk over the working set.
		delay := inc.Delay(arc) * (0.9 + 0.2*rng.Float64())

		start := time.Now()
		if err := inc.SetDelay(arc, delay); err != nil {
			return 0, 0, err
		}
		lamI, err := inc.CycleTime()
		if err != nil {
			return 0, 0, err
		}
		dIncr[step] = time.Since(start)

		start = time.Now()
		if err := full.SetDelay(arc, delay); err != nil {
			return 0, 0, err
		}
		lamF, err := full.CycleTime()
		if err != nil {
			return 0, 0, err
		}
		dFull[step] = time.Since(start)

		// The correctness gate: exact λ agreement after every edit.
		if !lamI.Equal(lamF) {
			return 0, 0, fmt.Errorf("edit %d (arc %d = %g): incremental λ = %v, full λ = %v",
				step, arc, delay, lamI, lamF)
		}
	}
	st := inc.Stats()
	if st.IncrementalAnalyses == 0 {
		return 0, 0, fmt.Errorf("the incremental engine never used the patch path (stats %+v)", st)
	}
	return median(dIncr), median(dFull), nil
}

// median returns the median of the samples (upper middle for even n).
func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
