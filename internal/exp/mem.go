package exp

import (
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// HeapSampler tracks the peak Go heap occupancy (runtime HeapInuse)
// over a measured region by polling ReadMemStats from a background
// goroutine. Unlike the process high-water mark (VmHWM), the sampled
// peak is attributable to the region being measured even when other
// experiments ran earlier in the same process, so it is what the SCALE
// experiment gates on; VmHWM is reported alongside for standalone runs.
type HeapSampler struct {
	mu   sync.Mutex
	peak uint64
	stop chan struct{}
	done chan struct{}
}

// StartHeapSampler begins sampling at the given interval.
func StartHeapSampler(interval time.Duration) *HeapSampler {
	s := &HeapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

func (s *HeapSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	if ms.HeapInuse > s.peak {
		s.peak = ms.HeapInuse
	}
	s.mu.Unlock()
}

// Stop takes a final sample and returns the peak HeapInuse in bytes.
func (s *HeapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	s.sample()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

// VmHWMBytes reads the process resident-set high-water mark from
// /proc/self/status (Linux). Returns 0 where unavailable; callers
// treat 0 as "not measured".
func VmHWMBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
