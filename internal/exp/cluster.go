package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/cluster"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/serve"
	"tsg/internal/sg"
	"tsg/internal/store"
)

func init() {
	register(Experiment{
		ID:    "CLUSTER",
		Title: "distributed tier: fingerprint sharding + replica fan-out across 3 nodes; throughput scaling, bit-identical replicas under edits, kill -9 one node with zero failed requests",
		Run:   runCLUSTER,
	})
}

// runCLUSTER is the multi-node proof for the distributed serving tier,
// in three phases against a 3-backend + 1-router topology.
//
// Phase 1 (sharding + replica convergence): durable backends take a
// multi-graph working set through the router. Every graph must land on
// exactly its rendezvous replica set (each replica answers by
// fingerprint directly; non-replicas must not hold it), and after a
// long committed-edit sequence per graph — ≥100 edits total in a full
// run — every replica must answer a λ BIT-IDENTICAL (exact rational)
// to the router's own edit responses, after every single edit.
//
// Phase 2 (throughput scaling): the host has one core, so raw CPU
// cannot show multi-node scaling; instead each backend is wrapped in a
// capacity pacer — a serializing middleware charging a fixed service
// time per /v1 request, the standard single-core-node model — and the
// same warm read traffic is driven through a router over 1 paced node
// and over 3 paced nodes. Aggregate warm throughput over 3 nodes must
// reach ≥ 2.5× the single node (the gate is enforced in full runs and
// recorded in BENCH_pr9.json; quick mode runs the phase without the
// timing gate).
//
// Phase 3 (fault tolerance): with mixed traffic flowing through the
// router, one backend is killed abruptly (listener and store torn down
// mid-flight — the kill -9 moment), later restarted on the same data
// directory and port. Across the whole cycle not one client-visible
// request may fail: reads and writes fail over to the surviving
// replica while the victim is down, and after WAL recovery plus the
// router's journal re-warm the victim must again answer the current
// edited baseline bit-identically.
func runCLUSTER(w io.Writer) error {
	if err := clusterShardingAndConvergence(w); err != nil {
		return err
	}
	if err := clusterThroughput(w); err != nil {
		return err
	}
	return clusterKillRestart(w)
}

// --- topology helpers -----------------------------------------------------

// expNode is one in-process backend: a durable tsgserved equivalent on
// a stable TCP address, killable and restartable like a real process.
type expNode struct {
	dir  string
	addr string // pinned after first boot so a restart reuses the URL
	ln   net.Listener
	hs   *http.Server
	st   *store.Store
	s    *serve.Server
}

func (n *expNode) url() string { return "http://" + n.addr }

// boot opens (or re-opens) the node's store, recovers its WAL, and
// starts serving on its pinned address.
func (n *expNode) boot() error {
	st, rec, err := store.Open(n.dir, store.Options{})
	if err != nil {
		return fmt.Errorf("opening node store %s: %w", n.dir, err)
	}
	s := serve.New(serve.Config{Store: st, DisableObs: true})
	if rec != nil {
		if err := s.Recover(rec); err != nil {
			st.Close()
			return fmt.Errorf("recovering node %s: %w", n.dir, err)
		}
	}
	addr := n.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		st.Close()
		return fmt.Errorf("node listen %s: %w", addr, err)
	}
	n.addr = ln.Addr().String()
	n.ln = ln
	n.st = st
	n.s = s
	n.hs = &http.Server{Handler: s}
	go n.hs.Serve(ln)
	return nil
}

// kill tears the node down abruptly: no drain, in-flight connections
// die mid-request. The data directory survives — that is the WAL's
// whole point.
func (n *expNode) kill() {
	if n.hs != nil {
		n.hs.Close()
	}
	if n.st != nil {
		n.st.Close()
	}
	n.hs, n.st, n.s, n.ln = nil, nil, nil, nil
}

// clusterGraph is one member of the working set.
type clusterGraph struct {
	name string
	text string
	fp   string
	arcs int
}

func clusterWorkingSet(count int) ([]clusterGraph, error) {
	rng := rand.New(rand.NewSource(94))
	out := make([]clusterGraph, 0, count)
	for i := 0; i < count; i++ {
		var (
			g   *sg.Graph
			err error
		)
		if i%2 == 0 {
			g, err = gen.MullerPipeline(3+i, 1, 2.0+float64(i), 1.0)
		} else {
			g, err = gen.RandomLive(rng, gen.RandomOptions{Events: 80 + 20*i, Border: 4, ExtraArcs: 60, MaxDelay: 12})
		}
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := netlist.WriteTSG(&buf, g); err != nil {
			return nil, err
		}
		out = append(out, clusterGraph{
			name: fmt.Sprintf("graph-%d", i),
			text: buf.String(),
			fp:   sg.Fingerprint(g),
			arcs: g.NumArcs(),
		})
	}
	return out, nil
}

// bootCluster stands up nodes durable backends plus a started router
// and returns a cleanup that tears everything down.
func bootCluster(nodes int, replicas int) ([]*expNode, *cluster.Router, *httptest.Server, func(), error) {
	backends := make([]*expNode, nodes)
	cleanup := func() {}
	fail := func(err error) ([]*expNode, *cluster.Router, *httptest.Server, func(), error) {
		cleanup()
		return nil, nil, nil, nil, err
	}
	dirs := make([]string, nodes)
	for i := range backends {
		dir, err := os.MkdirTemp("", "tsg-cluster-*")
		if err != nil {
			return fail(err)
		}
		dirs[i] = dir
		backends[i] = &expNode{dir: dir}
		if err := backends[i].boot(); err != nil {
			return fail(err)
		}
	}
	urls := make([]string, nodes)
	for i, b := range backends {
		urls[i] = b.url()
	}
	router, err := cluster.New(cluster.Config{
		Nodes:            urls,
		Replicas:         replicas,
		ProbeInterval:    25 * time.Millisecond,
		FailThreshold:    3,
		ReadmitThreshold: 2,
		HopTimeout:       10 * time.Second,
		DisableObs:       true,
	})
	if err != nil {
		return fail(err)
	}
	router.Start()
	front := httptest.NewServer(router)
	cleanup = func() {
		front.Close()
		router.Stop()
		for _, b := range backends {
			b.kill()
		}
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}
	return backends, router, front, cleanup, nil
}

func directClient(url string) *client.Client {
	return client.New(url, client.WithRetryPolicy(client.RetryPolicy{}))
}

// --- phase 1: sharding + bit-identical replicas ---------------------------

func clusterShardingAndConvergence(w io.Writer) error {
	graphCount, editsPerGraph := 5, 24 // 120 edits ≥ the 100-edit bar
	if Quick {
		graphCount, editsPerGraph = 3, 7
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}
	backends, _, front, cleanup, err := bootCluster(3, 2)
	if err != nil {
		return err
	}
	defer cleanup()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.url()
	}
	ctx := context.Background()
	cl := client.New(front.URL)

	fmt.Fprintf(w, "CLUSTER phase 1: sharding + replica convergence (3 nodes, 2 replicas, %d graphs)\n", graphCount)
	for _, g := range graphs {
		up, err := cl.UploadText(ctx, g.text)
		if err != nil {
			return fmt.Errorf("uploading %s through the router: %w", g.name, err)
		}
		if up.Fingerprint != g.fp {
			return fmt.Errorf("%s: router fingerprint %s != local %s", g.name, up.Fingerprint, g.fp)
		}
	}

	// Placement check: every replica answers directly, no non-replica
	// holds the graph (the working set genuinely shards).
	fanned := 0
	for _, g := range graphs {
		placed := cluster.Placement(g.fp, urls, 2)
		inSet := map[string]bool{}
		for _, u := range placed {
			inSet[u] = true
		}
		for _, u := range urls {
			ncl := directClient(u)
			_, err := ncl.Analyze(ctx, client.ByFingerprint(g.fp))
			if inSet[u] && err != nil {
				return fmt.Errorf("%s: replica %s cannot answer after fan-out: %w", g.name, u, err)
			}
			if !inSet[u] && err == nil {
				return fmt.Errorf("%s: non-replica %s holds the graph — no sharding happened", g.name, u)
			}
			if inSet[u] {
				fanned++
			}
		}
	}
	fmt.Fprintf(w, "  upload fan-out: %d replica copies across 3 nodes, non-replicas clean: PASS\n", fanned)

	// The edit walk: after EVERY committed edit, every replica must
	// answer the exact rational λ the router's edit response carried.
	totalEdits, identical := 0, 0
	for gi, g := range graphs {
		ref := client.ByFingerprint(g.fp)
		placed := cluster.Placement(g.fp, urls, 2)
		for e := 0; e < editsPerGraph; e++ {
			arc := (gi + e*3) % g.arcs
			res, err := cl.Edit(ctx, ref, []client.DelayEdit{{Arc: arc, Delay: 1.5 + float64((e*5)%11)}})
			if err != nil {
				return fmt.Errorf("%s edit %d: %w", g.name, e, err)
			}
			totalEdits++
			for _, u := range placed {
				nres, err := directClient(u).Analyze(ctx, ref)
				if err != nil {
					return fmt.Errorf("%s edit %d: replica %s: %w", g.name, e, u, err)
				}
				if nres.Lambda.Num != res.Lambda.Num || nres.Lambda.Den != res.Lambda.Den || nres.Lambda.Text != res.Lambda.Text {
					return fmt.Errorf("%s edit %d: replica %s diverged: λ %s, router said %s",
						g.name, e, u, nres.Lambda.Text, res.Lambda.Text)
				}
				identical++
			}
		}
	}
	fmt.Fprintf(w, "  λ bit-identical across replicas after every edit: %d edits, %d replica checks: PASS\n", totalEdits, identical)
	return nil
}

// --- phase 2: throughput scaling under a per-node capacity model ----------

// pacer charges a fixed serial service time per /v1 request — the
// single-core-node capacity model that lets a 1-core host measure
// multi-node scaling: throughput becomes wait-bound, so it scales with
// the number of (paced) nodes, exactly as CPU-bound traffic scales
// with real nodes.
type pacer struct {
	mu      sync.Mutex
	service time.Duration
	h       http.Handler
}

func (p *pacer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		p.mu.Lock()
		time.Sleep(p.service)
		p.mu.Unlock()
	}
	p.h.ServeHTTP(w, r)
}

// pacedPool boots n in-memory backends behind pacers plus a router.
func pacedPool(n int, service time.Duration, replicas int) ([]*httptest.Server, *cluster.Router, *httptest.Server, func(), error) {
	backends := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = httptest.NewServer(&pacer{service: service, h: serve.New(serve.Config{DisableObs: true})})
		urls[i] = backends[i].URL
	}
	router, err := cluster.New(cluster.Config{
		Nodes:         urls,
		Replicas:      replicas,
		ProbeInterval: 50 * time.Millisecond,
		DisableObs:    true,
	})
	if err != nil {
		for _, b := range backends {
			b.Close()
		}
		return nil, nil, nil, nil, err
	}
	router.Start()
	front := httptest.NewServer(router)
	cleanup := func() {
		front.Close()
		router.Stop()
		for _, b := range backends {
			b.Close()
		}
	}
	return backends, router, front, cleanup, nil
}

// driveWarmReads pushes `total` analyze-by-fingerprint requests from
// `workers` concurrent clients round-robining the working set, and
// returns the aggregate request rate.
func driveWarmReads(front string, graphs []clusterGraph, workers, total int) (reqPerSec float64, failed int, err error) {
	ctx := context.Background()
	var wg sync.WaitGroup
	var fails atomic.Int64
	var firstErr atomic.Value
	per := total / workers
	t0 := time.Now()
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			cl := client.New(front)
			for i := 0; i < per; i++ {
				g := graphs[(wkr+i)%len(graphs)]
				if _, err := cl.Analyze(ctx, client.ByFingerprint(g.fp)); err != nil {
					fails.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(wkr)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if e := firstErr.Load(); e != nil {
		return 0, int(fails.Load()), e.(error)
	}
	return float64(per*workers) / elapsed.Seconds(), 0, nil
}

func clusterThroughput(w io.Writer) error {
	const service = 4 * time.Millisecond
	graphCount, workers, totalSingle, totalCluster := 9, 12, 360, 1080
	if Quick {
		graphCount, workers, totalSingle, totalCluster = 3, 6, 60, 120
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}
	ctx := context.Background()

	measure := func(nodes, replicas, total int) (float64, error) {
		_, _, front, cleanup, err := pacedPool(nodes, service, replicas)
		if err != nil {
			return 0, err
		}
		defer cleanup()
		cl := client.New(front.URL)
		for _, g := range graphs {
			if _, err := cl.UploadText(ctx, g.text); err != nil {
				return 0, fmt.Errorf("upload: %w", err)
			}
		}
		// One warm lap outside the timed window (compiles are real work
		// the pacer does not model; the gate is about WARM serving).
		for _, g := range graphs {
			if _, err := cl.Analyze(ctx, client.ByFingerprint(g.fp)); err != nil {
				return 0, fmt.Errorf("warm lap: %w", err)
			}
		}
		rate, _, err := driveWarmReads(front.URL, graphs, workers, total)
		return rate, err
	}

	single, err := measure(1, 1, totalSingle)
	if err != nil {
		return fmt.Errorf("single-node throughput: %w", err)
	}
	triple, err := measure(3, 2, totalCluster)
	if err != nil {
		return fmt.Errorf("3-node throughput: %w", err)
	}
	ratio := triple / single
	fmt.Fprintf(w, "CLUSTER phase 2: warm read throughput, per-node capacity model (%.0fms service time, %d workers, %d graphs)\n",
		service.Seconds()*1e3, workers, graphCount)
	fmt.Fprintf(w, "  1 node:  %7.1f req/s\n", single)
	fmt.Fprintf(w, "  3 nodes: %7.1f req/s  (%.2fx aggregate; acceptance in BENCH_pr9.json: >= 2.5x)\n", triple, ratio)
	if !Quick && ratio < 2.5 {
		return fmt.Errorf("3-node aggregate throughput %.2fx the single node, want >= 2.5x", ratio)
	}
	return nil
}

// --- phase 3: kill -9 one node under traffic ------------------------------

func clusterKillRestart(w io.Writer) error {
	graphCount := 4
	trafficFor := 2 * time.Second
	if Quick {
		graphCount = 2
		trafficFor = 800 * time.Millisecond
	}
	graphs, err := clusterWorkingSet(graphCount)
	if err != nil {
		return err
	}
	backends, router, front, cleanup, err := bootCluster(3, 2)
	if err != nil {
		return err
	}
	defer cleanup()
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.url()
	}
	ctx := context.Background()
	cl := client.New(front.URL)
	for _, g := range graphs {
		if _, err := cl.UploadText(ctx, g.text); err != nil {
			return fmt.Errorf("upload %s: %w", g.name, err)
		}
	}

	// The victim is graph 0's primary, so the kill hits a write path,
	// not just a read replica.
	victimURL := cluster.Placement(graphs[0].fp, urls, 2)[0]
	var victim *expNode
	for _, b := range backends {
		if b.url() == victimURL {
			victim = b
		}
	}

	// Mixed traffic: one serial edit walker per graph (stamps stay
	// ordered per client) plus read workers, all through the router
	// with the client's default retry policy — the contract under test
	// is "zero failed requests across the kill/restart cycle".
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		requests atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	note := func(err error) {
		requests.Add(1)
		if err != nil {
			failures.Add(1)
			firstErr.CompareAndSwap(nil, err)
		}
	}
	for gi := range graphs {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			ecl := client.New(front.URL)
			ref := client.ByFingerprint(graphs[gi].fp)
			for e := 0; !stop.Load(); e++ {
				_, err := ecl.Edit(ctx, ref, []client.DelayEdit{{Arc: (gi + e) % graphs[gi].arcs, Delay: 1.0 + float64(e%9)}})
				note(err)
				time.Sleep(10 * time.Millisecond)
			}
		}(gi)
	}
	for wkr := 0; wkr < 4; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rcl := client.New(front.URL)
			for i := 0; !stop.Load(); i++ {
				g := graphs[(wkr+i)%len(graphs)]
				_, err := rcl.Analyze(ctx, client.ByFingerprint(g.fp))
				note(err)
				time.Sleep(5 * time.Millisecond)
			}
		}(wkr)
	}

	time.Sleep(trafficFor / 4)
	victim.kill() // mid-flight, no drain
	killAt := time.Now()
	time.Sleep(trafficFor / 2)
	if err := victim.boot(); err != nil {
		stop.Store(true)
		wg.Wait()
		return fmt.Errorf("restarting victim: %w", err)
	}
	// Wait for re-admission before ending traffic, so the window covers
	// the node's return too.
	deadline := time.Now().Add(10 * time.Second)
	for {
		healthy := false
		for _, ns := range routerNodeHealth(router) {
			if ns.URL == victimURL && ns.Healthy {
				healthy = true
			}
		}
		if healthy {
			break
		}
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			return fmt.Errorf("victim never re-admitted after restart")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(trafficFor / 4)
	stop.Store(true)
	wg.Wait()

	if failures.Load() > 0 {
		return fmt.Errorf("%d of %d requests failed across the kill/restart cycle (first: %v)",
			failures.Load(), requests.Load(), firstErr.Load())
	}
	// The restarted node must converge back to the current baseline:
	// every graph placed on it answers bit-identically to a surviving
	// replica. The router's warm pass runs in the background; poll.
	vcl := directClient(victimURL)
	verified := 0
	for _, g := range graphs {
		placed := cluster.Placement(g.fp, urls, 2)
		onVictim := false
		var other string
		for _, u := range placed {
			if u == victimURL {
				onVictim = true
			} else {
				other = u
			}
		}
		if !onVictim {
			continue
		}
		want, err := directClient(other).Analyze(ctx, client.ByFingerprint(g.fp))
		if err != nil {
			return fmt.Errorf("surviving replica %s of %s: %w", other, g.name, err)
		}
		convergeBy := time.Now().Add(10 * time.Second)
		for {
			got, err := vcl.Analyze(ctx, client.ByFingerprint(g.fp))
			if err == nil && got.Lambda.Text == want.Lambda.Text && got.Lambda.Num == want.Lambda.Num && got.Lambda.Den == want.Lambda.Den {
				verified++
				break
			}
			if time.Now().After(convergeBy) {
				return fmt.Errorf("restarted node never converged on %s (err=%v)", g.name, err)
			}
			// Nudge the lazy path: a routed read syncs laggards.
			_, _ = cl.Analyze(ctx, client.ByFingerprint(g.fp))
			time.Sleep(20 * time.Millisecond)
		}
	}
	fmt.Fprintf(w, "CLUSTER phase 3: kill -9 %s %.1fs into traffic, restart on same dir/port\n", victimURL, time.Since(killAt).Seconds())
	fmt.Fprintf(w, "  %d requests through the router, 0 failed; restarted node re-admitted and bit-identical on %d placed graphs: PASS\n",
		requests.Load(), verified)
	return nil
}

// routerNodeHealth reads the router's node table via its public debug
// surface (keeps the experiment on supported API).
func routerNodeHealth(r *cluster.Router) []cluster.ClusterNodeStatus {
	rec := httptest.NewRecorder()
	req, _ := http.NewRequest(http.MethodGet, "/debug/cluster", nil)
	r.ServeHTTP(rec, req)
	var st cluster.ClusterStatus
	_ = json.NewDecoder(rec.Body).Decode(&st)
	return st.Nodes
}
