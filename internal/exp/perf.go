package exp

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/maxplus"
	"tsg/internal/mcr"
	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{ID: "PERF8B", Title: "§VIII.B: asynchronous-stack analysis performance (66 events)", Run: runPERF8B})
	register(Experiment{ID: "COMPLX", Title: "§VII: O(b²m) complexity verification", Run: runCOMPLX})
	register(Experiment{ID: "BASE", Title: "§I: baseline algorithms (Karp, Lawler/Burns LP, Howard, oracle)", Run: runBASE})
}

func runPERF8B(w io.Writer) error {
	// The paper: "a Signal Graph with 66 events and 112 arcs, which
	// describes the gate level behavior of an asynchronous stack with
	// constant response time, takes 74 CPU milliseconds on a DEC 5000."
	g, err := gen.Stack(31)
	if err != nil {
		return err
	}
	if err := expect("stack events", g.NumEvents(), 66); err != nil {
		return err
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		return err
	}
	if err := expect("stack λ (constant response)", res.CycleTime.Float(), 4.0); err != nil {
		return err
	}
	const runs = 25
	start := time.Now()
	for i := 0; i < runs; i++ {
		if _, err := cycletime.Analyze(g); err != nil {
			return err
		}
	}
	per := time.Since(start) / runs
	tab := textio.New("§VIII.B: stack analysis", "metric", "this implementation", "paper (DEC 5000, 1994)")
	tab.AddRow("events", g.NumEvents(), 66)
	tab.AddRow("arcs", g.NumArcs(), "112 (model differs; see DESIGN.md)")
	tab.AddRow("border events", len(g.BorderEvents()), "n/a")
	tab.AddRow("cycle time", res.CycleTime.Float(), "n/a (constant response)")
	tab.AddRow("analysis time", per.String(), "74 ms")
	if err := tab.Render(w); err != nil {
		return err
	}
	if per > 500*time.Millisecond {
		return fmt.Errorf("exp: stack analysis took %v; expected well under the paper's 74 ms on modern hardware", per)
	}
	return nil
}

// timeIt measures f in seconds, best of three runs.
func timeIt(f func() error) (float64, error) {
	best := math.Inf(1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}

func runCOMPLX(w io.Writer) error {
	rng := rand.New(rand.NewSource(7))

	// Sweep 1: m grows at fixed b -> runtime must be linear in m.
	tabM := textio.New("runtime vs m at fixed b = 4 (random live graphs)", "events", "arcs m", "time")
	var ms, ts []float64
	for _, n := range []int{500, 1000, 2000, 4000, 8000} {
		g, err := gen.RandomLive(rng, gen.RandomOptions{Events: n, Border: 4, ExtraArcs: n, MaxDelay: 16})
		if err != nil {
			return err
		}
		sec, err := timeIt(func() error { _, err := cycletime.Analyze(g); return err })
		if err != nil {
			return err
		}
		tabM.AddRow(n, g.NumArcs(), fmt.Sprintf("%.3gms", sec*1e3))
		ms = append(ms, float64(g.NumArcs()))
		ts = append(ts, sec)
	}
	if err := tabM.Render(w); err != nil {
		return err
	}
	slope, intercept := stat.LinFit(ms, ts)
	r2 := stat.R2(ms, ts, slope, intercept)
	fmt.Fprintf(w, "linear fit of time vs m: R² = %.4f (O(b²m) predicts linear; want R² near 1)\n\n", r2)
	if r2 < 0.95 {
		return fmt.Errorf("exp: time vs m fits a line with R² = %.3f < 0.95; linearity in m not confirmed", r2)
	}

	// Sweep 2: b grows at fixed n, m -> runtime must be quadratic in b.
	tabB := textio.New("runtime vs b at fixed n = 3000, m = 6000", "border b", "time", "time/b²")
	var bs, tb []float64
	for _, b := range []int{2, 4, 8, 16, 32} {
		g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 3000, Border: b, ExtraArcs: 3000, MaxDelay: 16})
		if err != nil {
			return err
		}
		sec, err := timeIt(func() error { _, err := cycletime.Analyze(g); return err })
		if err != nil {
			return err
		}
		tabB.AddRow(b, fmt.Sprintf("%.3gms", sec*1e3), fmt.Sprintf("%.3gus", sec/float64(b*b)*1e6))
		bs = append(bs, float64(b))
		tb = append(tb, sec)
	}
	if err := tabB.Render(w); err != nil {
		return err
	}
	// sqrt(time) versus b should be linear for a quadratic law.
	roots := make([]float64, len(tb))
	for i, v := range tb {
		roots[i] = math.Sqrt(v)
	}
	slopeB, interceptB := stat.LinFit(bs, roots)
	r2b := stat.R2(bs, roots, slopeB, interceptB)
	fmt.Fprintf(w, "linear fit of sqrt(time) vs b: R² = %.4f (O(b²m) predicts quadratic in b)\n", r2b)
	if r2b < 0.9 {
		return fmt.Errorf("exp: sqrt(time) vs b fits with R² = %.3f < 0.9; quadratic law not confirmed", r2b)
	}
	return nil
}

func runBASE(w io.Writer) error {
	rng := rand.New(rand.NewSource(31))
	tab := textio.New("baseline agreement and runtime",
		"workload", "n/m/b", "Nielsen-Kishinevsky", "Karp", "Howard", "Lawler(1e-9)", "oracle")

	run := func(name string, build func() (*sg.Graph, error)) error {
		g, err := build()
		if err != nil {
			return err
		}
		tNK, err := timeIt(func() error { _, err := cycletime.Analyze(g); return err })
		if err != nil {
			return err
		}
		resNK, err := cycletime.Analyze(g)
		if err != nil {
			return err
		}
		tK, err := timeIt(func() error { _, err := mcr.Karp(g); return err })
		if err != nil {
			return err
		}
		rK, err := mcr.Karp(g)
		if err != nil {
			return err
		}
		tH, err := timeIt(func() error { _, err := mcr.Howard(g); return err })
		if err != nil {
			return err
		}
		rH, err := mcr.Howard(g)
		if err != nil {
			return err
		}
		tL, err := timeIt(func() error { _, err := mcr.Lawler(g, 1e-9); return err })
		if err != nil {
			return err
		}
		rL, err := mcr.Lawler(g, 1e-9)
		if err != nil {
			return err
		}
		oracleCell := "skipped"
		var rO stat.Ratio
		haveOracle := false
		if g.NumEvents() <= 64 {
			var err error
			rO, _, err = cycles.MaxRatio(g, 1<<18)
			if err == nil {
				haveOracle = true
				oracleCell = rO.String()
			} else {
				oracleCell = "exp. blowup"
			}
		}
		cell := func(v stat.Ratio, t float64) string {
			return fmt.Sprintf("%s (%.3gms)", v, t*1e3)
		}
		tab.AddRow(name,
			fmt.Sprintf("%d/%d/%d", g.NumEvents(), g.NumArcs(), len(g.BorderEvents())),
			cell(resNK.CycleTime, tNK), cell(rK, tK), cell(rH, tH),
			fmt.Sprintf("%.6g (%.3gms)", rL, tL*1e3), oracleCell)
		if !resNK.CycleTime.Equal(rK) || !resNK.CycleTime.Equal(rH) {
			return fmt.Errorf("exp: %s: algorithms disagree: NK=%v Karp=%v Howard=%v", name, resNK.CycleTime, rK, rH)
		}
		if math.Abs(rL-resNK.CycleTime.Float()) > 1e-6 {
			return fmt.Errorf("exp: %s: Lawler=%g vs NK=%v", name, rL, resNK.CycleTime)
		}
		if haveOracle && !resNK.CycleTime.Equal(rO) {
			return fmt.Errorf("exp: %s: oracle=%v vs NK=%v", name, rO, resNK.CycleTime)
		}
		// Fifth independent route: the max-plus eigenvalue of the token
		// matrix (§I refs [1], [7]) must agree as well.
		mpM, _, err := maxplus.FromGraph(g)
		if err != nil {
			return err
		}
		rMP, err := mpM.Eigenvalue()
		if err != nil {
			return err
		}
		if !resNK.CycleTime.Equal(rMP) {
			return fmt.Errorf("exp: %s: max-plus eigenvalue %v vs NK=%v", name, rMP, resNK.CycleTime)
		}
		return nil
	}

	if err := run("oscillator", func() (*sg.Graph, error) { return gen.Oscillator(), nil }); err != nil {
		return err
	}
	if err := run("muller-ring-5", func() (*sg.Graph, error) { return gen.MullerRing(5) }); err != nil {
		return err
	}
	if err := run("stack-31", func() (*sg.Graph, error) { return gen.Stack(31) }); err != nil {
		return err
	}
	for _, sz := range []struct{ n, b, extra int }{
		{200, 4, 200}, {2000, 8, 2000},
	} {
		name := fmt.Sprintf("random-n%d-b%d", sz.n, sz.b)
		if err := run(name, func() (*sg.Graph, error) {
			return gen.RandomLive(rng, gen.RandomOptions{Events: sz.n, Border: sz.b, ExtraArcs: sz.extra, MaxDelay: 16})
		}); err != nil {
			return err
		}
	}
	return tab.Render(w)
}
