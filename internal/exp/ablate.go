package exp

import (
	"fmt"
	"io"
	"runtime"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{ID: "ABLATE", Title: "ablations: border set vs minimum cut set; serial vs parallel simulations", Run: runABLATE})
}

// runABLATE quantifies the two implementation choices DESIGN.md calls
// out. First, §VI.B: the paper skips the (NP-hard) minimum-cut-set
// search and uses the border set; for the oscillator it notes that the
// minimum cut set {c+} would need one period instead of two. We compare
// simulated work (cut-set size × periods) and check both give the same
// λ. Second, the b event-initiated simulations are independent; the
// Parallel option distributes them over goroutines.
func mustMinCut(g *sg.Graph) []sg.EventID {
	min, err := g.MinimumCutSet()
	if err != nil {
		panic(err) // workloads here are small; unreachable
	}
	return min
}

func runABLATE(w io.Writer) error {
	type workload struct {
		name string
		g    *sg.Graph
	}
	osc := gen.Oscillator()
	ring, err := gen.MullerRing(5)
	if err != nil {
		return err
	}
	stack, err := gen.Stack(31)
	if err != nil {
		return err
	}
	// The exact minimum-cut-set search is exponential; use a smaller
	// stack for that half of the ablation.
	smallStack, err := gen.Stack(13)
	if err != nil {
		return err
	}
	loads := []workload{{"oscillator", osc}, {"muller-ring-5", ring}, {"stack-13", smallStack}}

	tab := textio.New("border set vs exact minimum cut set",
		"workload", "b (border)", "k (minimum)", "sims x periods (border)", "sims x periods (minimum)", "λ agree")
	for _, l := range loads {
		border := l.g.BorderEvents()
		min, err := l.g.MinimumCutSet()
		if err != nil {
			return err
		}
		resB, err := cycletime.Analyze(l.g)
		if err != nil {
			return err
		}
		resM, err := cycletime.AnalyzeOpts(l.g, cycletime.Options{CutSet: min})
		if err != nil {
			return err
		}
		agree := resB.CycleTime.Equal(resM.CycleTime)
		tab.AddRow(l.name, len(border), len(min),
			fmt.Sprintf("%d x %d = %d", len(border), resB.Periods, len(border)*resB.Periods),
			fmt.Sprintf("%d x %d = %d", len(min), resM.Periods, len(min)*resM.Periods),
			agree)
		if !agree {
			return fmt.Errorf("exp: %s: border-set λ %v != minimum-cut-set λ %v",
				l.name, resB.CycleTime, resM.CycleTime)
		}
		if l.name == "oscillator" && len(min) != 1 {
			return fmt.Errorf("exp: oscillator minimum cut set = %d events, want 1 (§VI.B)", len(min))
		}
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "note: custom cut sets default to b simulated periods — Prop. 6's k_min bound")
	fmt.Fprintln(w, "fails on general graphs (see the erratum note in BENCHMARKS.md); the saving is in")
	fmt.Fprintln(w, "the number of simulations. The paper's oscillator remark (one period from")
	fmt.Fprintln(w, "{c+}) still holds with an explicit override, since all its cycles have ε = 1:")
	res1, err := cycletime.AnalyzeOpts(osc, cycletime.Options{
		CutSet: mustMinCut(osc), Periods: 1,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  oscillator, cut {c+}, 1 period: λ = %v (1 x 1 = 1 simulated period)\n\n", res1.CycleTime)
	if res1.CycleTime.Float() != 10 {
		return fmt.Errorf("exp: 1-period oscillator analysis λ = %v, want 10", res1.CycleTime)
	}

	// Serial vs parallel on the b ≈ n worst case.
	tabP := textio.New("\nserial vs parallel simulations (stack-31, b = 63)",
		"mode", "time", "λ")
	tSer, err := timeIt(func() error {
		_, err := cycletime.AnalyzeOpts(stack, cycletime.Options{Serial: true})
		return err
	})
	if err != nil {
		return err
	}
	resSer, err := cycletime.AnalyzeOpts(stack, cycletime.Options{Serial: true})
	if err != nil {
		return err
	}
	tPar, err := timeIt(func() error {
		_, err := cycletime.AnalyzeOpts(stack, cycletime.Options{Parallel: true})
		return err
	})
	if err != nil {
		return err
	}
	resPar, err := cycletime.AnalyzeOpts(stack, cycletime.Options{Parallel: true})
	if err != nil {
		return err
	}
	tabP.AddRow("serial", fmt.Sprintf("%.3gms", tSer*1e3), resSer.CycleTime.String())
	tabP.AddRow("parallel", fmt.Sprintf("%.3gms", tPar*1e3), resPar.CycleTime.String())
	if err := tabP.Render(w); err != nil {
		return err
	}
	if !resSer.CycleTime.Equal(resPar.CycleTime) {
		return fmt.Errorf("exp: parallel λ %v != serial λ %v", resPar.CycleTime, resSer.CycleTime)
	}
	fmt.Fprintf(w, "speedup: %.2fx on %d CPUs (the simulations are allocation-heavy; gains need many cores)\n", tSer/tPar, runtime.NumCPU())
	return nil
}
