// Package exp implements the reproduction of every table and figure of
// the paper's evaluation (see DESIGN.md §3 for the index). Each
// experiment prints the paper's expected numbers next to the measured
// ones and returns an error when a hard expectation fails, so the
// harness doubles as an acceptance test. cmd/tsgbench runs experiments
// from the command line; bench_test.go wraps each in a testing.B.
package exp

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible artefact of the paper.
type Experiment struct {
	// ID is the short handle used by cmd/tsgbench -run (e.g. "TAB8D").
	ID string
	// Title describes the paper artefact being regenerated.
	Title string
	// Run regenerates the artefact, writing tables to w.
	Run func(w io.Writer) error
}

// Quick trims experiments to smoke-test size: fewer iterations and no
// timing gates, keeping only the correctness assertions. CI sets it
// (tsgbench -quick) so the experiment harness can run on loaded shared
// runners without flaking on wall-clock expectations; the recorded
// BENCH numbers always come from full (non-quick) runs. Set before
// running experiments; experiments read it, never write it.
var Quick bool

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// expect compares a measured value against the paper's and returns an
// error on mismatch; experiments use it for every hard number.
func expect(what string, got, want interface{}) error {
	if fmt.Sprint(got) != fmt.Sprint(want) {
		return fmt.Errorf("exp: %s = %v, paper says %v", what, got, want)
	}
	return nil
}
