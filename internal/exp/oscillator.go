package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/textio"
	"tsg/internal/timesim"
)

// oscillatorEventOrder is the column order of the paper's tables.
var oscillatorEventOrder = []string{"e-", "f-", "a+", "b+", "c+", "a-", "b-", "c-"}

func init() {
	register(Experiment{ID: "EX3", Title: "Example 3: plain timing simulation table", Run: runEX3})
	register(Experiment{ID: "EX4", Title: "Example 4: b+0-initiated timing simulation table", Run: runEX4})
	register(Experiment{ID: "EX5", Title: "Example 5/6: simple cycles and effective lengths", Run: runEX5})
	register(Experiment{ID: "EX7", Title: "Example 7: border set and minimum cut sets", Run: runEX7})
	register(Experiment{ID: "FIG1C", Title: "Fig. 1c: timing diagram and occurrence distances", Run: runFIG1C})
	register(Experiment{ID: "FIG1D", Title: "Fig. 1d: a+-initiated timing diagram", Run: runFIG1D})
	register(Experiment{ID: "FIG4", Title: "Fig. 4: asymptotic δ behaviour on/off the critical cycle", Run: runFIG4})
	register(Experiment{ID: "TAB8C", Title: "§VIII.C: C-element oscillator analysis", Run: runTAB8C})
}

func runEX3(w io.Writer) error {
	g := gen.Oscillator()
	tr, err := timesim.Run(g, timesim.Options{Periods: 2})
	if err != nil {
		return err
	}
	want := map[string]float64{
		"e-_0": 0, "f-_0": 3, "a+_0": 2, "b+_0": 4, "c+_0": 6,
		"a-_0": 8, "b-_0": 7, "c-_0": 11, "a+_1": 13, "b+_1": 12, "c+_1": 16,
	}
	tab := textio.New("Example 3: t over the first two periods", "event", "t (measured)", "t (paper)")
	for p := 0; p < 2; p++ {
		for _, name := range oscillatorEventOrder {
			id := g.MustEvent(name)
			v, ok := tr.Time(id, p)
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s_%d", name, p)
			wv, known := want[key]
			if !known {
				continue
			}
			tab.AddRow(key, v, wv)
			if err := expect("t("+key+")", v, wv); err != nil {
				return err
			}
		}
	}
	return tab.Render(w)
}

func runEX4(w io.Writer) error {
	g := gen.Oscillator()
	tr, err := timesim.RunFrom(g, g.MustEvent("b+"), timesim.Options{Periods: 2})
	if err != nil {
		return err
	}
	want := map[string]float64{
		"b+_0": 0, "c+_0": 2, "a-_0": 4, "b-_0": 3, "c-_0": 7,
		"a+_1": 9, "b+_1": 8, "c+_1": 12,
	}
	tab := textio.New("Example 4: b+0-initiated simulation", "event", "t_b+0 (measured)", "t_b+0 (paper)")
	for p := 0; p < 2; p++ {
		for _, name := range oscillatorEventOrder {
			key := fmt.Sprintf("%s_%d", name, p)
			wv, known := want[key]
			if !known {
				continue
			}
			v, ok := tr.Time(g.MustEvent(name), p)
			if !ok {
				continue
			}
			tab.AddRow(key, v, wv)
			if err := expect("t_b+0("+key+")", v, wv); err != nil {
				return err
			}
		}
	}
	return tab.Render(w)
}

func runEX5(w io.Writer) error {
	g := gen.Oscillator()
	all, err := cycles.Enumerate(g, 0)
	if err != nil {
		return err
	}
	if err := expect("number of simple cycles", len(all), 4); err != nil {
		return err
	}
	tab := textio.New("Example 5/6: simple cycles", "cycle", "length", "ε", "effective length")
	var lengths []float64
	for _, c := range all {
		tab.AddRow(strings.Join(g.EventNames(c.Events), " "), c.Length, c.Tokens, c.Ratio().Float())
		lengths = append(lengths, c.Length)
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	r, _, err := cycles.MaxRatio(g, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cycle time λ = max{10, 8, 8, 6} = %v (paper: 10)\n", r)
	return expect("λ (Example 6)", r.Float(), 10.0)
}

func runEX7(w io.Writer) error {
	g := gen.Oscillator()
	border := strings.Join(g.EventNames(g.BorderEvents()), " ")
	fmt.Fprintf(w, "border set: {%s} (paper: {a+ b+})\n", border)
	if err := expect("border set", border, "a+ b+"); err != nil {
		return err
	}
	all, err := g.AllMinimumCutSets(0)
	if err != nil {
		return err
	}
	var sets []string
	for _, s := range all {
		sets = append(sets, "{"+strings.Join(g.EventNames(s), " ")+"}")
	}
	fmt.Fprintf(w, "minimum cut sets: %s (paper: {c+} and {c-})\n", strings.Join(sets, " "))
	return expect("minimum cut sets", strings.Join(sets, " "), "{c+} {c-}")
}

func runFIG1C(w io.Writer) error {
	g := gen.Oscillator()
	tr, err := timesim.Run(g, timesim.Options{Periods: 8})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "timing diagram (Fig. 1c):")
	if err := tr.Diagram().Render(w, 1); err != nil {
		return err
	}
	a := g.MustEvent("a+")
	tab := textio.New("\noccurrence distances and average distances of a+ (§II)",
		"i", "t(a+_i)", "distance to next", "δ(a+_i)", "δ paper")
	wantDelta := []float64{2, 13.0 / 2, 23.0 / 3, 33.0 / 4, 43.0 / 5, 53.0 / 6}
	for i := 0; i < 6; i++ {
		t, _ := tr.Time(a, i)
		d, err := tr.OccurrenceDistance(a, i)
		if err != nil {
			return err
		}
		delta := t / float64(i+1)
		tab.AddRow(i, t, d, delta, wantDelta[i])
		if math.Abs(delta-wantDelta[i]) > 1e-12 {
			return fmt.Errorf("exp: δ(a+_%d) = %g, paper says %g", i, delta, wantDelta[i])
		}
		wantD := 10.0
		if i == 0 {
			wantD = 11 // the paper: first occurrence distance is 11
		}
		if err := expect(fmt.Sprintf("occurrence distance a+_%d..a+_%d", i, i+1), d, wantD); err != nil {
			return err
		}
	}
	return tab.Render(w)
}

func runFIG1D(w io.Writer) error {
	g := gen.Oscillator()
	tr, err := timesim.RunFrom(g, g.MustEvent("a+"), timesim.Options{Periods: 4})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "a+-initiated timing diagram (Fig. 1d):")
	if err := tr.Diagram().Render(w, 1); err != nil {
		return err
	}
	s, err := tr.InitiatedDistances()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nδ_a+0 series: %v (paper: 10 10 10 — the initial history is discarded)\n", s)
	for i := 0; i < s.Len(); i++ {
		if err := expect(fmt.Sprintf("δ_a+0(a+_%d)", i+1), s.At(i), 10.0); err != nil {
			return err
		}
	}
	return nil
}

func runFIG4(w io.Writer) error {
	g := gen.Oscillator()
	const periods = 14
	tab := textio.New("Fig. 4: δ_{e0}(e_i) for an on-critical (a+) and an off-critical (b+) event",
		"i", "δ_a+0 (on)", "δ_b+0 (off)")
	trA, err := timesim.RunFrom(g, g.MustEvent("a+"), timesim.Options{Periods: periods})
	if err != nil {
		return err
	}
	trB, err := timesim.RunFrom(g, g.MustEvent("b+"), timesim.Options{Periods: periods})
	if err != nil {
		return err
	}
	sa, err := trA.InitiatedDistances()
	if err != nil {
		return err
	}
	sb, err := trB.InitiatedDistances()
	if err != nil {
		return err
	}
	for i := 0; i < sa.Len(); i++ {
		tab.AddRow(i+1, sa.At(i), sb.At(i))
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	// The paper's qualitative claims: the on-critical series attains λ
	// exactly; the off-critical series approaches it from below without
	// ever reaching it (Prop. 8).
	if sa.Max() != 10 {
		return fmt.Errorf("exp: on-critical series max = %g, want exactly 10", sa.Max())
	}
	for i := 0; i < sb.Len(); i++ {
		if sb.At(i) >= 10 {
			return fmt.Errorf("exp: off-critical δ_b+0(b+_%d) = %g reached λ, violating Prop. 8", i+1, sb.At(i))
		}
	}
	if !sb.ConvergedTo(10, 1.0, 3) {
		return fmt.Errorf("exp: off-critical series %v does not approach λ = 10", sb)
	}
	fmt.Fprintln(w, "on-critical series attains λ = 10 exactly; off-critical stays strictly below and converges to it.")
	return nil
}

func runTAB8C(w io.Writer) error {
	g := gen.Oscillator()
	res, err := cycletime.Analyze(g)
	if err != nil {
		return err
	}
	// The two event-initiated simulations of the §VIII.C table.
	wantRows := map[string][]float64{
		"a+": {10, 10},
		"b+": {8, 9},
	}
	tab := textio.New("§VIII.C: border-event distance series", "border event", "δ(e_1)", "δ(e_2)", "paper", "on critical cycle")
	for _, s := range res.Series {
		name := g.Event(s.Event).Name
		wr := wantRows[name]
		tab.AddRow(name, s.Distances[0], s.Distances[1],
			fmt.Sprintf("%v %v", wr[0], wr[1]), s.OnCritical)
		for j, wv := range wr {
			if err := expect(fmt.Sprintf("δ_%s0(%s_%d)", name, name, j+1), s.Distances[j], wv); err != nil {
				return err
			}
		}
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "cycle time λ = %v (paper: 10)\n", res.CycleTime)
	if err := expect("λ", res.CycleTime.Float(), 10.0); err != nil {
		return err
	}
	crit := res.Critical[0].Format(g)
	fmt.Fprintf(w, "critical cycle: %s\n", crit)
	fmt.Fprintln(w, "(paper erratum: §VIII.C prints a+→c+→b-→c-, which has length 8; the true critical cycle is C1 of Example 5, shown above)")
	for _, ev := range []string{"a+", "c+", "a-", "c-"} {
		if !strings.Contains(crit, ev) {
			return fmt.Errorf("exp: critical cycle %s does not visit %s", crit, ev)
		}
	}
	// The erratum check: C2 = {a+ c+ b- c-} has length 8.
	for _, c := range res.Critical {
		if c.Length != 10 {
			return fmt.Errorf("exp: critical cycle length %g, want 10", c.Length)
		}
	}
	return nil
}
