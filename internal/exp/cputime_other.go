//go:build !unix

package exp

// cpuSeconds reports 0 where rusage is unavailable; callers fall back
// to wall-clock timing.
func cpuSeconds() float64 { return 0 }
