package exp_test

import (
	"io"
	"strings"
	"testing"

	"tsg/internal/exp"
)

// TestPaperTables runs the fast experiments as acceptance tests: every
// hard expectation against the paper's tables must hold. The two
// timing-heavy experiments (COMPLX, BASE) are exercised only under
// -short=false via TestTimingExperiments.
func TestPaperTables(t *testing.T) {
	for _, id := range []string{"EX3", "EX4", "EX5", "EX7", "FIG1C", "FIG1D", "FIG4", "TAB8C", "TAB8D"} {
		e, ok := exp.ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(&sb); err != nil {
				t.Fatalf("%s failed: %v\noutput so far:\n%s", id, err, sb.String())
			}
			if sb.Len() == 0 {
				t.Errorf("%s produced no output", id)
			}
		})
	}
}

func TestTimingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments skipped with -short")
	}
	for _, id := range []string{"PERF8B", "COMPLX", "BASE", "ABLATE", "MCSTAT", "SERVE", "INCR", "CHAOS", "SCALE"} {
		e, ok := exp.ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		t.Run(id, func(t *testing.T) {
			if err := e.Run(io.Discard); err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
		})
	}
}

// TestOBSQuick runs the observability experiment in quick mode: the
// full fidelity pass (span trees reaching engine phases from every
// endpoint, hot-arc accounting, /metrics lint) with the throughput
// gate skipped — the on/off perf ratio needs a quiet machine and is
// gated by tsgbench/CI, not by the unit suite.
func TestOBSQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped with -short")
	}
	exp.Quick = true
	defer func() { exp.Quick = false }()
	e, ok := exp.ByID("OBS")
	if !ok {
		t.Fatal("experiment OBS not registered")
	}
	var sb strings.Builder
	if err := e.Run(&sb); err != nil {
		t.Fatalf("OBS failed: %v\noutput so far:\n%s", err, sb.String())
	}
}

// TestCLUSTERQuick runs the distributed-tier experiment in quick
// mode: the full correctness passes (sharding, bit-identical replicas
// after every edit, kill/restart with zero failed requests) with the
// throughput-scaling gate skipped — the 2.5x aggregate bar needs a
// quiet machine and is gated by tsgbench/CI, not by the unit suite.
func TestCLUSTERQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped with -short")
	}
	exp.Quick = true
	defer func() { exp.Quick = false }()
	e, ok := exp.ByID("CLUSTER")
	if !ok {
		t.Fatal("experiment CLUSTER not registered")
	}
	var sb strings.Builder
	if err := e.Run(&sb); err != nil {
		t.Fatalf("CLUSTER failed: %v\noutput so far:\n%s", err, sb.String())
	}
}

// TestCHAOS2Quick runs the network-fault drills in quick mode: all
// four scenarios' correctness gates (zero failed requests, breaker
// trips, replica convergence, membership churn) with the latency
// gates skipped — the p99 bars need a quiet machine and are gated by
// tsgbench/CI, not by the unit suite.
func TestCHAOS2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke skipped with -short")
	}
	exp.Quick = true
	defer func() { exp.Quick = false }()
	e, ok := exp.ByID("CHAOS2")
	if !ok {
		t.Fatal("experiment CHAOS2 not registered")
	}
	var sb strings.Builder
	if err := e.Run(&sb); err != nil {
		t.Fatalf("CHAOS2 failed: %v\noutput so far:\n%s", err, sb.String())
	}
}

func TestRegistry(t *testing.T) {
	all := exp.All()
	if len(all) != 21 {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Errorf("registry has %d experiments (%v), want 21", len(all), ids)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Errorf("All() not sorted: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
	if _, ok := exp.ByID("NOPE"); ok {
		t.Error("ByID(NOPE) found something")
	}
}
