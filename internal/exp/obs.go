package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/obs"
	"tsg/internal/serve"
	"tsg/internal/sg"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{
		ID:    "OBS",
		Title: "observability overhead: phase-level tracing + metrics on vs off under warm serving traffic",
		Run:   runOBS,
	})
}

// runOBS gates the observability stack on both of its promises:
//
// Fidelity — against an instrumented server driven by a mixed
// analyze / what-if / edit workload, every request must produce a span
// tree that reaches the engine's kernel phases (visible via
// /debug/trace), the hot-arc accounting must surface the touched arcs
// (/debug/hotarcs), and the /metrics exposition must pass the
// package's own Prometheus linter, including the -metrics-compat
// aliases.
//
// Cost — the same warm workload is run A/B against an instrumented
// server and one with DisableObs (no tracer, no registry, no /debug).
// Both servers are booted once and kept warm; timed bursts alternate
// between them in ABBA blocks, and the gate takes the median block
// ratio of requests per CPU second. The instrumented server must keep
// >= 97% of the stripped server's throughput; observability that taxes
// the hot path more than 3% does not get to be on by default. The
// timing gate is skipped under -quick (shared CI runners); the
// fidelity assertions always run.
func runOBS(w io.Writer) error {
	stack, err := gen.Stack(31)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := netlist.WriteTSG(&buf, stack); err != nil {
		return err
	}
	text := buf.String()
	res, err := cycletime.Analyze(stack)
	if err != nil {
		return err
	}
	wantLam := res.CycleTime.Normalize().String()

	if err := obsFidelity(w, stack, text); err != nil {
		return err
	}

	clients, iters, blocks := 1, 800, 40
	if Quick {
		iters, blocks = 4, 1
	}
	// Both servers live for the whole measurement: booting a fresh
	// server per drive perturbs heap and GC state differently every
	// time, and that boot noise dwarfed the <3% effect being gated.
	// With two warm rigs, paired bursts differ only in instrumentation.
	onRig, err := newOBSRig(text, wantLam, stack, false, clients)
	if err != nil {
		return fmt.Errorf("exp: OBS instrumented rig: %w", err)
	}
	defer onRig.close()
	offRig, err := newOBSRig(text, wantLam, stack, true, clients)
	if err != nil {
		return fmt.Errorf("exp: OBS stripped rig: %w", err)
	}
	defer offRig.close()
	for _, r := range []*obsRig{onRig, offRig} { // untimed warm-up
		if _, err := r.burst(max(iters/4, 1)); err != nil {
			return fmt.Errorf("exp: OBS warm-up: %w", err)
		}
	}
	// ABBA crossover blocks: each block bursts on, off, off, on and
	// scores the geometric mean of its two ratios, so any monotone drift
	// across the four bursts — heap growth, GC cadence, scheduler
	// warm-up, all of which systematically favour later bursts on a
	// shared 1-core runner — cancels to first order instead of
	// masquerading as instrumentation cost. The gate takes the median
	// block ratio.
	ratios := make([]float64, 0, blocks)
	var bestOn, bestOff float64
	for b := 0; b < blocks; b++ {
		var got [4]float64
		for d, rig := range [4]*obsRig{onRig, offRig, offRig, onRig} {
			v, err := rig.burst(iters)
			if err != nil {
				return fmt.Errorf("exp: OBS burst %d.%d: %w", b, d, err)
			}
			got[d] = v
		}
		on1, off1, off2, on2 := got[0], got[1], got[2], got[3]
		ratios = append(ratios, math.Sqrt((on1/off1)*(on2/off2)))
		bestOn, bestOff = max(bestOn, max(on1, on2)), max(bestOff, max(off1, off2))
	}
	for b, r := range ratios {
		fmt.Fprintf(w, "block %d on/off ratio: %.3f\n", b, r)
	}
	sort.Float64s(ratios)
	ratio := ratios[len(ratios)/2]

	tab := textio.New(fmt.Sprintf("observability overhead: warm analyze+what-if throughput, instrumentation on vs off (median of %d ABBA blocks)", blocks),
		"mode", "best req/cpu-s", "median on/off")
	tab.AddRow("instrumented (default)", fmt.Sprintf("%.0f", bestOn), "")
	tab.AddRow("stripped (DisableObs)", fmt.Sprintf("%.0f", bestOff), "")
	tab.AddRow("", "", fmt.Sprintf("%.3f", ratio))
	if err := tab.Render(w); err != nil {
		return err
	}

	if Quick {
		fmt.Fprintln(w, "observability overhead gate (>= 0.97 on/off) skipped under -quick; fidelity checks passed")
		return nil
	}
	fmt.Fprintf(w, "instrumented/stripped throughput ratio: %.3f (acceptance: >= 0.97, i.e. < 3%% overhead)\n", ratio)
	if ratio < 0.97 {
		return fmt.Errorf("exp: instrumentation costs %.1f%% of warm throughput (ratio %.3f < 0.97)", (1-ratio)*100, ratio)
	}
	return nil
}

// obsFidelity drives a small mixed workload against a fully
// instrumented server and asserts what the introspection endpoints
// must show afterwards.
func obsFidelity(w io.Writer, g *sg.Graph, text string) error {
	s := serve.New(serve.Config{MetricsCompat: true, Version: "exp-obs"})
	srv := httptest.NewServer(s)
	defer srv.Close()
	ctx := context.Background()

	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
	up, err := cl.UploadText(ctx, text)
	if err != nil {
		return err
	}
	ref := client.ByFingerprint(up.Fingerprint)
	if _, err := cl.Analyze(ctx, ref); err != nil {
		return err
	}
	order := sg.CanonicalArcOrder(g)
	if _, err := cl.WhatIf(ctx, ref, []client.WhatIfQuery{
		{Arc: 0, Delay: g.Arc(order[0]).Delay * 1.5},
		{Arc: 1, Delay: g.Arc(order[1]).Delay * 1.5},
	}); err != nil {
		return err
	}
	if _, err := cl.Edit(ctx, ref, []client.DelayEdit{{Arc: 0, Delay: g.Arc(order[0]).Delay + 1}}); err != nil {
		return err
	}
	if _, err := cl.Analyze(ctx, ref); err != nil { // post-edit: incremental path
		return err
	}

	// Span depth: every serve.* root must reach an engine.* phase.
	var tr struct {
		Recorded uint64           `json:"recorded_total"`
		Spans    []obs.SpanRecord `json:"spans"`
	}
	if err := getJSONBody(srv, "/debug/trace?graph="+up.Fingerprint, &tr); err != nil {
		return err
	}
	kernelDepth := map[string]bool{}
	var reach func(n *obs.TreeNode) bool
	reach = func(n *obs.TreeNode) bool {
		if strings.HasPrefix(n.Name, "engine.") {
			return true
		}
		for _, c := range n.Children {
			if reach(c) {
				return true
			}
		}
		return false
	}
	for _, root := range obs.BuildTrees(tr.Spans) {
		if strings.HasPrefix(root.Name, "serve.") && reach(root) {
			kernelDepth[root.Name] = true
		}
	}
	for _, ep := range []string{"serve.upload", "serve.analyze", "serve.whatif", "serve.edit"} {
		if !kernelDepth[ep] {
			return fmt.Errorf("exp: OBS: %s trace never reached an engine phase (got %d spans)", ep, len(tr.Spans))
		}
	}
	fmt.Fprintf(w, "trace fidelity: %d spans for %s; upload/analyze/whatif/edit trees all reach kernel phases\n",
		len(tr.Spans), up.Fingerprint[:12])

	// Hot arcs: the what-if/edit traffic above touched arcs 0 and 1.
	var hot struct {
		Graphs []struct {
			Fingerprint string `json:"fingerprint"`
			Touches     int64  `json:"touches_total"`
		} `json:"graphs"`
	}
	if err := getJSONBody(srv, "/debug/hotarcs", &hot); err != nil {
		return err
	}
	if len(hot.Graphs) != 1 || hot.Graphs[0].Touches < 3 {
		return fmt.Errorf("exp: OBS: hot-arc accounting empty after what-if/edit workload: %+v", hot)
	}
	fmt.Fprintf(w, "hot arcs: %d touches recorded via /debug/hotarcs\n", hot.Graphs[0].Touches)

	// Metrics: the exposition must lint clean and carry both the new
	// names and (on this compat-enabled server) the deprecated aliases.
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		return err
	}
	problems, err := obs.Lint(strings.NewReader(metrics))
	if err != nil {
		return err
	}
	if len(problems) != 0 {
		return fmt.Errorf("exp: OBS: /metrics fails exposition lint: %v", problems)
	}
	fams, _, err := obs.Parse(strings.NewReader(metrics))
	if err != nil {
		return err
	}
	for _, series := range []string{
		"tsgserve_http_requests_total",
		"tsgserve_http_request_duration_seconds_count",
		"tsgserve_engine_phase_seconds_count",
		"tsgserve_build_info",
		"tsgserve_queries_total", // compat alias, MetricsCompat is on
	} {
		if _, ok := obs.FindSample(fams, series, nil); !ok {
			return fmt.Errorf("exp: OBS: /metrics missing series %s", series)
		}
	}
	fmt.Fprintf(w, "metrics: %d families, exposition lints clean, compat aliases present\n", len(fams))
	return nil
}

// obsRig is one warm server — instrumented or stripped — plus its
// primed graph and client fleet, kept alive across every timed burst so
// paired measurements differ only in instrumentation, never in server
// age, heap history or connection state.
type obsRig struct {
	srv     *httptest.Server
	ref     client.GraphRef
	cls     []*client.Client
	g       *sg.Graph
	order   []int
	ws      int
	wantLam string
	seq     int // what-if batch cursor; advances across bursts
}

// newOBSRig boots the server, uploads and fully primes the benchmark
// graph (analyze + the full what-if working set), and pre-builds one
// client per driver goroutine.
func newOBSRig(text, wantLam string, g *sg.Graph, disable bool, clients int) (*obsRig, error) {
	s := serve.New(serve.Config{DisableObs: disable})
	srv := httptest.NewServer(s)
	ctx := context.Background()

	r := &obsRig{
		srv:     srv,
		g:       g,
		order:   sg.CanonicalArcOrder(g),
		ws:      workingSet(g),
		wantLam: wantLam,
	}
	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
	up, err := cl.UploadText(ctx, text)
	if err != nil {
		srv.Close()
		return nil, err
	}
	r.ref = client.ByFingerprint(up.Fingerprint)
	if _, err := cl.Analyze(ctx, r.ref); err != nil {
		srv.Close()
		return nil, err
	}
	prime := make([]client.WhatIfQuery, r.ws)
	for k := range prime {
		prime[k] = client.WhatIfQuery{Arc: k, Delay: g.Arc(r.order[k]).Delay * 1.5}
	}
	if _, err := cl.WhatIf(ctx, r.ref, prime); err != nil {
		srv.Close()
		return nil, err
	}
	// The driver fleet gets a transport with an idle-connection slot per
	// client: the default MaxIdleConnsPerHost (2) would force half the
	// requests of a 4-way drive through a fresh TCP dial + close, and
	// that syscall churn is both slow and far noisier than the
	// instrumentation effect under test.
	hc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * clients,
		MaxIdleConnsPerHost: 2 * clients,
	}}
	r.cls = make([]*client.Client, clients)
	for c := range r.cls {
		r.cls[c] = client.New(srv.URL, client.WithHTTPClient(hc))
	}
	return r, nil
}

func (r *obsRig) close() { r.srv.Close() }

// burst runs iters analyze + what-if loops on every client concurrently
// and reports throughput as requests per CPU second. CPU time, not wall
// time: instrumentation cost is CPU work, and CPU seconds are immune to
// the steal/descheduling noise of shared runners (falls back to wall
// time where rusage is unavailable).
func (r *obsRig) burst(iters int) (float64, error) {
	// Normalise heap state before timing so GC debt accrued by earlier
	// bursts is not charged to this one.
	runtime.GC()
	ctx := context.Background()
	var reqs atomic.Int64
	errs := make(chan error, len(r.cls))
	base := r.seq
	r.seq += iters * len(r.cls)
	cpu0 := cpuSeconds()
	start := time.Now()
	for c, cc := range r.cls {
		go func(c int, cc *client.Client) {
			for i := 0; i < iters; i++ {
				res, err := cc.Analyze(ctx, r.ref)
				if err != nil {
					errs <- err
					return
				}
				if res.Lambda.Text != r.wantLam {
					errs <- fmt.Errorf("served λ %s, want %s", res.Lambda.Text, r.wantLam)
					return
				}
				if _, err := cc.WhatIf(ctx, r.ref, whatIfBatch(r.g, r.order, r.ws, base+c*iters+i)); err != nil {
					errs <- err
					return
				}
				reqs.Add(2)
			}
			errs <- nil
		}(c, cc)
	}
	for range r.cls {
		if cerr := <-errs; cerr != nil {
			return 0, cerr
		}
	}
	// Collect inside the timed window: each burst ends at a clean heap
	// and is charged the GC cost of exactly the garbage it produced.
	// Without this, whether a burst happens to contain N or N+1 GC
	// cycles swings its CPU charge by several percent — quantization
	// noise far larger than the <3% effect being gated.
	runtime.GC()
	elapsed := cpuSeconds() - cpu0
	if elapsed <= 0 {
		elapsed = time.Since(start).Seconds()
	}
	return float64(reqs.Load()) / elapsed, nil
}

// getJSONBody fetches a debug endpoint off the test server and decodes
// its JSON reply.
func getJSONBody(srv *httptest.Server, path string, out interface{}) error {
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
