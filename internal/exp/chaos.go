package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"tsg/client"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/serve"
	"tsg/internal/sg"
	"tsg/internal/store"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{
		ID:    "CHAOS",
		Title: "fault injection: kill -9 durability (WAL replay, bit-identical λ) and overload shedding (admission control, deadlines)",
		Run:   runCHAOS,
	})
}

// runCHAOS is the robustness proof for the durable serving layer, in
// two phases.
//
// Phase 1 (durability): a durable server takes uploads and a committed
// edit sequence — including a deliberately duplicated (client, seq)
// retry — then dies mid-write (an injected torn-frame crash, the
// kill -9 moment). A restart on the same data directory must replay
// the write-ahead log into a state BIT-IDENTICAL to an uninterrupted
// oracle run of the same traffic: same λ (exact rational), same
// critical cycles, the exactly-once dedupe table intact across the
// crash. Compaction then rewrites the log and a third boot re-verifies
// the same state from the compacted form.
//
// Phase 2 (overload): a server with deliberately tiny capacity
// (1 in-flight + 2 queued per endpoint, 400ms request deadline) takes
// a burst of expensive Monte-Carlo traffic at several times capacity.
// Admitted requests must complete or be deadline-cancelled within the
// deadline plus scheduling grace — never hang — and shed requests must
// get clean 503s carrying Retry-After; fast traffic on other endpoints
// keeps flowing throughout (admission is per-endpoint).
func runCHAOS(w io.Writer) error {
	if err := chaosDurability(w); err != nil {
		return err
	}
	return chaosOverload(w)
}

// chaosScript is one graph's committed-edit traffic: canonical arc
// ranks with new delays, applied in order under one client's stamps.
type chaosScript struct {
	name  string
	text  string
	edits []serve.DelayEdit
}

// chaosScripts builds the durability workload: two graphs and an edit
// walk over each (delays nudged off their compile-time values so the
// recovered baseline is distinguishable from a mere recompile).
func chaosScripts() ([]chaosScript, error) {
	stack, err := gen.Stack(31)
	if err != nil {
		return nil, err
	}
	random, err := gen.RandomLive(rand.New(rand.NewSource(94)),
		gen.RandomOptions{Events: 300, Border: 8, ExtraArcs: 300, MaxDelay: 16})
	if err != nil {
		return nil, err
	}
	out := make([]chaosScript, 0, 2)
	for _, gw := range []struct {
		name string
		g    *sg.Graph
	}{{"stack-66", stack}, {"random-300", random}} {
		var buf bytes.Buffer
		if err := netlist.WriteTSG(&buf, gw.g); err != nil {
			return nil, err
		}
		order := sg.CanonicalArcOrder(gw.g)
		edits := make([]serve.DelayEdit, 6)
		for i := range edits {
			rank := (i * 7) % len(order)
			edits[i] = serve.DelayEdit{Arc: rank, Delay: gw.g.Arc(order[rank]).Delay + float64(i) + 0.5}
		}
		out = append(out, chaosScript{name: gw.name, text: buf.String(), edits: edits})
	}
	return out, nil
}

// postEdit posts one raw edit request (explicit (client, seq) stamps —
// the experiment controls duplication deliberately, so it bypasses the
// client package's automatic stamping).
func postEdit(base string, req serve.EditRequest) (*serve.EditResponse, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, 0, err
	}
	resp, err := http.Post(base+"/v1/edit", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	var out serve.EditResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.StatusCode, err
	}
	return &out, resp.StatusCode, nil
}

// chaosState is the comparable end state of one graph's traffic: the
// exact λ and the critical-cycle report.
type chaosState struct {
	lambda   serve.Lambda
	critical string
}

// driveChaosTraffic applies every script against the server: upload,
// then the edit walk under client stamp "chaos" with seqs 1..n, with
// edit 2 deliberately re-sent (the retry of a lost response — it must
// dedupe, not re-apply). Returns the final analyze state per graph.
func driveChaosTraffic(base string, scripts []chaosScript) (map[string]chaosState, error) {
	cl := client.New(base, client.WithRetries(0))
	ctx := context.Background()
	out := map[string]chaosState{}
	for _, sc := range scripts {
		up, err := cl.UploadText(ctx, sc.text)
		if err != nil {
			return nil, fmt.Errorf("upload %s: %w", sc.name, err)
		}
		ref := serve.GraphRef{Fingerprint: up.Fingerprint}
		for i, ed := range sc.edits {
			res, status, err := postEdit(base, serve.EditRequest{
				GraphRef: ref, Edits: []serve.DelayEdit{ed}, Client: "chaos", Seq: uint64(i + 1),
			})
			if err != nil || status != http.StatusOK {
				return nil, fmt.Errorf("edit %d on %s: status %d, err %v", i, sc.name, status, err)
			}
			if res.Deduped {
				return nil, fmt.Errorf("fresh edit %d on %s deduped", i, sc.name)
			}
			if i == 2 { // the duplicated retry
				dup, status, err := postEdit(base, serve.EditRequest{
					GraphRef: ref, Edits: []serve.DelayEdit{ed}, Client: "chaos", Seq: uint64(i + 1),
				})
				if err != nil || status != http.StatusOK {
					return nil, fmt.Errorf("duplicate edit on %s: status %d, err %v", sc.name, status, err)
				}
				if !dup.Deduped {
					return nil, fmt.Errorf("duplicate (chaos, %d) on %s re-applied instead of deduping", i+1, sc.name)
				}
				if dup.Lambda != res.Lambda {
					return nil, fmt.Errorf("deduped ack λ %s differs from original %s on %s", dup.Lambda.Text, res.Lambda.Text, sc.name)
				}
			}
		}
		st, err := chaosAnalyze(cl, up.Fingerprint)
		if err != nil {
			return nil, fmt.Errorf("final analyze %s: %w", sc.name, err)
		}
		out[sc.name] = st
	}
	return out, nil
}

func chaosAnalyze(cl *client.Client, fp string) (chaosState, error) {
	res, err := cl.Analyze(context.Background(), client.ByFingerprint(fp))
	if err != nil {
		return chaosState{}, err
	}
	return chaosState{lambda: res.Lambda, critical: fmt.Sprintf("%v", res.Critical)}, nil
}

func chaosDurability(w io.Writer) error {
	scripts, err := chaosScripts()
	if err != nil {
		return err
	}

	// Oracle: the same traffic against a plain in-memory server,
	// uninterrupted. This is the state the crashed node must recover.
	oracleSrv := httptest.NewServer(serve.New(serve.Config{}))
	oracle, err := driveChaosTraffic(oracleSrv.URL, scripts)
	oracleSrv.Close()
	if err != nil {
		return fmt.Errorf("exp: oracle run: %w", err)
	}

	dir, err := os.MkdirTemp("", "tsg-chaos-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Boot 1: durable server takes the full traffic, then dies on an
	// injected torn write — the WAL frame of the next edit is half
	// written when the process "loses power". Every acknowledged edit
	// is already fsync'd; the torn frame was never acknowledged.
	st, _, err := store.Open(dir, store.Options{NoAutoCompact: true})
	if err != nil {
		return err
	}
	s1 := serve.New(serve.Config{Store: st})
	srv1 := httptest.NewServer(s1)
	if _, err := driveChaosTraffic(srv1.URL, scripts); err != nil {
		srv1.Close()
		return fmt.Errorf("exp: durable run: %w", err)
	}
	st.Arm(store.FailPartialWrite)
	res, status, err := postEdit(srv1.URL, serve.EditRequest{
		GraphRef: serve.GraphRef{Graph: scripts[0].text},
		Edits:    []serve.DelayEdit{{Arc: 0, Delay: 99}}, Client: "chaos", Seq: 100,
	})
	if err != nil {
		return fmt.Errorf("exp: crash edit transport: %w", err)
	}
	if status != http.StatusInternalServerError || res != nil {
		return fmt.Errorf("exp: edit during crash answered %d, want 500 (the WAL write died mid-frame)", status)
	}
	srv1.Close()
	st.Close()

	// Boot 2: reopen the same directory. Recovery must truncate the
	// torn tail, replay every acknowledged record, and restore a state
	// bit-identical to the oracle — including the dedupe table.
	st2, rec, err := store.Open(dir, store.Options{NoAutoCompact: true})
	if err != nil {
		return fmt.Errorf("exp: reopen after crash: %w", err)
	}
	defer st2.Close()
	if rec.TruncatedBytes == 0 {
		return fmt.Errorf("exp: recovery found no torn tail; the injected crash did not tear a frame")
	}
	s2 := serve.New(serve.Config{Store: st2})
	if err := s2.Recover(rec); err != nil {
		return fmt.Errorf("exp: recover: %w", err)
	}
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	graphs, edits := s2.WarmRestartCounts()
	if graphs != int64(len(scripts)) {
		return fmt.Errorf("exp: warm restart recompiled %d graphs, want %d", graphs, len(scripts))
	}

	tab := textio.New("CHAOS phase 1: kill -9 mid-write -> restart on the same data-dir",
		"graph", "oracle λ", "recovered λ", "criticals", "verdict")
	cl2 := client.New(srv2.URL, client.WithRetries(0))
	checkAll := func(label string) error {
		for _, sc := range scripts {
			up, err := cl2.UploadText(context.Background(), sc.text)
			if err != nil {
				return err
			}
			got, err := chaosAnalyze(cl2, up.Fingerprint)
			if err != nil {
				return err
			}
			want := oracle[sc.name]
			if got.lambda != want.lambda || got.critical != want.critical {
				return fmt.Errorf("exp: %s state after %s: λ %s, oracle %s (criticals equal: %v)",
					sc.name, label, got.lambda.Text, want.lambda.Text, got.critical == want.critical)
			}
			if label == "recovery" {
				tab.AddRow(sc.name, want.lambda.Text, got.lambda.Text, "identical", "bit-identical")
			}
			// The dedupe table survived: the last applied (chaos, seq)
			// stamp still acks without re-applying.
			dup, status, err := postEdit(srv2.URL, serve.EditRequest{
				GraphRef: serve.GraphRef{Fingerprint: up.Fingerprint},
				Edits:    []serve.DelayEdit{sc.edits[len(sc.edits)-1]},
				Client:   "chaos", Seq: uint64(len(sc.edits)),
			})
			if err != nil || status != http.StatusOK {
				return fmt.Errorf("exp: cross-restart retry on %s: status %d, err %v", sc.name, status, err)
			}
			if !dup.Deduped {
				return fmt.Errorf("exp: cross-restart retry on %s re-applied; the dedupe table did not survive %s", sc.name, label)
			}
		}
		return nil
	}
	if err := checkAll("recovery"); err != nil {
		return err
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "recovery: %d log records replayed, torn tail of %d bytes dropped, %d graphs recompiled, %d edits re-applied\n",
		rec.Records, rec.TruncatedBytes, graphs, edits)

	// Compaction: rewrite the log to its live state and prove a third
	// boot recovers the identical state from the compacted form.
	before := st2.Size()
	if err := st2.Compact(); err != nil {
		return fmt.Errorf("exp: compact: %w", err)
	}
	srv2.Close()
	st2.Close()
	st3, rec3, err := store.Open(dir, store.Options{NoAutoCompact: true})
	if err != nil {
		return fmt.Errorf("exp: reopen after compaction: %w", err)
	}
	defer st3.Close()
	s3 := serve.New(serve.Config{Store: st3})
	if err := s3.Recover(rec3); err != nil {
		return fmt.Errorf("exp: recover from compacted log: %w", err)
	}
	srv3 := httptest.NewServer(s3)
	defer srv3.Close()
	cl2 = client.New(srv3.URL, client.WithRetries(0))
	// Re-point the closure's server at boot 3.
	checkAll3 := func() error {
		for _, sc := range scripts {
			up, err := cl2.UploadText(context.Background(), sc.text)
			if err != nil {
				return err
			}
			got, err := chaosAnalyze(cl2, up.Fingerprint)
			if err != nil {
				return err
			}
			want := oracle[sc.name]
			if got.lambda != want.lambda || got.critical != want.critical {
				return fmt.Errorf("exp: %s state after compaction: λ %s, oracle %s", sc.name, got.lambda.Text, want.lambda.Text)
			}
			dup, status, err := postEdit(srv3.URL, serve.EditRequest{
				GraphRef: serve.GraphRef{Fingerprint: up.Fingerprint},
				Edits:    []serve.DelayEdit{sc.edits[len(sc.edits)-1]},
				Client:   "chaos", Seq: uint64(len(sc.edits)),
			})
			if err != nil || status != http.StatusOK || !dup.Deduped {
				return fmt.Errorf("exp: dedupe table lost by compaction on %s (status %d, err %v)", sc.name, status, err)
			}
		}
		return nil
	}
	if err := checkAll3(); err != nil {
		return err
	}
	fmt.Fprintf(w, "compaction: log %d -> %d bytes; third boot recovers the identical state from the compacted form\n",
		before, st3.Size())
	return nil
}

// chaosOverload floods a deliberately tiny server and gates the
// shedding contract.
func chaosOverload(w io.Writer) error {
	random, err := gen.RandomLive(rand.New(rand.NewSource(95)),
		gen.RandomOptions{Events: 500, Border: 8, ExtraArcs: 500, MaxDelay: 16})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := netlist.WriteTSG(&buf, random); err != nil {
		return err
	}

	const deadline = 400 * time.Millisecond
	const grace = 3 * time.Second // queue/scheduler slack on a loaded runner
	s := serve.New(serve.Config{MaxConcurrent: 1, MaxQueue: 2, RequestTimeout: deadline})
	srv := httptest.NewServer(s)
	defer srv.Close()
	ctx := context.Background()

	cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithRetries(0))
	up, err := cl.UploadText(ctx, buf.String())
	if err != nil {
		return fmt.Errorf("exp: overload upload: %w", err)
	}
	ref := client.ByFingerprint(up.Fingerprint)
	if _, err := cl.Analyze(ctx, ref); err != nil {
		return fmt.Errorf("exp: overload prime: %w", err)
	}

	burst, iters, samples := 10, 3, 50_000_000
	if Quick {
		burst, iters, samples = 6, 2, 10_000_000
	}
	type tally struct {
		ok, shed, other int
		noRetryAfter    int
		slow            int // responses later than deadline+grace
		maxLatency      time.Duration
	}
	var mu sync.Mutex
	var mc, an tally
	var wg sync.WaitGroup
	record := func(t *tally, latency time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if latency > t.maxLatency {
			t.maxLatency = latency
		}
		if latency > deadline+grace {
			t.slow++
		}
		if err == nil {
			t.ok++
			return
		}
		var api *client.APIError
		if errors.As(err, &api) && api.Status == http.StatusServiceUnavailable {
			t.shed++
			if api.RetryAfter <= 0 {
				t.noRetryAfter++
			}
			return
		}
		t.other++
	}
	for c := 0; c < burst; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()), client.WithRetries(0))
			for i := 0; i < iters; i++ {
				// Expensive: a Monte-Carlo run far beyond the deadline.
				// Every one of these either queues briefly, runs until the
				// deadline cancels it, or is shed outright — all three end
				// inside deadline+grace.
				start := time.Now()
				_, err := cl.MC(ctx, ref, client.MCRequest{Samples: samples, Workers: 1, Jitter: 0.2, Seed: 7})
				record(&mc, time.Since(start), err)
				// Fast: analyze on its own endpoint keeps flowing —
				// admission is per-endpoint, so MC saturation must not
				// starve it.
				start = time.Now()
				_, err = cl.Analyze(ctx, ref)
				record(&an, time.Since(start), err)
			}
		}()
	}
	wg.Wait()

	tab := textio.New(fmt.Sprintf("CHAOS phase 2: %d clients x %d rounds against capacity 1 (+2 queued), %s deadline",
		burst, iters, deadline),
		"endpoint", "ok", "shed (503)", "other", "max latency")
	tab.AddRow("/v1/mc", mc.ok, mc.shed, mc.other, mc.maxLatency.Round(time.Millisecond))
	tab.AddRow("/v1/analyze", an.ok, an.shed, an.other, an.maxLatency.Round(time.Millisecond))
	if err := tab.Render(w); err != nil {
		return err
	}

	if mc.shed == 0 {
		return fmt.Errorf("exp: %dx-capacity burst shed nothing; admission control is not engaging", burst)
	}
	if mc.noRetryAfter > 0 || an.noRetryAfter > 0 {
		return fmt.Errorf("exp: %d sheds arrived without Retry-After", mc.noRetryAfter+an.noRetryAfter)
	}
	if mc.other > 0 || an.other > 0 {
		return fmt.Errorf("exp: %d non-503 failures under overload", mc.other+an.other)
	}
	if mc.slow > 0 || an.slow > 0 {
		return fmt.Errorf("exp: %d responses later than deadline+%s; requests are hanging past their deadline", mc.slow+an.slow, grace)
	}
	if an.ok == 0 {
		return fmt.Errorf("exp: analyze starved during MC overload; per-endpoint admission is not isolating")
	}

	// The burst over, the MC endpoint must be fully recovered: a cheap
	// run admitted and answered.
	if _, err := cl.MC(ctx, ref, client.MCRequest{Samples: 16, Workers: 1, Jitter: 0.2, Seed: 7}); err != nil {
		return fmt.Errorf("exp: MC endpoint did not recover after the burst: %w", err)
	}
	fmt.Fprintf(w, "overload: %d/%d MC requests shed with 503+Retry-After, every response within %s+%s, analyze endpoint unaffected, endpoint recovered after the burst\n",
		mc.shed, burst*iters, deadline, grace)
	return nil
}
