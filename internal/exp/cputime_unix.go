//go:build unix

package exp

import (
	"syscall"
	"time"
)

// cpuSeconds returns the process's cumulative user+system CPU time.
// The overhead experiments divide request counts by CPU time rather
// than wall time: on shared or virtualised runners wall-clock
// throughput inherits multi-percent noise from CPU steal and
// descheduling, while the CPU seconds actually charged to the process
// stay comparable — and instrumentation overhead is CPU work, which is
// exactly what the gates bound.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return (time.Duration(ru.Utime.Nano()) + time.Duration(ru.Stime.Nano())).Seconds()
}
