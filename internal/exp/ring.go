package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"tsg/internal/cycletime"
	"tsg/internal/extract"
	"tsg/internal/gen"
	"tsg/internal/textio"
	"tsg/internal/timesim"
)

func init() {
	register(Experiment{ID: "TAB8D", Title: "§VIII.D: Muller ring with five elements (gate level -> extraction -> analysis)", Run: runTAB8D})
}

func runTAB8D(w io.Writer) error {
	// Full flow: build the gate-level circuit of Fig. 5, extract the
	// Signal Graph (TRASPEC step), then analyse.
	c, err := gen.MullerRingCircuit(gen.RingOptions{Stages: 5, InitialHigh: []int{5}})
	if err != nil {
		return err
	}
	g, err := extract.Extract(c, extract.Options{})
	if err != nil {
		return err
	}
	border := strings.Join(g.EventNames(g.BorderEvents()), " ")
	fmt.Fprintf(w, "extracted Signal Graph: %d events, %d arcs\n", g.NumEvents(), g.NumArcs())
	fmt.Fprintf(w, "border events: {%s} (paper: a+ b+ c+ e- as o1+ o2+ o3+ o5-)\n", border)
	if err := expect("border set", border, "o1+ o2+ o3+ o5-"); err != nil {
		return err
	}

	// The paper extends the table to ten periods to show the periodic
	// distance pattern 6 7 7 | 6 7 7 | ...
	tr, err := timesim.RunFrom(g, g.MustEvent("o1+"), timesim.Options{Periods: 11})
	if err != nil {
		return err
	}
	wantT := []float64{6, 13, 20, 26, 33, 40, 46, 53, 60, 66}
	wantStep := []float64{6, 7, 7, 6, 7, 7, 6, 7, 7, 6}
	tab := textio.New("§VIII.D: a+-initiated simulation (a = o1)",
		"i", "t(a+_i)", "paper", "step", "paper step", "δ̄(a+_i)")
	prev := 0.0
	for i := 1; i <= 10; i++ {
		t, ok := tr.Time(g.MustEvent("o1+"), i)
		if !ok {
			return fmt.Errorf("exp: no instantiation o1+_%d", i)
		}
		tab.AddRow(i, t, wantT[i-1], t-prev, wantStep[i-1], t/float64(i))
		if err := expect(fmt.Sprintf("t_a+0(a+_%d)", i), t, wantT[i-1]); err != nil {
			return err
		}
		if err := expect(fmt.Sprintf("step at i=%d", i), t-prev, wantStep[i-1]); err != nil {
			return err
		}
		prev = t
	}
	if err := tab.Render(w); err != nil {
		return err
	}

	res, err := cycletime.Analyze(g)
	if err != nil {
		return err
	}
	r := res.CycleTime.Normalize()
	fmt.Fprintf(w, "cycle time λ = %v (paper: 20/3 ≈ 6.67)\n", res.CycleTime)
	if r.Num != 20 || r.Den != 3 {
		return fmt.Errorf("exp: ring cycle time = %v, paper says 20/3", res.CycleTime)
	}
	for _, cc := range res.Critical {
		fmt.Fprintf(w, "critical cycle (ε=%d, length %g): %s\n", cc.Period, cc.Length, cc.Format(g))
		if cc.Period != 3 {
			return fmt.Errorf("exp: critical cycle ε = %d, want 3 (covers three periods)", cc.Period)
		}
	}

	// Asymptote check: the running average converges to 20/3.
	s, err := tr.InitiatedDistances()
	if err != nil {
		return err
	}
	if math.Abs(s.At(s.Len()-1)-20.0/3) > 0.15 {
		return fmt.Errorf("exp: running δ %v does not sit near 20/3", s)
	}
	return nil
}
