package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/hier"
	"tsg/internal/sg"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{
		ID:    "SCALE",
		Title: "scalability wall: 10^3..10^6-event graphs under hierarchical macro-compression and the memory-bounded kernel",
		Run:   runSCALE,
	})
}

// scaleRow is one point of the scalability sweep.
type scaleRow struct {
	name  string
	build func() (*sg.Graph, error)
	// heapBudgetMB gates the sampled peak Go heap occupancy of the whole
	// row (build + hierarchical + flat analysis). Sampled heap is used
	// rather than VmHWM so the gate stays attributable when other
	// experiments share the process; the standalone CI smoke step also
	// watches VmHWM. Enforced in full and quick runs alike — the budgets
	// are sizes, not speeds, so they cannot flake on loaded runners.
	heapBudgetMB uint64
	// timeBoxSec bounds the row's wall time in quick mode only (CI smoke:
	// catch accidental O(n·b) memory or O(n²) time regressions without
	// gating full-run performance numbers, which BENCH_pr7.json records).
	timeBoxSec float64
}

// scaleRows returns the sweep: the pipegrid family from 10^3 to 10^6
// events (10^6 full mode only), plus one mesh and one tree-of-rings
// point so the compression is exercised on fabrics with very different
// interior shapes.
func scaleRows() []scaleRow {
	rows := []scaleRow{
		{name: "pipegrid-1e3", heapBudgetMB: 256, timeBoxSec: 60,
			build: func() (*sg.Graph, error) { return gen.PipeGridSized(1_000, 16, 4, 7001) }},
		{name: "pipegrid-1e4", heapBudgetMB: 256, timeBoxSec: 60,
			build: func() (*sg.Graph, error) { return gen.PipeGridSized(10_000, 16, 4, 7002) }},
		{name: "pipegrid-1e5", heapBudgetMB: 512, timeBoxSec: 120,
			build: func() (*sg.Graph, error) { return gen.PipeGridSized(100_000, 16, 4, 7003) }},
	}
	if Quick {
		rows = append(rows,
			scaleRow{name: "mesh-1e4", heapBudgetMB: 256, timeBoxSec: 60,
				build: func() (*sg.Graph, error) { return gen.Mesh(gen.MeshOptions{W: 625, H: 16, Seed: 7004}) }},
			scaleRow{name: "treering-1e4", heapBudgetMB: 256, timeBoxSec: 60,
				build: func() (*sg.Graph, error) {
					return gen.TreeOfRings(gen.TreeRingOptions{Sites: 5, Levels: 9, Fanout: 2, Seed: 7005})
				}},
		)
		return rows
	}
	rows = append(rows,
		scaleRow{name: "pipegrid-1e6", heapBudgetMB: 1024,
			build: func() (*sg.Graph, error) { return gen.PipeGridSized(1_000_000, 16, 4, 7006) }},
		scaleRow{name: "mesh-1e5", heapBudgetMB: 512,
			build: func() (*sg.Graph, error) { return gen.Mesh(gen.MeshOptions{W: 6250, H: 16, Seed: 7007}) }},
		scaleRow{name: "treering-1e5", heapBudgetMB: 512,
			build: func() (*sg.Graph, error) {
				return gen.TreeOfRings(gen.TreeRingOptions{Sites: 6, Levels: 12, Fanout: 2, Seed: 7008})
			}},
	)
	return rows
}

// runSCALE sweeps graph sizes from 10^3 to 10^6 events and, per size,
// (a) runs the hierarchical analysis (macro-compression + paper
// algorithm on the compressed graph + winner expansion), (b) runs the
// flat analysis with the memory-bounded windowed kernel, (c) gates
// that the two λ are bit-identical — all delays are integral, so exact
// equality is the correct expectation, not a tolerance — and (d) gates
// the sampled peak heap of the row against a hard byte budget. The
// 10^6-event point is the headline: pre-PR, pass 1 alone would have
// needed (b+2)·n·9 bytes per in-flight simulation slab (~162 MB each,
// one per worker); the windowed kernel needs two rows (~18 MB total
// across 16 workers), and the hierarchical path analyses a
// few-dozen-event compressed core instead.
func runSCALE(w io.Writer) error {
	tab := textio.New("scalability wall: hierarchical vs flat (windowed) analysis",
		"workload", "n/m/b", "build", "compress ev", "hier λ", "flat λ", "hier ns/ev", "heap peak", "λ bit-eq")
	for _, row := range scaleRows() {
		// Collect the previous row's graph before sampling so each row's
		// peak is attributable to that row alone. Twice: pooled slabs of
		// the dead schedule sit in sync.Pool victim caches for one extra
		// GC cycle.
		runtime.GC()
		runtime.GC()
		start := time.Now()
		sampler := StartHeapSampler(5 * time.Millisecond)

		g, err := row.build()
		if err != nil {
			sampler.Stop()
			return fmt.Errorf("exp: SCALE %s: build: %w", row.name, err)
		}
		buildT := time.Since(start)

		hierStart := time.Now()
		hres, err := hier.Analyze(g)
		if err != nil {
			sampler.Stop()
			return fmt.Errorf("exp: SCALE %s: hier analyze: %w", row.name, err)
		}
		hierT := time.Since(hierStart)
		if hres.Stats.Fallback {
			sampler.Stop()
			return fmt.Errorf("exp: SCALE %s: compression fell back to flat — family should compress", row.name)
		}
		if len(hres.Critical) == 0 {
			sampler.Stop()
			return fmt.Errorf("exp: SCALE %s: no critical cycle expanded", row.name)
		}

		// Flat differential: auto-windowed pass 1 everywhere; pass 2
		// (critical-cycle extraction) only while its per-winner parent
		// slabs fit the row budget — past that, λ-only is what "flat is
		// feasible" means, and the expanded hierarchical winners stand in
		// for pass 2 (acceptance 2 checks them against flat λ).
		flatOpts := cycletime.Options{LambdaOnly: g.NumEvents() > 200_000}
		flatStart := time.Now()
		flat, err := cycletime.AnalyzeOpts(g, flatOpts)
		if err != nil {
			sampler.Stop()
			return fmt.Errorf("exp: SCALE %s: flat analyze: %w", row.name, err)
		}
		flatT := time.Since(flatStart)

		heapPeak := sampler.Stop()
		elapsed := time.Since(start)

		// Hard acceptance 1: bit-identical λ, flat vs hierarchical.
		hn, fn := hres.CycleTime.Normalize(), flat.CycleTime.Normalize()
		if hn.Num != fn.Num || hn.Den != fn.Den {
			return fmt.Errorf("exp: SCALE %s: λ mismatch: hier %v, flat %v", row.name, hres.CycleTime, flat.CycleTime)
		}
		// Hard acceptance 2: every expanded winner attains λ on the flat graph.
		for ci := range hres.Critical {
			if !hres.Critical[ci].Ratio().Equal(flat.CycleTime) {
				return fmt.Errorf("exp: SCALE %s: expanded cycle %d ratio %v != λ %v",
					row.name, ci, hres.Critical[ci].Ratio(), flat.CycleTime)
			}
		}
		// Hard acceptance 3: the row stayed inside its heap budget.
		if budget := row.heapBudgetMB << 20; heapPeak > uint64(budget) {
			return fmt.Errorf("exp: SCALE %s: peak heap %d MB exceeds budget %d MB",
				row.name, heapPeak>>20, row.heapBudgetMB)
		}
		// Quick-mode time box (CI smoke; full-run timings go to BENCH_pr7.json).
		if Quick && row.timeBoxSec > 0 && elapsed.Seconds() > row.timeBoxSec {
			return fmt.Errorf("exp: SCALE %s: row took %.1fs, time box %.0fs", row.name, elapsed.Seconds(), row.timeBoxSec)
		}

		tab.AddRow(row.name,
			fmt.Sprintf("%d/%d/%d", g.NumEvents(), g.NumArcs(), len(g.BorderEvents())),
			fmt.Sprintf("%.0fms", float64(buildT.Nanoseconds())/1e6),
			fmt.Sprintf("%d (%.5f)", hres.Stats.CompressedEvents, hres.Stats.EventRatio()),
			fmt.Sprintf("%.0fms", float64(hierT.Nanoseconds())/1e6),
			fmt.Sprintf("%.0fms", float64(flatT.Nanoseconds())/1e6),
			fmt.Sprintf("%.1f", float64(hierT.Nanoseconds())/float64(g.NumEvents())),
			fmt.Sprintf("%dMB", heapPeak>>20),
			"yes")
	}
	if err := tab.Render(w); err != nil {
		return err
	}
	if hwm := VmHWMBytes(); hwm > 0 {
		fmt.Fprintf(w, "process VmHWM: %d MB (whole process, all experiments; gated per row on sampled heap)\n", hwm>>20)
	}
	mode := "full"
	if Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "%s sweep done on %d CPU(s); λ bit-equality and heap budgets held on every row\n",
		mode, runtime.NumCPU())
	return nil
}
