package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{
		ID:    "MCSTAT",
		Title: "statistical extension: Monte-Carlo λ on the compiled kernel (pin, bounds bracket, samples/sec)",
		Run:   runMCSTAT,
	})
}

// runMCSTAT validates the statistical subsystem end to end and measures
// its throughput:
//
//  1. differential pin — Monte-Carlo over all-point distributions must
//     reproduce the deterministic λ exactly (zero variance, criticality
//     in {0,1} on the critical-cycle arcs);
//  2. bounds bracket — under ±10% jitter every sampled λ (min, max and
//     all quantiles) must lie inside the AnalyzeBounds interval of the
//     same ±10%, because the model supports are exactly the bounds'
//     delay intervals and λ is monotone in delays;
//  3. throughput — samples/sec on the 66-event stack and a random
//     2000-event graph, serial vs. the worker pool, all on the
//     compiled kernel (no re-Build/re-Compile per sample).
func runMCSTAT(w io.Writer) error {
	// 1. Differential pin on the paper's stack workload.
	stack, err := gen.Stack(31)
	if err != nil {
		return err
	}
	det, err := cycletime.Analyze(stack)
	if err != nil {
		return err
	}
	pm, err := gen.PointModel(stack)
	if err != nil {
		return err
	}
	pin, err := cycletime.AnalyzeMC(stack, pm, cycletime.MCOptions{Samples: 64, Criticality: true})
	if err != nil {
		return err
	}
	if err := expect("all-point MC λ mean", pin.Mean, det.CycleTime.Float()); err != nil {
		return err
	}
	if err := expect("all-point MC λ variance", pin.Variance, 0.0); err != nil {
		return err
	}
	onCrit := map[int]bool{}
	for _, cyc := range det.Critical {
		for _, ai := range cyc.Arcs {
			onCrit[ai] = true
		}
	}
	for i, c := range pin.Criticality {
		want := 0.0
		if onCrit[i] {
			want = 1.0
		}
		if c != want {
			return fmt.Errorf("exp: all-point criticality of arc %d = %v, want %v", i, c, want)
		}
	}

	// 2. Bounds bracket on a random workload.
	rng := rand.New(rand.NewSource(17))
	rnd, err := gen.RandomLive(rng, gen.RandomOptions{Events: 500, Border: 6, ExtraArcs: 500, MaxDelay: 16})
	if err != nil {
		return err
	}
	const frac = 0.10
	lo, hi := cycletime.Jitter(frac)
	bounds, err := cycletime.AnalyzeBounds(rnd, lo, hi)
	if err != nil {
		return err
	}
	jm, err := gen.UniformJitter(rnd, frac)
	if err != nil {
		return err
	}
	mc, err := cycletime.AnalyzeMC(rnd, jm, cycletime.MCOptions{
		Samples: 256, Seed: 3, Quantiles: []float64{0.05, 0.5, 0.95},
	})
	if err != nil {
		return err
	}
	bLo, bHi := bounds.Min.Float(), bounds.Max.Float()
	check := func(what string, v float64) error {
		if v < bLo || v > bHi {
			return fmt.Errorf("exp: %s = %v outside AnalyzeBounds [%v, %v]", what, v, bLo, bHi)
		}
		return nil
	}
	if err := check("MC min λ", mc.Min); err != nil {
		return err
	}
	if err := check("MC max λ", mc.Max); err != nil {
		return err
	}
	for _, q := range mc.Quantiles {
		if err := check(fmt.Sprintf("MC q%g", q.P), q.Value); err != nil {
			return err
		}
	}

	// 3. Throughput: samples/sec, serial vs pooled, on the compiled
	// kernel.
	tab := textio.New("Monte-Carlo throughput (compiled kernel, ±10% uniform jitter)",
		"workload", "n/m/b", "samples", "serial", "pooled")
	random2000, err := gen.RandomLive(rand.New(rand.NewSource(31)),
		gen.RandomOptions{Events: 2000, Border: 8, ExtraArcs: 2000, MaxDelay: 16})
	if err != nil {
		return err
	}
	for _, wl := range []struct {
		name    string
		g       *sg.Graph
		samples int
	}{
		{"stack-66", stack, 256},
		{"random-2000", random2000, 64},
	} {
		g := wl.g
		model, err := gen.UniformJitter(g, frac)
		if err != nil {
			return err
		}
		e, err := cycletime.NewEngine(g)
		if err != nil {
			return err
		}
		run := func(workers int) (float64, error) {
			start := time.Now()
			res, err := e.AnalyzeMC(model, cycletime.MCOptions{Samples: wl.samples, Seed: 9, Workers: workers})
			if err != nil {
				return 0, err
			}
			return float64(res.Samples) / time.Since(start).Seconds(), nil
		}
		serial, err := run(1)
		if err != nil {
			return err
		}
		pooled, err := run(0)
		if err != nil {
			return err
		}
		tab.AddRow(wl.name,
			fmt.Sprintf("%d/%d/%d", g.NumEvents(), g.NumArcs(), len(g.BorderEvents())),
			wl.samples,
			fmt.Sprintf("%.0f samples/s", serial),
			fmt.Sprintf("%.0f samples/s", pooled))
	}
	return tab.Render(w)
}
