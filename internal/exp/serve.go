package exp

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"tsg/client"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/netlist"
	"tsg/internal/serve"
	"tsg/internal/sg"
	"tsg/internal/textio"
)

func init() {
	register(Experiment{
		ID:    "SERVE",
		Title: "serving layer: engine cache + singleflight vs per-request rebuild under concurrent what-if traffic",
		Run:   runSERVE,
	})
}

// serveWorkload is one load-generator configuration.
type serveWorkload struct {
	name    string
	g       *sg.Graph
	clients int // concurrent clients
	iters   int // (analyze + batched what-if) rounds per client
}

// runSERVE measures the serving subsystem end to end: N concurrent
// clients drive analyze + batched what-if traffic over HTTP against
// (a) a cold server with the engine cache disabled — every request
// pays parse + Build + Compile, the per-request-rebuild baseline —
// and (b) a warm server where the graph is uploaded once and every
// request references its fingerprint, sharing one cached engine and
// its certificate across all clients. Every λ on the wire is checked
// against the in-process analysis, and a final round of concurrent
// first requests pins the singleflight guarantee: one compile, no
// matter how many clients ask first.
func runSERVE(w io.Writer) error {
	stack, err := gen.Stack(31)
	if err != nil {
		return err
	}
	random2000, err := gen.RandomLive(rand.New(rand.NewSource(31)),
		gen.RandomOptions{Events: 2000, Border: 8, ExtraArcs: 2000, MaxDelay: 16})
	if err != nil {
		return err
	}
	workloads := []serveWorkload{
		{name: "stack-66", g: stack, clients: 6, iters: 8},
		{name: "random-2000", g: random2000, clients: 6, iters: 4},
	}

	tab := textio.New("serving throughput: cold (per-request rebuild) vs warm (engine cache + fingerprint reference)",
		"workload", "n/m/b", "mode", "requests", "elapsed", "req/s")
	var ratioRandom2000 float64
	for _, wl := range workloads {
		var buf bytes.Buffer
		if err := netlist.WriteTSG(&buf, wl.g); err != nil {
			return err
		}
		text := buf.String()
		res, err := cycletime.Analyze(wl.g)
		if err != nil {
			return err
		}
		wantLam := res.CycleTime.Normalize().String()

		coldRPS, reqs, coldElapsed, err := driveServe(text, wantLam, wl, false)
		if err != nil {
			return fmt.Errorf("exp: %s cold: %w", wl.name, err)
		}
		warmRPS, _, warmElapsed, err := driveServe(text, wantLam, wl, true)
		if err != nil {
			return fmt.Errorf("exp: %s warm: %w", wl.name, err)
		}
		ratio := warmRPS / coldRPS
		if wl.name == "random-2000" {
			ratioRandom2000 = ratio
		}
		nmb := fmt.Sprintf("%d/%d/%d", wl.g.NumEvents(), wl.g.NumArcs(), len(wl.g.BorderEvents()))
		tab.AddRow(wl.name, nmb, "cold (rebuild/request)", reqs, coldElapsed.Round(time.Millisecond), fmt.Sprintf("%.0f", coldRPS))
		tab.AddRow(wl.name, nmb, "warm (engine cache)", reqs, warmElapsed.Round(time.Millisecond), fmt.Sprintf("%.0f", warmRPS))
		tab.AddRow(wl.name, nmb, "warm/cold", "", "", fmt.Sprintf("%.1fx", ratio))
	}
	if err := tab.Render(w); err != nil {
		return err
	}

	// Singleflight: concurrent first requests for one graph must
	// trigger exactly one compile.
	var buf bytes.Buffer
	if err := netlist.WriteTSG(&buf, random2000); err != nil {
		return err
	}
	s := serve.New(serve.Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	const firstClients = 8
	errs := make(chan error, firstClients)
	for c := 0; c < firstClients; c++ {
		go func() {
			cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
			_, err := cl.Analyze(context.Background(), client.GraphRef{Graph: buf.String()})
			errs <- err
		}()
	}
	for c := 0; c < firstClients; c++ {
		if err := <-errs; err != nil {
			return fmt.Errorf("exp: singleflight client: %w", err)
		}
	}
	st := s.Cache().Stats()
	fmt.Fprintf(w, "singleflight: %d concurrent first requests -> %d compile(s), %d joined the in-flight compile\n",
		firstClients, st.Compiles, st.FlightShared)
	if err := expect("singleflight compiles", st.Compiles, int64(1)); err != nil {
		return err
	}

	fmt.Fprintf(w, "random-2000 warm/cold throughput ratio: %.1fx (acceptance in BENCH_pr4.json: >= 10x)\n", ratioRandom2000)
	// The hard 10x acceptance bar is recorded in BENCH_pr4.json from a
	// quiet machine; in-harness we gate at 3x so a loaded CI runner
	// cannot flake the experiment while still catching a cache that
	// stopped working.
	if ratioRandom2000 < 3 {
		return fmt.Errorf("exp: warm cache is only %.1fx over per-request rebuild on random-2000; the engine cache is not amortising compiles", ratioRandom2000)
	}
	return nil
}

// driveServe boots a server (cold: engine cache disabled; warm: the
// graph uploaded once, referenced by fingerprint) and runs the
// workload's concurrent clients, each issuing one analyze plus one
// 8-query batched what-if per iteration. Returns requests/second.
func driveServe(text, wantLam string, wl serveWorkload, warm bool) (rps float64, requests int64, elapsed time.Duration, err error) {
	cfg := serve.Config{}
	if !warm {
		cfg.CacheBytes = -1 // pass-through: every request rebuilds
	}
	s := serve.New(cfg)
	srv := httptest.NewServer(s)
	defer srv.Close()
	ctx := context.Background()

	// The canonical arc order is computed once, outside the timed
	// region — the load loop only reads it.
	ws := workingSet(wl.g)
	order := sg.CanonicalArcOrder(wl.g)

	ref := client.GraphRef{Graph: text}
	if warm {
		cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
		up, uerr := cl.UploadText(ctx, text)
		if uerr != nil {
			return 0, 0, 0, uerr
		}
		ref = client.ByFingerprint(up.Fingerprint)
		// Steady state: the first analyze and one sweep over the whole
		// arc working set build the cached result, certificate and
		// what-if rows before the clock starts.
		if _, err := cl.Analyze(ctx, ref); err != nil {
			return 0, 0, 0, err
		}
		prime := make([]client.WhatIfQuery, ws)
		for k := range prime {
			prime[k] = client.WhatIfQuery{Arc: k, Delay: wl.g.Arc(order[k]).Delay * 1.5}
		}
		if _, err := cl.WhatIf(ctx, ref, prime); err != nil {
			return 0, 0, 0, err
		}
	}

	var reqs atomic.Int64
	errs := make(chan error, wl.clients)
	start := time.Now()
	for c := 0; c < wl.clients; c++ {
		go func(c int) {
			cl := client.New(srv.URL, client.WithHTTPClient(srv.Client()))
			for i := 0; i < wl.iters; i++ {
				res, err := cl.Analyze(ctx, ref)
				if err != nil {
					errs <- err
					return
				}
				if res.Lambda.Text != wantLam {
					errs <- fmt.Errorf("served λ %s, want %s", res.Lambda.Text, wantLam)
					return
				}
				wi, err := cl.WhatIf(ctx, ref, whatIfBatch(wl.g, order, ws, c*wl.iters+i))
				if err != nil {
					errs <- err
					return
				}
				if len(wi.Lambdas) != 8 {
					errs <- fmt.Errorf("%d what-if answers, want 8", len(wi.Lambdas))
					return
				}
				reqs.Add(2)
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < wl.clients; c++ {
		if cerr := <-errs; cerr != nil {
			return 0, 0, 0, cerr
		}
	}
	elapsed = time.Since(start)
	requests = reqs.Load()
	return float64(requests) / elapsed.Seconds(), requests, elapsed, nil
}

// workingSet is the number of arcs the what-if traffic rotates over:
// the edit-evaluate loop of §I repeatedly probes the same bottleneck
// region, so the load models a bounded hot set rather than a uniform
// scan of all m arcs.
func workingSet(g *sg.Graph) int {
	if m := g.NumArcs(); m < 128 {
		return m
	}
	return 128
}

// whatIfBatch builds the k-th 8-query what-if batch: ×1.5 delay
// increases rotating through the hot working set. Wire arc indices
// are canonical ranks; the delays come from the arcs those ranks name
// via the pre-computed canonical order.
func whatIfBatch(g *sg.Graph, order []int, ws, k int) []client.WhatIfQuery {
	queries := make([]client.WhatIfQuery, 8)
	for j := range queries {
		arc := (k*8 + j) % ws
		queries[j] = client.WhatIfQuery{Arc: arc, Delay: g.Arc(order[arc]).Delay * 1.5}
	}
	return queries
}
