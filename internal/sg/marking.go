package sg

import "fmt"

// Marking is a mutable token configuration of a Signal Graph: the "token
// game" execution semantics of §III.A. An event is enabled when every
// live in-arc carries at least one token; firing it consumes one token
// per in-arc and produces one per out-arc. Disengageable arcs die after
// their single influence; non-repetitive events fire at most once.
//
// Marking is used by liveness and boundedness analyses and by property
// tests; the timing analysis itself works on the unfolding and never
// materialises markings.
type Marking struct {
	g      *Graph
	tokens []int  // per arc
	spent  []bool // per arc: disengageable arc already consumed
	fired  []int  // per event: occurrence count
}

// NewMarking returns the initial marking of g.
func NewMarking(g *Graph) *Marking {
	m := &Marking{
		g:      g,
		tokens: make([]int, len(g.arcs)),
		spent:  make([]bool, len(g.arcs)),
		fired:  make([]int, len(g.events)),
	}
	for i, a := range g.arcs {
		if a.Marked {
			m.tokens[i] = 1
		}
	}
	return m
}

// Graph returns the underlying graph.
func (m *Marking) Graph() *Graph { return m.g }

// Tokens returns the token count on arc i.
func (m *Marking) Tokens(i int) int { return m.tokens[i] }

// Fired returns how many times event e has fired.
func (m *Marking) Fired(e EventID) int { return m.fired[e] }

// Enabled reports whether event e may fire: e is repetitive or has not
// fired yet, and every in-arc that is still alive carries a token.
// A dead (spent) disengageable arc no longer constrains its target.
func (m *Marking) Enabled(e EventID) bool {
	if !m.g.events[e].Repetitive && m.fired[e] > 0 {
		return false
	}
	for _, ai := range m.g.in[e] {
		a := m.g.arcs[ai]
		if a.Once && m.spent[ai] {
			continue
		}
		if m.tokens[ai] == 0 {
			// An unfired disengageable arc without a token still blocks:
			// its single token has not been produced yet.
			return false
		}
	}
	return true
}

// Fire fires event e, updating the marking. It returns an error if e is
// not enabled.
func (m *Marking) Fire(e EventID) error {
	if !m.Enabled(e) {
		return fmt.Errorf("sg: event %q is not enabled", m.g.events[e].Name)
	}
	for _, ai := range m.g.in[e] {
		a := m.g.arcs[ai]
		if a.Once && m.spent[ai] {
			continue
		}
		m.tokens[ai]--
		if a.Once {
			m.spent[ai] = true
		}
	}
	for _, ai := range m.g.out[e] {
		m.tokens[ai]++
	}
	m.fired[e]++
	return nil
}

// EnabledEvents returns all currently enabled events in ID order.
func (m *Marking) EnabledEvents() []EventID {
	var out []EventID
	for i := range m.g.events {
		if m.Enabled(EventID(i)) {
			out = append(out, EventID(i))
		}
	}
	return out
}

// MaxTokens returns the largest token count currently on any arc.
func (m *Marking) MaxTokens() int {
	max := 0
	for _, t := range m.tokens {
		if t > max {
			max = t
		}
	}
	return max
}

// Clone returns an independent copy of the marking.
func (m *Marking) Clone() *Marking {
	c := &Marking{
		g:      m.g,
		tokens: append([]int(nil), m.tokens...),
		spent:  append([]bool(nil), m.spent...),
		fired:  append([]int(nil), m.fired...),
	}
	return c
}

// RunPeriods plays the token game greedily (firing every enabled event
// in rounds) until every repetitive event has fired at least `periods`
// times, or `maxSteps` firings have happened. It reports the number of
// firings performed and whether the target was reached. Used by liveness
// smoke tests: a validated graph must complete any number of periods.
func (m *Marking) RunPeriods(periods, maxSteps int) (steps int, ok bool) {
	for steps < maxSteps {
		done := true
		for _, r := range m.g.repetitive {
			if m.fired[r] < periods {
				done = false
				break
			}
		}
		if done {
			return steps, true
		}
		progressed := false
		for i := range m.g.events {
			e := EventID(i)
			// Avoid running far ahead: keep the execution near-periodic.
			if m.g.events[i].Repetitive && m.fired[e] >= periods {
				continue
			}
			if m.Enabled(e) {
				if err := m.Fire(e); err == nil {
					steps++
					progressed = true
				}
			}
		}
		if !progressed {
			return steps, false
		}
	}
	return steps, false
}
