package sg

import "fmt"

// DenseBuilder is the streamed construction path for huge graphs. The
// chaining Builder is convenient for hand-written fixtures but pays for
// a name map insert per event, an options closure per call and a full
// copy of both element slices at assemble time — at 10⁶ events those
// transients roughly double the peak footprint of construction. The
// DenseBuilder instead works in IDs: callers declare exact element
// counts up front, events and arcs stream into exactly-sized slices,
// and Build transfers ownership of those slices into the Graph without
// copying. Validation is unchanged: Build runs the same Validate as
// the chaining Builder.
//
// A DenseBuilder must not be reused after Build.
type DenseBuilder struct {
	name   string
	events []Event
	arcs   []Arc
	err    error
	built  bool
}

// NewDenseBuilder returns a builder for a graph with exactly the given
// element counts. Exceeding either count is an error (reported by
// Build); staying under is fine.
func NewDenseBuilder(name string, numEvents, numArcs int) *DenseBuilder {
	return &DenseBuilder{
		name:   name,
		events: make([]Event, 0, numEvents),
		arcs:   make([]Arc, 0, numArcs),
	}
}

// AddEvent appends a repetitive event and returns its ID. Names must be
// unique; uniqueness is checked once in Build (against the name index
// the Graph needs anyway), not per call.
func (b *DenseBuilder) AddEvent(name string) EventID {
	return b.addEvent(name, true)
}

// AddNonRepetitiveEvent appends a non-repetitive event.
func (b *DenseBuilder) AddNonRepetitiveEvent(name string) EventID {
	return b.addEvent(name, false)
}

func (b *DenseBuilder) addEvent(name string, repetitive bool) EventID {
	if b.err != nil {
		return None
	}
	if name == "" {
		b.err = fmt.Errorf("sg: empty event name in graph %q", b.name)
		return None
	}
	if len(b.events) == cap(b.events) {
		b.err = fmt.Errorf("sg: graph %q exceeds its declared event count %d", b.name, cap(b.events))
		return None
	}
	sig, dir := splitName(name)
	id := EventID(len(b.events))
	b.events = append(b.events, Event{Name: name, Signal: sig, Dir: dir, Repetitive: repetitive})
	return id
}

// AddArc appends an arc between two already-added events.
func (b *DenseBuilder) AddArc(from, to EventID, delay float64, marked bool) {
	if b.err != nil {
		return
	}
	if from < 0 || int(from) >= len(b.events) || to < 0 || int(to) >= len(b.events) {
		b.err = fmt.Errorf("sg: arc references unknown event ID in graph %q", b.name)
		return
	}
	if delay < 0 {
		b.err = fmt.Errorf("sg: negative delay %g on arc %d -> %d in graph %q", delay, from, to, b.name)
		return
	}
	if len(b.arcs) == cap(b.arcs) {
		b.err = fmt.Errorf("sg: graph %q exceeds its declared arc count %d", b.name, cap(b.arcs))
		return
	}
	b.arcs = append(b.arcs, Arc{From: from, To: to, Delay: delay, Marked: marked})
}

// AddOnceArc appends a disengageable (unmarked) arc.
func (b *DenseBuilder) AddOnceArc(from, to EventID, delay float64) {
	if b.err != nil {
		return
	}
	b.AddArc(from, to, delay, false)
	if b.err == nil {
		b.arcs[len(b.arcs)-1].Once = true
	}
}

// Err returns the first error recorded so far, if any.
func (b *DenseBuilder) Err() error { return b.err }

// Build validates the accumulated structure and returns the immutable
// Graph, taking ownership of the builder's slices (no copies).
func (b *DenseBuilder) Build() (*Graph, error) {
	g, err := b.assembleDense()
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildUnchecked assembles the Graph without semantic validation, like
// Builder.BuildUnchecked.
func (b *DenseBuilder) BuildUnchecked() (*Graph, error) {
	return b.assembleDense()
}

func (b *DenseBuilder) assembleDense() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.built {
		return nil, fmt.Errorf("sg: DenseBuilder for graph %q used after Build", b.name)
	}
	b.built = true
	g := &Graph{
		name:   b.name,
		events: b.events,
		arcs:   b.arcs,
		byName: make(map[string]EventID, len(b.events)),
	}
	b.events, b.arcs = nil, nil
	for i := range g.events {
		name := g.events[i].Name
		if _, dup := g.byName[name]; dup {
			return nil, fmt.Errorf("sg: duplicate event %q in graph %q", name, g.name)
		}
		g.byName[name] = EventID(i)
	}
	g.buildCSR()
	for i := range g.events {
		if !g.events[i].Repetitive && len(g.in[i]) == 0 {
			g.events[i].Initial = true
		}
	}
	nRep := 0
	for i := range g.events {
		if g.events[i].Repetitive {
			nRep++
		}
	}
	g.repetitive = make([]EventID, 0, nRep)
	for i := range g.events {
		if g.events[i].Repetitive {
			g.repetitive = append(g.repetitive, EventID(i))
		}
	}
	g.border = g.computeBorder()
	g.topo, g.topoErr = g.computePeriodOrder()
	return g, nil
}
