package sg_test

import (
	"math"
	"testing"

	"tsg/internal/sg"
)

func overlayFixture(t *testing.T) *sg.Graph {
	t.Helper()
	g, err := sg.NewBuilder("ov").
		Events("a+", "b+", "c+").
		Arc("a+", "b+", 1).
		Arc("b+", "c+", 2).
		Arc("c+", "a+", 3, sg.Marked()).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestOverlaySetDelay: edits land in both the arc list and the packed
// in-arc delay column, and never touch the original graph.
func TestOverlaySetDelay(t *testing.T) {
	g := overlayFixture(t)
	o := sg.NewOverlay(g)
	if err := o.SetDelay(1, 7); err != nil {
		t.Fatalf("SetDelay: %v", err)
	}
	if got := o.Graph().Arc(1).Delay; got != 7 {
		t.Errorf("overlay arc delay = %g, want 7", got)
	}
	if got := o.Delay(1); got != 7 {
		t.Errorf("Delay(1) = %g, want 7", got)
	}
	if got := o.Nominal(1); got != 2 {
		t.Errorf("Nominal(1) = %g, want 2", got)
	}
	// The CSR delay column the kernels read must agree with the arc list.
	csr := o.Graph().InCSR()
	for r, ai := range csr.Arc {
		if csr.Delay[r] != o.Graph().Arc(ai).Delay {
			t.Errorf("CSR record %d (arc %d): delay %g != arc delay %g",
				r, ai, csr.Delay[r], o.Graph().Arc(ai).Delay)
		}
	}
	// Original untouched.
	if g.Arc(1).Delay != 2 {
		t.Errorf("original graph mutated: arc 1 delay = %g", g.Arc(1).Delay)
	}
	ocsr := g.InCSR()
	for r, ai := range ocsr.Arc {
		if ai == 1 && ocsr.Delay[r] != 2 {
			t.Errorf("original CSR mutated: record %d delay = %g", r, ocsr.Delay[r])
		}
	}
	// Errors.
	if err := o.SetDelay(99, 1); err == nil {
		t.Error("out-of-range arc accepted")
	}
	if err := o.SetDelay(0, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if err := o.SetDelay(0, math.NaN()); err == nil {
		t.Error("NaN delay accepted")
	}
}

// TestOverlayDirtyTracking: DrainDirty reports each edited arc once, in
// first-edit order, and clears the set; Reset re-dirties restored arcs.
func TestOverlayDirtyTracking(t *testing.T) {
	g := overlayFixture(t)
	o := sg.NewOverlay(g)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(o.SetDelay(2, 5))
	must(o.SetDelay(0, 4))
	must(o.SetDelay(2, 6)) // re-edit: still one dirty entry
	var drained []int
	o.DrainDirty(func(arc int, delay float64) {
		drained = append(drained, arc)
		if want := o.Delay(arc); delay != want {
			t.Errorf("drained arc %d with delay %g, want %g", arc, delay, want)
		}
	})
	if len(drained) != 2 || drained[0] != 2 || drained[1] != 0 {
		t.Errorf("drained %v, want [2 0]", drained)
	}
	o.DrainDirty(func(arc int, _ float64) {
		t.Errorf("second drain reported arc %d", arc)
	})
	o.Reset()
	for i := 0; i < o.NumArcs(); i++ {
		if o.Delay(i) != o.Nominal(i) {
			t.Errorf("after Reset arc %d delay = %g, want nominal %g", i, o.Delay(i), o.Nominal(i))
		}
	}
	drained = drained[:0]
	o.DrainDirty(func(arc int, _ float64) { drained = append(drained, arc) })
	if len(drained) != 2 {
		t.Errorf("Reset drained %v, want the 2 previously edited arcs", drained)
	}
}

// TestOverlaySetDelays: bulk assignment composes from nominal delays
// and rejects negative results.
func TestOverlaySetDelays(t *testing.T) {
	g := overlayFixture(t)
	o := sg.NewOverlay(g)
	if err := o.SetDelays(func(_ int, nom float64) float64 { return 2 * nom }); err != nil {
		t.Fatalf("SetDelays: %v", err)
	}
	// A second bulk call still scales the *nominal* delays.
	if err := o.SetDelays(func(_ int, nom float64) float64 { return 3 * nom }); err != nil {
		t.Fatalf("SetDelays: %v", err)
	}
	for i := 0; i < o.NumArcs(); i++ {
		if o.Delay(i) != 3*o.Nominal(i) {
			t.Errorf("arc %d delay = %g, want %g", i, o.Delay(i), 3*o.Nominal(i))
		}
	}
	if err := o.SetDelays(func(int, float64) float64 { return -1 }); err == nil {
		t.Error("negative bulk delays accepted")
	}
}
