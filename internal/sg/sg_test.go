package sg_test

import (
	"errors"
	"strings"
	"testing"

	"tsg/internal/sg"
)

// buildOscillator constructs the Timed Signal Graph of Fig. 1b / Fig. 2c
// of the paper: the C-element oscillator. Delays were cross-checked
// against the timing-simulation table of Example 3.
func buildOscillator(t testing.TB) *sg.Graph {
	t.Helper()
	g, err := oscillatorBuilder().Build()
	if err != nil {
		t.Fatalf("oscillator build: %v", err)
	}
	return g
}

func oscillatorBuilder() *sg.Builder {
	return sg.NewBuilder("oscillator").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Events("a+", "a-", "b+", "b-", "c+", "c-").
		Arc("e-", "a+", 2, sg.Once()).
		Arc("e-", "f-", 3).
		Arc("f-", "b+", 1, sg.Once()).
		Arc("a+", "c+", 3).
		Arc("b+", "c+", 2).
		Arc("c+", "a-", 2).
		Arc("c+", "b-", 1).
		Arc("a-", "c-", 3).
		Arc("b-", "c-", 2).
		Arc("c-", "a+", 2, sg.Marked()).
		Arc("c-", "b+", 1, sg.Marked())
}

func TestOscillatorStructure(t *testing.T) {
	g := buildOscillator(t)
	if got, want := g.NumEvents(), 8; got != want {
		t.Errorf("NumEvents = %d, want %d", got, want)
	}
	if got, want := g.NumArcs(), 11; got != want {
		t.Errorf("NumArcs = %d, want %d", got, want)
	}
	if got, want := g.TotalMarking(), 2; got != want {
		t.Errorf("TotalMarking = %d, want %d", got, want)
	}
	if got := g.EventNames(g.BorderEvents()); strings.Join(got, ",") != "a+,b+" {
		t.Errorf("border set = %v, want [a+ b+] (Example 7)", got)
	}
	init := g.EventNames(g.InitialEvents())
	if len(init) != 1 || init[0] != "e-" {
		t.Errorf("initial events = %v, want [e-]", init)
	}
	if got, want := len(g.RepetitiveEvents()), 6; got != want {
		t.Errorf("repetitive events = %d, want %d", got, want)
	}
	ev := g.Event(g.MustEvent("a+"))
	if ev.Signal != "a" || ev.Dir != sg.DirRise {
		t.Errorf("a+ parsed as signal=%q dir=%v", ev.Signal, ev.Dir)
	}
	ev = g.Event(g.MustEvent("c-"))
	if ev.Signal != "c" || ev.Dir != sg.DirFall {
		t.Errorf("c- parsed as signal=%q dir=%v", ev.Signal, ev.Dir)
	}
}

func TestEventByName(t *testing.T) {
	g := buildOscillator(t)
	if id, ok := g.EventByName("a+"); !ok || g.Event(id).Name != "a+" {
		t.Errorf("EventByName(a+) = %v, %v", id, ok)
	}
	if _, ok := g.EventByName("zz+"); ok {
		t.Error("EventByName(zz+) unexpectedly found")
	}
}

func TestMustEventPanics(t *testing.T) {
	g := buildOscillator(t)
	defer func() {
		if recover() == nil {
			t.Error("MustEvent on unknown name did not panic")
		}
	}()
	g.MustEvent("nope")
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *sg.Builder
		want string
	}{
		{"duplicate event", sg.NewBuilder("g").Events("a+", "a+"), "duplicate"},
		{"empty name", sg.NewBuilder("g").Event(""), "empty event name"},
		{"unknown from", sg.NewBuilder("g").Events("a+").Arc("x", "a+", 1), "unknown event"},
		{"unknown to", sg.NewBuilder("g").Events("a+").Arc("a+", "x", 1), "unknown event"},
		{"negative delay", sg.NewBuilder("g").Events("a+", "b+").Arc("a+", "b+", -1), "negative delay"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.b.Build(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Build() error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestValidationKinds(t *testing.T) {
	cases := []struct {
		name string
		b    *sg.Builder
		kind sg.ValidationKind
	}{
		{
			"empty graph",
			sg.NewBuilder("g"),
			sg.ErrEmpty,
		},
		{
			"repetitive source",
			sg.NewBuilder("g").Events("a+"),
			sg.ErrRepetitiveSource,
		},
		{
			"unmarked cycle",
			sg.NewBuilder("g").Events("a+", "b+").
				Arc("a+", "b+", 1).Arc("b+", "a+", 1),
			sg.ErrUnmarkedCycle,
		},
		{
			"once from repetitive",
			sg.NewBuilder("g").Events("a+", "b+").
				Arc("a+", "b+", 1, sg.Once()).Arc("b+", "a+", 1, sg.Marked()),
			sg.ErrOnceFromRepetitive,
		},
		{
			"plain arc from non-repetitive to repetitive",
			sg.NewBuilder("g").Event("e-", sg.NonRepetitive()).Events("a+").
				Arc("e-", "a+", 1).Arc("a+", "a+", 1, sg.Marked()),
			sg.ErrNotOnceFromNonRepetitive,
		},
		{
			"repetitive to non-repetitive",
			sg.NewBuilder("g").Events("a+").Event("f-", sg.NonRepetitive()).
				Arc("a+", "a+", 1, sg.Marked()).Arc("a+", "f-", 1),
			sg.ErrRepToNonRep,
		},
		{
			"marked and once",
			sg.NewBuilder("g").Event("e-", sg.NonRepetitive()).Events("a+").
				Arc("e-", "a+", 1, sg.Marked(), sg.Once()).
				Arc("a+", "a+", 1, sg.Marked()),
			sg.ErrMarkedOnce,
		},
		{
			"core not strongly connected",
			sg.NewBuilder("g").Events("a+", "b+").
				Arc("a+", "a+", 1, sg.Marked()).
				Arc("b+", "b+", 1, sg.Marked()),
			sg.ErrCoreNotStronglyConnected,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.b.Build()
			var verr *sg.ValidationError
			if !errors.As(err, &verr) {
				t.Fatalf("Build() error = %v, want *ValidationError", err)
			}
			if verr.Kind != tc.kind {
				t.Errorf("validation kind = %v, want %v", verr.Kind, tc.kind)
			}
			if verr.Error() == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestBuildUncheckedSkipsSemantics(t *testing.T) {
	// An unmarked two-cycle fails Build but not BuildUnchecked.
	b := sg.NewBuilder("g").Events("a+", "b+").
		Arc("a+", "b+", 1).Arc("b+", "a+", 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build() succeeded on unmarked cycle")
	}
	b2 := sg.NewBuilder("g").Events("a+", "b+").
		Arc("a+", "b+", 1).Arc("b+", "a+", 1)
	g, err := b2.BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked() error: %v", err)
	}
	if g.NumArcs() != 2 {
		t.Errorf("NumArcs = %d, want 2", g.NumArcs())
	}
}

func TestCutSets(t *testing.T) {
	g := buildOscillator(t)
	ids := func(names ...string) []sg.EventID {
		out := make([]sg.EventID, len(names))
		for i, n := range names {
			out[i] = g.MustEvent(n)
		}
		return out
	}
	// Example 7 of the paper.
	for _, set := range [][]string{{"a+", "b+"}, {"c+"}, {"c-"}, {"a-", "b-"}} {
		if !g.IsCutSet(ids(set...)) {
			t.Errorf("IsCutSet(%v) = false, want true (Example 7)", set)
		}
	}
	for _, set := range [][]string{{"a+"}, {"b-"}, {}} {
		if g.IsCutSet(ids(set...)) {
			t.Errorf("IsCutSet(%v) = true, want false", set)
		}
	}
	min, err := g.MinimumCutSet()
	if err != nil {
		t.Fatalf("MinimumCutSet: %v", err)
	}
	if len(min) != 1 {
		t.Fatalf("minimum cut set = %v, want size 1", g.EventNames(min))
	}
	all, err := g.AllMinimumCutSets(0)
	if err != nil {
		t.Fatalf("AllMinimumCutSets: %v", err)
	}
	var names []string
	for _, set := range all {
		names = append(names, strings.Join(g.EventNames(set), "+"))
	}
	got := strings.Join(names, " ")
	if !strings.Contains(got, "c+") || !strings.Contains(got, "c-") || len(all) != 2 {
		t.Errorf("minimum cut sets = %v, want exactly {c+} and {c-} (Example 7)", names)
	}
	if g.MinimumCutSetSize() != 1 {
		t.Errorf("MinimumCutSetSize = %d, want 1", g.MinimumCutSetSize())
	}
}

func TestMarkingTokenGame(t *testing.T) {
	g := buildOscillator(t)
	m := sg.NewMarking(g)

	// Initially only e- is enabled: a+ and b+ wait on unfired
	// disengageable arcs even though their marked in-arcs carry tokens.
	enabled := g.EventNames(m.EnabledEvents())
	if strings.Join(enabled, ",") != "e-" {
		t.Fatalf("initially enabled = %v, want [e-]", enabled)
	}
	if err := m.Fire(g.MustEvent("e-")); err != nil {
		t.Fatalf("Fire(e-): %v", err)
	}
	// Now a+ (marked arc + token from e-) and f- are enabled.
	enabled = g.EventNames(m.EnabledEvents())
	if strings.Join(enabled, ",") != "f-,a+" {
		t.Fatalf("after e-: enabled = %v, want [f- a+]", enabled)
	}
	// e- must not fire twice.
	if err := m.Fire(g.MustEvent("e-")); err == nil {
		t.Error("Fire(e-) twice succeeded, want error")
	}
	if err := m.Fire(g.MustEvent("c-")); err == nil {
		t.Error("Fire(c-) while disabled succeeded, want error")
	}

	// The full token game must complete several periods.
	m2 := sg.NewMarking(g)
	if _, ok := m2.RunPeriods(5, 10_000); !ok {
		t.Error("RunPeriods(5) did not complete on a live graph")
	}
	for _, r := range g.RepetitiveEvents() {
		if m2.Fired(r) < 5 {
			t.Errorf("event %s fired %d times, want >= 5", g.Event(r).Name, m2.Fired(r))
		}
	}
	// Initially-safe oscillator stays safe during execution.
	if m2.MaxTokens() > 1 {
		t.Errorf("MaxTokens = %d after execution, want <= 1", m2.MaxTokens())
	}
}

func TestMarkingClone(t *testing.T) {
	g := buildOscillator(t)
	m := sg.NewMarking(g)
	c := m.Clone()
	if err := m.Fire(g.MustEvent("e-")); err != nil {
		t.Fatalf("Fire: %v", err)
	}
	if c.Fired(g.MustEvent("e-")) != 0 {
		t.Error("Clone shares state with original")
	}
}

func TestWriteDot(t *testing.T) {
	g := buildOscillator(t)
	var sb strings.Builder
	if err := g.WriteDot(&sb); err != nil {
		t.Fatalf("WriteDot: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "● 2", "style=dashed", "label=\"a+\""} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestGraphString(t *testing.T) {
	g := buildOscillator(t)
	s := g.String()
	for _, want := range []string{"oscillator", "8 events", "11 arcs", "2 tokens"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTotalDelay(t *testing.T) {
	g := buildOscillator(t)
	if got, want := g.TotalDelay(), 22.0; got != want {
		t.Errorf("TotalDelay = %g, want %g", got, want)
	}
}
