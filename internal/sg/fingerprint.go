package sg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
	"strings"
)

// Fingerprint returns a content hash of the graph: a hex-encoded
// SHA-256 over the canonical form of its events (name, repetitive
// flag) and arcs (endpoint names, delay, marking, disengageability).
// The fingerprint is invariant under event and arc declaration order —
// two builders adding the same events and arcs in any order produce
// the same fingerprint — and changes whenever any event name, arc,
// delay, marking or once flag differs. The graph's display name is
// deliberately excluded: structurally identical graphs fingerprint
// identically, which is what lets a serving cache share one compiled
// engine across clients that uploaded the same graph under different
// names.
//
// Parallel arcs are preserved as a multiset, and delays are hashed by
// their exact float64 bits, so graphs differing by any representable
// delay perturbation get distinct fingerprints.
func Fingerprint(g *Graph) string {
	h := sha256.New()
	var buf [8]byte
	writeUint := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	// Length-prefixed strings keep the encoding unambiguous (no pair of
	// distinct canonical forms shares a byte stream).
	writeStr := func(s string) {
		writeUint(uint64(len(s)))
		h.Write([]byte(s))
	}

	events := make([]Event, len(g.events))
	copy(events, g.events)
	sort.Slice(events, func(i, j int) bool { return events[i].Name < events[j].Name })
	writeUint(uint64(len(events)))
	for _, ev := range events {
		writeStr(ev.Name)
		if ev.Repetitive {
			writeUint(1)
		} else {
			writeUint(0)
		}
	}

	order := CanonicalArcOrder(g)
	writeUint(uint64(len(order)))
	for _, i := range order {
		a := g.arcs[i]
		writeStr(g.events[a.From].Name)
		writeStr(g.events[a.To].Name)
		writeUint(math.Float64bits(a.Delay))
		flags := uint64(0)
		if a.Marked {
			flags |= 1
		}
		if a.Once {
			flags |= 2
		}
		writeUint(flags)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CanonicalArcOrder returns the permutation placing the graph's arcs
// in the canonical (fingerprint) order: sorted by endpoint names, then
// delay bits, marking and once flag, with ties between fully identical
// arcs broken by declaration order. order[k] is the declaration index
// of the arc at canonical rank k.
//
// The canonical rank is what makes arc indices portable between
// parties that hold structurally identical graphs in different
// declaration orders: both sides compute the same ranking
// independently, so a rank names the same arc everywhere. (Fully
// identical parallel arcs are mutually interchangeable — same
// endpoints, delay and flags — so their tie-break is semantically
// irrelevant.) The serving protocol (internal/serve) transmits arc
// indices in this space.
func CanonicalArcOrder(g *Graph) []int {
	order := make([]int, len(g.arcs))
	for i := range order {
		order[i] = i
	}
	less := func(x, y Arc) int {
		if c := strings.Compare(g.events[x.From].Name, g.events[y.From].Name); c != 0 {
			return c
		}
		if c := strings.Compare(g.events[x.To].Name, g.events[y.To].Name); c != 0 {
			return c
		}
		bx, by := math.Float64bits(x.Delay), math.Float64bits(y.Delay)
		switch {
		case bx < by:
			return -1
		case bx > by:
			return 1
		}
		if x.Marked != y.Marked {
			if !x.Marked {
				return -1
			}
			return 1
		}
		if x.Once != y.Once {
			if !x.Once {
				return -1
			}
			return 1
		}
		return 0
	}
	sort.SliceStable(order, func(i, j int) bool {
		return less(g.arcs[order[i]], g.arcs[order[j]]) < 0
	})
	return order
}
