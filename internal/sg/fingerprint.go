package sg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
	"strings"
)

// Fingerprint returns a content hash of the graph: a hex-encoded
// SHA-256 over the canonical form of its events (name, repetitive
// flag) and arcs (endpoint names, delay, marking, disengageability).
// The fingerprint is invariant under event and arc declaration order —
// two builders adding the same events and arcs in any order produce
// the same fingerprint — and changes whenever any event name, arc,
// delay, marking or once flag differs. The graph's display name is
// deliberately excluded: structurally identical graphs fingerprint
// identically, which is what lets a serving cache share one compiled
// engine across clients that uploaded the same graph under different
// names.
//
// Parallel arcs are preserved as a multiset, and delays are hashed by
// their exact float64 bits, so graphs differing by any representable
// delay perturbation get distinct fingerprints.
//
// The hash streams through index permutations and one reused byte
// buffer: allocations are a small constant regardless of graph size
// (the serving cache fingerprints every upload, and the SCALE families
// reach 10^6 events), and the byte stream — hence the hash — is
// identical to what the original copy-and-sort implementation
// produced.
func Fingerprint(g *Graph) string {
	h := sha256.New()
	var nbuf [8]byte
	writeUint := func(v uint64) {
		binary.LittleEndian.PutUint64(nbuf[:], v)
		h.Write(nbuf[:])
	}
	// Length-prefixed strings keep the encoding unambiguous (no pair of
	// distinct canonical forms shares a byte stream). The string bytes
	// pass through a reused scratch buffer: a direct []byte(s)
	// conversion would allocate per call.
	sbuf := make([]byte, 0, 64)
	writeStr := func(s string) {
		writeUint(uint64(len(s)))
		sbuf = append(sbuf[:0], s...)
		h.Write(sbuf)
	}

	// Events in name order, via an index permutation — the Event structs
	// themselves are never copied.
	evOrder := make([]int32, len(g.events))
	for i := range evOrder {
		evOrder[i] = int32(i)
	}
	sort.Sort(&eventNameSorter{g: g, order: evOrder})
	writeUint(uint64(len(evOrder)))
	for _, i := range evOrder {
		ev := &g.events[i]
		writeStr(ev.Name)
		if ev.Repetitive {
			writeUint(1)
		} else {
			writeUint(0)
		}
	}

	order := CanonicalArcOrder(g)
	writeUint(uint64(len(order)))
	for _, i := range order {
		a := &g.arcs[i]
		writeStr(g.events[a.From].Name)
		writeStr(g.events[a.To].Name)
		writeUint(math.Float64bits(a.Delay))
		flags := uint64(0)
		if a.Marked {
			flags |= 1
		}
		if a.Once {
			flags |= 2
		}
		writeUint(flags)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// eventNameSorter sorts an event index permutation by event name.
// A concrete sort.Interface implementation keeps the hot path free of
// the per-comparison closure calls of sort.Slice.
type eventNameSorter struct {
	g     *Graph
	order []int32
}

func (s *eventNameSorter) Len() int { return len(s.order) }
func (s *eventNameSorter) Less(i, j int) bool {
	return s.g.events[s.order[i]].Name < s.g.events[s.order[j]].Name
}
func (s *eventNameSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }

// CanonicalArcOrder returns the permutation placing the graph's arcs
// in the canonical (fingerprint) order: sorted by endpoint names, then
// delay bits, marking and once flag, with ties between fully identical
// arcs broken by declaration order. order[k] is the declaration index
// of the arc at canonical rank k.
//
// The canonical rank is what makes arc indices portable between
// parties that hold structurally identical graphs in different
// declaration orders: both sides compute the same ranking
// independently, so a rank names the same arc everywhere. (Fully
// identical parallel arcs are mutually interchangeable — same
// endpoints, delay and flags — so their tie-break is semantically
// irrelevant.) The serving protocol (internal/serve) transmits arc
// indices in this space.
func CanonicalArcOrder(g *Graph) []int {
	order := make([]int, len(g.arcs))
	for i := range order {
		order[i] = i
	}
	sort.Stable(&arcCanonSorter{g: g, order: order})
	return order
}

// arcCanonSorter sorts an arc index permutation into canonical order
// (see CanonicalArcOrder). Stable sorting preserves declaration order
// between fully identical arcs.
type arcCanonSorter struct {
	g     *Graph
	order []int
}

func (s *arcCanonSorter) Len() int { return len(s.order) }
func (s *arcCanonSorter) Less(i, j int) bool {
	return arcCanonLess(s.g, &s.g.arcs[s.order[i]], &s.g.arcs[s.order[j]]) < 0
}
func (s *arcCanonSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }

// arcCanonLess is the canonical arc comparison.
func arcCanonLess(g *Graph, x, y *Arc) int {
	if c := strings.Compare(g.events[x.From].Name, g.events[y.From].Name); c != 0 {
		return c
	}
	if c := strings.Compare(g.events[x.To].Name, g.events[y.To].Name); c != 0 {
		return c
	}
	bx, by := math.Float64bits(x.Delay), math.Float64bits(y.Delay)
	switch {
	case bx < by:
		return -1
	case bx > by:
		return 1
	}
	if x.Marked != y.Marked {
		if !x.Marked {
			return -1
		}
		return 1
	}
	if x.Once != y.Once {
		if !x.Once {
			return -1
		}
		return 1
	}
	return 0
}
