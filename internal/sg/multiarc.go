package sg

import "fmt"

// MultiArc adds a connection carrying `tokens` initial tokens between
// two events. Signal Graphs in this package are initially-safe (§III.A:
// the marking function is boolean), and the paper notes that "any
// initially-non-safe graph can be transformed into an equivalent
// initially-safe one": this method performs that transformation inline,
// splitting the connection into a chain of marked unit arcs through
// tokens-1 dummy repetitive events named "from>to@k".
//
// The delay is carried by the first segment; the dummy segments have
// delay zero, so path lengths — and therefore every cycle's length and
// effective length — are preserved, while the chain contributes exactly
// `tokens` to the occurrence period of any cycle through it.
func (b *Builder) MultiArc(from, to string, delay float64, tokens int, opts ...ArcOption) *Builder {
	if b.err != nil {
		return b
	}
	if tokens < 0 {
		b.err = fmt.Errorf("sg: negative token count %d on arc %s -> %s in graph %q",
			tokens, from, to, b.name)
		return b
	}
	switch tokens {
	case 0:
		return b.Arc(from, to, delay, opts...)
	case 1:
		return b.Arc(from, to, delay, append(opts, Marked())...)
	}
	prev := from
	first := delay
	for k := 1; k < tokens; k++ {
		dummy := fmt.Sprintf("%s>%s@%d", from, to, k)
		b.Event(dummy)
		b.Arc(prev, dummy, first, Marked())
		first = 0
		prev = dummy
	}
	return b.Arc(prev, to, 0, append(opts, Marked())...)
}
