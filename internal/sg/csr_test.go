package sg_test

import (
	"testing"

	"tsg/internal/sg"
)

// buildDiamond returns a small graph with multi-in-degree events, marked
// and unmarked arcs, and a non-repetitive source.
func buildDiamond(t *testing.T) *sg.Graph {
	t.Helper()
	g, err := sg.NewBuilder("diamond").
		Event("s-", sg.NonRepetitive()).
		Events("a+", "b+", "c+").
		Arc("s-", "a+", 2, sg.Once()).
		Arc("a+", "b+", 3).
		Arc("a+", "c+", 1).
		Arc("b+", "c+", 4).
		Arc("c+", "a+", 5, sg.Marked()).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestInCSRMatchesAdjacency checks that the compiled in-arc records
// agree with the classic adjacency view, record by record and in the
// same (arc-index) order.
func TestInCSRMatchesAdjacency(t *testing.T) {
	g := buildDiamond(t)
	csr := g.InCSR()
	if len(csr.Off) != g.NumEvents()+1 {
		t.Fatalf("Off has %d entries, want %d", len(csr.Off), g.NumEvents()+1)
	}
	if int(csr.Off[g.NumEvents()]) != g.NumArcs() {
		t.Fatalf("Off[n] = %d, want %d", csr.Off[g.NumEvents()], g.NumArcs())
	}
	for e := 0; e < g.NumEvents(); e++ {
		id := sg.EventID(e)
		in := g.InArcs(id)
		lo, hi := csr.Off[e], csr.Off[e+1]
		if int(hi-lo) != len(in) {
			t.Fatalf("event %s: %d CSR records, %d in-arcs", g.Event(id).Name, hi-lo, len(in))
		}
		for k, ai := range in {
			r := int(lo) + k
			a := g.Arc(ai)
			if int(csr.Arc[r]) != ai || csr.Src[r] != a.From || csr.Delay[r] != a.Delay {
				t.Errorf("event %s record %d: got (arc %d, src %d, τ %g), want (arc %d, src %d, τ %g)",
					g.Event(id).Name, k, csr.Arc[r], csr.Src[r], csr.Delay[r], ai, a.From, a.Delay)
			}
			wantMark := int32(0)
			if a.Marked {
				wantMark = 1
			}
			if csr.Mark[r] != wantMark {
				t.Errorf("event %s record %d: mark %d, want %d", g.Event(id).Name, k, csr.Mark[r], wantMark)
			}
		}
	}
}

// TestPeriodOrderCached checks the Build-time topological order: every
// event exactly once, sources before targets along unmarked arcs, and
// the same slice returned on repeated calls (no recomputation).
func TestPeriodOrderCached(t *testing.T) {
	g := buildDiamond(t)
	order, err := g.PeriodOrder()
	if err != nil {
		t.Fatalf("PeriodOrder: %v", err)
	}
	if len(order) != g.NumEvents() {
		t.Fatalf("order has %d events, want %d", len(order), g.NumEvents())
	}
	pos := make(map[sg.EventID]int, len(order))
	for i, e := range order {
		if _, dup := pos[e]; dup {
			t.Fatalf("event %s appears twice", g.Event(e).Name)
		}
		pos[e] = i
	}
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if !a.Marked && pos[a.From] >= pos[a.To] {
			t.Errorf("unmarked arc %s -> %s violates the order",
				g.Event(a.From).Name, g.Event(a.To).Name)
		}
	}
	again, err := g.PeriodOrder()
	if err != nil {
		t.Fatalf("PeriodOrder (2nd): %v", err)
	}
	if &again[0] != &order[0] {
		t.Error("PeriodOrder recomputed instead of returning the cached slice")
	}
}

// TestModifiedGraphCSRDelays checks that the copy-on-write delay
// modifiers refresh the CSR delay column (the compiled kernels read
// delays from the CSR, not from the Arc structs).
func TestModifiedGraphCSRDelays(t *testing.T) {
	g := buildDiamond(t)
	ng, err := g.WithArcDelay(1, 30) // a+ -> b+
	if err != nil {
		t.Fatalf("WithArcDelay: %v", err)
	}
	csr := ng.InCSR()
	found := false
	for r := range csr.Arc {
		if csr.Arc[r] == 1 {
			found = true
			if csr.Delay[r] != 30 {
				t.Errorf("CSR delay of modified arc = %g, want 30", csr.Delay[r])
			}
		}
	}
	if !found {
		t.Fatal("modified arc not present in CSR")
	}
	// The original graph is untouched.
	if d := g.InCSR().Delay[mustRecord(t, g, 1)]; d != 3 {
		t.Errorf("original CSR delay changed to %g", d)
	}
	scaled, err := g.Scaled(2)
	if err != nil {
		t.Fatalf("Scaled: %v", err)
	}
	sc := scaled.InCSR()
	for r := range sc.Delay {
		want := g.Arc(int(sc.Arc[r])).Delay * 2
		if sc.Delay[r] != want {
			t.Errorf("scaled CSR record %d delay = %g, want %g", r, sc.Delay[r], want)
		}
	}
}

// mustRecord returns the CSR record index holding the given arc.
func mustRecord(t *testing.T, g *sg.Graph, arc int) int {
	t.Helper()
	csr := g.InCSR()
	for r := range csr.Arc {
		if int(csr.Arc[r]) == arc {
			return r
		}
	}
	t.Fatalf("arc %d not in CSR", arc)
	return -1
}
