package sg_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsg/internal/cycles"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// TestCycleTokenInvariant checks the classical marked-graph invariant
// (Commoner et al., the basis of §V of the paper): the total token count
// on every cycle is preserved by firing.
func TestCycleTokenInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(n), MaxDelay: 5,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		all, err := cycles.Enumerate(g, 1<<14)
		if err != nil {
			t.Fatalf("Enumerate: %v", err)
		}
		before := make([]int, len(all))
		count := func(m *sg.Marking, c *cycles.Cycle) int {
			sum := 0
			for _, ai := range c.Arcs {
				sum += m.Tokens(ai)
			}
			return sum
		}
		m := sg.NewMarking(g)
		for i := range all {
			before[i] = count(m, &all[i])
		}
		// Random play of the token game.
		for step := 0; step < 5*n; step++ {
			enabled := m.EnabledEvents()
			if len(enabled) == 0 {
				break
			}
			if err := m.Fire(enabled[rng.Intn(len(enabled))]); err != nil {
				t.Fatalf("Fire: %v", err)
			}
		}
		for i := range all {
			if got := count(m, &all[i]); got != before[i] {
				t.Logf("seed %d: cycle %v token count %d -> %d",
					seed, g.EventNames(all[i].Events), before[i], got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestBorderIsCutSet checks §VI.A's claim on random live graphs: the
// border set is always a cut set.
func TestBorderIsCutSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(3 * n), MaxDelay: 5,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		return g.IsCutSet(g.BorderEvents())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMinimumCutSetIsMinimalCutSet: every exact minimum cut set must be
// a cut set, and no single event short of it may be one when its size
// exceeds 1... verified by trying all single events.
func TestMinimumCutSetProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(n), MaxDelay: 5,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		min, err := g.MinimumCutSet()
		if err != nil {
			t.Fatalf("MinimumCutSet: %v", err)
		}
		if !g.IsCutSet(min) {
			t.Logf("seed %d: minimum cut set %v is not a cut set", seed, g.EventNames(min))
			return false
		}
		if len(min) > len(g.BorderEvents()) {
			t.Logf("seed %d: minimum cut set larger than border set", seed)
			return false
		}
		if len(min) > 1 {
			// No single event may be a cut set.
			for _, e := range g.RepetitiveEvents() {
				if g.IsCutSet([]sg.EventID{e}) {
					t.Logf("seed %d: single-event cut set %s beats 'minimum' %v",
						seed, g.Event(e).Name, g.EventNames(min))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
