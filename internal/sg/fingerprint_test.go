package sg

import (
	"math/rand"
	"testing"
)

// fpFixture builds a small graph, permuting the declaration order of
// its events and arcs according to the permutations pe and pa.
func fpFixture(t *testing.T, pe, pa []int) *Graph {
	t.Helper()
	events := []struct {
		name string
		opts []EventOption
	}{
		{"a+", nil}, {"b+", nil}, {"c+", nil}, {"init", []EventOption{NonRepetitive()}},
	}
	type arcDecl struct {
		from, to string
		delay    float64
		opts     []ArcOption
	}
	arcs := []arcDecl{
		{"a+", "b+", 1, nil},
		{"b+", "c+", 2.5, nil},
		{"c+", "a+", 3, []ArcOption{Marked()}},
		{"init", "a+", 0.5, []ArcOption{Once()}},
		// A parallel arc: multiset semantics must be preserved.
		{"a+", "b+", 1, nil},
	}
	b := NewBuilder("fixture")
	for _, i := range pe {
		b.Event(events[i].name, events[i].opts...)
	}
	for _, i := range pa {
		a := arcs[i]
		b.Arc(a.from, a.to, a.delay, a.opts...)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestFingerprintDeclarationOrderInvariant(t *testing.T) {
	base := fpFixture(t, []int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4})
	want := Fingerprint(base)
	if len(want) != 64 {
		t.Fatalf("fingerprint %q is not a 64-hex-digit SHA-256", want)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		pe := rng.Perm(4)
		pa := rng.Perm(5)
		g := fpFixture(t, pe, pa)
		if got := Fingerprint(g); got != want {
			t.Fatalf("fingerprint changed under declaration order pe=%v pa=%v: %s != %s", pe, pa, got, want)
		}
	}
}

func TestFingerprintIgnoresGraphName(t *testing.T) {
	a := fpFixture(t, []int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4})
	b, err := NewBuilder("other-name").
		Events("a+", "b+", "c+").
		Event("init", NonRepetitive()).
		Arc("a+", "b+", 1).
		Arc("b+", "c+", 2.5).
		Arc("c+", "a+", 3, Marked()).
		Arc("init", "a+", 0.5, Once()).
		Arc("a+", "b+", 1).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint depends on the graph display name")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpFixture(t, []int{0, 1, 2, 3}, []int{0, 1, 2, 3, 4})
	fp := Fingerprint(base)

	build := func(mod func(b *Builder)) string {
		b := NewBuilder("fixture").
			Events("a+", "b+", "c+").
			Event("init", NonRepetitive())
		mod(b)
		g, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return Fingerprint(g)
	}
	full := func(b *Builder, skip int, delay3 float64, markArc int) {
		type d struct {
			from, to string
			delay    float64
			opts     []ArcOption
		}
		decls := []d{
			{"a+", "b+", 1, nil},
			{"b+", "c+", 2.5, nil},
			{"c+", "a+", 3, nil},
			{"init", "a+", delay3, []ArcOption{Once()}},
			{"a+", "b+", 1, nil},
		}
		decls[markArc].opts = append(decls[markArc].opts, Marked())
		for i, a := range decls {
			if i == skip {
				continue
			}
			b.Arc(a.from, a.to, a.delay, a.opts...)
		}
	}

	// Changing a delay, moving the marking, or dropping the parallel
	// duplicate must all change the fingerprint.
	if got := build(func(b *Builder) { full(b, -1, 0.75, 2) }); got == fp {
		t.Error("delay change did not change the fingerprint")
	}
	if got := build(func(b *Builder) { full(b, -1, 0.5, 1) }); got == fp {
		t.Error("moving the marking did not change the fingerprint")
	}
	if got := build(func(b *Builder) { full(b, 4, 0.5, 2) }); got == fp {
		t.Error("dropping a parallel arc did not change the fingerprint")
	}
}
