package sg

import (
	"strconv"
	"testing"
)

// TestDenseBuilderMatchesBuilder builds the same small graph through
// both construction paths and checks every derived structure agrees.
func TestDenseBuilderMatchesBuilder(t *testing.T) {
	chain := NewBuilder("twin").
		Events("a+", "a-", "b+", "b-").
		Arc("a+", "b+", 2).
		Arc("b+", "a-", 1).
		Arc("a-", "b-", 2).
		Arc("b-", "a+", 1, Marked()).
		Arc("a+", "a-", 3).
		Arc("b+", "b-", 3)
	want, err := chain.Build()
	if err != nil {
		t.Fatal(err)
	}

	d := NewDenseBuilder("twin", 4, 6)
	ap := d.AddEvent("a+")
	am := d.AddEvent("a-")
	bp := d.AddEvent("b+")
	bm := d.AddEvent("b-")
	d.AddArc(ap, bp, 2, false)
	d.AddArc(bp, am, 1, false)
	d.AddArc(am, bm, 2, false)
	d.AddArc(bm, ap, 1, true)
	d.AddArc(ap, am, 3, false)
	d.AddArc(bp, bm, 3, false)
	got, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}

	if Fingerprint(got) != Fingerprint(want) {
		t.Fatalf("dense build fingerprint %s != chaining build %s", Fingerprint(got), Fingerprint(want))
	}
	if got.NumEvents() != want.NumEvents() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("size mismatch: %v vs %v", got, want)
	}
	gw, _ := want.PeriodOrder()
	gg, _ := got.PeriodOrder()
	for i := range gw {
		if gw[i] != gg[i] {
			t.Fatalf("period order differs at %d: %v vs %v", i, gg, gw)
		}
	}
	if len(got.BorderEvents()) != len(want.BorderEvents()) {
		t.Fatalf("border differs: %v vs %v", got.BorderEvents(), want.BorderEvents())
	}
	if id, ok := got.EventByName("b-"); !ok || id != bm {
		t.Fatalf("EventByName(b-) = %d,%v", id, ok)
	}
}

func TestDenseBuilderErrors(t *testing.T) {
	d := NewDenseBuilder("over", 1, 1)
	d.AddEvent("a+")
	d.AddEvent("b+") // exceeds declared count
	if _, err := d.Build(); err == nil {
		t.Fatal("expected event-overflow error")
	}

	d = NewDenseBuilder("dup", 2, 1)
	a := d.AddEvent("x")
	d.AddEvent("x")
	d.AddArc(a, a, 1, true)
	if _, err := d.Build(); err == nil {
		t.Fatal("expected duplicate-name error")
	}

	d = NewDenseBuilder("neg", 2, 1)
	a = d.AddEvent("x")
	b := d.AddEvent("y")
	d.AddArc(a, b, -1, false)
	if _, err := d.Build(); err == nil {
		t.Fatal("expected negative-delay error")
	}

	d = NewDenseBuilder("range", 1, 1)
	a = d.AddEvent("x")
	d.AddArc(a, EventID(7), 1, false)
	if _, err := d.Build(); err == nil {
		t.Fatal("expected out-of-range error")
	}

	d = NewDenseBuilder("reuse", 1, 1)
	a = d.AddEvent("x")
	d.AddArc(a, a, 1, true)
	if _, err := d.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Build(); err == nil {
		t.Fatal("expected reuse-after-Build error")
	}
}

// TestDenseBuilderAllocations pins the construction cost: element
// streaming must not reallocate the declared slices.
func TestDenseBuilderAllocations(t *testing.T) {
	const n = 2000
	d := NewDenseBuilder("ring", n, n)
	ids := make([]EventID, n)
	for i := 0; i < n; i++ {
		ids[i] = d.AddEvent("e" + strconv.Itoa(i))
	}
	allocs := testing.AllocsPerRun(1, func() {
		for i := 0; i < n; i++ {
			d.AddArc(ids[i], ids[(i+1)%n], 1, i == 0)
		}
		d.arcs = d.arcs[:0]
	})
	if allocs > 0 {
		t.Fatalf("AddArc allocated %.0f times per %d arcs, want 0", allocs, n)
	}
	for i := 0; i < n; i++ {
		d.AddArc(ids[i], ids[(i+1)%n], 1, i == 0)
	}
	g, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.BorderEvents()); got != 1 {
		t.Fatalf("border = %d events, want 1", got)
	}
}
