package sg

import (
	"fmt"
	"strings"
)

// ValidationKind classifies the structural problems Validate can report.
type ValidationKind int

// The validation failure classes. They encode the restrictions of §III.A
// of the paper plus the well-formedness conditions of [9] referenced
// there ("there are no repetitive events before disengageable arcs").
const (
	// ErrEmpty: the graph has no events.
	ErrEmpty ValidationKind = iota
	// ErrRepetitiveSource: a repetitive event has no in-arcs; it would
	// have to fire infinitely often at time zero.
	ErrRepetitiveSource
	// ErrUnmarkedCycle: a cycle carries no initial token, so the graph
	// is not live (Commoner et al.: a marked graph is live iff every
	// cycle is marked) and the per-period evaluation order would not
	// exist.
	ErrUnmarkedCycle
	// ErrOnceFromRepetitive: a disengageable arc leaves a repetitive
	// event, violating well-formedness (§III.A).
	ErrOnceFromRepetitive
	// ErrNotOnceFromNonRepetitive: a plain arc leads from a
	// non-repetitive event to a repetitive one; the repetitive target
	// would starve after one token.
	ErrNotOnceFromNonRepetitive
	// ErrRepToNonRep: an arc leads from a repetitive event to a
	// non-repetitive one; the arc would accumulate unboundedly many
	// tokens, violating boundedness (§III.A).
	ErrRepToNonRep
	// ErrMarkedOnce: an arc is both initially marked and disengageable;
	// it would influence the execution twice, contradicting
	// disengageability.
	ErrMarkedOnce
	// ErrCoreNotStronglyConnected: the repetitive events do not form a
	// single strongly connected component (§III.A requires the cyclic
	// part to be connected).
	ErrCoreNotStronglyConnected
)

func (k ValidationKind) String() string {
	switch k {
	case ErrEmpty:
		return "empty graph"
	case ErrRepetitiveSource:
		return "repetitive event without in-arcs"
	case ErrUnmarkedCycle:
		return "cycle without initial marking (graph not live)"
	case ErrOnceFromRepetitive:
		return "disengageable arc from repetitive event"
	case ErrNotOnceFromNonRepetitive:
		return "non-disengageable arc from non-repetitive to repetitive event"
	case ErrRepToNonRep:
		return "arc from repetitive to non-repetitive event (unbounded)"
	case ErrMarkedOnce:
		return "arc both marked and disengageable"
	case ErrCoreNotStronglyConnected:
		return "repetitive events not strongly connected"
	default:
		return fmt.Sprintf("validation kind %d", int(k))
	}
}

// ValidationError describes a structural problem found by Validate.
type ValidationError struct {
	Graph  string
	Kind   ValidationKind
	Events []string // offending events (cycle members, component, arc ends)
	Detail string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	msg := fmt.Sprintf("sg: graph %q: %s", e.Graph, e.Kind)
	if len(e.Events) > 0 {
		msg += ": " + strings.Join(e.Events, " -> ")
	}
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Validate checks the restrictions the paper places on Signal Graphs
// (§III.A) and returns the first violation found, as a *ValidationError.
//
// The checks, in order:
//  1. the graph is non-empty;
//  2. every repetitive event has at least one in-arc;
//  3. per-arc well-formedness (disengageable arcs leave only
//     non-repetitive events; non-repetitive -> repetitive arcs are
//     disengageable; no repetitive -> non-repetitive arcs; no arc is both
//     marked and disengageable);
//  4. the subgraph of unmarked arcs is acyclic (equivalently: every cycle
//     carries a token, so the graph is live and a per-period topological
//     evaluation order exists);
//  5. the repetitive events form one strongly connected component.
func (g *Graph) Validate() error {
	if len(g.events) == 0 {
		return &ValidationError{Graph: g.name, Kind: ErrEmpty}
	}
	for i, ev := range g.events {
		if ev.Repetitive && len(g.in[i]) == 0 {
			return &ValidationError{Graph: g.name, Kind: ErrRepetitiveSource,
				Events: []string{ev.Name}}
		}
	}
	for _, a := range g.arcs {
		from, to := g.events[a.From], g.events[a.To]
		ends := []string{from.Name, to.Name}
		switch {
		case a.Once && from.Repetitive:
			return &ValidationError{Graph: g.name, Kind: ErrOnceFromRepetitive, Events: ends}
		case !a.Once && !from.Repetitive && to.Repetitive:
			return &ValidationError{Graph: g.name, Kind: ErrNotOnceFromNonRepetitive, Events: ends}
		case from.Repetitive && !to.Repetitive:
			return &ValidationError{Graph: g.name, Kind: ErrRepToNonRep, Events: ends}
		case a.Marked && a.Once:
			return &ValidationError{Graph: g.name, Kind: ErrMarkedOnce, Events: ends}
		}
	}
	if cyc := g.findUnmarkedCycle(); cyc != nil {
		return &ValidationError{Graph: g.name, Kind: ErrUnmarkedCycle,
			Events: g.EventNames(cyc)}
	}
	if len(g.repetitive) > 0 {
		comps := g.coreSCCs()
		if len(comps) > 1 {
			return &ValidationError{Graph: g.name, Kind: ErrCoreNotStronglyConnected,
				Events: g.EventNames(comps[0]),
				Detail: fmt.Sprintf("%d components", len(comps))}
		}
	}
	return nil
}

// findUnmarkedCycle returns the events of some cycle consisting solely of
// unmarked arcs, or nil if the unmarked subgraph is acyclic. The returned
// slice lists the cycle in arc order.
func (g *Graph) findUnmarkedCycle() []EventID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int8, len(g.events))
	parent := make([]EventID, len(g.events))
	for i := range parent {
		parent[i] = None
	}
	// Iterative DFS over unmarked arcs.
	type frame struct {
		node EventID
		next int // index into out-arc list
	}
	for start := range g.events {
		if color[start] != white {
			continue
		}
		stack := []frame{{EventID(start), 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.next < len(g.out[f.node]) {
				ai := g.out[f.node][f.next]
				f.next++
				a := g.arcs[ai]
				if a.Marked {
					continue
				}
				switch color[a.To] {
				case white:
					color[a.To] = gray
					parent[a.To] = f.node
					stack = append(stack, frame{a.To, 0})
					advanced = true
				case gray:
					// Found a cycle: walk parents from f.node back to a.To.
					cyc := []EventID{a.To}
					for v := f.node; v != a.To && v != None; v = parent[v] {
						cyc = append(cyc, v)
					}
					// Reverse into arc order.
					for l, r := 0, len(cyc)-1; l < r; l, r = l+1, r-1 {
						cyc[l], cyc[r] = cyc[r], cyc[l]
					}
					return cyc
				}
				if advanced {
					break
				}
			}
			if !advanced && f.next >= len(g.out[f.node]) {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// coreSCCs returns the strongly connected components of the repetitive
// subgraph (repetitive events and the arcs between them), largest first.
// Components are computed with Tarjan's algorithm, iteratively.
func (g *Graph) coreSCCs() [][]EventID {
	n := len(g.events)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		comps   [][]EventID
		sccStk  []EventID
		counter int
	)
	type frame struct {
		node EventID
		next int
	}
	for _, r := range g.repetitive {
		if index[r] != -1 {
			continue
		}
		stack := []frame{{r, 0}}
		index[r], low[r] = counter, counter
		counter++
		sccStk = append(sccStk, r)
		onStack[r] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			recursed := false
			for f.next < len(g.out[f.node]) {
				ai := g.out[f.node][f.next]
				f.next++
				to := g.arcs[ai].To
				if !g.events[to].Repetitive {
					continue
				}
				if index[to] == -1 {
					index[to], low[to] = counter, counter
					counter++
					sccStk = append(sccStk, to)
					onStack[to] = true
					stack = append(stack, frame{to, 0})
					recursed = true
					break
				} else if onStack[to] && index[to] < low[f.node] {
					low[f.node] = index[to]
				}
			}
			if recursed {
				continue
			}
			if f.next >= len(g.out[f.node]) {
				v := f.node
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := stack[len(stack)-1].node
					if low[v] < low[p] {
						low[p] = low[v]
					}
				}
				if low[v] == index[v] {
					var comp []EventID
					for {
						w := sccStk[len(sccStk)-1]
						sccStk = sccStk[:len(sccStk)-1]
						onStack[w] = false
						comp = append(comp, w)
						if w == v {
							break
						}
					}
					comps = append(comps, comp)
				}
			}
		}
	}
	return comps
}
