package sg

import (
	"fmt"
	"sort"
)

// This file implements the cut-set machinery of §VI.A: a cut set is a set
// of events containing at least one event from every cycle of the Signal
// Graph. The border set (events with a marked in-arc) is always a cut set
// for a live graph and is what the paper's algorithm uses; minimum cut
// sets bound the occurrence period of any simple cycle (Prop. 6) and are
// computed here exactly for small graphs (minimum feedback vertex set).

// IsCutSet reports whether the given events form a cut set: removing them
// from the repetitive subgraph must leave it acyclic. Cycles involve only
// repetitive events, so non-repetitive members are ignored.
func (g *Graph) IsCutSet(set []EventID) bool {
	removed := make([]bool, len(g.events))
	for _, e := range set {
		removed[e] = true
	}
	return g.coreAcyclicWithout(removed)
}

// coreAcyclicWithout reports whether the repetitive subgraph minus the
// removed events is acyclic (all arcs counted, marked or not).
func (g *Graph) coreAcyclicWithout(removed []bool) bool {
	// Kahn's algorithm over the surviving repetitive subgraph.
	indeg := make([]int, len(g.events))
	nodes := 0
	for _, r := range g.repetitive {
		if removed[r] {
			continue
		}
		nodes++
		for _, ai := range g.in[r] {
			from := g.arcs[ai].From
			if g.events[from].Repetitive && !removed[from] {
				indeg[r]++
			}
		}
	}
	queue := make([]EventID, 0, nodes)
	for _, r := range g.repetitive {
		if !removed[r] && indeg[r] == 0 {
			queue = append(queue, r)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, ai := range g.out[v] {
			to := g.arcs[ai].To
			if !g.events[to].Repetitive || removed[to] {
				continue
			}
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	return seen == nodes
}

// findCoreCycle returns a minimum-length (by arc count) cycle of the
// repetitive subgraph avoiding removed events, or nil if none exists.
// The branch-and-bound searches branch over the returned cycle's
// members, so a short cycle keeps the branching factor small.
func (g *Graph) findCoreCycle(removed []bool) []EventID {
	n := len(g.events)
	dist := make([]int, n)
	parent := make([]EventID, n)
	queue := make([]EventID, 0, n)
	var best []EventID
	for _, start := range g.repetitive {
		if removed[start] {
			continue
		}
		// BFS from start; the first arc closing back to start yields
		// the shortest cycle through it.
		for i := range dist {
			dist[i] = -1
			parent[i] = None
		}
		dist[start] = 0
		queue = append(queue[:0], start)
		found := false
		for qi := 0; qi < len(queue) && !found; qi++ {
			v := queue[qi]
			if best != nil && dist[v]+1 >= len(best) {
				continue // cannot beat the best cycle found so far
			}
			for _, ai := range g.out[v] {
				to := g.arcs[ai].To
				if !g.events[to].Repetitive || removed[to] {
					continue
				}
				if to == start {
					cyc := []EventID{}
					for u := v; u != None; u = parent[u] {
						cyc = append(cyc, u)
					}
					for l, r := 0, len(cyc)-1; l < r; l, r = l+1, r-1 {
						cyc[l], cyc[r] = cyc[r], cyc[l]
					}
					best = cyc
					found = true
					break
				}
				if dist[to] == -1 {
					dist[to] = dist[v] + 1
					parent[to] = v
					queue = append(queue, to)
				}
			}
		}
		if best != nil && len(best) == 1 {
			break // a self-loop cannot be beaten
		}
	}
	return best
}

// MaxCutSetNodes bounds the exact minimum-cut-set search; graphs with
// more repetitive events fall back to the border set (see
// MinimumCutSetSize). Minimum feedback vertex set is NP-hard, and the
// paper itself notes (§VI.B) that its implementation skips the search and
// uses the border set directly.
const MaxCutSetNodes = 64

// MinimumCutSet returns one minimum cut set, found by branch and bound on
// cycles (every cycle must contribute a member). It returns an error when
// the repetitive subgraph exceeds MaxCutSetNodes events.
func (g *Graph) MinimumCutSet() ([]EventID, error) {
	if len(g.repetitive) > MaxCutSetNodes {
		return nil, fmt.Errorf("sg: graph %q has %d repetitive events; exact minimum cut set limited to %d",
			g.name, len(g.repetitive), MaxCutSetNodes)
	}
	best := append([]EventID(nil), g.border...) // valid cut set upper bound
	removed := make([]bool, len(g.events))
	var cur []EventID
	var search func()
	search = func() {
		if len(cur) >= len(best) {
			return
		}
		cyc := g.findCoreCycle(removed)
		if cyc == nil {
			best = append(best[:0:0], cur...)
			return
		}
		for _, v := range cyc {
			removed[v] = true
			cur = append(cur, v)
			search()
			cur = cur[:len(cur)-1]
			removed[v] = false
		}
	}
	search()
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best, nil
}

// AllMinimumCutSets enumerates every cut set of minimum size, up to the
// given cap on the number of sets returned. Example 7 of the paper lists
// {c+} and {c-} as the two minimum cut sets of the oscillator graph.
func (g *Graph) AllMinimumCutSets(cap int) ([][]EventID, error) {
	min, err := g.MinimumCutSet()
	if err != nil {
		return nil, err
	}
	k := len(min)
	var (
		result  [][]EventID
		cur     []EventID
		removed = make([]bool, len(g.events))
		seen    = map[string]bool{}
	)
	var search func(startFrom EventID)
	search = func(startFrom EventID) {
		if cap > 0 && len(result) >= cap {
			return
		}
		cyc := g.findCoreCycle(removed)
		if cyc == nil {
			set := append([]EventID(nil), cur...)
			sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
			key := fmt.Sprint(set)
			if !seen[key] {
				seen[key] = true
				result = append(result, set)
			}
			return
		}
		if len(cur) == k {
			return
		}
		for _, v := range cyc {
			removed[v] = true
			cur = append(cur, v)
			search(v)
			cur = cur[:len(cur)-1]
			removed[v] = false
		}
	}
	search(None)
	sort.Slice(result, func(i, j int) bool {
		return fmt.Sprint(result[i]) < fmt.Sprint(result[j])
	})
	return result, nil
}

// MinimumCutSetSize returns the size of a minimum cut set when the exact
// search is feasible, and the border-set size otherwise. Prop. 6 bounds
// the occurrence period of any simple cycle by this value; the paper's
// algorithm itself conservatively simulates b = |border| periods.
func (g *Graph) MinimumCutSetSize() int {
	if set, err := g.MinimumCutSet(); err == nil {
		return len(set)
	}
	return len(g.border)
}
