package sg

import (
	"fmt"
	"math"
)

// Overlay is a mutable delay view over an immutable Graph: a private
// copy of the graph that shares every index structure (adjacency, CSR
// layout, period order, border set, name table) with the original while
// owning its arc list and in-arc delay column, which are edited in
// place. It replaces the per-query WithArcDelay graph copies in what-if
// analyses: a session creates one Overlay, edits delays between
// queries, and a compiled simulation schedule follows the edits through
// its refresh hooks (timesim.Schedule.RefreshArcDelay), so a delay
// change costs O(1) instead of an O(m) copy plus a recompile.
//
// The overlay records which arcs changed since the last DrainDirty, so
// a consumer tracking the view (the cycletime engine's schedule) can
// refresh exactly the touched records. An Overlay is not safe for
// concurrent use; the session layer serialises edits against
// simulations.
type Overlay struct {
	g       *Graph
	nominal []float64 // delay snapshot taken when the overlay was created
	inPos   []int32   // arc index -> position in the graph's in-arc delay column
	dirty   []int32   // arcs edited since the last DrainDirty, in first-edit order
	isDirty []bool
}

// NewOverlay builds a delay overlay of g. The overlay's Graph() starts
// bit-identical to g; the original graph is never modified through it.
func NewOverlay(g *Graph) *Overlay {
	ng := *g
	ng.arcs = append([]Arc(nil), g.arcs...)
	ng.inDelay = append([]float64(nil), g.inDelay...)
	m := len(ng.arcs)
	o := &Overlay{
		g:       &ng,
		nominal: make([]float64, m),
		inPos:   make([]int32, m),
		isDirty: make([]bool, m),
	}
	for i := range ng.arcs {
		o.nominal[i] = ng.arcs[i].Delay
	}
	for p, ai := range ng.inPacked {
		o.inPos[ai] = int32(p)
	}
	return o
}

// Graph returns the overlay's graph view. The pointer is stable across
// edits, and delays read through it always reflect the current overlay
// state; callers must treat the view as read-only.
func (o *Overlay) Graph() *Graph { return o.g }

// NumArcs returns the arc count of the underlying graph.
func (o *Overlay) NumArcs() int { return len(o.g.arcs) }

// Delay returns the current delay of arc i.
func (o *Overlay) Delay(i int) float64 { return o.g.arcs[i].Delay }

// Nominal returns the delay arc i had when the overlay was created.
func (o *Overlay) Nominal(i int) float64 { return o.nominal[i] }

// SetDelay replaces arc i's delay in place — both the arc record and
// the packed in-arc delay column the simulation kernels read — and
// marks the arc dirty for the next DrainDirty.
func (o *Overlay) SetDelay(i int, delay float64) error {
	if i < 0 || i >= len(o.g.arcs) {
		return fmt.Errorf("sg: arc index %d out of range [0,%d)", i, len(o.g.arcs))
	}
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("sg: invalid delay %g", delay)
	}
	o.g.arcs[i].Delay = delay
	o.g.inDelay[o.inPos[i]] = delay
	if !o.isDirty[i] {
		o.isDirty[i] = true
		o.dirty = append(o.dirty, int32(i))
	}
	return nil
}

// SetDelays replaces every arc delay with f(arc, nominal), where
// nominal is the overlay's creation-time delay (so repeated SetDelays
// calls compose from the same base, like WithDelays on the original
// graph). Negative results are rejected; already-applied edits of the
// failing call are kept (the caller typically Resets on error).
func (o *Overlay) SetDelays(f func(arc int, nominal float64) float64) error {
	for i := range o.g.arcs {
		if err := o.SetDelay(i, f(i, o.nominal[i])); err != nil {
			return fmt.Errorf("sg: overlay delays: arc %d: %w", i, err)
		}
	}
	return nil
}

// Reset restores every arc to its nominal delay, marking restored arcs
// dirty so a tracking schedule refreshes them.
func (o *Overlay) Reset() {
	for i := range o.g.arcs {
		if o.g.arcs[i].Delay != o.nominal[i] {
			// Error impossible: nominal delays were validated >= 0.
			_ = o.SetDelay(i, o.nominal[i])
		}
	}
}

// DrainDirty invokes fn for every arc edited since the previous drain,
// in first-edit order, and clears the dirty set. A compiled schedule
// passes its RefreshArcDelay here to track the overlay.
func (o *Overlay) DrainDirty(fn func(arc int, delay float64)) {
	for _, ai := range o.dirty {
		o.isDirty[ai] = false
		fn(int(ai), o.g.arcs[ai].Delay)
	}
	o.dirty = o.dirty[:0]
}
