// Package sg implements the (Timed) Signal Graph model of Nielsen and
// Kishinevsky, "Performance Analysis Based on Timing Simulation" (DAC'94),
// §III. A Signal Graph is an extension of Marked Graphs with
//
//   - events (signal transitions such as "a+" / "a-", or environment
//     events), split into repetitive events, which oscillate forever, and
//     non-repetitive events, which occur exactly once (these include the
//     initial events I);
//   - arcs carrying an initial marking (initially-safe: 0 or 1 tokens),
//     a non-negative real delay, and a "disengageable" flag for arcs that
//     influence the execution once only (the crossed arcs of Fig. 1b);
//   - AND-causality: an event occurs when every in-arc carries a token,
//     which in the timed interpretation becomes the MAX rule (§III.C).
//
// Graphs are constructed through a Builder and validated on Build; the
// resulting Graph is immutable and safe for concurrent readers.
package sg

import (
	"fmt"
	"strings"
)

// EventID identifies an event within a Graph. IDs are dense indices
// assigned in insertion order.
type EventID int

// None is the invalid EventID.
const None EventID = -1

// Direction classifies a signal transition.
type Direction int8

// Transition directions. Events whose names end in '+' or '-' are parsed
// as rising/falling transitions of the prefix signal; any other name is a
// DirNone event (an abstract or environment event).
const (
	DirNone Direction = iota
	DirRise
	DirFall
)

// String returns "+", "-" or "".
func (d Direction) String() string {
	switch d {
	case DirRise:
		return "+"
	case DirFall:
		return "-"
	default:
		return ""
	}
}

// Event is a vertex of a Signal Graph.
type Event struct {
	Name       string    // unique name, e.g. "a+", "b-", "env"
	Signal     string    // signal the transition belongs to ("a" for "a+")
	Dir        Direction // rise/fall for signal transitions
	Repetitive bool      // member of A_r: occurs infinitely often
	Initial    bool      // member of I: non-repetitive with no in-arcs
}

// Arc is a directed, delay-labelled edge of a Timed Signal Graph.
type Arc struct {
	From, To EventID
	Delay    float64 // τ >= 0
	Marked   bool    // carries the initial token (the bullets of Fig. 1b)
	Once     bool    // disengageable: influences the execution once only
}

// Graph is an immutable Timed Signal Graph.
type Graph struct {
	name   string
	events []Event
	arcs   []Arc
	out    [][]int // arc indices leaving each event (views into outPacked)
	in     [][]int // arc indices entering each event (views into inPacked)
	byName map[string]EventID

	repetitive []EventID // cached A_r in ID order
	border     []EventID // cached border set (§VI.A) in ID order

	// CSR adjacency, built once at assemble time. The per-event slices
	// above are subslices of the packed arrays, so iteration through
	// either view walks the same contiguous memory.
	outPacked []int
	inPacked  []int
	// In-arc records in struct-of-arrays form, grouped by target event
	// (inOff[e]..inOff[e+1]) and ordered by arc index within each group —
	// the same order InArcs returns. This is the layout the timing
	// simulation kernel consumes: one linear scan per event, no Arc
	// struct copies.
	inOff   []int32
	inSrc   []EventID
	inDelay []float64
	inMark  []int32 // marking offset: 1 when the arc carries the token

	// Topological order of the unmarked-arc subgraph (the period order of
	// the unfolding), cached so the b simulations of one analysis do not
	// recompute it. nil with topoErr set when the graph has an unmarked
	// cycle (possible for BuildUnchecked graphs).
	topo    []EventID
	topoErr error
}

// InCSR is a read-only view of the compiled in-arc layout: for each
// event e, records Off[e]..Off[e+1] hold the in-arcs of e in arc-index
// order as parallel arrays. Callers must not modify the slices.
type InCSR struct {
	Off   []int32   // len NumEvents+1
	Src   []EventID // source event per record
	Delay []float64 // arc delay per record
	Mark  []int32   // marking offset per record (1 = initially marked)
	Arc   []int     // originating arc index per record (shared with InArcs)
}

// InCSR returns the compiled in-arc layout.
func (g *Graph) InCSR() InCSR {
	return InCSR{Off: g.inOff, Src: g.inSrc, Delay: g.inDelay, Mark: g.inMark, Arc: g.inPacked}
}

// PeriodOrder returns the events in a topological order of the
// unmarked-arc subgraph: the valid intra-period evaluation order for the
// unfolding and the streaming timing simulation. The order is computed
// once at Build time (deterministically: the smallest ready ID first)
// and shared; callers must not modify the slice. Graphs with an unmarked
// cycle (which fail Validate but can exist via BuildUnchecked) have no
// period order and yield an error.
func (g *Graph) PeriodOrder() ([]EventID, error) {
	if g.topoErr != nil {
		return nil, g.topoErr
	}
	return g.topo, nil
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NumEvents returns |A|.
func (g *Graph) NumEvents() int { return len(g.events) }

// NumArcs returns |→|.
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Event returns the event with the given ID.
func (g *Graph) Event(id EventID) Event { return g.events[id] }

// Arc returns the arc with the given index.
func (g *Graph) Arc(i int) Arc { return g.arcs[i] }

// EventByName returns the ID of the named event, or (None, false).
func (g *Graph) EventByName(name string) (EventID, bool) {
	id, ok := g.byName[name]
	if !ok {
		return None, false
	}
	return id, true
}

// MustEvent returns the ID of the named event and panics if it does not
// exist. Intended for tests and examples working with known fixtures.
func (g *Graph) MustEvent(name string) EventID {
	id, ok := g.byName[name]
	if !ok {
		panic(fmt.Sprintf("sg: graph %q has no event %q", g.name, name))
	}
	return id
}

// OutArcs returns the indices of arcs leaving e. The slice is shared;
// callers must not modify it.
func (g *Graph) OutArcs(e EventID) []int { return g.out[e] }

// InArcs returns the indices of arcs entering e. The slice is shared;
// callers must not modify it.
func (g *Graph) InArcs(e EventID) []int { return g.in[e] }

// RepetitiveEvents returns the IDs of all repetitive events in ID order.
// The slice is shared; callers must not modify it.
func (g *Graph) RepetitiveEvents() []EventID { return g.repetitive }

// InitialEvents returns the IDs of the initial events I (non-repetitive
// events without in-arcs) in ID order.
func (g *Graph) InitialEvents() []EventID {
	var ids []EventID
	for i, ev := range g.events {
		if ev.Initial {
			ids = append(ids, EventID(i))
		}
	}
	return ids
}

// BorderEvents returns the border set (§VI.A): the events with an
// initially marked in-arc. For a live Signal Graph the border set is a
// cut set, because every cycle carries a token. The slice is shared;
// callers must not modify it.
func (g *Graph) BorderEvents() []EventID { return g.border }

// EventNames maps a list of IDs to their names.
func (g *Graph) EventNames(ids []EventID) []string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = g.events[id].Name
	}
	return names
}

// TotalDelay returns the sum of all arc delays; a trivial upper bound on
// any simple-cycle length, used by the binary-search baseline.
func (g *Graph) TotalDelay() float64 {
	sum := 0.0
	for _, a := range g.arcs {
		sum += a.Delay
	}
	return sum
}

// TotalMarking returns the number of initially marked arcs.
func (g *Graph) TotalMarking() int {
	n := 0
	for _, a := range g.arcs {
		if a.Marked {
			n++
		}
	}
	return n
}

// String returns a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("sg.Graph{%s: %d events (%d repetitive), %d arcs, %d tokens, border=%v}",
		g.name, len(g.events), len(g.repetitive), len(g.arcs), g.TotalMarking(),
		g.EventNames(g.border))
}

// splitName derives (signal, direction) from an event name: a trailing
// '+' or '-' marks a rising/falling transition of the prefix signal.
func splitName(name string) (string, Direction) {
	switch {
	case strings.HasSuffix(name, "+"):
		return name[:len(name)-1], DirRise
	case strings.HasSuffix(name, "-"):
		return name[:len(name)-1], DirFall
	default:
		return name, DirNone
	}
}
