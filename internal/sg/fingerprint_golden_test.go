package sg_test

import (
	"fmt"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
)

// TestFingerprintGolden pins the exact hash output of Fingerprint on
// known graphs. The fingerprint is a wire-level contract — the serving
// cache keys compiled engines by it and clients compare it across
// upload/download — so implementation rewrites (like the streaming
// allocation-flat one) must reproduce the byte stream exactly. These
// values were captured from the original copy-and-sort implementation.
func TestFingerprintGolden(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*sg.Graph, error)
		want  string
	}{
		{"oscillator", func() (*sg.Graph, error) { return gen.Oscillator(), nil },
			"78e0ad775d95e389bf0f88566922b8086f64b1fd807b3679c6c9f70a090088df"},
		{"pipegrid-3-4-2", func() (*sg.Graph, error) {
			return gen.PipeGrid(gen.PipeGridOptions{Sites: 3, Depth: 4, Width: 2, Seed: 5})
		}, "d8a7688a1fd1b102da940d79b0e34ced55491f44313b12509375e7246e53a4ca"},
		{"ring5", func() (*sg.Graph, error) { return gen.MullerRing(5) },
			"b34f3386e2e88deca30d43c022c8d22fdf3872e4c7babe7e169d37a2c14524d8"},
	}
	for _, tc := range cases {
		g, err := tc.build()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := sg.Fingerprint(g); got != tc.want {
			t.Errorf("%s: fingerprint %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestFingerprintAllocsFlat pins the streaming property: allocations
// per Fingerprint call are a small constant, independent of graph size.
func TestFingerprintAllocsFlat(t *testing.T) {
	small, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 3, Depth: 4, Width: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := gen.PipeGridSized(20000, 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		g    *sg.Graph
	}{{"small", small}, {"big-20k", big}} {
		allocs := testing.AllocsPerRun(5, func() { _ = sg.Fingerprint(tc.g) })
		// Budget: hash state, two permutations, scratch buffer, sorter
		// boxes, digest and hex string. Anything O(n) or O(m) blows this.
		if allocs > 16 {
			t.Errorf("%s: %.0f allocs per Fingerprint, want a small constant (<= 16)", tc.name, allocs)
		}
	}
}

// BenchmarkFingerprint sweeps sizes; ns/event should stay roughly flat
// (the sort's log factor aside) and allocs constant.
func BenchmarkFingerprint(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		g, err := gen.PipeGridSized(n, 8, 4, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = sg.Fingerprint(g)
			}
		})
	}
}
