package sg

import (
	"fmt"
	"math"
)

// WithArcDelay returns a copy of the graph with arc i's delay replaced.
// The topology is unchanged, so no re-validation is needed; the copy
// shares the immutable index structures with the original. Used by
// what-if analyses (cycletime.Sensitivity).
func (g *Graph) WithArcDelay(i int, delay float64) (*Graph, error) {
	if i < 0 || i >= len(g.arcs) {
		return nil, fmt.Errorf("sg: arc index %d out of range [0,%d)", i, len(g.arcs))
	}
	if delay < 0 || math.IsNaN(delay) {
		return nil, fmt.Errorf("sg: invalid delay %g", delay)
	}
	ng := *g
	ng.arcs = append([]Arc(nil), g.arcs...)
	ng.arcs[i].Delay = delay
	ng.rebuildInDelays()
	return &ng, nil
}

// Scaled returns a copy of the graph with every delay multiplied by the
// given non-negative factor. Cycle times scale by the same factor (the
// homogeneity property used by normalisation tests).
func (g *Graph) Scaled(factor float64) (*Graph, error) {
	if factor < 0 {
		return nil, fmt.Errorf("sg: negative scale factor %g", factor)
	}
	ng := *g
	ng.arcs = append([]Arc(nil), g.arcs...)
	for i := range ng.arcs {
		ng.arcs[i].Delay *= factor
	}
	ng.rebuildInDelays()
	return &ng, nil
}

// WithDelays returns a copy of the graph with every arc delay replaced
// by f(arcIndex, currentDelay). Negative results are rejected. Used by
// the interval-bound analysis (cycletime.AnalyzeBounds).
func (g *Graph) WithDelays(f func(arc int, delay float64) float64) (*Graph, error) {
	ng := *g
	ng.arcs = append([]Arc(nil), g.arcs...)
	for i := range ng.arcs {
		d := f(i, ng.arcs[i].Delay)
		if d < 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("sg: WithDelays produced invalid delay %g on arc %d", d, i)
		}
		ng.arcs[i].Delay = d
	}
	ng.rebuildInDelays()
	return &ng, nil
}
