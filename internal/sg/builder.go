package sg

import (
	"fmt"
	"sort"
)

// EventOption configures an event added through a Builder.
type EventOption func(*Event)

// NonRepetitive marks the event as occurring exactly once (like f- in
// Fig. 1b). Events are repetitive by default.
func NonRepetitive() EventOption { return func(e *Event) { e.Repetitive = false } }

// ArcOption configures an arc added through a Builder.
type ArcOption func(*Arc)

// Marked places the initial token on the arc (the bullets of Fig. 1b).
func Marked() ArcOption { return func(a *Arc) { a.Marked = true } }

// Once marks the arc as disengageable (the crossed arcs of Fig. 1b):
// it influences the execution exactly once.
func Once() ArcOption { return func(a *Arc) { a.Once = true } }

// Builder accumulates events and arcs and produces a validated Graph.
// Methods chain; the first recorded error is reported by Build.
type Builder struct {
	name   string
	events []Event
	arcs   []Arc
	byName map[string]EventID
	err    error
}

// NewBuilder returns an empty Builder for a graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]EventID)}
}

// Event adds an event. Names ending in '+'/'-' are parsed as rising or
// falling transitions of the prefix signal. Duplicate names are an error.
func (b *Builder) Event(name string, opts ...EventOption) *Builder {
	if b.err != nil {
		return b
	}
	if name == "" {
		b.err = fmt.Errorf("sg: empty event name in graph %q", b.name)
		return b
	}
	if _, dup := b.byName[name]; dup {
		b.err = fmt.Errorf("sg: duplicate event %q in graph %q", name, b.name)
		return b
	}
	sig, dir := splitName(name)
	ev := Event{Name: name, Signal: sig, Dir: dir, Repetitive: true}
	for _, o := range opts {
		o(&ev)
	}
	b.byName[name] = EventID(len(b.events))
	b.events = append(b.events, ev)
	return b
}

// Events adds several repetitive events at once.
func (b *Builder) Events(names ...string) *Builder {
	for _, n := range names {
		b.Event(n)
	}
	return b
}

// Arc adds an arc from one named event to another with the given delay.
// Both endpoints must have been added already.
func (b *Builder) Arc(from, to string, delay float64, opts ...ArcOption) *Builder {
	if b.err != nil {
		return b
	}
	src, ok := b.byName[from]
	if !ok {
		b.err = fmt.Errorf("sg: arc references unknown event %q in graph %q", from, b.name)
		return b
	}
	dst, ok := b.byName[to]
	if !ok {
		b.err = fmt.Errorf("sg: arc references unknown event %q in graph %q", to, b.name)
		return b
	}
	if delay < 0 {
		b.err = fmt.Errorf("sg: negative delay %g on arc %s -> %s in graph %q", delay, from, to, b.name)
		return b
	}
	a := Arc{From: src, To: dst, Delay: delay}
	for _, o := range opts {
		o(&a)
	}
	b.arcs = append(b.arcs, a)
	return b
}

// Err returns the first error recorded so far, if any.
func (b *Builder) Err() error { return b.err }

// Build validates the accumulated structure and returns the immutable
// Graph. The validation enforces the restrictions of §III.A of the paper
// (see Validate for the full list).
func (b *Builder) Build() (*Graph, error) {
	g, err := b.assemble()
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// BuildUnchecked assembles the Graph without semantic validation. It still
// fails on builder-level errors (unknown events, negative delays). It is
// intended for tests that exercise Validate's failure paths and for tools
// that want to load a graph in order to report its problems.
func (b *Builder) BuildUnchecked() (*Graph, error) {
	return b.assemble()
}

func (b *Builder) assemble() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		name:   b.name,
		events: append([]Event(nil), b.events...),
		arcs:   append([]Arc(nil), b.arcs...),
		byName: make(map[string]EventID, len(b.events)),
	}
	for name, id := range b.byName {
		g.byName[name] = id
	}
	g.buildCSR()
	// Derive Initial: non-repetitive events without in-arcs.
	for i := range g.events {
		if !g.events[i].Repetitive && len(g.in[i]) == 0 {
			g.events[i].Initial = true
		}
	}
	for i, ev := range g.events {
		if ev.Repetitive {
			g.repetitive = append(g.repetitive, EventID(i))
		}
	}
	g.border = g.computeBorder()
	g.topo, g.topoErr = g.computePeriodOrder()
	return g, nil
}

// buildCSR flattens the adjacency into packed CSR arrays: the per-event
// in/out index slices become views into two shared backing arrays, and
// the in-arcs additionally get a struct-of-arrays record layout
// (source, delay, marking offset, arc index) grouped by target. Within
// each group records appear in ascending arc index, matching the order
// arcs were added — the tie-breaking order the simulation kernels rely
// on for bit-identical parent selection.
func (g *Graph) buildCSR() {
	n := len(g.events)
	m := len(g.arcs)
	inCnt := make([]int32, n+1)
	outCnt := make([]int32, n+1)
	for _, a := range g.arcs {
		inCnt[a.To+1]++
		outCnt[a.From+1]++
	}
	for i := 0; i < n; i++ {
		inCnt[i+1] += inCnt[i]
		outCnt[i+1] += outCnt[i]
	}
	g.inOff = inCnt
	g.inSrc = make([]EventID, m)
	g.inDelay = make([]float64, m)
	g.inMark = make([]int32, m)
	g.inPacked = make([]int, m)
	g.outPacked = make([]int, m)
	inNext := make([]int32, n)
	outNext := make([]int32, n)
	copy(inNext, inCnt[:n])
	copy(outNext, outCnt[:n])
	for i, a := range g.arcs {
		p := inNext[a.To]
		inNext[a.To]++
		g.inSrc[p] = a.From
		g.inDelay[p] = a.Delay
		if a.Marked {
			g.inMark[p] = 1
		}
		g.inPacked[p] = i
		q := outNext[a.From]
		outNext[a.From]++
		g.outPacked[q] = i
	}
	g.in = make([][]int, n)
	g.out = make([][]int, n)
	for e := 0; e < n; e++ {
		g.in[e] = g.inPacked[inCnt[e]:inCnt[e+1]:inCnt[e+1]]
		g.out[e] = g.outPacked[outCnt[e]:outCnt[e+1]:outCnt[e+1]]
	}
}

// rebuildInDelays refreshes the CSR delay column from the arc list.
// Called by the copy-on-write delay modifiers (modify.go), which share
// every other index structure with the original graph.
func (g *Graph) rebuildInDelays() {
	d := make([]float64, len(g.inPacked))
	for i, ai := range g.inPacked {
		d[i] = g.arcs[ai].Delay
	}
	g.inDelay = d
}

// computePeriodOrder runs a deterministic Kahn topological sort over the
// unmarked-arc subgraph, always extracting the smallest ready ID (via a
// binary heap, O((n+m) log n)) so tables and traces are stable across
// runs.
func (g *Graph) computePeriodOrder() ([]EventID, error) {
	n := len(g.events)
	indeg := make([]int32, n)
	for _, a := range g.arcs {
		if !a.Marked {
			indeg[a.To]++
		}
	}
	heap := make([]EventID, 0, n)
	push := func(e EventID) {
		heap = append(heap, e)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() EventID {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= len(heap) {
				break
			}
			if c+1 < len(heap) && heap[c+1] < heap[c] {
				c++
			}
			if heap[i] <= heap[c] {
				break
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
		return top
	}
	for i := n - 1; i >= 0; i-- {
		if indeg[i] == 0 {
			push(EventID(i))
		}
	}
	order := make([]EventID, 0, n)
	for len(heap) > 0 {
		e := pop()
		order = append(order, e)
		for _, ai := range g.out[e] {
			a := &g.arcs[ai]
			if a.Marked {
				continue
			}
			indeg[a.To]--
			if indeg[a.To] == 0 {
				push(a.To)
			}
		}
	}
	if len(order) < n {
		return nil, fmt.Errorf("sg: graph %q has an unmarked cycle; no period order exists", g.name)
	}
	return order, nil
}

// computeBorder finds the border set: repetitive events with an initially
// marked in-arc. Cycles involve only repetitive events, and every cycle of
// a live graph carries a token whose arc ends in a repetitive event, so
// restricting the border set to repetitive events keeps it a cut set.
func (g *Graph) computeBorder() []EventID {
	var border []EventID
	for i := range g.events {
		if !g.events[i].Repetitive {
			continue
		}
		for _, ai := range g.in[i] {
			if g.arcs[ai].Marked {
				border = append(border, EventID(i))
				break
			}
		}
	}
	sort.Slice(border, func(i, j int) bool { return border[i] < border[j] })
	return border
}
