package sg

import (
	"fmt"
	"io"
	"strings"
)

// WriteDot renders the graph in Graphviz DOT format, mirroring the visual
// conventions of Fig. 1b of the paper: initially marked arcs carry a
// bullet in their label, disengageable arcs are dashed, and each arc is
// labelled with its delay. Non-repetitive events are drawn as boxes.
func (g *Graph) WriteDot(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", sanitizeDotID(g.name))
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontsize=11];\n")
	for i, ev := range g.events {
		attrs := []string{fmt.Sprintf("label=%q", ev.Name)}
		if !ev.Repetitive {
			attrs = append(attrs, "shape=box")
		}
		if ev.Initial {
			attrs = append(attrs, "style=bold")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, strings.Join(attrs, ", "))
	}
	for _, a := range g.arcs {
		label := trimDelay(a.Delay)
		if a.Marked {
			label = "● " + label // bullet: initial token
		}
		attrs := []string{fmt.Sprintf("label=%q", label)}
		if a.Once {
			attrs = append(attrs, "style=dashed")
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", a.From, a.To, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func trimDelay(d float64) string {
	s := fmt.Sprintf("%g", d)
	return s
}

func sanitizeDotID(s string) string {
	if s == "" {
		return "tsg"
	}
	return s
}
