package mcr

import (
	"fmt"

	"tsg/internal/sg"
)

// DefaultEps is the default convergence width for Lawler's binary search.
const DefaultEps = 1e-9

// Lawler computes the cycle time by Lawler's parameter search [11]: λ is
// feasible (λ >= λ*) iff the graph with arc weights τ(a) − λ·m(a) has no
// positive-weight cycle. Binary search over [0, Σdelays] narrows λ to
// within eps. This is the decision form of the linear program of
// Burns [2]: find the least λ admitting a potential function u with
// u(to) >= u(from) + τ − λ·m for every arc.
//
// Runs in O(n·m·log(Δ/eps)). The result carries ±eps absolute error by
// construction, unlike the exact algorithms.
func Lawler(g *sg.Graph, eps float64) (float64, error) {
	if eps <= 0 {
		eps = DefaultEps
	}
	if _, err := topoUnmarked(g); err != nil {
		return 0, err // unmarked cycle: λ would be unbounded
	}
	hasToken := false
	for i := 0; i < g.NumArcs(); i++ {
		if g.Arc(i).Marked {
			hasToken = true
			break
		}
	}
	if !hasToken {
		return 0, fmt.Errorf("mcr: graph %q has no tokens; no cycles to time", g.Name())
	}
	lo, hi := 0.0, g.TotalDelay()+1
	if hasPositiveCycle(g, hi) {
		return 0, fmt.Errorf("mcr: internal error: positive cycle at λ = Σδ+1 in graph %q", g.Name())
	}
	if !hasPositiveCycle(g, lo) {
		// No cycle has positive length at λ=0: all-zero-delay cycles.
		return 0, nil
	}
	for hi-lo > eps {
		mid := (lo + hi) / 2
		if hasPositiveCycle(g, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// hasPositiveCycle runs Bellman–Ford longest-path relaxation restricted
// to the repetitive core with weights τ − λ·m; a relaxation in round n
// certifies a positive cycle (i.e. a cycle with ratio > λ).
func hasPositiveCycle(g *sg.Graph, lambda float64) bool {
	n := g.NumEvents()
	dist := make([]float64, n)
	// Start every node at 0: we only care about positive cycles, not
	// distances from a particular source.
	active := true
	for round := 0; round < n && active; round++ {
		active = false
		for i := 0; i < g.NumArcs(); i++ {
			a := g.Arc(i)
			if a.Once || !g.Event(a.From).Repetitive || !g.Event(a.To).Repetitive {
				continue
			}
			w := a.Delay
			if a.Marked {
				w -= lambda
			}
			if d := dist[a.From] + w; d > dist[a.To]+1e-15 {
				dist[a.To] = d
				active = true
			}
		}
	}
	return active
}

// FeasiblePotential returns a potential (slack) function certifying
// λ >= λ*: u with u(to) >= u(from) + τ(a) − λ·m(a) for every core arc,
// or an error when λ < λ* (a positive cycle exists). This is the dual
// solution of the Burns LP and is exported for the LP-oriented
// experiments and tests.
func FeasiblePotential(g *sg.Graph, lambda float64) ([]float64, error) {
	return FeasiblePotentialSeeded(g, lambda, nil)
}

// FeasiblePotentialSeeded is FeasiblePotential warm-started from a seed
// potential (nil means the all-zero cold start). Seeding with values
// already close to feasibility — e.g. the λ-detrended occurrence times
// max_p (t(e_p) − λ·p) of a timing simulation, which are unfolded-path
// weights — converges in a handful of relaxation rounds instead of
// O(n); this is how the cycle-time engine turns its final simulation
// times into a slack certificate without re-deriving the dual from
// scratch. Any converged output is a feasible potential, but a seed
// exceeding the cold fixpoint somewhere (simulation times include
// prefix/transient contributions outside the repetitive core) yields a
// different — equally valid — certificate than the cold start.
func FeasiblePotentialSeeded(g *sg.Graph, lambda float64, seed []float64) ([]float64, error) {
	n := g.NumEvents()
	dist := make([]float64, n)
	if seed != nil {
		if len(seed) != n {
			return nil, fmt.Errorf("mcr: seed potential has %d entries, graph %q has %d events",
				len(seed), g.Name(), n)
		}
		copy(dist, seed)
	}
	for round := 0; round < n+1; round++ {
		active := false
		for i := 0; i < g.NumArcs(); i++ {
			a := g.Arc(i)
			if a.Once || !g.Event(a.From).Repetitive || !g.Event(a.To).Repetitive {
				continue
			}
			w := a.Delay
			if a.Marked {
				w -= lambda
			}
			if d := dist[a.From] + w; d > dist[a.To]+1e-12 {
				dist[a.To] = d
				active = true
			}
		}
		if !active {
			return dist, nil
		}
	}
	return nil, fmt.Errorf("mcr: λ = %g is below the cycle time of graph %q (no feasible potential)",
		lambda, g.Name())
}
