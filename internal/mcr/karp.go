package mcr

import (
	"fmt"
	"math"

	"tsg/internal/sg"
	"tsg/internal/stat"
)

// Karp computes the cycle time by Karp's maximum-mean-cycle theorem on
// the token-graph reduction: with D_k(v) the maximum weight of a k-edge
// walk from a fixed source,
//
//	λ = max_v min_{0 <= k < T} (D_T(v) - D_k(v)) / (T - k),
//
// where T is the number of token nodes. The result is exact whenever the
// delays are exactly representable (Karp's formula is a ratio of a delay
// sum to an integer). Runs in O(T·E) on the token graph after the
// O(T·m) reduction.
func Karp(g *sg.Graph) (stat.Ratio, error) {
	tg, err := buildTokenGraph(g)
	if err != nil {
		return stat.Ratio{}, err
	}
	T := len(tg.arcs)
	// The token graph of a strongly connected live core is strongly
	// connected, so any source works; use node 0.
	neg := math.Inf(-1)
	D := make([][]float64, T+1)
	for k := range D {
		D[k] = make([]float64, T)
		for v := range D[k] {
			D[k][v] = neg
		}
	}
	D[0][0] = 0
	for k := 1; k <= T; k++ {
		for u := 0; u < T; u++ {
			if math.IsInf(D[k-1][u], -1) {
				continue
			}
			for v := 0; v < T; v++ {
				w := tg.w[u][v]
				if math.IsInf(w, -1) {
					continue
				}
				if d := D[k-1][u] + w; d > D[k][v] {
					D[k][v] = d
				}
			}
		}
	}
	best := stat.Ratio{Num: -1, Den: 1}
	found := false
	for v := 0; v < T; v++ {
		if math.IsInf(D[T][v], -1) {
			continue
		}
		// min over k of (D_T(v) - D_k(v)) / (T-k), as an exact ratio.
		var vmin stat.Ratio
		vset := false
		for k := 0; k < T; k++ {
			if math.IsInf(D[k][v], -1) {
				continue
			}
			r := stat.NewRatio(D[T][v]-D[k][v], T-k)
			if !vset || r.Less(vmin) {
				vmin = r
				vset = true
			}
		}
		if !vset {
			continue
		}
		if !found || best.Less(vmin) {
			best = vmin
			found = true
		}
	}
	if !found {
		return stat.Ratio{}, fmt.Errorf("mcr: Karp found no cycle in graph %q", g.Name())
	}
	return best.Normalize(), nil
}
