package mcr

import (
	"fmt"
	"math"

	"tsg/internal/sg"
	"tsg/internal/stat"
)

// howardEps separates "equal" from "better" in Howard's value tests;
// ratios themselves are recomputed exactly from the final policy cycle.
const howardEps = 1e-12

// Howard computes the cycle time by Howard's policy-iteration algorithm
// for the maximum cycle ratio (max-plus spectral theory, Baccelli et
// al. [1]; the variant follows Dasdan's survey formulation). Every event
// of the repetitive core holds a policy arc; each iteration evaluates the
// ratio and potential of the single cycle each policy chain leads to,
// then greedily improves policies. Live graphs guarantee every policy
// cycle carries a token, so ratios are always finite.
//
// The returned ratio is exact: it is the delay sum over the token count
// of the final critical policy cycle. Howard's iteration count is small
// in practice; a defensive cap of n·m iterations turns non-convergence
// (which would indicate a bug) into an error.
func Howard(g *sg.Graph) (stat.Ratio, error) {
	// Collect the repetitive core's arcs per source event.
	type arc struct {
		to     sg.EventID
		delay  float64
		tokens int
		index  int
	}
	n := g.NumEvents()
	out := make([][]arc, n)
	nodes := g.RepetitiveEvents()
	if len(nodes) == 0 {
		return stat.Ratio{}, fmt.Errorf("mcr: graph %q has no repetitive events", g.Name())
	}
	mArcs := 0
	for _, v := range nodes {
		for _, ai := range g.OutArcs(v) {
			a := g.Arc(ai)
			if a.Once || !g.Event(a.To).Repetitive {
				continue
			}
			tok := 0
			if a.Marked {
				tok = 1
			}
			out[v] = append(out[v], arc{to: a.To, delay: a.Delay, tokens: tok, index: ai})
			mArcs++
		}
	}
	for _, v := range nodes {
		if len(out[v]) == 0 {
			return stat.Ratio{}, fmt.Errorf("mcr: repetitive event %q has no core out-arc", g.Event(v).Name)
		}
	}

	policy := make([]int, n) // index into out[v]
	ratioN := make([]float64, n)
	ratioD := make([]int, n)
	value := make([]float64, n)
	visited := make([]int, n) // epoch marker
	epoch := 0

	evaluate := func() {
		epoch++
		// Each policy chain ends in exactly one cycle. Walk chains,
		// find each cycle, compute its exact ratio, then back-propagate
		// values.
		state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
		var stack []sg.EventID
		for _, start := range nodes {
			if state[start] != 0 {
				continue
			}
			// Follow the policy until hitting something processed or
			// in progress.
			v := start
			stack = stack[:0]
			for state[v] == 0 {
				state[v] = 1
				stack = append(stack, v)
				v = out[v][policy[v]].to
			}
			if state[v] == 1 {
				// Found a new cycle; v is on it. Compute Σδ and Σtok.
				var dsum float64
				var tsum int
				w := v
				for {
					a := out[w][policy[w]]
					dsum += a.delay
					tsum += a.tokens
					w = a.to
					if w == v {
						break
					}
				}
				if tsum == 0 {
					// Unreachable on validated graphs (unmarked cycle).
					dsum, tsum = math.Inf(1), 1
				}
				// Anchor the cycle at v.
				ratioN[v], ratioD[v] = dsum, tsum
				value[v] = 0
				visited[v] = epoch
				// Values around the cycle, walking forward from v.
				lam := dsum / float64(tsum)
				x := v
				for {
					a := out[x][policy[x]]
					if a.to == v {
						break
					}
					ratioN[a.to], ratioD[a.to] = dsum, tsum
					value[a.to] = value[x] - (a.delay - lam*float64(a.tokens))
					visited[a.to] = epoch
					state[a.to] = 2
					x = a.to
				}
				state[v] = 2
			}
			// Back-substitute along the stack (chain into the cycle or
			// into previously processed nodes).
			for i := len(stack) - 1; i >= 0; i-- {
				u := stack[i]
				if state[u] == 2 && visited[u] == epoch {
					continue
				}
				a := out[u][policy[u]]
				ratioN[u], ratioD[u] = ratioN[a.to], ratioD[a.to]
				lam := ratioN[u] / float64(ratioD[u])
				value[u] = value[a.to] + a.delay - lam*float64(a.tokens)
				visited[u] = epoch
				state[u] = 2
			}
		}
	}

	maxIter := n*mArcs + 16
	for iter := 0; iter < maxIter; iter++ {
		evaluate()
		improved := false
		for _, v := range nodes {
			lamV := ratioN[v] / float64(ratioD[v])
			for i, a := range out[v] {
				if i == policy[v] {
					continue
				}
				lamT := ratioN[a.to] / float64(ratioD[a.to])
				switch {
				case lamT > lamV+howardEps:
					policy[v] = i
					lamV = lamT
					improved = true
				case math.Abs(lamT-lamV) <= howardEps:
					if cand := value[a.to] + a.delay - lamV*float64(a.tokens); cand > value[v]+howardEps {
						policy[v] = i
						value[v] = cand
						improved = true
					}
				}
			}
		}
		if !improved {
			// Extract the best policy cycle's exact ratio.
			best := stat.Ratio{Num: -1, Den: 1}
			for _, v := range nodes {
				r := stat.NewRatio(ratioN[v], ratioD[v])
				if best.Less(r) {
					best = r
				}
			}
			return best.Normalize(), nil
		}
	}
	return stat.Ratio{}, fmt.Errorf("mcr: Howard did not converge on graph %q after %d iterations",
		g.Name(), maxIter)
}
