// Package mcr implements the classical maximum-cycle-ratio baselines the
// paper positions itself against in §I: Karp's algorithm (on a
// token-graph reduction), Lawler's binary search (equivalent to the
// linear-programming formulation of Burns [2]), and Howard's policy
// iteration [1]. For a Timed Signal Graph the cycle time is
//
//	λ = max over cycles C of (Σ delays on C) / (Σ tokens on C),
//
// a maximum cost-to-time ratio problem with 0/1 transit times [8, 11].
// All algorithms here operate on the repetitive core of the graph and
// are cross-validated against the paper's timing-simulation algorithm
// and the simple-cycle enumeration oracle.
package mcr

import (
	"fmt"
	"math"

	"tsg/internal/sg"
)

// tokenGraph is the reduction used by Karp's algorithm: one node per
// initially marked arc (token); an edge t1 → t2 with weight
//
//	w = delay(t1) + longest unmarked path from head(t1) to tail(t2)
//
// for every pair connected through the (acyclic) unmarked subgraph.
// Cycles of k tokens in the token graph correspond to closed walks of
// the Signal Graph containing k tokens, with weight equal to the walk's
// total delay, so the maximum mean cycle of the token graph (unit
// transit per edge) equals the maximum cycle ratio of the Signal Graph.
type tokenGraph struct {
	arcs []int // Signal Graph arc index per token node
	// w[i][j] is the edge weight from token i to token j, -Inf when j's
	// tail is unreachable from i's head through unmarked arcs.
	w [][]float64
}

// buildTokenGraph constructs the reduction. The unmarked subgraph of a
// validated graph is acyclic, so longest paths are well defined.
func buildTokenGraph(g *sg.Graph) (*tokenGraph, error) {
	var tokens []int
	for i := 0; i < g.NumArcs(); i++ {
		if g.Arc(i).Marked {
			tokens = append(tokens, i)
		}
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("mcr: graph %q has no tokens; no cycles to time", g.Name())
	}
	order, err := topoUnmarked(g)
	if err != nil {
		return nil, err
	}
	tg := &tokenGraph{arcs: tokens, w: make([][]float64, len(tokens))}
	// Tail lookup: token nodes whose arc starts at a given event.
	tailsAt := make(map[sg.EventID][]int)
	for ti, ai := range tokens {
		tailsAt[g.Arc(ai).From] = append(tailsAt[g.Arc(ai).From], ti)
	}
	dist := make([]float64, g.NumEvents())
	for ti, ai := range tokens {
		tg.w[ti] = make([]float64, len(tokens))
		for i := range tg.w[ti] {
			tg.w[ti][i] = math.Inf(-1)
		}
		// Longest unmarked-arc paths from the token's head.
		for i := range dist {
			dist[i] = math.Inf(-1)
		}
		head := g.Arc(ai).To
		dist[head] = 0
		for _, v := range order {
			if math.IsInf(dist[v], -1) {
				continue
			}
			for _, oi := range g.OutArcs(v) {
				a := g.Arc(oi)
				if a.Marked {
					continue
				}
				if d := dist[v] + a.Delay; d > dist[a.To] {
					dist[a.To] = d
				}
			}
		}
		base := g.Arc(ai).Delay
		for v := 0; v < g.NumEvents(); v++ {
			if math.IsInf(dist[v], -1) {
				continue
			}
			for _, tj := range tailsAt[sg.EventID(v)] {
				if w := base + dist[v]; w > tg.w[ti][tj] {
					tg.w[ti][tj] = w
				}
			}
		}
	}
	return tg, nil
}

// topoUnmarked returns a topological order of the unmarked subgraph.
func topoUnmarked(g *sg.Graph) ([]sg.EventID, error) {
	n := g.NumEvents()
	indeg := make([]int, n)
	for i := 0; i < g.NumArcs(); i++ {
		if !g.Arc(i).Marked {
			indeg[g.Arc(i).To]++
		}
	}
	queue := make([]sg.EventID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, sg.EventID(i))
		}
	}
	order := make([]sg.EventID, 0, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, ai := range g.OutArcs(v) {
			a := g.Arc(ai)
			if a.Marked {
				continue
			}
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("mcr: graph %q has an unmarked cycle (not live)", g.Name())
	}
	return order, nil
}

// TokenSystem exposes the token-graph reduction for other analyses (the
// max-plus view of package maxplus): weights[i][j] is the longest-path
// weight from token i to token j (-Inf where unconnected), and tokenArcs
// lists the marked arc index each token sits on.
func TokenSystem(g *sg.Graph) (weights [][]float64, tokenArcs []int, err error) {
	tg, err := buildTokenGraph(g)
	if err != nil {
		return nil, nil, err
	}
	return tg.w, tg.arcs, nil
}
