package mcr_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/cycles"
	"tsg/internal/gen"
	"tsg/internal/mcr"
	"tsg/internal/sg"
)

func TestKarpOscillator(t *testing.T) {
	r, err := mcr.Karp(gen.Oscillator())
	if err != nil {
		t.Fatalf("Karp: %v", err)
	}
	if r.Float() != 10 {
		t.Errorf("Karp λ = %v, want 10", r)
	}
}

func TestHowardOscillator(t *testing.T) {
	r, err := mcr.Howard(gen.Oscillator())
	if err != nil {
		t.Fatalf("Howard: %v", err)
	}
	if r.Float() != 10 {
		t.Errorf("Howard λ = %v, want 10", r)
	}
}

func TestLawlerOscillator(t *testing.T) {
	l, err := mcr.Lawler(gen.Oscillator(), 1e-9)
	if err != nil {
		t.Fatalf("Lawler: %v", err)
	}
	if math.Abs(l-10) > 1e-6 {
		t.Errorf("Lawler λ = %g, want 10±1e-6", l)
	}
}

func TestRing20Over3(t *testing.T) {
	g, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	rk, err := mcr.Karp(g)
	if err != nil {
		t.Fatalf("Karp: %v", err)
	}
	if rk.Num != 20 || rk.Den != 3 {
		t.Errorf("Karp ring λ = %v, want 20/3", rk)
	}
	rh, err := mcr.Howard(g)
	if err != nil {
		t.Fatalf("Howard: %v", err)
	}
	if rh.Num != 20 || rh.Den != 3 {
		t.Errorf("Howard ring λ = %v, want 20/3", rh)
	}
	rl, err := mcr.Lawler(g, 1e-9)
	if err != nil {
		t.Fatalf("Lawler: %v", err)
	}
	if math.Abs(rl-20.0/3) > 1e-6 {
		t.Errorf("Lawler ring λ = %g, want 20/3±1e-6", rl)
	}
}

// TestAllAgainstOracle cross-validates the three baselines against the
// simple-cycle enumeration oracle on random live graphs.
func TestAllAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("trial %d: RandomLive: %v", trial, err)
		}
		want, _, err := cycles.MaxRatio(g, 0)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		if rk, err := mcr.Karp(g); err != nil {
			t.Errorf("trial %d: Karp error: %v", trial, err)
		} else if !rk.Equal(want) {
			t.Errorf("trial %d: %s: Karp = %v, oracle = %v", trial, g, rk, want)
		}
		if rh, err := mcr.Howard(g); err != nil {
			t.Errorf("trial %d: Howard error: %v", trial, err)
		} else if !rh.Equal(want) {
			t.Errorf("trial %d: %s: Howard = %v, oracle = %v", trial, g, rh, want)
		}
		if rl, err := mcr.Lawler(g, 1e-9); err != nil {
			t.Errorf("trial %d: Lawler error: %v", trial, err)
		} else if math.Abs(rl-want.Float()) > 1e-6 {
			t.Errorf("trial %d: %s: Lawler = %g, oracle = %v", trial, g, rl, want)
		}
	}
}

func TestFeasiblePotential(t *testing.T) {
	g := gen.Oscillator()
	// At λ = λ* = 10 a potential exists and certifies every arc.
	u, err := mcr.FeasiblePotential(g, 10)
	if err != nil {
		t.Fatalf("FeasiblePotential(10): %v", err)
	}
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if a.Once || !g.Event(a.From).Repetitive || !g.Event(a.To).Repetitive {
			continue
		}
		w := a.Delay
		if a.Marked {
			w -= 10
		}
		if u[a.To] < u[a.From]+w-1e-9 {
			t.Errorf("potential violated on arc %s->%s: u=%g, need >= %g",
				g.Event(a.From).Name, g.Event(a.To).Name, u[a.To], u[a.From]+w)
		}
	}
	// Below λ* no potential exists (Burns LP infeasible).
	if _, err := mcr.FeasiblePotential(g, 9.5); err == nil {
		t.Error("FeasiblePotential(9.5) succeeded, want infeasible")
	}
}

func TestErrorPaths(t *testing.T) {
	// Tokenless graph.
	tokenless, err := sg.NewBuilder("tokenless").Events("a+", "b+").
		Arc("a+", "b+", 1).Arc("b+", "a+", 1).BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked: %v", err)
	}
	if _, err := mcr.Karp(tokenless); err == nil {
		t.Error("Karp on unmarked-cycle graph succeeded")
	}
	if _, err := mcr.Lawler(tokenless, 0); err == nil {
		t.Error("Lawler on unmarked-cycle graph succeeded")
	}
	// No repetitive events.
	acyclic, err := sg.NewBuilder("acyclic").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Arc("e-", "f-", 1).BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked: %v", err)
	}
	if _, err := mcr.Howard(acyclic); err == nil {
		t.Error("Howard on acyclic graph succeeded")
	}
	if _, err := mcr.Karp(acyclic); err == nil {
		t.Error("Karp on acyclic graph succeeded")
	}
}

func TestStackBaselines(t *testing.T) {
	g, err := gen.Stack(8)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	rk, err := mcr.Karp(g)
	if err != nil {
		t.Fatalf("Karp: %v", err)
	}
	if rk.Float() != 4 {
		t.Errorf("Karp stack λ = %v, want 4", rk)
	}
	rh, err := mcr.Howard(g)
	if err != nil {
		t.Fatalf("Howard: %v", err)
	}
	if rh.Float() != 4 {
		t.Errorf("Howard stack λ = %v, want 4", rh)
	}
}
