package cycletime_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// ctxGraph builds a graph large enough that MC samples and sweep
// candidates take a measurable number of work units, so cancellation
// has loop iterations to land between.
func ctxGraph(t testing.TB) *sg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 150, Border: 8, ExtraArcs: 150, MaxDelay: 12})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	return g
}

// TestAnalyzeMCCtxCancelled: a context cancelled before the run starts
// must stop it without evaluating to completion, returning ctx.Err(),
// and leave the session usable — the very next uncancelled query
// answers normally with the baseline λ.
func TestAnalyzeMCCtxCancelled(t *testing.T) {
	g := ctxGraph(t)
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	base, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.AnalyzeMCCtx(ctx, pointModel(t, g), cycletime.MCOptions{Samples: 4096, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeMCCtx on cancelled ctx: %v, want context.Canceled", err)
	}
	// The cancelled run committed nothing: baseline λ unchanged.
	after, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze after cancelled MC: %v", err)
	}
	if !after.CycleTime.Equal(base.CycleTime) {
		t.Fatalf("baseline λ moved across cancelled MC: %v -> %v", base.CycleTime, after.CycleTime)
	}
	// An uncancelled run on the same engine still works.
	res, err := e.AnalyzeMC(pointModel(t, g), cycletime.MCOptions{Samples: 32, Workers: 2})
	if err != nil {
		t.Fatalf("AnalyzeMC after cancellation: %v", err)
	}
	if res.Mean != base.CycleTime.Float() {
		t.Fatalf("post-cancel MC mean %v, want %v", res.Mean, base.CycleTime.Float())
	}
}

// TestSlacksMCCtxCancelled covers the scalar (per-sample) MC path,
// which slack runs always take.
func TestSlacksMCCtxCancelled(t *testing.T) {
	g := ctxGraph(t)
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = e.SlacksMCCtx(ctx, pointModel(t, g), cycletime.MCOptions{Samples: 4096, Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SlacksMCCtx on cancelled ctx: %v, want context.Canceled", err)
	}
}

// TestSensitivitySweepCtxCancelled: full-analysis sweep candidates
// (delay decreases, never certified) must observe cancellation; and a
// cancelled sweep must not poison the session.
func TestSensitivitySweepCtxCancelled(t *testing.T) {
	g := ctxGraph(t)
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Decrease every arc's delay: decreases below the certified band
	// need a full analysis each, the sweep path that checks ctx.
	var cands []cycletime.WhatIf
	for i := 0; i < g.NumArcs() && len(cands) < 64; i++ {
		if d := g.Arc(i).Delay; d > 0 {
			cands = append(cands, cycletime.WhatIf{Arc: i, Delay: 0})
		}
	}
	if len(cands) == 0 {
		t.Fatal("fixture has no positive-delay arcs")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.SensitivitySweepCtx(ctx, cands)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SensitivitySweepCtx on cancelled ctx: %v, want context.Canceled", err)
	}
	// Same sweep, live context: must succeed and match Sensitivity.
	out, err := e.SensitivitySweep(cands)
	if err != nil {
		t.Fatalf("SensitivitySweep after cancellation: %v", err)
	}
	one, err := e.Sensitivity(cands[0].Arc, cands[0].Delay)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if !out[0].Equal(one) {
		t.Fatalf("sweep[0] = %v, Sensitivity = %v", out[0], one)
	}
}

// TestAnalyzeMCCtxDeterminismUnaffected: threading a live context
// through must not perturb results — AnalyzeMCCtx(Background) is
// bit-identical to AnalyzeMC.
func TestAnalyzeMCCtxDeterminismUnaffected(t *testing.T) {
	g := ctxGraph(t)
	m, err := gen.UniformJitter(g, 0.2)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	opts := cycletime.MCOptions{Samples: 64, Seed: 42, Workers: 2}
	e1, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e1.AnalyzeMC(m, opts)
	if err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	r2, err := e2.AnalyzeMCCtx(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("AnalyzeMCCtx: %v", err)
	}
	if r1.Mean != r2.Mean || r1.Variance != r2.Variance || r1.Min != r2.Min || r1.Max != r2.Max {
		t.Fatalf("ctx variant diverged: %+v vs %+v", r1, r2)
	}
}
