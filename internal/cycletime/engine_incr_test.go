package cycletime

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/sg"
)

// sameResult fails unless two analysis results agree bitwise: λ as an
// exact ratio, every distance series entry, the best indices, the
// on-critical flags, and the critical cycles (events, arcs, length,
// period — so the parent pointers behind the backtracking agree too).
func sameResult(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !got.CycleTime.Equal(want.CycleTime) {
		t.Fatalf("%s: λ = %v, want %v", label, got.CycleTime, want.CycleTime)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("%s: %d series, want %d", label, len(got.Series), len(want.Series))
	}
	for i := range got.Series {
		gs, ws := &got.Series[i], &want.Series[i]
		if gs.Event != ws.Event || gs.BestIndex != ws.BestIndex ||
			!gs.Best.Equal(ws.Best) || gs.OnCritical != ws.OnCritical {
			t.Fatalf("%s: series %d header (%v,%d,%v,%v), want (%v,%d,%v,%v)", label, i,
				gs.Event, gs.BestIndex, gs.Best, gs.OnCritical,
				ws.Event, ws.BestIndex, ws.Best, ws.OnCritical)
		}
		for j := range gs.Distances {
			g, w := gs.Distances[j], ws.Distances[j]
			if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
				t.Fatalf("%s: series %d distance %d = %v, want %v", label, i, j, g, w)
			}
		}
	}
	if len(got.Critical) != len(want.Critical) {
		t.Fatalf("%s: %d critical cycles, want %d", label, len(got.Critical), len(want.Critical))
	}
	for k := range got.Critical {
		gc, wc := &got.Critical[k], &want.Critical[k]
		if gc.Length != wc.Length || gc.Period != wc.Period ||
			len(gc.Events) != len(wc.Events) || len(gc.Arcs) != len(wc.Arcs) {
			t.Fatalf("%s: cycle %d shape differs: %+v vs %+v", label, k, gc, wc)
		}
		for i := range gc.Arcs {
			if gc.Events[i] != wc.Events[i] || gc.Arcs[i] != wc.Arcs[i] {
				t.Fatalf("%s: cycle %d step %d (%v,%d), want (%v,%d)",
					label, k, i, gc.Events[i], gc.Arcs[i], wc.Events[i], wc.Arcs[i])
			}
		}
	}
}

// sameSlacks fails unless two slack certificates agree exactly.
func sameSlacks(t *testing.T, got, want []ArcSlack, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d slacks, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: slack %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// editWalk drives one random edit walk over a graph, comparing the
// incremental session against a from-scratch engine after every edit.
func editWalk(t *testing.T, rng *rand.Rand, g *sg.Graph, edits int, checkEvery int) {
	t.Helper()
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	m := g.NumArcs()
	delays := make([]float64, m)
	for i := range delays {
		delays[i] = g.Arc(i).Delay
	}
	for step := 0; step < edits; step++ {
		arc := rng.Intn(m)
		var d float64
		switch rng.Intn(4) {
		case 0:
			d = float64(rng.Intn(10))
		case 1:
			d = delays[arc] * (0.5 + rng.Float64())
		case 2:
			d = delays[arc] // no-op commit
		default:
			d = delays[arc] + rng.Float64()*3
		}
		if err := eng.SetDelay(arc, d); err != nil {
			t.Fatalf("step %d: SetDelay(%d, %g): %v", step, arc, d, err)
		}
		delays[arc] = d

		got, err := eng.Analyze()
		if err != nil {
			t.Fatalf("step %d: incremental Analyze: %v", step, err)
		}
		if step%checkEvery != 0 && step != edits-1 {
			continue
		}
		// The from-scratch oracle: a fresh engine over a fresh graph at
		// exactly the committed delays.
		fg, err := g.WithDelays(func(i int, _ float64) float64 { return delays[i] })
		if err != nil {
			t.Fatalf("step %d: WithDelays: %v", step, err)
		}
		fresh, err := NewEngine(fg)
		if err != nil {
			t.Fatalf("step %d: fresh NewEngine: %v", step, err)
		}
		want, err := fresh.Analyze()
		if err != nil {
			t.Fatalf("step %d: fresh Analyze: %v", step, err)
		}
		sameResult(t, got, want, "edit step")
		gs, err := eng.Slacks()
		if err != nil {
			t.Fatalf("step %d: incremental Slacks: %v", step, err)
		}
		ws, err := fresh.Slacks()
		if err != nil {
			t.Fatalf("step %d: fresh Slacks: %v", step, err)
		}
		sameSlacks(t, gs, ws, "edit step")
	}
	st := eng.Stats()
	if st.IncrementalAnalyses == 0 {
		t.Errorf("edit walk of %d edits ran %d incremental analyses; the patch path never engaged (%d full analyses)",
			edits, st.IncrementalAnalyses, st.Analyses)
	}
}

// TestIncrementalCommitDifferential: random graphs, random edit walks —
// the incremental session must stay bit-identical to a from-scratch
// engine after every committed edit: λ, series, critical cycles (which
// pin the patched parent pointers) and slack certificates.
func TestIncrementalCommitDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(14)
		b := 1 + rng.Intn(n/2+1)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		editWalk(t, rng, g, 25, 1)
	}
}

// TestIncrementalCommitLongWalk is the acceptance-shaped walk: one
// random graph, one 200-edit random sequence, bit-identical against
// the from-scratch oracle at every fourth step (and the last).
func TestIncrementalCommitLongWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g, err := gen.RandomLive(rng, gen.RandomOptions{
		Events: 60, Border: 5, ExtraArcs: 60, MaxDelay: 16,
	})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	editWalk(t, rng, g, 200, 4)
}

// TestIncrementalMatchesNoIncremental: the NoIncremental ablation
// engine and the default engine answer identically along an edit walk,
// and only the default one uses the patch path.
func TestIncrementalMatchesNoIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g, err := gen.RandomLive(rng, gen.RandomOptions{
		Events: 30, Border: 4, ExtraArcs: 30, MaxDelay: 9,
	})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	inc, err := NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	full, err := NewEngineOpts(g, Options{NoIncremental: true})
	if err != nil {
		t.Fatalf("NewEngineOpts: %v", err)
	}
	for step := 0; step < 40; step++ {
		arc := rng.Intn(g.NumArcs())
		d := float64(rng.Intn(12))
		if err := inc.SetDelay(arc, d); err != nil {
			t.Fatalf("SetDelay: %v", err)
		}
		if err := full.SetDelay(arc, d); err != nil {
			t.Fatalf("SetDelay: %v", err)
		}
		ri, err := inc.Analyze()
		if err != nil {
			t.Fatalf("incremental Analyze: %v", err)
		}
		rf, err := full.Analyze()
		if err != nil {
			t.Fatalf("full Analyze: %v", err)
		}
		sameResult(t, ri, rf, "vs NoIncremental")
	}
	if st := full.Stats(); st.IncrementalAnalyses != 0 {
		t.Errorf("NoIncremental engine ran %d incremental analyses", st.IncrementalAnalyses)
	}
	if st := inc.Stats(); st.IncrementalAnalyses == 0 {
		t.Error("default engine never used the incremental path")
	}
}

// TestIncrementalResetDelays: ResetDelays is an incremental commit and
// restores the exact compile-time baseline.
func TestIncrementalResetDelays(t *testing.T) {
	g, err := gen.Stack(7)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	base, err := eng.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	rng := rand.New(rand.NewSource(53))
	for k := 0; k < 10; k++ {
		if err := eng.SetDelay(rng.Intn(g.NumArcs()), float64(rng.Intn(9))); err != nil {
			t.Fatalf("SetDelay: %v", err)
		}
	}
	if _, err := eng.Analyze(); err != nil {
		t.Fatalf("edited Analyze: %v", err)
	}
	eng.ResetDelays()
	back, err := eng.Analyze()
	if err != nil {
		t.Fatalf("reset Analyze: %v", err)
	}
	sameResult(t, back, base, "after ResetDelays")

	// A reset with nothing to restore keeps the warm certificate.
	a := eng.Stats().Analyses + eng.Stats().IncrementalAnalyses
	eng.ResetDelays()
	if _, err := eng.Analyze(); err != nil {
		t.Fatalf("noop-reset Analyze: %v", err)
	}
	if got := eng.Stats().Analyses + eng.Stats().IncrementalAnalyses; got != a {
		t.Errorf("no-op ResetDelays re-analysed (%d -> %d)", a, got)
	}
}

// TestIncrementalRowInvalidation: what-if rows built before a commit
// keep answering exactly after it — arcs outside the edit's forward
// cone keep their rows, arcs inside are rebuilt — by comparing every
// sweep answer against the independent one-shot Sensitivity oracle.
func TestIncrementalRowInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g, err := gen.RandomLive(rng, gen.RandomOptions{
		Events: 25, Border: 3, ExtraArcs: 25, MaxDelay: 9,
	})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	eng, err := NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	sweep := func(cur *sg.Graph) {
		t.Helper()
		cands := make([]WhatIf, cur.NumArcs())
		for i := range cands {
			cands[i] = WhatIf{Arc: i, Delay: cur.Arc(i).Delay*1.5 + 1}
		}
		got, err := eng.SensitivitySweep(cands)
		if err != nil {
			t.Fatalf("SensitivitySweep: %v", err)
		}
		for i, cd := range cands {
			want, err := Sensitivity(cur, cd.Arc, cd.Delay)
			if err != nil {
				t.Fatalf("oracle Sensitivity(%d): %v", cd.Arc, err)
			}
			if !got[i].Equal(want) {
				t.Fatalf("sweep arc %d: λ = %v, oracle %v", cd.Arc, got[i], want)
			}
		}
	}
	cur := g
	sweep(cur) // builds rows for every arc
	for step := 0; step < 6; step++ {
		arc := rng.Intn(g.NumArcs())
		d := float64(1 + rng.Intn(9))
		if err := eng.SetDelay(arc, d); err != nil {
			t.Fatalf("SetDelay: %v", err)
		}
		var err error
		if cur, err = cur.WithArcDelay(arc, d); err != nil {
			t.Fatalf("WithArcDelay: %v", err)
		}
		sweep(cur)
	}
}
