package cycletime

import (
	"tsg/internal/sg"
	"tsg/internal/stat"
)

// Bounds is the outcome of an interval-delay analysis.
type Bounds struct {
	// Min and Max bound the cycle time over all delay assignments
	// within the given intervals.
	Min, Max stat.Ratio
	// MinResult and MaxResult are the full analyses at the extreme
	// assignments (critical cycles, series).
	MinResult, MaxResult *Result
}

// AnalyzeBounds computes guaranteed cycle-time bounds when every arc
// delay may vary inside [lo(a), hi(a)]: the cycle time of a Timed
// Signal Graph is monotone in each delay (it is a maximum of sums), so
// analysing the two extreme assignments brackets every assignment in
// between. This is the fixed-delay-pair answer to the interval-delay
// question the paper defers to the min-max function theory of
// Gunawardena [7].
//
// One-shot wrapper over Engine.AnalyzeBounds, which runs the two
// independent extreme analyses concurrently.
func AnalyzeBounds(g *sg.Graph, lo, hi func(arc int, nominal float64) float64) (*Bounds, error) {
	e, err := NewEngine(g)
	if err != nil {
		return nil, err
	}
	return e.AnalyzeBounds(lo, hi)
}

// Jitter builds the +-fraction interval functions for AnalyzeBounds:
// lo = (1-f)·nominal, hi = (1+f)·nominal.
func Jitter(f float64) (lo, hi func(int, float64) float64) {
	return func(_ int, d float64) float64 { return (1 - f) * d },
		func(_ int, d float64) float64 { return (1 + f) * d }
}
