package cycletime_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// modeFixtures are the generator graphs the scheduling modes are
// cross-checked on.
func modeFixtures(t testing.TB) map[string]*sg.Graph {
	t.Helper()
	fx := map[string]*sg.Graph{"oscillator": gen.Oscillator()}
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	fx["ring5"] = ring
	stack, err := gen.Stack(13)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	fx["stack13"] = stack
	pipe, err := gen.MullerPipeline(6, 2, 1, 1)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	fx["pipeline6"] = pipe
	return fx
}

// diffResults fails unless the two analysis results are identical:
// cycle time, per-event series (values bitwise, NaN = NaN), criticality
// flags and critical cycles in discovery order.
func diffResults(t *testing.T, got, want *cycletime.Result) {
	t.Helper()
	if !got.CycleTime.Equal(want.CycleTime) {
		t.Fatalf("λ: got %v, want %v", got.CycleTime, want.CycleTime)
	}
	if got.Periods != want.Periods {
		t.Fatalf("periods: got %d, want %d", got.Periods, want.Periods)
	}
	if len(got.Series) != len(want.Series) {
		t.Fatalf("series count: got %d, want %d", len(got.Series), len(want.Series))
	}
	for i := range want.Series {
		gs, ws := got.Series[i], want.Series[i]
		if gs.Event != ws.Event || gs.BestIndex != ws.BestIndex ||
			!gs.Best.Equal(ws.Best) || gs.OnCritical != ws.OnCritical {
			t.Fatalf("series[%d]: got %+v, want %+v", i, gs, ws)
		}
		for j := range ws.Distances {
			g, w := gs.Distances[j], ws.Distances[j]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("series[%d].Distances[%d]: got %v, want %v", i, j, g, w)
			}
		}
	}
	if len(got.Critical) != len(want.Critical) {
		t.Fatalf("critical cycles: got %d, want %d", len(got.Critical), len(want.Critical))
	}
	for i := range want.Critical {
		gc, wc := got.Critical[i], want.Critical[i]
		if gc.Length != wc.Length || gc.Period != wc.Period ||
			len(gc.Arcs) != len(wc.Arcs) {
			t.Fatalf("critical[%d]: got %+v, want %+v", i, gc, wc)
		}
		for j := range wc.Arcs {
			if gc.Arcs[j] != wc.Arcs[j] || gc.Events[j] != wc.Events[j] {
				t.Fatalf("critical[%d] arc %d differs", i, j)
			}
		}
	}
}

// TestAnalyzeSchedulingDeterminism verifies that forced-serial,
// forced-parallel and automatic scheduling produce identical results —
// the simulations are independent and the per-index reductions exact, so
// any divergence is a bug in the worker pool or the slab reuse.
func TestAnalyzeSchedulingDeterminism(t *testing.T) {
	for name, g := range modeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := cycletime.AnalyzeOpts(g, cycletime.Options{Serial: true})
			if err != nil {
				t.Fatalf("serial Analyze: %v", err)
			}
			parallel, err := cycletime.AnalyzeOpts(g, cycletime.Options{Parallel: true})
			if err != nil {
				t.Fatalf("parallel Analyze: %v", err)
			}
			diffResults(t, parallel, serial)
			auto, err := cycletime.AnalyzeOpts(g, cycletime.Options{})
			if err != nil {
				t.Fatalf("auto Analyze: %v", err)
			}
			diffResults(t, auto, serial)
		})
	}
}

// TestAnalyzeSchedulingDeterminismRandom repeats the cross-check on
// seeded random live graphs, including border sizes straddling the
// auto-parallel threshold.
func TestAnalyzeSchedulingDeterminismRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for _, border := range []int{2, 7, 8, 16} {
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: 150, Border: border, ExtraArcs: 300, MaxDelay: 16,
		})
		if err != nil {
			t.Fatalf("RandomLive(b=%d): %v", border, err)
		}
		t.Run(fmt.Sprintf("b=%d", border), func(t *testing.T) {
			serial, err := cycletime.AnalyzeOpts(g, cycletime.Options{Serial: true})
			if err != nil {
				t.Fatalf("serial Analyze: %v", err)
			}
			for rep := 0; rep < 3; rep++ {
				parallel, err := cycletime.AnalyzeOpts(g, cycletime.Options{Parallel: true})
				if err != nil {
					t.Fatalf("parallel Analyze: %v", err)
				}
				diffResults(t, parallel, serial)
			}
		})
	}
}
