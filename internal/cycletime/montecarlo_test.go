package cycletime_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/dist"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// pointModel returns the deterministic all-point model of g.
func pointModel(t testing.TB, g *sg.Graph) *dist.Model {
	t.Helper()
	m, err := gen.PointModel(g)
	if err != nil {
		t.Fatalf("PointModel: %v", err)
	}
	return m
}

// TestAnalyzeMCPointPin is the differential pin of the statistical
// subsystem: Monte-Carlo over all-point distributions must reproduce
// the deterministic analysis exactly — λ bit-identical at every
// statistic, zero variance, and criticality in {0,1} matching the
// arcs of the deterministic critical cycles.
func TestAnalyzeMCPointPin(t *testing.T) {
	fixtures := modeFixtures(t)
	rng := rand.New(rand.NewSource(99))
	rg, err := gen.RandomLive(rng, gen.RandomOptions{Events: 120, Border: 6, ExtraArcs: 120, MaxDelay: 16})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	fixtures["random120"] = rg
	for name, g := range fixtures {
		t.Run(name, func(t *testing.T) {
			det, err := cycletime.Analyze(g)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			lam := det.CycleTime.Float()
			res, err := cycletime.AnalyzeMC(g, pointModel(t, g), cycletime.MCOptions{
				Samples: 96, Quantiles: []float64{0.25, 0.5, 0.95}, Criticality: true, Workers: 2,
			})
			if err != nil {
				t.Fatalf("AnalyzeMC: %v", err)
			}
			if res.Samples != 96 {
				t.Fatalf("Samples = %d, want 96", res.Samples)
			}
			if res.Mean != lam || res.Min != lam || res.Max != lam {
				t.Fatalf("MC λ = mean %v min %v max %v, deterministic λ = %v",
					res.Mean, res.Min, res.Max, lam)
			}
			if res.Variance != 0 || res.Std != 0 {
				t.Fatalf("MC variance = %v (std %v), want exactly 0", res.Variance, res.Std)
			}
			for _, q := range res.Quantiles {
				if q.Value != lam {
					t.Fatalf("quantile %g = %v, want %v", q.P, q.Value, lam)
				}
				if q.CIHalf != 0 {
					t.Fatalf("quantile %g CI half-width = %v, want 0", q.P, q.CIHalf)
				}
			}
			// Criticality must be exactly the indicator of the union of
			// deterministic critical cycles.
			onCrit := make([]bool, g.NumArcs())
			for _, cyc := range det.Critical {
				for _, ai := range cyc.Arcs {
					onCrit[ai] = true
				}
			}
			if len(res.Criticality) != g.NumArcs() {
				t.Fatalf("criticality covers %d arcs, want %d", len(res.Criticality), g.NumArcs())
			}
			for i, c := range res.Criticality {
				want := 0.0
				if onCrit[i] {
					want = 1.0
				}
				if c != want {
					t.Fatalf("arc %d criticality = %v, want %v", i, c, want)
				}
			}
		})
	}
}

// TestAnalyzeMCDeterministic: the same seed and worker count reproduce
// every estimate bit-identically; and with early stopping off, the λ
// statistics agree across worker counts (ordered coordinator merge).
func TestAnalyzeMCDeterministic(t *testing.T) {
	g, err := gen.Stack(13)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	model, err := gen.UniformJitter(g, 0.2)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	opts := cycletime.MCOptions{Samples: 160, Seed: 42, Quantiles: []float64{0.5, 0.9}, Criticality: true, Workers: 3}
	run := func(workers int) *cycletime.MCResult {
		o := opts
		o.Workers = workers
		res, err := cycletime.AnalyzeMC(g, model, o)
		if err != nil {
			t.Fatalf("AnalyzeMC(workers=%d): %v", workers, err)
		}
		return res
	}
	a, b := run(3), run(3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed + worker count gave different results:\n%+v\nvs\n%+v", a, b)
	}
	c := run(1)
	if a.Mean != c.Mean || a.Variance != c.Variance || a.Min != c.Min || a.Max != c.Max ||
		!reflect.DeepEqual(a.Quantiles, c.Quantiles) {
		t.Fatalf("λ statistics differ across worker counts without early stop:\n%+v\nvs\n%+v", a, c)
	}
	if !reflect.DeepEqual(a.Criticality, c.Criticality) {
		t.Fatalf("criticality differs across worker counts (integer counts must be exact)")
	}
	if a.Variance <= 0 {
		t.Fatalf("jittered model produced zero λ variance; workload too degenerate for this test")
	}
}

// TestAnalyzeMCBatchMatchesScalar: the λ-only runs take the batch
// kernel with block-level pruning, criticality runs the scalar path
// with per-sample pruning — same seed must give bit-identical λ
// statistics either way.
func TestAnalyzeMCBatchMatchesScalar(t *testing.T) {
	for name, g := range modeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			model, err := gen.UniformJitter(g, 0.25)
			if err != nil {
				t.Fatalf("UniformJitter: %v", err)
			}
			opts := cycletime.MCOptions{Samples: 100, Seed: 23, Quantiles: []float64{0.5, 0.9}}
			batch, err := cycletime.AnalyzeMC(g, model, opts)
			if err != nil {
				t.Fatalf("AnalyzeMC(batch): %v", err)
			}
			opts.Criticality = true
			scalar, err := cycletime.AnalyzeMC(g, model, opts)
			if err != nil {
				t.Fatalf("AnalyzeMC(scalar): %v", err)
			}
			if batch.Mean != scalar.Mean || batch.Variance != scalar.Variance ||
				batch.Min != scalar.Min || batch.Max != scalar.Max {
				t.Fatalf("batch λ stats %+v differ from scalar %+v", batch, scalar)
			}
			if !reflect.DeepEqual(batch.Quantiles, scalar.Quantiles) {
				t.Fatalf("batch quantiles %+v differ from scalar %+v", batch.Quantiles, scalar.Quantiles)
			}
		})
	}
}

// TestAnalyzeMCWithinBounds: under ±frac jitter models, every sampled λ
// — and hence min, max, mean and all quantiles — must lie inside the
// AnalyzeBounds interval of the same ±frac, because the model supports
// are exactly the bounds' delay intervals and λ is monotone in delays.
func TestAnalyzeMCWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 200, Border: 5, ExtraArcs: 200, MaxDelay: 16})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	const frac = 0.15
	lo, hi := cycletime.Jitter(frac)
	bounds, err := cycletime.AnalyzeBounds(g, lo, hi)
	if err != nil {
		t.Fatalf("AnalyzeBounds: %v", err)
	}
	bLo, bHi := bounds.Min.Float(), bounds.Max.Float()
	for _, mk := range []struct {
		name string
		make func() (*dist.Model, error)
	}{
		{"uniform", func() (*dist.Model, error) { return gen.UniformJitter(g, frac) }},
		{"normal", func() (*dist.Model, error) { return gen.NormalJitter(g, frac) }},
		{"correlated", func() (*dist.Model, error) { return gen.CorrelatedJitter(g, frac, 4) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			model, err := mk.make()
			if err != nil {
				t.Fatalf("model: %v", err)
			}
			res, err := cycletime.AnalyzeMC(g, model, cycletime.MCOptions{
				Samples: 192, Seed: 5, Quantiles: []float64{0.05, 0.5, 0.95},
			})
			if err != nil {
				t.Fatalf("AnalyzeMC: %v", err)
			}
			// Float tolerance: the bounds extremes and the samples follow
			// different summation orders.
			const eps = 1e-9
			inside := func(what string, v float64) {
				if v < bLo-eps*math.Abs(bLo) || v > bHi+eps*math.Abs(bHi) {
					t.Fatalf("%s = %v outside bounds [%v, %v]", what, v, bLo, bHi)
				}
			}
			inside("min λ", res.Min)
			inside("max λ", res.Max)
			inside("mean λ", res.Mean)
			for _, q := range res.Quantiles {
				inside("quantile", q.Value)
			}
			if res.Max-res.Min <= 0 {
				t.Fatalf("jittered λ has zero spread; model ineffective")
			}
		})
	}
}

// TestAnalyzeMCEarlyStop: with a generous tolerance the run converges
// before the sample budget; with Tol 0 it never stops early.
func TestAnalyzeMCEarlyStop(t *testing.T) {
	g, err := gen.Stack(13)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	model, err := gen.UniformJitter(g, 0.1)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	res, err := cycletime.AnalyzeMC(g, model, cycletime.MCOptions{
		Samples: 4096, MinSamples: 64, Seed: 1, Tol: 10, Workers: 2,
	})
	if err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	if !res.Converged {
		t.Fatalf("run with huge tolerance did not converge early")
	}
	if res.Samples >= 4096 {
		t.Fatalf("converged run evaluated the full budget (%d samples)", res.Samples)
	}
	full, err := cycletime.AnalyzeMC(g, model, cycletime.MCOptions{Samples: 128, Seed: 1})
	if err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	if full.Converged || full.Samples != 128 {
		t.Fatalf("Tol=0 run stopped early: %+v", full)
	}
	// A degenerate model converges as soon as the first check runs.
	point, err := cycletime.AnalyzeMC(g, pointModel(t, g), cycletime.MCOptions{
		Samples: 4096, MinSamples: 32, Tol: 1e-12,
	})
	if err != nil {
		t.Fatalf("AnalyzeMC(point): %v", err)
	}
	if !point.Converged || point.Samples >= 4096 {
		t.Fatalf("point model did not early-stop: samples=%d converged=%v", point.Samples, point.Converged)
	}
}

// TestSlacksMC: under an all-point model the slack distribution rows
// collapse to the session slack certificate (zero spread, TightFrac in
// {0,1} agreeing with Tight); under jitter the rows stay consistent
// (min <= mean <= max, spread on at least one arc, and every
// deterministic-tight arc keeps high tight fraction support).
func TestSlacksMC(t *testing.T) {
	g := gen.Oscillator()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	detSlacks, err := e.Slacks()
	if err != nil {
		t.Fatalf("Slacks: %v", err)
	}
	rows, res, err := e.SlacksMC(pointModel(t, g), cycletime.MCOptions{Samples: 48, Workers: 2})
	if err != nil {
		t.Fatalf("SlacksMC(point): %v", err)
	}
	if res.Variance != 0 {
		t.Fatalf("point SlacksMC λ variance = %v", res.Variance)
	}
	if len(rows) != len(detSlacks) {
		t.Fatalf("SlacksMC rows = %d, deterministic slacks = %d", len(rows), len(detSlacks))
	}
	for i, r := range rows {
		d := detSlacks[i]
		if r.Arc != d.Arc {
			t.Fatalf("row %d arc %d, deterministic arc %d", i, r.Arc, d.Arc)
		}
		if r.Mean != d.Slack || r.Min != d.Slack || r.Max != d.Slack || r.Std != 0 {
			t.Fatalf("arc %d slack stats %+v, deterministic slack %v", r.Arc, r, d.Slack)
		}
		wantTight := 0.0
		if d.Tight {
			wantTight = 1.0
		}
		if r.TightFrac != wantTight {
			t.Fatalf("arc %d TightFrac = %v, deterministic Tight = %v", r.Arc, r.TightFrac, d.Tight)
		}
	}
	// Jittered: sanity structure.
	model, err := gen.UniformJitter(g, 0.2)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	jrows, jres, err := e.SlacksMC(model, cycletime.MCOptions{Samples: 96, Seed: 3, Workers: 2})
	if err != nil {
		t.Fatalf("SlacksMC(jitter): %v", err)
	}
	if jres.Variance <= 0 {
		t.Fatalf("jittered SlacksMC λ variance = %v, want > 0", jres.Variance)
	}
	spread := false
	for _, r := range jrows {
		if r.Min > r.Mean+1e-12 || r.Mean > r.Max+1e-12 {
			t.Fatalf("arc %d slack stats inconsistent: %+v", r.Arc, r)
		}
		if r.Max-r.Min > 1e-9 {
			spread = true
		}
		if r.TightFrac < 0 || r.TightFrac > 1 {
			t.Fatalf("arc %d TightFrac = %v", r.Arc, r.TightFrac)
		}
	}
	if !spread {
		t.Fatalf("jittered slacks show no spread on any arc")
	}
}

// TestAnalyzeMCSessionIntact: a Monte-Carlo run must leave the session
// baseline untouched — the cached certificate still answers queries at
// the original delays.
func TestAnalyzeMCSessionIntact(t *testing.T) {
	g := gen.Oscillator()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	before, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	model, err := gen.UniformJitter(g, 0.3)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	if _, err := e.AnalyzeMC(model, cycletime.MCOptions{Samples: 64, Workers: 2}); err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	after, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze after MC: %v", err)
	}
	if !before.CycleTime.Equal(after.CycleTime) {
		t.Fatalf("session λ drifted across MC: %v -> %v", before.CycleTime, after.CycleTime)
	}
	for i := 0; i < g.NumArcs(); i++ {
		if e.Delay(i) != g.Arc(i).Delay {
			t.Fatalf("arc %d delay drifted to %v", i, e.Delay(i))
		}
	}
}

// TestAnalyzeMCValidation: model/option mismatches fail loudly.
func TestAnalyzeMCValidation(t *testing.T) {
	g := gen.Oscillator()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.AnalyzeMC(nil, cycletime.MCOptions{}); err == nil {
		t.Fatalf("nil model accepted")
	}
	small, err := dist.NewModel([]float64{1, 2})
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if _, err := e.AnalyzeMC(small, cycletime.MCOptions{}); err == nil {
		t.Fatalf("arc-count mismatch accepted")
	}
	m := pointModel(t, g)
	if _, err := e.AnalyzeMC(m, cycletime.MCOptions{Samples: -1}); err == nil {
		t.Fatalf("negative samples accepted")
	}
	if _, err := e.AnalyzeMC(m, cycletime.MCOptions{Quantiles: []float64{1.5}}); err == nil {
		t.Fatalf("quantile outside (0,1) accepted")
	}
	if _, err := e.AnalyzeMC(m, cycletime.MCOptions{Confidence: 2}); err == nil {
		t.Fatalf("confidence outside (0,1) accepted")
	}
	if _, err := e.AnalyzeMC(m, cycletime.MCOptions{Workers: -2}); err == nil {
		t.Fatalf("negative workers accepted")
	}
}

// TestAnalyzeMCCorrelationNarrows: fully correlated jitter cannot widen
// the λ spread beyond the independent case's support, and perfect
// correlation on a single-cycle graph makes λ exactly proportional to
// the shared scale factor — spread equal to the full ±frac swing.
func TestAnalyzeMCCorrelationNarrows(t *testing.T) {
	// A plain ring: one cycle, so λ = sum of delays; under fully
	// correlated uniform ±frac jitter every delay scales by the same
	// factor, so λ/λ₀ ∈ [1−frac, 1+frac] and the spread approaches the
	// full swing as sampling covers the variate range.
	b := sg.NewBuilder("ring4")
	b.Events("a", "b", "c", "d").
		Arc("a", "b", 2).Arc("b", "c", 3).Arc("c", "d", 4).Arc("d", "a", 1, sg.Marked())
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	const frac = 0.25
	model, err := gen.CorrelatedJitter(g, frac, 1)
	if err != nil {
		t.Fatalf("CorrelatedJitter: %v", err)
	}
	res, err := cycletime.AnalyzeMC(g, model, cycletime.MCOptions{Samples: 512, Seed: 11})
	if err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	lam0 := 10.0
	loLim, hiLim := (1-frac)*lam0, (1+frac)*lam0
	if res.Min < loLim-1e-9 || res.Max > hiLim+1e-9 {
		t.Fatalf("correlated λ range [%v, %v] outside scale-factor limits [%v, %v]",
			res.Min, res.Max, loLim, hiLim)
	}
	// With 512 samples the empirical range must cover most of the swing.
	if res.Max-res.Min < 0.8*(hiLim-loLim) {
		t.Fatalf("correlated λ spread %v too narrow for full-swing scale factor (want >= %v)",
			res.Max-res.Min, 0.8*(hiLim-loLim))
	}
	// Independent jitter on the same ring: λ = Σ d_i with independent
	// terms concentrates — its central quantiles sit strictly inside
	// the correlated swing.
	indep, err := gen.UniformJitter(g, frac)
	if err != nil {
		t.Fatalf("UniformJitter: %v", err)
	}
	ri, err := cycletime.AnalyzeMC(g, indep, cycletime.MCOptions{Samples: 512, Seed: 11})
	if err != nil {
		t.Fatalf("AnalyzeMC: %v", err)
	}
	if ri.Std >= res.Std {
		t.Fatalf("independent λ std %v >= fully correlated std %v; correlation should widen λ on a single cycle",
			ri.Std, res.Std)
	}
}
