// Package cycletime implements the performance-analysis algorithm of
// Nielsen and Kishinevsky (DAC'94), §VI–§VII: the cycle time λ and a
// critical cycle of a Timed Signal Graph, computed from event-initiated
// timing simulations.
//
// The algorithm (§VII skeleton):
//
//  1. identify the border events — the repetitive events with an
//     initially marked in-arc; for a live graph they form a cut set;
//  2. from each of the b border events, run an event-initiated timing
//     simulation covering b periods of the unfolding;
//  3. after each new occurrence of the initiating event, record the
//     average occurrence distance δ_{e_0}(e_i) = t_{e_0}(e_i)/i;
//  4. the cycle time is the maximum of the collected b² distances
//     (Prop. 7); border events that never attain it lie off every
//     critical cycle (Prop. 8);
//  5. backtracking the simulation that attained the maximum (Prop. 1)
//     yields a critical cycle.
//
// One simulation costs O(b·m); the whole analysis is O(b²·m). Since
// typically b ≪ n, the algorithm behaves linearly in the specification
// size in practice (§VII).
//
// The package is organised around a compile-once session layer, Engine:
// a graph is compiled into a delay overlay plus a timesim.Schedule, and
// analyses, slack reports, what-if sensitivities and sweeps all run
// against the compiled form (see engine.go). The package-level
// functions (Analyze, Slacks, Sensitivity, AnalyzeBounds) are one-shot
// wrappers over a throwaway Engine.
package cycletime

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/timesim"
)

// Options tunes the analysis.
type Options struct {
	// Periods overrides the number of unfolding periods simulated from
	// each cut-set event. 0 means the safe default: b, the border-set
	// size, which always bounds the occurrence period of every simple
	// cycle (the ε tokens of a simple cycle target ε distinct border
	// events). Correctness requires Periods >= the maximum occurrence
	// period ε_max; note that the paper's Prop. 6 bound — ε_max <= the
	// minimum cut set size — does NOT hold in general (see the
	// counterexamples in the cycles package tests and the erratum note
	// in BENCHMARKS.md), so smaller explicit values are only sound when
	// the caller knows ε_max (e.g. 1 for the oscillator, whose cycles
	// all have ε = 1).
	Periods int
	// CutSet simulates from these events instead of the border set.
	// The events must form a cut set (verified). Used by the ablation
	// experiments; the paper's algorithm always uses the border set,
	// which is available without any search (§VI.B).
	CutSet []sg.EventID
	// Parallel forces the b event-initiated simulations onto a bounded
	// worker pool (at most GOMAXPROCS workers) even for small b. By
	// default the pool is engaged automatically once b reaches
	// AutoParallelThreshold. The simulations are independent and the
	// per-index results exact rationals, so serial and parallel runs
	// produce identical Results.
	Parallel bool
	// Serial forces the simulations onto a single goroutine, disabling
	// the automatic pool. Takes precedence over Parallel; used by the
	// scheduling ablation benchmarks.
	Serial bool
	// WindowBytes bounds the per-simulation working memory of the λ-only
	// pass-1 path. A pass-1 simulation needs nothing but the origin's
	// occurrence-time series, so when one full trace slab
	// ((periods+2)·n·9 bytes) would exceed the bound, the engine runs
	// the memory-bounded two-row kernel (timesim.RunFromWindow, O(n)
	// working state) instead of materialising slabs. Results are
	// bit-identical either way (the differential tests pin it); the
	// only cost is that pass 2 re-simulates the handful of λ winners
	// with full traces when critical cycles are actually requested —
	// the spill-on-demand path.
	//
	// 0 means the default budget (DefaultWindowBytes); negative disables
	// windowing. Sessions that retain traces for incremental commits
	// (see NoIncremental) keep full slabs regardless — patching needs
	// them.
	WindowBytes int64
	// LambdaOnly stops AnalyzeOpts after pass 1: λ and the border series
	// are complete, the critical-cycle extraction (pass 2) is skipped.
	// Pass 2 re-simulates each λ winner with a full parent-tracked trace
	// slab, so on huge graphs a λ-only query under WindowBytes runs in
	// O(n) working memory while a full analysis transiently needs one
	// winner slab per worker. Result.Critical is empty and the series'
	// OnCritical flags are left unset (both are pass-2 products).
	LambdaOnly bool
	// NoIncremental disables the incremental commit path of an Engine:
	// the session never retains its simulation traces, and every
	// analysis after a SetDelay/ResetDelays commit re-simulates from
	// scratch. Results are identical either way (the differential tests
	// pin it); this exists as the ablation baseline of the INCR
	// experiment and as an opt-out for sessions that commit rarely and
	// would rather not hold the retained traces' memory.
	NoIncremental bool
}

// AutoParallelThreshold is the border-set size at which AnalyzeOpts
// switches to the bounded worker pool on its own. Below it the pool's
// goroutine overhead outweighs the win on the O(b·m) simulations.
const AutoParallelThreshold = 8

// DefaultWindowBytes is the slab budget above which a λ-only pass 1
// switches to the memory-bounded two-row kernel when
// Options.WindowBytes is zero. 64 MiB keeps small and mid-size graphs
// on the slab path (whose traces the incremental session layer can
// retain) while million-event unfoldings — where one slab alone would
// be tens of gigabytes — window automatically.
const DefaultWindowBytes = 64 << 20

// BorderSeries records the distances collected from one cut-set event.
type BorderSeries struct {
	Event sg.EventID
	// Distances holds δ_{e_0}(e_i) for i = 1..Periods; entries are NaN
	// when e_0 does not precede e_i (no unfolded cycle of that period
	// through the event).
	Distances []float64
	// Best is the largest collected distance as an exact ratio
	// (critical-path length over occurrence period).
	Best stat.Ratio
	// BestIndex is the smallest i attaining Best (0 when none).
	BestIndex int
	// OnCritical reports whether Best equals the global cycle time,
	// which by Prop. 7/8 holds exactly for the cut-set events lying on
	// a critical cycle.
	OnCritical bool
}

// CriticalCycle is a simple cycle attaining the cycle time.
type CriticalCycle struct {
	// Events lists the cycle's events in arc order; Events[0] is
	// revisited after the last element.
	Events []sg.EventID
	// Arcs lists the graph arc indices connecting consecutive events
	// (Arcs[len-1] closes the cycle back to Events[0]).
	Arcs []int
	// Length is the sum of arc delays around the cycle.
	Length float64
	// Period is the occurrence period ε: the number of unfolding
	// periods the cycle covers (= number of marked arcs along it).
	Period int
}

// Ratio returns the effective length C/ε of the cycle (§V.A).
func (c *CriticalCycle) Ratio() stat.Ratio { return stat.NewRatio(c.Length, c.Period) }

// Format renders the cycle like the paper: "a+ -3-> c+ -2-> a- -3-> c- -2-> a+".
func (c *CriticalCycle) Format(g *sg.Graph) string {
	if len(c.Events) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, e := range c.Events {
		b.WriteString(g.Event(e).Name)
		b.WriteString(fmt.Sprintf(" -%g-> ", g.Arc(c.Arcs[i]).Delay))
	}
	b.WriteString(g.Event(c.Events[0]).Name)
	return b.String()
}

// Result is the outcome of a cycle-time analysis.
type Result struct {
	// CycleTime is λ as an exact ratio of critical-cycle length to
	// occurrence period.
	CycleTime stat.Ratio
	// Critical holds the distinct critical cycles found by backtracking
	// from each cut-set event attaining λ (at least one).
	Critical []CriticalCycle
	// Series holds the per-cut-set-event distance series, in the order
	// the events were simulated.
	Series []BorderSeries
	// Periods is the number of unfolding periods each simulation covered.
	Periods int
}

// Analyze runs the paper's algorithm with default options: event-initiated
// simulations from every border event over b = |border| periods.
//
// Analyze is the one-shot form: it compiles a throwaway Engine and runs
// a single analysis. Callers issuing repeated queries against the same
// graph — sensitivity sweeps, slack reports, interval bounds — should
// hold an Engine instead, which compiles once and reuses the schedule
// across queries.
func Analyze(g *sg.Graph) (*Result, error) {
	return AnalyzeOpts(g, Options{})
}

// AnalyzeOpts runs the algorithm with explicit options.
func AnalyzeOpts(g *sg.Graph, opts Options) (*Result, error) {
	e, err := NewEngineOpts(g, opts)
	if err != nil {
		return nil, err
	}
	// The engine is throwaway and exclusively owned: return its cached
	// result directly, skipping Engine.Analyze's defensive deep copy.
	c, err := e.ensureResult(context.Background())
	if err != nil {
		return nil, err
	}
	if !opts.LambdaOnly {
		if err := e.ensureCriticals(context.Background(), c); err != nil {
			return nil, err
		}
	}
	return c.result, nil
}

// runWorkers invokes fn(worker, 0..n-1), distributing the indices over
// at most `workers` goroutines pulling from a shared atomic counter;
// the worker id lets callers hand each goroutine private state (the
// sweep's per-worker engine clones). With one worker (or one index) it
// runs inline with no goroutine overhead.
func runWorkers(n, workers int, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// runIndexed is runWorkers for callers that need no per-worker state.
func runIndexed(n, workers int, fn func(int)) {
	runWorkers(n, workers, func(_, i int) { fn(i) })
}

// extractSeries collects the average occurrence distances δ_{e_0}(e_j) of
// one event-initiated trace (step 3 of the algorithm) into the provided
// distances buffer (len periods).
func extractSeries(tr *timesim.Trace, ev sg.EventID, periods int, dist []float64) BorderSeries {
	series := BorderSeries{Event: ev, Distances: dist}
	seriesBest := stat.Ratio{Num: -1, Den: 1}
	bestIdx := 0
	for j := 1; j <= periods; j++ {
		t, ok := tr.Time(ev, j)
		if !ok || !tr.Reached(ev, j) {
			series.Distances[j-1] = nan()
			continue
		}
		series.Distances[j-1] = t / float64(j)
		if r := stat.NewRatio(t, j); seriesBest.Less(r) {
			seriesBest = r
			bestIdx = j
		}
	}
	series.Best = seriesBest
	series.BestIndex = bestIdx
	return series
}

func nan() float64 { return math.NaN() }

// seriesFromWindow is extractSeries for the memory-bounded kernel:
// times[j-1] holds t_e0(e_j) (NaN when origin_j is not instantiated),
// exactly what Time+Reached would report from a full trace, so the
// arithmetic below is extractSeries' verbatim and the resulting series
// is bit-identical.
func seriesFromWindow(ev sg.EventID, times []float64, dist []float64) BorderSeries {
	series := BorderSeries{Event: ev, Distances: dist}
	seriesBest := stat.Ratio{Num: -1, Den: 1}
	bestIdx := 0
	for j := 1; j <= len(times); j++ {
		t := times[j-1]
		if math.IsNaN(t) {
			series.Distances[j-1] = nan()
			continue
		}
		series.Distances[j-1] = t / float64(j)
		if r := stat.NewRatio(t, j); seriesBest.Less(r) {
			seriesBest = r
			bestIdx = j
		}
	}
	series.Best = seriesBest
	series.BestIndex = bestIdx
	return series
}

// backtrack reconstructs the unfolded critical path from origin_k back to
// origin_0 via the recorded max-predecessors (Prop. 1) and folds it into
// a simple cycle attaining the cycle time.
func backtrack(g *sg.Graph, tr *timesim.Trace, origin sg.EventID, k int, lambda stat.Ratio) (*CriticalCycle, error) {
	type step struct {
		event  sg.EventID
		period int
		arc    int // arc leading INTO this instantiation along the path
	}
	var rev []step
	e, p := origin, k
	for !(e == origin && p == 0) {
		pe, pp, arc, ok := tr.Parent(e, p)
		if !ok {
			return nil, fmt.Errorf("cycletime: backtracking from %s_%d stranded at %s_%d",
				g.Event(origin).Name, k, g.Event(e).Name, p)
		}
		rev = append(rev, step{event: e, period: p, arc: arc})
		e, p = pe, pp
	}
	// rev holds the path's non-initial nodes from origin_k down to the
	// successor of origin_0; reverse into forward order and prepend the
	// origin. Then nodes[i] --arcs[i]--> nodes[i+1].
	nodes := make([]sg.EventID, 0, len(rev)+1)
	periods := make([]int, 0, len(rev)+1)
	arcs := make([]int, 0, len(rev))
	nodes = append(nodes, origin)
	periods = append(periods, 0)
	for i := len(rev) - 1; i >= 0; i-- {
		nodes = append(nodes, rev[i].event)
		periods = append(periods, rev[i].period)
		arcs = append(arcs, rev[i].arc)
	}

	// The folded path may revisit an event (a combination of critical
	// cycles, Prop. 5); the first repeated event closes a simple
	// sub-cycle, which necessarily attains λ exactly.
	firstPos := map[sg.EventID]int{}
	start, end := -1, -1
	for i, ev := range nodes {
		if p, dup := firstPos[ev]; dup {
			start, end = p, i
			break
		}
		firstPos[ev] = i
	}
	if start < 0 {
		return nil, fmt.Errorf("cycletime: critical path from %s has no repeated event", g.Event(origin).Name)
	}
	cyc := &CriticalCycle{
		Events: append([]sg.EventID(nil), nodes[start:end]...),
		Arcs:   append([]int(nil), arcs[start:end]...),
		Period: periods[end] - periods[start],
	}
	for _, ai := range cyc.Arcs {
		cyc.Length += g.Arc(ai).Delay
	}
	// Cycle length is summed in arc order while λ's numerator comes from
	// the simulation's (topological) summation order; with non-integral
	// delays the two roundings can differ in the last ulps, so the
	// consistency check tolerates relative float noise — relative to
	// the cross-multiplied magnitudes themselves, so the safety net
	// stays effective at any delay scale — instead of demanding exact
	// cross-multiplied equality.
	if got := cyc.Ratio(); !got.Equal(lambda) {
		x := got.Num * float64(lambda.Den)
		y := lambda.Num * float64(got.Den)
		if math.Abs(x-y) > 1e-9*math.Max(math.Abs(x), math.Abs(y)) {
			return nil, fmt.Errorf("cycletime: internal error: extracted cycle ratio %v != cycle time %v",
				got, lambda)
		}
	}
	return cyc, nil
}

// sameCycle reports whether a and b are the same simple cycle up to
// rotation, so that the same cycle discovered from different cut-set
// events deduplicates. Comparison is allocation-free: each arc sequence
// is anchored at its lexicographically least rotation (precomputed once
// per cycle with Booth's algorithm) and compared element-wise.
func sameCycle(a *CriticalCycle, aStart int, b *CriticalCycle, bStart int) bool {
	n := len(a.Arcs)
	if n != len(b.Arcs) || a.Period != b.Period {
		return false
	}
	for i := 0; i < n; i++ {
		ai, bi := aStart+i, bStart+i
		if ai >= n {
			ai -= n
		}
		if bi >= n {
			bi -= n
		}
		if a.Arcs[ai] != b.Arcs[bi] {
			return false
		}
	}
	return true
}

// leastRotation returns the start index of the lexicographically least
// rotation of s (Booth's algorithm, O(len s), no allocation). Arc
// indices around a simple cycle are distinct, so the least rotation is
// unique and anchoring both operands at it makes rotation-equality a
// plain element-wise scan.
func leastRotation(s []int) int {
	n := len(s)
	if n < 2 {
		return 0
	}
	i, j, k := 0, 1, 0
	for i < n && j < n && k < n {
		a, b := s[(i+k)%n], s[(j+k)%n]
		switch {
		case a == b:
			k++
		case a > b:
			i += k + 1
			if i <= j {
				i = j + 1
			}
			k = 0
		default:
			j += k + 1
			if j <= i {
				j = i + 1
			}
			k = 0
		}
	}
	if i < j {
		return i
	}
	return j
}
