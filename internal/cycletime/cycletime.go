// Package cycletime implements the performance-analysis algorithm of
// Nielsen and Kishinevsky (DAC'94), §VI–§VII: the cycle time λ and a
// critical cycle of a Timed Signal Graph, computed from event-initiated
// timing simulations.
//
// The algorithm (§VII skeleton):
//
//  1. identify the border events — the repetitive events with an
//     initially marked in-arc; for a live graph they form a cut set;
//  2. from each of the b border events, run an event-initiated timing
//     simulation covering b periods of the unfolding;
//  3. after each new occurrence of the initiating event, record the
//     average occurrence distance δ_{e_0}(e_i) = t_{e_0}(e_i)/i;
//  4. the cycle time is the maximum of the collected b² distances
//     (Prop. 7); border events that never attain it lie off every
//     critical cycle (Prop. 8);
//  5. backtracking the simulation that attained the maximum (Prop. 1)
//     yields a critical cycle.
//
// One simulation costs O(b·m); the whole analysis is O(b²·m). Since
// typically b ≪ n, the algorithm behaves linearly in the specification
// size in practice (§VII).
package cycletime

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/timesim"
)

// Options tunes the analysis.
type Options struct {
	// Periods overrides the number of unfolding periods simulated from
	// each cut-set event. 0 means the safe default: b, the border-set
	// size, which always bounds the occurrence period of every simple
	// cycle (the ε tokens of a simple cycle target ε distinct border
	// events). Correctness requires Periods >= the maximum occurrence
	// period ε_max; note that the paper's Prop. 6 bound — ε_max <= the
	// minimum cut set size — does NOT hold in general (see the
	// counterexamples in the cycles package tests and EXPERIMENTS.md),
	// so smaller explicit values are only sound when the caller knows
	// ε_max (e.g. 1 for the oscillator, whose cycles all have ε = 1).
	Periods int
	// CutSet simulates from these events instead of the border set.
	// The events must form a cut set (verified). Used by the ablation
	// experiments; the paper's algorithm always uses the border set,
	// which is available without any search (§VI.B).
	CutSet []sg.EventID
	// Parallel runs the b event-initiated simulations on separate
	// goroutines. The simulations are independent (each touches only
	// its own trace), so the result is identical to the serial run;
	// worthwhile for large b on multi-core hosts.
	Parallel bool
}

// BorderSeries records the distances collected from one cut-set event.
type BorderSeries struct {
	Event sg.EventID
	// Distances holds δ_{e_0}(e_i) for i = 1..Periods; entries are NaN
	// when e_0 does not precede e_i (no unfolded cycle of that period
	// through the event).
	Distances []float64
	// Best is the largest collected distance as an exact ratio
	// (critical-path length over occurrence period).
	Best stat.Ratio
	// BestIndex is the smallest i attaining Best (0 when none).
	BestIndex int
	// OnCritical reports whether Best equals the global cycle time,
	// which by Prop. 7/8 holds exactly for the cut-set events lying on
	// a critical cycle.
	OnCritical bool
}

// CriticalCycle is a simple cycle attaining the cycle time.
type CriticalCycle struct {
	// Events lists the cycle's events in arc order; Events[0] is
	// revisited after the last element.
	Events []sg.EventID
	// Arcs lists the graph arc indices connecting consecutive events
	// (Arcs[len-1] closes the cycle back to Events[0]).
	Arcs []int
	// Length is the sum of arc delays around the cycle.
	Length float64
	// Period is the occurrence period ε: the number of unfolding
	// periods the cycle covers (= number of marked arcs along it).
	Period int
}

// Ratio returns the effective length C/ε of the cycle (§V.A).
func (c *CriticalCycle) Ratio() stat.Ratio { return stat.NewRatio(c.Length, c.Period) }

// Format renders the cycle like the paper: "a+ -3-> c+ -2-> a- -3-> c- -2-> a+".
func (c *CriticalCycle) Format(g *sg.Graph) string {
	if len(c.Events) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, e := range c.Events {
		b.WriteString(g.Event(e).Name)
		b.WriteString(fmt.Sprintf(" -%g-> ", g.Arc(c.Arcs[i]).Delay))
	}
	b.WriteString(g.Event(c.Events[0]).Name)
	return b.String()
}

// Result is the outcome of a cycle-time analysis.
type Result struct {
	// CycleTime is λ as an exact ratio of critical-cycle length to
	// occurrence period.
	CycleTime stat.Ratio
	// Critical holds the distinct critical cycles found by backtracking
	// from each cut-set event attaining λ (at least one).
	Critical []CriticalCycle
	// Series holds the per-cut-set-event distance series, in the order
	// the events were simulated.
	Series []BorderSeries
	// Periods is the number of unfolding periods each simulation covered.
	Periods int
}

// Analyze runs the paper's algorithm with default options: event-initiated
// simulations from every border event over b = |border| periods.
func Analyze(g *sg.Graph) (*Result, error) {
	return AnalyzeOpts(g, Options{})
}

// AnalyzeOpts runs the algorithm with explicit options.
func AnalyzeOpts(g *sg.Graph, opts Options) (*Result, error) {
	cut := opts.CutSet
	if cut == nil {
		cut = g.BorderEvents()
	} else {
		for _, e := range cut {
			if e < 0 || int(e) >= g.NumEvents() {
				return nil, fmt.Errorf("cycletime: cut-set event %d out of range", e)
			}
			if !g.Event(e).Repetitive {
				return nil, fmt.Errorf("cycletime: cut-set event %q is not repetitive", g.Event(e).Name)
			}
		}
		if !g.IsCutSet(cut) {
			return nil, fmt.Errorf("cycletime: events %v do not form a cut set", g.EventNames(cut))
		}
	}
	if len(cut) == 0 {
		return nil, fmt.Errorf("cycletime: graph %q has no border events (no repetitive behaviour to time)", g.Name())
	}
	periods := opts.Periods
	if periods == 0 {
		// b bounds ε_max for every initially-safe graph; using it keeps
		// custom (smaller) cut sets sound: fewer simulations, same depth.
		periods = len(g.BorderEvents())
		if periods < len(cut) {
			periods = len(cut)
		}
	}
	if periods < 1 {
		return nil, fmt.Errorf("cycletime: periods must be >= 1, got %d", periods)
	}

	res := &Result{Periods: periods}
	traces := make([]*timesim.Trace, len(cut))
	simErrs := make([]error, len(cut))
	simulate := func(i int) {
		traces[i], simErrs[i] = timesim.RunFrom(g, cut[i], timesim.Options{
			Periods:      periods + 1, // instantiations 0..periods
			TrackParents: true,
		})
	}
	if opts.Parallel {
		var wg sync.WaitGroup
		for i := range cut {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				simulate(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range cut {
			simulate(i)
		}
	}
	best := stat.Ratio{Num: -1, Den: 1}
	for i, ev := range cut {
		if simErrs[i] != nil {
			return nil, fmt.Errorf("cycletime: simulating from %q: %w", g.Event(ev).Name, simErrs[i])
		}
		tr := traces[i]
		series := BorderSeries{Event: ev, Distances: make([]float64, periods)}
		seriesBest := stat.Ratio{Num: -1, Den: 1}
		bestIdx := 0
		for j := 1; j <= periods; j++ {
			t, ok := tr.Time(ev, j)
			if !ok || !tr.Reached(ev, j) {
				series.Distances[j-1] = nan()
				continue
			}
			series.Distances[j-1] = t / float64(j)
			if r := stat.NewRatio(t, j); seriesBest.Less(r) {
				seriesBest = r
				bestIdx = j
			}
		}
		series.Best = seriesBest
		series.BestIndex = bestIdx
		res.Series = append(res.Series, series)
		if best.Less(seriesBest) {
			best = seriesBest
		}
	}
	if best.Num < 0 {
		return nil, fmt.Errorf("cycletime: no cut-set event re-occurred within %d periods; graph has no cycles through %v",
			periods, g.EventNames(cut))
	}
	res.CycleTime = best.Normalize()

	// Prop. 7/8: exactly the cut-set events attaining λ lie on critical
	// cycles; backtrack each of them.
	seen := map[string]bool{}
	for i := range res.Series {
		s := &res.Series[i]
		if s.BestIndex == 0 || !s.Best.Equal(best) {
			continue
		}
		s.OnCritical = true
		cyc, err := backtrack(g, traces[i], s.Event, s.BestIndex, best)
		if err != nil {
			return nil, err
		}
		key := canonicalKey(cyc)
		if !seen[key] {
			seen[key] = true
			res.Critical = append(res.Critical, *cyc)
		}
	}
	return res, nil
}

func nan() float64 { return math.NaN() }

// backtrack reconstructs the unfolded critical path from origin_k back to
// origin_0 via the recorded max-predecessors (Prop. 1) and folds it into
// a simple cycle attaining the cycle time.
func backtrack(g *sg.Graph, tr *timesim.Trace, origin sg.EventID, k int, lambda stat.Ratio) (*CriticalCycle, error) {
	type step struct {
		event  sg.EventID
		period int
		arc    int // arc leading INTO this instantiation along the path
	}
	var rev []step
	e, p := origin, k
	for !(e == origin && p == 0) {
		pe, pp, arc, ok := tr.Parent(e, p)
		if !ok {
			return nil, fmt.Errorf("cycletime: backtracking from %s_%d stranded at %s_%d",
				g.Event(origin).Name, k, g.Event(e).Name, p)
		}
		rev = append(rev, step{event: e, period: p, arc: arc})
		e, p = pe, pp
	}
	// rev holds the path's non-initial nodes from origin_k down to the
	// successor of origin_0; reverse into forward order and prepend the
	// origin. Then nodes[i] --arcs[i]--> nodes[i+1].
	nodes := make([]sg.EventID, 0, len(rev)+1)
	periods := make([]int, 0, len(rev)+1)
	arcs := make([]int, 0, len(rev))
	nodes = append(nodes, origin)
	periods = append(periods, 0)
	for i := len(rev) - 1; i >= 0; i-- {
		nodes = append(nodes, rev[i].event)
		periods = append(periods, rev[i].period)
		arcs = append(arcs, rev[i].arc)
	}

	// The folded path may revisit an event (a combination of critical
	// cycles, Prop. 5); the first repeated event closes a simple
	// sub-cycle, which necessarily attains λ exactly.
	firstPos := map[sg.EventID]int{}
	start, end := -1, -1
	for i, ev := range nodes {
		if p, dup := firstPos[ev]; dup {
			start, end = p, i
			break
		}
		firstPos[ev] = i
	}
	if start < 0 {
		return nil, fmt.Errorf("cycletime: critical path from %s has no repeated event", g.Event(origin).Name)
	}
	cyc := &CriticalCycle{
		Events: append([]sg.EventID(nil), nodes[start:end]...),
		Arcs:   append([]int(nil), arcs[start:end]...),
		Period: periods[end] - periods[start],
	}
	for _, ai := range cyc.Arcs {
		cyc.Length += g.Arc(ai).Delay
	}
	if got := cyc.Ratio(); !got.Equal(lambda) {
		return nil, fmt.Errorf("cycletime: internal error: extracted cycle ratio %v != cycle time %v",
			got, lambda)
	}
	return cyc, nil
}

// canonicalKey rotates the cycle's arc list to its lexicographically
// smallest rotation so that the same cycle discovered from different
// cut-set events deduplicates.
func canonicalKey(c *CriticalCycle) string {
	n := len(c.Arcs)
	if n == 0 {
		return ""
	}
	bestRot := 0
	for r := 1; r < n; r++ {
		for i := 0; i < n; i++ {
			a, b := c.Arcs[(bestRot+i)%n], c.Arcs[(r+i)%n]
			if a != b {
				if b < a {
					bestRot = r
				}
				break
			}
		}
	}
	parts := make([]string, n)
	for i := 0; i < n; i++ {
		parts[i] = fmt.Sprint(c.Arcs[(bestRot+i)%n])
	}
	return strings.Join(parts, ",")
}
