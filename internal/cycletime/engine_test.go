package cycletime_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/stat"
)

// TestEngineAnalyzeMatchesOneShot: an engine's cached analysis is
// identical to the one-shot Analyze, and repeated Analyze calls return
// the cache without re-simulating.
func TestEngineAnalyzeMatchesOneShot(t *testing.T) {
	for name, g := range modeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			want, err := cycletime.Analyze(g)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			e, err := cycletime.NewEngine(g)
			if err != nil {
				t.Fatalf("NewEngine: %v", err)
			}
			got, err := e.Analyze()
			if err != nil {
				t.Fatalf("engine Analyze: %v", err)
			}
			diffResults(t, got, want)
			analyses := e.Stats().Analyses
			// Mutating the returned copy must not corrupt the cache.
			if len(got.Critical) > 0 {
				got.Critical[0].Arcs[0] = -1
				got.Critical = got.Critical[:0]
			}
			again, err := e.Analyze()
			if err != nil {
				t.Fatalf("second engine Analyze: %v", err)
			}
			diffResults(t, again, want)
			if e.Stats().Analyses != analyses {
				t.Errorf("second Analyze re-simulated: %d -> %d analyses", analyses, e.Stats().Analyses)
			}
		})
	}
}

// sweepCandidates builds the differential candidate set for a graph:
// scaling factors around the nominal delay for every arc (exactly
// representable on the integer/half-integer fixtures, so results must
// be bit-identical), plus — for core arcs — perturbations straddling
// the certified slack boundary (slack−1, slack exactly, slack+1),
// which is where the fast path must hand over to simulation. Boundary
// deltas involve float-derived slack values whose sums are not always
// representable, so those are compared up to last-ulp rounding.
func sweepCandidates(g *sg.Graph, slacks []cycletime.ArcSlack) (strict, boundary []cycletime.WhatIf) {
	for i := 0; i < g.NumArcs(); i++ {
		d := g.Arc(i).Delay
		for _, f := range []float64{0, 0.5, 1, 1.5, 3} {
			strict = append(strict, cycletime.WhatIf{Arc: i, Delay: d * f})
		}
	}
	for _, s := range slacks {
		d := g.Arc(s.Arc).Delay
		if s.Slack > 1 {
			boundary = append(boundary, cycletime.WhatIf{Arc: s.Arc, Delay: d + s.Slack - 1})
		}
		boundary = append(boundary,
			cycletime.WhatIf{Arc: s.Arc, Delay: d + s.Slack},
			cycletime.WhatIf{Arc: s.Arc, Delay: d + s.Slack + 1})
	}
	return strict, boundary
}

// ratiosClose accepts cross-multiplied equality up to relative float
// noise — the comparison for candidates whose delta itself carries
// rounding (slack-boundary perturbations).
func ratiosClose(a, b stat.Ratio) bool {
	if a.Equal(b) {
		return true
	}
	x := a.Num * float64(b.Den)
	y := b.Num * float64(a.Den)
	return math.Abs(x-y) <= 1e-12*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
}

// runSweepDifferential asserts SensitivitySweep, Engine.Sensitivity and
// the one-shot Sensitivity oracle agree on every candidate:
// bit-identical for representable deltas, up to last-ulp rounding for
// the slack-boundary deltas.
func runSweepDifferential(t *testing.T, g *sg.Graph, label string) {
	t.Helper()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("%s: NewEngine: %v", label, err)
	}
	slacks, err := e.Slacks()
	if err != nil {
		t.Fatalf("%s: Slacks: %v", label, err)
	}
	strict, boundary := sweepCandidates(g, slacks)
	cands := append(append([]cycletime.WhatIf(nil), strict...), boundary...)
	swept, err := e.SensitivitySweep(cands)
	if err != nil {
		t.Fatalf("%s: SensitivitySweep: %v", label, err)
	}
	if len(swept) != len(cands) {
		t.Fatalf("%s: sweep returned %d results for %d candidates", label, len(swept), len(cands))
	}
	for i, cd := range cands {
		same := func(a, b stat.Ratio) bool { return a.Equal(b) }
		if i >= len(strict) {
			same = ratiosClose
		}
		oracle, err := cycletime.Sensitivity(g, cd.Arc, cd.Delay)
		if err != nil {
			t.Fatalf("%s: oracle Sensitivity(arc %d, %g): %v", label, cd.Arc, cd.Delay, err)
		}
		if !same(swept[i], oracle) {
			t.Errorf("%s: candidate %d (arc %d -> %g): sweep λ = %v, oracle λ = %v",
				label, i, cd.Arc, cd.Delay, swept[i], oracle)
		}
		single, err := e.Sensitivity(cd.Arc, cd.Delay)
		if err != nil {
			t.Fatalf("%s: engine Sensitivity(arc %d, %g): %v", label, cd.Arc, cd.Delay, err)
		}
		if !same(single, oracle) {
			t.Errorf("%s: candidate %d (arc %d -> %g): engine λ = %v, oracle λ = %v",
				label, i, cd.Arc, cd.Delay, single, oracle)
		}
	}
	// The session baseline must be untouched by the whole sweep.
	for i := 0; i < g.NumArcs(); i++ {
		if e.Delay(i) != g.Arc(i).Delay {
			t.Errorf("%s: sweep altered baseline delay of arc %d: %g != %g",
				label, i, e.Delay(i), g.Arc(i).Delay)
		}
	}
}

// TestSensitivitySweepDifferentialFixtures: sweep == per-arc oracle on
// every generator fixture, including the slack-boundary candidates.
func TestSensitivitySweepDifferentialFixtures(t *testing.T) {
	for name, g := range modeFixtures(t) {
		t.Run(name, func(t *testing.T) { runSweepDifferential(t, g, name) })
	}
}

// TestSensitivitySweepDifferentialRandom repeats the differential check
// on seeded random live graphs, spanning serial and pooled sweeps.
func TestSensitivitySweepDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		runSweepDifferential(t, g, g.Name())
	}
}

// TestSensitivityFastPathBoundary pins the answer-path boundaries on
// the Fig. 1 oscillator against the engine's own certificate: a
// perturbation strictly within an arc's certified slack is answered
// without simulating, an increase at or beyond the boundary is billed
// to the what-if rows, an uncertified decrease pays a full analysis —
// and every answer must match the one-shot oracle.
func TestSensitivityFastPathBoundary(t *testing.T) {
	g := gen.Oscillator()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	slacks, err := e.Slacks()
	if err != nil {
		t.Fatalf("Slacks: %v", err)
	}
	res, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Pick the arc with the largest certified slack and a tight arc on
	// the critical cycle.
	slackArc, tightArc := -1, -1
	bestS := 0.0
	for _, s := range slacks {
		if s.Slack > bestS {
			bestS, slackArc = s.Slack, s.Arc
		}
	}
	onCrit := map[int]bool{}
	for _, c := range res.Critical {
		for _, ai := range c.Arcs {
			onCrit[ai] = true
		}
	}
	offCrit := -1 // an arc avoided by the (single) critical cycle
	for _, s := range slacks {
		if s.Tight && onCrit[s.Arc] && tightArc < 0 {
			tightArc = s.Arc
		}
		if !onCrit[s.Arc] && offCrit < 0 {
			offCrit = s.Arc
		}
	}
	if slackArc < 0 || tightArc < 0 || offCrit < 0 || bestS < 1 {
		t.Fatalf("fixture lacks the needed arcs: slackArc=%d (s=%g) tightArc=%d offCrit=%d",
			slackArc, bestS, tightArc, offCrit)
	}

	query := func(arc int, delay float64) cycletime.EngineStats {
		t.Helper()
		lam, err := e.Sensitivity(arc, delay)
		if err != nil {
			t.Fatalf("Sensitivity(%d, %g): %v", arc, delay, err)
		}
		oracle, err := cycletime.Sensitivity(g, arc, delay)
		if err != nil {
			t.Fatalf("oracle Sensitivity(%d, %g): %v", arc, delay, err)
		}
		if !lam.Equal(oracle) {
			t.Errorf("Sensitivity(%d, %g) = %v, oracle %v", arc, delay, lam, oracle)
		}
		return e.Stats()
	}

	base := e.Stats()
	// Strictly within the certified slack: answered without simulating.
	st := query(slackArc, g.Arc(slackArc).Delay+bestS/2)
	if st.FastPathHits != base.FastPathHits+1 || st.Analyses != base.Analyses || st.TableAnswers != base.TableAnswers {
		t.Errorf("within-slack query: stats %+v -> %+v, want one fast-path hit only", base, st)
	}
	// Exactly on the certified boundary: the conservative float guard
	// hands the increase over to the what-if rows (the answer is still
	// λ-unchanged, computed exactly, with no full analysis).
	st2 := query(slackArc, g.Arc(slackArc).Delay+bestS)
	if st2.FastPathHits != st.FastPathHits || st2.TableAnswers != st.TableAnswers+1 || st2.Analyses != st.Analyses {
		t.Errorf("boundary query: stats %+v -> %+v, want one table answer", st, st2)
	}
	// Beyond the certified slack (λ moves): still a table answer.
	st3 := query(slackArc, g.Arc(slackArc).Delay+bestS+3)
	if st3.TableAnswers != st2.TableAnswers+1 || st3.Analyses != st2.Analyses {
		t.Errorf("beyond-slack query: stats %+v -> %+v, want one table answer", st2, st3)
	}
	// Tight arc, any increase: table answer with λ moving by Δ/ε.
	st4 := query(tightArc, g.Arc(tightArc).Delay+2)
	if st4.TableAnswers != st3.TableAnswers+1 || st4.FastPathHits != st3.FastPathHits {
		t.Error("tight-arc increase should be a table answer")
	}
	// Shrinking an arc the critical cycle avoids: certified unchanged.
	st5 := query(offCrit, g.Arc(offCrit).Delay/2)
	if st5.FastPathHits != st4.FastPathHits+1 || st5.Analyses != st4.Analyses {
		t.Error("shrinking an off-critical arc should take the fast path")
	}
	// Shrinking an arc on every cached critical cycle is the one case
	// with no certificate: it must pay a full analysis.
	st6 := query(tightArc, g.Arc(tightArc).Delay/2)
	if st6.Analyses != st5.Analyses+1 {
		t.Error("shrinking an all-critical arc did not run a full analysis")
	}
	// No-op query: certified trivially.
	st7 := query(tightArc, g.Arc(tightArc).Delay)
	if st7.FastPathHits != st6.FastPathHits+1 || st7.Analyses != st6.Analyses {
		t.Error("identity query should take the fast path")
	}
}

// TestEngineSlacksCertificate: the engine's simulation-seeded slacks
// form a valid certificate. The certifying potential is not unique —
// individual values may differ from the one-shot Slacks — but both must
// cover the same arcs, carry no negative slack, have every
// critical-cycle arc tight, and sum to zero around every critical
// cycle.
func TestEngineSlacksCertificate(t *testing.T) {
	fixtures := modeFixtures(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(12)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		fixtures[g.Name()] = g
	}
	for name, g := range fixtures {
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("%s: Analyze: %v", name, err)
		}
		legacy, err := cycletime.Slacks(g, res.CycleTime)
		if err != nil {
			t.Fatalf("%s: Slacks: %v", name, err)
		}
		e, err := cycletime.NewEngine(g)
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", name, err)
		}
		got, err := e.Slacks()
		if err != nil {
			t.Fatalf("%s: engine Slacks: %v", name, err)
		}
		if len(got) != len(legacy) {
			t.Fatalf("%s: %d slacks, want %d (same core arcs)", name, len(got), len(legacy))
		}
		byArc := map[int]cycletime.ArcSlack{}
		for i, s := range got {
			if s.Arc != legacy[i].Arc {
				t.Errorf("%s: slack[%d] covers arc %d, legacy covers %d", name, i, s.Arc, legacy[i].Arc)
			}
			if s.Slack < 0 {
				t.Errorf("%s: negative slack %g on arc %d", name, s.Slack, s.Arc)
			}
			byArc[s.Arc] = s
		}
		for _, c := range res.Critical {
			var sum float64
			for _, ai := range c.Arcs {
				s, ok := byArc[ai]
				if !ok || !s.Tight {
					t.Errorf("%s: critical arc %d not tight (slack %g)", name, ai, s.Slack)
				}
				sum += s.Slack
			}
			if math.Abs(sum) > 1e-6 {
				t.Errorf("%s: slack sum around critical cycle = %g, want 0", name, sum)
			}
		}
	}
}

// TestEngineBoundsMatchSequential: the concurrent engine bounds equal
// the two extreme analyses run by hand.
func TestEngineBoundsMatchSequential(t *testing.T) {
	for name, g := range modeFixtures(t) {
		t.Run(name, func(t *testing.T) {
			lo, hi := cycletime.Jitter(0.2)
			b, err := cycletime.AnalyzeBounds(g, lo, hi)
			if err != nil {
				t.Fatalf("AnalyzeBounds: %v", err)
			}
			gLo, err := g.WithDelays(lo)
			if err != nil {
				t.Fatal(err)
			}
			gHi, err := g.WithDelays(hi)
			if err != nil {
				t.Fatal(err)
			}
			rLo, err := cycletime.Analyze(gLo)
			if err != nil {
				t.Fatal(err)
			}
			rHi, err := cycletime.Analyze(gHi)
			if err != nil {
				t.Fatal(err)
			}
			if !b.Min.Equal(rLo.CycleTime) || !b.Max.Equal(rHi.CycleTime) {
				t.Errorf("bounds [%v, %v], want [%v, %v]", b.Min, b.Max, rLo.CycleTime, rHi.CycleTime)
			}
			diffResults(t, b.MinResult, rLo)
			diffResults(t, b.MaxResult, rHi)
		})
	}
}

// TestEngineEditLoop: committed SetDelay edits shift the session
// baseline — analyses, slacks and sensitivities all follow — and
// ResetDelays restores the compiled nominal graph, all without
// recompiling.
func TestEngineEditLoop(t *testing.T) {
	g := gen.Oscillator()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	res, err := e.Analyze()
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.CycleTime.Float() != 10 {
		t.Fatalf("nominal λ = %v, want 10", res.CycleTime)
	}
	// Commit an edit: slow the a+ -> c+ arc from 3 to 6.
	arc := -1
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if g.Event(a.From).Name == "a+" && g.Event(a.To).Name == "c+" {
			arc = i
		}
	}
	if err := e.SetDelay(arc, 6); err != nil {
		t.Fatalf("SetDelay: %v", err)
	}
	if e.Delay(arc) != 6 {
		t.Errorf("Delay(arc) = %g, want 6", e.Delay(arc))
	}
	edited, err := e.Analyze()
	if err != nil {
		t.Fatalf("edited Analyze: %v", err)
	}
	ng, err := g.WithArcDelay(arc, 6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cycletime.Analyze(ng)
	if err != nil {
		t.Fatal(err)
	}
	diffResults(t, edited, want)
	// Sensitivities are now relative to the edited baseline.
	lam, err := e.Sensitivity(arc, 3)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if lam.Float() != 10 {
		t.Errorf("what-if back to 3: λ = %v, want 10", lam)
	}
	// The original graph was never touched.
	if g.Arc(arc).Delay != 3 {
		t.Errorf("SetDelay mutated the input graph: %g", g.Arc(arc).Delay)
	}
	e.ResetDelays()
	back, err := e.Analyze()
	if err != nil {
		t.Fatalf("reset Analyze: %v", err)
	}
	diffResults(t, back, res)
}

// TestEngineRepeatedSweeps: the cached worker clones are re-synced to
// the session baseline across sweeps, including after a committed
// delay edit; every answer still matches the one-shot oracle.
func TestEngineRepeatedSweeps(t *testing.T) {
	g, err := gen.Stack(13)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	e, err := cycletime.NewEngineOpts(g, cycletime.Options{Parallel: true})
	if err != nil {
		t.Fatalf("NewEngineOpts: %v", err)
	}
	// All-decrease candidates force the worker-clone path.
	cands := make([]cycletime.WhatIf, g.NumArcs())
	for i := range cands {
		cands[i] = cycletime.WhatIf{Arc: i, Delay: g.Arc(i).Delay / 2}
	}
	check := func(round string, base *sg.Graph) {
		t.Helper()
		got, err := e.SensitivitySweep(cands)
		if err != nil {
			t.Fatalf("%s sweep: %v", round, err)
		}
		for i, cd := range cands {
			oracle, err := cycletime.Sensitivity(base, cd.Arc, cd.Delay)
			if err != nil {
				t.Fatalf("%s oracle: %v", round, err)
			}
			if !got[i].Equal(oracle) {
				t.Errorf("%s: candidate %d (arc %d -> %g): sweep λ = %v, oracle λ = %v",
					round, i, cd.Arc, cd.Delay, got[i], oracle)
			}
		}
	}
	check("initial", g)
	check("repeat", g) // clone reuse, unchanged baseline
	// Commit an edit; clones must re-sync to the new baseline.
	if err := e.SetDelay(0, g.Arc(0).Delay*4); err != nil {
		t.Fatalf("SetDelay: %v", err)
	}
	edited, err := g.WithArcDelay(0, g.Arc(0).Delay*4)
	if err != nil {
		t.Fatal(err)
	}
	check("edited", edited)
}

// TestEngineConcurrentQueries hammers one engine from many goroutines —
// mixed analyses, slacks, sensitivities and sweeps — to exercise the
// session lock and the worker pool under the race detector.
func TestEngineConcurrentQueries(t *testing.T) {
	g, err := gen.Stack(13)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	want, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (w + i) % 4 {
				case 0:
					res, err := e.Analyze()
					if err != nil || !res.CycleTime.Equal(want.CycleTime) {
						t.Errorf("concurrent Analyze: λ=%v err=%v", res.CycleTime, err)
					}
				case 1:
					if _, err := e.Slacks(); err != nil {
						t.Errorf("concurrent Slacks: %v", err)
					}
				case 2:
					arc := (w*5 + i) % g.NumArcs()
					if _, err := e.Sensitivity(arc, g.Arc(arc).Delay+1); err != nil {
						t.Errorf("concurrent Sensitivity: %v", err)
					}
				default:
					cands := []cycletime.WhatIf{
						{Arc: (w + i) % g.NumArcs(), Delay: 1},
						{Arc: (w + 2*i) % g.NumArcs(), Delay: 4},
					}
					if _, err := e.SensitivitySweep(cands); err != nil {
						t.Errorf("concurrent sweep: %v", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestEngineErrors: constructor and query validation.
func TestEngineErrors(t *testing.T) {
	g := gen.Oscillator()
	e, err := cycletime.NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if _, err := e.Sensitivity(99, 1); err == nil {
		t.Error("out-of-range arc accepted")
	}
	if _, err := e.Sensitivity(0, -2); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := e.Sensitivity(0, math.NaN()); err == nil {
		t.Error("NaN delay accepted")
	}
	if _, err := e.SensitivitySweep([]cycletime.WhatIf{{Arc: 0, Delay: math.NaN()}}); err == nil {
		t.Error("sweep with NaN delay accepted")
	}
	if err := e.SetDelay(0, math.NaN()); err == nil {
		t.Error("SetDelay with NaN delay accepted")
	}
	if _, err := e.SensitivitySweep([]cycletime.WhatIf{{Arc: -1, Delay: 1}}); err == nil {
		t.Error("sweep with bad arc accepted")
	}
	if _, err := e.SensitivitySweep([]cycletime.WhatIf{{Arc: 0, Delay: -1}}); err == nil {
		t.Error("sweep with negative delay accepted")
	}
	if err := e.SetDelay(0, -1); err == nil {
		t.Error("SetDelay with negative delay accepted")
	}
	bad := func(int, float64) float64 { return -1 }
	id := func(_ int, d float64) float64 { return d }
	if _, err := e.AnalyzeBounds(bad, id); err == nil {
		t.Error("negative lower bounds accepted")
	}
	if _, err := e.AnalyzeBounds(id, bad); err == nil {
		t.Error("negative upper bounds accepted")
	}
	double := func(_ int, d float64) float64 { return 2 * d }
	if _, err := e.AnalyzeBounds(double, id); err == nil {
		t.Error("lo > hi accepted")
	}
}
