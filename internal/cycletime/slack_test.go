package cycletime_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
	"tsg/internal/stat"
)

// TestOscillatorSlacks: every arc of the critical cycle C1 is tight at
// λ = 10 and no slack is negative.
func TestOscillatorSlacks(t *testing.T) {
	g := gen.Oscillator()
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	slacks, err := cycletime.Slacks(g, res.CycleTime)
	if err != nil {
		t.Fatalf("Slacks: %v", err)
	}
	critical := map[int]bool{}
	for _, c := range res.Critical {
		for _, ai := range c.Arcs {
			critical[ai] = true
		}
	}
	tight := 0
	for _, s := range slacks {
		a := g.Arc(s.Arc)
		name := g.Event(a.From).Name + "->" + g.Event(a.To).Name
		if critical[s.Arc] && !s.Tight {
			t.Errorf("critical arc %s has slack %g, want 0", name, s.Slack)
		}
		if s.Slack < 0 {
			t.Errorf("arc %s has negative slack %g", name, s.Slack)
		}
		if s.Tight {
			tight++
		}
	}
	// All 4 arcs of C1 are tight. The feasible potential is not unique,
	// so further arcs may be coincidentally tight, but never fewer.
	if tight < 4 {
		t.Errorf("tight arcs = %d, want >= 4 (the critical cycle)", tight)
	}
	// b- -> c- (delay 2) is on C3/C4 only (lengths 8 and 6): it must
	// have strictly positive slack in any feasible potential, since no
	// cycle through it attains 10... except via shared tight chains.
	// Assert instead on the guaranteed direction: critical => tight,
	// checked above, and the slack sum around C1 is zero.
	var c1Slack float64
	for _, c := range res.Critical {
		for _, ai := range c.Arcs {
			for _, s := range slacks {
				if s.Arc == ai {
					c1Slack += s.Slack
				}
			}
		}
	}
	if c1Slack != 0 {
		t.Errorf("slack sum around critical cycle = %g, want 0", c1Slack)
	}
}

// TestSlacksProperty: on random graphs, every critical-cycle arc is
// tight and no slack is negative.
func TestSlacksProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(12)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		slacks, err := cycletime.Slacks(g, res.CycleTime)
		if err != nil {
			t.Fatalf("Slacks: %v", err)
		}
		byArc := map[int]cycletime.ArcSlack{}
		for _, s := range slacks {
			byArc[s.Arc] = s
			if s.Slack < 0 {
				t.Errorf("trial %d: negative slack %g", trial, s.Slack)
			}
		}
		for _, c := range res.Critical {
			for _, ai := range c.Arcs {
				if s, ok := byArc[ai]; !ok || !s.Tight {
					t.Errorf("trial %d: critical arc %d not tight (slack %g)", trial, ai, s.Slack)
				}
			}
		}
	}
}

// TestSlacksBelowLambdaFails: no feasible potential exists below λ.
func TestSlacksBelowLambdaFails(t *testing.T) {
	g := gen.Oscillator()
	if _, err := cycletime.Slacks(g, stat.NewRatio(9, 1)); err == nil {
		t.Error("Slacks below λ succeeded, want infeasible")
	}
}

// TestSensitivity: raising a tight arc's delay raises λ by Δ/ε; raising
// a slack arc within its slack leaves λ unchanged.
func TestSensitivity(t *testing.T) {
	g := gen.Oscillator()
	// Tight arc: a+ -> c+ (delay 3, on C1 with ε = 1). Raising it by 2
	// raises λ by 2.
	var tightArc, slackArc = -1, -1
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		from, to := g.Event(a.From).Name, g.Event(a.To).Name
		if from == "a+" && to == "c+" {
			tightArc = i
		}
		if from == "b+" && to == "c+" {
			slackArc = i // on C2/C4 only (length 8/6), slack 2 at λ=10
		}
	}
	if tightArc < 0 || slackArc < 0 {
		t.Fatal("fixture arcs not found")
	}
	up, err := cycletime.Sensitivity(g, tightArc, 5)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if up.Float() != 12 {
		t.Errorf("λ after tight arc 3->5 = %v, want 12", up)
	}
	same, err := cycletime.Sensitivity(g, slackArc, 4)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if same.Float() != 10 {
		t.Errorf("λ after slack arc 2->4 = %v, want 10 (within slack)", same)
	}
	over, err := cycletime.Sensitivity(g, slackArc, 7)
	if err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if over.Float() != 13 {
		t.Errorf("λ after slack arc 2->7 = %v, want 13 (C3 = 7+2+3+1 now dominates)", over)
	}
	// Out-of-range and negative inputs.
	if _, err := cycletime.Sensitivity(g, 99, 1); err == nil {
		t.Error("Sensitivity with bad arc index succeeded")
	}
	if _, err := cycletime.Sensitivity(g, tightArc, -1); err == nil {
		t.Error("Sensitivity with negative delay succeeded")
	}
	// The original graph is untouched.
	if g.Arc(tightArc).Delay != 3 {
		t.Error("Sensitivity mutated the input graph")
	}
}

// TestParallelMatchesSerial: the Parallel option yields the identical
// result on a graph with many border events.
func TestParallelMatchesSerial(t *testing.T) {
	g, err := gen.Stack(16)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	serial, err := cycletime.AnalyzeOpts(g, cycletime.Options{})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := cycletime.AnalyzeOpts(g, cycletime.Options{Parallel: true})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !serial.CycleTime.Equal(parallel.CycleTime) {
		t.Errorf("parallel λ = %v, serial λ = %v", parallel.CycleTime, serial.CycleTime)
	}
	if len(serial.Series) != len(parallel.Series) {
		t.Fatalf("series count differs: %d vs %d", len(serial.Series), len(parallel.Series))
	}
	for i := range serial.Series {
		s, p := serial.Series[i], parallel.Series[i]
		if s.Event != p.Event || s.BestIndex != p.BestIndex || !s.Best.Equal(p.Best) {
			t.Errorf("series %d differs: %+v vs %+v", i, s, p)
		}
		for j := range s.Distances {
			sd, pd := s.Distances[j], p.Distances[j]
			if sd != pd && !(math.IsNaN(sd) && math.IsNaN(pd)) {
				t.Errorf("series %d distance %d: %g vs %g", i, j, sd, pd)
			}
		}
	}
	if len(serial.Critical) != len(parallel.Critical) {
		t.Errorf("critical cycles differ: %d vs %d", len(serial.Critical), len(parallel.Critical))
	}
}

// TestMultiArcCycleTime: a two-event loop where the return connection
// carries two tokens has cycle time (d1+d2)/2; the safe transformation
// must preserve it while keeping the graph initially-safe.
func TestMultiArcCycleTime(t *testing.T) {
	g, err := sg.NewBuilder("double").
		Events("p+", "q+").
		Arc("p+", "q+", 5).
		MultiArc("q+", "p+", 3, 2).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEvents() != 3 { // one dummy inserted
		t.Errorf("events = %d, want 3 (one dummy)", g.NumEvents())
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r := res.CycleTime.Normalize(); r.Num != 4 || r.Den != 1 {
		t.Errorf("λ = %v, want (5+3)/2 = 4", res.CycleTime)
	}
	for _, c := range res.Critical {
		if c.Period != 2 {
			t.Errorf("critical ε = %d, want 2", c.Period)
		}
	}
}

func TestMultiArcDegenerateCounts(t *testing.T) {
	// tokens=0 and tokens=1 behave like plain/marked arcs.
	g, err := sg.NewBuilder("plain").
		Events("p+", "q+").
		MultiArc("p+", "q+", 1, 0).
		MultiArc("q+", "p+", 1, 1).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEvents() != 2 || g.NumArcs() != 2 {
		t.Errorf("graph = %d events %d arcs, want 2/2", g.NumEvents(), g.NumArcs())
	}
	if _, err := sg.NewBuilder("neg").Events("p+").MultiArc("p+", "p+", 1, -1).Build(); err == nil {
		t.Error("negative token count accepted")
	}
}

// TestScaledHomogeneity: scaling all delays scales λ.
func TestScaledHomogeneity(t *testing.T) {
	g := gen.Oscillator()
	s, err := g.Scaled(2.5)
	if err != nil {
		t.Fatalf("Scaled: %v", err)
	}
	res, err := cycletime.Analyze(s)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.CycleTime.Float() != 25 {
		t.Errorf("scaled λ = %v, want 25", res.CycleTime)
	}
	if _, err := g.Scaled(-1); err == nil {
		t.Error("negative scale accepted")
	}
	if g.Arc(0).Delay == s.Arc(0).Delay && g.Arc(0).Delay != 0 {
		t.Error("Scaled mutated or shared the delay")
	}
}
