package cycletime

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/obs"
)

// TestStatsSnapshotUnderConcurrentTraffic hammers one engine with mixed
// readers and writers while a poller takes Stats() snapshots. Every
// snapshot must be internally sane (non-negative) and every counter
// monotone non-decreasing across snapshots — the atomic counters never
// tear or run backwards. Run under -race (the CI race step covers this
// package).
func TestStatsSnapshotUnderConcurrentTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 100, Border: 5, ExtraArcs: 80, MaxDelay: 8})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	e, err := NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ctx := context.Background()

	done := make(chan struct{})
	var wg sync.WaitGroup
	// Readers: the full query mix, so every counter family moves.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arc := (w * 7) % g.NumArcs()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 4 {
				case 0:
					if _, err := e.AnalyzeCtx(ctx); err != nil {
						t.Errorf("AnalyzeCtx: %v", err)
						return
					}
				case 1:
					if _, err := e.CycleTimeCtx(ctx); err != nil {
						t.Errorf("CycleTimeCtx: %v", err)
						return
					}
				case 2:
					d := g.Arc(arc).Delay
					if _, err := e.SensitivityCtx(ctx, arc, d*1.5+1); err != nil {
						t.Errorf("SensitivityCtx: %v", err)
						return
					}
				case 3:
					if _, err := e.SlacksCtx(ctx); err != nil {
						t.Errorf("SlacksCtx: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Writer: commits edits so incremental analyses and lazy-skip
	// accounting fire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		d0 := g.Arc(0).Delay
		for i := 0; i < 30; i++ {
			if err := e.SetDelay(0, d0+float64(i%5)); err != nil {
				t.Errorf("SetDelay: %v", err)
				return
			}
			if _, err := e.CycleTimeCtx(ctx); err != nil {
				t.Errorf("CycleTimeCtx after edit: %v", err)
				return
			}
		}
		close(done)
	}()

	prev := e.Stats()
	for {
		select {
		case <-done:
			wg.Wait()
			return
		default:
		}
		s := e.Stats()
		for _, pair := range [][2]int64{
			{prev.Analyses, s.Analyses},
			{prev.IncrementalAnalyses, s.IncrementalAnalyses},
			{prev.FastPathHits, s.FastPathHits},
			{prev.TableAnswers, s.TableAnswers},
			{prev.WindowedPass1, s.WindowedPass1},
			{prev.SlabPass1, s.SlabPass1},
			{prev.PatchFloods, s.PatchFloods},
			{prev.LazyPass2Skips, s.LazyPass2Skips},
			{prev.Pass2Runs, s.Pass2Runs},
		} {
			if pair[1] < pair[0] || pair[1] < 0 {
				t.Fatalf("counter ran backwards: prev=%+v now=%+v", prev, s)
			}
		}
		prev = s
	}
}

// TestEngineSpansReachKernelPhases drives a cold analysis, an edit and
// a what-if through Ctx entry points with a tracer attached, and checks
// the span tree exposes the kernel phases and answer tiers.
func TestEngineSpansReachKernelPhases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 60, Border: 4, ExtraArcs: 40, MaxDelay: 6})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	tr := obs.NewTracer(1024)
	ctx := obs.WithTracer(context.Background(), tr)

	e, err := NewEngineOptsCtx(ctx, g, Options{})
	if err != nil {
		t.Fatalf("NewEngineOptsCtx: %v", err)
	}
	if _, err := e.AnalyzeCtx(ctx); err != nil { // cold: pass1 + pass2
		t.Fatalf("AnalyzeCtx: %v", err)
	}
	if _, err := e.AnalyzeCtx(ctx); err != nil { // warm: cached tier
		t.Fatalf("AnalyzeCtx warm: %v", err)
	}
	// First edit retains traces (slab pass 1); the second edit patches
	// them, which is the incremental tier with an engine.patch span.
	for i := 1; i <= 2; i++ {
		if err := e.SetDelay(0, g.Arc(0).Delay+float64(i)); err != nil {
			t.Fatalf("SetDelay: %v", err)
		}
		if _, err := e.CycleTimeCtx(ctx); err != nil {
			t.Fatalf("CycleTimeCtx: %v", err)
		}
	}
	if _, err := e.SensitivityCtx(ctx, 1, g.Arc(1).Delay*2+1); err != nil {
		t.Fatalf("SensitivityCtx: %v", err)
	}

	spans := tr.Snapshot()
	names := map[string]int{}
	tiers := map[string]int{}
	for _, r := range spans {
		names[r.Name]++
		if r.Tier != "" {
			tiers[r.Name+"/"+r.Tier]++
		}
	}
	for _, want := range []string{"engine.compile", "engine.answer", "engine.pass1", "engine.pass2", "engine.patch", "engine.slackcert"} {
		if names[want] == 0 {
			t.Fatalf("no %s span recorded; names=%v tiers=%v", want, names, tiers)
		}
	}
	if tiers["engine.answer/cached"] == 0 {
		t.Fatalf("warm Analyze did not record cached tier: %v", tiers)
	}
	if tiers["engine.answer/full"] == 0 {
		t.Fatalf("cold Analyze did not record full tier: %v", tiers)
	}
	if tiers["engine.answer/incremental"] == 0 {
		t.Fatalf("post-edit CycleTime did not record incremental tier: %v", tiers)
	}
	// The what-if after an edit rebuilds the certificate, so the
	// sensitivity answer itself must carry one of the what-if tiers.
	whatIfTiers := tiers["engine.answer/fast-path"] + tiers["engine.answer/cached-row"] + tiers["engine.answer/lambda-only"]
	if whatIfTiers == 0 {
		t.Fatalf("sensitivity recorded no what-if tier: %v", tiers)
	}
	// Parent links must stitch phases under answers.
	trees := obs.BuildTrees(spans)
	foundNested := false
	for _, root := range trees {
		if root.Name != "engine.answer" {
			continue
		}
		for _, c := range root.Children {
			switch c.Name {
			case "engine.pass1", "engine.patch", "engine.pass2", "engine.slackcert":
				foundNested = true
			}
		}
	}
	if !foundNested {
		t.Fatal("no kernel phase span nested under an engine.answer span")
	}
}
