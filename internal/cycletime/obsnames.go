package cycletime

import "tsg/internal/obs"

// Pre-interned span names, answer tiers and annotation keys. The
// engine's query paths run once per served request, so they move
// obs.Name integers instead of paying an intern-table lookup (or a
// string concatenation) per span — part of keeping instrumentation
// within the OBS experiment's 3% overhead budget.
var (
	spanCompile   = obs.N("engine.compile")
	spanAnswer    = obs.N("engine.answer")
	spanSweep     = obs.N("engine.sweep")
	spanPass1     = obs.N("engine.pass1")
	spanPass2     = obs.N("engine.pass2")
	spanPatch     = obs.N("engine.patch")
	spanSlackcert = obs.N("engine.slackcert")
	spanRows      = obs.N("engine.rows")
	spanMC        = obs.N("engine.mc")

	tierCached     = obs.N("cached")
	tierFull       = obs.N("full")
	tierIncr       = obs.N("incremental")
	tierLambdaOnly = obs.N("lambda-only")
	tierFastPath   = obs.N("fast-path")
	tierCachedRow  = obs.N("cached-row")
	tierShared     = obs.N("shared")
	tierExclusive  = obs.N("exclusive")
	tierSlab       = obs.N("slab")
	tierWindow     = obs.N("window")
	tierFlooded    = obs.N("flooded")
	tierConverged  = obs.N("converged")

	keyEvents  = obs.N("events")
	keyArcs    = obs.N("arcs")
	keyCands   = obs.N("cands")
	keyWinners = obs.N("winners")
	keyDirty   = obs.N("dirty")
	keyCone    = obs.N("cone")
	keyCut     = obs.N("cut")
	keyPeriods = obs.N("periods")
	keyHeads   = obs.N("heads")
	keyRounds  = obs.N("rounds")
	keySamples = obs.N("samples")
)
