package cycletime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"tsg/internal/mcr"
	"tsg/internal/obs"
	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/timesim"
)

// Engine is a compiled cycle-time analysis session: compile a Timed
// Signal Graph once — delay overlay, CSR simulation schedule, period
// order, cut set, slab pool — and answer arbitrarily many analyses,
// what-if queries and sensitivity sweeps against the compiled form,
// with no per-query re-Build or re-Compile. This is the architecture
// the paper's motivation asks for (§I: performance analysis cheap
// enough to sit inside a designer's edit-evaluate loop): the one-shot
// entry points (Analyze, Slacks, Sensitivity, AnalyzeBounds) are thin
// wrappers that build a throwaway Engine, while sessions with heavy
// query traffic hold one and reuse it.
//
// Query cost model:
//
//   - Analyze: one O(b²m) two-pass analysis, cached until delays are
//     edited. Pass 2 (winner re-simulation and critical-cycle
//     backtracking) is lazy: λ-only queries (CycleTime) stop after
//     pass 1, and the first Analyze/Summary/Slacks per committed
//     baseline pays the extraction once;
//   - SetDelay/ResetDelays (committed edits): O(1) at commit time.
//     Once a session has committed an edit, its analyses retain the b
//     committed traces, and every later post-commit analysis patches
//     only the forward cone of the dirty arcs through them
//     (timesim.Schedule.Patch) — a localized edit re-analyses λ with
//     zero simulations, and a flooding edit is capped at about one
//     plain re-simulation per trace by the patch bail-out. Disable
//     with Options.NoIncremental;
//   - Slacks: derived from the cached analysis plus one plain
//     simulation that seeds the dual (Burns LP) solve, so the slack
//     certificate costs O(b·m) on top of the analysis instead of an
//     O(n·m) cold Bellman–Ford;
//   - Sensitivity/SensitivitySweep: a what-if whose perturbation stays
//     within the certified slack of its arc (or shrinks an arc that
//     some cached critical cycle avoids, or touches an arc outside the
//     repetitive core) is answered λ-unchanged in O(1) without
//     simulating. Any remaining delay INCREASE is answered exactly
//     from the per-arc what-if rows — one initiated simulation per
//     distinct arc head, shared across all queries of the session —
//     in O(periods) arithmetic. Only uncertified delay DECREASES pay
//     a delay-column refresh (O(1) per edited arc) plus one λ-only
//     analysis — never a rebuild or recompile; in sweeps those run on
//     the bounded worker pool, each worker owning a private overlay +
//     schedule clone.
//
// An Engine is safe for concurrent use under a readers/writer session
// lock: queries answered from the cached certificate — a warm Analyze,
// a warm Slacks, sensitivity fast-path hits and what-if-row answers —
// run concurrently under the shared lock, so many goroutines (the
// request handlers of a serving layer, see internal/serve) read one
// engine in parallel. Anything that mutates session state — a delay
// commit (SetDelay/ResetDelays), the first analysis after an edit,
// building what-if rows, bounds and Monte-Carlo runs, uncertified
// what-if decreases — takes the lock exclusively; the parallel paths
// inside those (sweep workers, the AnalyzeBounds lo extreme) run on
// private clones while the session schedule stays under the exclusive
// lock. The one exception is the Graph() view, which reflects
// in-flight exclusive-path perturbations — read it only between
// queries, and use Delay() for lock-protected delay reads.
type Engine struct {
	mu      sync.RWMutex
	overlay *sg.Overlay
	g       *sg.Graph // overlay.Graph(): the simulated, delay-current view
	sched   *timesim.Schedule
	cut     []sg.EventID
	periods int
	opts    Options

	cert     *certificate
	counters *engineCounters

	// Incremental commit state. A committed delay edit (SetDelay /
	// ResetDelays) drops the certificate but records the edited arcs in
	// pendingDirty; once the session has seen a commit (incr), analyses
	// retain their cut-event traces in simTraces, and every later
	// post-commit analysis patches those traces through the dirty cone
	// (timesim.Schedule.Patch) instead of re-simulating — a localized
	// edit re-analyses λ without running a single simulation. The
	// traces are parentless (pass 2 is lazy and re-simulates only λ
	// winners when critical cycles are requested). slackTrace is the
	// committed plain simulation seeding the slack dual solve, patched
	// alongside; rows are the per-arc what-if rows (previously
	// certificate-owned), session-level so a commit can invalidate only
	// the arcs inside the structural forward cone of the edit. All
	// fields are guarded by the session lock.
	incr         bool
	pendingDirty []int
	pendingSet   []bool
	simTraces    []*timesim.Trace
	slackTrace   *timesim.Trace
	rows         [][]float64
	reachMark    []bool       // scratch for the row-invalidation BFS
	reachQueue   []sg.EventID // scratch for the row-invalidation BFS

	// sweepClones are the serial worker engines reused across sweeps;
	// created on first need, re-synced to the session's baseline delays
	// before each use (compile once, even for the workers).
	sweepClones []*Engine
	// boundsClone runs the lo extreme of AnalyzeBounds concurrently
	// with the hi extreme on the session schedule; reused across calls.
	boundsClone *Engine
}

// certificate caches the analysis of the engine's current baseline
// delays plus the by-products the sensitivity fast paths need: the
// certified per-arc slacks (growing an arc within its slack cannot
// raise λ) and the intersection of the cached critical cycles
// (shrinking an arc avoided by some critical cycle cannot lower λ).
// The per-arc what-if rows live on the Engine itself (Engine.rows):
// they stay valid across a commit for every arc outside the edit's
// forward cone, so they outlive the certificate.
type certificate struct {
	result *Result
	// criticals reports that pass 2 ran: result.Critical and the
	// series' OnCritical flags are valid. λ and the series are complete
	// after pass 1 alone, so λ-only traffic — CycleTime, the
	// edit→analyze loop, what-if decisions — never pays the winner
	// backtracking; the first Analyze/Summary/Slacks runs it lazily.
	criticals  bool
	slacks     []ArcSlack
	slackByArc []float64 // NaN for arcs outside the repetitive core
	onAllCrit  []bool    // arc lies on every cached critical cycle
}

// engineCounters is shared between an engine and its worker clones so
// sweep statistics aggregate at the session root.
type engineCounters struct {
	analyses     atomic.Int64
	incremental  atomic.Int64
	fastPathHits atomic.Int64
	tableHits    atomic.Int64
	windowedP1   atomic.Int64
	slabP1       atomic.Int64
	patchFloods  atomic.Int64
	lazySkips    atomic.Int64
	pass2Runs    atomic.Int64
}

// EngineStats is a snapshot of an engine's query counters.
type EngineStats struct {
	// Analyses counts full timing-simulation analyses run by the
	// engine, including sweep-worker and bounds-extreme analyses.
	Analyses int64
	// IncrementalAnalyses counts post-commit analyses answered by
	// patching the committed traces through the edit's dirty cone
	// instead of re-simulating (see SetDelay).
	IncrementalAnalyses int64
	// FastPathHits counts sensitivity queries answered from the slack
	// certificate without simulating.
	FastPathHits int64
	// TableAnswers counts delay-increase queries answered exactly from
	// the per-arc what-if rows (O(periods) each, one initiated
	// simulation per distinct arc head) instead of a full O(b²m)
	// re-analysis.
	TableAnswers int64
	// WindowedPass1 counts pass-1 runs that chose the memory-bounded
	// two-row window kernel; SlabPass1 counts runs on the materialised
	// slab kernel (including trace-retaining incremental sessions,
	// which never window). Together they expose the kernel-selection
	// policy (Options.WindowBytes) per session.
	WindowedPass1 int64
	SlabPass1     int64
	// PatchFloods counts per-trace incremental patches whose dirty
	// cone exceeded the flood budget and fell back to straight
	// re-evaluation (timesim.PatchStats.Flooded).
	PatchFloods int64
	// LazyPass2Skips counts certificates dropped by a delay commit
	// before pass 2 (winner re-simulation and critical-cycle
	// backtracking) ever ran — analyses where laziness saved the whole
	// pass. Pass2Runs counts the extractions that did run.
	LazyPass2Skips int64
	Pass2Runs      int64
}

// NewEngine compiles an analysis session with default options: the cut
// set is the border set, simulated over b periods.
func NewEngine(g *sg.Graph) (*Engine, error) { return NewEngineOpts(g, Options{}) }

// NewEngineOpts compiles an analysis session with explicit options. The
// options (cut set, periods, scheduling) are fixed for the session's
// lifetime; delays are editable through SetDelay/ResetDelays.
func NewEngineOpts(g *sg.Graph, opts Options) (*Engine, error) {
	return NewEngineOptsCtx(context.Background(), g, opts)
}

// NewEngineOptsCtx is NewEngineOpts with an observability context: when
// a tracer rides ctx, session compilation (overlay + CSR schedule) is
// recorded as an engine.compile span sized by the graph.
func NewEngineOptsCtx(ctx context.Context, g *sg.Graph, opts Options) (*Engine, error) {
	sp := obs.LeafN(ctx, spanCompile)
	sp.AnnotateN(keyEvents, uint64(g.NumEvents()))
	sp.AnnotateN(keyArcs, uint64(g.NumArcs()))
	defer sp.End()
	cut := opts.CutSet
	if cut == nil {
		cut = g.BorderEvents()
	} else {
		// The cut set lives as long as the session (and its clones):
		// decouple it from the caller's buffer.
		cut = append([]sg.EventID(nil), cut...)
		for _, e := range cut {
			if e < 0 || int(e) >= g.NumEvents() {
				return nil, fmt.Errorf("cycletime: cut-set event %d out of range", e)
			}
			if !g.Event(e).Repetitive {
				return nil, fmt.Errorf("cycletime: cut-set event %q is not repetitive", g.Event(e).Name)
			}
		}
		if !g.IsCutSet(cut) {
			return nil, fmt.Errorf("cycletime: events %v do not form a cut set", g.EventNames(cut))
		}
	}
	if len(cut) == 0 {
		return nil, fmt.Errorf("cycletime: graph %q has no border events (no repetitive behaviour to time)", g.Name())
	}
	periods := opts.Periods
	if periods == 0 {
		// b bounds ε_max for every initially-safe graph; using it keeps
		// custom (smaller) cut sets sound: fewer simulations, same depth.
		periods = len(g.BorderEvents())
		if periods < len(cut) {
			periods = len(cut)
		}
	}
	if periods < 1 {
		return nil, fmt.Errorf("cycletime: periods must be >= 1, got %d", periods)
	}
	ov := sg.NewOverlay(g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		return nil, err
	}
	return &Engine{
		overlay:  ov,
		g:        ov.Graph(),
		sched:    sched,
		cut:      cut,
		periods:  periods,
		opts:     opts,
		counters: &engineCounters{},
	}, nil
}

// Graph returns the engine's view of the graph. Delays read through it
// reflect the session's edits; callers must treat it as read-only and
// must not read it concurrently with in-flight queries (a what-if miss
// briefly holds the perturbed delay in the view). For concurrent delay
// reads use Delay, which takes the session lock.
func (e *Engine) Graph() *sg.Graph { return e.g }

// Periods returns the number of unfolding periods each simulation of
// the session covers.
func (e *Engine) Periods() int { return e.periods }

// Stats returns a snapshot of the engine's query counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Analyses:            e.counters.analyses.Load(),
		IncrementalAnalyses: e.counters.incremental.Load(),
		FastPathHits:        e.counters.fastPathHits.Load(),
		TableAnswers:        e.counters.tableHits.Load(),
		WindowedPass1:       e.counters.windowedP1.Load(),
		SlabPass1:           e.counters.slabP1.Load(),
		PatchFloods:         e.counters.patchFloods.Load(),
		LazyPass2Skips:      e.counters.lazySkips.Load(),
		Pass2Runs:           e.counters.pass2Runs.Load(),
	}
}

// Delay returns the current (session) delay of an arc.
func (e *Engine) Delay(arc int) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.overlay.Delay(arc)
}

// SizeHint estimates the resident heap bytes of the compiled session:
// the delay overlay, the compiled schedule's record columns, one pooled
// simulation slab, the cached certificate (slacks and what-if rows) and
// any worker/bounds clones. It deliberately excludes the immutable
// graph, which the engine shares with its builder. Serving caches use
// the hint as the per-entry cost when bounding total engine memory
// (internal/serve.Cache).
func (e *Engine) SizeHint() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sz := e.sizeHintShallow()
	if c := e.cert; c != nil {
		m := int64(e.g.NumArcs())
		sz += int64(len(c.slacks))*24 + m*9 // slackByArc + onAllCrit
	}
	for _, row := range e.rows {
		sz += int64(len(row)) * 8
	}
	if e.rows != nil {
		sz += int64(e.g.NumArcs()) * 24 // row headers
	}
	for _, tr := range e.simTraces {
		sz += tr.MemEstimate()
	}
	if e.slackTrace != nil {
		sz += e.slackTrace.MemEstimate()
	}
	for _, we := range e.sweepClones {
		sz += we.sizeHintShallow()
	}
	if e.boundsClone != nil {
		sz += e.boundsClone.sizeHintShallow()
	}
	return sz
}

// sizeHintShallow estimates one engine's own overlay + schedule + slab
// memory, without certificate or clones.
func (e *Engine) sizeHintShallow() int64 {
	m := int64(e.g.NumArcs())
	sz := int64(1024)           // struct headers, cut set, options
	sz += m * 72                // overlay: arc copies, delay column, nominal, dirty tracking
	sz += e.sched.MemEstimate() // compiled record columns
	if !e.incr && e.windowPass1() {
		// Windowed λ-only sessions hold two rows, not a slab. Pass 2
		// still slabs transiently per λ winner; steady state is the
		// window.
		sz += e.sched.WindowBytes()
	} else {
		sz += e.sched.SlabBytes(e.periods + 2) // one pooled slab: times + reached bitset
	}
	return sz
}

// SetDelay permanently edits the session baseline: subsequent analyses,
// slacks, sensitivities and sweeps see the new delay. The cached
// analysis certificate is invalidated, but the edit is remembered as a
// dirty arc: once a session has committed an edit, its analyses retain
// their simulation traces, and the first analysis after each commit
// re-propagates only the forward cone of the dirty arcs through the
// retained traces (bit-identical to a from-scratch analysis, typically
// orders of magnitude cheaper for localized edits). A no-op edit (the
// arc already has that delay) keeps the certificate. The compiled
// schedule is refreshed in place (no recompile).
func (e *Engine) SetDelay(arc int, delay float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if arc >= 0 && arc < e.overlay.NumArcs() && e.overlay.Delay(arc) == delay {
		return nil
	}
	if err := e.overlay.SetDelay(arc, delay); err != nil {
		return err
	}
	e.commitArc(arc)
	return nil
}

// ResetDelays restores every arc to the delay it had when the engine
// was compiled. Like SetDelay it is an incremental commit: only the
// arcs that actually change become dirty.
func (e *Engine) ResetDelays() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := 0; i < e.overlay.NumArcs(); i++ {
		if e.overlay.Delay(i) != e.overlay.Nominal(i) {
			e.commitArc(i)
		}
	}
	e.overlay.Reset()
}

// commitArc records one committed baseline edit: the certificate is
// dropped, the arc joins the pending dirty set consumed by the next
// analysis, and (unless the session opts out) incremental mode is
// armed so that analysis retains its traces. Callers hold the session
// lock and have validated the arc.
func (e *Engine) commitArc(arc int) {
	if e.cert != nil && !e.cert.criticals {
		// The certificate dies having never paid pass 2: the winner
		// re-simulation the lazy split deferred is now skipped for good.
		e.counters.lazySkips.Add(1)
	}
	e.cert = nil
	if !e.opts.NoIncremental {
		e.incr = true
	}
	if e.pendingSet == nil {
		e.pendingSet = make([]bool, e.g.NumArcs())
	}
	if !e.pendingSet[arc] {
		e.pendingSet[arc] = true
		e.pendingDirty = append(e.pendingDirty, arc)
	}
}

// drainPending consumes the committed dirty set accumulated since the
// last analysis. Callers hold the session lock.
func (e *Engine) drainPending() []int {
	if len(e.pendingDirty) == 0 {
		return nil
	}
	out := append([]int(nil), e.pendingDirty...)
	for _, a := range out {
		e.pendingSet[a] = false
	}
	e.pendingDirty = e.pendingDirty[:0]
	return out
}

// Analyze runs the paper's two-pass analysis at the session's current
// delays. The result is cached: repeated calls without intervening
// delay edits answer without re-simulating. Each call returns a
// private deep copy, so callers may freely reorder or truncate the
// returned series and cycles without corrupting the certificate the
// sensitivity fast paths are derived from.
func (e *Engine) Analyze() (*Result, error) { return e.AnalyzeCtx(context.Background()) }

// AnalyzeCtx is Analyze with an observability context: when a tracer
// rides ctx (obs.WithTracer), the engine records an engine.answer span
// whose tier names the deepest work the answer required — cached /
// incremental / lambda-only / full — with the phase spans (pass 1,
// patch, pass 2, slack certificate) nested beneath it.
func (e *Engine) AnalyzeCtx(ctx context.Context) (*Result, error) {
	sp := obs.LeafN(ctx, spanAnswer)
	defer sp.End()
	// Warm path: the certificate already holds the analysis of the
	// committed baseline, critical cycles included — clone it under the
	// shared lock so concurrent readers never serialise.
	e.mu.RLock()
	if c := e.cert; c != nil && c.criticals {
		res := cloneResult(c.result)
		e.mu.RUnlock()
		sp.SetTierN(tierCached)
		return res, nil
	}
	e.mu.RUnlock()
	ctx = obs.ContextWith(ctx, sp) // cold: phases nest under this span
	e.mu.Lock()
	defer e.mu.Unlock()
	c, err := e.ensureResult(ctx)
	if err != nil {
		return nil, err
	}
	if err := e.ensureCriticals(ctx, c); err != nil {
		return nil, err
	}
	return cloneResult(c.result), nil
}

// cloneResult deep-copies an analysis result (series, distances,
// critical cycles), decoupling the caller's copy from the cached
// certificate.
func cloneResult(r *Result) *Result {
	nr := *r
	nr.Series = append([]BorderSeries(nil), r.Series...)
	for i := range nr.Series {
		nr.Series[i].Distances = append([]float64(nil), r.Series[i].Distances...)
	}
	nr.Critical = cloneCycles(r.Critical)
	return &nr
}

// cloneCycles deep-copies a critical-cycle list.
func cloneCycles(cycs []CriticalCycle) []CriticalCycle {
	out := append([]CriticalCycle(nil), cycs...)
	for i := range out {
		out[i].Events = append([]sg.EventID(nil), cycs[i].Events...)
		out[i].Arcs = append([]int(nil), cycs[i].Arcs...)
	}
	return out
}

// Summary returns the cycle time and a private copy of the critical
// cycles at the session's current delays. It is the serving layer's
// hot read: unlike Analyze it does not clone the per-cut-event
// distance series — b·periods floats that protocol responses never
// carry.
func (e *Engine) Summary() (stat.Ratio, []CriticalCycle, error) {
	return e.SummaryCtx(context.Background())
}

// SummaryCtx is Summary with an observability context (see AnalyzeCtx).
func (e *Engine) SummaryCtx(ctx context.Context) (stat.Ratio, []CriticalCycle, error) {
	sp := obs.LeafN(ctx, spanAnswer)
	defer sp.End()
	e.mu.RLock()
	if c := e.cert; c != nil && c.criticals {
		lam, cycs := c.result.CycleTime, cloneCycles(c.result.Critical)
		e.mu.RUnlock()
		sp.SetTierN(tierCached)
		return lam, cycs, nil
	}
	e.mu.RUnlock()
	ctx = obs.ContextWith(ctx, sp) // cold: phases nest under this span
	e.mu.Lock()
	defer e.mu.Unlock()
	c, err := e.ensureResult(ctx)
	if err != nil {
		return stat.Ratio{}, nil, err
	}
	if err := e.ensureCriticals(ctx, c); err != nil {
		return stat.Ratio{}, nil, err
	}
	return c.result.CycleTime, cloneCycles(c.result.Critical), nil
}

// CycleTime returns λ at the session's current delays. The warm path
// is a plain value read off the certificate under the shared lock —
// no result cloning at all — making this the cheapest repeated query
// an engine serves.
func (e *Engine) CycleTime() (stat.Ratio, error) {
	return e.CycleTimeCtx(context.Background())
}

// CycleTimeCtx is CycleTime with an observability context (see
// AnalyzeCtx). A cold call records tier lambda-only: pass 1 runs, the
// winner backtracking stays lazy.
func (e *Engine) CycleTimeCtx(ctx context.Context) (stat.Ratio, error) {
	sp := obs.LeafN(ctx, spanAnswer)
	defer sp.End()
	e.mu.RLock()
	if c := e.cert; c != nil {
		lam := c.result.CycleTime
		e.mu.RUnlock()
		sp.SetTierN(tierCached)
		return lam, nil
	}
	e.mu.RUnlock()
	ctx = obs.ContextWith(ctx, sp) // cold: phases nest under this span
	e.mu.Lock()
	defer e.mu.Unlock()
	c, err := e.ensureResult(ctx)
	if err != nil {
		return stat.Ratio{}, err
	}
	return c.result.CycleTime, nil
}

// Slacks returns the per-arc timing slacks at the session's cycle time,
// certified by the engine's own simulation times: the λ-detrended
// occurrence maxima of one plain simulation seed the dual (Burns LP)
// solve, which converges in a handful of relaxation rounds instead of
// the cold Bellman–Ford's O(n) (see mcr.FeasiblePotentialSeeded). The
// certifying potential is not unique, so individual slack values may
// differ from the one-shot Slacks — both are valid certificates with
// the same guarantees (no negative slack, every critical arc tight).
func (e *Engine) Slacks() ([]ArcSlack, error) { return e.SlacksCtx(context.Background()) }

// SlacksCtx is Slacks with an observability context (see AnalyzeCtx).
func (e *Engine) SlacksCtx(ctx context.Context) ([]ArcSlack, error) {
	sp := obs.LeafN(ctx, spanAnswer)
	defer sp.End()
	e.mu.RLock()
	if c := e.cert; c != nil && c.slackByArc != nil {
		out := append([]ArcSlack(nil), c.slacks...)
		e.mu.RUnlock()
		sp.SetTierN(tierCached)
		return out, nil
	}
	e.mu.RUnlock()
	ctx = obs.ContextWith(ctx, sp) // cold: phases nest under this span
	e.mu.Lock()
	defer e.mu.Unlock()
	c, err := e.ensureCert(ctx)
	if err != nil {
		return nil, err
	}
	return append([]ArcSlack(nil), c.slacks...), nil
}

// Sensitivity answers "what is λ if this arc's delay becomes newDelay"
// without disturbing the session: certified perturbations are answered
// from the slack certificate without simulating; everything else is a
// delay refresh plus one full analysis, with the baseline restored
// afterwards.
func (e *Engine) Sensitivity(arc int, newDelay float64) (stat.Ratio, error) {
	return e.SensitivityCtx(context.Background(), arc, newDelay)
}

// SensitivityCtx is Sensitivity with an observability context: the
// engine.answer span's tier names the answer taken — fast-path (slack
// certificate, no simulation), cached-row (what-if row arithmetic),
// lambda-only (one pass-1 re-analysis) or full.
func (e *Engine) SensitivityCtx(ctx context.Context, arc int, newDelay float64) (stat.Ratio, error) {
	sp := obs.LeafN(ctx, spanAnswer)
	defer sp.End()
	if lam, done, err := e.whatIfShared(sp, arc, newDelay); done {
		return lam, err
	}
	ctx = obs.ContextWith(ctx, sp) // cold: phases nest under this span
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.whatIf(ctx, arc, newDelay)
}

// whatIfShared answers one sensitivity query under the shared (reader)
// lock when no session mutation is needed: validation failures, slack
// fast-path hits, and delay increases whose what-if row is already
// built. done=false sends the caller to the exclusive path; the answer
// is recomputed there from scratch, so the race between dropping the
// read lock and acquiring the write lock is harmless.
func (e *Engine) whatIfShared(sp *obs.Span, arc int, newDelay float64) (lam stat.Ratio, done bool, err error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := e.validateWhatIf(arc, newDelay); err != nil {
		return stat.Ratio{}, true, fmt.Errorf("cycletime: %w", err)
	}
	c := e.cert
	if c == nil || c.slackByArc == nil {
		return stat.Ratio{}, false, nil
	}
	if lam, ok := fastAnswer(c, e.overlay.Delay(arc), arc, newDelay); ok {
		e.counters.fastPathHits.Add(1)
		sp.SetTierN(tierFastPath)
		return lam, true, nil
	}
	if newDelay > e.overlay.Delay(arc) && e.rows != nil && e.rows[arc] != nil {
		e.counters.tableHits.Add(1)
		sp.SetTierN(tierCachedRow)
		return e.answerFromRow(c.result.CycleTime, arc, newDelay), true, nil
	}
	return stat.Ratio{}, false, nil
}

// WhatIf is one delay assignment of a sensitivity sweep.
type WhatIf struct {
	Arc   int
	Delay float64
}

// SensitivitySweep answers many what-if queries in one call: λ for each
// candidate as if its arc's delay were replaced, all against the
// session baseline (candidates do not compose). Results are identical
// to calling Sensitivity once per candidate — the differential tests
// assert it — but the sweep answers certified candidates from the slack
// fast path without simulating, batches the what-if-row simulations of
// the remaining increases (one per distinct arc head, on the worker
// pool), and distributes the full analyses of uncertified decreases
// over the same pool, each worker owning a private overlay + schedule
// clone so simulations never share mutable state.
func (e *Engine) SensitivitySweep(cands []WhatIf) ([]stat.Ratio, error) {
	return e.SensitivitySweepCtx(context.Background(), cands)
}

// SensitivitySweepCtx is SensitivitySweep with cooperative cancellation:
// the sweep checks ctx before every full what-if analysis it runs or
// distributes to the worker pool, and returns ctx.Err() once it fires —
// a request whose deadline expired (or whose client went away) stops
// burning cores mid-sweep. Certified candidates answered from the
// warm certificate never block, so cancellation costs nothing on the
// fast path. A cancelled sweep leaves the session baseline untouched
// (sweeps never commit state), so the engine is immediately reusable.
func (e *Engine) SensitivitySweepCtx(ctx context.Context, cands []WhatIf) ([]stat.Ratio, error) {
	sp := obs.LeafN(ctx, spanSweep)
	defer sp.End()
	sp.AnnotateN(keyCands, uint64(len(cands)))
	if out, done, err := e.sweepShared(cands); done {
		sp.SetTierN(tierShared)
		return out, err
	}
	sp.SetTierN(tierExclusive)
	ctx = obs.ContextWith(ctx, sp) // cold: phases nest under this span
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sweepLocked(ctx, cands)
}

// sweepShared answers a whole sweep under the shared (reader) lock when
// every candidate is covered by the existing certificate — fast-path
// certified or served by an already-built what-if row. A single
// candidate needing simulation aborts the attempt (done=false) and the
// sweep reruns exclusively; counters are only flushed on full success,
// so an aborted attempt leaves the session statistics untouched.
func (e *Engine) sweepShared(cands []WhatIf) (out []stat.Ratio, done bool, err error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for i, cd := range cands {
		if err := e.validateWhatIf(cd.Arc, cd.Delay); err != nil {
			return nil, true, fmt.Errorf("cycletime: sweep candidate %d: %w", i, err)
		}
	}
	c := e.cert
	if c == nil || c.slackByArc == nil {
		return nil, false, nil
	}
	out = make([]stat.Ratio, len(cands))
	var fast, table int64
	for i, cd := range cands {
		if lam, ok := fastAnswer(c, e.overlay.Delay(cd.Arc), cd.Arc, cd.Delay); ok {
			out[i] = lam
			fast++
			continue
		}
		if cd.Delay > e.overlay.Delay(cd.Arc) && e.rows != nil && e.rows[cd.Arc] != nil {
			out[i] = e.answerFromRow(c.result.CycleTime, cd.Arc, cd.Delay)
			table++
			continue
		}
		return nil, false, nil
	}
	e.counters.fastPathHits.Add(fast)
	e.counters.tableHits.Add(table)
	return out, true, nil
}

// sweepLocked is the exclusive-path sweep; callers hold the session
// lock.
func (e *Engine) sweepLocked(ctx context.Context, cands []WhatIf) ([]stat.Ratio, error) {
	c, err := e.ensureCert(ctx)
	if err != nil {
		return nil, err
	}
	// Validate every candidate before answering (or counting) any, so
	// a sweep rejected here leaves the session statistics untouched.
	for i, cd := range cands {
		if err := e.validateWhatIf(cd.Arc, cd.Delay); err != nil {
			return nil, fmt.Errorf("cycletime: sweep candidate %d: %w", i, err)
		}
	}
	out := make([]stat.Ratio, len(cands))
	var full, incr []int
	for i, cd := range cands {
		if lam, ok := fastAnswer(c, e.overlay.Delay(cd.Arc), cd.Arc, cd.Delay); ok {
			out[i] = lam
			e.counters.fastPathHits.Add(1)
			continue
		}
		if cd.Delay > e.overlay.Delay(cd.Arc) {
			incr = append(incr, i)
		} else {
			full = append(full, i)
		}
	}
	// Increase misses are answered exactly from the what-if rows: one
	// initiated simulation per distinct arc head — always cheaper than
	// the |cut| simulations of even one full analysis — then O(periods)
	// arithmetic per candidate.
	if len(incr) > 0 {
		arcs := make([]int, len(incr))
		for k, i := range incr {
			arcs[k] = cands[i].Arc
		}
		if err := e.ensureRows(ctx, arcs); err != nil {
			return nil, err
		}
		for _, i := range incr {
			out[i] = e.answerFromRow(c.result.CycleTime, cands[i].Arc, cands[i].Delay)
			e.counters.tableHits.Add(1)
		}
	}
	if len(full) == 0 {
		return out, nil
	}
	workers := 1
	if !e.opts.Serial && (e.opts.Parallel || len(full) >= 2 && len(full)*len(e.cut) >= AutoParallelThreshold) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(full) {
		workers = len(full)
	}
	if workers <= 1 {
		for _, i := range full {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			lam, err := e.whatIfFull(ctx, cands[i].Arc, cands[i].Delay)
			if err != nil {
				return nil, err
			}
			out[i] = lam
		}
		return out, nil
	}
	clones, err := e.syncedClones(workers)
	if err != nil {
		return nil, err
	}
	errs := make([]error, workers)
	runWorkers(len(full), workers, func(w, k int) {
		if errs[w] != nil {
			return
		}
		// Cooperative cancellation: each worker checks the deadline
		// before every full analysis it claims, so a cancelled sweep
		// stops within one candidate's work per worker.
		if err := ctx.Err(); err != nil {
			errs[w] = err
			return
		}
		i := full[k]
		lam, err := clones[w].whatIfFull(ctx, cands[i].Arc, cands[i].Delay)
		if err != nil {
			errs[w] = err
			return
		}
		out[i] = lam
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AnalyzeBounds computes guaranteed cycle-time bounds when every arc
// delay may vary inside [lo(a), hi(a)] of the session's current delays:
// λ is monotone in each delay, so the two extreme assignments bracket
// every assignment in between. The two extreme analyses are independent
// and run concurrently — the lo extreme on a cached clone, the hi
// extreme in place on the session schedule, which is restored after.
func (e *Engine) AnalyzeBounds(lo, hi func(arc int, nominal float64) float64) (*Bounds, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.g.NumArcs()
	dLo := make([]float64, m)
	dHi := make([]float64, m)
	for i := 0; i < m; i++ {
		nom := e.overlay.Delay(i)
		dLo[i], dHi[i] = lo(i, nom), hi(i, nom)
		if dLo[i] < 0 || math.IsNaN(dLo[i]) {
			return nil, fmt.Errorf("cycletime: lower delays: arc %d: invalid delay %g", i, dLo[i])
		}
		if dHi[i] < 0 || math.IsNaN(dHi[i]) {
			return nil, fmt.Errorf("cycletime: upper delays: arc %d: invalid delay %g", i, dHi[i])
		}
		if dLo[i] > dHi[i] {
			return nil, fmt.Errorf("cycletime: arc %d has lo %g > hi %g", i, dLo[i], dHi[i])
		}
	}
	analyzeAt := func(we *Engine, d []float64) (*Result, error) {
		if err := we.overlay.SetDelays(func(i int, _ float64) float64 { return d[i] }); err != nil {
			return nil, err
		}
		we.refreshAll()
		return we.runAnalysis(context.Background(), false)
	}
	// The lo extreme runs on a private clone, the hi extreme reuses the
	// session's own idle schedule (restored afterwards), so one bounds
	// query costs a single extra compile, and none once the clone
	// exists.
	if e.boundsClone == nil {
		bc, err := e.clone(false)
		if err != nil {
			return nil, err
		}
		e.boundsClone = bc
	}
	loClone := e.boundsClone
	cur := make([]float64, m)
	for i := range cur {
		cur[i] = e.overlay.Delay(i)
	}
	var (
		rLo, rHi *Result
		eLo, eHi error
		wg       sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rLo, eLo = analyzeAt(loClone, dLo)
	}()
	rHi, eHi = analyzeAt(e, dHi)
	// Restore the session baseline exactly; the cached certificate
	// remains valid.
	restoreErr := e.overlay.SetDelays(func(i int, _ float64) float64 { return cur[i] })
	e.refreshAll()
	wg.Wait()
	if restoreErr != nil {
		return nil, restoreErr
	}
	if eLo != nil {
		return nil, eLo
	}
	if eHi != nil {
		return nil, eHi
	}
	return &Bounds{
		Min: rLo.CycleTime, Max: rHi.CycleTime,
		MinResult: rLo, MaxResult: rHi,
	}, nil
}

// --- internals ---------------------------------------------------------

// refresh drains the overlay's dirty arcs into the compiled schedule's
// delay columns.
func (e *Engine) refresh() { e.overlay.DrainDirty(e.sched.RefreshArcDelay) }

// refreshAll rewrites every delay column from the overlay graph — the
// bulk counterpart of refresh for whole-graph delay assignments, where
// one column scan beats draining m dirty arcs one by one.
func (e *Engine) refreshAll() {
	e.sched.RefreshDelays()
	e.overlay.DrainDirty(func(int, float64) {})
}

// ensureResult returns the certificate holding the pass-1 analysis (λ
// and the distance series) of the current baseline delays, running it
// if needed. After a committed edit the retained traces, when present,
// are patched through the dirty cone instead of re-simulating; a
// session that has committed at least one edit starts retaining traces
// here. Critical cycles are NOT guaranteed by this certificate —
// callers that need them follow up with ensureCriticals.
func (e *Engine) ensureResult(ctx context.Context) (*certificate, error) {
	if e.cert != nil {
		return e.cert, nil
	}
	e.refresh()
	dirty := e.drainPending()
	e.invalidateRows(dirty)
	var (
		res *Result
		err error
	)
	if e.simTraces != nil {
		res, err = e.patchedAnalysis(ctx, dirty)
		obs.FromContext(ctx).SetTierN(tierIncr)
	} else {
		res, err = e.pass1Analysis(ctx, e.incr)
		obs.FromContext(ctx).SetTierN(tierLambdaOnly)
	}
	if err != nil {
		return nil, err
	}
	e.cert = &certificate{result: res}
	return e.cert, nil
}

// ensureCriticals runs pass 2 (Prop. 7/8) against the certificate if
// it has not run yet: exactly the cut-set events attaining λ lie on
// critical cycles; each winner is re-simulated with parent tracking on
// the bounded worker pool and backtracked (Prop. 1), and the cycles
// deduplicated. The outcome is cached on the certificate until the
// next commit, so a session answering λ-only traffic (the edit→analyze
// loop) never pays it, and a session asking for critical cycles pays
// it once per committed baseline. Callers hold the session lock.
func (e *Engine) ensureCriticals(ctx context.Context, c *certificate) error {
	if c.criticals {
		return nil
	}
	if err := e.extractCriticals(ctx, c.result); err != nil {
		return err
	}
	c.criticals = true
	// Pass 2 ran: whatever tier the pass-1 path recorded, this answer
	// paid for the complete two-pass analysis.
	obs.FromContext(ctx).SetTierN(tierFull)
	return nil
}

// extractCriticals is pass 2 (Prop. 7/8) against a pass-1 result:
// exactly the cut-set events attaining λ lie on critical cycles; only
// those winners are re-simulated with parent tracking, on the bounded
// worker pool — in symmetric graphs (rings) every border event can
// attain λ, so this pass may be as wide as pass 1 — and each is
// backtracked (Prop. 1). Deduplication runs serially afterwards in
// winner order, keeping Critical deterministic.
func (e *Engine) extractCriticals(ctx context.Context, res *Result) error {
	e.counters.pass2Runs.Add(1)
	var winners []int
	for i := range res.Series {
		s := &res.Series[i]
		if s.BestIndex == 0 || !s.Best.Equal(res.CycleTime) {
			continue
		}
		s.OnCritical = true
		winners = append(winners, i)
	}
	sp := obs.LeafN(ctx, spanPass2)
	sp.AnnotateN(keyWinners, uint64(len(winners)))
	defer sp.End()
	parentOpts := timesim.Options{Periods: e.periods + 1, TrackParents: true}
	cycs := make([]*CriticalCycle, len(winners))
	cycErrs := make([]error, len(winners))
	runIndexed(len(winners), e.workerCount(len(winners)), func(k int) {
		s := &res.Series[winners[k]]
		tr, err := e.sched.RunFrom(s.Event, parentOpts)
		if err != nil {
			cycErrs[k] = fmt.Errorf("cycletime: re-simulating from %q: %w", e.g.Event(s.Event).Name, err)
			return
		}
		cyc, err := backtrack(e.g, tr, s.Event, s.BestIndex, res.CycleTime)
		tr.Release()
		if err != nil {
			cycErrs[k] = err
			return
		}
		cycs[k] = cyc
	})
	for _, err := range cycErrs {
		if err != nil {
			return err
		}
	}
	res.Critical = dedupeCycles(cycs)
	return nil
}

// workerCount sizes the bounded worker pool for n independent
// simulations under the session's scheduling options.
func (e *Engine) workerCount(n int) int {
	workers := 1
	if !e.opts.Serial && (e.opts.Parallel || n >= AutoParallelThreshold) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	return workers
}

// patchedAnalysis re-analyses after a commit without simulating: the
// retained cut-event traces (and the slack-seed trace, when built) are
// patched through the forward cone of the dirty arcs — each trace
// independently, on the bounded worker pool — and the result is
// re-assembled from them. Bit-identical to a from-scratch analysis:
// the patched traces equal fresh parent-tracked simulations (the Patch
// contract), and result assembly is shared with the full path.
func (e *Engine) patchedAnalysis(ctx context.Context, dirty []int) (*Result, error) {
	e.counters.incremental.Add(1)
	sp := obs.LeafN(ctx, spanPatch)
	defer sp.End()
	sp.AnnotateN(keyDirty, uint64(len(dirty)))
	if len(dirty) > 0 {
		traces := e.simTraces
		if e.slackTrace != nil {
			traces = append(append([]*timesim.Trace(nil), traces...), e.slackTrace)
		}
		errs := make([]error, len(traces))
		stats := make([]timesim.PatchStats, len(traces))
		runIndexed(len(traces), e.workerCount(len(traces)), func(i int) {
			stats[i], errs[i] = e.sched.Patch(traces[i], dirty)
		})
		for _, err := range errs {
			if err != nil {
				// A patch failure (misuse-class only) leaves the trace set
				// inconsistent; drop it so the next analysis re-simulates.
				e.dropTraces()
				return nil, fmt.Errorf("cycletime: patching committed traces: %w", err)
			}
		}
		var cone, floods uint64
		for _, st := range stats {
			cone += uint64(st.Recomputed)
			if st.Flooded {
				floods++
			}
		}
		e.counters.patchFloods.Add(int64(floods))
		// cone is the total realized dirty-cone size across the patched
		// traces; floods counts the per-trace bail-outs to straight
		// re-evaluation.
		sp.AnnotateN(keyCone, cone)
		if floods > 0 {
			sp.SetTierN(tierFlooded)
		}
	}
	return e.resultFromTraces(e.simTraces)
}

// dropTraces releases the retained committed traces back to the
// schedule pool. The next analysis re-simulates (and re-retains).
func (e *Engine) dropTraces() {
	for _, tr := range e.simTraces {
		tr.Release()
	}
	e.simTraces = nil
	if e.slackTrace != nil {
		e.slackTrace.Release()
		e.slackTrace = nil
	}
}

// invalidateRows drops the what-if rows of every arc inside the
// structural forward cone of the dirty arcs — the arcs whose tail's
// initiated-simulation times may have moved. Rows outside the cone
// answer exactly as before: a row is a function of path weights from
// the arc's head to its tail, and no path reaches the tail through a
// dirty arc unless the tail is forward-reachable from a dirty arc's
// head. O(n+m) only when rows exist and arcs are dirty.
func (e *Engine) invalidateRows(dirty []int) {
	if e.rows == nil || len(dirty) == 0 {
		return
	}
	if e.reachMark == nil {
		e.reachMark = make([]bool, e.g.NumEvents())
	}
	queue := e.reachQueue[:0]
	for _, ai := range dirty {
		if to := e.g.Arc(ai).To; !e.reachMark[to] {
			e.reachMark[to] = true
			queue = append(queue, to)
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, ai := range e.g.OutArcs(queue[head]) {
			if to := e.g.Arc(ai).To; !e.reachMark[to] {
				e.reachMark[to] = true
				queue = append(queue, to)
			}
		}
	}
	kept := 0
	for ai, row := range e.rows {
		if row == nil {
			continue
		}
		if e.reachMark[e.g.Arc(ai).From] {
			e.rows[ai] = nil
		} else {
			kept++
		}
	}
	if kept == 0 {
		e.rows = nil
	}
	for _, ev := range queue {
		e.reachMark[ev] = false
	}
	e.reachQueue = queue[:0]
}

// ensureCert extends ensureResult with the slack certificate the
// sensitivity fast path consumes.
func (e *Engine) ensureCert(ctx context.Context) (*certificate, error) {
	c, err := e.ensureResult(ctx)
	if err != nil {
		return nil, err
	}
	if c.slackByArc == nil {
		if err := e.buildCertificate(ctx, c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// buildCertificate derives the slack certificate from the cached
// analysis: one plain simulation seeds the dual solve with the primal
// evidence the engine already holds (the λ-detrended occurrence maxima
// max_p (t(e_p) − λ·p) are unfolded-path weights, already feasible
// along every simulated constraint), and the cached critical cycles are
// intersected for the delay-decrease fast path.
func (e *Engine) buildCertificate(ctx context.Context, c *certificate) error {
	// The decrease fast path intersects the critical cycles, so the
	// lazy pass 2 must have run.
	if err := e.ensureCriticals(ctx, c); err != nil {
		return err
	}
	sp := obs.LeafN(ctx, spanSlackcert)
	defer sp.End()
	lam := c.result.CycleTime.Float()
	var (
		slacks []ArcSlack
		err    error
	)
	if e.incr {
		slacks, err = e.certifySlacksSession(lam)
	} else {
		slacks, err = e.certifySlacksAt(lam)
	}
	if err != nil {
		return err
	}
	c.slacks = slacks
	c.slackByArc = make([]float64, e.g.NumArcs())
	for i := range c.slackByArc {
		c.slackByArc[i] = math.NaN()
	}
	for _, s := range c.slacks {
		c.slackByArc[s.Arc] = s.Slack
	}
	c.onAllCrit = make([]bool, e.g.NumArcs())
	for i, cyc := range c.result.Critical {
		if i == 0 {
			for _, ai := range cyc.Arcs {
				c.onAllCrit[ai] = true
			}
			continue
		}
		in := make([]bool, e.g.NumArcs())
		for _, ai := range cyc.Arcs {
			in[ai] = true
		}
		for a := range c.onAllCrit {
			c.onAllCrit[a] = c.onAllCrit[a] && in[a]
		}
	}
	return nil
}

// certifySlacksAt runs one plain simulation at the schedule's current
// delays, seeds the dual (Burns LP) solve from the λ-detrended
// occurrence maxima — unfolded-path weights, already feasible along
// every simulated constraint — and returns the per-arc slack
// certificate at λ. Callers hold the session lock or own the engine
// exclusively. Besides the session certificate, this is the per-sample
// slack evaluation of the Monte-Carlo subsystem (SlacksMC), which is
// why it takes λ as a parameter instead of reading the cached result.
func (e *Engine) certifySlacksAt(lam float64) ([]ArcSlack, error) {
	tr, err := e.sched.Run(timesim.Options{Periods: e.periods + 1})
	if err != nil {
		return nil, err
	}
	slacks, err := e.certifySlacksFromTrace(tr, lam)
	tr.Release()
	return slacks, err
}

// certifySlacksSession is certifySlacksAt for incremental sessions: the
// certifying plain simulation is retained as the session's committed
// slack trace, and after a commit it is patched through the dirty cone
// alongside the cut-event traces (patchedAnalysis) instead of being
// re-run — the dual solve then reseeds from the patched times, so only
// the cheap relaxation part of the certificate is rebuilt. Callers
// hold the session lock.
func (e *Engine) certifySlacksSession(lam float64) ([]ArcSlack, error) {
	if e.slackTrace == nil {
		tr, err := e.sched.Run(timesim.Options{Periods: e.periods + 1})
		if err != nil {
			return nil, err
		}
		e.slackTrace = tr
	}
	return e.certifySlacksFromTrace(e.slackTrace, lam)
}

// certifySlacksFromTrace seeds the dual solve from a plain simulation
// at the schedule's current delays and returns the slack certificate.
func (e *Engine) certifySlacksFromTrace(tr *timesim.Trace, lam float64) ([]ArcSlack, error) {
	seed := make([]float64, e.g.NumEvents())
	for _, ev := range e.g.RepetitiveEvents() {
		best := 0.0
		for p := 0; p <= e.periods; p++ {
			if t, ok := tr.Time(ev, p); ok {
				if v := t - lam*float64(p); v > best {
					best = v
				}
			}
		}
		seed[ev] = best
	}
	u, err := mcr.FeasiblePotentialSeeded(e.g, lam, seed)
	if err != nil {
		return nil, fmt.Errorf("cycletime: certifying slacks at λ=%g: %w", lam, err)
	}
	return slacksFromPotential(e.g, lam, u), nil
}

// fastAnswer reports (λ, true) when the certificate proves the
// perturbed graph keeps the baseline cycle time:
//
//   - growing an arc within its certified slack keeps the potential u
//     feasible (λ' <= λ) while growing a delay never lowers the maximum
//     cycle ratio (λ' >= λ); the slackEps guard keeps the float-derived
//     certificate strictly on the safe side of the boundary, so a
//     perturbation landing exactly on the slack runs the full analysis
//     instead (same answer, simulated);
//   - shrinking an arc never raises any cycle ratio (λ' <= λ), and if
//     some cached critical cycle avoids the arc its ratio — and hence
//     λ — is untouched (λ' >= λ); this direction is exact and needs no
//     float margin.
func fastAnswer(c *certificate, current float64, arc int, newDelay float64) (stat.Ratio, bool) {
	delta := newDelay - current
	if delta == 0 {
		return c.result.CycleTime, true
	}
	s := c.slackByArc[arc]
	if math.IsNaN(s) {
		// Outside the repetitive core: every such arc leaves a
		// non-repetitive event (Validate forbids repetitive ->
		// non-repetitive arcs), so no path from a repetitive event —
		// in particular no cut-set simulation and no cycle — ever
		// traverses it. λ is independent of its delay.
		return c.result.CycleTime, true
	}
	if delta > 0 {
		// The guard margin scales with the operand magnitudes so the
		// float-derived certificate stays on the safe side of the
		// boundary at any delay scale, not just near unit delays.
		margin := slackEps * math.Max(1, math.Max(math.Abs(current), math.Abs(newDelay)))
		if delta <= s-margin {
			return c.result.CycleTime, true
		}
		return stat.Ratio{}, false
	}
	if !c.onAllCrit[arc] {
		return c.result.CycleTime, true
	}
	return stat.Ratio{}, false
}

// ensureRows builds the what-if rows for the given arcs: the arcs are
// grouped by head event, one event-initiated simulation per distinct
// head extracts the head→tail path-weight rows for every requested
// in-arc of that head, and the simulations run on the bounded worker
// pool. Rows already built are skipped, so a session sweeping
// repeatedly amortises the simulations across sweeps — and across
// commits: a commit invalidates only the rows inside the edit's
// forward cone (see invalidateRows).
//
// rows[arc][j] is the maximum weight of an unfolded path covering j
// periods from the arc's head back to its tail (NaN when none),
// extracted from the event-initiated simulation t_head. Closing such a
// path with the arc itself yields every cycle through the arc, so λ
// after raising the arc's delay to d is
//
//	max(λ, max_j (rows[arc][j] + d) / (j + marking)),
//
// exactly: cycles avoiding the arc keep their ratio, paths from a
// repetitive head never leave the repetitive core (Validate forbids
// repetitive -> non-repetitive arcs), and any non-simple closed walk
// the rows include decomposes into simple cycles whose best ratio
// bounds it. nil per arc until built; one simulation per distinct head
// serves all arcs entering it.
func (e *Engine) ensureRows(ctx context.Context, arcs []int) error {
	if e.rows == nil {
		e.rows = make([][]float64, e.g.NumArcs())
	}
	byHead := map[sg.EventID][]int{}
	for _, ai := range arcs {
		if e.rows[ai] == nil {
			byHead[e.g.Arc(ai).To] = append(byHead[e.g.Arc(ai).To], ai)
		}
	}
	if len(byHead) == 0 {
		return nil
	}
	heads := make([]sg.EventID, 0, len(byHead))
	for v := range byHead {
		heads = append(heads, v)
	}
	sp := obs.LeafN(ctx, spanRows)
	sp.AnnotateN(keyHeads, uint64(len(heads)))
	defer sp.End()
	simOpts := timesim.Options{Periods: e.periods + 1}
	errs := make([]error, len(heads))
	workers := 1
	if !e.opts.Serial && (e.opts.Parallel || len(heads) >= AutoParallelThreshold) {
		workers = runtime.GOMAXPROCS(0)
	}
	runIndexed(len(heads), workers, func(i int) {
		v := heads[i]
		tr, err := e.sched.RunFrom(v, simOpts)
		if err != nil {
			errs[i] = fmt.Errorf("cycletime: what-if row simulation from %q: %w", e.g.Event(v).Name, err)
			return
		}
		for _, ai := range byHead[v] {
			u := e.g.Arc(ai).From
			row := make([]float64, e.periods+1)
			for j := 0; j <= e.periods; j++ {
				if t, ok := tr.Time(u, j); ok && tr.Reached(u, j) {
					row[j] = t
				} else {
					row[j] = math.NaN()
				}
			}
			e.rows[ai] = row
		}
		tr.Release()
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// answerFromRow evaluates λ after raising one arc's delay to newDelay
// against the arc's what-if row: the best cycle through the arc closes
// a head→tail path with the perturbed arc, everything else keeps the
// baseline λ. Exact for newDelay >= the baseline delay.
func (e *Engine) answerFromRow(lam stat.Ratio, arc int, newDelay float64) stat.Ratio {
	m := 0
	if e.g.Arc(arc).Marked {
		m = 1
	}
	best := lam
	for j, t := range e.rows[arc] {
		if math.IsNaN(t) || j+m == 0 {
			continue
		}
		if r := stat.NewRatio(t+newDelay, j+m); best.Less(r) {
			best = r
		}
	}
	return best.Normalize()
}

// validateWhatIf checks one what-if assignment against the session
// graph — the single definition of delay validity shared by every
// sensitivity entry point. Messages carry no package prefix; callers
// add their own context.
func (e *Engine) validateWhatIf(arc int, delay float64) error {
	if arc < 0 || arc >= e.g.NumArcs() {
		return fmt.Errorf("arc index %d out of range [0,%d)", arc, e.g.NumArcs())
	}
	if delay < 0 || math.IsNaN(delay) {
		return fmt.Errorf("invalid delay %g on arc %d", delay, arc)
	}
	return nil
}

// whatIf answers one sensitivity query: slack fast path, else the
// what-if row (exact for increases), else full analysis.
func (e *Engine) whatIf(ctx context.Context, arc int, newDelay float64) (stat.Ratio, error) {
	if err := e.validateWhatIf(arc, newDelay); err != nil {
		return stat.Ratio{}, fmt.Errorf("cycletime: %w", err)
	}
	c, err := e.ensureCert(ctx)
	if err != nil {
		return stat.Ratio{}, err
	}
	sp := obs.FromContext(ctx)
	if lam, ok := fastAnswer(c, e.overlay.Delay(arc), arc, newDelay); ok {
		e.counters.fastPathHits.Add(1)
		sp.SetTierN(tierFastPath)
		return lam, nil
	}
	if newDelay > e.overlay.Delay(arc) {
		if err := e.ensureRows(ctx, []int{arc}); err != nil {
			return stat.Ratio{}, err
		}
		e.counters.tableHits.Add(1)
		sp.SetTierN(tierCachedRow)
		return e.answerFromRow(c.result.CycleTime, arc, newDelay), nil
	}
	sp.SetTierN(tierLambdaOnly)
	return e.whatIfFull(ctx, arc, newDelay)
}

// whatIfFull perturbs one arc in place, re-analyses against the
// compiled schedule, and restores the baseline delay. The cached
// certificate stays valid because the baseline is restored exactly.
// Only λ is needed, so the analysis skips pass 2 (winner re-simulation
// and critical-cycle backtracking).
func (e *Engine) whatIfFull(ctx context.Context, arc int, newDelay float64) (stat.Ratio, error) {
	old := e.overlay.Delay(arc)
	if err := e.overlay.SetDelay(arc, newDelay); err != nil {
		return stat.Ratio{}, err
	}
	e.refresh()
	res, err := e.runAnalysis(ctx, true)
	// Restore before error handling so the session baseline survives a
	// failed analysis. The old delay was valid when it was read, so a
	// restore failure means the session invariants are already broken;
	// it must surface, never be discarded — a silently kept perturbation
	// would corrupt every later answer of the session.
	if restoreErr := e.overlay.SetDelay(arc, old); restoreErr != nil {
		err = errors.Join(err, fmt.Errorf(
			"cycletime: restoring baseline delay %g on arc %d after what-if: %w", old, arc, restoreErr))
	}
	e.refresh()
	if err != nil {
		return stat.Ratio{}, err
	}
	return res.CycleTime, nil
}

// syncedClones returns n worker engines re-synced to the session's
// current baseline delays, creating (and caching) any that do not
// exist yet. Runs serially under the session lock; the clones are then
// used exclusively by the sweep's worker goroutines.
func (e *Engine) syncedClones(n int) ([]*Engine, error) {
	for len(e.sweepClones) < n {
		we, err := e.clone(true)
		if err != nil {
			return nil, err
		}
		e.sweepClones = append(e.sweepClones, we)
	}
	for ci, we := range e.sweepClones[:n] {
		for i := 0; i < e.g.NumArcs(); i++ {
			if d := e.overlay.Delay(i); we.overlay.Delay(i) != d {
				if err := we.overlay.SetDelay(i, d); err != nil {
					// The session delay was valid, so this clone's overlay
					// has broken invariants and is now partially synced:
					// drop it from the pool so no later sweep can reuse the
					// corrupted delay state, and surface the failure.
					e.sweepClones = append(e.sweepClones[:ci], e.sweepClones[ci+1:]...)
					return nil, fmt.Errorf("cycletime: syncing sweep clone %d (arc %d to %g): %w", ci, i, d, err)
				}
			}
		}
		we.refresh()
	}
	return e.sweepClones[:n], nil
}

// clone derives an engine over the same current baseline delays with a
// private overlay and schedule, sharing the parent's counters. Worker
// clones (serial=true) run their b simulations on one goroutine — the
// sweep's worker pool already saturates the CPUs — which yields
// identical Results by the scheduling-determinism guarantee.
func (e *Engine) clone(serial bool) (*Engine, error) {
	ov := sg.NewOverlay(e.g)
	sched, err := timesim.Compile(ov.Graph())
	if err != nil {
		return nil, err
	}
	opts := e.opts
	if serial {
		opts.Serial, opts.Parallel = true, false
	}
	return &Engine{
		overlay:  ov,
		g:        ov.Graph(),
		sched:    sched,
		cut:      e.cut,
		periods:  e.periods,
		opts:     opts,
		counters: e.counters,
	}, nil
}

// runAnalysis executes the paper's two-pass algorithm (§VII) against
// the compiled schedule at the schedule's current delays, without
// touching the session's retained traces — the form the what-if,
// bounds and Monte-Carlo paths use on temporarily perturbed delays.
// With lambdaOnly set it stops after pass 1 — λ and the series are
// complete, only the critical-cycle extraction is skipped. Callers
// hold the session lock or own the engine exclusively.
func (e *Engine) runAnalysis(ctx context.Context, lambdaOnly bool) (*Result, error) {
	res, err := e.pass1Analysis(ctx, false)
	if err != nil {
		return nil, err
	}
	if lambdaOnly {
		return res, nil
	}
	if err := e.extractCriticals(ctx, res); err != nil {
		return nil, err
	}
	return res, nil
}

// dedupeCycles collapses rotation-equal cycles, keeping first-seen
// (winner) order — shared by the full and patched analysis paths so
// both produce identical Critical lists.
func dedupeCycles(cycs []*CriticalCycle) []CriticalCycle {
	var out []CriticalCycle
	var anchors []int // least-rotation anchor of each cycle in out
	for _, cyc := range cycs {
		cStart := leastRotation(cyc.Arcs)
		dup := false
		for k := range out {
			if sameCycle(&out[k], anchors[k], cyc, cStart) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, *cyc)
			anchors = append(anchors, cStart)
		}
	}
	return out
}

// pass1Analysis runs pass 1 of the session analysis (Prop. 7): the b
// event-initiated simulations and their distance series, yielding λ.
// With retain set the simulations are kept as the session's committed
// traces, which later post-commit analyses patch in place. Retained
// traces deliberately do NOT track parents — patches and their flood
// bail-outs then move a third of the memory, and the lazy pass 2
// re-simulates only the λ winners with parents when critical cycles
// are actually requested. Without retain each trace's slab is returned
// to the pool as soon as its series is extracted (at most `workers`
// simulations of memory live at once) — and when even one slab would
// blow the window budget (Options.WindowBytes), the simulations run
// the two-row memory-bounded kernel instead, which materialises no
// slab at all. Callers hold the session lock.
func (e *Engine) pass1Analysis(ctx context.Context, retain bool) (*Result, error) {
	e.counters.analyses.Add(1)
	cut := e.cut
	simOpts := timesim.Options{Periods: e.periods + 1}
	workers := e.workerCount(len(cut))
	sp := obs.LeafN(ctx, spanPass1)
	sp.AnnotateN(keyCut, uint64(len(cut)))
	sp.AnnotateN(keyPeriods, uint64(e.periods))
	defer sp.End()
	if retain {
		// Retaining sessions never window: incremental patching needs
		// the materialised slabs.
		e.counters.slabP1.Add(1)
		sp.SetTierN(tierSlab)
		traces := make([]*timesim.Trace, len(cut))
		simErrs := make([]error, len(cut))
		runIndexed(len(cut), workers, func(i int) {
			traces[i], simErrs[i] = e.sched.RunFrom(cut[i], simOpts)
		})
		release := func() {
			for _, tr := range traces {
				if tr != nil {
					tr.Release()
				}
			}
		}
		for i, err := range simErrs {
			if err != nil {
				release()
				return nil, fmt.Errorf("cycletime: simulating from %q: %w", e.g.Event(cut[i]).Name, err)
			}
		}
		res, err := e.resultFromTraces(traces)
		if err != nil {
			release()
			return nil, err
		}
		e.simTraces = traces
		return res, nil
	}
	series := make([]BorderSeries, len(cut))
	simErrs := make([]error, len(cut))
	distSlab := make([]float64, len(cut)*e.periods)
	if e.windowPass1() {
		e.counters.windowedP1.Add(1)
		sp.SetTierN(tierWindow)
		runIndexed(len(cut), workers, func(i int) {
			out := make([]float64, e.periods)
			if err := e.sched.RunFromWindow(cut[i], e.periods, out); err != nil {
				simErrs[i] = err
				return
			}
			series[i] = seriesFromWindow(cut[i], out, distSlab[i*e.periods:(i+1)*e.periods:(i+1)*e.periods])
		})
	} else {
		e.counters.slabP1.Add(1)
		sp.SetTierN(tierSlab)
		runIndexed(len(cut), workers, func(i int) {
			tr, err := e.sched.RunFrom(cut[i], simOpts)
			if err != nil {
				simErrs[i] = err
				return
			}
			series[i] = extractSeries(tr, cut[i], e.periods, distSlab[i*e.periods:(i+1)*e.periods:(i+1)*e.periods])
			tr.Release()
		})
	}
	for i, err := range simErrs {
		if err != nil {
			return nil, fmt.Errorf("cycletime: simulating from %q: %w", e.g.Event(cut[i]).Name, err)
		}
	}
	return e.assembleSeries(series)
}

// windowPass1 reports whether a non-retaining pass 1 should use the
// memory-bounded two-row kernel: windowing is enabled and one full
// trace slab would exceed the budget. Retaining sessions never
// window — incremental patching needs the materialised traces.
func (e *Engine) windowPass1() bool {
	wb := e.opts.WindowBytes
	if wb < 0 {
		return false
	}
	if wb == 0 {
		wb = DefaultWindowBytes
	}
	return e.sched.SlabBytes(e.periods+2) > wb
}

// resultFromTraces assembles the pass-1 Result from committed
// cut-event traces without simulating: series extraction plus λ. The
// traces are bit-identical to what a from-scratch pass 1 would
// simulate, so the Result is too.
func (e *Engine) resultFromTraces(traces []*timesim.Trace) (*Result, error) {
	series := make([]BorderSeries, len(e.cut))
	distSlab := make([]float64, len(e.cut)*e.periods)
	for i, ev := range e.cut {
		series[i] = extractSeries(traces[i], ev, e.periods, distSlab[i*e.periods:(i+1)*e.periods:(i+1)*e.periods])
	}
	return e.assembleSeries(series)
}

// assembleSeries folds the per-cut-event series into a pass-1 Result.
func (e *Engine) assembleSeries(series []BorderSeries) (*Result, error) {
	best := stat.Ratio{Num: -1, Den: 1}
	for i := range series {
		if best.Less(series[i].Best) {
			best = series[i].Best
		}
	}
	if best.Num < 0 {
		return nil, fmt.Errorf("cycletime: no cut-set event re-occurred within %d periods; graph has no cycles through %v",
			e.periods, e.g.EventNames(e.cut))
	}
	return &Result{Periods: e.periods, Series: series, CycleTime: best.Normalize()}, nil
}
