package cycletime

import (
	"math/rand"
	"sync"
	"testing"

	"tsg/internal/gen"
	"tsg/internal/stat"
)

// TestEngineConcurrentReadersWithWriters is the session-lock stress
// test: parallel Analyze/Slacks/SensitivitySweep readers interleaved
// with SetDelay writers on one engine. Every answer must match the
// serial oracle for one of the committed delay states — the sweep
// vector in particular must be consistent with a SINGLE state, proving
// queries see committed baselines atomically and never a half-applied
// edit. Run under -race (the CI race step covers this package).
func TestEngineConcurrentReadersWithWriters(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, err := gen.RandomLive(rng, gen.RandomOptions{Events: 120, Border: 6, ExtraArcs: 120, MaxDelay: 8})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	base, err := Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// The writer toggles the delay of an arc lying on a critical cycle,
	// so the committed state genuinely moves λ.
	hot := base.Critical[0].Arcs[0]
	d0 := g.Arc(hot).Delay
	states := []float64{d0, d0*2 + 1, d0*4 + 3}

	// Candidate set for the sweeps: a spread of increases (fast path /
	// what-if rows) plus a decrease on the hot arc, which forces the
	// exclusive full-analysis path through the worker clones.
	var cands []WhatIf
	for a := 0; a < g.NumArcs() && len(cands) < 10; a += g.NumArcs() / 10 {
		cands = append(cands, WhatIf{Arc: a, Delay: g.Arc(a).Delay * 1.5})
	}
	cands = append(cands, WhatIf{Arc: hot, Delay: d0 * 0.5})

	// Serial oracle per committed state: λ and the full sweep vector.
	oracleLam := make([]stat.Ratio, len(states))
	oracleSweep := make([][]stat.Ratio, len(states))
	for si, d := range states {
		gs, err := g.WithArcDelay(hot, d)
		if err != nil {
			t.Fatalf("WithArcDelay: %v", err)
		}
		res, err := Analyze(gs)
		if err != nil {
			t.Fatalf("oracle Analyze state %d: %v", si, err)
		}
		oracleLam[si] = res.CycleTime
		vec := make([]stat.Ratio, len(cands))
		for ci, cd := range cands {
			lam, err := Sensitivity(gs, cd.Arc, cd.Delay)
			if err != nil {
				t.Fatalf("oracle Sensitivity state %d cand %d: %v", si, ci, err)
			}
			vec[ci] = lam
		}
		oracleSweep[si] = vec
	}
	if oracleLam[0].Equal(oracleLam[1]) || oracleLam[1].Equal(oracleLam[2]) {
		t.Fatalf("fixture broken: states do not separate λ: %v", oracleLam)
	}

	e, err := NewEngine(g)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}

	const writes = 40
	done := make(chan struct{})
	var wg sync.WaitGroup
	fail := func(format string, args ...interface{}) {
		t.Helper()
		t.Errorf(format, args...)
	}

	// Writer: commit each state in turn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < writes; i++ {
			if err := e.SetDelay(hot, states[i%len(states)]); err != nil {
				fail("SetDelay: %v", err)
				return
			}
		}
	}()

	matchLam := func(lam stat.Ratio) bool {
		for _, o := range oracleLam {
			if lam.Equal(o) {
				return true
			}
		}
		return false
	}

	// Analyze readers.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := e.Analyze()
				if err != nil {
					fail("Analyze: %v", err)
					return
				}
				if !matchLam(res.CycleTime) {
					fail("Analyze λ = %v matches no committed state %v", res.CycleTime, oracleLam)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	// Slacks reader: the certificate is state-dependent and not unique,
	// so assert its invariants — feasibility (no negative slack) and a
	// non-empty tight set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			sl, err := e.Slacks()
			if err != nil {
				fail("Slacks: %v", err)
				return
			}
			tight := 0
			for _, s := range sl {
				if s.Slack < 0 {
					fail("negative slack %g on arc %d", s.Slack, s.Arc)
					return
				}
				if s.Tight {
					tight++
				}
			}
			if len(sl) == 0 || tight == 0 {
				fail("slack certificate degenerate: %d slacks, %d tight", len(sl), tight)
				return
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()

	// Sweep readers: the whole vector must match one committed state.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lams, err := e.SensitivitySweep(cands)
				if err != nil {
					fail("SensitivitySweep: %v", err)
					return
				}
				consistent := false
				for _, vec := range oracleSweep {
					all := true
					for i := range vec {
						if !lams[i].Equal(vec[i]) {
							all = false
							break
						}
					}
					if all {
						consistent = true
						break
					}
				}
				if !consistent {
					fail("sweep vector %v matches no single committed state", lams)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}

	wg.Wait()
	if t.Failed() {
		return
	}

	// After the last commit the engine must agree with the serial
	// oracle of the final state exactly.
	final := (writes - 1) % len(states)
	res, err := e.Analyze()
	if err != nil {
		t.Fatalf("final Analyze: %v", err)
	}
	if !res.CycleTime.Equal(oracleLam[final]) {
		t.Fatalf("final λ = %v, oracle %v", res.CycleTime, oracleLam[final])
	}
	lams, err := e.SensitivitySweep(cands)
	if err != nil {
		t.Fatalf("final sweep: %v", err)
	}
	for i, lam := range lams {
		if !lam.Equal(oracleSweep[final][i]) {
			t.Fatalf("final sweep cand %d: λ = %v, oracle %v", i, lam, oracleSweep[final][i])
		}
	}
}

// TestEngineSizeHint pins the cost-accounting hook the serving cache
// uses: the hint is positive, grows with the workload, and grows again
// once the certificate and what-if rows are built.
func TestEngineSizeHint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small, err := gen.RandomLive(rng, gen.RandomOptions{Events: 50, Border: 4, ExtraArcs: 50, MaxDelay: 8})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	big, err := gen.RandomLive(rng, gen.RandomOptions{Events: 1000, Border: 8, ExtraArcs: 1000, MaxDelay: 8})
	if err != nil {
		t.Fatalf("RandomLive: %v", err)
	}
	es, err := NewEngine(small)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	eb, err := NewEngine(big)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	hs, hb := es.SizeHint(), eb.SizeHint()
	if hs <= 0 || hb <= 0 {
		t.Fatalf("non-positive size hints: %d, %d", hs, hb)
	}
	if hb <= hs {
		t.Fatalf("big workload hint %d not above small workload hint %d", hb, hs)
	}
	cold := eb.SizeHint()
	if _, err := eb.Slacks(); err != nil {
		t.Fatalf("Slacks: %v", err)
	}
	if _, err := eb.Sensitivity(0, big.Arc(0).Delay*3); err != nil {
		t.Fatalf("Sensitivity: %v", err)
	}
	if warm := eb.SizeHint(); warm <= cold {
		t.Fatalf("hint did not grow with the certificate: cold %d, warm %d", cold, warm)
	}
}
