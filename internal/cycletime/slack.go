package cycletime

import (
	"fmt"
	"math"

	"tsg/internal/mcr"
	"tsg/internal/sg"
	"tsg/internal/stat"
)

// ArcSlack is the timing slack of one arc at the graph's cycle time: how
// much the arc's delay may grow before the cycle time increases. Tight
// arcs (zero slack) are the ones lying on critical cycles — the
// bottleneck set a designer must attack to speed the system up.
type ArcSlack struct {
	// Arc indexes the arc in the graph.
	Arc int
	// Slack is u(to) − u(from) − (τ − λ·m) for the potential u
	// certifying λ (the dual solution of the Burns LP).
	Slack float64
	// Tight reports Slack == 0 up to rounding. Every arc of every
	// critical cycle is tight; the converse need not hold, because the
	// certifying potential is not unique.
	Tight bool
}

// slackEps separates rounding noise from genuine slack.
const slackEps = 1e-9

// Slacks computes per-arc timing slacks at the given cycle time
// (normally Result.CycleTime). Only arcs of the repetitive core carry a
// slack; disengageable and prefix arcs are skipped. The sum of (negated)
// slacks around any cycle equals ε·λ − C, so a cycle is critical iff all
// its arcs are tight.
//
// This is the general form accepting an arbitrary λ (it fails when λ is
// below the cycle time); it cold-starts the dual Bellman–Ford solve.
// Engine.Slacks is the session form: it certifies λ itself and seeds
// the solve from its own simulation times, converging in a fraction of
// the relaxation rounds — onto an equally valid but possibly different
// certificate (the potential is not unique), so individual slack
// values may differ between the two forms.
func Slacks(g *sg.Graph, lambda stat.Ratio) ([]ArcSlack, error) {
	lam := lambda.Float()
	u, err := mcr.FeasiblePotential(g, lam)
	if err != nil {
		return nil, fmt.Errorf("cycletime: slacks at λ=%v: %w", lambda, err)
	}
	return slacksFromPotential(g, lam, u), nil
}

// slacksFromPotential evaluates the per-arc slacks of the repetitive
// core against a feasible potential u at λ.
func slacksFromPotential(g *sg.Graph, lam float64, u []float64) []ArcSlack {
	var out []ArcSlack
	for i := 0; i < g.NumArcs(); i++ {
		a := g.Arc(i)
		if a.Once || !g.Event(a.From).Repetitive || !g.Event(a.To).Repetitive {
			continue
		}
		w := a.Delay
		if a.Marked {
			w -= lam
		}
		s := u[a.To] - u[a.From] - w
		if math.Abs(s) < slackEps {
			s = 0
		}
		out = append(out, ArcSlack{Arc: i, Slack: s, Tight: s == 0})
	}
	return out
}

// Sensitivity reports how the cycle time responds to a delay change on
// one arc: it re-analyses the graph with the arc's delay set to the
// given value. Tight arcs increase λ (by Δ/ε for the critical cycle
// through them); slack arcs absorb changes up to their slack. The
// original graph is left untouched.
//
// This one-shot form pays a full graph copy and recompile per call and
// is retained as the independent oracle the engine is differentially
// tested against; sweeps should use Engine.Sensitivity or
// Engine.SensitivitySweep, which reuse one compiled session and answer
// certified perturbations without simulating at all.
func Sensitivity(g *sg.Graph, arc int, newDelay float64) (stat.Ratio, error) {
	ng, err := g.WithArcDelay(arc, newDelay)
	if err != nil {
		return stat.Ratio{}, err
	}
	res, err := Analyze(ng)
	if err != nil {
		return stat.Ratio{}, err
	}
	return res.CycleTime, nil
}
