package cycletime_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// windowFixtures are the graphs the windowed pass-1 path is
// differentially tested on: the generator families plus the huge-graph
// families at mid size.
func windowFixtures(t *testing.T) map[string]*sg.Graph {
	t.Helper()
	fx := map[string]*sg.Graph{"oscillator": gen.Oscillator()}
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	fx["ring5"] = ring
	st, err := gen.Stack(13)
	if err != nil {
		t.Fatalf("Stack: %v", err)
	}
	fx["stack13"] = st
	pipe, err := gen.MullerPipeline(8, 3, 2, 3)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	fx["pipeline8"] = pipe
	pg, err := gen.PipeGrid(gen.PipeGridOptions{Sites: 6, Depth: 9, Width: 4, Seed: 21})
	if err != nil {
		t.Fatalf("PipeGrid: %v", err)
	}
	fx["pipegrid"] = pg
	mesh, err := gen.Mesh(gen.MeshOptions{W: 11, H: 5, Seed: 22})
	if err != nil {
		t.Fatalf("Mesh: %v", err)
	}
	fx["mesh"] = mesh
	tor, err := gen.TreeOfRings(gen.TreeRingOptions{Sites: 5, Levels: 3, Fanout: 2, Seed: 23})
	if err != nil {
		t.Fatalf("TreeOfRings: %v", err)
	}
	fx["treering"] = tor
	rng := rand.New(rand.NewSource(888))
	for seed := 0; seed < 4; seed++ {
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: 100 + 40*seed, Border: 3 + 2*seed, ExtraArcs: 180, MaxDelay: 16,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		fx[fmt.Sprintf("random%d", seed)] = g
	}
	return fx
}

// TestAnalyzeWindowedMatchesSlab forces the memory-bounded pass-1
// kernel (WindowBytes: 1 — any slab exceeds one byte) against the slab
// kernel (WindowBytes: -1) and requires the full Result — λ, series
// distances bit for bit, and critical cycles — to be identical.
func TestAnalyzeWindowedMatchesSlab(t *testing.T) {
	for name, g := range windowFixtures(t) {
		t.Run(name, func(t *testing.T) {
			slab, err := cycletime.AnalyzeOpts(g, cycletime.Options{WindowBytes: -1})
			if err != nil {
				t.Fatalf("slab Analyze: %v", err)
			}
			windowed, err := cycletime.AnalyzeOpts(g, cycletime.Options{WindowBytes: 1})
			if err != nil {
				t.Fatalf("windowed Analyze: %v", err)
			}
			diffResults(t, windowed, slab)
		})
	}
}

// TestAnalyzeWindowedDefaultThreshold checks that the default budget
// leaves ordinary graphs on the slab path (results equal either way,
// so this is about not perturbing the small-graph default) and that an
// explicit byte budget picks the windowed path deterministically.
func TestAnalyzeWindowedDefaultThreshold(t *testing.T) {
	g, err := gen.MullerRing(9)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	def, err := cycletime.AnalyzeOpts(g, cycletime.Options{})
	if err != nil {
		t.Fatalf("default Analyze: %v", err)
	}
	slab, err := cycletime.AnalyzeOpts(g, cycletime.Options{WindowBytes: -1})
	if err != nil {
		t.Fatalf("slab Analyze: %v", err)
	}
	diffResults(t, def, slab)
}

// TestEngineWindowedSizeHint pins that a windowed engine advertises a
// smaller footprint than a slab engine on a graph big enough for the
// slab to dominate.
func TestEngineWindowedSizeHint(t *testing.T) {
	g, err := gen.PipeGridSized(20000, 8, 4, 77)
	if err != nil {
		t.Fatalf("PipeGridSized: %v", err)
	}
	we, err := cycletime.NewEngineOpts(g, cycletime.Options{WindowBytes: 1, NoIncremental: true})
	if err != nil {
		t.Fatalf("NewEngineOpts(window): %v", err)
	}
	se, err := cycletime.NewEngineOpts(g, cycletime.Options{WindowBytes: -1, NoIncremental: true})
	if err != nil {
		t.Fatalf("NewEngineOpts(slab): %v", err)
	}
	if we.SizeHint() >= se.SizeHint() {
		t.Fatalf("windowed SizeHint %d not below slab SizeHint %d", we.SizeHint(), se.SizeHint())
	}
	wres, err := we.Analyze()
	if err != nil {
		t.Fatalf("windowed engine Analyze: %v", err)
	}
	sres, err := se.Analyze()
	if err != nil {
		t.Fatalf("slab engine Analyze: %v", err)
	}
	diffResults(t, wres, sres)
}
