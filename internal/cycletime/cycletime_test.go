package cycletime_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// TestOscillator checks the full §VIII.C analysis: λ = 10, the δ series
// collected from border events a+ (10, 10) and b+ (8, 9), the
// on-critical classification (Prop. 7/8) and the critical cycle
// a+ → c+ → a- → c- (C1 of Example 5; the §VIII.C text prints C2, an
// erratum — C2 has length 8).
func TestOscillator(t *testing.T) {
	g := gen.Oscillator()
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if res.CycleTime.Float() != 10 {
		t.Errorf("cycle time = %v, want 10", res.CycleTime)
	}
	if res.Periods != 2 {
		t.Errorf("periods = %d, want b = 2", res.Periods)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series count = %d, want 2 border events", len(res.Series))
	}
	bySeries := map[string][]float64{}
	onCrit := map[string]bool{}
	for _, s := range res.Series {
		name := g.Event(s.Event).Name
		bySeries[name] = s.Distances
		onCrit[name] = s.OnCritical
	}
	if d := bySeries["a+"]; len(d) != 2 || d[0] != 10 || d[1] != 10 {
		t.Errorf("δ_a+0 series = %v, want [10 10] (§VIII.C)", d)
	}
	if d := bySeries["b+"]; len(d) != 2 || d[0] != 8 || d[1] != 9 {
		t.Errorf("δ_b+0 series = %v, want [8 9] (§VIII.C)", d)
	}
	if !onCrit["a+"] || onCrit["b+"] {
		t.Errorf("on-critical flags a+=%v b+=%v, want true/false (Prop. 7/8)",
			onCrit["a+"], onCrit["b+"])
	}
	if len(res.Critical) != 1 {
		t.Fatalf("critical cycles = %d, want 1", len(res.Critical))
	}
	crit := res.Critical[0]
	if crit.Length != 10 || crit.Period != 1 {
		t.Errorf("critical cycle length/ε = %g/%d, want 10/1", crit.Length, crit.Period)
	}
	names := g.EventNames(crit.Events)
	joined := strings.Join(names, " ")
	for _, ev := range []string{"a+", "c+", "a-", "c-"} {
		if !strings.Contains(joined, ev) {
			t.Errorf("critical cycle = %v, want C1 {a+ c+ a- c-}", names)
		}
	}
	if got := crit.Format(g); !strings.Contains(got, "-3->") || !strings.Contains(got, "-2->") {
		t.Errorf("Format = %q, want delay-annotated arrows", got)
	}
}

// TestMullerRing5 checks §VIII.D end to end: border set of 4 events,
// t_{o1+0}(o1+_i) = 6, 13, 20, 26 over the required 4 periods, cycle
// time exactly 20/3, and a critical cycle covering 3 periods.
func TestMullerRing5(t *testing.T) {
	g, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	border := g.EventNames(g.BorderEvents())
	if strings.Join(border, ",") != "o1+,o2+,o3+,o5-" {
		t.Fatalf("border = %v, want [o1+ o2+ o3+ o5-] (a↑ b↑ c↑ e↓ in the paper)", border)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	r := res.CycleTime.Normalize()
	if r.Num != 20 || r.Den != 3 {
		t.Fatalf("cycle time = %v, want 20/3 (§VIII.D)", res.CycleTime)
	}
	// The a+-initiated distance series over 4 periods: 6, 13/2, 20/3, 26/4.
	var a1 *cycletime.BorderSeries
	for i := range res.Series {
		if g.Event(res.Series[i].Event).Name == "o1+" {
			a1 = &res.Series[i]
		}
	}
	if a1 == nil {
		t.Fatal("no series for o1+")
	}
	want := []float64{6, 13.0 / 2, 20.0 / 3, 26.0 / 4}
	if len(a1.Distances) != 4 {
		t.Fatalf("o1+ series length = %d, want 4 (b = 4 periods)", len(a1.Distances))
	}
	for i, w := range want {
		if math.Abs(a1.Distances[i]-w) > 1e-12 {
			t.Errorf("δ_o1+0(o1+_%d) = %g, want %g (§VIII.D table)", i+1, a1.Distances[i], w)
		}
	}
	if !a1.OnCritical {
		t.Error("o1+ not marked on-critical; the ring is symmetric, every border event is")
	}
	for _, c := range res.Critical {
		if c.Period != 3 {
			t.Errorf("critical cycle ε = %d, want 3", c.Period)
		}
		if c.Length != 20 {
			t.Errorf("critical cycle length = %g, want 20", c.Length)
		}
	}
}

// TestMullerRingExtendedSeries reproduces the 10-period table of §VIII.D:
// t_{a+0}(a+_i) = 6 13 20 26 33 40 46 53 60 66 and the per-period
// occurrence distances 6 7 7 | 6 7 7 | 6 7 7 | 6.
func TestMullerRingExtendedSeries(t *testing.T) {
	g, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	res, err := cycletime.AnalyzeOpts(g, cycletime.Options{Periods: 10})
	if err != nil {
		t.Fatalf("AnalyzeOpts: %v", err)
	}
	var a1 *cycletime.BorderSeries
	for i := range res.Series {
		if g.Event(res.Series[i].Event).Name == "o1+" {
			a1 = &res.Series[i]
		}
	}
	if a1 == nil {
		t.Fatal("no series for o1+")
	}
	wantT := []float64{6, 13, 20, 26, 33, 40, 46, 53, 60, 66}
	for i, w := range wantT {
		got := a1.Distances[i] * float64(i+1) // δ·i = t
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("t_o1+0(o1+_%d) = %g, want %g (§VIII.D table)", i+1, got, w)
		}
	}
	r := res.CycleTime.Normalize()
	if r.Num != 20 || r.Den != 3 {
		t.Errorf("cycle time over 10 periods = %v, want 20/3", res.CycleTime)
	}
}

// TestStackConstantResponse checks the §VIII.B workload family: the
// stack's cycle time is the local handshake period (4) regardless of
// depth — the defining property of a constant-response-time stack.
func TestStackConstantResponse(t *testing.T) {
	for _, cells := range []int{1, 2, 5, 13, 31} {
		g, err := gen.Stack(cells)
		if err != nil {
			t.Fatalf("Stack(%d): %v", cells, err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze(stack-%d): %v", cells, err)
		}
		if got := res.CycleTime.Float(); got != 4 {
			t.Errorf("stack-%d cycle time = %v, want 4 (constant response)", cells, res.CycleTime)
		}
	}
	// The paper's benchmark size: 66 events.
	g, err := gen.Stack(31)
	if err != nil {
		t.Fatalf("Stack(31): %v", err)
	}
	if g.NumEvents() != 66 {
		t.Errorf("stack-31 has %d events, want 66 (§VIII.B)", g.NumEvents())
	}
}

// TestAgainstOracle cross-validates the paper's algorithm against the
// simple-cycle enumeration oracle (§V) on random live graphs.
func TestAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		b := 1 + rng.Intn(n)
		extra := rng.Intn(2 * n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: extra, MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("trial %d: RandomLive: %v", trial, err)
		}
		want, _, err := cycles.MaxRatio(g, 0)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("trial %d: Analyze(%s): %v", trial, g, err)
		}
		if !res.CycleTime.Equal(want) {
			t.Errorf("trial %d: %s: algorithm λ = %v, oracle λ = %v",
				trial, g, res.CycleTime, want)
		}
		// Every reported critical cycle must attain λ exactly.
		for _, c := range res.Critical {
			if !c.Ratio().Equal(want) {
				t.Errorf("trial %d: critical cycle ratio %v != λ %v", trial, c.Ratio(), want)
			}
		}
		// Prop. 8: off-critical series stay strictly below λ.
		for _, s := range res.Series {
			if s.OnCritical {
				continue
			}
			for _, d := range s.Distances {
				if !math.IsNaN(d) && d >= want.Float()+1e-9 {
					t.Errorf("trial %d: off-critical event %s has δ = %g >= λ = %v",
						trial, g.Event(s.Event).Name, d, want)
				}
			}
		}
	}
}

// TestCutSetOverride runs the analysis from the minimum cut set instead
// of the border set (the ablation of §VI.B: the paper notes one period
// suffices for the oscillator because its minimum cut set has size 1).
func TestCutSetOverride(t *testing.T) {
	g := gen.Oscillator()
	min, err := g.MinimumCutSet()
	if err != nil {
		t.Fatalf("MinimumCutSet: %v", err)
	}
	res, err := cycletime.AnalyzeOpts(g, cycletime.Options{CutSet: min})
	if err != nil {
		t.Fatalf("AnalyzeOpts: %v", err)
	}
	if res.CycleTime.Float() != 10 {
		t.Errorf("cycle time from minimum cut set = %v, want 10", res.CycleTime)
	}
	if res.Periods != 2 {
		t.Errorf("periods = %d, want the safe default b = 2", res.Periods)
	}
	// The paper's §VIII.C remark: because the oscillator's minimum cut
	// set has one element (and all its cycles have ε = 1), one period
	// suffices — expressible with an explicit override.
	res1, err := cycletime.AnalyzeOpts(g, cycletime.Options{CutSet: min, Periods: 1})
	if err != nil {
		t.Fatalf("AnalyzeOpts(periods=1): %v", err)
	}
	if res1.CycleTime.Float() != 10 || res1.Periods != 1 {
		t.Errorf("1-period minimum-cut analysis = %v over %d periods, want 10 over 1",
			res1.CycleTime, res1.Periods)
	}

	// A non-cut-set must be rejected.
	if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{
		CutSet: []sg.EventID{g.MustEvent("a+")},
	}); err == nil {
		t.Error("AnalyzeOpts accepted a non-cut-set")
	}
	// Non-repetitive events are not valid cut-set members.
	if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{
		CutSet: []sg.EventID{g.MustEvent("e-")},
	}); err == nil {
		t.Error("AnalyzeOpts accepted a non-repetitive cut-set member")
	}
	if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{
		CutSet: []sg.EventID{sg.EventID(99)},
	}); err == nil {
		t.Error("AnalyzeOpts accepted an out-of-range cut-set member")
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g := gen.Oscillator()
	if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{Periods: -1}); err == nil {
		t.Error("negative periods accepted")
	}
	// A graph without repetitive events has no cycle time.
	acyclic, err := sg.NewBuilder("acyclic").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Arc("e-", "f-", 1).BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked: %v", err)
	}
	if _, err := cycletime.Analyze(acyclic); err == nil {
		t.Error("Analyze on acyclic graph succeeded, want error")
	}
}

// TestExactRatios verifies that cycle times are reported as exact
// rationals: a three-event ring with delays 1,1,1 and one token has
// λ = 3, and with two tokens on a five-ring of unit delays λ = 5/2.
func TestExactRatios(t *testing.T) {
	b := sg.NewBuilder("ring3").Events("x+", "y+", "z+").
		Arc("x+", "y+", 1).
		Arc("y+", "z+", 1).
		Arc("z+", "x+", 1, sg.Marked())
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r := res.CycleTime.Normalize(); r.Num != 3 || r.Den != 1 {
		t.Errorf("ring3 λ = %v, want 3", res.CycleTime)
	}

	b5 := sg.NewBuilder("ring5t2").Events("v0", "v1", "v2", "v3", "v4").
		Arc("v0", "v1", 1).
		Arc("v1", "v2", 1, sg.Marked()).
		Arc("v2", "v3", 1).
		Arc("v3", "v4", 1).
		Arc("v4", "v0", 1, sg.Marked())
	g5, err := b5.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res5, err := cycletime.Analyze(g5)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r := res5.CycleTime.Normalize(); r.Num != 5 || r.Den != 2 {
		t.Errorf("ring5 with 2 tokens λ = %v, want 5/2", res5.CycleTime)
	}
	for _, c := range res5.Critical {
		if c.Period != 2 {
			t.Errorf("critical ε = %d, want 2", c.Period)
		}
	}
}

// TestPeriodsDefaultIsSound documents why the default period count is b
// rather than the cut-set size: a graph whose critical cycle covers
// ε = 3 periods can share a single cut event with a lesser ε = 1 cycle.
// Simulating |cut| = 1 period from the cut set sees only the lesser
// cycle and silently reports the wrong λ; the b-period default is sound
// because ε <= b for every initially-safe graph. (Prop. 6's bound via
// the minimum cut set does not hold in general — see the cycles package
// tests and EXPERIMENTS.md.)
func TestPeriodsDefaultIsSound(t *testing.T) {
	g, err := sg.NewBuilder("two-loops").
		Events("x", "a", "b", "c").
		Arc("x", "a", 1).
		Arc("a", "x", 1, sg.Marked()). // small loop: ratio 2/1
		Arc("x", "b", 3, sg.Marked()).
		Arc("b", "c", 3, sg.Marked()).
		Arc("c", "x", 3, sg.Marked()). // big loop: ratio 9/3 = 3 (critical)
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want, _, err := cycles.MaxRatio(g, 0)
	if err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if want.Float() != 3 {
		t.Fatalf("oracle λ = %v, fixture broken", want)
	}
	cut := []sg.EventID{g.MustEvent("x")}
	if !g.IsCutSet(cut) {
		t.Fatal("fixture: {x} is not a cut set")
	}
	// Safe default: correct.
	res, err := cycletime.AnalyzeOpts(g, cycletime.Options{CutSet: cut})
	if err != nil {
		t.Fatalf("AnalyzeOpts: %v", err)
	}
	if !res.CycleTime.Equal(want) {
		t.Errorf("default-period cut-set analysis λ = %v, want %v", res.CycleTime, want)
	}
	// Forcing |cut| = 1 period demonstrates the hazard: only the small
	// loop is visible and the result is silently wrong. This is the
	// behaviour the default guards against.
	res1, err := cycletime.AnalyzeOpts(g, cycletime.Options{CutSet: cut, Periods: 1})
	if err != nil {
		t.Fatalf("AnalyzeOpts(periods=1): %v", err)
	}
	if res1.CycleTime.Float() != 2 {
		t.Errorf("1-period analysis λ = %v; expected the documented wrong answer 2", res1.CycleTime)
	}
}
