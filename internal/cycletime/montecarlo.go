package cycletime

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"tsg/internal/dist"
	"tsg/internal/obs"
	"tsg/internal/sg"
	"tsg/internal/stat"
	"tsg/internal/timesim"
)

// This file is the Monte-Carlo layer of the statistical timing
// subsystem: distributional cycle-time analysis (AnalyzeMC) and slack
// distributions (SlacksMC) over a delay model (internal/dist), both
// running on the engine's compiled kernel. Each sample is one delay
// vector drawn from the model, written into a worker's private overlay,
// refreshed into its compiled schedule in place (no re-Build, no
// re-Compile), and analysed with the paper's pass-1 algorithm — pass 2
// (the λ-winner re-simulation) runs only when per-arc criticality is
// requested. Samples fan out over the same bounded worker-clone pool
// the sensitivity sweeps use.
//
// On top of kernel reuse, the sampler prunes with upper bounds: λ is
// monotone in every delay (a maximum of delay sums — and the float
// evaluation is monotone too, since float add/max round monotonically),
// so one pass-1 analysis at the per-arc support maxima bounds each cut
// event's best distance over ALL samples. Per sample the cut events are
// simulated in descending bound order, and an event whose bound cannot
// raise the running maximum (cannot tie it, when criticality needs the
// winner set) is skipped — exactly, not approximately. On workloads
// where few cut events dominate, this collapses the paper's b
// simulations per sample to one or two.
//
// Determinism: sample i's delay vector is a pure function of (model,
// seed, i), blocks of samples are statically assigned to workers, and
// merging is ordered — λ moments and quantiles are folded in sample
// order by the coordinator, while per-arc slack accumulators merge in
// worker order. Criticality counts are integers and exact in any order.
// So: same seed + same worker count ⇒ bit-identical results; with early
// stopping off, the λ statistics are identical across worker counts too
// (waves — and hence a Tol-triggered stop point — depend on the worker
// count).
//
// Memory: the coordinator holds one wave of λ blocks (workers × block
// size floats) plus O(1) streaming estimators — never the full sample
// set.

// mcBlockSize is the number of consecutive samples one worker evaluates
// between coordinator merges. One wave is workers × mcBlockSize
// samples; convergence is checked at wave boundaries. It is also the
// batch width of the λ-only kernel: wide enough to amortise the
// structural pass, small enough that the rolling time rows and delay
// columns of a 2000-event graph stay cache-resident (measured optimum
// on the Random2000 workload).
const mcBlockSize = 16

// MCOptions tunes the Monte-Carlo analyses.
type MCOptions struct {
	// Samples is the sampling budget (default 1024). The run may stop
	// earlier when Tol is set and the estimates converge.
	Samples int
	// MinSamples is the number of samples drawn before convergence is
	// first checked (default min(256, Samples)).
	MinSamples int
	// Seed keys the deterministic sample streams. The same seed and
	// worker count reproduce results bit-identically.
	Seed uint64
	// Quantiles lists the λ quantiles to estimate, each in (0, 1).
	// Default {0.5, 0.95}.
	Quantiles []float64
	// Tol, when positive, enables early stopping: the run ends at the
	// first wave boundary (after MinSamples) where the confidence
	// interval half-width of every tracked quantile and of the mean is
	// at most Tol (absolute, in λ units).
	Tol float64
	// Confidence is the level of the convergence intervals (default
	// 0.95).
	Confidence float64
	// Criticality requests per-arc criticality: the fraction of samples
	// in which the arc lies on a critical cycle. It is the one option
	// that needs the analysis' pass 2 (winner re-simulation and
	// backtracking) per sample; without it only pass 1 runs.
	Criticality bool
	// Workers bounds the worker-clone pool (default GOMAXPROCS; 1 when
	// the engine was compiled Serial).
	Workers int
}

// QuantileEstimate is one estimated λ quantile.
type QuantileEstimate struct {
	// P is the tracked probability.
	P float64
	// Value is the P² estimate of the P-quantile of λ.
	Value float64
	// CIHalf is the half-width of the approximate confidence interval
	// of Value at the run's Confidence level.
	CIHalf float64
}

// MCResult is the outcome of a Monte-Carlo cycle-time analysis.
type MCResult struct {
	// Samples is the number of delay vectors actually evaluated.
	Samples int
	// Converged reports whether an early stop triggered (always false
	// when Tol is 0).
	Converged bool
	// Mean, Variance, Std, Min and Max summarise the λ sample.
	Mean, Variance, Std, Min, Max float64
	// MeanCIHalf is the half-width of the mean's confidence interval.
	MeanCIHalf float64
	// Quantiles holds the tracked quantile estimates, in option order.
	Quantiles []QuantileEstimate
	// Criticality, when requested, holds for every arc the fraction of
	// samples in which the arc lay on a critical cycle. Deterministic
	// (all-point) models yield exactly 0 or 1 per arc.
	Criticality []float64
}

// Quantile returns the estimate tracked for probability p, or false.
func (r *MCResult) Quantile(p float64) (QuantileEstimate, bool) {
	for _, q := range r.Quantiles {
		if q.P == p {
			return q, true
		}
	}
	return QuantileEstimate{}, false
}

// ArcSlackStats summarises the slack distribution of one arc across the
// Monte-Carlo samples.
type ArcSlackStats struct {
	// Arc indexes the arc in the graph.
	Arc int
	// Mean, Std, Min and Max summarise the sampled slacks.
	Mean, Std, Min, Max float64
	// TightFrac is the fraction of samples in which the arc was tight
	// (zero slack at that sample's certificate) — a slack-side
	// criticality measure.
	TightFrac float64
}

// AnalyzeMC runs a Monte-Carlo cycle-time analysis over the delay
// model: λ mean/variance/quantiles and (optionally) per-arc
// criticality. The compiled kernel is reused for every sample — each
// worker owns a cloned overlay + schedule and pays one in-place delay
// refresh per sample instead of a re-Build/re-Compile.
func (e *Engine) AnalyzeMC(m *dist.Model, opts MCOptions) (*MCResult, error) {
	return e.AnalyzeMCCtx(context.Background(), m, opts)
}

// AnalyzeMCCtx is AnalyzeMC with cooperative cancellation: workers
// check ctx between samples (and between cut-event batch simulations
// inside a block), so a run whose request deadline expired — or whose
// client disconnected — stops burning its worker pool within one
// sample's work per worker and returns ctx.Err(). A cancelled run
// commits nothing: the engine's baseline delays and certificate are
// untouched, so the session is immediately reusable.
func (e *Engine) AnalyzeMCCtx(ctx context.Context, m *dist.Model, opts MCOptions) (*MCResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	acc, err := e.runMC(ctx, m, opts, opts.Criticality, false)
	if err != nil {
		return nil, err
	}
	return acc.result(), nil
}

// SlacksMC estimates per-arc slack distributions under the delay model:
// for every sample, the sampled graph's cycle time is certified by one
// plain simulation seeding the dual solve (exactly the session slack
// path), and the per-arc slacks are folded into streaming accumulators.
// The returned rows cover the arcs of the repetitive core, in arc
// order, alongside the λ statistics of the same run.
func (e *Engine) SlacksMC(m *dist.Model, opts MCOptions) ([]ArcSlackStats, *MCResult, error) {
	return e.SlacksMCCtx(context.Background(), m, opts)
}

// SlacksMCCtx is SlacksMC with cooperative cancellation, with the same
// contract as AnalyzeMCCtx.
func (e *Engine) SlacksMCCtx(ctx context.Context, m *dist.Model, opts MCOptions) ([]ArcSlackStats, *MCResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	acc, err := e.runMC(ctx, m, opts, opts.Criticality, true)
	if err != nil {
		return nil, nil, err
	}
	return acc.slackStats(), acc.result(), nil
}

// mcAccum carries the merged state of one Monte-Carlo run.
type mcAccum struct {
	n         int
	converged bool
	z         float64
	lam       stat.Welford
	quants    []*stat.P2Quantile
	critCnt   []int64 // per arc, nil unless criticality was requested
	slackArcs []int   // core arcs, nil unless slacks were requested
	slackAcc  []stat.Welford
	tightCnt  []int64
}

func (a *mcAccum) result() *MCResult {
	res := &MCResult{
		Samples:    a.n,
		Converged:  a.converged,
		Mean:       a.lam.Mean(),
		Variance:   a.lam.Var(),
		Std:        a.lam.Std(),
		Min:        a.lam.Min(),
		Max:        a.lam.Max(),
		MeanCIHalf: a.lam.CIHalf(a.z),
	}
	for _, q := range a.quants {
		res.Quantiles = append(res.Quantiles, QuantileEstimate{
			P: q.P(), Value: q.Value(), CIHalf: q.CIHalf(a.z),
		})
	}
	if a.critCnt != nil {
		res.Criticality = make([]float64, len(a.critCnt))
		for i, c := range a.critCnt {
			res.Criticality[i] = float64(c) / float64(a.n)
		}
	}
	return res
}

func (a *mcAccum) slackStats() []ArcSlackStats {
	out := make([]ArcSlackStats, len(a.slackArcs))
	for r, arc := range a.slackArcs {
		w := a.slackAcc[r]
		out[r] = ArcSlackStats{
			Arc: arc, Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max(),
			TightFrac: float64(a.tightCnt[r]) / float64(a.n),
		}
	}
	return out
}

// mcSample analyses the engine's current delays for the Monte-Carlo
// loop: the paper's pass 1 over the cut set, visited in descending
// upper-bound order with exact pruning — an event whose bound is at
// most the running maximum cannot raise λ and is skipped (strictly
// below, when criticality needs the exact winner set). With criticality
// requested it finishes with the PR 1 λ-winner trick: only the
// simulated events attaining λ are re-simulated with parent tracking
// and backtracked into critical cycles. distBuf is a scratch buffer of
// at least e.periods floats. The caller owns the engine exclusively.
func (e *Engine) mcSample(order []int, bounds []stat.Ratio, distBuf []float64, needCrit bool) (stat.Ratio, []*CriticalCycle, error) {
	e.counters.analyses.Add(1)
	simOpts := timesim.Options{Periods: e.periods + 1}
	best := stat.Ratio{Num: -1, Den: 1}
	type simmed struct {
		ev   sg.EventID
		idx  int
		best stat.Ratio
	}
	var sims []simmed
	for _, ci := range order {
		b := bounds[ci]
		if needCrit {
			if b.Less(best) {
				continue // strictly below the maximum: not a winner either
			}
		} else if !best.Less(b) {
			continue // cannot raise the maximum
		}
		ev := e.cut[ci]
		tr, err := e.sched.RunFrom(ev, simOpts)
		if err != nil {
			return stat.Ratio{}, nil, fmt.Errorf("cycletime: simulating from %q: %w", e.g.Event(ev).Name, err)
		}
		s := extractSeries(tr, ev, e.periods, distBuf)
		tr.Release()
		if s.BestIndex == 0 {
			continue
		}
		if best.Less(s.Best) {
			best = s.Best
		}
		if needCrit {
			sims = append(sims, simmed{ev: ev, idx: s.BestIndex, best: s.Best})
		}
	}
	if best.Num < 0 {
		return stat.Ratio{}, nil, fmt.Errorf("cycletime: no cut-set event re-occurred within %d periods; graph has no cycles through %v",
			e.periods, e.g.EventNames(e.cut))
	}
	lam := best.Normalize()
	if !needCrit {
		return lam, nil, nil
	}
	parentOpts := simOpts
	parentOpts.TrackParents = true
	var cycs []*CriticalCycle
	for _, s := range sims {
		if !s.best.Equal(best) {
			continue
		}
		tr, err := e.sched.RunFrom(s.ev, parentOpts)
		if err != nil {
			return stat.Ratio{}, nil, fmt.Errorf("cycletime: re-simulating from %q: %w", e.g.Event(s.ev).Name, err)
		}
		cyc, err := backtrack(e.g, tr, s.ev, s.idx, best)
		tr.Release()
		if err != nil {
			return stat.Ratio{}, nil, err
		}
		cycs = append(cycs, cyc)
	}
	return lam, cycs, nil
}

// mcBounds runs the upper-bound precomputation of the Monte-Carlo
// pruning on the given (exclusively owned) engine: delays at the
// model's per-arc support maxima, one pass-1 analysis, and the per-cut-
// event best distances as bounds, plus the visit order (descending
// bound). Every sampled delay vector is dominated arc-wise by the
// support maxima, so each bound dominates the event's best distance in
// every sample.
func mcBounds(we *Engine, m *dist.Model) (bounds []stat.Ratio, order []int, err error) {
	if err := we.overlay.SetDelays(func(i int, _ float64) float64 {
		_, hi := m.Support(i)
		return hi
	}); err != nil {
		return nil, nil, fmt.Errorf("cycletime: MC upper-bound delays: %w", err)
	}
	we.refreshAll()
	hiRes, err := we.runAnalysis(context.Background(), true)
	if err != nil {
		return nil, nil, fmt.Errorf("cycletime: MC upper-bound analysis: %w", err)
	}
	bounds = make([]stat.Ratio, len(hiRes.Series))
	order = make([]int, len(hiRes.Series))
	for i := range hiRes.Series {
		bounds[i] = hiRes.Series[i].Best
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bounds[order[b]].Less(bounds[order[a]])
	})
	return bounds, order, nil
}

// runMC is the shared sampling loop. Callers hold the session lock.
func (e *Engine) runMC(ctx context.Context, m *dist.Model, opts MCOptions, needCrit, needSlacks bool) (*mcAccum, error) {
	sp := obs.LeafN(ctx, spanMC)
	defer sp.End()
	if m == nil {
		return nil, fmt.Errorf("cycletime: nil delay model")
	}
	narcs := e.g.NumArcs()
	if m.NumArcs() != narcs {
		return nil, fmt.Errorf("cycletime: delay model covers %d arcs, graph has %d", m.NumArcs(), narcs)
	}
	samples := opts.Samples
	if samples == 0 {
		samples = 1024
	}
	if samples < 1 {
		return nil, fmt.Errorf("cycletime: MC samples must be >= 1, got %d", samples)
	}
	minSamples := opts.MinSamples
	if minSamples == 0 {
		minSamples = 256
	}
	if minSamples > samples {
		minSamples = samples
	}
	conf := opts.Confidence
	if conf == 0 {
		conf = 0.95
	}
	if !(conf > 0 && conf < 1) {
		return nil, fmt.Errorf("cycletime: MC confidence %g outside (0, 1)", conf)
	}
	qps := opts.Quantiles
	if qps == nil {
		qps = []float64{0.5, 0.95}
	}
	acc := &mcAccum{z: math.Sqrt2 * math.Erfinv(conf)}
	for _, p := range qps {
		q, err := stat.NewP2Quantile(p)
		if err != nil {
			return nil, fmt.Errorf("cycletime: %w", err)
		}
		acc.quants = append(acc.quants, q)
	}

	nBlocks := (samples + mcBlockSize - 1) / mcBlockSize
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if e.opts.Serial {
			workers = 1
		}
	}
	if workers < 1 {
		return nil, fmt.Errorf("cycletime: MC workers must be >= 1, got %d", workers)
	}
	if workers > nBlocks {
		workers = nBlocks
	}
	clones, err := e.syncedClones(workers)
	if err != nil {
		return nil, err
	}
	// Force the model's sampling plan to compile before workers call
	// SampleInto concurrently (the plan is built lazily after edits).
	m.Deterministic()
	// Upper-bound pruning precomputation, on the first clone (its
	// delays are overwritten per sample anyway).
	bounds, order, err := mcBounds(clones[0], m)
	if err != nil {
		return nil, err
	}

	if needSlacks {
		for i := 0; i < narcs; i++ {
			a := e.g.Arc(i)
			if a.Once || !e.g.Event(a.From).Repetitive || !e.g.Event(a.To).Repetitive {
				continue
			}
			acc.slackArcs = append(acc.slackArcs, i)
		}
		acc.slackAcc = make([]stat.Welford, len(acc.slackArcs))
		acc.tightCnt = make([]int64, len(acc.slackArcs))
	}
	if needCrit {
		acc.critCnt = make([]int64, narcs)
	}

	// Per-worker private state. Slack and criticality accumulators are
	// per worker and merged in worker order after the run; λ values are
	// buffered per block and folded in sample order after every wave.
	// λ-only runs take the batch kernel: per block, all samples share
	// one structural pass per simulated cut event (timesim.RunFromBatch)
	// with block-level bound pruning. Criticality and slack runs need
	// per-sample artefacts (critical cycles, certificates) and use the
	// scalar per-sample path with per-sample pruning.
	lambdaOnly := !needCrit && !needSlacks
	type mcWorker struct {
		delays   []float64
		distBuf  []float64 // scratch for extractSeries
		lam      []float64
		stamp    []int64 // criticality: last sample that counted each arc
		critCnt  []int64
		slackAcc []stat.Welford
		tightCnt []int64
		bd       *timesim.BatchDelays
		outBuf   [][]float64
		best     []stat.Ratio
		err      error
	}
	ws := make([]*mcWorker, workers)
	for k := range ws {
		w := &mcWorker{
			delays:  make([]float64, narcs),
			distBuf: make([]float64, e.periods),
			lam:     make([]float64, mcBlockSize),
		}
		if lambdaOnly {
			w.bd = clones[k].sched.NewBatchDelays(mcBlockSize)
			w.outBuf = make([][]float64, mcBlockSize)
			for s := range w.outBuf {
				w.outBuf[s] = make([]float64, e.periods)
			}
			w.best = make([]stat.Ratio, mcBlockSize)
		}
		if needCrit {
			w.stamp = make([]int64, narcs)
			for i := range w.stamp {
				w.stamp[i] = -1
			}
			w.critCnt = make([]int64, narcs)
		}
		if needSlacks {
			w.slackAcc = make([]stat.Welford, len(acc.slackArcs))
			w.tightCnt = make([]int64, len(acc.slackArcs))
		}
		ws[k] = w
	}

	runBatchBlock := func(k, lo, hi int) {
		w, we := ws[k], clones[k]
		cnt := hi - lo
		// Sampled delays are valid by construction: distributions are
		// restricted to non-negative supports and quantiles clamp into
		// them, so no per-sample validation pass is needed.
		for i := lo; i < hi; i++ {
			m.SampleInto(opts.Seed, uint64(i), w.delays)
			w.bd.Set(we.sched, i-lo, w.delays)
			w.best[i-lo] = stat.Ratio{Num: -1, Den: 1}
		}
		for _, ci := range order {
			// Cooperative cancellation between batch simulations: each
			// RunFromBatch is the block's unit of work, so an expired
			// deadline stops the worker within one cut event's pass.
			if err := ctx.Err(); err != nil {
				w.err = err
				return
			}
			b := bounds[ci]
			active := false
			for s := 0; s < cnt; s++ {
				if w.best[s].Less(b) {
					active = true
					break
				}
			}
			if !active {
				// Bounds descend along the order and the running maxima
				// only grow: no later event can matter either.
				break
			}
			if err := we.sched.RunFromBatch(e.cut[ci], w.bd, e.periods, w.outBuf); err != nil {
				w.err = fmt.Errorf("cycletime: MC batch simulating from %q: %w", e.g.Event(e.cut[ci]).Name, err)
				return
			}
			for s := 0; s < cnt; s++ {
				row := w.outBuf[s]
				// Per-event best first, then the cross-event merge —
				// the same comparison association as the scalar path
				// (extractSeries then mcSample): float cross-multiplied
				// ratio comparisons are not associative at the ulp
				// level, so a different grouping could keep an equal-
				// valued candidate with a different representation and
				// break the batch/scalar bit-identity.
				evBest := stat.Ratio{Num: -1, Den: 1}
				for j := 1; j <= e.periods; j++ {
					t := row[j-1]
					if math.IsNaN(t) {
						continue
					}
					if r := stat.NewRatio(t, j); evBest.Less(r) {
						evBest = r
					}
				}
				if w.best[s].Less(evBest) {
					w.best[s] = evBest
				}
			}
		}
		e.counters.analyses.Add(int64(cnt))
		for s := 0; s < cnt; s++ {
			if w.best[s].Num < 0 {
				w.err = fmt.Errorf("cycletime: no cut-set event re-occurred within %d periods; graph has no cycles through %v",
					e.periods, e.g.EventNames(e.cut))
				return
			}
			w.lam[s] = w.best[s].Normalize().Float()
		}
	}

	runBlock := func(k, block int) {
		w, we := ws[k], clones[k]
		lo := block * mcBlockSize
		hi := lo + mcBlockSize
		if hi > samples {
			hi = samples
		}
		if lambdaOnly {
			runBatchBlock(k, lo, hi)
			return
		}
		for i := lo; i < hi; i++ {
			// Cooperative cancellation between samples: the scalar path's
			// unit of work is one sample (simulation fan + optional pass 2
			// and certificate), so an expired deadline stops the worker
			// within one sample's cost.
			if err := ctx.Err(); err != nil {
				w.err = err
				return
			}
			m.SampleInto(opts.Seed, uint64(i), w.delays)
			if err := we.overlay.SetDelays(func(a int, _ float64) float64 { return w.delays[a] }); err != nil {
				w.err = fmt.Errorf("cycletime: MC sample %d: %w", i, err)
				return
			}
			we.refreshAll()
			lamR, cycs, err := we.mcSample(order, bounds, w.distBuf, needCrit)
			if err != nil {
				w.err = fmt.Errorf("cycletime: MC sample %d: %w", i, err)
				return
			}
			lam := lamR.Float()
			w.lam[i-lo] = lam
			if needCrit {
				for _, cyc := range cycs {
					for _, ai := range cyc.Arcs {
						if w.stamp[ai] != int64(i) {
							w.stamp[ai] = int64(i)
							w.critCnt[ai]++
						}
					}
				}
			}
			if needSlacks {
				sl, err := we.certifySlacksAt(lam)
				if err != nil {
					w.err = fmt.Errorf("cycletime: MC sample %d: %w", i, err)
					return
				}
				if len(sl) != len(acc.slackArcs) {
					w.err = fmt.Errorf("cycletime: MC sample %d: %d slack rows, expected %d", i, len(sl), len(acc.slackArcs))
					return
				}
				for r := range sl {
					w.slackAcc[r].Add(sl[r].Slack)
					if sl[r].Tight {
						w.tightCnt[r]++
					}
				}
			}
		}
	}

	// Wave loop: one statically assigned block per worker, a barrier,
	// then an ordered coordinator merge and a convergence check.
	rounds := uint64(0)
	for waveStart := 0; waveStart < nBlocks && !acc.converged; waveStart += workers {
		rounds++
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cnt := nBlocks - waveStart
		if cnt > workers {
			cnt = workers
		}
		if cnt == 1 {
			runBlock(0, waveStart)
		} else {
			var wg sync.WaitGroup
			for k := 1; k < cnt; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					runBlock(k, waveStart+k)
				}(k)
			}
			runBlock(0, waveStart)
			wg.Wait()
		}
		for k := 0; k < cnt; k++ {
			if ws[k].err != nil {
				return nil, ws[k].err
			}
		}
		// Fold λ values in sample order: block k of this wave covers
		// samples [(waveStart+k)·B, …).
		for k := 0; k < cnt; k++ {
			lo := (waveStart + k) * mcBlockSize
			hi := lo + mcBlockSize
			if hi > samples {
				hi = samples
			}
			for _, lam := range ws[k].lam[:hi-lo] {
				acc.lam.Add(lam)
				for _, q := range acc.quants {
					q.Add(lam)
				}
			}
			acc.n = hi
		}
		if opts.Tol > 0 && acc.n >= minSamples && acc.n >= 2 {
			ok := acc.lam.CIHalf(acc.z) <= opts.Tol
			for _, q := range acc.quants {
				if q.CIHalf(acc.z) > opts.Tol {
					ok = false
					break
				}
			}
			acc.converged = ok
		}
	}

	sp.AnnotateN(keyRounds, rounds)
	sp.AnnotateN(keySamples, uint64(acc.n))
	if acc.converged {
		sp.SetTierN(tierConverged)
	}

	// Ordered worker merges keep the fixed-worker-count determinism
	// guarantee for the per-arc accumulators.
	for k := 0; k < workers; k++ {
		w := ws[k]
		if needCrit {
			for i, c := range w.critCnt {
				acc.critCnt[i] += c
			}
		}
		if needSlacks {
			for r := range w.slackAcc {
				acc.slackAcc[r].Merge(w.slackAcc[r])
				acc.tightCnt[r] += w.tightCnt[r]
			}
		}
	}
	return acc, nil
}

// AnalyzeMC is the one-shot form of Engine.AnalyzeMC: it compiles a
// throwaway engine and runs a single Monte-Carlo analysis. Sessions
// mixing Monte-Carlo with other queries should hold an Engine.
func AnalyzeMC(g *sg.Graph, m *dist.Model, opts MCOptions) (*MCResult, error) {
	e, err := NewEngine(g)
	if err != nil {
		return nil, err
	}
	return e.AnalyzeMC(m, opts)
}

// SlacksMC is the one-shot form of Engine.SlacksMC.
func SlacksMC(g *sg.Graph, m *dist.Model, opts MCOptions) ([]ArcSlackStats, *MCResult, error) {
	e, err := NewEngine(g)
	if err != nil {
		return nil, nil, err
	}
	return e.SlacksMC(m, opts)
}
