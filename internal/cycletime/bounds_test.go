package cycletime_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
)

func TestAnalyzeBoundsOscillator(t *testing.T) {
	g := gen.Oscillator()
	lo, hi := cycletime.Jitter(0.1)
	b, err := cycletime.AnalyzeBounds(g, lo, hi)
	if err != nil {
		t.Fatalf("AnalyzeBounds: %v", err)
	}
	if math.Abs(b.Min.Float()-9) > 1e-9 || math.Abs(b.Max.Float()-11) > 1e-9 {
		t.Errorf("bounds = [%v, %v], want [9, 11] (±10%% of 10)", b.Min, b.Max)
	}
	if b.MinResult == nil || b.MaxResult == nil {
		t.Error("extreme analyses missing")
	}
}

func TestAnalyzeBoundsBracketNominal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(10)
		bsz := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: bsz, ExtraArcs: rng.Intn(n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		lo, hi := cycletime.Jitter(0.25)
		b, err := cycletime.AnalyzeBounds(g, lo, hi)
		if err != nil {
			t.Fatalf("AnalyzeBounds: %v", err)
		}
		lam := res.CycleTime.Float()
		if b.Min.Float() > lam+1e-9 || b.Max.Float() < lam-1e-9 {
			t.Errorf("trial %d: nominal λ %v outside bounds [%v, %v]",
				trial, res.CycleTime, b.Min, b.Max)
		}
	}
}

func TestAnalyzeBoundsErrors(t *testing.T) {
	g := gen.Oscillator()
	neg := func(int, float64) float64 { return -1 }
	id := func(_ int, d float64) float64 { return d }
	if _, err := cycletime.AnalyzeBounds(g, neg, id); err == nil {
		t.Error("negative lower delays accepted")
	}
	if _, err := cycletime.AnalyzeBounds(g, id, neg); err == nil {
		t.Error("negative upper delays accepted")
	}
	// Crossed interval: lo > hi.
	double := func(_ int, d float64) float64 { return 2 * d }
	if _, err := cycletime.AnalyzeBounds(g, double, id); err == nil {
		t.Error("lo > hi accepted")
	}
}
