package stat

import (
	"fmt"
	"math"
	"sort"
)

// Series is an ordered sequence of float64 samples, used for
// average-occurrence-distance sequences (the δ series of §IV.C) and for
// runtime measurements in the experiment harness.
type Series struct {
	vals []float64
}

// NewSeries returns a Series pre-sized for n samples.
func NewSeries(n int) *Series { return &Series{vals: make([]float64, 0, n)} }

// Append adds a sample to the series.
func (s *Series) Append(v float64) { s.vals = append(s.vals, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.vals) }

// At returns the i-th sample.
func (s *Series) At(i int) float64 { return s.vals[i] }

// Values returns a copy of the samples.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.vals {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Min returns the smallest sample, or 0 for an empty series.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.vals {
		if v < m {
			m = v
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Median returns the median sample, or 0 for an empty series.
func (s *Series) Median() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	c := s.Values()
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// ConvergedTo reports whether the tail of the series (the last window
// samples) all lie within tol of limit. It is used to confirm the
// asymptotic behaviour of δ series (Fig. 4): the average occurrence
// distance converges to the cycle time for every repetitive event.
func (s *Series) ConvergedTo(limit, tol float64, window int) bool {
	if len(s.vals) < window || window <= 0 {
		return false
	}
	for _, v := range s.vals[len(s.vals)-window:] {
		if math.Abs(v-limit) > tol {
			return false
		}
	}
	return true
}

// MonotoneNondecreasing reports whether the series never decreases.
// The paper notes δ series need not be monotone (§II); this helper lets
// tests demonstrate that on concrete graphs.
func (s *Series) MonotoneNondecreasing() bool {
	for i := 1; i < len(s.vals); i++ {
		if s.vals[i] < s.vals[i-1] {
			return false
		}
	}
	return true
}

// String renders up to 12 samples, eliding the middle of long series.
func (s *Series) String() string {
	n := len(s.vals)
	if n <= 12 {
		return fmt.Sprintf("%v", s.vals)
	}
	head := s.vals[:6]
	tail := s.vals[n-3:]
	return fmt.Sprintf("%v ... %v (n=%d)", head, tail, n)
}

// LinFit returns the least-squares slope and intercept of y over x.
// The complexity experiments use it to verify the O(b²m) claim: runtime
// versus m at fixed b must fit a line, and sqrt(runtime) versus b at
// fixed m must fit a line.
func LinFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) == 0 {
		return 0, 0
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// R2 returns the coefficient of determination of the fit (slope,
// intercept) for y over x.
func R2(x, y []float64, slope, intercept float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	meanY := 0.0
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
