package stat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestWelford: the streaming moments match the direct two-pass
// computation, and ordered merging matches a single stream.
func TestWelford(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*2 + 5
	}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	varSum := 0.0
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		varSum += (x - mean) * (x - mean)
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	wantVar := varSum / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-12 || math.Abs(w.Var()-wantVar) > 1e-9 {
		t.Fatalf("welford mean/var %v/%v, direct %v/%v", w.Mean(), w.Var(), mean, wantVar)
	}
	if w.Min() != mn || w.Max() != mx || w.Count() != int64(len(xs)) {
		t.Fatalf("welford min/max/count %v/%v/%d", w.Min(), w.Max(), w.Count())
	}
	if ci := w.CIHalf(1.96); !(ci > 0 && ci < 1) {
		t.Fatalf("CI half-width %v implausible", ci)
	}
	// Split-and-merge equals single-stream.
	var a, b Welford
	for i, x := range xs {
		if i < 313 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if math.Abs(a.Mean()-w.Mean()) > 1e-12 || math.Abs(a.Var()-w.Var()) > 1e-9 {
		t.Fatalf("merged mean/var %v/%v, single-stream %v/%v", a.Mean(), a.Var(), w.Mean(), w.Var())
	}
	if a.Min() != w.Min() || a.Max() != w.Max() || a.Count() != w.Count() {
		t.Fatalf("merged min/max/count diverge")
	}
	var empty Welford
	a.Merge(empty)
	if a.Count() != w.Count() {
		t.Fatalf("merging an empty accumulator changed the count")
	}
	empty.Merge(a)
	if empty.Count() != a.Count() || empty.Mean() != a.Mean() {
		t.Fatalf("merge into empty lost state")
	}
}

// TestP2Quantile: the streaming estimate converges to the exact sample
// quantile on smooth data, short streams fall back to nearest-rank, and
// degenerate streams report zero CI.
func TestP2Quantile(t *testing.T) {
	if _, err := NewP2Quantile(0); err == nil {
		t.Fatalf("p=0 accepted")
	}
	if _, err := NewP2Quantile(1); err == nil {
		t.Fatalf("p=1 accepted")
	}
	rng := rand.New(rand.NewSource(9))
	for _, p := range []float64{0.1, 0.5, 0.9} {
		e, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.Float64()*10 + 3 // uniform on [3, 13]
		}
		for _, x := range xs {
			e.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		exact := sorted[int(p*float64(len(sorted)))]
		if math.Abs(e.Value()-exact) > 0.15 {
			t.Fatalf("p=%v: P² %v vs exact %v", p, e.Value(), exact)
		}
		ci := e.CIHalf(1.96)
		if !(ci > 0 && ci < 0.5) {
			t.Fatalf("p=%v: CI half-width %v implausible", p, ci)
		}
	}
	// Short stream: nearest-rank fallback.
	e, _ := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 3} {
		e.Add(x)
	}
	if e.Value() != 3 {
		t.Fatalf("3-sample median %v, want 3", e.Value())
	}
	if !math.IsInf(e.CIHalf(1.96), 1) {
		t.Fatalf("short mixed stream should report +Inf CI")
	}
	// Degenerate stream: exact value, zero CI.
	d, _ := NewP2Quantile(0.9)
	for i := 0; i < 100; i++ {
		d.Add(7)
	}
	if d.Value() != 7 || d.CIHalf(1.96) != 0 {
		t.Fatalf("degenerate stream: value %v CI %v", d.Value(), d.CIHalf(1.96))
	}
	var none P2Quantile
	_ = none
	e2, _ := NewP2Quantile(0.5)
	if !math.IsNaN(e2.Value()) {
		t.Fatalf("empty estimator should report NaN")
	}
}
