package stat

import (
	"fmt"
	"math"
	"sort"
)

// This file holds the streaming estimators of the Monte-Carlo subsystem
// (cycletime.AnalyzeMC): Welford moment accumulation with exact pairwise
// merging, and the P² quantile estimator of Jain & Chlamtac (CACM 1985).
// Both are O(1) memory per tracked statistic, so a Monte-Carlo run keeps
// memory proportional to the worker count, not the sample count.

// Welford accumulates count, mean, variance (via the M2 sum of squared
// deviations), min and max of a stream in one pass. The zero value is
// an empty accumulator.
type Welford struct {
	n          int64
	mean, m2   float64
	minV, maxV float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.mean, w.minV, w.maxV = x, x, x
		return
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
	if x < w.minV {
		w.minV = x
	}
	if x > w.maxV {
		w.maxV = x
	}
}

// Merge folds another accumulator into w (Chan et al. pairwise update).
// Merging the same accumulators in the same order is deterministic,
// which is what gives the Monte-Carlo engine bit-identical estimates at
// a fixed worker count.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.mean += d * float64(o.n) / float64(n)
	w.n = n
	if o.minV < w.minV {
		w.minV = o.minV
	}
	if o.maxV > w.maxV {
		w.maxV = o.maxV
	}
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.minV }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.maxV }

// CIHalf returns the half-width of the normal-approximation confidence
// interval of the mean at critical value z: z·sqrt(Var/n).
func (w *Welford) CIHalf(z float64) float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return z * math.Sqrt(w.Var()/float64(w.n))
}

// P2Quantile estimates the p-quantile of a stream with the P² algorithm:
// five markers tracking (min, p/2, p, (1+p)/2, max) positions, adjusted
// with parabolic interpolation as observations arrive. O(1) memory and
// deterministic in the insertion order.
type P2Quantile struct {
	p    float64
	n    int64
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired positions
	inc  [5]float64 // desired-position increments per observation
	init [5]float64 // first five observations, until n >= 5
}

// NewP2Quantile returns an estimator of the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("stat: quantile probability %g outside (0, 1)", p)
	}
	e := &P2Quantile{p: p}
	e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e, nil
}

// P returns the tracked probability.
func (e *P2Quantile) P() float64 { return e.p }

// Count returns the number of observations.
func (e *P2Quantile) Count() int64 { return e.n }

// Add folds one observation into the estimator.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.init[e.n] = x
		e.n++
		if e.n == 5 {
			s := e.init[:]
			sort.Float64s(s)
			for i := 0; i < 5; i++ {
				e.q[i] = s[i]
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.inc[i]
			}
		}
		return
	}
	e.n++
	// Locate the cell containing x and update the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.inc[i]
	}
	// Adjust the interior markers towards their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the nearest-rank quantile of the stored
// prefix.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		s := append([]float64(nil), e.init[:e.n]...)
		sort.Float64s(s)
		i := int(math.Ceil(e.p*float64(e.n))) - 1
		if i < 0 {
			i = 0
		}
		return s[i]
	}
	return e.q[2]
}

// CIHalf returns an approximate half-width of the confidence interval
// of the quantile estimate at critical value z, using the asymptotic
// se(q̂) = sqrt(p(1−p)/n)/f(q) with the density f estimated from the P²
// markers around the quantile. Degenerate streams (all mass at one
// value) report 0; streams too short to estimate a density report +Inf.
func (e *P2Quantile) CIHalf(z float64) float64 {
	if e.n >= 2 && e.q[0] == e.q[4] && e.n >= 5 {
		return 0
	}
	if e.n < 5 {
		// Undecided: all equal so far counts as converged-at-zero.
		allEq := true
		for i := int64(1); i < e.n; i++ {
			if e.init[i] != e.init[0] {
				allEq = false
				break
			}
		}
		if allEq && e.n >= 2 {
			return 0
		}
		return math.Inf(1)
	}
	span := e.q[3] - e.q[1]
	frac := (e.pos[3] - e.pos[1]) / float64(e.n)
	if span <= 0 || frac <= 0 {
		return 0 // the central mass is concentrated at a single value
	}
	density := frac / span
	return z * math.Sqrt(e.p*(1-e.p)/float64(e.n)) / density
}
