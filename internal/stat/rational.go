// Package stat provides small numeric helpers used across the analyzer:
// exact rational arithmetic for cycle times, occurrence-distance series,
// and summary statistics for the experiment harness.
//
// Cycle times of Timed Signal Graphs with rational delays are rational
// (Example 8.D of the paper reports 20/3); carrying them as a ratio of a
// float64 length and an integer period count keeps results exact whenever
// the arc delays are integers, which covers every experiment in the paper.
package stat

import (
	"fmt"
	"math"
)

// Ratio is a non-negative rational number Num/Den with Den >= 1.
// Num is a float64 so that graphs with non-integral delays still work;
// when Num is integral the representation (after Normalize) is canonical
// and comparisons are exact.
type Ratio struct {
	Num float64 // cycle length (sum of delays along the critical cycle)
	Den int     // occurrence period (number of unfolding periods covered)
}

// NewRatio returns the ratio num/den. It panics if den <= 0, which would
// indicate a logic error in the caller (occurrence periods are >= 1).
func NewRatio(num float64, den int) Ratio {
	if den <= 0 {
		panic(fmt.Sprintf("stat: ratio with non-positive denominator %d", den))
	}
	return Ratio{Num: num, Den: den}
}

// Float returns the ratio as a float64.
func (r Ratio) Float() float64 { return r.Num / float64(r.Den) }

// IsZero reports whether the ratio is exactly zero.
func (r Ratio) IsZero() bool { return r.Num == 0 }

// Cmp compares r with s exactly via cross-multiplication:
// -1 if r < s, 0 if r == s, +1 if r > s.
func (r Ratio) Cmp(s Ratio) int {
	a := r.Num * float64(s.Den)
	b := s.Num * float64(r.Den)
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Less reports whether r < s exactly.
func (r Ratio) Less(s Ratio) bool { return r.Cmp(s) < 0 }

// Equal reports whether r == s exactly (as rationals, not as floats).
func (r Ratio) Equal(s Ratio) bool { return r.Cmp(s) == 0 }

// Normalize reduces the ratio by the GCD of its components when the
// numerator is integral. Non-integral numerators are returned unchanged.
func (r Ratio) Normalize() Ratio {
	n := r.Num
	if n != math.Trunc(n) || math.Abs(n) >= 1<<52 {
		return r
	}
	g := gcd(int64(n), int64(r.Den))
	if g <= 1 {
		return r
	}
	return Ratio{Num: n / float64(g), Den: r.Den / int(g)}
}

// String renders the ratio: integral values print as plain numbers,
// exact fractions as "num/den (float)".
func (r Ratio) String() string {
	rn := r.Normalize()
	if rn.Den == 1 {
		return trimFloat(rn.Num)
	}
	return fmt.Sprintf("%s/%d (%.6g)", trimFloat(rn.Num), rn.Den, rn.Float())
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<52 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
