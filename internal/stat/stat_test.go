package stat_test

import (
	"math"
	"testing"
	"testing/quick"

	"tsg/internal/stat"
)

func TestRatioBasics(t *testing.T) {
	r := stat.NewRatio(20, 3)
	if got := r.Float(); math.Abs(got-20.0/3) > 1e-15 {
		t.Errorf("Float = %g", got)
	}
	if r.String() != "20/3 (6.66667)" {
		t.Errorf("String = %q", r.String())
	}
	if got := stat.NewRatio(10, 1).String(); got != "10" {
		t.Errorf("integral String = %q", got)
	}
	if !stat.NewRatio(0, 5).IsZero() {
		t.Error("IsZero(0/5) = false")
	}
	if stat.NewRatio(1, 5).IsZero() {
		t.Error("IsZero(1/5) = true")
	}
}

func TestRatioNormalize(t *testing.T) {
	r := stat.NewRatio(26, 4).Normalize()
	if r.Num != 13 || r.Den != 2 {
		t.Errorf("Normalize(26/4) = %v/%d, want 13/2", r.Num, r.Den)
	}
	// Non-integral numerators are left alone.
	r = stat.NewRatio(2.5, 5).Normalize()
	if r.Num != 2.5 || r.Den != 5 {
		t.Errorf("Normalize(2.5/5) = %v/%d, want unchanged", r.Num, r.Den)
	}
}

func TestRatioCmpExact(t *testing.T) {
	// 20/3 vs 6.6667 as 66667/10000: exact comparison must order them.
	a := stat.NewRatio(20, 3)
	b := stat.NewRatio(66667, 10000)
	if !a.Less(b) {
		t.Error("20/3 < 66667/10000 not detected")
	}
	if !a.Equal(stat.NewRatio(40, 6)) {
		t.Error("20/3 != 40/6")
	}
	if a.Cmp(stat.NewRatio(19, 3)) != 1 {
		t.Error("Cmp ordering broken")
	}
}

func TestRatioPanicsOnBadDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRatio with den=0 did not panic")
		}
	}()
	stat.NewRatio(1, 0)
}

// TestRatioCmpProperty: Cmp must agree with float comparison whenever
// the float comparison is unambiguous.
func TestRatioCmpProperty(t *testing.T) {
	f := func(a uint16, da uint8, b uint16, db uint8) bool {
		ra := stat.NewRatio(float64(a), int(da)+1)
		rb := stat.NewRatio(float64(b), int(db)+1)
		fa, fb := ra.Float(), rb.Float()
		switch ra.Cmp(rb) {
		case -1:
			return fa < fb+1e-9
		case 0:
			return math.Abs(fa-fb) < 1e-9
		default:
			return fa > fb-1e-9
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := stat.NewSeries(4)
	for _, v := range []float64{8, 9, 9.5, 9.75} {
		s.Append(v)
	}
	if s.Len() != 4 || s.At(1) != 9 {
		t.Errorf("Len/At broken: %v", s)
	}
	if s.Max() != 9.75 || s.Min() != 8 {
		t.Errorf("Max/Min = %g/%g", s.Max(), s.Min())
	}
	if got := s.Mean(); math.Abs(got-9.0625) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if got := s.Median(); math.Abs(got-9.25) > 1e-12 {
		t.Errorf("Median = %g", got)
	}
	if !s.MonotoneNondecreasing() {
		t.Error("monotone series not detected")
	}
	s.Append(1)
	if s.MonotoneNondecreasing() {
		t.Error("non-monotone series not detected")
	}
	if !s.ConvergedTo(9.7, 10, 2) {
		t.Error("ConvergedTo with wide tolerance failed")
	}
	if s.ConvergedTo(9.75, 0.01, 2) {
		t.Error("ConvergedTo with tight tolerance succeeded")
	}

	empty := stat.NewSeries(0)
	if empty.Max() != 0 || empty.Min() != 0 || empty.Mean() != 0 || empty.Median() != 0 {
		t.Error("empty series aggregates not zero")
	}
	if empty.ConvergedTo(1, 1, 1) {
		t.Error("empty series converged")
	}
}

func TestSeriesString(t *testing.T) {
	s := stat.NewSeries(0)
	for i := 0; i < 20; i++ {
		s.Append(float64(i))
	}
	if got := s.String(); len(got) == 0 || len(got) > 120 {
		t.Errorf("long series String = %q", got)
	}
	if got := s.Values(); len(got) != 20 || got[3] != 3 {
		t.Errorf("Values = %v", got)
	}
}

func TestLinFit(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 2x + 1
	slope, intercept := stat.LinFit(x, y)
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("LinFit = %g, %g, want 2, 1", slope, intercept)
	}
	if r2 := stat.R2(x, y, slope, intercept); math.Abs(r2-1) > 1e-12 {
		t.Errorf("R2 = %g, want 1", r2)
	}
	// Degenerate inputs.
	if s, i := stat.LinFit(nil, nil); s != 0 || i != 0 {
		t.Error("LinFit(nil) nonzero")
	}
	if s, i := stat.LinFit([]float64{2, 2}, []float64{1, 3}); s != 0 || i != 2 {
		t.Errorf("vertical LinFit = %g, %g", s, i)
	}
	if r2 := stat.R2([]float64{1, 2}, []float64{5, 5}, 0, 5); r2 != 1 {
		t.Errorf("constant R2 = %g, want 1", r2)
	}
}
