// Package textio renders fixed-width text tables and CSV for the
// experiment harness, matching the layout of the tables in the paper.
package textio

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with Cell.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Cell formats one value: floats print compactly ("10", "6.67", "-");
// everything else uses %v. NaN renders as "-" (the paper's dashes).
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) {
			return "-"
		}
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%.4g", x)
	case nil:
		return "-"
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len([]rune(c)); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as comma-separated values (headers first).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
