package textio_test

import (
	"math"
	"strings"
	"testing"

	"tsg/internal/textio"
)

func TestRender(t *testing.T) {
	tab := textio.New("demo", "event", "t", "δ")
	tab.AddRow("a+", 10.0, 6.5).AddRow("b+", 8.0, math.NaN())
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "event", "a+", "10", "6.5", "-", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
}

func TestCell(t *testing.T) {
	cases := []struct {
		in   interface{}
		want string
	}{
		{10.0, "10"},
		{6.6666666, "6.667"},
		{math.NaN(), "-"},
		{nil, "-"},
		{"text", "text"},
		{42, "42"},
		{true, "true"},
	}
	for _, tc := range cases {
		if got := textio.Cell(tc.in); got != tc.want {
			t.Errorf("Cell(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tab := textio.New("demo", "name", "value")
	tab.AddRow("plain", 1.0)
	tab.AddRow("with,comma", 2.0)
	tab.AddRow(`with"quote`, 3.0)
	var sb strings.Builder
	if err := tab.RenderCSV(&sb); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	out := sb.String()
	wantLines := []string{
		"name,value",
		"plain,1",
		`"with,comma",2`,
		`"with""quote",3`,
	}
	got := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(got) != len(wantLines) {
		t.Fatalf("CSV lines = %d, want %d:\n%s", len(got), len(wantLines), out)
	}
	for i, w := range wantLines {
		if got[i] != w {
			t.Errorf("CSV line %d = %q, want %q", i, got[i], w)
		}
	}
}
