// Package cycles enumerates the simple cycles of a Signal Graph and
// evaluates their effective lengths (§V of the paper): every simple cycle
// C covering ε periods (ε = tokens on C) has effective length C/ε, and
// the cycle time is the maximum over all simple cycles,
//
//	λ = max{ C_i/ε_i | C_i ∈ C }.
//
// Enumeration is Johnson's algorithm; the number of simple cycles can be
// exponential in the number of arcs (§II), which is exactly why the paper
// proposes timing simulation instead. This package is the reference
// oracle the fast algorithms are validated against, and implements the
// "straightforward approach" the paper compares itself to.
package cycles

import (
	"fmt"

	"tsg/internal/sg"
	"tsg/internal/stat"
)

// Cycle is a simple cycle of the repetitive core.
type Cycle struct {
	// Events in arc order; Events[0] follows the last element.
	Events []sg.EventID
	// Arcs connecting consecutive events; Arcs[len-1] closes the cycle.
	Arcs []int
	// Length is the total delay around the cycle.
	Length float64
	// Tokens is the total initial marking on the cycle: its occurrence
	// period ε.
	Tokens int
}

// Ratio returns the effective length C/ε.
func (c *Cycle) Ratio() stat.Ratio { return stat.NewRatio(c.Length, c.Tokens) }

// DefaultLimit bounds enumeration; beyond this many cycles Enumerate
// reports an error rather than exhausting memory.
const DefaultLimit = 1 << 20

// Enumerate returns every simple cycle of the repetitive core of g, in
// Johnson's canonical order. limit caps the number of cycles (0 means
// DefaultLimit); exceeding it is an error. A cycle without tokens is
// reported as an error (the graph would not be live).
func Enumerate(g *sg.Graph, limit int) ([]Cycle, error) {
	if limit <= 0 {
		limit = DefaultLimit
	}
	n := g.NumEvents()
	var (
		result  []Cycle
		blocked = make([]bool, n)
		bLists  = make([][]sg.EventID, n)
		stackEv []sg.EventID
		stackAr []int
	)
	var unblock func(v sg.EventID)
	unblock = func(v sg.EventID) {
		blocked[v] = false
		for _, w := range bLists[v] {
			if blocked[w] {
				unblock(w)
			}
		}
		bLists[v] = bLists[v][:0]
	}

	var circuit func(v, s sg.EventID) (bool, error)
	circuit = func(v, s sg.EventID) (bool, error) {
		found := false
		blocked[v] = true
		stackEv = append(stackEv, v)
		for _, ai := range g.OutArcs(v) {
			a := g.Arc(ai)
			w := a.To
			if !g.Event(w).Repetitive || w < s {
				continue // restrict to subgraph induced by events >= s
			}
			if w == s {
				cyc, err := makeCycle(g, stackEv, append(stackAr, ai))
				if err != nil {
					return false, err
				}
				result = append(result, cyc)
				if len(result) > limit {
					return false, fmt.Errorf("cycles: more than %d simple cycles in graph %q; enumeration aborted", limit, g.Name())
				}
				found = true
				continue
			}
			if !blocked[w] {
				stackAr = append(stackAr, ai)
				f, err := circuit(w, s)
				stackAr = stackAr[:len(stackAr)-1]
				if err != nil {
					return false, err
				}
				if f {
					found = true
				}
			}
		}
		if found {
			unblock(v)
		} else {
			for _, ai := range g.OutArcs(v) {
				w := g.Arc(ai).To
				if !g.Event(w).Repetitive || w < s {
					continue
				}
				// v waits on w's unblocking.
				bLists[w] = append(bLists[w], v)
			}
		}
		stackEv = stackEv[:len(stackEv)-1]
		return found, nil
	}

	for s := sg.EventID(0); int(s) < n; s++ {
		if !g.Event(s).Repetitive {
			continue
		}
		for i := range blocked {
			blocked[i] = false
			bLists[i] = bLists[i][:0]
		}
		if _, err := circuit(s, s); err != nil {
			return nil, err
		}
	}
	return result, nil
}

func makeCycle(g *sg.Graph, evs []sg.EventID, arcs []int) (Cycle, error) {
	c := Cycle{
		Events: append([]sg.EventID(nil), evs...),
		Arcs:   append([]int(nil), arcs...),
	}
	for _, ai := range c.Arcs {
		a := g.Arc(ai)
		c.Length += a.Delay
		if a.Marked {
			c.Tokens++
		}
	}
	if c.Tokens == 0 {
		return Cycle{}, fmt.Errorf("cycles: cycle %v carries no token; graph %q is not live",
			g.EventNames(c.Events), g.Name())
	}
	return c, nil
}

// MaxRatio returns the cycle time as the maximum effective length over
// all simple cycles, together with one cycle attaining it. This is the
// exponential-time oracle for the fast algorithms.
func MaxRatio(g *sg.Graph, limit int) (stat.Ratio, *Cycle, error) {
	all, err := Enumerate(g, limit)
	if err != nil {
		return stat.Ratio{}, nil, err
	}
	if len(all) == 0 {
		return stat.Ratio{}, nil, fmt.Errorf("cycles: graph %q has no cycles", g.Name())
	}
	best := 0
	for i := 1; i < len(all); i++ {
		if all[best].Ratio().Less(all[i].Ratio()) {
			best = i
		}
	}
	r := all[best].Ratio().Normalize()
	return r, &all[best], nil
}

// AllCritical returns every simple cycle attaining the cycle time — the
// complete critical-cycle set. The paper's algorithm backtracks one
// critical cycle per on-critical border event; this oracle lists them
// all, at enumeration cost.
func AllCritical(g *sg.Graph, limit int) (stat.Ratio, []Cycle, error) {
	all, err := Enumerate(g, limit)
	if err != nil {
		return stat.Ratio{}, nil, err
	}
	if len(all) == 0 {
		return stat.Ratio{}, nil, fmt.Errorf("cycles: graph %q has no cycles", g.Name())
	}
	best := all[0].Ratio()
	for _, c := range all[1:] {
		if best.Less(c.Ratio()) {
			best = c.Ratio()
		}
	}
	var crit []Cycle
	for _, c := range all {
		if c.Ratio().Equal(best) {
			crit = append(crit, c)
		}
	}
	return best.Normalize(), crit, nil
}

// MaxOccurrencePeriod returns the largest occurrence period ε over all
// simple cycles — the quantity Prop. 6 bounds by the size of a minimum
// cut set.
func MaxOccurrencePeriod(g *sg.Graph, limit int) (int, error) {
	all, err := Enumerate(g, limit)
	if err != nil {
		return 0, err
	}
	max := 0
	for _, c := range all {
		if c.Tokens > max {
			max = c.Tokens
		}
	}
	return max, nil
}
