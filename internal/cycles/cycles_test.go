package cycles_test

import (
	"sort"
	"strings"
	"testing"

	"tsg/internal/cycles"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// TestExample5 checks the cycle inventory of Example 5/6: the oscillator
// graph has exactly four simple cycles with lengths 10, 8, 8, 6, all with
// occurrence period 1, and the cycle time is max{10,8,8,6} = 10.
func TestExample5(t *testing.T) {
	g := gen.Oscillator()
	all, err := cycles.Enumerate(g, 0)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if len(all) != 4 {
		t.Fatalf("found %d simple cycles, want 4 (Example 5)", len(all))
	}
	var lengths []float64
	for _, c := range all {
		lengths = append(lengths, c.Length)
		if c.Tokens != 1 {
			t.Errorf("cycle %v has ε = %d, want 1", g.EventNames(c.Events), c.Tokens)
		}
		if len(c.Events) != 4 {
			t.Errorf("cycle %v has %d events, want 4", g.EventNames(c.Events), len(c.Events))
		}
	}
	sort.Float64s(lengths)
	want := []float64{6, 8, 8, 10}
	for i := range want {
		if lengths[i] != want[i] {
			t.Fatalf("cycle lengths = %v, want %v (Example 5)", lengths, want)
		}
	}

	r, crit, err := cycles.MaxRatio(g, 0)
	if err != nil {
		t.Fatalf("MaxRatio: %v", err)
	}
	if r.Float() != 10 || r.Den != 1 {
		t.Errorf("cycle time = %v, want 10 (Example 6)", r)
	}
	// The critical cycle is C1 = {a+, c+, a-, c-} (§II; the §VIII.C text
	// names C2 but that is an erratum — C2 has length 8).
	names := strings.Join(g.EventNames(crit.Events), " ")
	for _, ev := range []string{"a+", "c+", "a-", "c-"} {
		if !strings.Contains(names, ev) {
			t.Errorf("critical cycle = %s, want the a/c cycle C1", names)
		}
	}
	if crit.Ratio().Float() != 10 {
		t.Errorf("critical cycle ratio = %v, want 10", crit.Ratio())
	}
}

func TestEnumerateLimit(t *testing.T) {
	g := gen.Oscillator()
	if _, err := cycles.Enumerate(g, 2); err == nil {
		t.Error("Enumerate with limit 2 succeeded, want error (4 cycles exist)")
	}
}

func TestTokenlessCycleError(t *testing.T) {
	// Build an unmarked cycle via BuildUnchecked; Enumerate must report
	// the liveness violation rather than dividing by zero.
	g, err := sg.NewBuilder("dead").Events("a+", "b+").
		Arc("a+", "b+", 1).Arc("b+", "a+", 1).BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked: %v", err)
	}
	if _, err := cycles.Enumerate(g, 0); err == nil {
		t.Error("Enumerate on tokenless cycle succeeded, want error")
	}
}

func TestNoCycles(t *testing.T) {
	// Purely acyclic (non-repetitive) graph: MaxRatio must error.
	g, err := sg.NewBuilder("acyclic").
		Event("e-", sg.NonRepetitive()).
		Event("f-", sg.NonRepetitive()).
		Arc("e-", "f-", 1).BuildUnchecked()
	if err != nil {
		t.Fatalf("BuildUnchecked: %v", err)
	}
	if _, _, err := cycles.MaxRatio(g, 0); err == nil {
		t.Error("MaxRatio on acyclic graph succeeded, want error")
	}
}

// TestMullerRingCycles sanity-checks enumeration on the five-stage ring:
// the maximum effective length must be the paper's 20/3.
func TestMullerRingCycles(t *testing.T) {
	g, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	r, crit, err := cycles.MaxRatio(g, 0)
	if err != nil {
		t.Fatalf("MaxRatio: %v", err)
	}
	rn := r.Normalize()
	if rn.Num != 20 || rn.Den != 3 {
		t.Errorf("ring cycle time = %v, want 20/3 (§VIII.D)", r)
	}
	if crit.Tokens != 3 {
		t.Errorf("critical cycle ε = %d, want 3 (covers 3 periods)", crit.Tokens)
	}
}
