package cycles_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tsg/internal/cycles"
	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/sg"
)

// TestEpsilonBoundedByBorder checks the bound the paper's algorithm
// actually relies on, which holds for every initially-safe graph: the
// occurrence period of any simple cycle is at most b, because the ε
// tokens of a simple cycle sit on ε distinct marked arcs whose targets
// are ε distinct border events. (Prop. 6's stronger claim — ε_max
// bounded by the minimum cut set size — fails even on safe graphs; see
// TestProp6CounterexampleSafe.)
func TestEpsilonBoundedByBorder(t *testing.T) {
	var loads []*sg.Graph
	loads = append(loads, gen.Oscillator())
	for _, n := range []int{3, 5, 7} {
		g, err := gen.MullerRing(n)
		if err != nil {
			t.Fatalf("MullerRing(%d): %v", n, err)
		}
		loads = append(loads, g)
	}
	for _, cells := range []int{2, 5} {
		g, err := gen.Stack(cells)
		if err != nil {
			t.Fatalf("Stack(%d): %v", cells, err)
		}
		loads = append(loads, g)
	}
	pipe, err := gen.MullerPipeline(4, 2, 1, 1)
	if err != nil {
		t.Fatalf("MullerPipeline: %v", err)
	}
	loads = append(loads, pipe)
	for _, g := range loads {
		epsMax, err := cycles.MaxOccurrencePeriod(g, 1<<18)
		if err != nil {
			t.Fatalf("%s: MaxOccurrencePeriod: %v", g.Name(), err)
		}
		if epsMax > len(g.BorderEvents()) {
			t.Errorf("%s: ε_max = %d > b = %d", g.Name(), epsMax, len(g.BorderEvents()))
		}
	}
	// The two workloads the paper reasons about do satisfy the k_min
	// bound (oscillator: ε_max = 1 = k_min; ring-5: ε_max = 3 = k_min),
	// which is presumably how Prop. 6 escaped notice.
	for i, want := range map[int]int{0: 1, 2: 3} {
		g := loads[i]
		epsMax, err := cycles.MaxOccurrencePeriod(g, 0)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		min, err := g.MinimumCutSet()
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if epsMax != want || len(min) != want {
			t.Errorf("%s: ε_max = %d, k_min = %d, want both %d", g.Name(), epsMax, len(min), want)
		}
	}
}

// TestProp6CounterexampleSafe documents erratum E2 on a *safe* graph:
// the seven-stage Muller ring — extracted from a speed-independent
// circuit, hence safe — has a simple cycle covering five periods while
// a four-event cut set exists. Prop. 6 as stated is therefore unsound
// even under the safety assumption; only ε_max <= b holds in general.
func TestProp6CounterexampleSafe(t *testing.T) {
	g, err := gen.MullerRing(7)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	epsMax, err := cycles.MaxOccurrencePeriod(g, 0)
	if err != nil {
		t.Fatalf("MaxOccurrencePeriod: %v", err)
	}
	min, err := g.MinimumCutSet()
	if err != nil {
		t.Fatalf("MinimumCutSet: %v", err)
	}
	if !(epsMax > len(min)) {
		t.Errorf("expected the documented violation; got ε_max = %d, k_min = %d", epsMax, len(min))
	}
	if epsMax > len(g.BorderEvents()) {
		t.Errorf("ε_max = %d exceeds even b = %d", epsMax, len(g.BorderEvents()))
	}
	// The ring is safe: the token game never doubles a token.
	m := sg.NewMarking(g)
	for step := 0; step < 400; step++ {
		en := m.EnabledEvents()
		if len(en) == 0 {
			break
		}
		if err := m.Fire(en[step%len(en)]); err != nil {
			t.Fatalf("Fire: %v", err)
		}
		if m.MaxTokens() > 1 {
			t.Fatalf("ring-7 reached an unsafe marking; counterexample analysis invalid")
		}
	}
}

// TestProp6NeedsSafety documents a finding of this reproduction: as
// stated, Prop. 6 fails for graphs that are initially-safe but not safe.
// A five-ring with four tokens has a single cycle with ε = 4, yet any
// single event is a cut set (k_min = 1). The paper's algorithm is
// unaffected — it simulates b periods, and ε <= b always holds (here
// b = 4) — but the "minimum cut set periods suffice" refinement of
// Prop. 7 is sound only for safe graphs, such as those extracted from
// speed-independent circuits.
func TestProp6NeedsSafety(t *testing.T) {
	b := sg.NewBuilder("ring5t4")
	names := []string{"v0", "v1", "v2", "v3", "v4"}
	b.Events(names...)
	for i := range names {
		next := names[(i+1)%5]
		if i == 0 {
			b.Arc(names[i], next, 1) // the single unmarked arc
		} else {
			b.Arc(names[i], next, 1, sg.Marked())
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	epsMax, err := cycles.MaxOccurrencePeriod(g, 0)
	if err != nil {
		t.Fatalf("MaxOccurrencePeriod: %v", err)
	}
	min, err := g.MinimumCutSet()
	if err != nil {
		t.Fatalf("MinimumCutSet: %v", err)
	}
	if epsMax != 4 || len(min) != 1 {
		t.Fatalf("counterexample broken: ε_max = %d (want 4), k_min = %d (want 1)", epsMax, len(min))
	}
	// The graph is initially safe but not safe: the token game reaches
	// a doubled arc.
	m := sg.NewMarking(g)
	unsafe := false
	for step := 0; step < 20 && !unsafe; step++ {
		en := m.EnabledEvents()
		if len(en) == 0 {
			break
		}
		if err := m.Fire(en[0]); err != nil {
			t.Fatalf("Fire: %v", err)
		}
		if m.MaxTokens() > 1 {
			unsafe = true
		}
	}
	if !unsafe {
		t.Error("counterexample unexpectedly safe; Prop. 6 analysis invalid")
	}
	// The b-period algorithm still gets λ right (λ = 5/4).
	res, err := cycletime.Analyze(g)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if r := res.CycleTime.Normalize(); r.Num != 5 || r.Den != 4 {
		t.Errorf("λ = %v, want 5/4", res.CycleTime)
	}
	// ... while simulating only k_min = 1 periods (explicit override;
	// the default is the safe b periods) must fail: no instantiation of
	// the cut event recurs that soon.
	if _, err := cycletime.AnalyzeOpts(g, cycletime.Options{CutSet: min, Periods: len(min)}); err == nil {
		t.Error("k_min-period analysis of the unsafe counterexample succeeded; expected failure")
	}
}

// TestAllCriticalContainsBacktracked: every critical cycle the paper's
// algorithm backtracks must appear in the oracle's complete critical
// set, and both report the same λ.
func TestAllCriticalContainsBacktracked(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(9)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(n), MaxDelay: 7,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		lambda, crit, err := cycles.AllCritical(g, 0)
		if err != nil {
			t.Fatalf("AllCritical: %v", err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("Analyze: %v", err)
		}
		if !res.CycleTime.Equal(lambda) {
			t.Errorf("trial %d: λ mismatch: %v vs %v", trial, res.CycleTime, lambda)
		}
		oracle := map[string]bool{}
		for i := range crit {
			oracle[cycleKey(crit[i].Arcs)] = true
		}
		for _, c := range res.Critical {
			if !oracle[cycleKey(c.Arcs)] {
				t.Errorf("trial %d: backtracked cycle %v not in the oracle's critical set",
					trial, g.EventNames(c.Events))
			}
		}
	}
}

// cycleKey canonicalises a cycle's arc list up to rotation.
func cycleKey(arcs []int) string {
	n := len(arcs)
	rotations := make([]string, n)
	for r := 0; r < n; r++ {
		parts := make([]string, n)
		for i := 0; i < n; i++ {
			parts[i] = fmt.Sprint(arcs[(r+i)%n])
		}
		rotations[r] = strings.Join(parts, ",")
	}
	sort.Strings(rotations)
	return rotations[0]
}

// TestAllCriticalOscillator: the oscillator has exactly one critical
// cycle, C1.
func TestAllCriticalOscillator(t *testing.T) {
	g := gen.Oscillator()
	lambda, crit, err := cycles.AllCritical(g, 0)
	if err != nil {
		t.Fatalf("AllCritical: %v", err)
	}
	if lambda.Float() != 10 || len(crit) != 1 {
		t.Fatalf("AllCritical = %v with %d cycles, want 10 with 1", lambda, len(crit))
	}
	names := strings.Join(g.EventNames(crit[0].Events), " ")
	for _, ev := range []string{"a+", "c+", "a-", "c-"} {
		if !strings.Contains(names, ev) {
			t.Errorf("critical set = %s, want C1", names)
		}
	}
	// Prop. 6 sanity on the two paper workloads.
	eps, err := cycles.MaxOccurrencePeriod(g, 0)
	if err != nil {
		t.Fatalf("MaxOccurrencePeriod: %v", err)
	}
	if eps != 1 {
		t.Errorf("oscillator ε_max = %d, want 1 (min cut set size 1)", eps)
	}
	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	epsR, err := cycles.MaxOccurrencePeriod(ring, 0)
	if err != nil {
		t.Fatalf("MaxOccurrencePeriod(ring): %v", err)
	}
	minR, err := ring.MinimumCutSet()
	if err != nil {
		t.Fatalf("MinimumCutSet(ring): %v", err)
	}
	if epsR > len(minR) {
		t.Errorf("ring ε_max = %d > k_min = %d (violates Prop. 6)", epsR, len(minR))
	}
}
