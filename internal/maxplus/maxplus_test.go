package maxplus_test

import (
	"math"
	"math/rand"
	"testing"

	"tsg/internal/cycletime"
	"tsg/internal/gen"
	"tsg/internal/maxplus"
)

func TestAlgebraBasics(t *testing.T) {
	a := maxplus.New(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 3)
	a.Set(1, 0, 2)
	// a(1,1) stays ε.
	id := maxplus.Identity(2)
	prod := maxplus.Mul(a, id)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if prod.At(i, j) != a.At(i, j) {
				t.Errorf("A ⊗ I differs at (%d,%d): %g vs %g", i, j, prod.At(i, j), a.At(i, j))
			}
		}
	}
	sq := maxplus.Mul(a, a)
	// (A²)(0,0) = max(1+1, 3+2) = 5.
	if sq.At(0, 0) != 5 {
		t.Errorf("A²(0,0) = %g, want 5", sq.At(0, 0))
	}
	// (A²)(1,1) = 2+3 = 5 through node 0.
	if sq.At(1, 1) != 5 {
		t.Errorf("A²(1,1) = %g, want 5", sq.At(1, 1))
	}
	x := maxplus.MulVec(a, []float64{0, 0})
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("A ⊗ 0 = %v, want [3 2]", x)
	}
	if !a.Irreducible() {
		t.Error("strongly connected matrix reported reducible")
	}
	r := maxplus.New(2)
	r.Set(0, 1, 1) // only 0 -> 1: reducible
	if r.Irreducible() {
		t.Error("reducible matrix reported irreducible")
	}
	if _, err := r.Eigenvalue(); err == nil {
		t.Error("Eigenvalue of reducible matrix succeeded")
	}
}

func TestEigenvalueSmall(t *testing.T) {
	// Single self-loop of weight 7: λ = 7.
	a := maxplus.New(1)
	a.Set(0, 0, 7)
	r, err := a.Eigenvalue()
	if err != nil {
		t.Fatalf("Eigenvalue: %v", err)
	}
	if r.Float() != 7 {
		t.Errorf("λ = %v, want 7", r)
	}
	// Two-cycle 0->1 (3), 1->0 (5): λ = (3+5)/2 = 4.
	b := maxplus.New(2)
	b.Set(0, 1, 3)
	b.Set(1, 0, 5)
	r, err = b.Eigenvalue()
	if err != nil {
		t.Fatalf("Eigenvalue: %v", err)
	}
	if rn := r.Normalize(); rn.Num != 4 || rn.Den != 1 {
		t.Errorf("λ = %v, want 4", r)
	}
}

// TestPeriodicityTheorem: the orbit of the token matrix becomes exactly
// periodic after a finite transient, with the period shift c·λ (the
// max-plus cyclicity theorem, §I's "eventually periodic behaviour of
// the corresponding max-functions").
func TestPeriodicityTheorem(t *testing.T) {
	g := gen.Oscillator()
	a, arcs, err := maxplus.FromGraph(g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	if len(arcs) != 2 {
		t.Fatalf("oscillator has %d tokens, want 2", len(arcs))
	}
	lam, err := a.Eigenvalue()
	if err != nil {
		t.Fatalf("Eigenvalue: %v", err)
	}
	if lam.Float() != 10 {
		t.Fatalf("token-matrix eigenvalue = %v, want 10", lam)
	}
	x0 := make([]float64, a.Dim())
	k0, c, err := a.Periodicity(x0, lam.Float(), 16, 8)
	if err != nil {
		t.Fatalf("Periodicity: %v", err)
	}
	if c != 1 {
		t.Errorf("cyclicity = %d, want 1 (all oscillator cycles have ε = 1)", c)
	}
	if k0 > 4 {
		t.Errorf("transient k0 = %d, unexpectedly long", k0)
	}

	ring, err := gen.MullerRing(5)
	if err != nil {
		t.Fatalf("MullerRing: %v", err)
	}
	ra, _, err := maxplus.FromGraph(ring)
	if err != nil {
		t.Fatalf("FromGraph(ring): %v", err)
	}
	rlam, err := ra.Eigenvalue()
	if err != nil {
		t.Fatalf("Eigenvalue(ring): %v", err)
	}
	if rn := rlam.Normalize(); rn.Num != 20 || rn.Den != 3 {
		t.Fatalf("ring eigenvalue = %v, want 20/3", rlam)
	}
	x0r := make([]float64, ra.Dim())
	_, cr, err := ra.Periodicity(x0r, rlam.Float(), 32, 12)
	if err != nil {
		t.Fatalf("Periodicity(ring): %v", err)
	}
	if cr%3 != 0 {
		t.Errorf("ring cyclicity = %d, want a multiple of 3 (critical ε = 3)", cr)
	}
	if _, _, err := ra.Periodicity(x0r, rlam.Float(), 0, 1); err == nil {
		t.Error("Periodicity with tiny bounds succeeded")
	}
	if _, _, err := ra.Periodicity(x0r, rlam.Float(), -1, 0); err == nil {
		t.Error("Periodicity with invalid bounds succeeded")
	}
}

// TestRandomAgreement: eigenvalue == Analyze λ on random graphs.
func TestRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		b := 1 + rng.Intn(n)
		g, err := gen.RandomLive(rng, gen.RandomOptions{
			Events: n, Border: b, ExtraArcs: rng.Intn(2 * n), MaxDelay: 9,
		})
		if err != nil {
			t.Fatalf("RandomLive: %v", err)
		}
		a, _, err := maxplus.FromGraph(g)
		if err != nil {
			t.Fatalf("FromGraph: %v", err)
		}
		lam, err := a.Eigenvalue()
		if err != nil {
			t.Fatalf("trial %d: Eigenvalue: %v", trial, err)
		}
		res, err := cycletime.Analyze(g)
		if err != nil {
			t.Fatalf("trial %d: Analyze: %v", trial, err)
		}
		if !res.CycleTime.Equal(lam) {
			t.Errorf("trial %d: %s: eigenvalue %v != λ %v", trial, g, lam, res.CycleTime)
		}
		// The orbit growth rate approaches λ as well.
		x := make([]float64, a.Dim())
		const K = 40
		for k := 0; k < K; k++ {
			x = maxplus.MulVec(a, x)
		}
		max0 := 0.0
		for _, v := range x {
			if v > max0 {
				max0 = v
			}
		}
		if lam.Float() > 0 && math.Abs(max0/K-lam.Float()) > lam.Float() {
			t.Errorf("trial %d: orbit growth %g far from λ %v", trial, max0/K, lam)
		}
	}
}
