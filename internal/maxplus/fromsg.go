package maxplus

import (
	"tsg/internal/mcr"
	"tsg/internal/sg"
)

// FromGraph builds the token-to-token max-plus matrix of a Timed Signal
// Graph: A[i][j] is the longest delay from token j's consumption to
// token i's reproduction, so that x(k+1) = A ⊗ x(k) advances the vector
// of token-event occurrence times by one token generation. The second
// return value lists the marked arc each matrix row corresponds to.
func FromGraph(g *sg.Graph) (Matrix, []int, error) {
	w, arcs, err := mcr.TokenSystem(g)
	if err != nil {
		return Matrix{}, nil, err
	}
	m := New(len(arcs))
	for i := range w {
		for j, v := range w[i] {
			// TokenSystem gives weights in from->to orientation; the
			// recurrence needs A[to][from].
			m.Set(j, i, v)
		}
	}
	return m, arcs, nil
}
