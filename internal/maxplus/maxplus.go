// Package maxplus implements the (max, +) linear-algebra view of Timed
// Signal Graph behaviour that §I of the paper attributes to Gunawardena
// [7] and Baccelli et al. [1]: the occurrence times of the token events
// satisfy a max-plus linear recurrence
//
//	x(k+1) = A ⊗ x(k),
//
// where A is the token-to-token longest-path matrix and ⊗ the (max, +)
// matrix product. The timing behaviour is "eventually periodic": for an
// irreducible A there are a transient k₀ and a cyclicity c with
//
//	x(k+c) = c·λ + x(k)   for all k >= k₀,
//
// λ being the max-plus eigenvalue of A — exactly the cycle time the
// paper computes by timing simulation. The package provides the algebra,
// the eigenvalue (via Karp's theorem on the matrix digraph), and the
// transient/cyclicity detection; tests cross-validate all of it against
// the paper's algorithm.
package maxplus

import (
	"fmt"
	"math"

	"tsg/internal/stat"
)

// NegInf is the (max, +) additive identity ε.
var NegInf = math.Inf(-1)

// Matrix is a dense square matrix over the (max, +) semiring.
type Matrix struct {
	n int
	a []float64 // row-major
}

// New returns an n×n matrix filled with ε (-Inf).
func New(n int) Matrix {
	if n < 1 {
		panic(fmt.Sprintf("maxplus: matrix size %d", n))
	}
	m := Matrix{n: n, a: make([]float64, n*n)}
	for i := range m.a {
		m.a[i] = NegInf
	}
	return m
}

// Identity returns the (max, +) identity: 0 on the diagonal, ε elsewhere.
func Identity(n int) Matrix {
	m := New(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 0)
	}
	return m
}

// Dim returns the matrix dimension.
func (m Matrix) Dim() int { return m.n }

// At returns entry (i, j).
func (m Matrix) At(i, j int) float64 { return m.a[i*m.n+j] }

// Set assigns entry (i, j).
func (m Matrix) Set(i, j int, v float64) { m.a[i*m.n+j] = v }

// Mul returns the (max, +) product a ⊗ b.
func Mul(a, b Matrix) Matrix {
	if a.n != b.n {
		panic(fmt.Sprintf("maxplus: dimension mismatch %d vs %d", a.n, b.n))
	}
	out := New(a.n)
	for i := 0; i < a.n; i++ {
		for k := 0; k < a.n; k++ {
			aik := a.At(i, k)
			if math.IsInf(aik, -1) {
				continue
			}
			for j := 0; j < a.n; j++ {
				if v := aik + b.At(k, j); v > out.At(i, j) {
					out.Set(i, j, v)
				}
			}
		}
	}
	return out
}

// MulVec returns a ⊗ x for a column vector x.
func MulVec(a Matrix, x []float64) []float64 {
	if len(x) != a.n {
		panic(fmt.Sprintf("maxplus: vector length %d for %d×%d matrix", len(x), a.n, a.n))
	}
	out := make([]float64, a.n)
	for i := range out {
		out[i] = NegInf
		for j := 0; j < a.n; j++ {
			aij := a.At(i, j)
			if math.IsInf(aij, -1) || math.IsInf(x[j], -1) {
				continue
			}
			if v := aij + x[j]; v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// Irreducible reports whether the matrix digraph (edges where entries
// are finite) is strongly connected.
func (m Matrix) Irreducible() bool {
	reach := func(transpose bool) []bool {
		seen := make([]bool, m.n)
		stack := []int{0}
		seen[0] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for w := 0; w < m.n; w++ {
				var e float64
				if transpose {
					e = m.At(w, v)
				} else {
					e = m.At(v, w)
				}
				if !math.IsInf(e, -1) && !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		return seen
	}
	fwd, bwd := reach(false), reach(true)
	for i := 0; i < m.n; i++ {
		if !fwd[i] || !bwd[i] {
			return false
		}
	}
	return true
}

// Eigenvalue returns the unique max-plus eigenvalue of an irreducible
// matrix — the maximum mean cycle of its digraph — computed exactly via
// Karp's theorem. Reducible matrices are rejected: their spectrum is
// not a single value.
func (m Matrix) Eigenvalue() (stat.Ratio, error) {
	if !m.Irreducible() {
		return stat.Ratio{}, fmt.Errorf("maxplus: matrix is reducible; eigenvalue undefined")
	}
	n := m.n
	// Karp: D[k][v] = max weight of a k-edge walk from node 0 to v.
	D := make([][]float64, n+1)
	for k := range D {
		D[k] = make([]float64, n)
		for v := range D[k] {
			D[k][v] = NegInf
		}
	}
	D[0][0] = 0
	for k := 1; k <= n; k++ {
		for u := 0; u < n; u++ {
			if math.IsInf(D[k-1][u], -1) {
				continue
			}
			for v := 0; v < n; v++ {
				w := m.At(u, v)
				if math.IsInf(w, -1) {
					continue
				}
				if d := D[k-1][u] + w; d > D[k][v] {
					D[k][v] = d
				}
			}
		}
	}
	best := stat.Ratio{Num: -1, Den: 1}
	found := false
	for v := 0; v < n; v++ {
		if math.IsInf(D[n][v], -1) {
			continue
		}
		var vmin stat.Ratio
		vset := false
		for k := 0; k < n; k++ {
			if math.IsInf(D[k][v], -1) {
				continue
			}
			r := stat.NewRatio(D[n][v]-D[k][v], n-k)
			if !vset || r.Less(vmin) {
				vmin = r
				vset = true
			}
		}
		if vset && (!found || best.Less(vmin)) {
			best = vmin
			found = true
		}
	}
	if !found {
		return stat.Ratio{}, fmt.Errorf("maxplus: no cycle in matrix digraph")
	}
	return best.Normalize(), nil
}

// Periodicity locates the transient k₀ and cyclicity c of the orbit
// x(k) = A^k ⊗ x0: the smallest pair with x(k+c) = c·λ + x(k) exactly
// for all sampled k >= k₀ (the max-plus cyclicity theorem for
// irreducible matrices). The search is bounded by maxTransient and
// maxCyclicity; an error means the bounds were too small.
func (m Matrix) Periodicity(x0 []float64, lambda float64, maxTransient, maxCyclicity int) (k0, c int, err error) {
	if maxTransient < 0 || maxCyclicity < 1 {
		return 0, 0, fmt.Errorf("maxplus: invalid periodicity bounds (%d, %d)", maxTransient, maxCyclicity)
	}
	// Orbit up to maxTransient + 2*maxCyclicity steps.
	steps := maxTransient + 2*maxCyclicity + 1
	orbit := make([][]float64, steps)
	orbit[0] = append([]float64(nil), x0...)
	for k := 1; k < steps; k++ {
		orbit[k] = MulVec(m, orbit[k-1])
	}
	equalShifted := func(a, b []float64, shift float64) bool {
		for i := range a {
			ia, ib := math.IsInf(a[i], -1), math.IsInf(b[i], -1)
			if ia || ib {
				if ia != ib {
					return false
				}
				continue
			}
			if b[i]-a[i] != shift {
				return false
			}
		}
		return true
	}
	for k := 0; k <= maxTransient; k++ {
		for cc := 1; cc <= maxCyclicity; cc++ {
			if k+2*cc >= steps {
				break
			}
			shift := lambda * float64(cc)
			if equalShifted(orbit[k], orbit[k+cc], shift) &&
				equalShifted(orbit[k+cc], orbit[k+2*cc], shift) {
				return k, cc, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("maxplus: no periodicity within transient %d, cyclicity %d",
		maxTransient, maxCyclicity)
}
