package obs

import (
	"strings"
	"testing"
)

func lintOf(t *testing.T, text string) []Problem {
	t.Helper()
	problems, err := Lint(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return problems
}

func wantProblem(t *testing.T, problems []Problem, substr string) {
	t.Helper()
	for _, p := range problems {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Fatalf("no problem containing %q in %v", substr, problems)
}

func TestLintCleanInput(t *testing.T) {
	clean := `# HELP app_requests_total Requests.
# TYPE app_requests_total counter
app_requests_total{endpoint="analyze"} 10
app_requests_total{endpoint="mc"} 2
# HELP app_depth Queue depth.
# TYPE app_depth gauge
app_depth 0
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 3
app_latency_seconds_bucket{le="+Inf"} 5
app_latency_seconds_sum 1.25
app_latency_seconds_count 5
`
	if problems := lintOf(t, clean); len(problems) != 0 {
		t.Fatalf("clean input flagged: %v", problems)
	}
}

func TestLintCatchesMissingHelpAndType(t *testing.T) {
	wantProblem(t, lintOf(t, "orphan_metric 1\n"), "no TYPE")
	wantProblem(t, lintOf(t, "orphan_metric 1\n"), "no HELP")
	wantProblem(t, lintOf(t, "# TYPE typed_only gauge\ntyped_only 1\n"), "no HELP")
}

func TestLintCatchesBadCounterName(t *testing.T) {
	text := `# HELP bad_counter C.
# TYPE bad_counter counter
bad_counter 1
`
	wantProblem(t, lintOf(t, text), "should end in _total")
}

func TestLintCatchesDuplicateSeries(t *testing.T) {
	text := `# HELP d_total D.
# TYPE d_total counter
d_total{k="a"} 1
d_total{k="a"} 2
`
	wantProblem(t, lintOf(t, text), "duplicate series")
}

func TestLintCatchesHistogramWithoutInf(t *testing.T) {
	text := `# HELP h_seconds H.
# TYPE h_seconds histogram
h_seconds_bucket{le="1"} 1
h_seconds_sum 0.5
h_seconds_count 1
`
	wantProblem(t, lintOf(t, text), "missing +Inf")
}

func TestLintCatchesHistogramCountMismatch(t *testing.T) {
	text := `# HELP h_seconds H.
# TYPE h_seconds histogram
h_seconds_bucket{le="+Inf"} 4
h_seconds_sum 0.5
h_seconds_count 5
`
	wantProblem(t, lintOf(t, text), "_count 5 != +Inf bucket 4")
}

func TestLintCatchesMalformedLines(t *testing.T) {
	wantProblem(t, lintOf(t, "bad-name 1\n"), "invalid metric name")
	wantProblem(t, lintOf(t, "# HELP ok_total O.\n# TYPE ok_total counter\nok_total notanumber\n"), "unparsable value")
	wantProblem(t, lintOf(t, "# HELP u_total U.\n# TYPE u_total counter\nu_total{k=\"v\" 1\n"), "unterminated")
	wantProblem(t, lintOf(t, "# HELP t_total T.\n# TYPE t_total frobnicator\nt_total 1\n"), "invalid TYPE")
}

func TestLintCatchesInterleavedFamilies(t *testing.T) {
	text := `# HELP a_total A.
# TYPE a_total counter
a_total{k="x"} 1
# HELP b_total B.
# TYPE b_total counter
b_total 1
a_total{k="y"} 2
`
	wantProblem(t, lintOf(t, text), "reopened")
}

func TestParseReadsValuesBack(t *testing.T) {
	text := `# HELP v_total V.
# TYPE v_total counter
v_total{endpoint="analyze",code="200"} 42
# HELP inf_gauge I.
# TYPE inf_gauge gauge
inf_gauge +Inf
`
	fams, problems, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	v, ok := FindSample(fams, "v_total", map[string]string{"endpoint": "analyze"})
	if !ok || v != 42 {
		t.Fatalf("FindSample: %v %v", v, ok)
	}
	if _, ok := FindSample(fams, "v_total", map[string]string{"endpoint": "mc"}); ok {
		t.Fatal("FindSample matched wrong labels")
	}
}
