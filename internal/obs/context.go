package obs

import (
	"context"
	"time"
)

type ctxKey struct{}

// WithTracer arms a context with a tracer. Spans started under the
// returned context become roots of new traces.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Span{tr: t})
}

// FromContext returns the current span, or nil when the context
// carries no tracer (or only the WithTracer sentinel).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	if s == nil || s.id == 0 {
		return nil
	}
	return s
}

// TracerFromContext returns the tracer riding the context, if any.
func TracerFromContext(ctx context.Context) *Tracer {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	if s == nil {
		return nil
	}
	return s.tr
}

// Start begins a span named name as a child of the context's current
// span and returns a derived context carrying it. When the context has
// no tracer it returns (ctx, nil) — and a nil *Span makes every method
// a no-op — so callers never branch on whether tracing is on.
//
// The returned span must be finished with End (usually deferred); the
// ring append in End is lock-free and allocation-free.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	cur, _ := ctx.Value(ctxKey{}).(*Span)
	if cur == nil || cur.tr == nil {
		return ctx, nil
	}
	s := begin(cur, Name(Intern(name)))
	return context.WithValue(ctx, ctxKey{}, s), s
}

// StartN is Start with a pre-interned name — the hot-path form.
func StartN(ctx context.Context, name Name) (context.Context, *Span) {
	cur, _ := ctx.Value(ctxKey{}).(*Span)
	if cur == nil || cur.tr == nil {
		return ctx, nil
	}
	s := begin(cur, name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// LeafN begins a span that will have no traced children: it skips the
// context derivation (and its allocation) entirely and returns only the
// handle. Use it for spans whose body never starts child spans on the
// hot path — cache lookups, WAL appends, warm answers; a caller that
// later takes a slow path with children can re-arm a context with
// ContextWith.
func LeafN(ctx context.Context, name Name) *Span {
	cur, _ := ctx.Value(ctxKey{}).(*Span)
	if cur == nil || cur.tr == nil {
		return nil
	}
	return begin(cur, name)
}

// ContextWith arms ctx with sp as the current span, so spans started
// under the returned context become its children. It is the deferred
// half of LeafN: leaf-start on the fast path, derive a context only on
// the slow path that actually spawns children. A nil sp returns ctx
// unchanged.
func ContextWith(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// StartRoot begins a root span of a new trace directly on the tracer,
// fusing WithTracer+Start into a single context value: the per-request
// entry point of the serving layer. The returned context carries the
// span; child spans nest under it.
func (t *Tracer) StartRoot(ctx context.Context, name Name) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.pool.Get().(*Span)
	s.tr = t
	s.id = t.ids.Add(1)
	s.trace = s.id
	s.name = uint32(name)
	s.start = time.Now().UnixNano()
	return context.WithValue(ctx, ctxKey{}, s), s
}

// begin allocates a child span of cur from the tracer pool.
func begin(cur *Span, name Name) *Span {
	t := cur.tr
	s := t.pool.Get().(*Span)
	s.tr = t
	s.id = t.ids.Add(1)
	if cur.id == 0 {
		s.trace = s.id // root of a new trace
	} else {
		s.trace = cur.trace
		s.parent = cur.id
	}
	s.name = uint32(name)
	s.graph = cur.graph // inherit attribution set by an ancestor
	s.start = time.Now().UnixNano()
	return s
}
