// Package obs is the process-wide observability layer: a
// context-propagated span tracer backed by a fixed-size lock-free ring,
// plus Prometheus-style counters, gauges and fixed-bucket histograms
// with a text-exposition writer and a matching parser/linter.
//
// The design goal is that instrumentation stays cheap enough to leave
// on in production serving:
//
//   - Recording a finished span is a short seqlocked burst of atomic
//     stores into a pre-allocated ring slot — no locks, no allocation,
//     no I/O. Record halves are packed two per word and span handles
//     are pooled, so the hot path neither allocates nor pays an
//     atomic store per field.
//   - Span names, answer tiers and annotation keys are interned to
//     uint32 ids once; the hot path moves only integers.
//   - Graph fingerprints are interned per tracer, so per-graph
//     attribution costs one read-locked map hit.
//   - When no tracer rides the context, obs.Start returns a nil *Span
//     and every method on it is a nil-check no-op, so library code can
//     be instrumented unconditionally. Running with tracing disabled
//     is the "compiled-out" baseline the OBS experiment measures
//     against.
//
// Spans form trees: obs.Start derives a child context, so a serve
// request naturally produces handler → admission → cache → engine
// phase nesting, inspectable via /debug/trace or tsgtime -trace.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ---------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------

// nameTab interns span names, tiers and annotation keys process-wide.
// The set is small and static (phase names declared by instrumented
// packages), so a RWMutex map is effectively contention-free.
var nameTab = struct {
	sync.RWMutex
	ids  map[string]uint32
	strs []string
}{ids: make(map[string]uint32), strs: []string{""}} // id 0 reserved: "absent"

// Name is a pre-interned span name, tier or annotation key. Hot call
// sites intern once into a package-level var (obs.N at init) and pass
// the Name, so the per-span cost is integer moves — no map lookups, no
// string hashing, no concatenation.
type Name uint32

// N interns s and returns its Name. Intended for package-level vars:
//
//	var spanAnswer = obs.N("engine.answer")
func N(s string) Name { return Name(Intern(s)) }

// Intern returns the process-wide id for a span name, tier or
// annotation key. Ids are stable for the life of the process; id 0 is
// reserved to mean "absent".
func Intern(s string) uint32 {
	nameTab.RLock()
	id, ok := nameTab.ids[s]
	nameTab.RUnlock()
	if ok {
		return id
	}
	nameTab.Lock()
	defer nameTab.Unlock()
	if id, ok = nameTab.ids[s]; ok {
		return id
	}
	id = uint32(len(nameTab.strs))
	nameTab.strs = append(nameTab.strs, s)
	nameTab.ids[s] = id
	return id
}

// NameOf resolves an interned id back to its string ("" for 0 or
// unknown ids).
func NameOf(id uint32) string {
	nameTab.RLock()
	defer nameTab.RUnlock()
	if int(id) < len(nameTab.strs) {
		return nameTab.strs[id]
	}
	return ""
}

// internTable interns graph fingerprints per tracer. Unlike span names
// the value set grows with the graphs a server has seen, so it lives on
// the tracer rather than in a process global.
type internTable struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

func (t *internTable) intern(s string) uint32 {
	t.mu.RLock()
	id, ok := t.ids[s]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok = t.ids[s]; ok {
		return id
	}
	if t.ids == nil {
		t.ids = make(map[string]uint32)
		t.strs = []string{""}
	}
	id = uint32(len(t.strs))
	t.strs = append(t.strs, s)
	t.ids[s] = id
	return id
}

func (t *internTable) lookup(id uint32) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < len(t.strs) {
		return t.strs[id]
	}
	return ""
}

// ---------------------------------------------------------------------
// Ring tracer
// ---------------------------------------------------------------------

// slot is one ring record. Every field is atomic so concurrent
// writers/readers are race-detector clean; seq implements a seqlock:
// odd while a writer is mid-record, even (and nonzero) once committed.
// Snapshot readers re-check seq after reading and drop torn records.
//
// The u32 halves of a record — ids, name, graph, tier, annotation keys
// — are packed two per word: on amd64 every atomic store is a
// full-barrier XCHG costing tens of cycles, so the packing (plus
// skipping the annotation words when no annotation is set) keeps
// Span.End at 8 stores instead of 13. Span/trace/parent ids are
// truncated to 32 bits on commit; they only need to be unique within
// the ring window, which holds thousands of spans, not billions.
//
// An alternative design — heap-allocate every span and publish the
// pointer itself with one atomic store — measured slower end-to-end:
// the allocation plus GC pressure of two spans per warm request costs
// more than the stores it saves. Pooled handles plus a packed in-place
// commit is the cheaper point.
type slot struct {
	seq   atomic.Uint64
	ts    atomic.Uint64 // trace<<32 | span
	pn    atomic.Uint64 // parent<<32 | name
	gt    atomic.Uint64 // graph<<32 | tier
	keys  atomic.Uint64 // akey<<32 | bkey; 0 = no annotations, a/b stale
	a     atomic.Uint64
	b     atomic.Uint64
	start atomic.Int64
	end   atomic.Int64
}

// Tracer records finished spans into a fixed-size power-of-two ring.
// All methods are safe for concurrent use. The zero value is not
// usable; construct with NewTracer.
type Tracer struct {
	slots  []slot
	mask   uint64
	next   atomic.Uint64 // ring write cursor (1-based record number)
	ids    atomic.Uint64 // span-id allocator
	graphs internTable
	onEnd  func(name uint32, seconds float64)
	pool   sync.Pool
}

// DefaultRingSize is the span-ring capacity used when a non-positive
// size is requested.
const DefaultRingSize = 4096

// NewTracer builds a tracer whose ring holds at least size spans
// (rounded up to a power of two, minimum 64). Memory is allocated once,
// up front.
func NewTracer(size int) *Tracer {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 64
	for n < size {
		n <<= 1
	}
	t := &Tracer{slots: make([]slot, n), mask: uint64(n - 1)}
	t.pool.New = func() any { return new(Span) }
	return t
}

// OnEnd installs a hook invoked with the interned name and duration of
// every finished span — the bridge that feeds phase-duration
// histograms. It must be installed before the tracer sees traffic; it
// is not synchronized against concurrent Span.End calls.
func (t *Tracer) OnEnd(f func(name uint32, seconds float64)) { t.onEnd = f }

// Len reports the ring capacity.
func (t *Tracer) Len() int { return len(t.slots) }

// Recorded reports how many spans have ever been recorded (including
// ones the ring has since overwritten). The ring write cursor is that
// count — slots are claimed once per record — so no separate counter
// is maintained on the commit path.
func (t *Tracer) Recorded() uint64 { return t.next.Load() }

// InternGraph pre-interns a graph fingerprint, returning its id.
func (t *Tracer) InternGraph(fp string) uint32 { return t.graphs.intern(fp) }

// Span is an in-flight span handle. A nil *Span is a valid no-op, so
// instrumented code never branches on whether tracing is enabled.
// Handles are pooled; after End the span must not be touched.
type Span struct {
	tr       *Tracer
	trace    uint64
	id       uint64
	parent   uint64
	name     uint32
	graph    uint32
	tier     uint32
	akey, bk uint32
	a, b     uint64
	start    int64
}

// SetGraph attributes the span (and, at snapshot time, its whole
// trace) to a graph fingerprint.
func (s *Span) SetGraph(fp string) {
	if s == nil {
		return
	}
	s.graph = s.tr.graphs.intern(fp)
}

// SetGraphID is SetGraph with a fingerprint id already interned via
// Tracer.InternGraph — the hot-path form for callers that cache the id
// alongside the graph.
func (s *Span) SetGraphID(id uint32) {
	if s == nil {
		return
	}
	s.graph = id
}

// SetTier records which answer tier the span took (e.g. "fast-path",
// "cached-row", "lambda-only", "full").
func (s *Span) SetTier(tier string) {
	if s == nil {
		return
	}
	s.tier = Intern(tier)
}

// SetTierN is SetTier with a pre-interned tier — the hot-path form.
func (s *Span) SetTierN(tier Name) {
	if s == nil {
		return
	}
	s.tier = uint32(tier)
}

// Annotate attaches up to two numeric key=value annotations (e.g.
// dirty-cone size, flood count, sample count). Extra keys beyond two
// are dropped.
func (s *Span) Annotate(key string, v uint64) {
	if s == nil {
		return
	}
	s.AnnotateN(Name(Intern(key)), v)
}

// AnnotateN is Annotate with a pre-interned key — the hot-path form.
func (s *Span) AnnotateN(key Name, v uint64) {
	if s == nil {
		return
	}
	switch {
	case s.akey == 0:
		s.akey, s.a = uint32(key), v
	case s.bk == 0:
		s.bk, s.b = uint32(key), v
	}
}

// End commits the span into the tracer ring: a seqlocked burst of
// packed atomic stores into a pre-allocated slot, with zero
// allocations, then returns the handle to the pool.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now().UnixNano()
	t := s.tr
	n := t.next.Add(1)
	sl := &t.slots[(n-1)&t.mask]
	sl.seq.Store(2*n - 1) // mark: write in progress
	sl.ts.Store(uint64(uint32(s.trace))<<32 | uint64(uint32(s.id)))
	sl.pn.Store(uint64(uint32(s.parent))<<32 | uint64(s.name))
	sl.gt.Store(uint64(s.graph)<<32 | uint64(s.tier))
	keys := uint64(s.akey)<<32 | uint64(s.bk)
	sl.keys.Store(keys)
	if keys != 0 {
		// Unannotated spans (the warm hot path) skip both value words:
		// keys == 0 tells readers the stale a/b contents are dead.
		sl.a.Store(s.a)
		sl.b.Store(s.b)
	}
	sl.start.Store(s.start)
	sl.end.Store(end)
	sl.seq.Store(2 * n) // commit
	if f := t.onEnd; f != nil {
		f(s.name, float64(end-s.start)/1e9)
	}
	*s = Span{}
	t.pool.Put(s)
}

// SpanRecord is a committed span as read back out of the ring.
type SpanRecord struct {
	Trace         uint64            `json:"trace"`
	ID            uint64            `json:"id"`
	Parent        uint64            `json:"parent,omitempty"`
	Name          string            `json:"name"`
	Graph         string            `json:"graph,omitempty"`
	Tier          string            `json:"tier,omitempty"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationNS    int64             `json:"duration_ns"`
	Attrs         map[string]uint64 `json:"attrs,omitempty"`
}

// Snapshot reads every committed record currently in the ring,
// dropping torn ones (seqlock re-check), and returns them ordered by
// start time. It allocates freely; it is the /debug/trace read path,
// not the hot path.
func (t *Tracer) Snapshot() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.slots))
	for i := range t.slots {
		sl := &t.slots[i]
		s1 := sl.seq.Load()
		if s1 == 0 || s1&1 == 1 {
			continue
		}
		ts, pn, gt := sl.ts.Load(), sl.pn.Load(), sl.gt.Load()
		keys := sl.keys.Load()
		av, bv := sl.a.Load(), sl.b.Load()
		start, end := sl.start.Load(), sl.end.Load()
		if sl.seq.Load() != s1 {
			continue // torn: a writer lapped us mid-read
		}
		rec := SpanRecord{
			Trace:         ts >> 32,
			ID:            ts & 0xffffffff,
			Parent:        pn >> 32,
			Name:          NameOf(uint32(pn)),
			Graph:         t.graphs.lookup(uint32(gt >> 32)),
			Tier:          NameOf(uint32(gt)),
			StartUnixNano: start,
			DurationNS:    end - start,
		}
		ak, bk := uint32(keys>>32), uint32(keys)
		if ak != 0 || bk != 0 {
			rec.Attrs = make(map[string]uint64, 2)
			if ak != 0 {
				rec.Attrs[NameOf(ak)] = av
			}
			if bk != 0 {
				rec.Attrs[NameOf(bk)] = bv
			}
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUnixNano != out[j].StartUnixNano {
			return out[i].StartUnixNano < out[j].StartUnixNano
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// SnapshotGraph is Snapshot filtered to traces touching the given
// graph fingerprint: a trace is kept if any of its spans is attributed
// to fp, so engine phases recorded before attribution still appear.
func (t *Tracer) SnapshotGraph(fp string) []SpanRecord {
	all := t.Snapshot()
	if fp == "" {
		return all
	}
	keep := make(map[uint64]bool)
	for _, r := range all {
		if r.Graph == fp {
			keep[r.Trace] = true
		}
	}
	out := all[:0]
	for _, r := range all {
		if keep[r.Trace] {
			out = append(out, r)
		}
	}
	return out
}
