package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// This file is a parser and linter for the Prometheus text exposition
// format — used by the CI smoke step (cmd/promlint) and by tests to
// assert /metrics stays machine-readable, and by the serve tests to
// read series back without string grepping.

// Sample is one exposition line: a series name, its labels and value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: HELP/TYPE plus its samples (for
// histograms, the _bucket/_sum/_count series).
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Problem is one lint finding, anchored to a 1-based line number.
type Problem struct {
	Line int
	Msg  string
}

func (p Problem) String() string { return fmt.Sprintf("line %d: %s", p.Line, p.Msg) }

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// baseFamily strips histogram/summary suffixes so samples find their
// declared family.
func baseFamily(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// Parse reads Prometheus text exposition format, returning the
// families in input order together with any lint problems found. A
// non-nil error means the input could not be read at all; malformed
// content is reported through problems instead.
func Parse(r io.Reader) ([]*Family, []Problem, error) {
	var (
		problems []Problem
		families []*Family
		byName   = make(map[string]*Family)
		types    = make(map[string]string)
		seen     = make(map[string]int)  // series key -> first line
		closed   = make(map[string]bool) // family interleaving check
		lastFam  string
	)
	addProblem := func(line int, format string, args ...any) {
		problems = append(problems, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}
	family := func(name string) *Family {
		f := byName[name]
		if f == nil {
			f = &Family{Name: name}
			byName[name] = f
			families = append(families, f)
		}
		return f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				addProblem(lineNo, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			f := family(name)
			switch fields[1] {
			case "HELP":
				if f.Help != "" {
					addProblem(lineNo, "second HELP line for family %s", name)
				}
				if len(fields) == 4 {
					f.Help = fields[3]
				} else {
					addProblem(lineNo, "empty HELP text for family %s", name)
				}
			case "TYPE":
				if f.Type != "" {
					addProblem(lineNo, "second TYPE line for family %s", name)
				}
				if len(f.Samples) > 0 {
					addProblem(lineNo, "TYPE for family %s after its samples", name)
				}
				t := ""
				if len(fields) == 4 {
					t = fields[3]
				}
				switch t {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.Type = t
					types[name] = t
				default:
					addProblem(lineNo, "invalid TYPE %q for family %s", t, name)
				}
			}
			continue
		}
		name, labels, value, perr := parseSample(line)
		if perr != "" {
			addProblem(lineNo, "%s", perr)
			continue
		}
		fam := baseFamily(name, types)
		if closed[fam] && fam != lastFam {
			addProblem(lineNo, "family %s reopened after other families (samples must be contiguous)", fam)
		}
		if lastFam != "" && lastFam != fam {
			closed[lastFam] = true
		}
		lastFam = fam
		f := family(fam)
		key := seriesKey(name, labels)
		if first, dup := seen[key]; dup {
			addProblem(lineNo, "duplicate series %s (first at line %d)", key, first)
		} else {
			seen[key] = lineNo
		}
		for ln := range labels {
			if !labelNameRE.MatchString(ln) {
				addProblem(lineNo, "invalid label name %q", ln)
			}
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	// Family-level checks.
	for _, f := range families {
		if len(f.Samples) == 0 {
			// HELP/TYPE with no samples is legal (empty vec); skip.
			continue
		}
		first := seen[seriesKey(f.Samples[0].Name, f.Samples[0].Labels)]
		if f.Type == "" {
			addProblem(first, "family %s has samples but no TYPE line", f.Name)
		}
		if f.Help == "" {
			addProblem(first, "family %s has samples but no HELP line", f.Name)
		}
		if f.Type == "counter" && !strings.HasSuffix(f.Name, "_total") {
			addProblem(first, "counter family %s should end in _total", f.Name)
		}
		if f.Type == "histogram" {
			lintHistogram(f, first, addProblem)
		}
	}
	sort.Slice(problems, func(i, j int) bool { return problems[i].Line < problems[j].Line })
	return families, problems, nil
}

// Lint is Parse for callers that only care about problems.
func Lint(r io.Reader) ([]Problem, error) {
	_, problems, err := Parse(r)
	return problems, err
}

// FindSample returns the value of the series with the given name whose
// labels include all of want, for tests reading metrics back.
func FindSample(families []*Family, name string, want map[string]string) (float64, bool) {
	for _, f := range families {
		for _, s := range f.Samples {
			if s.Name != name {
				continue
			}
			match := true
			for k, v := range want {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
	}
	return 0, false
}

func lintHistogram(f *Family, line int, addProblem func(int, string, ...any)) {
	// Group bucket samples by their non-le label signature.
	type hist struct {
		les    []float64
		counts []uint64
		count  *uint64
		hasInf bool
	}
	groups := make(map[string]*hist)
	group := func(labels map[string]string) *hist {
		rest := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		k := seriesKey("", rest)
		g := groups[k]
		if g == nil {
			g = &hist{}
			groups[k] = g
		}
		return g
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			le := s.Labels["le"]
			if le == "" {
				addProblem(line, "histogram %s bucket without le label", f.Name)
				continue
			}
			g := group(s.Labels)
			if le == "+Inf" {
				g.hasInf = true
				g.les = append(g.les, math.Inf(1))
			} else {
				b, err := strconv.ParseFloat(le, 64)
				if err != nil {
					addProblem(line, "histogram %s bucket with unparsable le=%q", f.Name, le)
					continue
				}
				g.les = append(g.les, b)
			}
			g.counts = append(g.counts, uint64(s.Value))
		case f.Name + "_count":
			c := uint64(s.Value)
			group(s.Labels).count = &c
		}
	}
	for _, g := range groups {
		if !g.hasInf {
			addProblem(line, "histogram %s missing +Inf bucket", f.Name)
		}
		for i := 1; i < len(g.counts); i++ {
			if g.les[i] >= g.les[i-1] && g.counts[i] < g.counts[i-1] {
				addProblem(line, "histogram %s buckets not cumulative", f.Name)
				break
			}
		}
		if g.count != nil && len(g.counts) > 0 && g.hasInf {
			if last := g.counts[len(g.counts)-1]; last != *g.count {
				addProblem(line, "histogram %s _count %d != +Inf bucket %d", f.Name, *g.count, last)
			}
		}
	}
}

func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte('}')
	}
	return b.String()
}

// parseSample parses `name{l="v",...} value [timestamp]`, returning a
// problem message on malformed input.
func parseSample(line string) (name string, labels map[string]string, value float64, problem string) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !metricNameRE.MatchString(name) {
		return "", nil, 0, fmt.Sprintf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, lbls, perr := parseLabels(rest)
		if perr != "" {
			return "", nil, 0, perr
		}
		labels = lbls
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Sprintf("expected value (and optional timestamp) after %q", name)
	}
	v, err := parseFloat(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Sprintf("unparsable value %q for %s", fields[0], name)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Sprintf("unparsable timestamp %q for %s", fields[1], name)
		}
	}
	return name, labels, v, ""
}

func parseFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		s = "NaN"
	}
	return strconv.ParseFloat(s, 64)
}

// parseLabels parses a `{...}` label block starting at s[0]=='{',
// returning the index just past the closing brace.
func parseLabels(s string) (end int, labels map[string]string, problem string) {
	labels = make(map[string]string)
	i := 1
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return i + 1, labels, ""
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, nil, "unterminated label block"
		}
		lname := strings.TrimSpace(s[start:i])
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return 0, nil, fmt.Sprintf("label %s value not quoted", lname)
		}
		i++
		var val strings.Builder
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				default:
					return 0, nil, fmt.Sprintf("invalid escape \\%c in label %s", s[i], lname)
				}
			} else {
				val.WriteByte(s[i])
			}
			i++
		}
		if i >= len(s) {
			return 0, nil, fmt.Sprintf("unterminated value for label %s", lname)
		}
		i++ // past closing quote
		if _, dup := labels[lname]; dup {
			return 0, nil, fmt.Sprintf("duplicate label %s", lname)
		}
		labels[lname] = val.String()
	}
}
