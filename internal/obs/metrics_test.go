package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := NewCounter("test_requests_total", "Requests seen.")
	c.Inc()
	c.Add(4)
	cv := NewCounterVec("test_sheds_total", "Sheds by reason.", "endpoint", "reason")
	cv.With("analyze", "queue_full").Add(2)
	cv.With("mc", "deadline").Inc()
	g := NewGauge("test_depth", "Queue depth.")
	g.Set(3)
	g.Add(1.5)
	fn := Func{
		D: Desc{Name: "test_info", Help: "Build info.", Type: "gauge", Labels: []string{"version"}},
		Fn: func(emit func([]string, float64)) {
			emit([]string{`v1 with "quotes" and \slash`}, 1)
		},
	}
	r.MustRegister(c, cv, g, fn)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP test_requests_total Requests seen.",
		"# TYPE test_requests_total counter",
		"test_requests_total 5",
		`test_sheds_total{endpoint="analyze",reason="queue_full"} 2`,
		`test_sheds_total{endpoint="mc",reason="deadline"} 1`,
		"test_depth 4.5",
		`test_info{version="v1 with \"quotes\" and \\slash"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The whole output must pass our own linter.
	problems, err := Lint(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("linter problems in registry output: %v", problems)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	hv := NewHistogramVec("test_phase_seconds", "Phase durations.", []float64{0.001, 1}, "phase")
	hv.With("pass1").Observe(0.0005)
	hv.With("pass2").Observe(2)
	r.MustRegister(h, hv)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 3`,
		`test_latency_seconds_bucket{le="1"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		"test_latency_seconds_count 5",
		`test_phase_seconds_bucket{phase="pass1",le="0.001"} 1`,
		`test_phase_seconds_bucket{phase="pass2",le="+Inf"} 1`,
		`test_phase_seconds_count{phase="pass1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count %d, want 5", h.Count())
	}
	problems, err := Lint(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("linter problems: %v", problems)
	}
	// Parse the output back and check sums survive the round trip.
	fams, _, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := FindSample(fams, "test_latency_seconds_sum", nil)
	if !ok || math.Abs(sum-5.605) > 1e-9 {
		t.Fatalf("sum round trip: got %v ok=%v", sum, ok)
	}
}

func TestConcurrentMetricUpdates(t *testing.T) {
	c := NewCounter("c_total", "c")
	cv := NewCounterVec("cv_total", "cv", "k")
	h := NewHistogram("h_seconds", "h", LatencyBuckets)
	g := NewGauge("g", "g")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			series := cv.With("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				series.Inc()
				cv.With("shared").Inc() // exercise the map path too
				h.Observe(float64(i%100) / 1000)
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if cv.With("shared").Value() != 16000 {
		t.Fatalf("vec counter %d, want 16000", cv.With("shared").Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count %d, want 8000", h.Count())
	}
	if g.Value() != 8000 {
		t.Fatalf("gauge %g, want 8000", g.Value())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewCounter("dup_total", "a"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate family")
		}
	}()
	r.MustRegister(NewGauge("dup_total", "b"))
}
