package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// TreeNode is a span with its children resolved, for nested JSON and
// text rendering of a trace.
type TreeNode struct {
	SpanRecord
	Children []*TreeNode `json:"children,omitempty"`
}

// BuildTrees links parent/child spans into per-trace trees, ordered by
// the root span's start time. Spans whose parent fell out of the ring
// are promoted to roots so partial traces still render.
func BuildTrees(spans []SpanRecord) []*TreeNode {
	nodes := make(map[uint64]*TreeNode, len(spans))
	for i := range spans {
		nodes[spans[i].ID] = &TreeNode{SpanRecord: spans[i]}
	}
	var roots []*TreeNode
	for _, n := range nodes {
		if p, ok := nodes[n.Parent]; ok && n.Parent != 0 && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(n *TreeNode)
	sortKids = func(n *TreeNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].StartUnixNano != n.Children[j].StartUnixNano {
				return n.Children[i].StartUnixNano < n.Children[j].StartUnixNano
			}
			return n.Children[i].ID < n.Children[j].ID
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	for _, r := range roots {
		sortKids(r)
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].StartUnixNano != roots[j].StartUnixNano {
			return roots[i].StartUnixNano < roots[j].StartUnixNano
		}
		return roots[i].ID < roots[j].ID
	})
	return roots
}

// WriteTree renders spans as an indented text tree, one line per span:
//
//	serve.analyze 1.21ms graph=ab12cd34ef56
//	  admission.wait 2µs
//	  engine.answer 1.18ms tier=full
//	    engine.pass1 944µs tier=slab events=2000
//
// the format printed by tsgtime -trace.
func WriteTree(w io.Writer, spans []SpanRecord) {
	var walk func(n *TreeNode, depth int)
	walk = func(n *TreeNode, depth int) {
		for i := 0; i < depth; i++ {
			io.WriteString(w, "  ")
		}
		fmt.Fprintf(w, "%s %s", n.Name, time.Duration(n.DurationNS).Round(time.Microsecond))
		if n.Graph != "" {
			fmt.Fprintf(w, " graph=%s", n.Graph)
		}
		if n.Tier != "" {
			fmt.Fprintf(w, " tier=%s", n.Tier)
		}
		// Deterministic attr order for test- and eyeball-friendliness.
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%d", k, n.Attrs[k])
		}
		io.WriteString(w, "\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range BuildTrees(spans) {
		walk(r, 0)
	}
}
