package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func TestNilSpanIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatal("Start without tracer should return nil span")
	}
	if ctx2 != ctx {
		t.Fatal("Start without tracer should return the same context")
	}
	// All methods must be safe on nil.
	sp.SetGraph("fp")
	sp.SetTier("full")
	sp.Annotate("k", 1)
	sp.End()
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context should be nil")
	}
}

func TestSpanTreeStructure(t *testing.T) {
	tr := NewTracer(256)
	ctx := WithTracer(context.Background(), tr)

	rctx, root := Start(ctx, "serve.analyze")
	root.SetGraph("abc123")
	c1ctx, c1 := Start(rctx, "admission.wait")
	c1.End()
	c2ctx, c2 := Start(rctx, "engine.answer")
	c2.SetTier("full")
	_, g := Start(c2ctx, "engine.pass1")
	g.SetTier("slab")
	g.Annotate("events", 2000)
	g.Annotate("arcs", 4000)
	g.Annotate("dropped", 7) // third key is dropped
	g.End()
	c2.End()
	root.End()
	_ = c1ctx

	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	trees := BuildTrees(spans)
	if len(trees) != 1 {
		t.Fatalf("want 1 trace, got %d", len(trees))
	}
	r := trees[0]
	if r.Name != "serve.analyze" || r.Graph != "abc123" {
		t.Fatalf("bad root: %+v", r.SpanRecord)
	}
	if len(r.Children) != 2 {
		t.Fatalf("want 2 children, got %d", len(r.Children))
	}
	if r.Children[0].Name != "admission.wait" || r.Children[1].Name != "engine.answer" {
		t.Fatalf("bad child order: %s, %s", r.Children[0].Name, r.Children[1].Name)
	}
	eng := r.Children[1]
	if eng.Tier != "full" {
		t.Fatalf("want tier=full, got %q", eng.Tier)
	}
	if len(eng.Children) != 1 || eng.Children[0].Name != "engine.pass1" {
		t.Fatalf("bad grandchild: %+v", eng.Children)
	}
	p1 := eng.Children[0]
	if p1.Tier != "slab" || p1.Attrs["events"] != 2000 || p1.Attrs["arcs"] != 4000 {
		t.Fatalf("bad pass1 annotations: %+v", p1.SpanRecord)
	}
	if _, ok := p1.Attrs["dropped"]; ok {
		t.Fatal("third annotation should have been dropped")
	}
	// Children inherit the graph attribution set on the root before
	// they started.
	if p1.Graph != "abc123" {
		t.Fatalf("grandchild should inherit graph, got %q", p1.Graph)
	}

	var sb strings.Builder
	WriteTree(&sb, spans)
	out := sb.String()
	for _, want := range []string{"serve.analyze", "  admission.wait", "  engine.answer", "    engine.pass1", "tier=slab", "arcs=4000 events=2000", "graph=abc123"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tree rendering missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotGraphFiltersWholeTraces(t *testing.T) {
	tr := NewTracer(256)
	ctx := WithTracer(context.Background(), tr)
	for _, fp := range []string{"g1", "g2", "g1"} {
		rctx, root := Start(ctx, "serve.analyze")
		// The engine child starts before attribution lands on it; the
		// trace-level filter must still pick it up.
		_, child := Start(rctx, "engine.answer")
		child.End()
		root.SetGraph(fp)
		root.End()
	}
	all := tr.Snapshot()
	if len(all) != 6 {
		t.Fatalf("want 6 spans, got %d", len(all))
	}
	g1 := tr.SnapshotGraph("g1")
	if len(g1) != 4 {
		t.Fatalf("want 4 spans for g1 (2 traces x 2 spans), got %d", len(g1))
	}
	for _, r := range g1 {
		if r.Name == "serve.analyze" && r.Graph != "g1" {
			t.Fatalf("filter leaked trace for graph %q", r.Graph)
		}
	}
	if got := tr.SnapshotGraph("nope"); len(got) != 0 {
		t.Fatalf("want 0 spans for unknown graph, got %d", len(got))
	}
}

func TestRingWrapKeepsRecentSpans(t *testing.T) {
	tr := NewTracer(64)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 1000; i++ {
		_, sp := Start(ctx, "wrap.span")
		sp.End()
	}
	if got := tr.Recorded(); got != 1000 {
		t.Fatalf("want 1000 recorded, got %d", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 64 {
		t.Fatalf("ring of 64 should retain 64 spans, got %d", len(spans))
	}
	// The retained spans must be the newest ones (ids 937..1000 as
	// allocated by the tracer).
	for _, r := range spans {
		if r.ID <= 1000-64 {
			t.Fatalf("ring retained stale span id %d", r.ID)
		}
	}
}

// TestConcurrentTracing drives many goroutines through Start/End and
// Snapshot at once; under -race this checks the ring protocol is
// race-detector clean, and the snapshot must only contain committed,
// untorn records.
func TestConcurrentTracing(t *testing.T) {
	tr := NewTracer(128)
	ctx := WithTracer(context.Background(), tr)
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				rctx, root := Start(ctx, "root")
				root.SetGraph("g")
				_, c := Start(rctx, "child")
				c.Annotate("i", uint64(i))
				c.End()
				root.End()
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range tr.Snapshot() {
				if r.Name != "root" && r.Name != "child" {
					t.Errorf("torn record leaked into snapshot: %+v", r)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := tr.Recorded(); got != 4*2000*2 {
		t.Fatalf("want %d recorded spans, got %d", 4*2000*2, got)
	}
}

func TestInternStableAndConcurrent(t *testing.T) {
	id := Intern("some.phase")
	if Intern("some.phase") != id {
		t.Fatal("Intern not stable")
	}
	if NameOf(id) != "some.phase" {
		t.Fatal("NameOf mismatch")
	}
	if NameOf(0) != "" {
		t.Fatal("id 0 must resolve to empty")
	}
	var wg sync.WaitGroup
	ids := make([]uint32, 8)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = Intern("concurrent.phase")
		}(i)
	}
	wg.Wait()
	for _, got := range ids {
		if got != ids[0] {
			t.Fatal("concurrent Intern returned different ids")
		}
	}
}

func TestOnEndHookSeesDurations(t *testing.T) {
	tr := NewTracer(64)
	var mu sync.Mutex
	got := map[string]int{}
	tr.OnEnd(func(name uint32, seconds float64) {
		if seconds < 0 {
			t.Errorf("negative duration %g", seconds)
		}
		mu.Lock()
		got[NameOf(name)]++
		mu.Unlock()
	})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "hooked")
		sp.End()
	}
	if got["hooked"] != 3 {
		t.Fatalf("OnEnd saw %d ends, want 3", got["hooked"])
	}
}
